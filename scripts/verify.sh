#!/usr/bin/env bash
#===-- scripts/verify.sh - Full local verification gate ------------------===//
#
# Part of the LIGER reproduction project.
#
# Runs, in order:
#   1. tier-1: build + full ctest in the primary build tree
#      (LIGER_VERIFY_BUILD_DIR, default ./build);
#   2. sanitized gradcheck: ASan+UBSan build (build-asan) running the
#      autodiff grad-check, arena, grad-sink, checkpoint, and
#      fused-equivalence suites;
#   3. sanitized trace cache + parallel corpus: the LGTR fuzz suite and
#      the thread-determinism corpus suites under ASan+UBSan;
#   3b. sanitized hardening: the bounded-execution suites (parser depth
#      budget, lexer byte totality, interpreter memory budget) plus a
#      liger_fuzz smoke burst and the regression-corpus replay, all
#      under ASan+UBSan (DESIGN.md §12);
#   3c. sanitized serving: the forward-only runtime suites (bitwise
#      inference equivalence, LGWI truncation/corruption/mmap fuzz,
#      shared trace-cache concurrency) and a liger_serve --smoke burst
#      under ASan+UBSan (DESIGN.md §13);
#   3d. sanitized lockstep training: the threaded batched-epoch
#      equivalence suites (losses and final weights bitwise-identical
#      across thread counts, batch-op toggles both ways) under
#      ASan+UBSan (DESIGN.md §14);
#   4. scalar fallback: LIGER_NATIVE_SIMD=OFF build (build-scalar) +
#      full ctest, so the portable kernels stay green alongside the
#      AVX2 ones;
#   5. kernel benches in smoke mode on both the SIMD and the scalar
#      build (sanity that the bench harness, the fused ops, and the
#      batched matmul/cell/attention paths still run; timings are not
#      checked here);
#   6. trace pipeline bench in smoke mode (off/cold/warm determinism
#      checks at a tiny scale; exits non-zero on any mismatch);
#   6b. epoch-throughput bench in smoke mode: per-sample, batched, and
#      batched-threaded modes at a tiny scale; exits non-zero if the
#      batched losses diverge across thread counts;
#   7. serve smoke on the SIMD build: liger_serve --smoke starts the
#      engine, answers a burst including hostile and deadline-starved
#      methods, and shuts down cleanly.
#
# The smoke steps (6, 7, and 3c's serve burst) share one on-disk trace
# cache ($BUILD/verify-trace-cache, wiped once up front) — the same
# concurrent-reader contract the figure benches rely on (DESIGN.md
# §13.3).
#
# Invoke directly or via `cmake --build build --target liger_verify`.
#
#===----------------------------------------------------------------------===//

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${LIGER_VERIFY_BUILD_DIR:-$REPO/build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
CACHE="$BUILD/verify-trace-cache"
rm -rf "$CACHE"

step() { printf '\n=== verify: %s ===\n' "$*"; }

step "tier-1 build + ctest ($BUILD)"
cmake -B "$BUILD" -S "$REPO"
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

step "sanitized gradcheck build (build-asan)"
cmake -B "$REPO/build-asan" -S "$REPO" -DLIGER_SANITIZE=ON
cmake --build "$REPO/build-asan" -j "$JOBS" \
  --target nn_tests testgen_tests dataset_tests interp_tests lang_tests \
           eval_tests serve_tests liger_fuzz liger_serve
"$REPO/build-asan/tests/nn_tests" \
  --gtest_filter='GradCheckTest.*:GraphArenaTest.*:GradSinkTest.*:CheckpointTest.*:ParamStoreTest.*:FusedEquivalenceTest.*:AttentionEquivalenceTest.*:BatchedKernelEquivalenceTest.*'

step "sanitized trace cache + parallel corpus (build-asan)"
"$REPO/build-asan/tests/testgen_tests" --gtest_filter='TraceCacheTest.*'
"$REPO/build-asan/tests/dataset_tests" \
  --gtest_filter='CorpusParallelEquivalenceTest.*:CorpusTraceCacheTest.*'

step "sanitized hardening: depth/memory budgets + fuzz smoke (build-asan)"
"$REPO/build-asan/tests/interp_tests" --gtest_filter='InterpHardeningTest.*'
"$REPO/build-asan/tests/lang_tests" \
  --gtest_filter='ParserDepthTest.*:LexerHardeningTest.*'
"$REPO/build-asan/tools/liger_fuzz" --smoke --replay "$REPO/tests/fuzz-corpus"

step "sanitized serving: inference equivalence + shared cache + serve smoke (build-asan)"
"$REPO/build-asan/tests/serve_tests"
"$REPO/build-asan/tools/liger_serve" --smoke --trace-cache-dir="$CACHE"

step "sanitized lockstep training: threaded batched-epoch equivalence (build-asan)"
"$REPO/build-asan/tests/eval_tests" \
  --gtest_filter='TrainingIntegrationTest.LockstepThreadedEpochIsBitwise:TrainingIntegrationTest.ParallelEpochMatchesSerialBitwise'

step "scalar fallback build + ctest (build-scalar, LIGER_NATIVE_SIMD=OFF)"
cmake -B "$REPO/build-scalar" -S "$REPO" -DLIGER_NATIVE_SIMD=OFF
cmake --build "$REPO/build-scalar" -j "$JOBS"
ctest --test-dir "$REPO/build-scalar" --output-on-failure -j "$JOBS"

step "kernel benches (smoke)"
"$BUILD/bench/micro_substrates" --kernels-only --smoke
# Same smoke through the portable kernels: the scalar build drives the
# batched matmul/cell/attention benches down the non-AVX2 path.
"$REPO/build-scalar/bench/micro_substrates" --kernels-only --smoke

step "trace pipeline bench (smoke)"
# Run from inside the build tree so the smoke-scale BENCH_pipeline.json
# lands there, not over the checked-in full-scale result at the repo
# root. The bench manages cold/warm subdirectories under the shared
# verify cache itself.
(cd "$BUILD" && ./bench/pipeline_throughput --methods=6 \
   --trace-cache-dir="$CACHE")

step "epoch throughput bench (smoke: per-sample / batched / batched-threaded)"
# Also run from inside the build tree so the smoke-scale
# BENCH_epoch.json does not clobber the checked-in full-scale result.
# Exits non-zero if the batched and batched-threaded final losses are
# not bitwise-identical.
(cd "$BUILD" && ./bench/epoch_throughput --smoke)

step "serve smoke (SIMD build, shared verify cache)"
# Second consumer of the shared cache dir this run (after the
# sanitized smoke above): repeated entries must hit, fresh hostile
# entries must miss, and the deadline-starved request must surface as
# deadline-exceeded either way.
"$BUILD/tools/liger_serve" --smoke --trace-cache-dir="$CACHE"

step "all gates passed"
