//===-- tools/liger_fuzz.cpp - Pipeline fuzz harness ----------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuzzes the full source -> lex -> parse -> type check -> execute ->
/// trace -> encode pipeline with arbitrary byte input. The totality
/// contract under test (DESIGN.md §12): every stage must terminate with
/// a diagnostic or a terminal ExecStatus — never a crash, hang, stack
/// overflow, or unbounded allocation. Run under ASan/UBSan (the
/// LIGER_SANITIZE build) so violations abort loudly.
///
/// Input generators, chosen per iteration:
///   - structural: random MiniLang-shaped programs, including hostile
///     templates (deep nesting, string doubling, allocation loops,
///     unbounded recursion);
///   - mutation: byte flips / splices / truncations of valid seeds;
///   - token soup: syntactically plausible garbage;
///   - raw bytes: arbitrary binary.
///
/// Usage:
///   liger_fuzz [--runs N] [--seed S] [--smoke] [--verbose]
///              [--replay DIR] [--require-all-statuses]
///              [--last-input FILE]
///
/// --replay runs every file in DIR (the checked-in regression corpus)
/// through the pipeline before fuzzing; --require-all-statuses then
/// demands that the corpus alone exercised every terminal ExecStatus.
///
//===----------------------------------------------------------------------===//

#include "lang/AstTree.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"
#include "support/Rng.h"
#include "testgen/TraceCollector.h"
#include "trace/Vocabulary.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace liger;

namespace {

struct FuzzStats {
  uint64_t Runs = 0;
  uint64_t LexerDiags = 0;
  uint64_t ParseRejects = 0;
  uint64_t ParseOk = 0;
  uint64_t TypeRejects = 0;
  uint64_t TypeOk = 0;
  uint64_t ExecOk = 0;
  uint64_t ExecOutOfFuel = 0;
  uint64_t ExecRuntimeError = 0;
  uint64_t ExecMemoryLimit = 0;
  uint64_t TracePaths = 0;
  uint64_t VocabTokens = 0;

  void countStatus(ExecStatus S) {
    switch (S) {
    case ExecStatus::Ok: ++ExecOk; break;
    case ExecStatus::OutOfFuel: ++ExecOutOfFuel; break;
    case ExecStatus::RuntimeError: ++ExecRuntimeError; break;
    case ExecStatus::MemoryLimit: ++ExecMemoryLimit; break;
    }
  }

  bool sawAllStatuses() const {
    return ExecOk && ExecOutOfFuel && ExecRuntimeError && ExecMemoryLimit;
  }

  void print() const {
    std::printf("runs:            %llu\n", (unsigned long long)Runs);
    std::printf("lexer diags:     %llu\n", (unsigned long long)LexerDiags);
    std::printf("parse ok/rej:    %llu / %llu\n", (unsigned long long)ParseOk,
                (unsigned long long)ParseRejects);
    std::printf("type ok/rej:     %llu / %llu\n", (unsigned long long)TypeOk,
                (unsigned long long)TypeRejects);
    std::printf("exec Ok:         %llu\n", (unsigned long long)ExecOk);
    std::printf("exec OutOfFuel:  %llu\n", (unsigned long long)ExecOutOfFuel);
    std::printf("exec RuntimeErr: %llu\n",
                (unsigned long long)ExecRuntimeError);
    std::printf("exec MemLimit:   %llu\n",
                (unsigned long long)ExecMemoryLimit);
    std::printf("trace paths:     %llu\n", (unsigned long long)TracePaths);
    std::printf("vocab tokens:    %llu\n", (unsigned long long)VocabTokens);
  }
};

//===----------------------------------------------------------------------===//
// Pipeline driver
//===----------------------------------------------------------------------===//

/// Budgets small enough that hostile programs terminate fast and every
/// terminal status is reachable within a fuzz run.
InterpOptions fuzzInterpOptions() {
  InterpOptions Opts;
  Opts.Fuel = 3000;
  Opts.MaxMemoryBytes = 1u << 20; // 1 MiB
  Opts.MaxRecordedSteps = 256;
  return Opts;
}

/// Zero-ish arguments for a function whose types may be junk (the type
/// checker was bypassed or failed): primitives get their zero value,
/// unresolvable structs get ⊥ — the hardened interpreter must cope.
std::vector<Value> hostileArgs(const Program &Prog, const FunctionDecl &Fn) {
  std::vector<Value> Args;
  Args.reserve(Fn.Params.size());
  for (const TypedName &Param : Fn.Params) {
    const StructDecl *SD =
        Param.Ty.isStruct() ? Prog.findStruct(Param.Ty.structName()) : nullptr;
    if (Param.Ty.isStruct() && !SD) {
      Args.push_back(Value::undef());
      continue;
    }
    Args.push_back(Value::zeroOf(Param.Ty, SD));
  }
  return Args;
}

/// Encode stage: interns every static token (stmt-head tree leaves) and
/// dynamic token (state values) of the collected traces, mirroring what
/// dataset vocabulary construction does.
uint64_t encodeTraces(const MethodTraces &Traces) {
  Vocabulary Vocab;
  for (const BlendedTrace &Path : Traces.Paths) {
    for (const SymbolicStep &Step : Path.Symbolic.Steps) {
      AstTree Tree = buildStmtHeadTree(Step.Statement);
      std::vector<std::string> Leaves;
      Tree.collectLeaves(Leaves);
      for (const std::string &Leaf : Leaves)
        Vocab.add(Leaf);
    }
    for (const StateTrace &ST : Path.Concrete) {
      for (const ProgramState &State : ST.States)
        for (const Value &V : State.Values)
          for (const std::string &Tok : valueTokens(V))
            Vocab.add(Tok);
    }
  }
  return static_cast<uint64_t>(Vocab.size());
}

/// Drives one source buffer through every pipeline stage. \p DeepDive
/// additionally runs the full trace-collection pipeline (with symbolic
/// seeding) and the encode stage on type-correct programs; it is
/// enabled for a fraction of iterations because it is ~10x the cost of
/// a plain execution probe.
void drivePipeline(const std::string &Source, bool DeepDive, FuzzStats &S) {
  ++S.Runs;
  DiagnosticSink Diags;
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  S.LexerDiags += Diags.errorCount();

  Parser P(std::move(Tokens), Diags);
  Program Prog = P.parseProgram();
  if (Diags.hasErrors())
    ++S.ParseRejects;
  else
    ++S.ParseOk;

  // Type check, but keep going either way: executing un-typechecked
  // ASTs is exactly the hostile path the interpreter must survive.
  DiagnosticSink TypeDiags;
  bool Typed = !Diags.hasErrors() && typeCheck(Prog, TypeDiags);
  if (Typed)
    ++S.TypeOk;
  else
    ++S.TypeRejects;

  InterpOptions Opts = fuzzInterpOptions();
  for (const FunctionDecl &Fn : Prog.Functions) {
    ExecResult Run = execute(Prog, Fn, hostileArgs(Prog, Fn), Opts);
    S.countStatus(Run.Status);
  }

  if (Typed && DeepDive && !Prog.Functions.empty()) {
    TestGenOptions TG;
    TG.Interp = Opts;
    TG.TargetPaths = 4;
    TG.ExecutionsPerPath = 2;
    TG.MaxAttempts = 30;
    TG.MutationAttemptsPerPath = 4;
    CollectStats CS;
    MethodTraces Traces = collectTraces(Prog, Prog.Functions[0], TG, &CS);
    S.ExecOk += CS.OkRuns;
    S.ExecOutOfFuel += CS.Timeouts;
    S.ExecMemoryLimit += CS.MemoryExceeded;
    S.ExecRuntimeError += CS.Faults;
    S.TracePaths += Traces.Paths.size();
    S.VocabTokens += encodeTraces(Traces);
  }
}

//===----------------------------------------------------------------------===//
// Input generators
//===----------------------------------------------------------------------===//

const char *const Seeds[] = {
    "int add(int a, int b) { return a + b; }\n",

    "int sum(int[] a) {\n"
    "  int total = 0;\n"
    "  for (int i = 0; i < len(a); i += 1) { total += a[i]; }\n"
    "  return total;\n"
    "}\n",

    "struct Point { int x; int y; }\n"
    "int dist(Point p) { return abs(p.x) + abs(p.y); }\n",

    "string join(string a, string b) {\n"
    "  string out = a;\n"
    "  if (len(b) > 0) { out = out + \"-\" + b; }\n"
    "  return out;\n"
    "}\n",

    "bool search(int[] a, int key) {\n"
    "  int lo = 0;\n"
    "  int hi = len(a) - 1;\n"
    "  while (lo <= hi) {\n"
    "    int mid = (lo + hi) / 2;\n"
    "    if (a[mid] == key) { return true; }\n"
    "    if (a[mid] < key) { lo = mid + 1; } else { hi = mid - 1; }\n"
    "  }\n"
    "  return false;\n"
    "}\n",
};
constexpr size_t NumSeeds = sizeof(Seeds) / sizeof(Seeds[0]);

/// Hostile-by-construction programs: each aims at one resource bound.
std::string genHostileTemplate(Rng &R) {
  switch (R.nextBelow(6)) {
  case 0: { // deep expression nesting
    size_t Depth = 50 + R.nextBelow(600);
    std::string Out = "int f(int x) { int y = ";
    Out.append(Depth, '(');
    Out += "x";
    Out.append(Depth, ')');
    Out += "; return y; }\n";
    return Out;
  }
  case 1: { // deep block nesting
    size_t Depth = 50 + R.nextBelow(600);
    std::string Out = "int f() {\n";
    for (size_t I = 0; I < Depth; ++I)
      Out += "{";
    Out += " int x = 1; ";
    for (size_t I = 0; I < Depth; ++I)
      Out += "}";
    Out += "\nreturn 0; }\n";
    return Out;
  }
  case 2: // string doubling: exponential without a memory budget
    return "string boom(int n) {\n"
           "  string s = \"aaaaaaaa\";\n"
           "  for (int i = 0; i < n + 100; i += 1) { s = s + s; }\n"
           "  return s;\n"
           "}\n";
  case 3: // allocation churn: large arrays in a loop
    return "int churn(int n) {\n"
           "  int total = 0;\n"
           "  for (int i = 0; i < n + 1000; i += 1) {\n"
           "    int[] a = new int[100000];\n"
           "    total += len(a);\n"
           "  }\n"
           "  return total;\n"
           "}\n";
  case 4: // unbounded recursion
    return "int rec(int n) { return rec(n + 1); }\n";
  default: // infinite loop
    return "int spin(int n) { while (true) { n += 1; } return n; }\n";
  }
}

/// Structural generation: a random program assembled from fragments.
std::string genStructural(Rng &R) {
  if (R.nextBelow(4) == 0)
    return genHostileTemplate(R);
  static const char *const Types[] = {"int", "bool", "string", "int[]"};
  static const char *const Stmts[] = {
      "x = x + 1;",
      "if (x > y) { y = x; } else { x = y; }",
      "while (x > 0) { x -= 1; }",
      "for (int i = 0; i < 4; i += 1) { y += i; }",
      "s = s + \"a\";",
      "int[] a = new int[x + 4];",
      "x = x / y;",
      "x = a[y];",
      "return x;",
      "break;",
  };
  std::string Out = "int f(int x, int y) {\n  string s = \"\";\n";
  size_t N = 1 + R.nextBelow(8);
  for (size_t I = 0; I < N; ++I) {
    Out += "  ";
    Out += Stmts[R.nextBelow(sizeof(Stmts) / sizeof(Stmts[0]))];
    Out += "\n";
  }
  Out += "  return x;\n}\n";
  // Occasionally prepend a struct and a second function.
  if (R.nextBool(0.3)) {
    Out = std::string("struct P { ") + Types[R.nextBelow(3)] +
          " v; }\nint g(P p) { return 1; }\n" + Out;
  }
  return Out;
}

/// Byte-level mutation of a seed program.
std::string genMutated(Rng &R) {
  std::string Out = Seeds[R.nextBelow(NumSeeds)];
  size_t Edits = 1 + R.nextBelow(8);
  for (size_t I = 0; I < Edits && !Out.empty(); ++I) {
    switch (R.nextBelow(4)) {
    case 0: // flip a byte
      Out[R.nextBelow(Out.size())] = static_cast<char>(R.nextBelow(256));
      break;
    case 1: // delete a span
      Out.erase(R.nextBelow(Out.size()),
                1 + R.nextBelow(8));
      break;
    case 2: { // insert random bytes
      std::string Ins;
      size_t N = 1 + R.nextBelow(6);
      for (size_t J = 0; J < N; ++J)
        Ins += static_cast<char>(R.nextBelow(256));
      Out.insert(R.nextBelow(Out.size() + 1), Ins);
      break;
    }
    default: { // splice from another seed
      const char *Other = Seeds[R.nextBelow(NumSeeds)];
      size_t OtherLen = std::strlen(Other);
      size_t From = R.nextBelow(OtherLen);
      size_t Len = 1 + R.nextBelow(OtherLen - From);
      Out.insert(R.nextBelow(Out.size() + 1), std::string(Other + From, Len));
      break;
    }
    }
  }
  return Out;
}

/// Token soup: keywords and punctuation in random order — parses far
/// enough to stress error recovery.
std::string genTokenSoup(Rng &R) {
  static const char *const Toks[] = {
      "int", "bool",  "string", "void",   "struct", "if",     "else",
      "while", "for", "return", "break",  "continue", "new",  "true",
      "false", "x",   "y",      "f",      "0",      "1",      "42",
      "\"s\"", "(",   ")",      "{",      "}",      "[",      "]",
      ";",     ",",   "+",      "-",      "*",      "/",      "%",
      "=",     "==",  "!=",     "<",      ">",      "&&",     "||",
      "!",     ".",   "+=",     "-=",
  };
  std::string Out;
  size_t N = 1 + R.nextBelow(120);
  for (size_t I = 0; I < N; ++I) {
    Out += Toks[R.nextBelow(sizeof(Toks) / sizeof(Toks[0]))];
    Out += " ";
  }
  return Out;
}

/// Arbitrary binary, including NULs and high bytes.
std::string genRawBytes(Rng &R) {
  std::string Out;
  size_t N = R.nextBelow(400);
  for (size_t I = 0; I < N; ++I)
    Out += static_cast<char>(R.nextBelow(256));
  return Out;
}

std::string genInput(Rng &R) {
  switch (R.nextBelow(8)) {
  case 0:
  case 1:
  case 2: return genStructural(R);
  case 3:
  case 4: return genMutated(R);
  case 5:
  case 6: return genTokenSoup(R);
  default: return genRawBytes(R);
  }
}

//===----------------------------------------------------------------------===//
// Corpus replay
//===----------------------------------------------------------------------===//

bool replayCorpus(const std::string &Dir, bool Verbose, FuzzStats &S) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  std::vector<fs::path> Files;
  for (const auto &Entry : fs::directory_iterator(Dir, Ec))
    if (Entry.is_regular_file())
      Files.push_back(Entry.path());
  if (Ec || Files.empty()) {
    std::fprintf(stderr, "liger_fuzz: cannot replay '%s': %s\n", Dir.c_str(),
                 Ec ? Ec.message().c_str() : "no files");
    return false;
  }
  std::sort(Files.begin(), Files.end());
  for (const fs::path &File : Files) {
    std::ifstream In(File, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (Verbose)
      std::printf("replay %s\n", File.string().c_str());
    // Deep-dive every corpus file: reproducers are few and must drive
    // the whole pipeline.
    drivePipeline(Buf.str(), /*DeepDive=*/true, S);
  }
  std::printf("replayed %zu corpus file(s)\n", Files.size());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Runs = 10000;
  uint64_t Seed = 1;
  bool Verbose = false;
  bool RequireAllStatuses = false;
  std::string ReplayDir;
  std::string LastInputPath;

  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--runs" && I + 1 < Argc)
      Runs = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--seed" && I + 1 < Argc)
      Seed = std::strtoull(Argv[++I], nullptr, 10);
    else if (Arg == "--smoke")
      Runs = 500;
    else if (Arg == "--verbose")
      Verbose = true;
    else if (Arg == "--replay" && I + 1 < Argc)
      ReplayDir = Argv[++I];
    else if (Arg == "--require-all-statuses")
      RequireAllStatuses = true;
    else if (Arg == "--last-input" && I + 1 < Argc)
      LastInputPath = Argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: liger_fuzz [--runs N] [--seed S] [--smoke] "
                   "[--verbose] [--replay DIR] [--require-all-statuses] "
                   "[--last-input FILE]\n");
      return 2;
    }
  }

  FuzzStats Stats;

  if (!ReplayDir.empty()) {
    if (!replayCorpus(ReplayDir, Verbose, Stats))
      return 1;
    if (RequireAllStatuses && !Stats.sawAllStatuses()) {
      std::fprintf(stderr,
                   "liger_fuzz: corpus did not exercise every terminal "
                   "status (Ok=%llu OutOfFuel=%llu RuntimeError=%llu "
                   "MemoryLimit=%llu)\n",
                   (unsigned long long)Stats.ExecOk,
                   (unsigned long long)Stats.ExecOutOfFuel,
                   (unsigned long long)Stats.ExecRuntimeError,
                   (unsigned long long)Stats.ExecMemoryLimit);
      return 1;
    }
  }

  Rng R(Seed);
  using Clock = std::chrono::steady_clock;
  for (uint64_t Iter = 0; Iter < Runs; ++Iter) {
    std::string Input = genInput(R);
    if (Verbose && Iter % 200 == 0) {
      std::printf("iter %llu/%llu\n", (unsigned long long)Iter,
                  (unsigned long long)Runs);
      std::fflush(stdout);
    }
    // Crash/hang triage: persist the input before driving it, so a
    // wedged or killed run leaves the culprit on disk.
    if (!LastInputPath.empty()) {
      std::ofstream Out(LastInputPath, std::ios::binary | std::ios::trunc);
      Out << Input;
    }
    Clock::time_point Start = Clock::now();
    drivePipeline(Input, /*DeepDive=*/(Iter % 16) == 0, Stats);
    Clock::time_point End = Clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    // A single input dominating wall-clock is the signal fuzzing is
    // meant to surface — report it even when the run stays total.
    if (Secs > 5.0) {
      std::printf("slow input: iter %llu took %.1fs (%zu bytes)\n",
                  (unsigned long long)Iter, Secs, Input.size());
      std::fflush(stdout);
    }
  }

  Stats.print();
  std::printf("OK: no crashes\n");
  return 0;
}
