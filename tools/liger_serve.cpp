//===-- tools/liger_serve.cpp - Embedding service front-end ---------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-protocol front-end over serve/Serve.h: reads method-source
/// requests from stdin, batches them across the engine's worker pool,
/// and prints predicted method names (and optionally the embeddings).
///
/// Protocol (stdin):
///   METHOD <name> [deadline-ms]   start a request for function <name>
///   <source lines...>             MiniLang source of the request
///   END                           finish the request
///   GO                            dispatch the accumulated batch
/// EOF dispatches any remaining requests and prints a STATS line.
///
/// Responses (stdout), in request order:
///   RESP <idx> <status> <millis> <hit|miss|->[ <subtokens...>]
///   EMB <idx> <f0> <f1> ...       (--emit-embedding, Ok only)
///   STATS requests=N ok=N ... stmt-hits=N ...
///
/// Flags: --workers=N --deadline-ms=N --checkpoint=PATH --large
///        --emit-embedding --smoke, plus every ExperimentScale flag
///        (--hidden=, --trace-cache-dir=, ...; unknown flags are
///        fatal, as in the bench binaries).
///
/// --smoke runs a built-in self-test instead of serving: a burst of
/// valid, repeated (trace-cache hit), malformed, hostile
/// (non-terminating spin), and deadline-starved requests, asserting
/// each terminal status; nonzero exit on any violation. Wired into
/// ctest (serve_smoke) on the SIMD and sanitized builds.
///
//===----------------------------------------------------------------------===//

#include "dataset/Tasks.h"
#include "serve/Serve.h"
#include "testgen/TraceCache.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <unistd.h>
#include <sstream>
#include <string>
#include <vector>

using namespace liger;

namespace {

struct ServeToolOptions {
  ServeConfig Config;
  bool Smoke = false;
};

/// Splits serve-specific flags from the ExperimentScale flags, which
/// are handed to ExperimentScale::fromArgs (fatal on unknown keys).
ServeToolOptions parseArgs(int Argc, char **Argv) {
  ServeToolOptions Opts;
  Opts.Config.Workers = 1;
  std::vector<char *> Rest;
  Rest.push_back(Argv[0]);
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      Opts.Config.Workers = std::strtoull(Arg.c_str() + 10, nullptr, 10);
      continue;
    }
    if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Opts.Config.DefaultDeadlineMillis =
          std::strtoull(Arg.c_str() + 14, nullptr, 10);
      continue;
    }
    if (Arg.rfind("--checkpoint=", 0) == 0) {
      Opts.Config.CheckpointPath = Arg.substr(std::strlen("--checkpoint="));
      continue;
    }
    if (Arg == "--large") {
      Opts.Config.UseLarge = true;
      continue;
    }
    if (Arg == "--emit-embedding") {
      Opts.Config.ReturnEmbedding = true;
      continue;
    }
    if (Arg == "--smoke") {
      Opts.Smoke = true;
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  Opts.Config.Scale =
      ExperimentScale::fromArgs(static_cast<int>(Rest.size()), Rest.data());
  return Opts;
}

void printResponse(size_t Index, const ServeResponse &Resp,
                   bool EmitEmbedding) {
  const char *Cache = Resp.Status == ServeStatus::ParseError ||
                              Resp.Status == ServeStatus::NoSuchMethod ||
                              Resp.Status == ServeStatus::TooSmall
                          ? "-"
                          : (Resp.TraceCacheHit ? "hit" : "miss");
  std::printf("RESP %zu %s %.3f %s", Index, serveStatusName(Resp.Status),
              Resp.Millis, Cache);
  for (const std::string &Tok : Resp.NameSubtokens)
    std::printf(" %s", Tok.c_str());
  std::printf("\n");
  if (!Resp.Diagnostic.empty())
    std::fprintf(stderr, "note: request %zu: %s\n", Index,
                 Resp.Diagnostic.c_str());
  if (EmitEmbedding && Resp.Status == ServeStatus::Ok) {
    std::printf("EMB %zu", Index);
    for (float V : Resp.Embedding)
      std::printf(" %.9g", V);
    std::printf("\n");
  }
  std::fflush(stdout);
}

void printStats(const ServeStats &S) {
  std::printf("STATS requests=%llu ok=%llu parse-error=%llu "
              "no-such-method=%llu too-small=%llu no-traces=%llu "
              "deadline-exceeded=%llu trace-hits=%llu trace-misses=%llu "
              "stmt-hits=%llu stmt-misses=%llu state-hits=%llu "
              "state-misses=%llu\n",
              (unsigned long long)S.Requests, (unsigned long long)S.Ok,
              (unsigned long long)S.ParseErrors,
              (unsigned long long)S.NoSuchMethod,
              (unsigned long long)S.TooSmall,
              (unsigned long long)S.NoTraces,
              (unsigned long long)S.DeadlineExceeded,
              (unsigned long long)S.TraceCacheHits,
              (unsigned long long)S.TraceCacheMisses,
              (unsigned long long)S.Embeddings.StmtHits,
              (unsigned long long)S.Embeddings.StmtMisses,
              (unsigned long long)S.Embeddings.StateHits,
              (unsigned long long)S.Embeddings.StateMisses);
  std::fflush(stdout);
}

int serveLoop(ServeEngine &Engine, bool EmitEmbedding) {
  std::vector<ServeRequest> Batch;
  size_t NextIndex = 0;
  std::string Line;
  auto flush = [&] {
    if (Batch.empty())
      return;
    std::vector<ServeResponse> Out = Engine.handleBatch(Batch);
    for (size_t I = 0; I < Out.size(); ++I)
      printResponse(NextIndex + I, Out[I], EmitEmbedding);
    NextIndex += Out.size();
    Batch.clear();
  };
  while (std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    if (Line == "GO") {
      flush();
      continue;
    }
    std::istringstream Header(Line);
    std::string Keyword;
    Header >> Keyword;
    if (Keyword != "METHOD") {
      std::fprintf(stderr, "liger_serve: expected METHOD/GO, got: %s\n",
                   Line.c_str());
      return 2;
    }
    ServeRequest Req;
    Header >> Req.MethodName >> Req.DeadlineMillis;
    if (Req.MethodName.empty()) {
      std::fprintf(stderr, "liger_serve: METHOD needs a name\n");
      return 2;
    }
    std::string Source;
    bool Ended = false;
    while (std::getline(std::cin, Line)) {
      if (Line == "END") {
        Ended = true;
        break;
      }
      Source += Line;
      Source += '\n';
    }
    if (!Ended) {
      std::fprintf(stderr, "liger_serve: unterminated request (missing END)\n");
      return 2;
    }
    Req.Source = std::move(Source);
    Batch.push_back(std::move(Req));
  }
  flush();
  printStats(Engine.stats());
  return 0;
}

//===----------------------------------------------------------------------===//
// --smoke self-test
//===----------------------------------------------------------------------===//

int SmokeFailures = 0;

void expect(bool Cond, const char *What) {
  if (Cond) {
    std::printf("smoke: ok   %s\n", What);
  } else {
    std::printf("smoke: FAIL %s\n", What);
    ++SmokeFailures;
  }
}

/// A method whose every execution burns its whole fuel budget: the
/// NonTermination defect shape of the corpus generator.
std::string hostileSpinSource(const std::string &Name) {
  std::string Source = "int FN(int x) {\n"
                       "  int spin3 = 0;\n"
                       "  while (spin3 == 0) { spin3 = spin3 * 1; }\n"
                       "  return spin3;\n"
                       "}\n";
  return replaceIdentifier(Source, "FN", Name);
}

int runSmoke(ServeToolOptions Opts) {
  // Tiny deterministic scale: the corpus rebuild for vocabularies is
  // the expensive part and the smoke test only needs a working model.
  ExperimentScale &Scale = Opts.Config.Scale;
  Scale.MethodsMed = 16;
  Scale.Hidden = 16;
  Scale.EmbedDim = 16;
  Scale.TargetPaths = 4;
  Scale.ExecutionsPerPath = 3;
  if (!Scale.Cache) {
    Scale.CacheMode = TraceCacheMode::Full;
    Scale.Cache =
        std::make_shared<TraceCache>(Scale.CacheMode, Scale.TraceCacheDir);
  }
  if (Opts.Config.Workers < 2)
    Opts.Config.Workers = 2;

  std::printf("smoke: building engine (workers=%zu)...\n",
              Opts.Config.Workers);
  ServeEngine Engine(Opts.Config);

  const TaskSpec &Task = taskLibrary().front();
  std::string ValidSource =
      replaceIdentifier(Task.Variants.front().Source, "FN", "smokeTarget");

  std::vector<ServeRequest> Burst;
  Burst.push_back({"smokeTarget", ValidSource, 0});
  Burst.push_back({"smokeTarget", ValidSource, 0}); // trace-cache hit
  Burst.push_back({"smokeTarget", "int broken(", 0});
  Burst.push_back({"missingName", ValidSource, 0});
  Burst.push_back({"spinForever", hostileSpinSource("spinForever"), 0});
  // The deadline check only matters on work that is actually slow, so
  // this request must be a trace-cache *miss* even when --trace-cache-dir
  // points at a directory populated by a previous smoke run (verify.sh
  // shares one cache dir across its smoke steps): a per-process nonce
  // in the method name keeps the key fresh, and the fuel-bounded
  // exploration of the spin alone then exceeds a 1ms wall-clock
  // deadline.
  std::string Starved =
      "starvedSpin" +
      std::to_string(
          static_cast<unsigned long long>(::getpid()) * 1000003ull ^
          static_cast<unsigned long long>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
  Burst.push_back({Starved, hostileSpinSource(Starved), 1});

  std::vector<ServeResponse> Out = Engine.handleBatch(Burst);
  expect(Out.size() == Burst.size(), "batch answered in full");
  expect(Out[0].Status == ServeStatus::Ok, "valid method is Ok");
  expect(!Out[0].NameSubtokens.empty(), "valid method predicts a name");
  expect(Out[1].Status == ServeStatus::Ok, "repeated method is Ok");
  expect(Out[0].TraceCacheHit || Out[1].TraceCacheHit,
         "repeated method hits the shared trace cache");
  expect(Out[1].NameSubtokens == Out[0].NameSubtokens,
         "repeat prediction is identical");
  expect(Out[2].Status == ServeStatus::ParseError,
         "malformed source is parse-error");
  expect(Out[3].Status == ServeStatus::NoSuchMethod,
         "wrong name is no-such-method");
  expect(Out[4].Status == ServeStatus::NoTraces ||
             Out[4].Status == ServeStatus::DeadlineExceeded,
         "hostile spin method is terminal non-Ok");
  expect(Out[5].Status == ServeStatus::DeadlineExceeded,
         "1ms-deadline request is deadline-exceeded");

  // A second burst after the failures: the engine must still serve.
  std::vector<ServeResponse> Again =
      Engine.handleBatch({{"smokeTarget", ValidSource, 0}});
  expect(Again.size() == 1 && Again[0].Status == ServeStatus::Ok,
         "engine serves after terminal statuses");
  expect(Again[0].TraceCacheHit, "second burst hits the trace cache");
  expect(Again[0].NameSubtokens == Out[0].NameSubtokens,
         "second burst prediction is identical");

  ServeStats Stats = Engine.stats();
  expect(Stats.Requests == Burst.size() + 1, "stats count every request");
  expect(Stats.DeadlineExceeded >= 1, "stats count deadline hits");
  expect(Stats.ParseErrors == 1, "stats count parse errors");
  expect(Stats.TraceCacheHits >= 2, "stats count trace-cache hits");
  printStats(Stats);

  if (SmokeFailures) {
    std::printf("smoke: %d FAILURES\n", SmokeFailures);
    return 1;
  }
  std::printf("smoke: all checks passed\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeToolOptions Opts = parseArgs(Argc, Argv);
  if (Opts.Smoke)
    return runSmoke(std::move(Opts));

  std::fprintf(stderr,
               "liger_serve: building engine (workers=%zu, deadline=%llums, "
               "checkpoint=%s)...\n",
               Opts.Config.Workers,
               (unsigned long long)Opts.Config.DefaultDeadlineMillis,
               Opts.Config.CheckpointPath.empty()
                   ? "<seed params>"
                   : Opts.Config.CheckpointPath.c_str());
  ServeEngine Engine(Opts.Config);
  std::fprintf(stderr, "liger_serve: ready (param version %s)\n",
               Engine.weightImage().version().hex().c_str());
  return serveLoop(Engine, Opts.Config.ReturnEmbedding);
}
