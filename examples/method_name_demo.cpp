//===-- examples/method_name_demo.cpp - Train LIGER to name methods -------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end method name prediction (§6.1): generate a corpus from the
// task library, split by project, train LIGER, and print its
// predictions on held-out methods next to the ground truth.
//
// Run:  ./method_name_demo [--methods=N] [--epochs=N] [--hidden=N] ...
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "lang/AstPrinter.h"
#include "models/Liger.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace liger;

int main(int Argc, char **Argv) {
  ExperimentScale Scale = ExperimentScale::fromArgs(Argc, Argv);
  Scale.MethodsMed = std::min<size_t>(Scale.MethodsMed, 160);
  Scale.Epochs = std::max<size_t>(Scale.Epochs, 10);
  Scale.LearningRate = 4e-3f;

  std::printf("generating corpus (%zu raw methods)...\n", Scale.MethodsMed);
  NameTask Task = buildNameTask(Scale, /*Large=*/false);
  std::printf("kept %zu methods: train %zu / valid %zu / test %zu\n",
              Task.Stats.Kept, Task.Split.Train.size(),
              Task.Split.Valid.size(), Task.Split.Test.size());
  std::printf("joint vocabulary %d tokens, target vocabulary %d "
              "sub-tokens\n\n",
              Task.Joint.size(), Task.Target.size());

  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
  std::printf("LIGER model: %zu trainable scalars\n",
              Net.params().numScalars());

  NameModelHooks Hooks;
  Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
  Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
  Hooks.Params = &Net.params();

  TrainOptions Train = Scale.trainOptions();
  Train.Verbose = true;
  std::printf("training %zu epochs...\n", Train.Epochs);
  TrainResult Result =
      trainNameModel(Hooks, Task.Split.Train, Task.Split.Valid, Train);
  std::printf("done in %.1fs (best valid F1 %.1f at epoch %zu)\n\n",
              Result.Seconds, Result.BestValidScore, Result.BestEpoch);

  PrfScores Test = evaluateNameModel(Hooks, Task.Split.Test);
  std::printf("test: precision %.2f  recall %.2f  F1 %.2f\n\n",
              Test.Precision, Test.Recall, Test.F1);

  std::printf("== Sample predictions on held-out methods ==\n");
  size_t Shown = 0;
  for (const MethodSample &Sample : Task.Split.Test) {
    if (Shown++ >= 8)
      break;
    std::vector<std::string> Predicted = Net.predict(Sample);
    std::printf("actual: %-28s predicted: %s\n",
                join(Sample.NameSubtokens, " ").c_str(),
                join(Predicted, " ").c_str());
  }
  return 0;
}
