//===-- examples/sorting_semantics.cpp - The paper's Fig. 1/2 demo --------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's motivating example (Figures 1 and 2): three
// sorting routines where SortI (bubble) and SortIII (flag-controlled
// bubble) share semantics but differ syntactically, while SortII
// (insertion) is syntactically close to SortI but semantically a
// different algorithm.
//
// The demo (1) prints the state traces on the paper's input
// A = [8, 5, 1, 4, 3]; (2) trains a small LIGER classifier on
// generated sorting variants; (3) shows that the *dynamic* evidence
// groups SortI with SortIII — the distinction static models miss.
//
// Run:  ./sorting_semantics
//
//===----------------------------------------------------------------------===//

#include "dataset/Corpus.h"
#include "lang/Parser.h"
#include "models/Liger.h"
#include "nn/Optim.h"
#include "testgen/TraceCollector.h"

#include <cmath>
#include <cstdio>

using namespace liger;

namespace {

const char *SortI = R"(
int[] sortI(int[] A)
{
  int left = 0;
  int right = len(A) - 1;
  for (int i = right; i > left; i--) {
    for (int j = left; j < i; j++) {
      if (A[j] > A[j + 1]) {
        int tmp = A[j];
        A[j] = A[j + 1];
        A[j + 1] = tmp;
      }
    }
  }
  return A;
}
)";

const char *SortII = R"(
int[] sortII(int[] A)
{
  int left = 0;
  int right = len(A);
  for (int i = left; i < right; i++) {
    for (int j = i - 1; j >= left; j--) {
      if (A[j] > A[j + 1]) {
        int tmp = A[j];
        A[j] = A[j + 1];
        A[j + 1] = tmp;
      }
    }
  }
  return A;
}
)";

const char *SortIII = R"(
int[] sortIII(int[] A)
{
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < len(A) - 1; i++) {
      if (A[i] > A[i + 1]) {
        int tmp = A[i];
        A[i] = A[i + 1];
        A[i + 1] = tmp;
        swapbit = 1;
      }
    }
  }
  return A;
}
)";

MethodSample makeSortSample(const char *Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  LIGER_CHECK(P.has_value(), "demo sources must parse");
  MethodSample Sample;
  Sample.Prog = std::make_shared<Program>(std::move(*P));
  Sample.Fn = &Sample.Prog->Functions.front();
  TestGenOptions Gen;
  Gen.TargetPaths = 6;
  Gen.ExecutionsPerPath = 3;
  Gen.Seed = 77;
  Sample.Traces = collectTraces(*Sample.Prog, *Sample.Fn, Gen);
  return Sample;
}

double cosine(const Tensor &A, const Tensor &B) {
  double Dot = 0, NA = 0, NB = 0;
  for (size_t I = 0; I < A.size(); ++I) {
    Dot += static_cast<double>(A[I]) * B[I];
    NA += static_cast<double>(A[I]) * A[I];
    NB += static_cast<double>(B[I]) * B[I];
  }
  return Dot / (std::sqrt(NA) * std::sqrt(NB) + 1e-12);
}

} // namespace

int main() {
  // Part 1: the Fig. 2 state traces on A = [8, 5, 1, 4, 3].
  std::printf("== Fig. 2: state traces on A = [8, 5, 1, 4, 3] ==\n");
  for (const char *Source : {SortI, SortII, SortIII}) {
    DiagnosticSink Diags;
    Program P = std::move(*parseAndCheck(Source, Diags));
    const FunctionDecl &Fn = P.Functions.front();
    std::vector<Value> A{Value::makeArray({Value::makeInt(8),
                                           Value::makeInt(5),
                                           Value::makeInt(1),
                                           Value::makeInt(4),
                                           Value::makeInt(3)})};
    ExecResult Run = execute(P, Fn, A);
    std::printf("\n%s — %zu steps, first array mutations:\n",
                Fn.Name.c_str(), Run.Steps.size());
    int Shown = 0;
    for (const ExecStep &Step : Run.Steps) {
      const auto *Assign = dyn_cast<AssignStmt>(Step.Statement);
      if (!Assign || !isa<IndexExpr>(Assign->target()))
        continue;
      ProgramState State{Step.State};
      std::printf("  %s\n", State.str(Run.VarNames).c_str());
      if (++Shown == 4)
        break;
    }
  }

  // Part 2: train a small LIGER classifier on generated sort variants
  // (bubble / insertion / bubble-flag / selection from the task
  // library).
  std::printf("\n== Training a LIGER classifier on sorting variants ==\n");
  CosetOptions Options;
  Options.ProgramsPerClass = 6;
  Options.TraceGen.TargetPaths = 6;
  Options.TraceGen.ExecutionsPerPath = 3;
  std::vector<std::string> AllClassNames;
  std::vector<MethodSample> AllSamples =
      generateCosetCorpus(Options, AllClassNames);

  // Keep only the sortArray problem, and merge the two bubble-sort
  // formulations into one class — the paper's point is precisely that
  // SortI and SortIII implement the *same* algorithm.
  std::vector<MethodSample> Samples;
  std::vector<std::string> ClassNames;
  std::vector<int> ClassMap(AllClassNames.size(), -1);
  for (size_t I = 0; I < AllClassNames.size(); ++I) {
    if (AllClassNames[I].rfind("sortArray/", 0) != 0)
      continue;
    std::string Label = AllClassNames[I] == "sortArray/bubble-flag"
                            ? "sortArray/bubble"
                            : AllClassNames[I];
    int Existing = -1;
    for (size_t C = 0; C < ClassNames.size(); ++C)
      if (ClassNames[C] == Label)
        Existing = static_cast<int>(C);
    if (Existing < 0) {
      Existing = static_cast<int>(ClassNames.size());
      ClassNames.push_back(Label);
    }
    ClassMap[I] = Existing;
  }
  for (MethodSample &Sample : AllSamples)
    if (ClassMap[static_cast<size_t>(Sample.ClassId)] >= 0) {
      Sample.ClassId = ClassMap[static_cast<size_t>(Sample.ClassId)];
      Samples.push_back(std::move(Sample));
    }
  std::printf("%zu training programs across %zu algorithm classes\n",
              Samples.size(), ClassNames.size());

  Vocabulary Joint;
  for (const MethodSample &Sample : Samples)
    addSampleToVocabulary(Sample, Joint);
  // The Fig. 1 programs must be encodable too.
  MethodSample S1 = makeSortSample(SortI);
  MethodSample S2 = makeSortSample(SortII);
  MethodSample S3 = makeSortSample(SortIII);
  addSampleToVocabulary(S1, Joint);
  addSampleToVocabulary(S2, Joint);
  addSampleToVocabulary(S3, Joint);
  Joint.freeze();

  LigerConfig Config;
  Config.EmbedDim = 20;
  Config.Hidden = 20;
  Config.AttnHidden = 20;
  LigerClassifier Model(Joint, ClassNames.size(), Config, /*Seed=*/5);
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = 6e-3f;
  Adam Opt(Model.params(), AdamOpts);
  Rng Shuffler(9);
  for (int Epoch = 0; Epoch < 10; ++Epoch) {
    Shuffler.shuffle(Samples);
    double EpochLoss = 0;
    for (size_t Begin = 0; Begin < Samples.size(); Begin += 6) {
      std::vector<Var> Losses;
      for (size_t I = Begin; I < std::min(Samples.size(), Begin + 6); ++I)
        Losses.push_back(Model.loss(Samples[I]));
      Var Batch = meanLoss(Losses);
      EpochLoss += Batch->Value[0];
      backward(Batch);
      Opt.step();
    }
    std::printf("  epoch %d  mean batch loss %.3f\n", Epoch,
                EpochLoss / ((Samples.size() + 5) / 6));
  }

  // Part 3: classify the paper's three programs and compare embeddings.
  std::printf("\n== Fig. 1 programs through the trained model ==\n");
  auto Report = [&](const char *Name, const MethodSample &Sample) {
    int Class = Model.predict(Sample);
    std::printf("%-8s -> %s\n", Name,
                ClassNames[static_cast<size_t>(Class)].c_str());
  };
  Report("SortI", S1);
  Report("SortII", S2);
  Report("SortIII", S3);

  Tensor E1 = Model.embed(S1.Traces);
  Tensor E2 = Model.embed(S2.Traces);
  Tensor E3 = Model.embed(S3.Traces);
  std::printf("\nembedding cosine similarities:\n");
  std::printf("  cos(SortI, SortIII) = %.3f   (same algorithm)\n",
              cosine(E1, E3));
  std::printf("  cos(SortI, SortII)  = %.3f   (different algorithm)\n",
              cosine(E1, E2));
  return 0;
}
