//===-- examples/quickstart.cpp - Five-minute tour of the library ---------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse a MiniLang method, execute it concretely and
// symbolically, collect blended traces (the paper's Def. 5.1), and embed
// the method with an untrained LIGER encoder. This walks the full public
// API surface in order:
//
//   source -> Program -> ExecResult -> MethodTraces -> program embedding
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "models/Liger.h"
#include "symx/SymExec.h"
#include "testgen/TraceCollector.h"

#include <cstdio>

using namespace liger;

int main() {
  // 1. Parse and type check a method. The paper's Fig. 4 string-rotation
  //    checker, in MiniLang.
  const char *Source = R"(
bool isStringRotation(string A, string B)
{
  if (len(A) != len(B))
    return false;
  for (int i = 1; i < len(A); i++) {
    string tail = substring(A, i, len(A) - i);
    string wrap = substring(A, 0, i);
    if (tail + wrap == B)
      return true;
  }
  return false;
}
)";
  DiagnosticSink Diags;
  std::optional<Program> Parsed = parseAndCheck(Source, Diags);
  if (!Parsed) {
    std::printf("parse errors:\n%s", Diags.str().c_str());
    return 1;
  }
  Program P = std::move(*Parsed);
  const FunctionDecl &Fn = P.Functions.front();
  std::printf("== Parsed method ==\n%s\n", printFunction(Fn).c_str());

  // 2. Execute concretely with instrumentation: every statement plus the
  //    full program state after it (Def. 2.1).
  std::vector<Value> Args = {Value::makeString("abc"),
                             Value::makeString("bca")};
  ExecResult Run = execute(P, Fn, Args);
  std::printf("== Concrete execution on (\"abc\", \"bca\") ==\n");
  std::printf("status ok: %s, returned %s, %zu trace steps\n\n",
              Run.ok() ? "yes" : "no", Run.ReturnValue.str().c_str(),
              Run.Steps.size());

  // 3. Enumerate paths symbolically; each comes with a path condition
  //    and a concrete witness input found by the solver.
  SymxOptions Symx;
  Symx.StringCandidates = {"ab", "ba", "abc"};
  Symx.MaxShapes = 4;
  std::vector<SymbolicPath> Paths = enumeratePaths(P, Fn, Symx);
  std::printf("== Symbolic execution: %zu witnessed paths ==\n",
              Paths.size());
  for (size_t I = 0; I < std::min<size_t>(3, Paths.size()); ++I)
    std::printf("  path %zu: %zu statements, condition %s\n", I,
                Paths[I].Trace.length(),
                Paths[I].conditionStr().c_str());
  std::printf("\n");

  // 4. Collect blended traces the way the evaluation pipeline does:
  //    random (Randoop-style) inputs grouped by path, plus symbolic
  //    seeding for the paths random testing missed.
  TestGenOptions Gen;
  Gen.TargetPaths = 6;
  Gen.ExecutionsPerPath = 3;
  MethodTraces Traces = collectTraces(P, Fn, Gen);
  std::printf("== Blended traces ==\n");
  std::printf("%zu paths, %zu concrete executions total\n",
              Traces.Paths.size(), Traces.totalExecutions());
  if (!Traces.Paths.empty()) {
    std::printf("first blended trace:\n%s\n",
                renderBlendedTrace(Traces.Paths[0], Traces.VarNames, 6)
                    .c_str());
  }

  // 5. Embed the method with a (freshly initialized) LIGER encoder. In
  //    real use the model is trained first — see method_name_demo.
  Vocabulary Joint;
  MethodSample Sample;
  Sample.Fn = &Fn;
  Sample.Traces = Traces;
  addSampleToVocabulary(Sample, Joint);
  Joint.freeze();

  LigerConfig Config;
  Config.EmbedDim = 16;
  Config.Hidden = 16;
  LigerClassifier Model(Joint, /*NumClasses=*/2, Config, /*Seed=*/1);
  Tensor Embedding = Model.embed(Traces);
  std::printf("== LIGER program embedding (%zu dims) ==\n",
              Embedding.size());
  std::printf("[");
  for (size_t I = 0; I < std::min<size_t>(8, Embedding.size()); ++I)
    std::printf("%s%.3f", I ? ", " : "", Embedding[I]);
  std::printf(", ...]\n");
  return 0;
}
