//===-- examples/trace_explorer.cpp - Inspect traces of a source file -----===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Developer tool: parse a MiniLang source file (or a built-in sample),
// and for each function dump the pretty-printed body, the symbolically
// enumerated paths with their conditions and witnesses, and the blended
// traces the evaluation pipeline would feed the models.
//
// Run:  ./trace_explorer [file.mini]
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "symx/SymExec.h"
#include "testgen/Coverage.h"
#include "testgen/TraceCollector.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace liger;

namespace {

const char *BuiltinSample = R"(
// Classify an integer as negative, zero, or positive, with an absolute
// cap. Demonstrates multiple paths, loops, and builtins.
int classifyCapped(int x, int cap)
{
  int magnitude = abs(x);
  if (magnitude > cap)
    magnitude = cap;
  int sign = 0;
  if (x > 0)
    sign = 1;
  if (x < 0)
    sign = -1;
  return sign * magnitude;
}

int sumUpTo(int n)
{
  int total = 0;
  for (int i = 1; i <= n; i++)
    total += i;
  return total;
}
)";

} // namespace

int main(int Argc, char **Argv) {
  std::string Source;
  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  } else {
    std::printf("(no file given — using the built-in sample; pass a "
                ".mini file to explore your own)\n\n");
    Source = BuiltinSample;
  }

  DiagnosticSink Diags;
  std::optional<Program> Parsed = parseAndCheck(Source, Diags);
  if (!Parsed) {
    std::fprintf(stderr, "errors:\n%s", Diags.str().c_str());
    return 1;
  }
  Program P = std::move(*Parsed);

  for (const FunctionDecl &Fn : P.Functions) {
    std::printf("========================================\n");
    std::printf("%s", printFunction(Fn).c_str());
    std::printf("----------------------------------------\n");

    // Symbolic paths.
    SymxOptions Symx;
    Symx.MaxPaths = 12;
    std::vector<SymbolicPath> Paths = enumeratePaths(P, Fn, Symx);
    std::printf("symbolic execution found %zu witnessed paths:\n",
                Paths.size());
    for (size_t I = 0; I < Paths.size(); ++I) {
      std::printf("  [%zu] %2zu stmts  when %s  witness (", I,
                  Paths[I].Trace.length(), Paths[I].conditionStr().c_str());
      for (size_t A = 0; A < Paths[I].WitnessInputs.size(); ++A)
        std::printf("%s%s", A ? ", " : "",
                    Paths[I].WitnessInputs[A].str().c_str());
      std::printf(")\n");
    }

    // Blended traces via the test-generation pipeline.
    TestGenOptions Gen;
    Gen.TargetPaths = 6;
    Gen.ExecutionsPerPath = 2;
    CollectStats Stats;
    MethodTraces Traces = collectTraces(P, Fn, Gen, &Stats);
    std::printf("\ntrace pipeline: %u attempts -> %zu paths, %zu "
                "executions, line coverage %.0f%%\n",
                Stats.Attempts, Traces.Paths.size(),
                Traces.totalExecutions(),
                100.0 * lineCoverageRatio(Traces));
    std::vector<size_t> Minimal = minimalLineCoveringPaths(Traces);
    std::printf("minimal line-covering path set: %zu of %zu paths\n",
                Minimal.size(), Traces.Paths.size());
    if (!Traces.Paths.empty()) {
      std::printf("\nblended trace of the first path:\n%s",
                  renderBlendedTrace(Traces.Paths[0], Traces.VarNames, 10)
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
