//===-- tests/TestgenTests.cpp - Unit tests for test generation -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/Coverage.h"
#include "testgen/InputGen.h"
#include "testgen/TraceCache.h"
#include "testgen/TraceCollector.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

const char *AbsProgram = R"(
int myAbs(int a) {
  if (a < 0)
    return -a;
  return a;
}
)";

const char *SortProgram = R"(
int[] sort(int[] A) {
  for (int i = 0; i < len(A); i++) {
    for (int j = 0; j + 1 < len(A) - i; j++) {
      if (A[j] > A[j + 1]) {
        int t = A[j];
        A[j] = A[j + 1];
        A[j + 1] = t;
      }
    }
  }
  return A;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Input generation
//===----------------------------------------------------------------------===//

TEST(InputGenTest, RespectsTypes) {
  Program P = mustParse(R"(
struct Pt { int x; bool b; }
int f(int a, bool c, string s, int[] arr, Pt p) { return a; }
)");
  Rng R(1);
  InputGenOptions Options;
  auto Inputs = randomInputs(P.Functions[0], P, R, Options);
  ASSERT_EQ(Inputs.size(), 5u);
  EXPECT_TRUE(Inputs[0].isInt());
  EXPECT_TRUE(Inputs[1].isBool());
  EXPECT_TRUE(Inputs[2].isString());
  EXPECT_TRUE(Inputs[3].isArray());
  EXPECT_TRUE(Inputs[4].isStruct());
  EXPECT_EQ(Inputs[4].elements().size(), 2u);
}

TEST(InputGenTest, IntsWithinDomain) {
  Program P = mustParse("int f(int a) { return a; }");
  Rng R(2);
  InputGenOptions Options;
  Options.IntLo = -3;
  Options.IntHi = 3;
  for (int I = 0; I < 200; ++I) {
    auto Inputs = randomInputs(P.Functions[0], P, R, Options);
    EXPECT_GE(Inputs[0].asInt(), -3);
    EXPECT_LE(Inputs[0].asInt(), 3);
  }
}

TEST(InputGenTest, ArrayLengthsFromChoices) {
  Program P = mustParse("int f(int[] a) { return 0; }");
  Rng R(3);
  InputGenOptions Options;
  Options.ArrayLenChoices = {2, 4};
  std::set<size_t> Seen;
  for (int I = 0; I < 100; ++I) {
    auto Inputs = randomInputs(P.Functions[0], P, R, Options);
    Seen.insert(Inputs[0].elements().size());
  }
  EXPECT_EQ(Seen, (std::set<size_t>{2, 4}));
}

TEST(InputGenTest, MutationChangesOneCell) {
  Program P = mustParse("int f(int a, int[] b) { return a; }");
  Rng R(4);
  InputGenOptions Options;
  auto Inputs = randomInputs(P.Functions[0], P, R, Options);
  for (int Trial = 0; Trial < 20; ++Trial) {
    auto Mutated = mutateInputs(Inputs, R, Options);
    ASSERT_EQ(Mutated.size(), Inputs.size());
    // Same shapes, and at most one scalar differs.
    EXPECT_EQ(Mutated[1].elements().size(), Inputs[1].elements().size());
    int Diffs = 0;
    if (!Mutated[0].equals(Inputs[0]))
      ++Diffs;
    for (size_t I = 0; I < Inputs[1].elements().size(); ++I)
      if (!Mutated[1].elements()[I].equals(Inputs[1].elements()[I]))
        ++Diffs;
    EXPECT_LE(Diffs, 1);
  }
}

TEST(InputGenTest, DeterministicUnderSeed) {
  Program P = mustParse("int f(int a, int[] b, string s) { return a; }");
  InputGenOptions Options;
  Rng R1(42), R2(42);
  for (int I = 0; I < 20; ++I) {
    auto A = randomInputs(P.Functions[0], P, R1, Options);
    auto B = randomInputs(P.Functions[0], P, R2, Options);
    for (size_t J = 0; J < A.size(); ++J)
      EXPECT_TRUE(A[J].equals(B[J]));
  }
}

//===----------------------------------------------------------------------===//
// Trace collection pipeline
//===----------------------------------------------------------------------===//

TEST(TraceCollectorTest, CollectsBothAbsPaths) {
  Program P = mustParse(AbsProgram);
  TestGenOptions Options;
  Options.TargetPaths = 4;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_EQ(Traces.Paths.size(), 2u);
  EXPECT_GT(Stats.OkRuns, 0u);
  for (const BlendedTrace &Path : Traces.Paths) {
    EXPECT_GE(Path.numConcrete(), 1u);
    EXPECT_LE(Path.numConcrete(), Options.ExecutionsPerPath);
    // States must be recorded in the final traces.
    for (const StateTrace &States : Path.Concrete)
      EXPECT_EQ(States.States.size(), Path.Symbolic.Steps.size());
  }
}

TEST(TraceCollectorTest, RespectsTargetPathsAndExecutions) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 5;
  Options.ExecutionsPerPath = 3;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  EXPECT_LE(Traces.Paths.size(), 5u);
  EXPECT_GE(Traces.Paths.size(), 2u);
  for (const BlendedTrace &Path : Traces.Paths)
    EXPECT_LE(Path.numConcrete(), 3u);
}

TEST(TraceCollectorTest, SymbolicSeedingFindsRarePath) {
  // The guard a == 77 is nearly impossible to hit at random within
  // [-8, 8]; the symbolic executor's witness must find it... except 77
  // is outside the solver domain too. Use a conjunction that is rare
  // for random draws but inside the domain.
  Program P = mustParse(R"(
int f(int a, int b, int c) {
  if (a == 7 && b == -6 && c == 5)
    return 1;
  return 0;
}
)");
  TestGenOptions Options;
  Options.TargetPaths = 8;
  Options.MaxAttempts = 50; // few random tries: ~unreachable by chance
  Options.UseSymbolicSeeding = true;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_EQ(Traces.Paths.size(), 2u);
  EXPECT_GE(Stats.SymbolicSeeds, 1u);
}

TEST(TraceCollectorTest, TimeoutsCounted) {
  Program P = mustParse("void f() { while (true) {} }");
  TestGenOptions Options;
  Options.Interp.Fuel = 200;
  Options.MaxAttempts = 5;
  Options.UseSymbolicSeeding = false;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_TRUE(Traces.Paths.empty());
  EXPECT_TRUE(Stats.allTimedOut());
}

TEST(TraceCollectorTest, MemoryBombsCounted) {
  // Every attempted execution of a memory bomb ends with MemoryLimit;
  // the collector counts them like timeouts (Table 1's "takes too
  // long" filter, extended to "takes too much memory").
  Program P = mustParse(
      "void f() { string s = \"aaaaaaaa\"; while (true) { s = s + s; } }");
  TestGenOptions Options;
  Options.Interp.Fuel = 2000;
  Options.Interp.MaxMemoryBytes = 1u << 20;
  Options.MaxAttempts = 5;
  Options.UseSymbolicSeeding = false;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_TRUE(Traces.Paths.empty());
  EXPECT_GT(Stats.MemoryExceeded, 0u);
  EXPECT_TRUE(Stats.allMemoryExceeded());
  EXPECT_EQ(Stats.Timeouts, 0u);
}

TEST(TraceCollectorTest, DeterministicUnderSeed) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.Seed = 99;
  MethodTraces A = collectTraces(P, P.Functions[0], Options);
  MethodTraces B = collectTraces(P, P.Functions[0], Options);
  ASSERT_EQ(A.Paths.size(), B.Paths.size());
  for (size_t I = 0; I < A.Paths.size(); ++I) {
    EXPECT_EQ(A.Paths[I].Symbolic.pathKey(), B.Paths[I].Symbolic.pathKey());
    EXPECT_EQ(A.Paths[I].numConcrete(), B.Paths[I].numConcrete());
  }
}

//===----------------------------------------------------------------------===//
// Coverage and reduction
//===----------------------------------------------------------------------===//

namespace {

MethodTraces collectAbs(Program &P) {
  TestGenOptions Options;
  Options.TargetPaths = 4;
  return collectTraces(P, P.Functions[0], Options);
}

} // namespace

TEST(CoverageTest, AllStatementLines) {
  Program P = mustParse(AbsProgram);
  std::set<unsigned> Lines = allStatementLines(P.Functions[0]);
  // if-cond, then-return, final return.
  EXPECT_EQ(Lines.size(), 3u);
}

TEST(CoverageTest, FullCollectionCoversEverything) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  EXPECT_DOUBLE_EQ(lineCoverageRatio(Traces), 1.0);
}

TEST(CoverageTest, SinglePathCoversPart) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  ASSERT_EQ(Traces.Paths.size(), 2u);
  MethodTraces One = selectPaths(Traces, {0});
  double Ratio = lineCoverageRatio(One);
  EXPECT_LT(Ratio, 1.0);
  EXPECT_GE(Ratio, 0.5);
}

TEST(CoverageTest, MinimalCoverKeepsCoverage) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 8;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  std::vector<size_t> Minimal = minimalLineCoveringPaths(Traces);
  EXPECT_LE(Minimal.size(), Traces.Paths.size());
  MethodTraces Reduced = selectPaths(Traces, Minimal);
  EXPECT_EQ(Reduced.coveredLines(), Traces.coveredLines());
}

TEST(CoverageTest, MinimalCoverIsMinimalForAbs) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  // Both paths are needed for full line coverage.
  EXPECT_EQ(minimalLineCoveringPaths(Traces).size(), 2u);
}

TEST(CoverageTest, ReduceConcreteKeepsSymbolic) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 6;
  Options.ExecutionsPerPath = 5;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  Rng R(5);
  MethodTraces Reduced = reduceConcreteTraces(Traces, 2, R);
  ASSERT_EQ(Reduced.Paths.size(), Traces.Paths.size());
  for (size_t I = 0; I < Reduced.Paths.size(); ++I) {
    EXPECT_EQ(Reduced.Paths[I].Symbolic.pathKey(),
              Traces.Paths[I].Symbolic.pathKey());
    EXPECT_LE(Reduced.Paths[I].numConcrete(), 2u);
    EXPECT_EQ(Reduced.Paths[I].Inputs.size(),
              Reduced.Paths[I].Concrete.size());
  }
}

TEST(CoverageTest, ReduceSymbolicPreservesLineCoverageAboveFloor) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 8;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  size_t Floor = minimalLineCoveringPaths(Traces).size();
  Rng R(6);
  MethodTraces Reduced = reduceSymbolicTraces(Traces, Floor, R);
  EXPECT_EQ(Reduced.Paths.size(), Floor);
  EXPECT_EQ(Reduced.coveredLines(), Traces.coveredLines());
}

TEST(CoverageTest, ReduceSymbolicBelowFloorDropsCoverage) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  Rng R(7);
  MethodTraces Reduced = reduceSymbolicTraces(Traces, 1, R);
  EXPECT_EQ(Reduced.Paths.size(), 1u);
  EXPECT_LT(lineCoverageRatio(Reduced), 1.0);
}

//===----------------------------------------------------------------------===//
// Trace cache
//===----------------------------------------------------------------------===//

namespace {

const char *StructProgram = R"(
struct Pt { int x; int y; }
int manhattan(Pt p, int scale) {
  int dx = p.x;
  if (dx < 0)
    dx = -dx;
  int dy = p.y;
  if (dy < 0)
    dy = -dy;
  return (dx + dy) * scale;
}
)";

TestGenOptions tinyTraceGen() {
  TestGenOptions Options;
  Options.TargetPaths = 3;
  Options.ExecutionsPerPath = 2;
  Options.MaxAttempts = 40;
  Options.Seed = 11;
  return Options;
}

/// Cross-program value equality: Value::equals compares struct Decl
/// pointers, but warm traces are re-bound against a re-parsed Program,
/// so structs must compare by type name + contents here.
bool valuesMatch(const Value &A, const Value &B) {
  if (A.kind() != B.kind())
    return false;
  if (A.isStruct()) {
    if (A.structDecl()->Name != B.structDecl()->Name ||
        A.elements().size() != B.elements().size())
      return false;
    for (size_t I = 0; I < A.elements().size(); ++I)
      if (!valuesMatch(A.elements()[I], B.elements()[I]))
        return false;
    return true;
  }
  if (A.isArray()) {
    if (A.elements().size() != B.elements().size())
      return false;
    for (size_t I = 0; I < A.elements().size(); ++I)
      if (!valuesMatch(A.elements()[I], B.elements()[I]))
        return false;
    return true;
  }
  return A.equals(B);
}

/// Structural equality of two MethodTraces (statement identity by
/// NodeId, values by valuesMatch so re-parsed programs compare equal).
void expectTracesEqual(const MethodTraces &A, const MethodTraces &B) {
  EXPECT_EQ(A.VarNames, B.VarNames);
  ASSERT_EQ(A.Paths.size(), B.Paths.size());
  for (size_t P = 0; P < A.Paths.size(); ++P) {
    const BlendedTrace &PA = A.Paths[P];
    const BlendedTrace &PB = B.Paths[P];
    ASSERT_EQ(PA.Symbolic.Steps.size(), PB.Symbolic.Steps.size());
    for (size_t S = 0; S < PA.Symbolic.Steps.size(); ++S) {
      EXPECT_EQ(PA.Symbolic.Steps[S].Statement->id(),
                PB.Symbolic.Steps[S].Statement->id());
      EXPECT_EQ(PA.Symbolic.Steps[S].Kind, PB.Symbolic.Steps[S].Kind);
    }
    ASSERT_EQ(PA.Concrete.size(), PB.Concrete.size());
    for (size_t C = 0; C < PA.Concrete.size(); ++C) {
      const StateTrace &SA = PA.Concrete[C];
      const StateTrace &SB = PB.Concrete[C];
      ASSERT_EQ(SA.Initial.Values.size(), SB.Initial.Values.size());
      for (size_t V = 0; V < SA.Initial.Values.size(); ++V)
        EXPECT_TRUE(valuesMatch(SA.Initial.Values[V], SB.Initial.Values[V]))
            << SA.Initial.Values[V].str() << " vs "
            << SB.Initial.Values[V].str();
      ASSERT_EQ(SA.States.size(), SB.States.size());
      for (size_t St = 0; St < SA.States.size(); ++St) {
        ASSERT_EQ(SA.States[St].Values.size(), SB.States[St].Values.size());
        for (size_t V = 0; V < SA.States[St].Values.size(); ++V)
          EXPECT_TRUE(valuesMatch(SA.States[St].Values[V],
                                  SB.States[St].Values[V]))
              << SA.States[St].Values[V].str() << " vs "
              << SB.States[St].Values[V].str();
      }
    }
    ASSERT_EQ(PA.Inputs.size(), PB.Inputs.size());
    for (size_t I = 0; I < PA.Inputs.size(); ++I) {
      ASSERT_EQ(PA.Inputs[I].size(), PB.Inputs[I].size());
      for (size_t V = 0; V < PA.Inputs[I].size(); ++V)
        EXPECT_TRUE(valuesMatch(PA.Inputs[I][V], PB.Inputs[I][V]));
    }
  }
}

void expectDiscoveryStatsEqual(const CollectStats &A, const CollectStats &B) {
  EXPECT_EQ(A.Attempts, B.Attempts);
  EXPECT_EQ(A.OkRuns, B.OkRuns);
  EXPECT_EQ(A.Faults, B.Faults);
  EXPECT_EQ(A.Timeouts, B.Timeouts);
  EXPECT_EQ(A.MemoryExceeded, B.MemoryExceeded);
  EXPECT_EQ(A.SymbolicSeeds, B.SymbolicSeeds);
}

} // namespace

TEST(TraceCacheTest, KeyStableAndSensitive) {
  TestGenOptions Options = tinyTraceGen();
  TraceCacheKey Base = traceCacheKey(SortProgram, "sort", Options);
  EXPECT_EQ(traceCacheKey(SortProgram, "sort", Options), Base);

  EXPECT_NE(traceCacheKey(AbsProgram, "sort", Options), Base);
  EXPECT_NE(traceCacheKey(SortProgram, "sortB", Options), Base);

  TestGenOptions Changed = Options;
  Changed.Seed = Options.Seed + 1;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);
  Changed = Options;
  Changed.TargetPaths = Options.TargetPaths + 1;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);
  Changed = Options;
  Changed.Interp.Fuel = Options.Interp.Fuel + 1;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);
  Changed = Options;
  Changed.Interp.MaxMemoryBytes = Options.Interp.MaxMemoryBytes / 2;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);
  Changed = Options;
  Changed.Input.IntHi = Options.Input.IntHi + 1;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);
  Changed = Options;
  Changed.UseSymbolicSeeding = !Options.UseSymbolicSeeding;
  EXPECT_NE(traceCacheKey(SortProgram, "sort", Changed), Base);

  // RecordStates is overridden internally by the pipeline and must NOT
  // change the key.
  Changed = Options;
  Changed.Interp.RecordStates = !Options.Interp.RecordStates;
  EXPECT_EQ(traceCacheKey(SortProgram, "sort", Changed), Base);
}

TEST(TraceCacheTest, ScopePartitionsTheKey) {
  // Two corpora sharing one cache directory must never serve each
  // other's entries, even for identical source and options: the
  // dataset scope is part of the key.
  TestGenOptions Options = tinyTraceGen();
  TraceCacheKey Unscoped = traceCacheKey(SortProgram, "sort", Options);

  TestGenOptions Med = Options;
  Med.Scope = "med";
  TestGenOptions Large = Options;
  Large.Scope = "large";
  TraceCacheKey MedKey = traceCacheKey(SortProgram, "sort", Med);
  TraceCacheKey LargeKey = traceCacheKey(SortProgram, "sort", Large);

  EXPECT_NE(MedKey, Unscoped);
  EXPECT_NE(LargeKey, Unscoped);
  EXPECT_NE(MedKey, LargeKey);
  EXPECT_EQ(traceCacheKey(SortProgram, "sort", Med), MedKey);
}

TEST(TraceCacheTest, MaxBytesEvictsLeastRecentlyUsed) {
  namespace fs = std::filesystem;
  std::string Dir = testing::TempDir() + "/liger_trace_cache_evict";
  std::error_code Ec;
  fs::remove_all(Dir, Ec); // stale entries from prior runs

  // Synthetic entries with distinct keys; identical payloads keep
  // every on-disk file the same size, so the budget arithmetic below
  // is exact.
  auto KeyOf = [](int I) {
    TestGenOptions O = tinyTraceGen();
    O.Seed = 1000 + static_cast<uint64_t>(I);
    return traceCacheKey(SortProgram, "sort", O);
  };
  CachedTraceEntry Entry;
  Entry.Attempts = 1;
  Entry.OkRuns = 1;
  uint64_t One = serializeCacheEntry(KeyOf(0), Entry).size();

  TraceCache Cache(TraceCacheMode::Full, Dir, /*MaxBytes=*/3 * One);
  EXPECT_EQ(Cache.maxBytes(), 3 * One);
  for (int I = 0; I < 3; ++I)
    Cache.store(KeyOf(I), Entry);
  // Exactly at the bound: nothing to evict.
  EXPECT_EQ(Cache.evictions(), 0u);
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(fs::exists(Cache.entryPath(KeyOf(I)))) << I;

  // Age the files deterministically (filesystem mtime granularity can
  // be one second, far coarser than this test): entry 1 becomes the
  // LRU victim, entry 0 the runner-up.
  auto Now = fs::last_write_time(Cache.entryPath(KeyOf(2)));
  fs::last_write_time(Cache.entryPath(KeyOf(1)), Now - std::chrono::hours(2));
  fs::last_write_time(Cache.entryPath(KeyOf(0)), Now - std::chrono::hours(1));

  // The fourth store pushes the directory over budget by one entry:
  // exactly the oldest file goes.
  Cache.store(KeyOf(3), Entry);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_FALSE(fs::exists(Cache.entryPath(KeyOf(1))));
  EXPECT_TRUE(fs::exists(Cache.entryPath(KeyOf(0))));
  EXPECT_TRUE(fs::exists(Cache.entryPath(KeyOf(2))));
  EXPECT_TRUE(fs::exists(Cache.entryPath(KeyOf(3))));

  // A fresh cache (post-restart view) misses the evicted entry and
  // still hits a surviving one; the writer's own memory map keeps
  // serving the evicted key regardless.
  TraceCache Fresh(TraceCacheMode::Full, Dir);
  CachedTraceEntry Out;
  EXPECT_FALSE(Fresh.lookup(KeyOf(1), Out));
  EXPECT_TRUE(Fresh.lookup(KeyOf(0), Out));
  EXPECT_TRUE(Cache.lookup(KeyOf(1), Out));

  // A budget smaller than one entry still keeps the newest store: the
  // entry just written is never its own victim.
  TraceCache Tiny(TraceCacheMode::Full, Dir, /*MaxBytes=*/1);
  Tiny.store(KeyOf(9), Entry);
  EXPECT_TRUE(fs::exists(Tiny.entryPath(KeyOf(9))));
  EXPECT_EQ(Tiny.evictions(), 3u); // everything but the new entry
}

TEST(TraceCacheTest, PortableValueRoundTrip) {
  Program P = mustParse(StructProgram);
  const StructDecl *Pt = P.findStruct("Pt");
  ASSERT_NE(Pt, nullptr);

  std::vector<Value> Originals;
  Originals.push_back(Value::undef());
  Originals.push_back(Value::makeInt(-42));
  Originals.push_back(Value::makeBool(true));
  Originals.push_back(Value::makeString("ab\"c"));
  Originals.push_back(Value::makeArray(
      {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)}));
  Originals.push_back(
      Value::makeStruct(Pt, {Value::makeInt(5), Value::makeInt(-7)}));

  for (const Value &V : Originals) {
    PortableValue PV = toPortable(V);
    Value Back;
    ASSERT_TRUE(fromPortable(PV, P, Back)) << V.str();
    EXPECT_TRUE(V.equals(Back)) << V.str() << " vs " << Back.str();
  }

  // A struct type the program does not declare fails softly.
  PortableValue Unknown;
  Unknown.Kind = ValueKind::Struct;
  Unknown.Str = "NoSuchStruct";
  Value Back;
  EXPECT_FALSE(fromPortable(Unknown, P, Back));

  // Field-count mismatch (stale entry against an evolved struct) too.
  PortableValue WrongArity = toPortable(Originals.back());
  WrongArity.Elements.pop_back();
  EXPECT_FALSE(fromPortable(WrongArity, P, Back));
}

TEST(TraceCacheTest, ColdWarmEquivalenceInputsMode) {
  Program P = mustParse(StructProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();

  CollectStats Baseline;
  MethodTraces Plain = collectTraces(P, Fn, Options, &Baseline);
  EXPECT_EQ(Baseline.CacheBypasses, 1u);

  TraceCache Cache(TraceCacheMode::Inputs, "");
  CollectStats Cold, Warm;
  MethodTraces ColdTraces =
      collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Cold);
  MethodTraces WarmTraces =
      collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Warm);

  EXPECT_EQ(Cold.CacheMisses, 1u);
  EXPECT_EQ(Warm.CacheHits, 1u);
  expectDiscoveryStatsEqual(Baseline, Cold);
  expectDiscoveryStatsEqual(Baseline, Warm);
  expectTracesEqual(Plain, ColdTraces);
  expectTracesEqual(Plain, WarmTraces);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(TraceCacheTest, ColdWarmEquivalenceFullModeOnDisk) {
  Program P = mustParse(StructProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();
  std::string Dir = testing::TempDir() + "/liger_trace_cache_full";
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec); // stale entries from prior runs

  CollectStats Cold;
  MethodTraces ColdTraces;
  {
    TraceCache Cache(TraceCacheMode::Full, Dir);
    ColdTraces =
        collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Cold);
    EXPECT_EQ(Cold.CacheMisses, 1u);
    EXPECT_EQ(Cache.stores(), 1u);
  }

  // A fresh cache object (empty memory map, as after a process
  // restart) must serve the entry from disk, and in Full mode a
  // re-parsed Program must accept the re-bound statements.
  Program P2 = mustParse(StructProgram);
  const FunctionDecl &Fn2 = P2.Functions[0];
  TraceCache Fresh(TraceCacheMode::Full, Dir);
  CollectStats Warm;
  MethodTraces WarmTraces =
      collectTracesCached(P2, Fn2, StructProgram, Options, &Fresh, &Warm);
  EXPECT_EQ(Warm.CacheHits, 1u);
  EXPECT_EQ(Warm.CacheMisses, 0u);
  EXPECT_EQ(Fresh.hits(), 1u);
  expectDiscoveryStatsEqual(Cold, Warm);
  expectTracesEqual(ColdTraces, WarmTraces);
  EXPECT_EQ(WarmTraces.Fn, &Fn2); // re-bound, not dangling into P
}

TEST(TraceCacheTest, SerializedEntryRoundTrips) {
  Program P = mustParse(StructProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();
  std::string Dir = testing::TempDir() + "/liger_trace_cache_rt";
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec); // stale entries from prior runs

  TraceCache Cache(TraceCacheMode::Full, Dir);
  CollectStats Cold;
  collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Cold);

  TraceCacheKey Key = traceCacheKey(StructProgram, Fn.Name, Options);
  CachedTraceEntry Entry;
  ASSERT_TRUE(Cache.lookup(Key, Entry));
  std::string Bytes = serializeCacheEntry(Key, Entry);

  CachedTraceEntry Back;
  ASSERT_TRUE(deserializeCacheEntry(Bytes, Key, Back));
  EXPECT_EQ(Back.Attempts, Entry.Attempts);
  EXPECT_EQ(Back.OkRuns, Entry.OkRuns);
  EXPECT_EQ(Back.AcceptedInputs.size(), Entry.AcceptedInputs.size());
  EXPECT_EQ(Back.HasTraces, Entry.HasTraces);
  EXPECT_EQ(Back.Traces.Paths.size(), Entry.Traces.Paths.size());

  // A different key must reject the same bytes.
  TestGenOptions Other = Options;
  Other.Seed += 1;
  TraceCacheKey WrongKey = traceCacheKey(StructProgram, Fn.Name, Other);
  EXPECT_FALSE(deserializeCacheEntry(Bytes, WrongKey, Back));
}

TEST(TraceCacheTest, TruncationAtEveryOffsetIsMiss) {
  // The acceptance bar for the LGTR reader: an entry cut at ANY byte
  // offset must deserialize to false — no crash, no sanitizer finding,
  // no over-allocation.
  Program P = mustParse(StructProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();
  Options.TargetPaths = 2;
  Options.ExecutionsPerPath = 1;

  TraceCache Cache(TraceCacheMode::Full, "");
  CollectStats Cold;
  collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Cold);
  TraceCacheKey Key = traceCacheKey(StructProgram, Fn.Name, Options);
  CachedTraceEntry Entry;
  ASSERT_TRUE(Cache.lookup(Key, Entry));
  std::string Bytes = serializeCacheEntry(Key, Entry);
  ASSERT_GT(Bytes.size(), 48u);

  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    CachedTraceEntry Out;
    EXPECT_FALSE(deserializeCacheEntry(Bytes.substr(0, Len), Key, Out))
        << "truncation at " << Len << " parsed successfully";
  }
  CachedTraceEntry Out;
  EXPECT_TRUE(deserializeCacheEntry(Bytes, Key, Out));
}

TEST(TraceCacheTest, ByteFlipAtEveryOffsetIsMiss) {
  // The payload checksum must catch ANY single-byte corruption — even
  // flips inside stored values that would otherwise parse fine.
  Program P = mustParse(AbsProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();
  Options.TargetPaths = 2;
  Options.ExecutionsPerPath = 1;

  TraceCache Cache(TraceCacheMode::Full, "");
  CollectStats Cold;
  collectTracesCached(P, Fn, AbsProgram, Options, &Cache, &Cold);
  TraceCacheKey Key = traceCacheKey(AbsProgram, Fn.Name, Options);
  CachedTraceEntry Entry;
  ASSERT_TRUE(Cache.lookup(Key, Entry));
  std::string Bytes = serializeCacheEntry(Key, Entry);

  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ 0x5A);
    CachedTraceEntry Out;
    EXPECT_FALSE(deserializeCacheEntry(Bad, Key, Out))
        << "byte flip at " << I << " parsed successfully";
  }
}

TEST(TraceCacheTest, CorruptDiskEntryRecomputesCleanly) {
  Program P = mustParse(StructProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();
  std::string Dir = testing::TempDir() + "/liger_trace_cache_corrupt";
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec); // stale entries from prior runs

  CollectStats Cold;
  MethodTraces ColdTraces;
  {
    TraceCache Cache(TraceCacheMode::Full, Dir);
    ColdTraces =
        collectTracesCached(P, Fn, StructProgram, Options, &Cache, &Cold);
  }

  // Vandalize the stored entry, then look it up with a fresh cache:
  // the corrupt file must count as a miss and the pipeline recompute
  // must match the cold run.
  TraceCacheKey Key = traceCacheKey(StructProgram, Fn.Name, Options);
  TraceCache Fresh(TraceCacheMode::Full, Dir);
  std::string Path = Fresh.entryPath(Key);
  FILE *F = fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  fputs("not an LGTR entry", F);
  fclose(F);

  CollectStats Redo;
  MethodTraces RedoTraces =
      collectTracesCached(P, Fn, StructProgram, Options, &Fresh, &Redo);
  EXPECT_EQ(Redo.CacheMisses, 1u);
  EXPECT_EQ(Fresh.badEntries(), 1u);
  expectDiscoveryStatsEqual(Cold, Redo);
  expectTracesEqual(ColdTraces, RedoTraces);
}

TEST(TraceCacheTest, NullOrOffCacheBypasses) {
  Program P = mustParse(AbsProgram);
  const FunctionDecl &Fn = P.Functions[0];
  TestGenOptions Options = tinyTraceGen();

  CollectStats NoCache;
  collectTracesCached(P, Fn, AbsProgram, Options, nullptr, &NoCache);
  EXPECT_EQ(NoCache.CacheBypasses, 1u);
  EXPECT_EQ(NoCache.CacheHits + NoCache.CacheMisses, 0u);

  TraceCache Off(TraceCacheMode::Off, "");
  CollectStats OffStats;
  collectTracesCached(P, Fn, AbsProgram, Options, &Off, &OffStats);
  EXPECT_EQ(OffStats.CacheBypasses, 1u);
  EXPECT_EQ(Off.hits() + Off.misses(), 0u);
}

TEST(TraceCacheTest, ModeParsing) {
  TraceCacheMode Mode;
  EXPECT_TRUE(parseTraceCacheMode("off", Mode));
  EXPECT_EQ(Mode, TraceCacheMode::Off);
  EXPECT_TRUE(parseTraceCacheMode("inputs", Mode));
  EXPECT_EQ(Mode, TraceCacheMode::Inputs);
  EXPECT_TRUE(parseTraceCacheMode("full", Mode));
  EXPECT_EQ(Mode, TraceCacheMode::Full);
  EXPECT_FALSE(parseTraceCacheMode("Full", Mode));
  EXPECT_FALSE(parseTraceCacheMode("", Mode));
}

TEST(TraceCacheTest, MemoryStatsSurviveDiskRoundTrip) {
  // A memory-bomb method produces a "filtered" entry — no paths, but
  // the MemoryExceeded count must survive the on-disk LGTR format so
  // corpus filtering stays correct on warm runs.
  const char *Bomb =
      "void f() { string s = \"aaaaaaaa\"; while (true) { s = s + s; } }";
  Program P = mustParse(Bomb);
  TestGenOptions Options = tinyTraceGen();
  Options.Interp.Fuel = 2000;
  Options.Interp.MaxMemoryBytes = 1u << 20;
  Options.MaxAttempts = 5;
  Options.UseSymbolicSeeding = false;
  std::string Dir = testing::TempDir() + "/liger_trace_cache_membomb";
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);

  CollectStats Cold;
  {
    TraceCache Cache(TraceCacheMode::Full, Dir);
    MethodTraces Traces =
        collectTracesCached(P, P.Functions[0], Bomb, Options, &Cache, &Cold);
    EXPECT_TRUE(Traces.Paths.empty());
    EXPECT_TRUE(Cold.allMemoryExceeded());
    EXPECT_EQ(Cache.stores(), 1u);
  }

  Program P2 = mustParse(Bomb);
  TraceCache Fresh(TraceCacheMode::Full, Dir);
  CollectStats Warm;
  MethodTraces WarmTraces = collectTracesCached(P2, P2.Functions[0], Bomb,
                                                Options, &Fresh, &Warm);
  EXPECT_EQ(Warm.CacheHits, 1u);
  EXPECT_TRUE(WarmTraces.Paths.empty());
  EXPECT_TRUE(Warm.allMemoryExceeded());
  expectDiscoveryStatsEqual(Cold, Warm);
}
