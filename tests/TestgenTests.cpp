//===-- tests/TestgenTests.cpp - Unit tests for test generation -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/Coverage.h"
#include "testgen/InputGen.h"
#include "testgen/TraceCollector.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

const char *AbsProgram = R"(
int myAbs(int a) {
  if (a < 0)
    return -a;
  return a;
}
)";

const char *SortProgram = R"(
int[] sort(int[] A) {
  for (int i = 0; i < len(A); i++) {
    for (int j = 0; j + 1 < len(A) - i; j++) {
      if (A[j] > A[j + 1]) {
        int t = A[j];
        A[j] = A[j + 1];
        A[j + 1] = t;
      }
    }
  }
  return A;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Input generation
//===----------------------------------------------------------------------===//

TEST(InputGenTest, RespectsTypes) {
  Program P = mustParse(R"(
struct Pt { int x; bool b; }
int f(int a, bool c, string s, int[] arr, Pt p) { return a; }
)");
  Rng R(1);
  InputGenOptions Options;
  auto Inputs = randomInputs(P.Functions[0], P, R, Options);
  ASSERT_EQ(Inputs.size(), 5u);
  EXPECT_TRUE(Inputs[0].isInt());
  EXPECT_TRUE(Inputs[1].isBool());
  EXPECT_TRUE(Inputs[2].isString());
  EXPECT_TRUE(Inputs[3].isArray());
  EXPECT_TRUE(Inputs[4].isStruct());
  EXPECT_EQ(Inputs[4].elements().size(), 2u);
}

TEST(InputGenTest, IntsWithinDomain) {
  Program P = mustParse("int f(int a) { return a; }");
  Rng R(2);
  InputGenOptions Options;
  Options.IntLo = -3;
  Options.IntHi = 3;
  for (int I = 0; I < 200; ++I) {
    auto Inputs = randomInputs(P.Functions[0], P, R, Options);
    EXPECT_GE(Inputs[0].asInt(), -3);
    EXPECT_LE(Inputs[0].asInt(), 3);
  }
}

TEST(InputGenTest, ArrayLengthsFromChoices) {
  Program P = mustParse("int f(int[] a) { return 0; }");
  Rng R(3);
  InputGenOptions Options;
  Options.ArrayLenChoices = {2, 4};
  std::set<size_t> Seen;
  for (int I = 0; I < 100; ++I) {
    auto Inputs = randomInputs(P.Functions[0], P, R, Options);
    Seen.insert(Inputs[0].elements().size());
  }
  EXPECT_EQ(Seen, (std::set<size_t>{2, 4}));
}

TEST(InputGenTest, MutationChangesOneCell) {
  Program P = mustParse("int f(int a, int[] b) { return a; }");
  Rng R(4);
  InputGenOptions Options;
  auto Inputs = randomInputs(P.Functions[0], P, R, Options);
  for (int Trial = 0; Trial < 20; ++Trial) {
    auto Mutated = mutateInputs(Inputs, R, Options);
    ASSERT_EQ(Mutated.size(), Inputs.size());
    // Same shapes, and at most one scalar differs.
    EXPECT_EQ(Mutated[1].elements().size(), Inputs[1].elements().size());
    int Diffs = 0;
    if (!Mutated[0].equals(Inputs[0]))
      ++Diffs;
    for (size_t I = 0; I < Inputs[1].elements().size(); ++I)
      if (!Mutated[1].elements()[I].equals(Inputs[1].elements()[I]))
        ++Diffs;
    EXPECT_LE(Diffs, 1);
  }
}

TEST(InputGenTest, DeterministicUnderSeed) {
  Program P = mustParse("int f(int a, int[] b, string s) { return a; }");
  InputGenOptions Options;
  Rng R1(42), R2(42);
  for (int I = 0; I < 20; ++I) {
    auto A = randomInputs(P.Functions[0], P, R1, Options);
    auto B = randomInputs(P.Functions[0], P, R2, Options);
    for (size_t J = 0; J < A.size(); ++J)
      EXPECT_TRUE(A[J].equals(B[J]));
  }
}

//===----------------------------------------------------------------------===//
// Trace collection pipeline
//===----------------------------------------------------------------------===//

TEST(TraceCollectorTest, CollectsBothAbsPaths) {
  Program P = mustParse(AbsProgram);
  TestGenOptions Options;
  Options.TargetPaths = 4;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_EQ(Traces.Paths.size(), 2u);
  EXPECT_GT(Stats.OkRuns, 0u);
  for (const BlendedTrace &Path : Traces.Paths) {
    EXPECT_GE(Path.numConcrete(), 1u);
    EXPECT_LE(Path.numConcrete(), Options.ExecutionsPerPath);
    // States must be recorded in the final traces.
    for (const StateTrace &States : Path.Concrete)
      EXPECT_EQ(States.States.size(), Path.Symbolic.Steps.size());
  }
}

TEST(TraceCollectorTest, RespectsTargetPathsAndExecutions) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 5;
  Options.ExecutionsPerPath = 3;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  EXPECT_LE(Traces.Paths.size(), 5u);
  EXPECT_GE(Traces.Paths.size(), 2u);
  for (const BlendedTrace &Path : Traces.Paths)
    EXPECT_LE(Path.numConcrete(), 3u);
}

TEST(TraceCollectorTest, SymbolicSeedingFindsRarePath) {
  // The guard a == 77 is nearly impossible to hit at random within
  // [-8, 8]; the symbolic executor's witness must find it... except 77
  // is outside the solver domain too. Use a conjunction that is rare
  // for random draws but inside the domain.
  Program P = mustParse(R"(
int f(int a, int b, int c) {
  if (a == 7 && b == -6 && c == 5)
    return 1;
  return 0;
}
)");
  TestGenOptions Options;
  Options.TargetPaths = 8;
  Options.MaxAttempts = 50; // few random tries: ~unreachable by chance
  Options.UseSymbolicSeeding = true;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_EQ(Traces.Paths.size(), 2u);
  EXPECT_GE(Stats.SymbolicSeeds, 1u);
}

TEST(TraceCollectorTest, TimeoutsCounted) {
  Program P = mustParse("void f() { while (true) {} }");
  TestGenOptions Options;
  Options.Interp.Fuel = 200;
  Options.MaxAttempts = 5;
  Options.UseSymbolicSeeding = false;
  CollectStats Stats;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options, &Stats);
  EXPECT_TRUE(Traces.Paths.empty());
  EXPECT_TRUE(Stats.allTimedOut());
}

TEST(TraceCollectorTest, DeterministicUnderSeed) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.Seed = 99;
  MethodTraces A = collectTraces(P, P.Functions[0], Options);
  MethodTraces B = collectTraces(P, P.Functions[0], Options);
  ASSERT_EQ(A.Paths.size(), B.Paths.size());
  for (size_t I = 0; I < A.Paths.size(); ++I) {
    EXPECT_EQ(A.Paths[I].Symbolic.pathKey(), B.Paths[I].Symbolic.pathKey());
    EXPECT_EQ(A.Paths[I].numConcrete(), B.Paths[I].numConcrete());
  }
}

//===----------------------------------------------------------------------===//
// Coverage and reduction
//===----------------------------------------------------------------------===//

namespace {

MethodTraces collectAbs(Program &P) {
  TestGenOptions Options;
  Options.TargetPaths = 4;
  return collectTraces(P, P.Functions[0], Options);
}

} // namespace

TEST(CoverageTest, AllStatementLines) {
  Program P = mustParse(AbsProgram);
  std::set<unsigned> Lines = allStatementLines(P.Functions[0]);
  // if-cond, then-return, final return.
  EXPECT_EQ(Lines.size(), 3u);
}

TEST(CoverageTest, FullCollectionCoversEverything) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  EXPECT_DOUBLE_EQ(lineCoverageRatio(Traces), 1.0);
}

TEST(CoverageTest, SinglePathCoversPart) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  ASSERT_EQ(Traces.Paths.size(), 2u);
  MethodTraces One = selectPaths(Traces, {0});
  double Ratio = lineCoverageRatio(One);
  EXPECT_LT(Ratio, 1.0);
  EXPECT_GE(Ratio, 0.5);
}

TEST(CoverageTest, MinimalCoverKeepsCoverage) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 8;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  std::vector<size_t> Minimal = minimalLineCoveringPaths(Traces);
  EXPECT_LE(Minimal.size(), Traces.Paths.size());
  MethodTraces Reduced = selectPaths(Traces, Minimal);
  EXPECT_EQ(Reduced.coveredLines(), Traces.coveredLines());
}

TEST(CoverageTest, MinimalCoverIsMinimalForAbs) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  // Both paths are needed for full line coverage.
  EXPECT_EQ(minimalLineCoveringPaths(Traces).size(), 2u);
}

TEST(CoverageTest, ReduceConcreteKeepsSymbolic) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 6;
  Options.ExecutionsPerPath = 5;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  Rng R(5);
  MethodTraces Reduced = reduceConcreteTraces(Traces, 2, R);
  ASSERT_EQ(Reduced.Paths.size(), Traces.Paths.size());
  for (size_t I = 0; I < Reduced.Paths.size(); ++I) {
    EXPECT_EQ(Reduced.Paths[I].Symbolic.pathKey(),
              Traces.Paths[I].Symbolic.pathKey());
    EXPECT_LE(Reduced.Paths[I].numConcrete(), 2u);
    EXPECT_EQ(Reduced.Paths[I].Inputs.size(),
              Reduced.Paths[I].Concrete.size());
  }
}

TEST(CoverageTest, ReduceSymbolicPreservesLineCoverageAboveFloor) {
  Program P = mustParse(SortProgram);
  TestGenOptions Options;
  Options.TargetPaths = 8;
  MethodTraces Traces = collectTraces(P, P.Functions[0], Options);
  size_t Floor = minimalLineCoveringPaths(Traces).size();
  Rng R(6);
  MethodTraces Reduced = reduceSymbolicTraces(Traces, Floor, R);
  EXPECT_EQ(Reduced.Paths.size(), Floor);
  EXPECT_EQ(Reduced.coveredLines(), Traces.coveredLines());
}

TEST(CoverageTest, ReduceSymbolicBelowFloorDropsCoverage) {
  Program P = mustParse(AbsProgram);
  MethodTraces Traces = collectAbs(P);
  Rng R(7);
  MethodTraces Reduced = reduceSymbolicTraces(Traces, 1, R);
  EXPECT_EQ(Reduced.Paths.size(), 1u);
  EXPECT_LT(lineCoverageRatio(Reduced), 1.0);
}
