//===-- tests/NnTests.cpp - Unit tests for the autodiff/NN library --------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "nn/GradCheck.h"
#include "nn/Graph.h"
#include "nn/Module.h"
#include "nn/Optim.h"

#include <gtest/gtest.h>

using namespace liger;

namespace {

Var vec(std::initializer_list<float> Values) {
  return constant(Tensor::fromVector(Values));
}

} // namespace

//===----------------------------------------------------------------------===//
// Forward-value sanity
//===----------------------------------------------------------------------===//

TEST(GraphTest, MatvecForward) {
  Rng R(1);
  Tensor M = Tensor::zeros(2, 3);
  M.at(0, 0) = 1;
  M.at(0, 1) = 2;
  M.at(0, 2) = 3;
  M.at(1, 0) = 4;
  M.at(1, 1) = 5;
  M.at(1, 2) = 6;
  Var Y = matvec(constant(M), vec({1, 0, -1}));
  EXPECT_FLOAT_EQ(Y->Value[0], -2.0f);
  EXPECT_FLOAT_EQ(Y->Value[1], -2.0f);
}

TEST(GraphTest, ElementwiseForward) {
  Var A = vec({1, -2});
  Var B = vec({3, 4});
  EXPECT_FLOAT_EQ(add(A, B)->Value[1], 2.0f);
  EXPECT_FLOAT_EQ(sub(A, B)->Value[0], -2.0f);
  EXPECT_FLOAT_EQ(mul(A, B)->Value[1], -8.0f);
  EXPECT_FLOAT_EQ(scale(A, 2.0f)->Value[0], 2.0f);
  EXPECT_NEAR(tanhV(A)->Value[0], std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(sigmoidV(A)->Value[1], 1.0f / (1.0f + std::exp(2.0f)), 1e-6);
  EXPECT_FLOAT_EQ(reluV(A)->Value[1], 0.0f);
}

TEST(GraphTest, ConcatAndStack) {
  Var C = concat(vec({1, 2}), vec({3}));
  ASSERT_EQ(C->Value.size(), 3u);
  EXPECT_FLOAT_EQ(C->Value[2], 3.0f);

  Var S = stackScalars({vec({7}), vec({8})});
  EXPECT_FLOAT_EQ(S->Value[1], 8.0f);
}

TEST(GraphTest, SoftmaxNormalizes) {
  Var S = softmax(vec({1, 2, 3}));
  float Sum = S->Value[0] + S->Value[1] + S->Value[2];
  EXPECT_NEAR(Sum, 1.0f, 1e-6);
  EXPECT_GT(S->Value[2], S->Value[1]);
}

TEST(GraphTest, SoftmaxStableForLargeLogits) {
  Var S = softmax(vec({1000, 1001}));
  EXPECT_FALSE(std::isnan(S->Value[0]));
  EXPECT_NEAR(S->Value[0] + S->Value[1], 1.0f, 1e-6);
}

TEST(GraphTest, PoolsAndCombine) {
  std::vector<Var> Items{vec({1, 5}), vec({3, 2})};
  Var Max = maxPool(Items);
  EXPECT_FLOAT_EQ(Max->Value[0], 3.0f);
  EXPECT_FLOAT_EQ(Max->Value[1], 5.0f);
  Var Mean = meanPool(Items);
  EXPECT_FLOAT_EQ(Mean->Value[0], 2.0f);
  Var W = vec({0.25f, 0.75f});
  Var Combined = weightedCombine(Items, W);
  EXPECT_FLOAT_EQ(Combined->Value[0], 0.25f * 1 + 0.75f * 3);
}

TEST(GraphTest, CrossEntropyValue) {
  Var L = softmaxCrossEntropy(vec({0, 0, 0}), 1);
  EXPECT_NEAR(L->Value[0], std::log(3.0f), 1e-5);
}

TEST(GraphTest, ArgmaxHelper) {
  EXPECT_EQ(argmax(Tensor::fromVector({0.1f, 0.9f, 0.5f})), 1u);
}

//===----------------------------------------------------------------------===//
// Gradient checks per op
//===----------------------------------------------------------------------===//

namespace {

/// Helper: one parameter vector, build a loss from it, gradcheck.
void checkOp(const std::function<Var(const Var &)> &Build, size_t Dim = 4) {
  ParamStore Store;
  Rng R(7);
  Var P = Store.addParam("p", Tensor::uniform(Dim, 0.8f, R));
  GradCheckResult Result =
      checkGradients(Store, [&] { return Build(P); });
  EXPECT_TRUE(Result.Ok) << "max rel error " << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

} // namespace

TEST(GradCheckTest, AddSubMulScale) {
  checkOp([](const Var &P) {
    Var Q = add(P, scale(P, 0.5f));
    Q = sub(Q, mul(P, P));
    return sumV(mul(Q, Q));
  });
}

TEST(GradCheckTest, TanhSigmoidRelu) {
  checkOp([](const Var &P) {
    return sumV(mul(tanhV(P), sigmoidV(P)));
  });
  checkOp([](const Var &P) { return sumV(reluV(P)); });
}

TEST(GradCheckTest, MatvecAndDot) {
  ParamStore Store;
  Rng R(9);
  Var M = Store.addParam("M", Tensor::xavier(3, 4, R));
  Var X = Store.addParam("x", Tensor::uniform(4, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Y = matvec(M, X);
    return dot(Y, Y);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, ConcatRowStack) {
  ParamStore Store;
  Rng R(11);
  Var Table = Store.addParam("T", Tensor::xavier(5, 3, R));
  Var X = Store.addParam("x", Tensor::uniform(2, 0.5f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var E = row(Table, 2);
    Var C = concat(E, X);
    Var S1 = dot(C, C);
    Var S2 = sumV(row(Table, 2)); // same row twice: grads accumulate
    return sumV(stackScalars({S1, S2}));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, SoftmaxAndCrossEntropy) {
  checkOp([](const Var &P) { return softmaxCrossEntropy(P, 2); });
  checkOp([](const Var &P) {
    Var S = softmax(P);
    return dot(S, S);
  });
}

TEST(GradCheckTest, PoolingOps) {
  ParamStore Store;
  Rng R(13);
  Var A = Store.addParam("a", Tensor::uniform(4, 0.9f, R));
  Var B = Store.addParam("b", Tensor::uniform(4, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Mx = maxPool({A, B});
    Var Mn = meanPool({A, B});
    return add(dot(Mx, Mx), dot(Mn, Mn));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, WeightedCombineWithSoftmaxWeights) {
  ParamStore Store;
  Rng R(15);
  Var A = Store.addParam("a", Tensor::uniform(3, 0.9f, R));
  Var B = Store.addParam("b", Tensor::uniform(3, 0.9f, R));
  Var Scores = Store.addParam("s", Tensor::uniform(2, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var W = softmax(Scores);
    Var C = weightedCombine({A, B}, W);
    return dot(C, C);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

//===----------------------------------------------------------------------===//
// Gradient checks per module
//===----------------------------------------------------------------------===//

TEST(GradCheckTest, LinearAndMlp) {
  ParamStore Store;
  Rng R(17);
  Linear L(Store, "lin", 3, 2, R);
  Mlp M(Store, "mlp", 3, 4, 2, R);
  Var X = constant(Tensor::uniform(3, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Y = add(L.apply(X), M.apply(X));
    return dot(Y, Y);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

namespace {

void checkCell(CellKind Kind) {
  ParamStore Store;
  Rng R(19);
  RecurrentCell Cell(Store, "cell", Kind, 3, 4, R);
  std::vector<Var> Inputs{constant(Tensor::uniform(3, 0.9f, R)),
                          constant(Tensor::uniform(3, 0.9f, R)),
                          constant(Tensor::uniform(3, 0.9f, R))};
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<RecState> States = Cell.run(Inputs);
    Var Last = States.back().H;
    return dot(Last, Last);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

} // namespace

TEST(GradCheckTest, RnnCell) { checkCell(CellKind::Rnn); }
TEST(GradCheckTest, GruCell) { checkCell(CellKind::Gru); }
TEST(GradCheckTest, LstmCell) { checkCell(CellKind::Lstm); }

TEST(GradCheckTest, TreeLstm) {
  ParamStore Store;
  Rng R(21);
  ChildSumTreeLstm Tree(Store, "tree", 3, 4, R);
  EmbeddingTable Emb(Store, "emb", 6, 3, R);

  AstTree T;
  T.Label = "plus";
  AstTree L1N;
  L1N.Label = "a";
  AstTree L2N;
  L2N.Label = "b";
  AstTree Inner;
  Inner.Label = "times";
  Inner.Children = {L1N, L2N};
  AstTree L3N;
  L3N.Label = "c";
  T.Children = {Inner, L3N};

  auto Lookup = [&](const std::string &Label) {
    int Id = Label == "plus" ? 0
             : Label == "times" ? 1
             : Label == "a" ? 2
             : Label == "b" ? 3
                            : 4;
    return Emb.lookup(Id);
  };
  GradCheckResult Result = checkGradients(Store, [&] {
    Var H = Tree.embed(T, Lookup);
    return dot(H, H);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, AttentionScorer) {
  ParamStore Store;
  Rng R(23);
  AttentionScorer Attn(Store, "attn", 3, 4, 5, R);
  Var Q = constant(Tensor::uniform(3, 0.9f, R));
  std::vector<Var> Keys{constant(Tensor::uniform(4, 0.9f, R)),
                        constant(Tensor::uniform(4, 0.9f, R)),
                        constant(Tensor::uniform(4, 0.9f, R))};
  GradCheckResult Result = checkGradients(Store, [&] {
    Var W = Attn.weights(Q, Keys);
    Var C = weightedCombine(Keys, W);
    return dot(C, C);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

//===----------------------------------------------------------------------===//
// Learning sanity (end-to-end optimization)
//===----------------------------------------------------------------------===//

TEST(LearningTest, MlpLearnsXor) {
  ParamStore Store;
  Rng R(25);
  Mlp Net(Store, "xor", 2, 8, 2, R);
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.02f;
    return O;
  }());

  const float Inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const size_t Targets[4] = {0, 1, 1, 0};

  for (int Epoch = 0; Epoch < 300; ++Epoch) {
    std::vector<Var> Losses;
    for (int I = 0; I < 4; ++I) {
      Var X = constant(Tensor::fromVector({Inputs[I][0], Inputs[I][1]}));
      Losses.push_back(softmaxCrossEntropy(Net.apply(X), Targets[I]));
    }
    backward(meanLoss(Losses));
    Opt.step();
  }

  for (int I = 0; I < 4; ++I) {
    Var X = constant(Tensor::fromVector({Inputs[I][0], Inputs[I][1]}));
    EXPECT_EQ(argmax(Net.apply(X)->Value), Targets[I]) << "input " << I;
  }
}

TEST(LearningTest, GruLearnsLastToken) {
  // Classify a 4-token sequence by its last token: requires memory.
  ParamStore Store;
  Rng R(27);
  EmbeddingTable Emb(Store, "emb", 3, 6, R);
  RecurrentCell Cell(Store, "gru", CellKind::Gru, 6, 8, R);
  Linear Head(Store, "head", 8, 2, R);
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.02f;
    return O;
  }());

  Rng DataRng(31);
  auto Sample = [&](std::vector<int> &Tokens) -> size_t {
    Tokens.clear();
    for (int I = 0; I < 3; ++I)
      Tokens.push_back(static_cast<int>(DataRng.nextBelow(3)));
    size_t Label = DataRng.nextBelow(2);
    Tokens.push_back(Label == 1 ? 1 : 0);
    return Label;
  };

  for (int Iter = 0; Iter < 250; ++Iter) {
    std::vector<Var> Losses;
    for (int B = 0; B < 8; ++B) {
      std::vector<int> Tokens;
      size_t Label = Sample(Tokens);
      std::vector<Var> Inputs;
      for (int Tok : Tokens)
        Inputs.push_back(Emb.lookup(Tok));
      Var H = Cell.run(Inputs).back().H;
      Losses.push_back(softmaxCrossEntropy(Head.apply(H), Label));
    }
    backward(meanLoss(Losses));
    Opt.step();
  }

  int Correct = 0;
  for (int I = 0; I < 50; ++I) {
    std::vector<int> Tokens;
    size_t Label = Sample(Tokens);
    std::vector<Var> Inputs;
    for (int Tok : Tokens)
      Inputs.push_back(Emb.lookup(Tok));
    Var H = Cell.run(Inputs).back().H;
    if (argmax(Head.apply(H)->Value) == Label)
      ++Correct;
  }
  EXPECT_GE(Correct, 45);
}

//===----------------------------------------------------------------------===//
// Optimizer and store
//===----------------------------------------------------------------------===//

TEST(OptimTest, SgdReducesQuadratic) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({4.0f}));
  Sgd Opt(Store, 0.1f);
  for (int I = 0; I < 50; ++I) {
    Var Loss = mul(P, P);
    backward(Loss);
    Opt.step();
  }
  EXPECT_NEAR(P->Value[0], 0.0f, 1e-3);
}

TEST(OptimTest, AdamReducesQuadratic) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({4.0f, -3.0f}));
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.2f;
    return O;
  }());
  for (int I = 0; I < 200; ++I) {
    Var Loss = sumV(mul(P, P));
    backward(Loss);
    Opt.step();
  }
  EXPECT_NEAR(P->Value[0], 0.0f, 1e-2);
  EXPECT_NEAR(P->Value[1], 0.0f, 1e-2);
}

TEST(OptimTest, GradientClippingBoundsSteps) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({100.0f}));
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.1f;
    O.ClipNorm = 1.0f;
    return O;
  }());
  Var Loss = mul(P, P); // gradient 200, clipped to norm 1
  backward(Loss);
  double Norm = Opt.step();
  EXPECT_NEAR(Norm, 200.0, 1e-3);
  // Adam's normalized step is bounded by the learning rate regardless.
  EXPECT_NEAR(P->Value[0], 100.0f - 0.1f, 1e-2);
}

TEST(ParamStoreTest, SaveLoadRoundTrip) {
  std::string Path = testing::TempDir() + "/liger_params.bin";
  Rng R(33);
  ParamStore Store;
  Var A = Store.addParam("a", Tensor::uniform(5, 1.0f, R));
  Var M = Store.addParam("m", Tensor::xavier(3, 4, R));
  Tensor SavedA = A->Value;
  Tensor SavedM = M->Value;
  ASSERT_TRUE(Store.save(Path));

  // Perturb, then load back.
  A->Value.zero();
  M->Value.zero();
  ASSERT_TRUE(Store.load(Path));
  for (size_t I = 0; I < SavedA.size(); ++I)
    EXPECT_FLOAT_EQ(A->Value[I], SavedA[I]);
  for (size_t I = 0; I < SavedM.size(); ++I)
    EXPECT_FLOAT_EQ(M->Value[I], SavedM[I]);
}

TEST(ParamStoreTest, LoadRejectsMismatchedStore) {
  std::string Path = testing::TempDir() + "/liger_params2.bin";
  Rng R(35);
  ParamStore Store;
  Store.addParam("a", Tensor::uniform(5, 1.0f, R));
  ASSERT_TRUE(Store.save(Path));

  ParamStore Other;
  Other.addParam("b", Tensor::uniform(5, 1.0f, R));
  EXPECT_FALSE(Other.load(Path)); // name mismatch

  ParamStore WrongShape;
  WrongShape.addParam("a", Tensor::uniform(6, 1.0f, R));
  EXPECT_FALSE(WrongShape.load(Path));
}

TEST(ParamStoreTest, CountsScalars) {
  Rng R(37);
  ParamStore Store;
  Store.addParam("a", Tensor::zeros(5));
  Store.addParam("m", Tensor::zeros(3, 4));
  EXPECT_EQ(Store.numScalars(), 17u);
}

//===----------------------------------------------------------------------===//
// GraphArena
//===----------------------------------------------------------------------===//

TEST(GraphArenaTest, ResetReclaimsNodesAndReusesMemory) {
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);

  Var First = vec({1, 2, 3});
  void *FirstSlot = First;
  for (int I = 0; I < 600; ++I) // several slabs' worth
    First = scale(First, 1.0f);
  EXPECT_EQ(Arena.numLive(), 601u);
  EXPECT_EQ(Arena.peakLive(), 601u);

  Arena.reset();
  EXPECT_EQ(Arena.numLive(), 0u);
  EXPECT_EQ(Arena.peakLive(), 601u); // high-water mark survives reset

  // The next graph reuses the retained slabs: same node addresses.
  Var Again = vec({4, 5, 6});
  EXPECT_EQ(static_cast<void *>(Again), FirstSlot);
  EXPECT_FLOAT_EQ(Again->Value[0], 4.0f);
}

TEST(GraphArenaTest, GraphsStayCorrectAcrossResets) {
  // Values and gradients must be unaffected by buffer/slab recycling.
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (int Round = 0; Round < 3; ++Round) {
    Var A = parameter(Tensor::fromVector({1, 2}));
    Var B = vec({3, -1});
    Var L = dot(mul(A, B), vec({1, 1})); // L = 3*1 + (-1)*2 = 1
    backward(L);
    EXPECT_FLOAT_EQ(L->Value[0], 1.0f);
    EXPECT_FLOAT_EQ(A->Grad[0], 3.0f);
    EXPECT_FLOAT_EQ(A->Grad[1], -1.0f);
    Arena.reset();
  }
}

TEST(GraphArenaTest, ScopeRestoresPreviousArena) {
  GraphArena Outer;
  GraphArena::Scope OuterScope(Outer);
  Var Kept = vec({7});
  {
    GraphArena Inner;
    GraphArena::Scope InnerScope(Inner);
    vec({8});
    EXPECT_EQ(Inner.numLive(), 1u);
  } // Inner destroyed; Outer current again
  Var After = vec({9});
  EXPECT_EQ(Outer.numLive(), 2u);
  EXPECT_FLOAT_EQ(Kept->Value[0], 7.0f);
  EXPECT_FLOAT_EQ(After->Value[0], 9.0f);
}

//===----------------------------------------------------------------------===//
// GradSink routing
//===----------------------------------------------------------------------===//

TEST(GradSinkTest, RoutesParamGradsAwayFromSharedNodes) {
  Rng R(41);
  ParamStore Store;
  Var W = Store.addParam("w", Tensor::fromVector({2, -3}));
  Var X = vec({1, 4});

  GradSink Sink;
  backward(dot(W, X), Sink);

  // The shared parameter node is untouched; the sink holds dL/dW = X.
  EXPECT_TRUE(W->Grad.empty());
  ASSERT_TRUE(Sink.touched(0));
  EXPECT_FLOAT_EQ(Sink.grad(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(Sink.grad(0)[1], 4.0f);

  // Sinked gradients match a direct backward pass exactly.
  backward(dot(W, X));
  ASSERT_FALSE(W->Grad.empty());
  EXPECT_EQ(W->Grad[0], Sink.grad(0)[0]);
  EXPECT_EQ(W->Grad[1], Sink.grad(0)[1]);

  // accumulateSink folds the sink back into the parameter gradient.
  Store.accumulateSink(Sink);
  EXPECT_FLOAT_EQ(W->Grad[0], 2.0f);
  EXPECT_FLOAT_EQ(W->Grad[1], 8.0f);
}

TEST(GradSinkTest, UntouchedParamsHaveNoSlot) {
  Rng R(43);
  ParamStore Store;
  Store.addParam("used", Tensor::fromVector({1, 1}));
  Var Unused = Store.addParam("unused", Tensor::fromVector({5}));
  GradSink Sink;
  backward(sumV(mul(Store.params()[0], vec({2, 2}))), Sink);
  EXPECT_TRUE(Sink.touched(0));
  EXPECT_FALSE(Sink.touched(1));
  EXPECT_TRUE(Unused->Grad.empty());
}

TEST(AdamOptionsTest, ClippingDefaultsOff) {
  EXPECT_EQ(AdamOptions().ClipNorm, 0.0f);
}
