//===-- tests/NnTests.cpp - Unit tests for the autodiff/NN library --------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "nn/Checkpoint.h"
#include "nn/GradCheck.h"
#include "nn/Graph.h"
#include "nn/Module.h"
#include "nn/Optim.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace liger;

namespace {

Var vec(std::initializer_list<float> Values) {
  return constant(Tensor::fromVector(Values));
}

} // namespace

//===----------------------------------------------------------------------===//
// Forward-value sanity
//===----------------------------------------------------------------------===//

TEST(GraphTest, MatvecForward) {
  Rng R(1);
  Tensor M = Tensor::zeros(2, 3);
  M.at(0, 0) = 1;
  M.at(0, 1) = 2;
  M.at(0, 2) = 3;
  M.at(1, 0) = 4;
  M.at(1, 1) = 5;
  M.at(1, 2) = 6;
  Var Y = matvec(constant(M), vec({1, 0, -1}));
  EXPECT_FLOAT_EQ(Y->Value[0], -2.0f);
  EXPECT_FLOAT_EQ(Y->Value[1], -2.0f);
}

TEST(GraphTest, ElementwiseForward) {
  Var A = vec({1, -2});
  Var B = vec({3, 4});
  EXPECT_FLOAT_EQ(add(A, B)->Value[1], 2.0f);
  EXPECT_FLOAT_EQ(sub(A, B)->Value[0], -2.0f);
  EXPECT_FLOAT_EQ(mul(A, B)->Value[1], -8.0f);
  EXPECT_FLOAT_EQ(scale(A, 2.0f)->Value[0], 2.0f);
  EXPECT_NEAR(tanhV(A)->Value[0], std::tanh(1.0f), 1e-6);
  EXPECT_NEAR(sigmoidV(A)->Value[1], 1.0f / (1.0f + std::exp(2.0f)), 1e-6);
  EXPECT_FLOAT_EQ(reluV(A)->Value[1], 0.0f);
}

TEST(GraphTest, ConcatAndStack) {
  Var C = concat(vec({1, 2}), vec({3}));
  ASSERT_EQ(C->Value.size(), 3u);
  EXPECT_FLOAT_EQ(C->Value[2], 3.0f);

  Var S = stackScalars({vec({7}), vec({8})});
  EXPECT_FLOAT_EQ(S->Value[1], 8.0f);
}

TEST(GraphTest, SoftmaxNormalizes) {
  Var S = softmax(vec({1, 2, 3}));
  float Sum = S->Value[0] + S->Value[1] + S->Value[2];
  EXPECT_NEAR(Sum, 1.0f, 1e-6);
  EXPECT_GT(S->Value[2], S->Value[1]);
}

TEST(GraphTest, SoftmaxStableForLargeLogits) {
  Var S = softmax(vec({1000, 1001}));
  EXPECT_FALSE(std::isnan(S->Value[0]));
  EXPECT_NEAR(S->Value[0] + S->Value[1], 1.0f, 1e-6);
}

TEST(GraphTest, PoolsAndCombine) {
  std::vector<Var> Items{vec({1, 5}), vec({3, 2})};
  Var Max = maxPool(Items);
  EXPECT_FLOAT_EQ(Max->Value[0], 3.0f);
  EXPECT_FLOAT_EQ(Max->Value[1], 5.0f);
  Var Mean = meanPool(Items);
  EXPECT_FLOAT_EQ(Mean->Value[0], 2.0f);
  Var W = vec({0.25f, 0.75f});
  Var Combined = weightedCombine(Items, W);
  EXPECT_FLOAT_EQ(Combined->Value[0], 0.25f * 1 + 0.75f * 3);
}

TEST(GraphTest, CrossEntropyValue) {
  Var L = softmaxCrossEntropy(vec({0, 0, 0}), 1);
  EXPECT_NEAR(L->Value[0], std::log(3.0f), 1e-5);
}

TEST(GraphTest, ArgmaxHelper) {
  EXPECT_EQ(argmax(Tensor::fromVector({0.1f, 0.9f, 0.5f})), 1u);
}

//===----------------------------------------------------------------------===//
// Gradient checks per op
//===----------------------------------------------------------------------===//

namespace {

/// Helper: one parameter vector, build a loss from it, gradcheck.
void checkOp(const std::function<Var(const Var &)> &Build, size_t Dim = 4) {
  ParamStore Store;
  Rng R(7);
  Var P = Store.addParam("p", Tensor::uniform(Dim, 0.8f, R));
  GradCheckResult Result =
      checkGradients(Store, [&] { return Build(P); });
  EXPECT_TRUE(Result.Ok) << "max rel error " << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

} // namespace

TEST(GradCheckTest, AddSubMulScale) {
  checkOp([](const Var &P) {
    Var Q = add(P, scale(P, 0.5f));
    Q = sub(Q, mul(P, P));
    return sumV(mul(Q, Q));
  });
}

TEST(GradCheckTest, TanhSigmoidRelu) {
  checkOp([](const Var &P) {
    return sumV(mul(tanhV(P), sigmoidV(P)));
  });
  checkOp([](const Var &P) { return sumV(reluV(P)); });
}

TEST(GradCheckTest, MatvecAndDot) {
  ParamStore Store;
  Rng R(9);
  Var M = Store.addParam("M", Tensor::xavier(3, 4, R));
  Var X = Store.addParam("x", Tensor::uniform(4, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Y = matvec(M, X);
    return dot(Y, Y);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, ConcatRowStack) {
  ParamStore Store;
  Rng R(11);
  Var Table = Store.addParam("T", Tensor::xavier(5, 3, R));
  Var X = Store.addParam("x", Tensor::uniform(2, 0.5f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var E = row(Table, 2);
    Var C = concat(E, X);
    Var S1 = dot(C, C);
    Var S2 = sumV(row(Table, 2)); // same row twice: grads accumulate
    return sumV(stackScalars({S1, S2}));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, SoftmaxAndCrossEntropy) {
  checkOp([](const Var &P) { return softmaxCrossEntropy(P, 2); });
  checkOp([](const Var &P) {
    Var S = softmax(P);
    return dot(S, S);
  });
}

TEST(GradCheckTest, PoolingOps) {
  ParamStore Store;
  Rng R(13);
  Var A = Store.addParam("a", Tensor::uniform(4, 0.9f, R));
  Var B = Store.addParam("b", Tensor::uniform(4, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Mx = maxPool({A, B});
    Var Mn = meanPool({A, B});
    return add(dot(Mx, Mx), dot(Mn, Mn));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, WeightedCombineWithSoftmaxWeights) {
  ParamStore Store;
  Rng R(15);
  Var A = Store.addParam("a", Tensor::uniform(3, 0.9f, R));
  Var B = Store.addParam("b", Tensor::uniform(3, 0.9f, R));
  Var Scores = Store.addParam("s", Tensor::uniform(2, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var W = softmax(Scores);
    Var C = weightedCombine({A, B}, W);
    return dot(C, C);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

//===----------------------------------------------------------------------===//
// Gradient checks per module
//===----------------------------------------------------------------------===//

TEST(GradCheckTest, LinearAndMlp) {
  ParamStore Store;
  Rng R(17);
  Linear L(Store, "lin", 3, 2, R);
  Mlp M(Store, "mlp", 3, 4, 2, R);
  Var X = constant(Tensor::uniform(3, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var Y = add(L.apply(X), M.apply(X));
    return dot(Y, Y);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

namespace {

void checkCell(CellKind Kind) {
  ParamStore Store;
  Rng R(19);
  RecurrentCell Cell(Store, "cell", Kind, 3, 4, R);
  std::vector<Var> Inputs{constant(Tensor::uniform(3, 0.9f, R)),
                          constant(Tensor::uniform(3, 0.9f, R)),
                          constant(Tensor::uniform(3, 0.9f, R))};
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<RecState> States = Cell.run(Inputs);
    Var Last = States.back().H;
    return dot(Last, Last);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

} // namespace

TEST(GradCheckTest, RnnCell) { checkCell(CellKind::Rnn); }
TEST(GradCheckTest, GruCell) { checkCell(CellKind::Gru); }
TEST(GradCheckTest, LstmCell) { checkCell(CellKind::Lstm); }

TEST(GradCheckTest, TreeLstm) {
  ParamStore Store;
  Rng R(21);
  ChildSumTreeLstm Tree(Store, "tree", 3, 4, R);
  EmbeddingTable Emb(Store, "emb", 6, 3, R);

  AstTree T;
  T.Label = "plus";
  AstTree L1N;
  L1N.Label = "a";
  AstTree L2N;
  L2N.Label = "b";
  AstTree Inner;
  Inner.Label = "times";
  Inner.Children = {L1N, L2N};
  AstTree L3N;
  L3N.Label = "c";
  T.Children = {Inner, L3N};

  auto Lookup = [&](const std::string &Label) {
    int Id = Label == "plus" ? 0
             : Label == "times" ? 1
             : Label == "a" ? 2
             : Label == "b" ? 3
                            : 4;
    return Emb.lookup(Id);
  };
  GradCheckResult Result = checkGradients(Store, [&] {
    Var H = Tree.embed(T, Lookup);
    return dot(H, H);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, AttentionScorer) {
  ParamStore Store;
  Rng R(23);
  AttentionScorer Attn(Store, "attn", 3, 4, 5, R);
  Var Q = constant(Tensor::uniform(3, 0.9f, R));
  std::vector<Var> Keys{constant(Tensor::uniform(4, 0.9f, R)),
                        constant(Tensor::uniform(4, 0.9f, R)),
                        constant(Tensor::uniform(4, 0.9f, R))};
  GradCheckResult Result = checkGradients(Store, [&] {
    Var W = Attn.weights(Q, Keys);
    Var C = weightedCombine(Keys, W);
    return dot(C, C);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

//===----------------------------------------------------------------------===//
// Learning sanity (end-to-end optimization)
//===----------------------------------------------------------------------===//

TEST(LearningTest, MlpLearnsXor) {
  ParamStore Store;
  Rng R(25);
  Mlp Net(Store, "xor", 2, 8, 2, R);
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.02f;
    return O;
  }());

  const float Inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const size_t Targets[4] = {0, 1, 1, 0};

  for (int Epoch = 0; Epoch < 300; ++Epoch) {
    std::vector<Var> Losses;
    for (int I = 0; I < 4; ++I) {
      Var X = constant(Tensor::fromVector({Inputs[I][0], Inputs[I][1]}));
      Losses.push_back(softmaxCrossEntropy(Net.apply(X), Targets[I]));
    }
    backward(meanLoss(Losses));
    Opt.step();
  }

  for (int I = 0; I < 4; ++I) {
    Var X = constant(Tensor::fromVector({Inputs[I][0], Inputs[I][1]}));
    EXPECT_EQ(argmax(Net.apply(X)->Value), Targets[I]) << "input " << I;
  }
}

TEST(LearningTest, GruLearnsLastToken) {
  // Classify a 4-token sequence by its last token: requires memory.
  ParamStore Store;
  Rng R(27);
  EmbeddingTable Emb(Store, "emb", 3, 6, R);
  RecurrentCell Cell(Store, "gru", CellKind::Gru, 6, 8, R);
  Linear Head(Store, "head", 8, 2, R);
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.02f;
    return O;
  }());

  Rng DataRng(31);
  auto Sample = [&](std::vector<int> &Tokens) -> size_t {
    Tokens.clear();
    for (int I = 0; I < 3; ++I)
      Tokens.push_back(static_cast<int>(DataRng.nextBelow(3)));
    size_t Label = DataRng.nextBelow(2);
    Tokens.push_back(Label == 1 ? 1 : 0);
    return Label;
  };

  for (int Iter = 0; Iter < 250; ++Iter) {
    std::vector<Var> Losses;
    for (int B = 0; B < 8; ++B) {
      std::vector<int> Tokens;
      size_t Label = Sample(Tokens);
      std::vector<Var> Inputs;
      for (int Tok : Tokens)
        Inputs.push_back(Emb.lookup(Tok));
      Var H = Cell.run(Inputs).back().H;
      Losses.push_back(softmaxCrossEntropy(Head.apply(H), Label));
    }
    backward(meanLoss(Losses));
    Opt.step();
  }

  int Correct = 0;
  for (int I = 0; I < 50; ++I) {
    std::vector<int> Tokens;
    size_t Label = Sample(Tokens);
    std::vector<Var> Inputs;
    for (int Tok : Tokens)
      Inputs.push_back(Emb.lookup(Tok));
    Var H = Cell.run(Inputs).back().H;
    if (argmax(Head.apply(H)->Value) == Label)
      ++Correct;
  }
  EXPECT_GE(Correct, 45);
}

//===----------------------------------------------------------------------===//
// Optimizer and store
//===----------------------------------------------------------------------===//

TEST(OptimTest, SgdReducesQuadratic) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({4.0f}));
  Sgd Opt(Store, 0.1f);
  for (int I = 0; I < 50; ++I) {
    Var Loss = mul(P, P);
    backward(Loss);
    Opt.step();
  }
  EXPECT_NEAR(P->Value[0], 0.0f, 1e-3);
}

TEST(OptimTest, AdamReducesQuadratic) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({4.0f, -3.0f}));
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.2f;
    return O;
  }());
  for (int I = 0; I < 200; ++I) {
    Var Loss = sumV(mul(P, P));
    backward(Loss);
    Opt.step();
  }
  EXPECT_NEAR(P->Value[0], 0.0f, 1e-2);
  EXPECT_NEAR(P->Value[1], 0.0f, 1e-2);
}

TEST(OptimTest, GradientClippingBoundsSteps) {
  ParamStore Store;
  Var P = Store.addParam("p", Tensor::fromVector({100.0f}));
  Adam Opt(Store, [] {
    AdamOptions O;
    O.LearningRate = 0.1f;
    O.ClipNorm = 1.0f;
    return O;
  }());
  Var Loss = mul(P, P); // gradient 200, clipped to norm 1
  backward(Loss);
  double Norm = Opt.step();
  EXPECT_NEAR(Norm, 200.0, 1e-3);
  // Adam's normalized step is bounded by the learning rate regardless.
  EXPECT_NEAR(P->Value[0], 100.0f - 0.1f, 1e-2);
}

TEST(ParamStoreTest, SaveLoadRoundTrip) {
  std::string Path = testing::TempDir() + "/liger_params.bin";
  Rng R(33);
  ParamStore Store;
  Var A = Store.addParam("a", Tensor::uniform(5, 1.0f, R));
  Var M = Store.addParam("m", Tensor::xavier(3, 4, R));
  Tensor SavedA = A->Value;
  Tensor SavedM = M->Value;
  ASSERT_TRUE(Store.save(Path));

  // Perturb, then load back.
  A->Value.zero();
  M->Value.zero();
  ASSERT_TRUE(Store.load(Path));
  for (size_t I = 0; I < SavedA.size(); ++I)
    EXPECT_FLOAT_EQ(A->Value[I], SavedA[I]);
  for (size_t I = 0; I < SavedM.size(); ++I)
    EXPECT_FLOAT_EQ(M->Value[I], SavedM[I]);
}

TEST(ParamStoreTest, LoadRejectsMismatchedStore) {
  std::string Path = testing::TempDir() + "/liger_params2.bin";
  Rng R(35);
  ParamStore Store;
  Store.addParam("a", Tensor::uniform(5, 1.0f, R));
  ASSERT_TRUE(Store.save(Path));

  ParamStore Other;
  Other.addParam("b", Tensor::uniform(5, 1.0f, R));
  EXPECT_FALSE(Other.load(Path)); // name mismatch

  ParamStore WrongShape;
  WrongShape.addParam("a", Tensor::uniform(6, 1.0f, R));
  EXPECT_FALSE(WrongShape.load(Path));
}

TEST(ParamStoreTest, CountsScalars) {
  Rng R(37);
  ParamStore Store;
  Store.addParam("a", Tensor::zeros(5));
  Store.addParam("m", Tensor::zeros(3, 4));
  EXPECT_EQ(Store.numScalars(), 17u);
}

TEST(ParamStoreTest, SaveIsAtomicAndFailsCleanly) {
  std::string Missing = testing::TempDir() + "/liger_no_such_dir/params.bin";
  Rng R(39);
  ParamStore Store;
  Store.addParam("a", Tensor::uniform(4, 1.0f, R));

  std::string Error;
  EXPECT_FALSE(Store.save(Missing, &Error));
  EXPECT_FALSE(Error.empty());
  // Neither the target nor a stray temp file may exist after a failure.
  EXPECT_FALSE(std::ifstream(Missing).good());
  EXPECT_FALSE(std::ifstream(Missing + ".tmp").good());
}

//===----------------------------------------------------------------------===//
// Checkpoint format (full training state, corruption handling)
//===----------------------------------------------------------------------===//

namespace {

/// Runs a few Adam steps so moments and the step counter are non-trivial.
void stepAdamABit(ParamStore &Store, Adam &Opt, int Steps) {
  for (int I = 0; I < Steps; ++I) {
    Var Loss = sumV(mul(Store.params()[0], Store.params()[0]));
    backward(Loss);
    Opt.step();
  }
}

std::vector<std::vector<float>> dumpParams(const ParamStore &Store) {
  std::vector<std::vector<float>> Out;
  for (const Var &P : Store.params())
    Out.emplace_back(P->Value.data(), P->Value.data() + P->Value.size());
  return Out;
}

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spewFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

/// A small two-parameter store (vector + matrix), deterministic per seed.
void buildSmallStore(ParamStore &Store, uint64_t Seed) {
  Rng R(Seed);
  Store.addParam("bias", Tensor::uniform(5, 1.0f, R));
  Store.addParam("weight", Tensor::xavier(3, 4, R));
}

} // namespace

TEST(CheckpointTest, FullStateRoundTripIsBitwise) {
  std::string Path = testing::TempDir() + "/liger_full.ckpt";
  ParamStore Store;
  buildSmallStore(Store, 41);
  Adam Opt(Store);
  stepAdamABit(Store, Opt, 3);

  Rng R(99);
  R.next();
  TrainerState TS;
  TS.NextEpoch = 4;
  TS.BestEpoch = 2;
  TS.BestValidScore = 0.75;
  TS.FinalTrainLoss = 1.25;
  TS.RngState = R.state();
  TS.HasBest = true;
  for (const Var &P : Store.params())
    TS.BestParams.push_back(P->Value);

  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Store, &Opt, &TS, &Error)) << Error;

  ParamStore Fresh;
  buildSmallStore(Fresh, 77); // different init, same names/shapes
  Adam FreshOpt(Fresh);
  TrainerState Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Fresh, &FreshOpt, &Loaded, &Error))
      << Error;

  EXPECT_EQ(dumpParams(Fresh), dumpParams(Store));
  EXPECT_EQ(FreshOpt.stepCount(), Opt.stepCount());
  for (size_t I = 0; I < Store.params().size(); ++I) {
    const Tensor &M0 = Opt.firstMoments()[I], &M1 = FreshOpt.firstMoments()[I];
    const Tensor &V0 = Opt.secondMoments()[I],
                 &V1 = FreshOpt.secondMoments()[I];
    ASSERT_EQ(M0.size(), M1.size());
    EXPECT_EQ(std::memcmp(M0.data(), M1.data(), M0.size() * sizeof(float)), 0);
    EXPECT_EQ(std::memcmp(V0.data(), V1.data(), V0.size() * sizeof(float)), 0);
  }
  EXPECT_EQ(Loaded.NextEpoch, TS.NextEpoch);
  EXPECT_EQ(Loaded.BestEpoch, TS.BestEpoch);
  EXPECT_EQ(Loaded.BestValidScore, TS.BestValidScore);
  EXPECT_EQ(Loaded.FinalTrainLoss, TS.FinalTrainLoss);
  EXPECT_EQ(Loaded.RngState, TS.RngState);
  ASSERT_TRUE(Loaded.HasBest);
  ASSERT_EQ(Loaded.BestParams.size(), TS.BestParams.size());
  for (size_t I = 0; I < TS.BestParams.size(); ++I)
    EXPECT_EQ(std::memcmp(Loaded.BestParams[I].data(),
                          TS.BestParams[I].data(),
                          TS.BestParams[I].size() * sizeof(float)),
              0);

  // A resumed Rng continues the exact draw sequence.
  Rng Replay(1);
  Replay.setState(Loaded.RngState);
  EXPECT_EQ(Replay.next(), R.next());
}

TEST(CheckpointTest, ParamsOnlyLoadAcceptsFullCheckpoint) {
  std::string Path = testing::TempDir() + "/liger_full2.ckpt";
  ParamStore Store;
  buildSmallStore(Store, 43);
  Adam Opt(Store);
  stepAdamABit(Store, Opt, 2);
  TrainerState TS;
  TS.NextEpoch = 2;
  ASSERT_TRUE(saveCheckpoint(Path, Store, &Opt, &TS));

  // ParamStore::load skips the optimizer/trainer sections.
  ParamStore Fresh;
  buildSmallStore(Fresh, 44);
  std::string Error;
  ASSERT_TRUE(Fresh.load(Path, &Error)) << Error;
  EXPECT_EQ(dumpParams(Fresh), dumpParams(Store));

  // But a params-only file cannot satisfy a resume that needs
  // optimizer and trainer state.
  std::string ParamsOnly = testing::TempDir() + "/liger_paramsonly.ckpt";
  ASSERT_TRUE(Store.save(ParamsOnly));
  Adam FreshOpt(Fresh);
  TrainerState Loaded;
  EXPECT_FALSE(loadCheckpoint(ParamsOnly, Fresh, &FreshOpt, &Loaded, &Error));
  EXPECT_NE(Error.find("optimizer"), std::string::npos) << Error;
}

TEST(CheckpointTest, RejectsBadMagicAndVersionWithDiagnostic) {
  std::string Good = testing::TempDir() + "/liger_good.ckpt";
  std::string Bad = testing::TempDir() + "/liger_bad.ckpt";
  ParamStore Store;
  buildSmallStore(Store, 45);
  ASSERT_TRUE(Store.save(Good));
  std::string Bytes = slurpFile(Good);
  ASSERT_GE(Bytes.size(), 16u);

  std::string WrongMagic = Bytes;
  WrongMagic[0] = 'X';
  spewFile(Bad, WrongMagic);
  std::string Error;
  EXPECT_FALSE(Store.load(Bad, &Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;

  std::string WrongVersion = Bytes;
  WrongVersion[4] = 99;
  spewFile(Bad, WrongVersion);
  EXPECT_FALSE(Store.load(Bad, &Error));
  EXPECT_NE(Error.find("version 99"), std::string::npos) << Error;
}

TEST(CheckpointTest, TruncationAtEveryOffsetFailsCleanly) {
  // The acceptance bar for the reader: a checkpoint cut at ANY byte
  // offset must fail load() with a diagnostic — no crash, no sanitizer
  // finding, no over-allocation, and no partial mutation of the store.
  std::string Full = testing::TempDir() + "/liger_fuzz_full.ckpt";
  std::string Cut = testing::TempDir() + "/liger_fuzz_cut.ckpt";
  ParamStore Store;
  buildSmallStore(Store, 47);
  Adam Opt(Store);
  stepAdamABit(Store, Opt, 2);
  TrainerState TS;
  TS.NextEpoch = 1;
  TS.HasBest = true;
  for (const Var &P : Store.params())
    TS.BestParams.push_back(P->Value);
  ASSERT_TRUE(saveCheckpoint(Full, Store, &Opt, &TS));

  std::string Bytes = slurpFile(Full);
  ASSERT_GT(Bytes.size(), 64u);

  ParamStore Target;
  buildSmallStore(Target, 48);
  Adam TargetOpt(Target);
  std::vector<std::vector<float>> Pristine = dumpParams(Target);
  uint64_t PristineStep = TargetOpt.stepCount();

  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    spewFile(Cut, Bytes.substr(0, Len));
    TrainerState Ignored;
    std::string Error;
    ASSERT_FALSE(loadCheckpoint(Cut, Target, &TargetOpt, &Ignored, &Error))
        << "truncation at byte " << Len << " unexpectedly loaded";
    ASSERT_FALSE(Error.empty()) << "no diagnostic at byte " << Len;
    // Failed loads are transactional: the target is untouched.
    ASSERT_EQ(dumpParams(Target), Pristine) << "store mutated at " << Len;
    ASSERT_EQ(TargetOpt.stepCount(), PristineStep);
  }

  // The untruncated file still loads, proving the fuzz exercised the
  // real format rather than an unreadable artifact.
  TrainerState Loaded;
  std::string Error;
  EXPECT_TRUE(loadCheckpoint(Full, Target, &TargetOpt, &Loaded, &Error))
      << Error;
}

TEST(CheckpointTest, CorruptSectionLengthIsRejected) {
  std::string Good = testing::TempDir() + "/liger_seclen.ckpt";
  std::string Bad = testing::TempDir() + "/liger_seclen_bad.ckpt";
  ParamStore Store;
  buildSmallStore(Store, 49);
  ASSERT_TRUE(Store.save(Good));
  std::string Bytes = slurpFile(Good);

  // Bytes 20..27 hold the PRMS section length (after the 16-byte
  // header and 4-byte tag); shrinking it must be caught by the
  // consumed-vs-declared check, growing it by the EOF bound.
  for (int Delta : {-1, 1}) {
    std::string Corrupt = Bytes;
    Corrupt[20] = static_cast<char>(
        static_cast<unsigned char>(Corrupt[20]) + Delta);
    spewFile(Bad, Corrupt);
    std::string Error;
    EXPECT_FALSE(Store.load(Bad, &Error));
    EXPECT_FALSE(Error.empty());
  }
}

//===----------------------------------------------------------------------===//
// GraphArena
//===----------------------------------------------------------------------===//

TEST(GraphArenaTest, ResetReclaimsNodesAndReusesMemory) {
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);

  Var First = vec({1, 2, 3});
  void *FirstSlot = First;
  for (int I = 0; I < 600; ++I) // several slabs' worth
    First = scale(First, 1.0f);
  EXPECT_EQ(Arena.numLive(), 601u);
  EXPECT_EQ(Arena.peakLive(), 601u);

  Arena.reset();
  EXPECT_EQ(Arena.numLive(), 0u);
  EXPECT_EQ(Arena.peakLive(), 601u); // high-water mark survives reset

  // The next graph reuses the retained slabs: same node addresses.
  Var Again = vec({4, 5, 6});
  EXPECT_EQ(static_cast<void *>(Again), FirstSlot);
  EXPECT_FLOAT_EQ(Again->Value[0], 4.0f);
}

TEST(GraphArenaTest, GraphsStayCorrectAcrossResets) {
  // Values and gradients must be unaffected by buffer/slab recycling.
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (int Round = 0; Round < 3; ++Round) {
    Var A = parameter(Tensor::fromVector({1, 2}));
    Var B = vec({3, -1});
    Var L = dot(mul(A, B), vec({1, 1})); // L = 3*1 + (-1)*2 = 1
    backward(L);
    EXPECT_FLOAT_EQ(L->Value[0], 1.0f);
    EXPECT_FLOAT_EQ(A->Grad[0], 3.0f);
    EXPECT_FLOAT_EQ(A->Grad[1], -1.0f);
    Arena.reset();
  }
}

TEST(GraphArenaTest, ScopeRestoresPreviousArena) {
  GraphArena Outer;
  GraphArena::Scope OuterScope(Outer);
  Var Kept = vec({7});
  {
    GraphArena Inner;
    GraphArena::Scope InnerScope(Inner);
    vec({8});
    EXPECT_EQ(Inner.numLive(), 1u);
  } // Inner destroyed; Outer current again
  Var After = vec({9});
  EXPECT_EQ(Outer.numLive(), 2u);
  EXPECT_FLOAT_EQ(Kept->Value[0], 7.0f);
  EXPECT_FLOAT_EQ(After->Value[0], 9.0f);
}

//===----------------------------------------------------------------------===//
// GradSink routing
//===----------------------------------------------------------------------===//

TEST(GradSinkTest, RoutesParamGradsAwayFromSharedNodes) {
  Rng R(41);
  ParamStore Store;
  Var W = Store.addParam("w", Tensor::fromVector({2, -3}));
  Var X = vec({1, 4});

  GradSink Sink;
  backward(dot(W, X), Sink);

  // The shared parameter node is untouched; the sink holds dL/dW = X.
  EXPECT_TRUE(W->Grad.empty());
  ASSERT_TRUE(Sink.touched(0));
  EXPECT_FLOAT_EQ(Sink.grad(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(Sink.grad(0)[1], 4.0f);

  // Sinked gradients match a direct backward pass exactly.
  backward(dot(W, X));
  ASSERT_FALSE(W->Grad.empty());
  EXPECT_EQ(W->Grad[0], Sink.grad(0)[0]);
  EXPECT_EQ(W->Grad[1], Sink.grad(0)[1]);

  // accumulateSink folds the sink back into the parameter gradient.
  Store.accumulateSink(Sink);
  EXPECT_FLOAT_EQ(W->Grad[0], 2.0f);
  EXPECT_FLOAT_EQ(W->Grad[1], 8.0f);
}

TEST(GradSinkTest, UntouchedParamsHaveNoSlot) {
  Rng R(43);
  ParamStore Store;
  Store.addParam("used", Tensor::fromVector({1, 1}));
  Var Unused = Store.addParam("unused", Tensor::fromVector({5}));
  GradSink Sink;
  backward(sumV(mul(Store.params()[0], vec({2, 2}))), Sink);
  EXPECT_TRUE(Sink.touched(0));
  EXPECT_FALSE(Sink.touched(1));
  EXPECT_TRUE(Unused->Grad.empty());
}

TEST(AdamOptionsTest, ClippingDefaultsOff) {
  EXPECT_EQ(AdamOptions().ClipNorm, 0.0f);
}

//===----------------------------------------------------------------------===//
// Fused recurrent-cell kernels
//===----------------------------------------------------------------------===//

namespace {

/// RAII toggle for the fused-cell dispatch.
struct FusedGuard {
  explicit FusedGuard(bool Enabled) : Prev(fusedCellsEnabled()) {
    setFusedCellsEnabled(Enabled);
  }
  ~FusedGuard() { setFusedCellsEnabled(Prev); }
  bool Prev;
};

/// The three-node / two-level AST used by the TreeLSTM tests.
AstTree buildTestTree() {
  AstTree T;
  T.Label = "plus";
  AstTree L1N;
  L1N.Label = "a";
  AstTree L2N;
  L2N.Label = "b";
  AstTree Inner;
  Inner.Label = "times";
  Inner.Children = {L1N, L2N};
  AstTree L3N;
  L3N.Label = "c";
  T.Children = {Inner, L3N};
  return T;
}

std::function<Var(const std::string &)> treeLookup(const EmbeddingTable &Emb) {
  return [&Emb](const std::string &Label) {
    int Id = Label == "plus" ? 0
             : Label == "times" ? 1
             : Label == "a" ? 2
             : Label == "b" ? 3
                            : 4;
    return Emb.lookup(Id);
  };
}

} // namespace

// The per-gate reference paths (view nodes over the packed weights)
// must satisfy the same finite-difference checks as the fused default.
TEST(GradCheckTest, GruCellUnfusedReference) {
  FusedGuard Guard(false);
  checkCell(CellKind::Gru);
}

TEST(GradCheckTest, LstmCellUnfusedReference) {
  FusedGuard Guard(false);
  checkCell(CellKind::Lstm);
}

TEST(GradCheckTest, TreeLstmUnfusedReference) {
  FusedGuard Guard(false);
  ParamStore Store;
  Rng R(21);
  ChildSumTreeLstm Tree(Store, "tree", 3, 4, R);
  EmbeddingTable Emb(Store, "emb", 6, 3, R);
  AstTree T = buildTestTree();
  auto Lookup = treeLookup(Emb);
  GradCheckResult Result = checkGradients(Store, [&] {
    Var H = Tree.embed(T, Lookup);
    return dot(H, H);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

// Direct finite-difference checks of the fused ops, at sizes that
// exercise the SIMD kernels' remainder rows and scalar tails (neither
// H nor In a multiple of 8). Two chained steps make the state gradient
// flow through a second fused node.
TEST(GradCheckTest, GruCellOpPacked) {
  ParamStore Store;
  Rng R(51);
  const size_t In = 5, H = 6;
  Var Wx = Store.addParam("Wx", Tensor::xavier(3 * H, In, R));
  Var Bx = Store.addParam("bx", Tensor::uniform(3 * H, 0.2f, R));
  Var Wh = Store.addParam("Wh", Tensor::xavier(3 * H, H, R));
  Var X = Store.addParam("x", Tensor::uniform(In, 0.9f, R));
  Var H0 = Store.addParam("h0", Tensor::uniform(H, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var H1 = gruCellOp(Wx, Bx, Wh, X, H0);
    Var H2 = gruCellOp(Wx, Bx, Wh, X, H1);
    return dot(H2, H2);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, LstmCellOpPacked) {
  ParamStore Store;
  Rng R(53);
  const size_t In = 5, H = 6;
  Var Wx = Store.addParam("Wx", Tensor::xavier(4 * H, In, R));
  Var Bx = Store.addParam("bx", Tensor::uniform(4 * H, 0.2f, R));
  Var Wh = Store.addParam("Wh", Tensor::xavier(4 * H, H, R));
  Var X = Store.addParam("x", Tensor::uniform(In, 0.9f, R));
  Var H0 = Store.addParam("h0", Tensor::uniform(H, 0.9f, R));
  Var C0 = Store.addParam("c0", Tensor::uniform(H, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    CellOut S1 = lstmCellOp(Wx, Bx, Wh, X, H0, C0);
    CellOut S2 = lstmCellOp(Wx, Bx, Wh, X, S1.H, S1.C);
    return add(dot(S2.H, S2.H), dot(S2.C, S2.C));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, TreeLstmNodeOpPacked) {
  ParamStore Store;
  Rng R(55);
  const size_t In = 5, H = 6;
  Var Wx = Store.addParam("Wx", Tensor::xavier(4 * H, In, R));
  Var Bx = Store.addParam("bx", Tensor::uniform(4 * H, 0.2f, R));
  Var Wh = Store.addParam("Wh", Tensor::xavier(4 * H, H, R));
  Var X = Store.addParam("x", Tensor::uniform(In, 0.9f, R));
  Var H1 = Store.addParam("h1", Tensor::uniform(H, 0.9f, R));
  Var C1 = Store.addParam("c1", Tensor::uniform(H, 0.9f, R));
  Var H2 = Store.addParam("h2", Tensor::uniform(H, 0.9f, R));
  Var C2 = Store.addParam("c2", Tensor::uniform(H, 0.9f, R));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var HSum = add(H1, H2);
    CellOut Out = treeLstmNodeOp(Wx, Bx, Wh, X, HSum, {H1, H2}, {C1, C2});
    return add(dot(Out.H, Out.H), dot(Out.C, Out.C));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

//===----------------------------------------------------------------------===//
// Fused vs unfused bitwise equivalence
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::vector<float>> dumpGrads(const ParamStore &Store) {
  std::vector<std::vector<float>> Out;
  for (const Var &P : Store.params()) {
    if (P->Grad.empty())
      Out.emplace_back();
    else
      Out.emplace_back(P->Grad.data(), P->Grad.data() + P->Grad.size());
  }
  return Out;
}

struct StepResult {
  float Loss = 0.0f;
  std::vector<std::vector<float>> Grads;
  std::vector<std::vector<float>> ParamsAfter;
};

/// One full training step (batched loss, backward, Adam update) of a
/// sequence classifier built on \p Kind, with the fused dispatch
/// toggled by \p Fused. Identical seeds make the runs comparable down
/// to the bit.
StepResult runCellTrainingStep(CellKind Kind, bool Fused) {
  FusedGuard Guard(Fused);
  ParamStore Store;
  Rng R(61);
  EmbeddingTable Emb(Store, "emb", 5, 6, R);
  RecurrentCell Cell(Store, "cell", Kind, 6, 8, R);
  Linear Head(Store, "head", 8, 3, R);
  Adam Opt(Store);

  const int Tokens[3][4] = {{0, 1, 2, 3}, {4, 3, 2, 1}, {1, 1, 0, 2}};
  std::vector<Var> Losses;
  for (int S = 0; S < 3; ++S) {
    std::vector<Var> Inputs;
    for (int T = 0; T < 4; ++T)
      Inputs.push_back(Emb.lookup(Tokens[S][T]));
    Var H = Cell.run(Inputs).back().H;
    Losses.push_back(softmaxCrossEntropy(Head.apply(H), S));
  }
  Var Loss = meanLoss(Losses);
  backward(Loss);

  StepResult Result;
  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

StepResult runTreeTrainingStep(bool Fused) {
  FusedGuard Guard(Fused);
  ParamStore Store;
  Rng R(63);
  ChildSumTreeLstm Tree(Store, "tree", 6, 8, R);
  EmbeddingTable Emb(Store, "emb", 6, 6, R);
  Linear Head(Store, "head", 8, 3, R);
  Adam Opt(Store);

  AstTree T = buildTestTree();
  auto Lookup = treeLookup(Emb);
  Var H = Tree.embed(T, Lookup);
  Var Loss = softmaxCrossEntropy(Head.apply(H), 1);
  backward(Loss);

  StepResult Result;
  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

} // namespace

TEST(FusedEquivalenceTest, GruTrainingStepIsBitwise) {
  StepResult Fused = runCellTrainingStep(CellKind::Gru, true);
  StepResult Ref = runCellTrainingStep(CellKind::Gru, false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(FusedEquivalenceTest, LstmTrainingStepIsBitwise) {
  StepResult Fused = runCellTrainingStep(CellKind::Lstm, true);
  StepResult Ref = runCellTrainingStep(CellKind::Lstm, false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(FusedEquivalenceTest, TreeLstmTrainingStepIsBitwise) {
  StepResult Fused = runTreeTrainingStep(true);
  StepResult Ref = runTreeTrainingStep(false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(FusedEquivalenceTest, GradSinkRoutingIsBitwise) {
  // The thread-parallel trainer differentiates into per-sample sinks;
  // the fused backward must route parameter gradients through the sink
  // exactly like the reference graph does.
  auto RunSink = [](bool Fused) {
    FusedGuard Guard(Fused);
    ParamStore Store;
    Rng R(65);
    RecurrentCell Cell(Store, "cell", CellKind::Gru, 4, 6, R);
    std::vector<Var> Inputs{constant(Tensor::uniform(4, 0.9f, R)),
                            constant(Tensor::uniform(4, 0.9f, R))};
    Var H = Cell.run(Inputs).back().H;
    GradSink Sink;
    backward(dot(H, H), Sink);
    std::vector<std::vector<float>> Out;
    for (size_t I = 0; I < Store.params().size(); ++I) {
      if (!Sink.touched(I))
        Out.emplace_back();
      else
        Out.emplace_back(Sink.grad(I).data(),
                         Sink.grad(I).data() + Sink.grad(I).size());
    }
    return Out;
  };
  EXPECT_EQ(RunSink(true), RunSink(false));
}

//===----------------------------------------------------------------------===//
// Checkpoint migration: per-gate legacy layout -> packed gate weights
//===----------------------------------------------------------------------===//

namespace {

/// A store laid out like the pre-packing GRU registration: per-gate
/// Linear weights and biases, then per-gate hidden matrices, in the old
/// creation order.
void buildLegacyGruStore(ParamStore &Store, size_t In, size_t H,
                         uint64_t Seed) {
  Rng R(Seed);
  const char *Gates[] = {".Wz", ".Wr", ".Wn"};
  for (const char *G : Gates) {
    Store.addParam(std::string("gru") + G + ".W", Tensor::xavier(H, In, R));
    Store.addParam(std::string("gru") + G + ".b",
                   Tensor::uniform(H, 0.5f, R));
  }
  const char *HMats[] = {".Uz", ".Ur", ".Un"};
  for (const char *U : HMats)
    Store.addParam(std::string("gru") + U, Tensor::xavier(H, H, R));
}

} // namespace

TEST(CheckpointTest, LegacyPerGateCheckpointLoadsIntoPackedStore) {
  // A full training checkpoint (params + Adam moments + trainer best
  // snapshot) written from the per-gate layout must load bit-exactly
  // into today's packed-parameter store through the legacy-view
  // registry.
  std::string Path = testing::TempDir() + "/liger_legacy_gru.ckpt";
  const size_t In = 3, H = 4;
  ParamStore Legacy;
  buildLegacyGruStore(Legacy, In, H, 67);
  Adam LegacyOpt(Legacy);
  stepAdamABit(Legacy, LegacyOpt, 3);
  TrainerState TS;
  TS.NextEpoch = 5;
  TS.HasBest = true;
  for (const Var &P : Legacy.params())
    TS.BestParams.push_back(P->Value);
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Legacy, &LegacyOpt, &TS, &Error)) << Error;

  ParamStore Packed;
  Rng R(69);
  RecurrentCell Cell(Packed, "gru", CellKind::Gru, In, H, R);
  ASSERT_EQ(Packed.params().size(), 3u);
  Adam PackedOpt(Packed);
  TrainerState Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Packed, &PackedOpt, &Loaded, &Error))
      << Error;

  // params() order in the packed store: Wx [3H x In], bx [3H],
  // Wh [3H x H]; legacy store order: Wz.W, Wz.b, Wr.W, Wr.b, Wn.W,
  // Wn.b, Uz, Ur, Un.
  const Tensor &Wx = Packed.params()[0]->Value;
  const Tensor &Bx = Packed.params()[1]->Value;
  const Tensor &Wh = Packed.params()[2]->Value;
  for (size_t G = 0; G < 3; ++G) {
    const Tensor &LW = Legacy.params()[2 * G]->Value;
    const Tensor &LB = Legacy.params()[2 * G + 1]->Value;
    const Tensor &LU = Legacy.params()[6 + G]->Value;
    EXPECT_EQ(std::memcmp(Wx.data() + G * H * In, LW.data(),
                          H * In * sizeof(float)),
              0)
        << "x-weights of gate " << G;
    EXPECT_EQ(std::memcmp(Bx.data() + G * H, LB.data(), H * sizeof(float)),
              0)
        << "bias of gate " << G;
    EXPECT_EQ(
        std::memcmp(Wh.data() + G * H * H, LU.data(), H * H * sizeof(float)),
        0)
        << "h-weights of gate " << G;
  }

  // Adam moments and the best snapshot migrate region-by-region too.
  EXPECT_EQ(PackedOpt.stepCount(), LegacyOpt.stepCount());
  ASSERT_TRUE(Loaded.HasBest);
  ASSERT_EQ(Loaded.BestParams.size(), 3u);
  for (size_t G = 0; G < 3; ++G) {
    EXPECT_EQ(std::memcmp(PackedOpt.firstMoments()[0].data() + G * H * In,
                          LegacyOpt.firstMoments()[2 * G].data(),
                          H * In * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(PackedOpt.secondMoments()[2].data() + G * H * H,
                          LegacyOpt.secondMoments()[6 + G].data(),
                          H * H * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(Loaded.BestParams[0].data() + G * H * In,
                          TS.BestParams[2 * G].data(),
                          H * In * sizeof(float)),
              0);
  }
  EXPECT_EQ(Loaded.NextEpoch, TS.NextEpoch);
}

TEST(CheckpointTest, PartialLegacyCoverageIsRejected) {
  // Dropping one per-gate tensor must fail the coverage check and
  // leave the target store untouched.
  std::string Path = testing::TempDir() + "/liger_legacy_partial.ckpt";
  const size_t In = 3, H = 4;
  ParamStore Partial;
  Rng R0(71);
  Partial.addParam("gru.Wz.W", Tensor::xavier(H, In, R0));
  Partial.addParam("gru.Wz.b", Tensor::uniform(H, 0.5f, R0));
  // .Wr/.Wn and the hidden matrices are missing entirely.
  ASSERT_TRUE(Partial.save(Path));

  ParamStore Packed;
  Rng R(73);
  RecurrentCell Cell(Packed, "gru", CellKind::Gru, In, H, R);
  std::vector<std::vector<float>> Pristine = dumpParams(Packed);
  std::string Error;
  EXPECT_FALSE(Packed.load(Path, &Error));
  EXPECT_NE(Error.find("not fully covered"), std::string::npos) << Error;
  EXPECT_EQ(dumpParams(Packed), Pristine);
}

TEST(CheckpointTest, TreeLstmLegacyNamesMapToPackOrder) {
  // The TreeLSTM packs gates i, o, u, f while the legacy creation
  // order was Wi, Wf, Wo, Wu — the loader must honor the registered
  // row offsets, not positional order.
  std::string Path = testing::TempDir() + "/liger_legacy_tree.ckpt";
  const size_t In = 3, H = 4;
  ParamStore Legacy;
  Rng R0(75);
  const char *XNames[] = {".Wi", ".Wf", ".Wo", ".Wu"};
  for (const char *G : XNames) {
    Legacy.addParam(std::string("tree") + G + ".W", Tensor::xavier(H, In, R0));
    Legacy.addParam(std::string("tree") + G + ".b",
                    Tensor::uniform(H, 0.5f, R0));
  }
  const char *UNames[] = {".Ui", ".Uf", ".Uo", ".Uu"};
  for (const char *U : UNames)
    Legacy.addParam(std::string("tree") + U, Tensor::xavier(H, H, R0));
  ASSERT_TRUE(Legacy.save(Path));

  ParamStore Packed;
  Rng R(77);
  ChildSumTreeLstm Tree(Packed, "tree", In, H, R);
  std::string Error;
  ASSERT_TRUE(Packed.load(Path, &Error)) << Error;

  // Pack rows: i = 0, o = 1, u = 2, f = 3; legacy param order i, f, o, u.
  const size_t PackRow[] = {0, 3, 1, 2}; // for legacy order Wi, Wf, Wo, Wu
  const Tensor &Wx = Packed.params()[0]->Value;
  const Tensor &Wh = Packed.params()[2]->Value;
  for (size_t L = 0; L < 4; ++L) {
    const Tensor &LW = Legacy.params()[2 * L]->Value;
    const Tensor &LU = Legacy.params()[8 + L]->Value;
    EXPECT_EQ(std::memcmp(Wx.data() + PackRow[L] * H * In, LW.data(),
                          H * In * sizeof(float)),
              0)
        << "x-weights " << XNames[L];
    EXPECT_EQ(std::memcmp(Wh.data() + PackRow[L] * H * H, LU.data(),
                          H * H * sizeof(float)),
              0)
        << "h-weights " << UNames[L];
  }
}

//===----------------------------------------------------------------------===//
// Fused attention kernels
//===----------------------------------------------------------------------===//

namespace {

/// RAII toggle for the fused-attention dispatch.
struct FusedAttnGuard {
  explicit FusedAttnGuard(bool Enabled) : Prev(fusedAttentionEnabled()) {
    setFusedAttentionEnabled(Enabled);
  }
  ~FusedAttnGuard() { setFusedAttentionEnabled(Prev); }
  bool Prev;
};

/// Finite-difference check of one prepare() + contextOf() attention
/// step with every parameter and input (query, keys) perturbed. Odd
/// dims exercise the SIMD kernels' remainder lanes; \p T sweeps the
/// memory-size remainder cases.
void checkAttentionAt(size_t T) {
  ParamStore Store;
  Rng R(81);
  const size_t QDim = 5, KDim = 6, Hidden = 7;
  AttentionScorer Attn(Store, "attn", QDim, KDim, Hidden, R);
  Var Q = Store.addParam("q", Tensor::uniform(QDim, 0.9f, R));
  std::vector<Var> Keys;
  for (size_t I = 0; I < T; ++I)
    Keys.push_back(
        Store.addParam("k" + std::to_string(I), Tensor::uniform(KDim, 0.9f, R)));
  GradCheckResult Result = checkGradients(Store, [&] {
    AttentionScorer::Memory Mem = Attn.prepare(Keys);
    AttentionScorer::Result Out = Attn.contextOf(Q, Mem);
    return dot(Out.Context, Out.Context);
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

} // namespace

// SIMD-remainder memory sizes: below, at, and just past the kernels'
// vector widths.
TEST(GradCheckTest, AttentionOpMemory1) { checkAttentionAt(1); }
TEST(GradCheckTest, AttentionOpMemory3) { checkAttentionAt(3); }
TEST(GradCheckTest, AttentionOpMemory7) { checkAttentionAt(7); }
TEST(GradCheckTest, AttentionOpMemory9) { checkAttentionAt(9); }

// The per-pair reference graph must satisfy the same checks.
TEST(GradCheckTest, AttentionUnfusedReference) {
  FusedAttnGuard Guard(false);
  checkAttentionAt(3);
}

//===----------------------------------------------------------------------===//
// Batched vs per-pair attention bitwise equivalence
//===----------------------------------------------------------------------===//

namespace {

struct AttnStepResult {
  float Loss = 0.0f;
  std::vector<std::vector<float>> StepWeights;
  std::vector<std::vector<float>> Grads;
  std::vector<std::vector<float>> ParamsAfter;
};

/// One training step of a miniature teacher-forced attention decoder
/// (embedding -> recurrent cell with attended context -> logits), the
/// decoder shape SeqDecoder builds, with the fused-attention dispatch
/// toggled by \p Fused. The key projections are prepared once and
/// shared across every step, in both modes.
AttnStepResult runAttentionDecoderStep(CellKind Kind, bool Fused) {
  FusedAttnGuard Guard(Fused);
  ParamStore Store;
  Rng R(83);
  const size_t EmbDim = 6, Hidden = 8, KeyDim = 5, AttnHidden = 9,
               Vocab = 7;
  EmbeddingTable Emb(Store, "emb", Vocab, EmbDim, R);
  RecurrentCell Cell(Store, "cell", Kind, EmbDim + KeyDim, Hidden, R);
  AttentionScorer Attn(Store, "attn", Hidden, KeyDim, AttnHidden, R);
  Linear Head(Store, "head", Hidden + KeyDim, Vocab, R);
  std::vector<Var> Memory;
  for (int I = 0; I < 4; ++I)
    Memory.push_back(
        Store.addParam("m" + std::to_string(I), Tensor::uniform(KeyDim, 0.9f, R)));
  Adam Opt(Store);

  const int Targets[] = {4, 5, 6, 4, 2};
  AttentionScorer::Memory Mem = Attn.prepare(Memory);
  RecState State = Cell.initial();
  AttnStepResult Result;
  std::vector<Var> Losses;
  int Prev = 3;
  for (int Target : Targets) {
    AttentionScorer::Result Step = Attn.contextOf(State.H, Mem);
    Result.StepWeights.emplace_back(Step.Weights,
                                    Step.Weights + Memory.size());
    State = Cell.step(concat(Emb.lookup(Prev), Step.Context), State);
    Var Logits = Head.apply(concat(State.H, Step.Context));
    Losses.push_back(softmaxCrossEntropy(Logits, static_cast<size_t>(Target)));
    Prev = Target;
  }
  Var Loss = meanLoss(Losses);
  backward(Loss);

  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

/// One training step in the LIGER fusion-site shape: the component set
/// is re-prepared every step (components change per trace step there)
/// and the query is the evolving recurrent state.
AttnStepResult runFusionStyleStep(bool Fused) {
  FusedAttnGuard Guard(Fused);
  ParamStore Store;
  Rng R(85);
  const size_t Dim = 6, AttnHidden = 7;
  RecurrentCell Cell(Store, "cell", CellKind::Gru, Dim, Dim, R);
  AttentionScorer A1(Store, "a1", Dim, Dim, AttnHidden, R);
  std::vector<Var> Components;
  for (int I = 0; I < 3; ++I)
    Components.push_back(
        Store.addParam("c" + std::to_string(I), Tensor::uniform(Dim, 0.9f, R)));
  Adam Opt(Store);

  AttnStepResult Result;
  RecState State = Cell.initial();
  for (int J = 0; J < 3; ++J) {
    AttentionScorer::Memory Mem = A1.prepare(Components);
    AttentionScorer::Result Fusion = A1.contextOf(State.H, Mem);
    Result.StepWeights.emplace_back(Fusion.Weights,
                                    Fusion.Weights + Components.size());
    State = Cell.step(Fusion.Context, State);
  }
  Var Loss = dot(State.H, State.H);
  backward(Loss);

  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

} // namespace

TEST(AttentionEquivalenceTest, GruDecoderTrainingStepIsBitwise) {
  AttnStepResult Fused = runAttentionDecoderStep(CellKind::Gru, true);
  AttnStepResult Ref = runAttentionDecoderStep(CellKind::Gru, false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.StepWeights, Ref.StepWeights);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(AttentionEquivalenceTest, LstmDecoderTrainingStepIsBitwise) {
  AttnStepResult Fused = runAttentionDecoderStep(CellKind::Lstm, true);
  AttnStepResult Ref = runAttentionDecoderStep(CellKind::Lstm, false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.StepWeights, Ref.StepWeights);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(AttentionEquivalenceTest, FusionStyleChainIsBitwise) {
  AttnStepResult Fused = runFusionStyleStep(true);
  AttnStepResult Ref = runFusionStyleStep(false);
  EXPECT_EQ(Fused.Loss, Ref.Loss);
  EXPECT_EQ(Fused.StepWeights, Ref.StepWeights);
  EXPECT_EQ(Fused.Grads, Ref.Grads);
  EXPECT_EQ(Fused.ParamsAfter, Ref.ParamsAfter);
}

TEST(AttentionEquivalenceTest, ScoreAllMatchesPerPairScores) {
  // The batched pre-softmax scores must be bitwise what the per-pair
  // reference chain computes for each key.
  ParamStore Store;
  Rng R(87);
  AttentionScorer Attn(Store, "attn", 5, 6, 7, R);
  Var Q = constant(Tensor::uniform(5, 0.9f, R));
  std::vector<Var> Keys;
  for (int I = 0; I < 4; ++I)
    Keys.push_back(constant(Tensor::uniform(6, 0.9f, R)));
  Var Batched = Attn.scoreAll(Q, Keys);
  ASSERT_EQ(Batched->Value.size(), Keys.size());
  for (size_t I = 0; I < Keys.size(); ++I)
    EXPECT_EQ(Attn.scoreUnfused(Q, Keys[I])->Value[0], Batched->Value[I]);
}

TEST(AttentionEquivalenceTest, KeyProjMatchesReferenceRows) {
  // The fused [T x Hidden] key projection must be bitwise the
  // reference per-key add(matvec(colsView(W1), key), b1) rows.
  FusedAttnGuard FusedOn(true);
  ParamStore Store;
  Rng R(89);
  AttentionScorer Attn(Store, "attn", 5, 6, 7, R);
  std::vector<Var> Keys;
  for (int I = 0; I < 5; ++I)
    Keys.push_back(constant(Tensor::uniform(6, 0.9f, R)));
  AttentionScorer::Memory FusedMem = Attn.prepare(Keys);
  FusedAttnGuard FusedOff(false);
  AttentionScorer::Memory RefMem = Attn.prepare(Keys);
  ASSERT_NE(FusedMem.KeyProj, nullptr);
  ASSERT_EQ(RefMem.KeyProjRows.size(), Keys.size());
  for (size_t T = 0; T < Keys.size(); ++T) {
    const Tensor &Row = RefMem.KeyProjRows[T]->Value;
    EXPECT_EQ(std::memcmp(FusedMem.KeyProj->Value.data() + T * Row.size(),
                          Row.data(), Row.size() * sizeof(float)),
              0)
        << "key projection row " << T;
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint compatibility: pre-split attention checkpoints
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, AttentionMlpCheckpointLoadsUnchanged) {
  // AttentionScorer used to wrap an Mlp; the packed first layer is now
  // computed split (key-side / query-side column bands) but stored
  // unchanged, so a checkpoint written from the old Mlp layout must
  // load bit-exactly — params, Adam moments, and best snapshot alike.
  std::string Path = testing::TempDir() + "/liger_legacy_attn.ckpt";
  const size_t QDim = 3, KDim = 4, Hidden = 5;
  ParamStore Legacy;
  Rng R0(91);
  Mlp LegacyNet(Legacy, "attn", QDim + KDim, Hidden, 1, R0);
  Adam LegacyOpt(Legacy);
  stepAdamABit(Legacy, LegacyOpt, 3);
  TrainerState TS;
  TS.NextEpoch = 2;
  TS.HasBest = true;
  for (const Var &P : Legacy.params())
    TS.BestParams.push_back(P->Value);
  std::string Error;
  ASSERT_TRUE(saveCheckpoint(Path, Legacy, &LegacyOpt, &TS, &Error)) << Error;

  ParamStore Split;
  Rng R(93);
  AttentionScorer Attn(Split, "attn", QDim, KDim, Hidden, R);
  ASSERT_EQ(Split.params().size(), Legacy.params().size());
  Adam SplitOpt(Split);
  TrainerState Loaded;
  ASSERT_TRUE(loadCheckpoint(Path, Split, &SplitOpt, &Loaded, &Error))
      << Error;

  EXPECT_EQ(dumpParams(Split), dumpParams(Legacy));
  EXPECT_EQ(SplitOpt.stepCount(), LegacyOpt.stepCount());
  ASSERT_TRUE(Loaded.HasBest);
  for (size_t I = 0; I < Legacy.params().size(); ++I) {
    EXPECT_EQ(std::memcmp(SplitOpt.firstMoments()[I].data(),
                          LegacyOpt.firstMoments()[I].data(),
                          SplitOpt.firstMoments()[I].size() * sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(Loaded.BestParams[I].data(),
                          TS.BestParams[I].data(),
                          Loaded.BestParams[I].size() * sizeof(float)),
              0);
  }
}

//===----------------------------------------------------------------------===//
// Batched (matmul-backed) vs per-sample bitwise equivalence
//===----------------------------------------------------------------------===//

namespace {

struct BatchedGuard {
  explicit BatchedGuard(bool Enabled)
      : PrevCells(batchedCellsEnabled()),
        PrevAttn(batchedAttentionEnabled()),
        PrevLossHead(batchedLossHeadEnabled()) {
    setBatchedCellsEnabled(Enabled);
    setBatchedAttentionEnabled(Enabled);
    setBatchedLossHeadEnabled(Enabled);
  }
  ~BatchedGuard() {
    setBatchedCellsEnabled(PrevCells);
    setBatchedAttentionEnabled(PrevAttn);
    setBatchedLossHeadEnabled(PrevLossHead);
  }
  bool PrevCells, PrevAttn, PrevLossHead;
};

/// One training step of B token sequences advancing in lockstep
/// through stepBatch, with the batched dispatch toggled by \p Batched
/// (off = the per-sample fused step() loop). Identical seeds make the
/// runs comparable down to the bit.
StepResult runBatchedCellTrainingStep(CellKind Kind, size_t B,
                                      bool Batched) {
  BatchedGuard Guard(Batched);
  ParamStore Store;
  Rng R(71);
  EmbeddingTable Emb(Store, "emb", 5, 6, R);
  RecurrentCell Cell(Store, "cell", Kind, 6, 8, R);
  Linear Head(Store, "head", 8, 3, R);
  Adam Opt(Store);

  std::vector<RecState> States(B);
  for (size_t S = 0; S < B; ++S)
    States[S] = Cell.initial();
  for (int T = 0; T < 4; ++T) {
    std::vector<Var> Inputs;
    for (size_t S = 0; S < B; ++S)
      Inputs.push_back(Emb.lookup(static_cast<int>((S * 7 + T * 3) % 5)));
    States = Cell.stepBatch(Inputs, States);
  }
  std::vector<Var> Losses;
  for (size_t S = 0; S < B; ++S)
    Losses.push_back(
        softmaxCrossEntropy(Head.apply(States[S].H), S % 3));
  Var Loss = meanLoss(Losses);
  backward(Loss);

  StepResult Result;
  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

/// One training step scoring Q recurrent queries against one shared
/// prepared memory through contextOfMulti, with the multi-query
/// dispatch toggled by \p Batched (off = per-query contextOf loop).
AttnStepResult runMultiQueryStep(size_t Q, bool Batched) {
  BatchedGuard Guard(Batched);
  ParamStore Store;
  Rng R(73);
  const size_t QDim = 6, KeyDim = 5, AttnHidden = 7;
  AttentionScorer Attn(Store, "attn", QDim, KeyDim, AttnHidden, R);
  std::vector<Var> Queries;
  for (size_t I = 0; I < Q; ++I)
    Queries.push_back(
        Store.addParam("q" + std::to_string(I), Tensor::uniform(QDim, 0.9f, R)));
  std::vector<Var> Memory;
  for (int I = 0; I < 4; ++I)
    Memory.push_back(
        Store.addParam("m" + std::to_string(I), Tensor::uniform(KeyDim, 0.9f, R)));
  Adam Opt(Store);

  AttentionScorer::Memory Mem = Attn.prepare(Memory);
  std::vector<AttentionScorer::Result> Out = Attn.contextOfMulti(Queries, Mem);
  AttnStepResult Result;
  std::vector<Var> Norms;
  for (const AttentionScorer::Result &Ctx : Out) {
    Result.StepWeights.emplace_back(Ctx.Weights, Ctx.Weights + Memory.size());
    Norms.push_back(dot(Ctx.Context, Ctx.Context));
  }
  Var Loss = meanLoss(Norms);
  backward(Loss);

  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

void expectCellStepBitwise(CellKind Kind, size_t B) {
  StepResult Batched = runBatchedCellTrainingStep(Kind, B, true);
  StepResult Ref = runBatchedCellTrainingStep(Kind, B, false);
  EXPECT_EQ(Batched.Loss, Ref.Loss) << "B=" << B;
  EXPECT_EQ(Batched.Grads, Ref.Grads) << "B=" << B;
  EXPECT_EQ(Batched.ParamsAfter, Ref.ParamsAfter) << "B=" << B;
}

void expectMultiQueryBitwise(size_t Q) {
  AttnStepResult Batched = runMultiQueryStep(Q, true);
  AttnStepResult Ref = runMultiQueryStep(Q, false);
  EXPECT_EQ(Batched.Loss, Ref.Loss) << "Q=" << Q;
  EXPECT_EQ(Batched.StepWeights, Ref.StepWeights) << "Q=" << Q;
  EXPECT_EQ(Batched.Grads, Ref.Grads) << "Q=" << Q;
  EXPECT_EQ(Batched.ParamsAfter, Ref.ParamsAfter) << "Q=" << Q;
}

/// One training step of B lanes through the projection + softmax-CE
/// loss head, with the single-matmul batch dispatch toggled by
/// \p Batched (off = per-lane softmaxCrossEntropy(apply(x)) chain).
StepResult runLossHeadStep(size_t B, bool Batched) {
  BatchedGuard Guard(Batched);
  ParamStore Store;
  Rng R(85);
  const size_t In = 7, V = 5;
  Linear Head(Store, "head", In, V, R);
  std::vector<Var> Xs;
  std::vector<size_t> Targets;
  for (size_t I = 0; I < B; ++I) {
    Xs.push_back(Store.addParam("x" + std::to_string(I),
                                Tensor::uniform(In, 0.9f, R)));
    Targets.push_back(I % V);
  }
  Adam Opt(Store);

  std::vector<Var> Losses = Head.softmaxCrossEntropyBatch(Xs, Targets);
  Var Loss = meanLoss(Losses);
  backward(Loss);

  StepResult Result;
  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

void expectLossHeadBitwise(size_t B) {
  StepResult Batched = runLossHeadStep(B, true);
  StepResult Ref = runLossHeadStep(B, false);
  EXPECT_EQ(Batched.Loss, Ref.Loss) << "B=" << B;
  EXPECT_EQ(Batched.Grads, Ref.Grads) << "B=" << B;
  EXPECT_EQ(Batched.ParamsAfter, Ref.ParamsAfter) << "B=" << B;
}

/// One training step scoring Q queries each against its OWN prepared
/// memory (distinct lengths) through contextOfMultiMemory, with the
/// batched dispatch toggled by \p Batched (off = per-query contextOf).
AttnStepResult runMultiMemoryStep(size_t Q, bool Batched) {
  BatchedGuard Guard(Batched);
  ParamStore Store;
  Rng R(87);
  const size_t QDim = 6, KeyDim = 5, AttnHidden = 7;
  AttentionScorer Attn(Store, "attn", QDim, KeyDim, AttnHidden, R);
  std::vector<Var> Queries;
  std::vector<std::vector<Var>> Keys(Q);
  for (size_t I = 0; I < Q; ++I) {
    Queries.push_back(Store.addParam("q" + std::to_string(I),
                                     Tensor::uniform(QDim, 0.9f, R)));
    // Memory lengths differ per query (2, 3, 4, ...): the batched op
    // must handle ragged key counts.
    for (size_t T = 0; T < 2 + I; ++T)
      Keys[I].push_back(
          Store.addParam("m" + std::to_string(I) + "_" + std::to_string(T),
                         Tensor::uniform(KeyDim, 0.9f, R)));
  }
  Adam Opt(Store);

  std::vector<AttentionScorer::Memory> Mems;
  Mems.reserve(Q);
  for (size_t I = 0; I < Q; ++I)
    Mems.push_back(Attn.prepare(Keys[I]));
  std::vector<const AttentionScorer::Memory *> MemPtrs;
  for (const AttentionScorer::Memory &M : Mems)
    MemPtrs.push_back(&M);
  std::vector<AttentionScorer::Result> Out =
      Attn.contextOfMultiMemory(Queries, MemPtrs);

  AttnStepResult Result;
  std::vector<Var> Norms;
  for (size_t I = 0; I < Out.size(); ++I) {
    Result.StepWeights.emplace_back(Out[I].Weights,
                                    Out[I].Weights + Keys[I].size());
    Norms.push_back(dot(Out[I].Context, Out[I].Context));
  }
  Var Loss = meanLoss(Norms);
  backward(Loss);

  Result.Loss = Loss->Value[0];
  Result.Grads = dumpGrads(Store);
  Opt.step();
  Result.ParamsAfter = dumpParams(Store);
  return Result;
}

void expectMultiMemoryBitwise(size_t Q) {
  AttnStepResult Batched = runMultiMemoryStep(Q, true);
  AttnStepResult Ref = runMultiMemoryStep(Q, false);
  EXPECT_EQ(Batched.Loss, Ref.Loss) << "Q=" << Q;
  EXPECT_EQ(Batched.StepWeights, Ref.StepWeights) << "Q=" << Q;
  EXPECT_EQ(Batched.Grads, Ref.Grads) << "Q=" << Q;
  EXPECT_EQ(Batched.ParamsAfter, Ref.ParamsAfter) << "Q=" << Q;
}

} // namespace

TEST(BatchedKernelEquivalenceTest, MatmulRowsMatchMatvec) {
  // Every [B x Rows] tiled-matmul output row must be bitwise the
  // per-vector matvecStrided row (and with it the dot reduction).
  // Sizes cover the register tile's edges: odd row counts, odd vector
  // counts, and reduction lengths below/at/past the SIMD chunk widths.
  Rng R(75);
  for (size_t Rows : {1u, 2u, 5u, 8u}) {
    for (size_t Cols : {1u, 5u, 16u, 37u}) {
      for (size_t B : {1u, 2u, 3u, 8u}) {
        Tensor M = Tensor::uniform(Rows * Cols, 1.0f, R);
        Tensor X = Tensor::uniform(B * Cols, 1.0f, R);
        Tensor Tiled = Tensor::raw(B, Rows);
        kernels::matmul(B, Rows, Cols, M.data(), Cols, X.data(), Cols,
                        Tiled.data(), Rows);
        Tensor Ref = Tensor::raw(B, Rows);
        for (size_t Bi = 0; Bi < B; ++Bi)
          kernels::matvecStrided(Rows, Cols, Cols, M.data(),
                                 X.data() + Bi * Cols,
                                 Ref.data() + Bi * Rows);
        EXPECT_EQ(std::memcmp(Tiled.data(), Ref.data(),
                              B * Rows * sizeof(float)),
                  0)
            << "Rows=" << Rows << " Cols=" << Cols << " B=" << B;
      }
    }
  }
}

TEST(BatchedKernelEquivalenceTest, MatmulTAccMatchesMatvecTAcc) {
  Rng R(77);
  for (size_t Rows : {2u, 5u}) {
    for (size_t Cols : {5u, 19u}) {
      for (size_t B : {1u, 3u}) {
        Tensor M = Tensor::uniform(Rows * Cols, 1.0f, R);
        Tensor G = Tensor::uniform(B * Rows, 1.0f, R);
        Tensor Acc = Tensor::zeros(B, Cols);
        kernels::matmulTAcc(B, Rows, Cols, M.data(), Cols, G.data(), Rows,
                            Acc.data(), Cols);
        Tensor Ref = Tensor::zeros(B, Cols);
        for (size_t Bi = 0; Bi < B; ++Bi)
          kernels::matvecTAccStrided(Rows, Cols, Cols, M.data(),
                                     G.data() + Bi * Rows,
                                     Ref.data() + Bi * Cols);
        EXPECT_EQ(std::memcmp(Acc.data(), Ref.data(),
                              B * Cols * sizeof(float)),
                  0)
            << "Rows=" << Rows << " Cols=" << Cols << " B=" << B;
      }
    }
  }
}

TEST(BatchedKernelEquivalenceTest, GruStepIsBitwiseAtB1) {
  expectCellStepBitwise(CellKind::Gru, 1);
}
TEST(BatchedKernelEquivalenceTest, GruStepIsBitwiseAtB3) {
  expectCellStepBitwise(CellKind::Gru, 3);
}
TEST(BatchedKernelEquivalenceTest, GruStepIsBitwiseAtB8) {
  expectCellStepBitwise(CellKind::Gru, 8);
}
TEST(BatchedKernelEquivalenceTest, LstmStepIsBitwiseAtB1) {
  expectCellStepBitwise(CellKind::Lstm, 1);
}
TEST(BatchedKernelEquivalenceTest, LstmStepIsBitwiseAtB3) {
  expectCellStepBitwise(CellKind::Lstm, 3);
}
TEST(BatchedKernelEquivalenceTest, LstmStepIsBitwiseAtB8) {
  expectCellStepBitwise(CellKind::Lstm, 8);
}

TEST(BatchedKernelEquivalenceTest, MultiQueryAttentionIsBitwiseAtQ1) {
  expectMultiQueryBitwise(1);
}
TEST(BatchedKernelEquivalenceTest, MultiQueryAttentionIsBitwiseAtQ4) {
  expectMultiQueryBitwise(4);
}

TEST(BatchedKernelEquivalenceTest, LossHeadIsBitwiseAtB1) {
  expectLossHeadBitwise(1);
}
TEST(BatchedKernelEquivalenceTest, LossHeadIsBitwiseAtB3) {
  expectLossHeadBitwise(3);
}
TEST(BatchedKernelEquivalenceTest, LossHeadIsBitwiseAtB8) {
  expectLossHeadBitwise(8);
}

TEST(BatchedKernelEquivalenceTest, MultiMemoryAttentionIsBitwiseAtQ1) {
  expectMultiMemoryBitwise(1);
}
TEST(BatchedKernelEquivalenceTest, MultiMemoryAttentionIsBitwiseAtQ4) {
  expectMultiMemoryBitwise(4);
}

// Direct finite-difference checks of the batch ops, at sizes that
// exercise the matmul tile's edge rows and scalar tails. Two chained
// batch steps make state gradients flow through the row views.
TEST(GradCheckTest, GruCellBatchOpPacked) {
  ParamStore Store;
  Rng R(79);
  const size_t In = 5, H = 6, B = 3;
  Var Wx = Store.addParam("Wx", Tensor::xavier(3 * H, In, R));
  Var Bx = Store.addParam("bx", Tensor::uniform(3 * H, 0.2f, R));
  Var Wh = Store.addParam("Wh", Tensor::xavier(3 * H, H, R));
  std::vector<Var> Xs, H0s;
  for (size_t I = 0; I < B; ++I) {
    Xs.push_back(Store.addParam("x" + std::to_string(I),
                                Tensor::uniform(In, 0.9f, R)));
    H0s.push_back(Store.addParam("h" + std::to_string(I),
                                 Tensor::uniform(H, 0.9f, R)));
  }
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<Var> H1 = gruCellBatchOp(Wx, Bx, Wh, Xs, H0s);
    std::vector<Var> H2 = gruCellBatchOp(Wx, Bx, Wh, Xs, H1);
    std::vector<Var> Norms;
    for (const Var &Hv : H2)
      Norms.push_back(dot(Hv, Hv));
    return sumV(stackScalars(Norms));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, LstmCellBatchOpPacked) {
  ParamStore Store;
  Rng R(81);
  const size_t In = 5, H = 6, B = 3;
  Var Wx = Store.addParam("Wx", Tensor::xavier(4 * H, In, R));
  Var Bx = Store.addParam("bx", Tensor::uniform(4 * H, 0.2f, R));
  Var Wh = Store.addParam("Wh", Tensor::xavier(4 * H, H, R));
  std::vector<Var> Xs, H0s, C0s;
  for (size_t I = 0; I < B; ++I) {
    Xs.push_back(Store.addParam("x" + std::to_string(I),
                                Tensor::uniform(In, 0.9f, R)));
    H0s.push_back(Store.addParam("h" + std::to_string(I),
                                 Tensor::uniform(H, 0.9f, R)));
    C0s.push_back(Store.addParam("c" + std::to_string(I),
                                 Tensor::uniform(H, 0.9f, R)));
  }
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<CellOut> S1 = lstmCellBatchOp(Wx, Bx, Wh, Xs, H0s, C0s);
    std::vector<Var> H1s, C1s;
    for (const CellOut &S : S1) {
      H1s.push_back(S.H);
      C1s.push_back(S.C);
    }
    std::vector<CellOut> S2 = lstmCellBatchOp(Wx, Bx, Wh, Xs, H1s, C1s);
    std::vector<Var> Norms;
    for (const CellOut &S : S2)
      Norms.push_back(add(dot(S.H, S.H), dot(S.C, S.C)));
    return sumV(stackScalars(Norms));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, AttentionMultiQueryOpPacked) {
  ParamStore Store;
  Rng R(83);
  const size_t QDim = 5, KeyDim = 4, H = 6, Q = 2, T = 3;
  Var W1 = Store.addParam("W1", Tensor::xavier(H, KeyDim + QDim, R));
  Var B1 = Store.addParam("b1", Tensor::uniform(H, 0.2f, R));
  Var W2 = Store.addParam("W2", Tensor::xavier(1, H, R));
  Var B2 = Store.addParam("b2", Tensor::uniform(1, 0.2f, R));
  std::vector<Var> Queries, Keys;
  for (size_t I = 0; I < Q; ++I)
    Queries.push_back(Store.addParam("q" + std::to_string(I),
                                     Tensor::uniform(QDim, 0.9f, R)));
  for (size_t I = 0; I < T; ++I)
    Keys.push_back(Store.addParam("k" + std::to_string(I),
                                  Tensor::uniform(KeyDim, 0.9f, R)));
  GradCheckResult Result = checkGradients(Store, [&] {
    Var KP = attentionKeyProj(W1, B1, Keys);
    std::vector<AttnOut> Out =
        attentionMultiQueryOp(W1, W2, B2, Queries, KP, Keys);
    std::vector<Var> Norms;
    for (const AttnOut &A : Out)
      Norms.push_back(dot(A.Context, A.Context));
    return sumV(stackScalars(Norms));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, AttentionMultiMemoryOpPacked) {
  ParamStore Store;
  Rng R(89);
  const size_t QDim = 5, KeyDim = 4, H = 6, Q = 3;
  Var W1 = Store.addParam("W1", Tensor::xavier(H, KeyDim + QDim, R));
  Var B1 = Store.addParam("b1", Tensor::uniform(H, 0.2f, R));
  Var W2 = Store.addParam("W2", Tensor::xavier(1, H, R));
  Var B2 = Store.addParam("b2", Tensor::uniform(1, 0.2f, R));
  std::vector<Var> Queries;
  std::vector<std::vector<Var>> Keys(Q);
  for (size_t I = 0; I < Q; ++I) {
    Queries.push_back(Store.addParam("q" + std::to_string(I),
                                     Tensor::uniform(QDim, 0.9f, R)));
    // Ragged memories: 2, 3, 4 keys.
    for (size_t T = 0; T < 2 + I; ++T)
      Keys[I].push_back(
          Store.addParam("k" + std::to_string(I) + "_" + std::to_string(T),
                         Tensor::uniform(KeyDim, 0.9f, R)));
  }
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<Var> KPs;
    std::vector<const std::vector<Var> *> KeysPerQuery;
    for (size_t I = 0; I < Q; ++I) {
      KPs.push_back(attentionKeyProj(W1, B1, Keys[I]));
      KeysPerQuery.push_back(&Keys[I]);
    }
    std::vector<AttnOut> Out =
        attentionMultiMemoryOp(W1, W2, B2, Queries, KPs, KeysPerQuery);
    std::vector<Var> Norms;
    for (const AttnOut &A : Out)
      Norms.push_back(dot(A.Context, A.Context));
    return sumV(stackScalars(Norms));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}

TEST(GradCheckTest, SoftmaxCrossEntropyBatchOpPacked) {
  ParamStore Store;
  Rng R(91);
  const size_t In = 6, V = 4, B = 3;
  Var W = Store.addParam("W", Tensor::xavier(V, In, R));
  Var Bias = Store.addParam("b", Tensor::uniform(V, 0.2f, R));
  std::vector<Var> Xs;
  std::vector<size_t> Targets;
  for (size_t I = 0; I < B; ++I) {
    Xs.push_back(Store.addParam("x" + std::to_string(I),
                                Tensor::uniform(In, 0.9f, R)));
    Targets.push_back(I % V);
  }
  GradCheckResult Result = checkGradients(Store, [&] {
    std::vector<Var> Losses = softmaxCrossEntropyBatchOp(W, Bias, Xs, Targets);
    return sumV(stackScalars(Losses));
  });
  EXPECT_TRUE(Result.Ok) << Result.MaxRelError << " at "
                         << Result.WorstParam;
}
