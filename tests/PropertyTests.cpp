//===-- tests/PropertyTests.cpp - Parameterized property sweeps -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Cross-module invariants checked as parameterized sweeps
// (TEST_P / INSTANTIATE_TEST_SUITE_P):
//
//  - every task in the library: all syntactic variants compute the same
//    function on random inputs (the property the dynamic feature
//    dimension of the corpus rests on);
//  - every program in a pool: all symbolically enumerated paths carry a
//    witness that the concrete interpreter replays on exactly that path;
//  - sorting variants: outputs are sorted permutations of the input;
//  - corpus generation round-trips through the pretty printer for many
//    seeds;
//  - dynamic-value tokenization is stable and respects bucket ordering.
//
//===----------------------------------------------------------------------===//

#include "dataset/Corpus.h"
#include "dataset/Tasks.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "symx/SymExec.h"
#include "testgen/InputGen.h"
#include "trace/Vocabulary.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

std::vector<Value> copyInputs(const std::vector<Value> &Inputs) {
  std::vector<Value> Out;
  for (const Value &V : Inputs)
    Out.push_back(V.deepCopy());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Task variant equivalence, one test per task
//===----------------------------------------------------------------------===//

class TaskEquivalenceP : public testing::TestWithParam<std::string> {};

TEST_P(TaskEquivalenceP, VariantsAgreeOnRandomInputs) {
  const TaskSpec *Task = nullptr;
  for (const TaskSpec &Candidate : taskLibrary())
    if (Candidate.Key == GetParam())
      Task = &Candidate;
  ASSERT_NE(Task, nullptr);

  std::vector<Program> Programs;
  for (const TaskVariant &Variant : Task->Variants)
    Programs.push_back(
        mustParse(replaceIdentifier(Variant.Source, "FN", "probe")));

  Rng R(0xC0FFEE ^ std::hash<std::string>{}(Task->Key));
  InputGenOptions Options;
  const FunctionDecl &Fn = Programs[0].Functions.back();
  for (int Trial = 0; Trial < 40; ++Trial) {
    std::vector<Value> Inputs = randomInputs(Fn, Programs[0], R, Options);
    ExecResult First =
        execute(Programs[0], Programs[0].Functions.back(),
                copyInputs(Inputs));
    for (size_t V = 1; V < Programs.size(); ++V) {
      ExecResult Other =
          execute(Programs[V], Programs[V].Functions.back(),
                  copyInputs(Inputs));
      ASSERT_EQ(First.ok(), Other.ok())
          << Task->Variants[V].Algorithm << " fault divergence";
      if (First.ok())
        EXPECT_TRUE(First.ReturnValue.equals(Other.ReturnValue))
            << Task->Variants[V].Algorithm << ": "
            << First.ReturnValue.str() << " vs "
            << Other.ReturnValue.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTasks, TaskEquivalenceP, [] {
      std::vector<std::string> Keys;
      for (const TaskSpec &Task : taskLibrary())
        if (Task.Variants.size() > 1)
          Keys.push_back(Task.Key);
      return testing::ValuesIn(Keys);
    }(),
    [](const testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

//===----------------------------------------------------------------------===//
// Symbolic witnesses replay, one test per subject program
//===----------------------------------------------------------------------===//

struct SymxSubject {
  const char *Name;
  const char *Source;
};

class SymxReplayP : public testing::TestWithParam<SymxSubject> {};

TEST_P(SymxReplayP, EveryWitnessReplaysItsPath) {
  Program P = mustParse(GetParam().Source);
  const FunctionDecl &Fn = P.Functions.back();
  SymxOptions Options;
  Options.MaxPaths = 16;
  std::vector<SymbolicPath> Paths = enumeratePaths(P, Fn, Options);
  ASSERT_FALSE(Paths.empty());
  for (const SymbolicPath &Path : Paths) {
    ExecResult R = execute(P, Fn, copyInputs(Path.WitnessInputs));
    ASSERT_TRUE(R.ok()) << R.ErrorMessage;
    EXPECT_EQ(pathKeyOf(R), Path.Trace.pathKey())
        << "condition: " << Path.conditionStr();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Subjects, SymxReplayP,
    testing::Values(
        SymxSubject{"abs", "int f(int a) { if (a < 0) return -a; "
                           "return a; }"},
        SymxSubject{"clamp", "int f(int x, int lo, int hi) { if (lo > hi) "
                             "return x; if (x < lo) return lo; if (x > hi) "
                             "return hi; return x; }"},
        SymxSubject{"loopSum", "int f(int n) { int s = 0; for (int i = 0; "
                               "i < n; i++) s += i; return s; }"},
        SymxSubject{"nestedBranch",
                    "int f(int a, int b) { if (a > 0) { if (b > 0) return "
                    "1; return 2; } if (b > 0) return 3; return 4; }"},
        SymxSubject{"modGuard", "int f(int a, int b) { if (b != 0 && a % b "
                                "== 0) return 1; return 0; }"},
        SymxSubject{"arrayScan",
                    "bool f(int[] a, int t) { for (int i = 0; i < len(a); "
                    "i++) { if (a[i] == t) return true; } return false; }"},
        SymxSubject{"boolLogic", "int f(bool p, bool q) { if (p && !q) "
                                 "return 1; if (!p || q) return 2; return "
                                 "3; }"},
        SymxSubject{"whileDiv", "int f(int n) { n = abs(n); int c = 0; "
                                "while (n > 0) { n /= 2; c++; } return "
                                "c; }"}),
    [](const testing::TestParamInfo<SymxSubject> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Sorting correctness, one test per algorithm variant
//===----------------------------------------------------------------------===//

class SortVariantP : public testing::TestWithParam<std::string> {};

TEST_P(SortVariantP, OutputIsSortedPermutation) {
  const TaskSpec *Sort = nullptr;
  for (const TaskSpec &Task : taskLibrary())
    if (Task.Key == "sortArray")
      Sort = &Task;
  ASSERT_NE(Sort, nullptr);
  const TaskVariant *Variant = nullptr;
  for (const TaskVariant &Candidate : Sort->Variants)
    if (Candidate.Algorithm == GetParam())
      Variant = &Candidate;
  ASSERT_NE(Variant, nullptr);

  Program P = mustParse(replaceIdentifier(Variant->Source, "FN", "probe"));
  Rng R(2024);
  InputGenOptions Options;
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<Value> Inputs =
        randomInputs(P.Functions.back(), P, R, Options);
    std::vector<int64_t> Original;
    for (const Value &V : Inputs[0].elements())
      Original.push_back(V.asInt());
    ExecResult Result =
        execute(P, P.Functions.back(), copyInputs(Inputs));
    ASSERT_TRUE(Result.ok()) << Result.ErrorMessage;
    std::vector<int64_t> Got;
    for (const Value &V : Result.ReturnValue.elements())
      Got.push_back(V.asInt());
    std::vector<int64_t> Want = Original;
    std::sort(Want.begin(), Want.end());
    EXPECT_EQ(Got, Want);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SortVariantP,
                         testing::Values("bubble", "insertion",
                                         "bubble-flag", "selection"),
                         [](const testing::TestParamInfo<std::string> &I) {
                           std::string Name = I.param;
                           for (char &C : Name)
                             if (C == '-')
                               C = '_';
                           return Name;
                         });

//===----------------------------------------------------------------------===//
// Corpus programs round-trip through the printer, one test per seed
//===----------------------------------------------------------------------===//

class CorpusRoundTripP : public testing::TestWithParam<uint64_t> {};

TEST_P(CorpusRoundTripP, GeneratedMethodsRoundTrip) {
  CorpusOptions Options;
  Options.NumMethods = 15;
  Options.TraceGen.TargetPaths = 3;
  Options.TraceGen.ExecutionsPerPath = 2;
  Options.TraceGen.MaxAttempts = 40;
  Options.Seed = GetParam();
  std::vector<MethodSample> Samples = generateMethodCorpus(Options);
  ASSERT_FALSE(Samples.empty());
  for (const MethodSample &Sample : Samples) {
    std::string Printed = printProgram(*Sample.Prog);
    DiagnosticSink Diags;
    std::optional<Program> Reparsed = parseAndCheck(Printed, Diags);
    ASSERT_TRUE(Reparsed.has_value()) << Diags.str() << "\n" << Printed;
    EXPECT_EQ(printProgram(*Reparsed), Printed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusRoundTripP,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 101u, 202u));

//===----------------------------------------------------------------------===//
// Value tokenization, parameterized over magnitudes
//===----------------------------------------------------------------------===//

class ValueTokenP : public testing::TestWithParam<int64_t> {};

TEST_P(ValueTokenP, StableAndWellFormed) {
  int64_t X = GetParam();
  Value V = Value::makeInt(X);
  std::string Token = valueToken(V);
  EXPECT_FALSE(Token.empty());
  // Idempotent.
  EXPECT_EQ(valueToken(V), Token);
  // Exact in the small range, bucketed outside.
  if (X >= -64 && X <= 64)
    EXPECT_EQ(Token, std::to_string(X));
  else
    EXPECT_EQ(Token.front(), '<');
  // Sign is preserved by the bucket spelling.
  if (X < -64)
    EXPECT_NE(Token.find('-'), std::string::npos);
  if (X > 64)
    EXPECT_NE(Token.find('+'), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Magnitudes, ValueTokenP,
    testing::Values(-1000000, -70000, -5000, -300, -65, -64, -1, 0, 1, 63,
                    64, 65, 100, 257, 4096, 70000, 1000000));
