//===-- tests/DatasetTests.cpp - Unit tests for corpus generation ---------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dataset/Corpus.h"
#include "dataset/Tasks.h"

#include "support/StringUtils.h"

#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "testgen/InputGen.h"
#include "testgen/TraceCache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

using namespace liger;

//===----------------------------------------------------------------------===//
// replaceIdentifier
//===----------------------------------------------------------------------===//

TEST(ReplaceIdentifierTest, WholeWordOnly) {
  EXPECT_EQ(replaceIdentifier("i + if (i) index i;", "i", "j"),
            "j + if (j) index j;");
  EXPECT_EQ(replaceIdentifier("arr[i] + array", "arr", "xs"),
            "xs[i] + array");
  EXPECT_EQ(replaceIdentifier("my_i i_my i", "i", "j"), "my_i i_my j");
}

TEST(ReplaceIdentifierTest, NoOccurrences) {
  EXPECT_EQ(replaceIdentifier("abc def", "xyz", "q"), "abc def");
}

TEST(ReplaceIdentifierTest, AdjacentOccurrences) {
  EXPECT_EQ(replaceIdentifier("i,i;i", "i", "jj"), "jj,jj;jj");
}

//===----------------------------------------------------------------------===//
// Task library integrity
//===----------------------------------------------------------------------===//

TEST(TaskLibraryTest, NonEmptyAndWellFormed) {
  const auto &Library = taskLibrary();
  EXPECT_GE(Library.size(), 25u);
  std::set<std::string> Keys;
  for (const TaskSpec &Task : Library) {
    EXPECT_TRUE(Keys.insert(Task.Key).second) << "duplicate " << Task.Key;
    EXPECT_FALSE(Task.NameParts.empty());
    EXPECT_FALSE(Task.Variants.empty());
    for (const auto &Part : Task.NameParts)
      EXPECT_FALSE(Part.empty());
  }
}

TEST(TaskLibraryTest, TenCosetProblems) {
  EXPECT_EQ(cosetProblems().size(), 10u);
  // COSET problems must offer at least two algorithm classes each.
  for (const TaskSpec *Problem : cosetProblems())
    EXPECT_GE(Problem->Variants.size(), 2u) << Problem->Key;
}

TEST(TaskLibraryTest, EveryVariantCompiles) {
  for (const TaskSpec &Task : taskLibrary()) {
    for (const TaskVariant &Variant : Task.Variants) {
      std::string Source = replaceIdentifier(Variant.Source, "FN", "probe");
      DiagnosticSink Diags;
      EXPECT_TRUE(parseAndCheck(Source, Diags).has_value())
          << Task.Key << "/" << Variant.Algorithm << ":\n"
          << Diags.str();
    }
  }
}

namespace {

/// Executes a compiled variant on \p Inputs (deep-copied) and returns
/// the result value; reports crashes via HasError.
Value runVariant(const Program &P, const std::vector<Value> &Inputs,
                 bool &HasError) {
  const FunctionDecl &Fn = P.Functions.back();
  std::vector<Value> Copy;
  for (const Value &V : Inputs)
    Copy.push_back(V.deepCopy());
  ExecResult R = execute(P, Fn, Copy);
  HasError = !R.ok();
  return R.ReturnValue;
}

} // namespace

TEST(TaskLibraryTest, VariantsAreSemanticallyEquivalent) {
  // The core corpus property: all variants of one task compute the same
  // function (the dynamic feature dimension depends on it).
  Rng R(1234);
  InputGenOptions InputOptions;
  for (const TaskSpec &Task : taskLibrary()) {
    if (Task.Variants.size() < 2)
      continue;
    // Compile all variants once.
    std::vector<Program> Programs;
    for (const TaskVariant &Variant : Task.Variants) {
      DiagnosticSink Diags;
      auto P =
          parseAndCheck(replaceIdentifier(Variant.Source, "FN", "probe"),
                        Diags);
      ASSERT_TRUE(P.has_value()) << Task.Key << ": " << Diags.str();
      Programs.push_back(std::move(*P));
    }
    const FunctionDecl &Fn = Programs[0].Functions.back();
    for (int Trial = 0; Trial < 25; ++Trial) {
      std::vector<Value> Inputs =
          randomInputs(Fn, Programs[0], R, InputOptions);
      bool Error0 = false;
      Value Expected = runVariant(Programs[0], Inputs, Error0);
      for (size_t V = 1; V < Programs.size(); ++V) {
        bool ErrorV = false;
        Value Got = runVariant(Programs[V], Inputs, ErrorV);
        EXPECT_EQ(Error0, ErrorV)
            << Task.Key << " variant " << Task.Variants[V].Algorithm
            << " fault divergence";
        if (!Error0 && !ErrorV)
          EXPECT_TRUE(Expected.equals(Got))
              << Task.Key << " variant " << Task.Variants[V].Algorithm
              << ": " << Expected.str() << " vs " << Got.str();
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Method-name corpus
//===----------------------------------------------------------------------===//

namespace {

CorpusOptions smallCorpusOptions() {
  CorpusOptions Options;
  Options.NumMethods = 40;
  Options.TraceGen.TargetPaths = 4;
  Options.TraceGen.ExecutionsPerPath = 3;
  Options.TraceGen.MaxAttempts = 80;
  Options.Seed = 9;
  return Options;
}

} // namespace

TEST(CorpusTest, GeneratesUsableSamples) {
  CorpusStats Stats;
  auto Samples = generateMethodCorpus(smallCorpusOptions(), &Stats);
  EXPECT_EQ(Stats.Requested, 40u);
  EXPECT_GE(Stats.Kept, 30u); // no defects injected: most should pass
  EXPECT_EQ(Samples.size(), Stats.Kept);
  for (const MethodSample &Sample : Samples) {
    EXPECT_NE(Sample.Fn, nullptr);
    EXPECT_FALSE(Sample.NameSubtokens.empty());
    EXPECT_FALSE(Sample.Traces.Paths.empty());
    EXPECT_FALSE(Sample.Project.empty());
    // The function name must split exactly into the labels.
    EXPECT_EQ(splitSubtokens(Sample.Fn->Name), Sample.NameSubtokens);
  }
}

TEST(CorpusTest, DeterministicUnderSeed) {
  auto A = generateMethodCorpus(smallCorpusOptions());
  auto B = generateMethodCorpus(smallCorpusOptions());
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Fn->Name, B[I].Fn->Name);
    EXPECT_EQ(A[I].Traces.Paths.size(), B[I].Traces.Paths.size());
  }
}

TEST(CorpusTest, SeedChangesCorpus) {
  CorpusOptions Options = smallCorpusOptions();
  auto A = generateMethodCorpus(Options);
  Options.Seed = 10;
  auto B = generateMethodCorpus(Options);
  bool AnyDifferent = A.size() != B.size();
  for (size_t I = 0; !AnyDifferent && I < A.size(); ++I)
    AnyDifferent = A[I].Fn->Name != B[I].Fn->Name;
  EXPECT_TRUE(AnyDifferent);
}

TEST(CorpusTest, FilterPipelineCountsDefects) {
  CorpusOptions Options = smallCorpusOptions();
  Options.NumMethods = 80;
  Options.SyntaxDefectRate = 0.15;
  Options.ExternalRefRate = 0.1;
  Options.NonTerminationRate = 0.08;
  Options.TooSmallRate = 0.1;
  CorpusStats Stats;
  auto Samples = generateMethodCorpus(Options, &Stats);
  EXPECT_GT(Stats.ParseFailures, 0u);
  EXPECT_GT(Stats.ExternalRefFailures, 0u);
  EXPECT_GT(Stats.TestgenTimeouts, 0u);
  EXPECT_GT(Stats.TooSmall, 0u);
  EXPECT_LT(Stats.Kept, Stats.Requested);
  EXPECT_EQ(Stats.Kept + Stats.ParseFailures + Stats.ExternalRefFailures +
                Stats.TestgenTimeouts + Stats.TestgenMemoryBombs +
                Stats.TooSmall + Stats.NoTraces,
            Stats.Requested);
  EXPECT_EQ(Samples.size(), Stats.Kept);
}

TEST(CorpusTest, MethodsTraceBudgetRespectsOptions) {
  CorpusOptions Options = smallCorpusOptions();
  auto Samples = generateMethodCorpus(Options);
  for (const MethodSample &Sample : Samples) {
    EXPECT_LE(Sample.Traces.Paths.size(), 4u);
    for (const BlendedTrace &Path : Sample.Traces.Paths)
      EXPECT_LE(Path.numConcrete(), 3u);
  }
}

//===----------------------------------------------------------------------===//
// COSET corpus
//===----------------------------------------------------------------------===//

TEST(CosetCorpusTest, LabelsAndClassNames) {
  CosetOptions Options;
  Options.ProgramsPerClass = 3;
  Options.TraceGen.TargetPaths = 4;
  Options.TraceGen.ExecutionsPerPath = 2;
  Options.TraceGen.MaxAttempts = 60;
  std::vector<std::string> ClassNames;
  auto Samples = generateCosetCorpus(Options, ClassNames);
  ASSERT_FALSE(Samples.empty());
  // 10 problems with >= 2 algorithms each.
  EXPECT_GE(ClassNames.size(), 20u);
  std::set<int> SeenClasses;
  for (const MethodSample &Sample : Samples) {
    ASSERT_GE(Sample.ClassId, 0);
    ASSERT_LT(static_cast<size_t>(Sample.ClassId), ClassNames.size());
    SeenClasses.insert(Sample.ClassId);
    EXPECT_FALSE(Sample.Traces.Paths.empty());
  }
  // Nearly every class should be realized.
  EXPECT_GE(SeenClasses.size(), ClassNames.size() - 2);
}

//===----------------------------------------------------------------------===//
// Splitting
//===----------------------------------------------------------------------===//

TEST(SplitTest, ProjectsAreDisjoint) {
  auto Samples = generateMethodCorpus(smallCorpusOptions());
  SplitCorpus Split = splitByProject(Samples, 0.2, 0.2, 5);
  auto Projects = [](const std::vector<MethodSample> &Part) {
    std::set<std::string> Out;
    for (const MethodSample &Sample : Part)
      Out.insert(Sample.Project);
    return Out;
  };
  std::set<std::string> Train = Projects(Split.Train);
  std::set<std::string> Valid = Projects(Split.Valid);
  std::set<std::string> Test = Projects(Split.Test);
  for (const std::string &P : Valid) {
    EXPECT_FALSE(Train.count(P));
    EXPECT_FALSE(Test.count(P));
  }
  for (const std::string &P : Test)
    EXPECT_FALSE(Train.count(P));
  EXPECT_EQ(Split.Train.size() + Split.Valid.size() + Split.Test.size(),
            Samples.size());
  EXPECT_FALSE(Split.Train.empty());
  EXPECT_FALSE(Split.Test.empty());
}

//===----------------------------------------------------------------------===//
// Printer round trip over the whole template library
//===----------------------------------------------------------------------===//

TEST(TaskLibraryTest, EveryVariantRoundTripsThroughPrinter) {
  for (const TaskSpec &Task : taskLibrary()) {
    for (const TaskVariant &Variant : Task.Variants) {
      std::string Source = replaceIdentifier(Variant.Source, "FN", "probe");
      DiagnosticSink D1;
      auto P1 = parseAndCheck(Source, D1);
      ASSERT_TRUE(P1.has_value()) << Task.Key << ": " << D1.str();
      std::string Printed1 = printProgram(*P1);
      DiagnosticSink D2;
      auto P2 = parseAndCheck(Printed1, D2);
      ASSERT_TRUE(P2.has_value())
          << Task.Key << "/" << Variant.Algorithm << ": " << D2.str();
      EXPECT_EQ(printProgram(*P2), Printed1)
          << Task.Key << "/" << Variant.Algorithm;
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel determinism and the trace cache
//===----------------------------------------------------------------------===//

namespace {

void expectFunnelEqual(const CorpusStats &A, const CorpusStats &B) {
  EXPECT_EQ(A.Requested, B.Requested);
  EXPECT_EQ(A.ParseFailures, B.ParseFailures);
  EXPECT_EQ(A.ExternalRefFailures, B.ExternalRefFailures);
  EXPECT_EQ(A.TestgenTimeouts, B.TestgenTimeouts);
  EXPECT_EQ(A.TestgenMemoryBombs, B.TestgenMemoryBombs);
  EXPECT_EQ(A.TooSmall, B.TooSmall);
  EXPECT_EQ(A.NoTraces, B.NoTraces);
  EXPECT_EQ(A.Kept, B.Kept);
}

} // namespace

TEST(CorpusParallelEquivalenceTest, MethodCorpusBitwiseAcrossThreads) {
  CorpusOptions Options = smallCorpusOptions();
  // Include every filter stage so scheduling can't silently reorder
  // the funnel accounting either.
  Options.NumMethods = 48;
  Options.SyntaxDefectRate = 0.10;
  Options.ExternalRefRate = 0.10;
  Options.NonTerminationRate = 0.05;
  Options.TooSmallRate = 0.08;

  uint64_t Baseline = 0;
  CorpusStats BaseStats;
  for (size_t Threads : {1u, 2u, 4u}) {
    Options.Threads = Threads;
    CorpusStats Stats;
    auto Samples = generateMethodCorpus(Options, &Stats);
    uint64_t Fingerprint = corpusFingerprint(Samples);
    if (Threads == 1) {
      Baseline = Fingerprint;
      BaseStats = Stats;
      EXPECT_GT(Samples.size(), 0u);
      continue;
    }
    EXPECT_EQ(Fingerprint, Baseline) << "threads=" << Threads;
    expectFunnelEqual(Stats, BaseStats);
  }
}

TEST(CorpusParallelEquivalenceTest, CosetCorpusBitwiseAcrossThreads) {
  CosetOptions Options;
  Options.ProgramsPerClass = 2;
  Options.TraceGen.TargetPaths = 3;
  Options.TraceGen.ExecutionsPerPath = 2;
  Options.TraceGen.MaxAttempts = 40;
  Options.Seed = 21;

  uint64_t Baseline = 0;
  CorpusStats BaseStats;
  std::vector<std::string> BaseNames;
  for (size_t Threads : {1u, 4u}) {
    Options.Threads = Threads;
    std::vector<std::string> ClassNames;
    CorpusStats Stats;
    auto Samples = generateCosetCorpus(Options, ClassNames, &Stats);
    uint64_t Fingerprint = corpusFingerprint(Samples);
    if (Threads == 1) {
      Baseline = Fingerprint;
      BaseStats = Stats;
      BaseNames = ClassNames;
      EXPECT_GT(Samples.size(), 0u);
      continue;
    }
    EXPECT_EQ(Fingerprint, Baseline) << "threads=" << Threads;
    EXPECT_EQ(ClassNames, BaseNames);
    expectFunnelEqual(Stats, BaseStats);
  }
}

TEST(CorpusTraceCacheTest, OffColdWarmBitwiseIdentical) {
  CorpusOptions Options = smallCorpusOptions();
  Options.NumMethods = 24;
  std::string Dir = testing::TempDir() + "/liger_corpus_trace_cache";
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);

  CorpusStats OffStats;
  auto OffSamples = generateMethodCorpus(Options, &OffStats);
  uint64_t OffFp = corpusFingerprint(OffSamples);
  EXPECT_GT(OffStats.CacheBypassed, 0u);
  EXPECT_EQ(OffStats.CacheHits + OffStats.CacheMisses, 0u);

  CorpusStats ColdStats;
  uint64_t ColdFp;
  {
    TraceCache Cache(TraceCacheMode::Full, Dir);
    Options.Cache = &Cache;
    auto Samples = generateMethodCorpus(Options, &ColdStats);
    ColdFp = corpusFingerprint(Samples);
    // Same pipeline invocations as the off run, all misses.
    EXPECT_EQ(ColdStats.CacheMisses, OffStats.CacheBypassed);
    EXPECT_EQ(ColdStats.CacheHits, 0u);
  }

  // A fresh cache on the same directory simulates a restarted process:
  // every method must be served from disk.
  TraceCache Warm(TraceCacheMode::Full, Dir);
  Options.Cache = &Warm;
  Options.Threads = 4; // hits must be deterministic under threading too
  CorpusStats WarmStats;
  auto WarmSamples = generateMethodCorpus(Options, &WarmStats);
  uint64_t WarmFp = corpusFingerprint(WarmSamples);

  EXPECT_EQ(ColdFp, OffFp);
  EXPECT_EQ(WarmFp, OffFp);
  EXPECT_EQ(WarmStats.CacheMisses, 0u);
  EXPECT_EQ(WarmStats.CacheHits, OffStats.CacheBypassed);
  expectFunnelEqual(ColdStats, OffStats);
  expectFunnelEqual(WarmStats, OffStats);
}
