//===-- tests/SymxTests.cpp - Unit tests for symbolic execution -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "symx/SymExec.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

/// The key cross-validation property: running the concrete interpreter
/// on a path's witness inputs must follow exactly that path.
void expectWitnessesReplay(const Program &P, const FunctionDecl &Fn,
                           const std::vector<SymbolicPath> &Paths) {
  for (const SymbolicPath &Path : Paths) {
    ExecResult R = execute(P, Fn, Path.WitnessInputs);
    ASSERT_TRUE(R.ok()) << "witness faulted: " << R.ErrorMessage;
    EXPECT_EQ(pathKeyOf(R), Path.Trace.pathKey())
        << "witness follows a different path; condition was "
        << Path.conditionStr();
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// SymExpr
//===----------------------------------------------------------------------===//

TEST(SymExprTest, ConstantFolding) {
  SymExprPtr E = SymExpr::binary(SymOp::Add, SymExpr::intConst(2),
                                 SymExpr::intConst(3));
  ASSERT_TRUE(E->isIntConst());
  EXPECT_EQ(E->intValue(), 5);

  SymExprPtr B = SymExpr::binary(SymOp::Lt, SymExpr::intConst(2),
                                 SymExpr::intConst(3));
  ASSERT_TRUE(B->isBoolConst());
  EXPECT_TRUE(B->boolValue());
}

TEST(SymExprTest, IdentitySimplifications) {
  SymExprPtr X = SymExpr::intVar(0);
  EXPECT_EQ(SymExpr::binary(SymOp::Add, X, SymExpr::intConst(0)).get(),
            X.get());
  EXPECT_EQ(SymExpr::binary(SymOp::Mul, SymExpr::intConst(1), X).get(),
            X.get());
  SymExprPtr T = SymExpr::boolConst(true);
  SymExprPtr C = SymExpr::binary(SymOp::Lt, X, SymExpr::intConst(5));
  EXPECT_EQ(SymExpr::binary(SymOp::And, T, C).get(), C.get());
}

TEST(SymExprTest, EvalMatchesSemantics) {
  // (x0 + 2) * x1 with x0=3, x1=4 -> 20.
  SymExprPtr E = SymExpr::binary(
      SymOp::Mul,
      SymExpr::binary(SymOp::Add, SymExpr::intVar(0), SymExpr::intConst(2)),
      SymExpr::intVar(1));
  auto V = E->evalInt({3, 4}, {});
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 20);
}

TEST(SymExprTest, DivisionByZeroEvaluatesToNullopt) {
  SymExprPtr E = SymExpr::binary(SymOp::Div, SymExpr::intConst(1),
                                 SymExpr::intVar(0));
  EXPECT_FALSE(E->evalInt({0}, {}).has_value());
  EXPECT_TRUE(E->evalInt({2}, {}).has_value());
}

TEST(SymExprTest, ShortCircuitShieldsFaults) {
  // (x0 != 0) && (10 / x0 > 1) at x0=0 must be false, not a fault.
  SymExprPtr X = SymExpr::intVar(0);
  SymExprPtr Guard =
      SymExpr::binary(SymOp::NeInt, X, SymExpr::intConst(0));
  SymExprPtr Danger = SymExpr::binary(
      SymOp::Gt, SymExpr::binary(SymOp::Div, SymExpr::intConst(10), X),
      SymExpr::intConst(1));
  SymExprPtr E = SymExpr::binary(SymOp::And, Guard, Danger);
  auto V = E->evalBool({0}, {});
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(*V);
}

TEST(SymExprTest, CollectSlots) {
  SymExprPtr E = SymExpr::binary(
      SymOp::And,
      SymExpr::binary(SymOp::Lt, SymExpr::intVar(2), SymExpr::intVar(0)),
      SymExpr::boolVar(1));
  std::vector<unsigned> Ints, Bools;
  E->collectSlots(Ints, Bools);
  EXPECT_EQ(Ints, (std::vector<unsigned>{2, 0}));
  EXPECT_EQ(Bools, (std::vector<unsigned>{1}));
}

TEST(SymExprTest, StrRendering) {
  SymExprPtr E = SymExpr::binary(
      SymOp::Lt, SymExpr::binary(SymOp::Add, SymExpr::intVar(0),
                                 SymExpr::intConst(1)),
      SymExpr::intVar(1));
  EXPECT_EQ(E->str(), "((x0 + 1) < x1)");
}

//===----------------------------------------------------------------------===//
// Solver
//===----------------------------------------------------------------------===//

TEST(SolverTest, SolvesSimpleConjunction) {
  // x0 > 3 && x1 < -2 && x0 + x1 == 2
  SymExprPtr X0 = SymExpr::intVar(0), X1 = SymExpr::intVar(1);
  std::vector<SymExprPtr> Cs{
      SymExpr::binary(SymOp::Gt, X0, SymExpr::intConst(3)),
      SymExpr::binary(SymOp::Lt, X1, SymExpr::intConst(-2)),
      SymExpr::binary(SymOp::EqInt, SymExpr::binary(SymOp::Add, X0, X1),
                      SymExpr::intConst(2)),
  };
  auto A = solveConstraints(Cs, 2, 0);
  ASSERT_TRUE(A.has_value());
  EXPECT_GT(A->Ints[0], 3);
  EXPECT_LT(A->Ints[1], -2);
  EXPECT_EQ(A->Ints[0] + A->Ints[1], 2);
}

TEST(SolverTest, EmptyConstraintsTriviallySat) {
  auto A = solveConstraints({}, 3, 1);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Ints.size(), 3u);
  EXPECT_EQ(A->Bools.size(), 1u);
}

TEST(SolverTest, UnsatReturnsNullopt) {
  SymExprPtr X0 = SymExpr::intVar(0);
  std::vector<SymExprPtr> Cs{
      SymExpr::binary(SymOp::Gt, X0, SymExpr::intConst(2)),
      SymExpr::binary(SymOp::Lt, X0, SymExpr::intConst(2)),
  };
  EXPECT_FALSE(solveConstraints(Cs, 1, 0).has_value());
}

TEST(SolverTest, BooleanConstraints) {
  SymExprPtr B0 = SymExpr::boolVar(0), B1 = SymExpr::boolVar(1);
  std::vector<SymExprPtr> Cs{
      SymExpr::binary(SymOp::And, B0, SymExpr::unary(SymOp::Not, B1))};
  auto A = solveConstraints(Cs, 0, 2);
  ASSERT_TRUE(A.has_value());
  EXPECT_TRUE(A->Bools[0]);
  EXPECT_FALSE(A->Bools[1]);
}

TEST(SolverTest, RespectsDomainBounds) {
  SolverOptions Options;
  Options.IntLo = -3;
  Options.IntHi = 3;
  SymExprPtr X0 = SymExpr::intVar(0);
  std::vector<SymExprPtr> Cs{
      SymExpr::binary(SymOp::Gt, X0, SymExpr::intConst(3))};
  // x0 > 3 is unsatisfiable within [-3, 3].
  EXPECT_FALSE(solveConstraints(Cs, 1, 0, Options).has_value());
}

TEST(SolverTest, QuickFeasibleAgreesOnEasyCases) {
  SymExprPtr X0 = SymExpr::intVar(0);
  std::vector<SymExprPtr> Sat{
      SymExpr::binary(SymOp::EqInt, X0, SymExpr::intConst(5))};
  EXPECT_TRUE(quickFeasible(Sat, 1, 0, SolverOptions()));
  std::vector<SymExprPtr> Unsat{SymExpr::boolConst(false)};
  EXPECT_FALSE(quickFeasible(Unsat, 0, 0, SolverOptions()));
}

//===----------------------------------------------------------------------===//
// Path enumeration
//===----------------------------------------------------------------------===//

TEST(SymExecTest, EnumeratesBothBranchesOfAbs) {
  Program P = mustParse(R"(
int myAbs(int a) {
  if (a < 0)
    return -a;
  return a;
}
)");
  auto Paths = enumeratePaths(P, P.Functions[0]);
  ASSERT_EQ(Paths.size(), 2u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, PathKeysAreDistinct) {
  Program P = mustParse(R"(
int classify(int a, int b) {
  if (a < b)
    return -1;
  if (a > b)
    return 1;
  return 0;
}
)");
  auto Paths = enumeratePaths(P, P.Functions[0]);
  ASSERT_EQ(Paths.size(), 3u);
  std::set<std::string> Keys;
  for (const SymbolicPath &Path : Paths)
    Keys.insert(Path.Trace.pathKey());
  EXPECT_EQ(Keys.size(), 3u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, LoopPathsBoundedAndWitnessed) {
  Program P = mustParse(R"(
int sumTo(int n) {
  int s = 0;
  for (int i = 0; i < n; i++)
    s += i;
  return s;
}
)");
  SymxOptions Options;
  Options.MaxPaths = 6;
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  EXPECT_GE(Paths.size(), 3u); // n <= 0, n == 1, n == 2, ...
  EXPECT_LE(Paths.size(), 6u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, ArrayElementsAreSymbolic) {
  Program P = mustParse(R"(
int countPositive(int[] a) {
  int n = 0;
  for (int i = 0; i < len(a); i++) {
    if (a[i] > 0)
      n++;
  }
  return n;
}
)");
  SymxOptions Options;
  Options.ArrayLengths = {3};
  Options.MaxPaths = 16;
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  // 2^3 = 8 sign combinations of a[0..2].
  EXPECT_EQ(Paths.size(), 8u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, SymbolicIndexFansOut) {
  Program P = mustParse(R"(
int getAt(int[] a, int i) {
  return a[i];
}
)");
  SymxOptions Options;
  Options.ArrayLengths = {3};
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  // The fan-out explores each in-bounds index, but all arms visit the
  // same statement sequence — one program path per Def. 2.2.
  EXPECT_EQ(Paths.size(), 1u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, ShortCircuitPathsMatchInterpreter) {
  Program P = mustParse(R"(
bool f(int a) {
  return a != 0 && 10 / a > 1;
}
)");
  auto Paths = enumeratePaths(P, P.Functions[0]);
  // The three short-circuit decisions all happen inside one return
  // statement, so they collapse to a single statement-level path — and
  // crucially, the a == 0 arm must have produced a valid witness rather
  // than a division fault.
  EXPECT_EQ(Paths.size(), 1u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, DivisionGuardedByImplicitConstraint) {
  Program P = mustParse("int f(int a) { return 10 / a; }");
  auto Paths = enumeratePaths(P, P.Functions[0]);
  // Only non-faulting executions: the witness must have a != 0.
  ASSERT_FALSE(Paths.empty());
  for (const SymbolicPath &Path : Paths)
    EXPECT_NE(Path.WitnessInputs[0].asInt(), 0);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, BubbleSortPathsReplay) {
  Program P = mustParse(R"(
int[] sort(int[] A) {
  for (int i = 0; i < len(A); i++) {
    for (int j = 0; j + 1 < len(A) - i; j++) {
      if (A[j] > A[j + 1]) {
        int t = A[j];
        A[j] = A[j + 1];
        A[j + 1] = t;
      }
    }
  }
  return A;
}
)");
  SymxOptions Options;
  Options.ArrayLengths = {3};
  Options.MaxPaths = 8; // 2^3 comparison outcomes exist for length 3
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  EXPECT_GE(Paths.size(), 4u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, StringsAreConcreteCandidates) {
  Program P = mustParse(R"(
bool isRotation(string A, string B)
{
  if (len(A) != len(B))
    return false;
  for (int i = 1; i < len(A); i++) {
    string tail = substring(A, i, len(A) - i);
    string wrap = substring(A, 0, i);
    if (tail + wrap == B)
      return true;
  }
  return false;
}
)");
  SymxOptions Options;
  Options.StringCandidates = {"ab", "ba", "abc"};
  Options.MaxShapes = 9;
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  ASSERT_FALSE(Paths.empty());
  expectWitnessesReplay(P, P.Functions[0], Paths);
  // Shapes with unequal lengths give the early-return path; equal
  // lengths exercise the loop.
  std::set<size_t> TraceLengths;
  for (const SymbolicPath &Path : Paths)
    TraceLengths.insert(Path.Trace.length());
  EXPECT_GE(TraceLengths.size(), 2u);
}

TEST(SymExecTest, BoolParamsFork) {
  Program P = mustParse(R"(
int f(bool a, bool b) {
  if (a && b)
    return 2;
  if (a || b)
    return 1;
  return 0;
}
)");
  auto Paths = enumeratePaths(P, P.Functions[0]);
  // Statement-level paths: [if1 T, ret 2], [if1 F, if2 T, ret 1],
  // [if1 F, if2 F, ret 0] — (a=T,b=F) and (a=F,b=T) share the middle
  // one.
  EXPECT_EQ(Paths.size(), 3u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, UserCallsInlinedWithoutTracePollution) {
  Program P = mustParse(R"(
int sign(int x) { if (x < 0) return -1; if (x > 0) return 1; return 0; }
int f(int a) { return sign(a) * 10; }
)");
  const FunctionDecl *F = P.findFunction("f");
  ASSERT_NE(F, nullptr);
  auto Paths = enumeratePaths(P, *F);
  // The callee's branches are explored but invisible at f's statement
  // level, so they all collapse into f's single one-statement path.
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].Trace.length(), 1u); // only f's return is traced
  expectWitnessesReplay(P, *F, Paths);
}

TEST(SymExecTest, MaxPathsRespected) {
  Program P = mustParse(R"(
int f(int[] a) {
  int n = 0;
  for (int i = 0; i < len(a); i++)
    if (a[i] > 0)
      n++;
  return n;
}
)");
  SymxOptions Options;
  Options.ArrayLengths = {6};
  Options.MaxPaths = 5;
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  EXPECT_EQ(Paths.size(), 5u);
}

TEST(SymExecTest, StructFieldsAreSymbolic) {
  Program P = mustParse(R"(
struct Point { int x; int y; }
int quadrant(Point p) {
  if (p.x > 0 && p.y > 0) return 1;
  if (p.x < 0 && p.y > 0) return 2;
  if (p.x < 0 && p.y < 0) return 3;
  if (p.x > 0 && p.y < 0) return 4;
  return 0;
}
)");
  auto Paths = enumeratePaths(P, P.Functions[0],
                              [] {
                                SymxOptions O;
                                O.MaxPaths = 16;
                                return O;
                              }());
  EXPECT_GE(Paths.size(), 5u);
  expectWitnessesReplay(P, P.Functions[0], Paths);
}

TEST(SymExecTest, RunBudgetBoundsPrefixBlowup) {
  // Eight chained symbolic-index writes fan out into 8^8 decision
  // prefixes whose arms all dedup to the same statement-level path
  // key, so MaxPaths alone never stops the DFS. MaxRuns is the DFS's
  // own fuel: enumeration must return (with however many paths it
  // found) instead of wedging for hours (DESIGN.md §12).
  Program P = mustParse(R"(
int f(int a1, int a2, int a3, int a4, int a5, int a6, int a7, int a8) {
  int[] a = new int[8];
  a[a1] = 1;
  a[a2] = 2;
  a[a3] = 3;
  a[a4] = 4;
  a[a5] = 5;
  a[a6] = 6;
  a[a7] = 7;
  a[a8] = 8;
  return a[0];
}
)");
  SymxOptions Options;
  Options.MaxRuns = 200;
  auto Paths = enumeratePaths(P, P.Functions[0], Options);
  // One statement-level path exists and the budget is plenty to
  // complete (and dedup) at least one arm of it.
  EXPECT_EQ(Paths.size(), 1u);
}
