//===-- tests/LangTests.cpp - Unit tests for the MiniLang front end -------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"
#include "lang/AstTree.h"
#include "lang/Lexer.h"
#include "lang/Parser.h"
#include "lang/TypeCheck.h"

#include <gtest/gtest.h>

using namespace liger;

namespace {

std::vector<Token> lexAll(const std::string &Source, DiagnosticSink &Diags) {
  Lexer Lex(Source, Diags);
  return Lex.lexAll();
}

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

bool failsToCheck(const std::string &Source) {
  DiagnosticSink Diags;
  return !parseAndCheck(Source, Diags).has_value();
}

/// The paper's Fig. 1(c) bubble sort with a swap flag, in MiniLang.
const char *SortIII = R"(
int[] sortIII(int[] A)
{
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < len(A) - 1; i++) {
      if (A[i + 1] > A[i]) {
      } else {
        int tmp = A[i];
        A[i] = A[i + 1];
        A[i + 1] = tmp;
        swapbit = 1;
      }
    }
  }
  return A;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, Keywords) {
  DiagnosticSink Diags;
  auto Tokens = lexAll("int bool string if else while for return", Diags);
  ASSERT_EQ(Tokens.size(), 9u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwInt);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::KwIf);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::KwReturn);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::EndOfFile);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, OperatorsMaximalMunch) {
  DiagnosticSink Diags;
  auto Tokens = lexAll("+= ++ + <= < == = != ! && ||", Diags);
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : Tokens)
    Kinds.push_back(Tok.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::PlusAssign, TokenKind::PlusPlus,
                       TokenKind::Plus, TokenKind::LessEqual, TokenKind::Less,
                       TokenKind::EqualEqual, TokenKind::Assign,
                       TokenKind::NotEqual, TokenKind::Bang, TokenKind::AmpAmp,
                       TokenKind::PipePipe, TokenKind::EndOfFile}));
}

TEST(LexerTest, IntLiteralValue) {
  DiagnosticSink Diags;
  auto Tokens = lexAll("12345", Diags);
  EXPECT_EQ(Tokens[0].IntValue, 12345);
}

TEST(LexerTest, StringEscapes) {
  DiagnosticSink Diags;
  auto Tokens = lexAll(R"("a\nb\t\"c\\")", Diags);
  ASSERT_EQ(Tokens[0].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Tokens[0].Text, "a\nb\t\"c\\");
}

TEST(LexerTest, CommentsSkipped) {
  DiagnosticSink Diags;
  auto Tokens = lexAll("1 // line\n 2 /* block\n lines */ 3", Diags);
  ASSERT_EQ(Tokens.size(), 4u);
  EXPECT_EQ(Tokens[2].IntValue, 3);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(LexerTest, LineColumnsTracked) {
  DiagnosticSink Diags;
  auto Tokens = lexAll("a\n  b", Diags);
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(LexerTest, UnterminatedStringDiagnosed) {
  DiagnosticSink Diags;
  lexAll("\"abc", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LexerTest, UnknownCharacterDiagnosed) {
  DiagnosticSink Diags;
  lexAll("@", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesFigureOneProgram) {
  Program P = mustParse(SortIII);
  ASSERT_EQ(P.Functions.size(), 1u);
  EXPECT_EQ(P.Functions[0].Name, "sortIII");
  EXPECT_TRUE(P.Functions[0].ReturnType.isArray());
  ASSERT_EQ(P.Functions[0].Params.size(), 1u);
  EXPECT_EQ(P.Functions[0].Params[0].Name, "A");
}

TEST(ParserTest, PrecedenceClimbs) {
  Program P = mustParse("int f(int a, int b) { return a + b * 2; }");
  const auto *Ret =
      cast<ReturnStmt>(P.Functions[0].Body->body().front());
  const auto *Add = cast<BinaryExpr>(Ret->value());
  EXPECT_EQ(Add->op(), BinaryOp::Add);
  EXPECT_EQ(cast<BinaryExpr>(Add->rhs())->op(), BinaryOp::Mul);
}

TEST(ParserTest, IncDecSyntaxPreserved) {
  Program P = mustParse("void f() { int i = 0; i++; i += 2; i = i + 3; }");
  const auto &Body = P.Functions[0].Body->body();
  ASSERT_EQ(Body.size(), 4u);
  EXPECT_EQ(cast<AssignStmt>(Body[1])->syntax(), AssignSyntax::IncDec);
  EXPECT_EQ(cast<AssignStmt>(Body[2])->syntax(), AssignSyntax::Compound);
  EXPECT_EQ(cast<AssignStmt>(Body[3])->syntax(), AssignSyntax::Plain);
}

TEST(ParserTest, StructDeclAndUse) {
  Program P = mustParse(R"(
struct Point { int x; int y; }
int getX(Point p) { return p.x; }
)");
  ASSERT_EQ(P.Structs.size(), 1u);
  EXPECT_EQ(P.Structs[0].Fields.size(), 2u);
  EXPECT_EQ(P.Structs[0].fieldIndex("y"), 1);
  EXPECT_EQ(P.Structs[0].fieldIndex("z"), -1);
}

TEST(ParserTest, ArrayLiteralAndNew) {
  Program P = mustParse(
      "int f() { int[] a = [1, 2, 3]; int[] b = new int[5]; return a[0] + "
      "len(b); }");
  EXPECT_EQ(P.Functions.size(), 1u);
}

TEST(ParserTest, ForHeaderVariants) {
  mustParse("void f(int n) { for (;;) { break; } }");
  mustParse("void f(int n) { for (int i = 0; i < n; i++) {} }");
  mustParse("void f(int n) { int i = 0; for (; i < n;) { i++; } }");
}

TEST(ParserTest, DanglingElseBindsInner) {
  Program P = mustParse(
      "int f(bool a, bool b) { if (a) if (b) return 1; else return 2; "
      "return 3; }");
  const auto *Outer = cast<IfStmt>(P.Functions[0].Body->body().front());
  EXPECT_EQ(Outer->elseStmt(), nullptr);
  const auto *Inner = cast<IfStmt>(Outer->thenStmt());
  EXPECT_NE(Inner->elseStmt(), nullptr);
}

TEST(ParserTest, SyntaxErrorDiagnosed) {
  DiagnosticSink Diags;
  auto P = parseAndCheck("int f( { return 1; }", Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserTest, MissingSemicolonDiagnosed) {
  EXPECT_TRUE(failsToCheck("int f() { int x = 1 return x; }"));
}

//===----------------------------------------------------------------------===//
// Type checker
//===----------------------------------------------------------------------===//

TEST(TypeCheckTest, RejectsTypeMismatch) {
  EXPECT_TRUE(failsToCheck("int f() { int x = true; return x; }"));
  EXPECT_TRUE(failsToCheck("int f() { return \"s\"; }"));
  EXPECT_TRUE(failsToCheck("bool f(int a) { return a + true; }"));
}

TEST(TypeCheckTest, RejectsUndeclaredVariable) {
  EXPECT_TRUE(failsToCheck("int f() { return y; }"));
}

TEST(TypeCheckTest, RejectsNonBoolCondition) {
  EXPECT_TRUE(failsToCheck("void f(int a) { if (a) {} }"));
  EXPECT_TRUE(failsToCheck("void f(int a) { while (a + 1) {} }"));
}

TEST(TypeCheckTest, RejectsBreakOutsideLoop) {
  EXPECT_TRUE(failsToCheck("void f() { break; }"));
  EXPECT_TRUE(failsToCheck("void f() { continue; }"));
}

TEST(TypeCheckTest, AcceptsBreakInsideLoop) {
  EXPECT_FALSE(failsToCheck("void f() { while (true) { break; } }"));
}

TEST(TypeCheckTest, RejectsBadCalls) {
  EXPECT_TRUE(failsToCheck("int f(int a) { return len(a); }"));
  EXPECT_TRUE(failsToCheck("int f() { return g(); }"));
  EXPECT_TRUE(
      failsToCheck("int g(int a) { return a; } int f() { return g(); }"));
}

TEST(TypeCheckTest, AcceptsUserCalls) {
  EXPECT_FALSE(failsToCheck(
      "int g(int a) { return a * 2; } int f() { return g(21); }"));
}

TEST(TypeCheckTest, StringOperations) {
  EXPECT_FALSE(failsToCheck(
      R"(bool f(string a, string b) { return a + b == "ab"; })"));
  EXPECT_TRUE(failsToCheck("string f(string a, int b) { return a + b; }"));
}

TEST(TypeCheckTest, CompoundAssignTypes) {
  EXPECT_FALSE(failsToCheck("void f() { int i = 0; i += 2; }"));
  EXPECT_FALSE(failsToCheck("void f() { string s = \"\"; s += \"x\"; }"));
  EXPECT_TRUE(failsToCheck("void f() { bool b = true; b += true; }"));
  EXPECT_TRUE(failsToCheck("void f() { string s = \"\"; s -= \"x\"; }"));
}

TEST(TypeCheckTest, StructFieldChecks) {
  const char *Prelude = "struct Point { int x; int y; }\n";
  EXPECT_FALSE(failsToCheck(std::string(Prelude) +
                            "int f(Point p) { return p.x + p.y; }"));
  EXPECT_TRUE(failsToCheck(std::string(Prelude) +
                           "int f(Point p) { return p.z; }"));
  EXPECT_TRUE(failsToCheck(std::string(Prelude) +
                           "Point f() { return new Point(1); }"));
  EXPECT_FALSE(failsToCheck(std::string(Prelude) +
                            "Point f() { return new Point(1, 2); }"));
}

TEST(TypeCheckTest, RedeclarationInSameScope) {
  EXPECT_TRUE(failsToCheck("void f() { int x = 1; int x = 2; }"));
  // Shadowing in a nested scope is allowed.
  EXPECT_FALSE(failsToCheck("void f() { int x = 1; { int x = 2; } }"));
}

TEST(TypeCheckTest, VoidReturnRules) {
  EXPECT_TRUE(failsToCheck("void f() { return 1; }"));
  EXPECT_TRUE(failsToCheck("int f() { return; }"));
  EXPECT_FALSE(failsToCheck("void f() { return; }"));
}

//===----------------------------------------------------------------------===//
// Pretty printer round trip
//===----------------------------------------------------------------------===//

namespace {

/// Property: print → parse → print is a fixed point.
void expectRoundTrip(const std::string &Source) {
  Program P1 = mustParse(Source);
  std::string Printed1 = printProgram(P1);
  DiagnosticSink Diags;
  std::optional<Program> P2 = parseAndCheck(Printed1, Diags);
  ASSERT_TRUE(P2.has_value()) << "re-parse failed:\n"
                              << Printed1 << Diags.str();
  EXPECT_EQ(printProgram(*P2), Printed1);
}

} // namespace

TEST(PrinterTest, RoundTripSortIII) { expectRoundTrip(SortIII); }

TEST(PrinterTest, RoundTripOperators) {
  expectRoundTrip(
      "int f(int a, int b) { return (a + b) * (a - b) / (1 + a % 2); }");
  expectRoundTrip("bool f(int a, int b) { return a < b == (b >= a) && "
                  "!(a == 1) || a != b; }");
}

TEST(PrinterTest, RoundTripSurfaceForms) {
  expectRoundTrip("void f() { int i = 0; i++; i--; i += 2; i *= 3; "
                  "i = i + 1; }");
}

TEST(PrinterTest, RoundTripStructsAndStrings) {
  expectRoundTrip(R"(
struct Pair { int first; int second; }
string f(Pair p, string s)
{
  string t = s + "x\n";
  if (p.first > p.second)
    return t;
  return substring(t, 0, 1);
}
)");
}

TEST(PrinterTest, PreservesUnaryParens) {
  // -(a + b) must not round-trip into -a + b.
  Program P = mustParse("int f(int a, int b) { return -(a + b) * 2; }");
  std::string Printed = printProgram(P);
  DiagnosticSink Diags;
  std::optional<Program> P2 = parseAndCheck(Printed, Diags);
  ASSERT_TRUE(P2.has_value());
  EXPECT_EQ(printProgram(*P2), Printed);
  EXPECT_NE(Printed.find("-(a + b)"), std::string::npos);
}

TEST(PrinterTest, StmtHeadForControlFlow) {
  Program P = mustParse(SortIII);
  const auto *While =
      cast<WhileStmt>(P.Functions[0].Body->body()[1]);
  EXPECT_EQ(printStmtHead(While), "while (swapbit != 0)");
}

//===----------------------------------------------------------------------===//
// AST trees and paths
//===----------------------------------------------------------------------===//

TEST(AstTreeTest, ExprTreeShape) {
  Program P = mustParse("int f(int a) { return a + 1; }");
  const auto *Ret = cast<ReturnStmt>(P.Functions[0].Body->body().front());
  AstTree Tree = buildExprTree(Ret->value());
  EXPECT_EQ(Tree.Label, "Op+");
  ASSERT_EQ(Tree.Children.size(), 2u);
  EXPECT_EQ(Tree.Children[0].Label, "a");
  EXPECT_EQ(Tree.Children[1].Label, "1");
}

TEST(AstTreeTest, StmtHeadTreeDistinguishesSurfaceForms) {
  Program P = mustParse("void f() { int i = 0; i++; i += 1; i = i + 1; }");
  const auto &Body = P.Functions[0].Body->body();
  EXPECT_EQ(buildStmtHeadTree(Body[1]).Label, "Increment");
  EXPECT_EQ(buildStmtHeadTree(Body[2]).Label, "CompoundAssign+");
  EXPECT_EQ(buildStmtHeadTree(Body[3]).Label, "Assign");
}

TEST(AstTreeTest, ConditionHeadsOnly) {
  Program P = mustParse(SortIII);
  const auto *While = cast<WhileStmt>(P.Functions[0].Body->body()[1]);
  AstTree Tree = buildStmtHeadTree(While);
  EXPECT_EQ(Tree.Label, "WhileCond");
  // The while body must not be in the head tree.
  EXPECT_LT(Tree.size(), 8u);
}

TEST(AstTreeTest, FunctionTreeHasAllLeaves) {
  Program P = mustParse("int f(int a, int b) { return a + b; }");
  AstTree Tree = buildFunctionTree(P.Functions[0]);
  std::vector<std::string> Leaves;
  Tree.collectLeaves(Leaves);
  // Leaves: int a int b a b
  EXPECT_EQ(Leaves, (std::vector<std::string>{"int", "a", "int", "b", "a",
                                              "b"}));
}

TEST(AstPathTest, ExtractsLeafToLeafPaths) {
  Program P = mustParse("int f(int a) { return a + 1; }");
  AstTree Tree = buildFunctionTree(P.Functions[0]);
  auto Paths = extractAstPaths(Tree, 100, 16, 16, 1);
  ASSERT_FALSE(Paths.empty());
  // Every path must have non-empty interior and distinct endpoints
  // positions.
  for (const AstPath &Path : Paths) {
    EXPECT_FALSE(Path.InteriorLabels.empty());
    EXPECT_FALSE(Path.SourceLeaf.empty());
    EXPECT_FALSE(Path.TargetLeaf.empty());
  }
}

TEST(AstPathTest, RespectsMaxPaths) {
  Program P = mustParse(SortIII);
  AstTree Tree = buildFunctionTree(P.Functions[0]);
  auto Paths = extractAstPaths(Tree, 10, 16, 16, 7);
  EXPECT_EQ(Paths.size(), 10u);
}

TEST(AstPathTest, DeterministicForFixedSeed) {
  Program P = mustParse(SortIII);
  AstTree Tree = buildFunctionTree(P.Functions[0]);
  auto A = extractAstPaths(Tree, 10, 16, 16, 7);
  auto B = extractAstPaths(Tree, 10, 16, 16, 7);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].SourceLeaf, B[I].SourceLeaf);
    EXPECT_EQ(A[I].interiorKey(), B[I].interiorKey());
    EXPECT_EQ(A[I].TargetLeaf, B[I].TargetLeaf);
  }
}

TEST(AstPathTest, SameLabelSiblingsGetCorrectLca) {
  // (a*b) + (c*d): the path from 'a' to 'c' must go through Op+, i.e.
  // interior length 5: Op*^ up, Op+ , Op*_ down — not collapse into one
  // Op* because the two Op* nodes have equal labels.
  Program P = mustParse("int f(int a, int b, int c, int d) "
                        "{ return a * b + c * d; }");
  const auto *Ret = cast<ReturnStmt>(P.Functions[0].Body->body().front());
  AstTree Tree = buildExprTree(Ret->value());
  auto Paths = extractAstPaths(Tree, 1000, 16, 16, 1);
  bool FoundAC = false;
  for (const AstPath &Path : Paths) {
    if (Path.SourceLeaf == "a" && Path.TargetLeaf == "c") {
      FoundAC = true;
      EXPECT_EQ(Path.interiorKey(), "Op*^|Op+|Op*_");
    }
  }
  EXPECT_TRUE(FoundAC);
}

//===----------------------------------------------------------------------===//
// Hardening: depth budget, garbage bytes, diagnostic cap (DESIGN.md §12)
//===----------------------------------------------------------------------===//

namespace {

/// `int f(int x) { int y = (((x))); return y; }` with \p Parens levels.
std::string nestedParens(size_t Parens) {
  return "int f(int x) { int y = " + std::string(Parens, '(') + "x" +
         std::string(Parens, ')') + "; return y; }";
}

} // namespace

TEST(ParserDepthTest, BoundaryNesting) {
  // One level goes to the statement, one to the outermost expression,
  // so MaxParseDepth - 2 parens is the deepest accepted nesting.
  {
    DiagnosticSink Diags;
    auto P = parseAndCheck(nestedParens(Parser::MaxParseDepth - 2), Diags);
    EXPECT_TRUE(P.has_value()) << Diags.str();
  }
  {
    DiagnosticSink Diags;
    auto P = parseAndCheck(nestedParens(Parser::MaxParseDepth - 1), Diags);
    EXPECT_FALSE(P.has_value());
    EXPECT_NE(Diags.str().find("nesting too deep"), std::string::npos)
        << Diags.str();
  }
}

TEST(ParserDepthTest, ExtremeNestingIsDiagnosedNotCrash) {
  // 100k levels overflowed the C stack before the depth budget existed.
  {
    DiagnosticSink Diags;
    Parser P(lexAll(nestedParens(100000), Diags), Diags);
    P.parseProgram();
    EXPECT_TRUE(Diags.hasErrors());
  }
  {
    DiagnosticSink Diags;
    std::string Blocks = "int f() {\n" + std::string(100000, '{') +
                         " int x = 1; " + std::string(100000, '}') +
                         "\nreturn 0; }";
    Parser P(lexAll(Blocks, Diags), Diags);
    P.parseProgram();
    EXPECT_TRUE(Diags.hasErrors());
  }
  {
    DiagnosticSink Diags;
    std::string Unary =
        "bool f(bool b) { return " + std::string(100000, '!') + "b; }";
    Parser P(lexAll(Unary, Diags), Diags);
    P.parseProgram();
    EXPECT_TRUE(Diags.hasErrors());
  }
}

TEST(ParserTest, StructWithoutNameDiagnosed) {
  // `struct` not followed by an identifier is skipped by the struct
  // pre-scan; the declaration loop must reject it, not assert.
  DiagnosticSink Diags;
  Parser P(lexAll("struct; struct { int x; } int f() { return 0; }", Diags),
           Diags);
  Program Prog = P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Prog.Functions.size(), 1u);
  EXPECT_EQ(Prog.Functions[0].Name, "f");
}

TEST(LexerHardeningTest, GarbageRunCollapsesToOneDiagnostic) {
  // A kilobyte of invalid bytes is one Error token and one diagnostic,
  // not a thousand.
  DiagnosticSink Diags;
  std::string Source(1000, '\x01');
  std::vector<Token> Tokens = lexAll(Source, Diags);
  EXPECT_EQ(Diags.errorCount(), 1u) << Diags.str();
  ASSERT_EQ(Tokens.size(), 2u); // Error + EndOfFile
  EXPECT_TRUE(Tokens[0].is(TokenKind::Error));
}

TEST(LexerHardeningTest, DiagnosticStorageIsCapped) {
  // Interleave garbage with valid tokens so every bad byte is its own
  // run: the count sees all of them, storage stays bounded.
  std::string Source;
  for (int I = 0; I < 1000; ++I)
    Source += "@ x ";
  DiagnosticSink Diags;
  lexAll(Source, Diags);
  EXPECT_EQ(Diags.errorCount(), 1000u);
  EXPECT_EQ(Diags.diagnostics().size(), DiagnosticSink::MaxStoredDiags);
  EXPECT_EQ(Diags.droppedCount(), 1000u - DiagnosticSink::MaxStoredDiags);
  EXPECT_NE(Diags.str().find("further error(s) not shown"),
            std::string::npos);
}

TEST(LexerHardeningTest, BinaryInputSurvivesWholePipeline) {
  // High bytes, control bytes, and truncated UTF-8 must lex/parse to
  // diagnostics without aborting. (A NUL byte reads as end-of-input in
  // the lexer, so start at 1 — and pin that truncation behaviour too.)
  std::string Source;
  for (int I = 1; I < 256; ++I)
    Source += static_cast<char>(I);
  DiagnosticSink Diags;
  Parser P(lexAll(Source, Diags), Diags);
  P.parseProgram();
  EXPECT_TRUE(Diags.hasErrors());

  DiagnosticSink NulDiags;
  std::string Embedded("int\0garbage", 11);
  std::vector<Token> Tokens = lexAll(Embedded, NulDiags);
  ASSERT_EQ(Tokens.size(), 2u); // KwInt + EndOfFile: NUL ends the input
  EXPECT_TRUE(Tokens[0].is(TokenKind::KwInt));
  EXPECT_FALSE(NulDiags.hasErrors());
}

TEST(ParserTest, RecoveryAlwaysAdvances) {
  // Fuzzer-found stall: after a recovery that stopped just past a ';',
  // a following token that cannot start a field/statement made
  // synchronizeToStmtBoundary return without consuming anything and
  // the enclosing loop re-erred on the same token forever.
  const char *Sources[] = {
      "struct Point- 1;  {",                 // the minimized wedge
      "struct S { int x; @ int y; }",        // junk at a field start
      "int f() { int x = 1; @ @ return x; }",// junk at a stmt start
  };
  for (const char *Source : Sources) {
    DiagnosticSink Diags;
    Parser P(lexAll(Source, Diags), Diags);
    P.parseProgram();
    EXPECT_TRUE(Diags.hasErrors()) << Source;
  }
}

TEST(ParserDepthTest, StatementAtExactDepthBoundaryTerminates) {
  // Fuzzer-found stall: with nesting at exactly MaxParseDepth, the
  // statement level is still allowed but parseExpr one level down is
  // not — an expression statement then consumed zero tokens and the
  // block loop never advanced. Sweep the boundary, closed and
  // truncated.
  for (size_t N : {Parser::MaxParseDepth - 1, Parser::MaxParseDepth,
                   Parser::MaxParseDepth + 1}) {
    for (size_t Close : {N, size_t{0}}) {
      std::string Source = "int f() {\n" + std::string(N, '{') +
                           " int x = 1; " + std::string(Close, '}') +
                           "\nreturn 0; }";
      DiagnosticSink Diags;
      Parser P(lexAll(Source, Diags), Diags);
      P.parseProgram();
      EXPECT_TRUE(Diags.hasErrors()) << "N=" << N;
    }
  }
}
