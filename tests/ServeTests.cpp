//===-- tests/ServeTests.cpp - Serving-stack tests -------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving contracts of DESIGN.md §13:
///
///  - InferenceEquivalenceTest: the forward-only LigerInference
///    runtime is bitwise-identical to the autodiff forward — program
///    embeddings memcmp-equal, greedy decodes token-equal — for GRU
///    and LSTM cells, cold and warm embedding caches.
///  - WeightImageTest: LGWI round-trips are bitwise; truncation at
///    every byte offset and every single-byte flip fail cleanly (the
///    LGCK fuzz-harness discipline applied to the serving image).
///  - ServeDeadlineTest / ServeStatusTest: per-request wall-clock
///    deadlines surface as a distinct terminal status and stats
///    counter; pipeline filters map to their statuses.
///  - ServeSharedCacheTest / TraceCacheConcurrencyTest: engines and
///    raw caches sharing one on-disk directory serve concurrent
///    readers (and writers) without corruption or result drift.
///
//===----------------------------------------------------------------------===//

#include "models/Inference.h"
#include "nn/GraphArena.h"
#include "serve/Serve.h"
#include "testgen/TraceCache.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace liger;

namespace {

/// Tiny but non-degenerate scale: a few methods, real traces.
ExperimentScale tinyScale() {
  ExperimentScale Scale;
  Scale.MethodsMed = 12;
  Scale.Hidden = 10;
  Scale.EmbedDim = 8;
  Scale.TargetPaths = 3;
  Scale.ExecutionsPerPath = 2;
  Scale.Seed = 11;
  return Scale;
}

std::vector<const MethodSample *> allSamples(const NameTask &Task) {
  std::vector<const MethodSample *> Out;
  for (const MethodSample &S : Task.Split.Train)
    Out.push_back(&S);
  for (const MethodSample &S : Task.Split.Valid)
    Out.push_back(&S);
  for (const MethodSample &S : Task.Split.Test)
    Out.push_back(&S);
  return Out;
}

/// Checks bitwise encode + exact decode equivalence between the
/// autodiff model and the forward-only runtime for one cell kind.
void expectForwardEquivalence(CellKind Cell) {
  ExperimentScale Scale = tinyScale();
  NameTask Task = buildNameTask(Scale, /*Large=*/false);
  LigerConfig Config = serveLigerConfig(Scale);
  Config.Cell = Cell;
  LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
  WeightImage Image = WeightImage::fromStore(Net.params());
  LigerInference Inference(Image, Task.Joint, &Task.Target, Config);

  std::vector<const MethodSample *> Samples = allSamples(Task);
  ASSERT_FALSE(Samples.empty());

  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  // Two rounds: the first runs the inference engine with cold
  // statement/state caches, the second with warm ones — both must be
  // bitwise-identical to the graph forward.
  for (int Round = 0; Round < 2; ++Round) {
    for (const MethodSample *S : Samples) {
      GraphArena::current().reset();
      LigerEncoding Enc = Net.encoder().encode(S->Traces);
      const float *Embedding = Inference.encode(S->Traces);
      ASSERT_EQ(std::memcmp(Embedding, Enc.ProgramEmbedding->Value.data(),
                            Config.Hidden * sizeof(float)),
                0)
          << "round " << Round;
      GraphArena::current().reset();
      EXPECT_EQ(Inference.predictName(S->Traces), Net.predict(*S))
          << "round " << Round;
    }
  }
  // Warm rounds actually hit the persistent caches.
  EXPECT_GT(Inference.cacheStats().StmtHits, 0u);
}

std::string tempPath(const char *Name) {
  return (std::filesystem::temp_directory_path() / Name).string();
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// A small weight image with several ranks and shapes.
WeightImage tinyImage(uint64_t Seed) {
  Vocabulary Joint, Target;
  Joint.add("x");
  Joint.add("y");
  Target.add("sum");
  LigerConfig Config;
  Config.EmbedDim = 4;
  Config.Hidden = 5;
  Config.AttnHidden = 3;
  LigerNamePredictor Net(Joint, Target, Config, Seed);
  return WeightImage::fromStore(Net.params());
}

} // namespace

//===----------------------------------------------------------------------===//
// InferenceEquivalenceTest
//===----------------------------------------------------------------------===//

TEST(InferenceEquivalenceTest, GruEncodeDecodeBitwise) {
  expectForwardEquivalence(CellKind::Gru);
}

TEST(InferenceEquivalenceTest, LstmEncodeDecodeBitwise) {
  expectForwardEquivalence(CellKind::Lstm);
}

//===----------------------------------------------------------------------===//
// WeightImageTest
//===----------------------------------------------------------------------===//

namespace {

/// Entry-by-entry bitwise comparison of \p Got against \p Want.
void expectImagesBitwise(const WeightImage &Want, const WeightImage &Got) {
  ASSERT_EQ(Got.entries().size(), Want.entries().size());
  ASSERT_EQ(Got.totalScalars(), Want.totalScalars());
  EXPECT_TRUE(Got.version() == Want.version());
  for (const WeightImage::Entry &E : Want.entries()) {
    const WeightImage::Entry *L = Got.find(E.Name);
    ASSERT_NE(L, nullptr) << E.Name;
    ASSERT_EQ(L->Rank, E.Rank);
    ASSERT_EQ(L->Dims[0], E.Dims[0]);
    ASSERT_EQ(L->Dims[1], E.Dims[1]);
    const float *A = E.Rank == 2
                         ? Want.tensor2d(E.Name, E.Dims[0], E.Dims[1])
                         : Want.tensor1d(E.Name, E.Size);
    const float *B = L->Rank == 2
                         ? Got.tensor2d(E.Name, E.Dims[0], E.Dims[1])
                         : Got.tensor1d(E.Name, E.Size);
    EXPECT_EQ(std::memcmp(A, B, E.Size * sizeof(float)), 0) << E.Name;
  }
}

} // namespace

TEST(WeightImageTest, RoundTripIsBitwise) {
  WeightImage Image = tinyImage(3);
  std::string Path = tempPath("liger-wi-roundtrip.lgwi");
  std::string Error;
  ASSERT_TRUE(Image.save(Path, &Error)) << Error;

  WeightImage Loaded;
  ASSERT_TRUE(WeightImage::load(Path, Loaded, &Error)) << Error;
  EXPECT_FALSE(Loaded.mapped());
  expectImagesBitwise(Image, Loaded);
  std::remove(Path.c_str());
}

TEST(WeightImageTest, MapRoundTripIsBitwise) {
  WeightImage Image = tinyImage(3);
  std::string Path = tempPath("liger-wi-maptrip.lgwi");
  std::string Error;
  ASSERT_TRUE(Image.save(Path, &Error)) << Error;

  WeightImage Mapped;
  ASSERT_TRUE(WeightImage::map(Path, Mapped, &Error)) << Error;
  EXPECT_TRUE(Mapped.mapped());
  expectImagesBitwise(Image, Mapped);
  // The v2 payload alignment is what makes mapped tensor reads
  // naturally aligned — check it on the actual mapped addresses.
  for (const WeightImage::Entry &E : Mapped.entries()) {
    const float *P = E.Rank == 2
                         ? Mapped.tensor2d(E.Name, E.Dims[0], E.Dims[1])
                         : Mapped.tensor1d(E.Name, E.Size);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % alignof(float), 0u) << E.Name;
  }

  // Copies share the mapping; reads stay valid after the original
  // image is gone and after the file is unlinked (POSIX keeps mapped
  // pages alive until the last munmap).
  WeightImage Copy = Mapped;
  Mapped = WeightImage();
  std::remove(Path.c_str());
  expectImagesBitwise(Image, Copy);
}

TEST(WeightImageTest, MapFallsBackToReadOnMissingMmapTarget) {
  // open() failing is the first rung of the fallback ladder: map()
  // must degrade to load()'s answer (here: a clean failure), never
  // crash or half-fill the output.
  WeightImage Out;
  std::string Error;
  EXPECT_FALSE(WeightImage::map(tempPath("liger-wi-absent.lgwi"), Out,
                                &Error));
  EXPECT_FALSE(Error.empty());
  EXPECT_TRUE(Out.empty());
}

TEST(WeightImageTest, TruncationAtEveryOffsetFailsCleanly) {
  WeightImage Image = tinyImage(5);
  std::string Path = tempPath("liger-wi-trunc.lgwi");
  ASSERT_TRUE(Image.save(Path, nullptr));
  std::string Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 64u);

  std::string TruncPath = tempPath("liger-wi-trunc-cut.lgwi");
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    writeFileBytes(TruncPath, Bytes.substr(0, Len));
    WeightImage Out;
    EXPECT_FALSE(WeightImage::load(TruncPath, Out, nullptr))
        << "truncation to " << Len << " bytes must fail";
    WeightImage MapOut;
    EXPECT_FALSE(WeightImage::map(TruncPath, MapOut, nullptr))
        << "mapped truncation to " << Len << " bytes must fail";
  }
  std::remove(Path.c_str());
  std::remove(TruncPath.c_str());
}

TEST(WeightImageTest, EveryByteFlipRejected) {
  WeightImage Image = tinyImage(7);
  std::string Path = tempPath("liger-wi-flip.lgwi");
  ASSERT_TRUE(Image.save(Path, nullptr));
  std::string Bytes = readFileBytes(Path);

  std::string FlipPath = tempPath("liger-wi-flip-mut.lgwi");
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Mutated = Bytes;
    Mutated[I] = static_cast<char>(Mutated[I] ^ 0x5A);
    writeFileBytes(FlipPath, Mutated);
    WeightImage Out;
    // The content digest covers the header, the directory, and every
    // data byte, and the alignment pad must be zero, so no single-byte
    // flip may load successfully — through either backing.
    EXPECT_FALSE(WeightImage::load(FlipPath, Out, nullptr))
        << "flip at offset " << I << " must be rejected";
    WeightImage MapOut;
    EXPECT_FALSE(WeightImage::map(FlipPath, MapOut, nullptr))
        << "mapped flip at offset " << I << " must be rejected";
  }
  std::remove(Path.c_str());
  std::remove(FlipPath.c_str());
}

TEST(WeightImageTest, VersionChangesWithParams) {
  WeightImage A = tinyImage(3);
  WeightImage B = tinyImage(4);
  EXPECT_FALSE(A.version() == B.version());
}

//===----------------------------------------------------------------------===//
// Serve status + deadline
//===----------------------------------------------------------------------===//

namespace {

ServeConfig tinyServeConfig() {
  ServeConfig Config;
  Config.Scale = tinyScale();
  Config.Scale.CacheMode = TraceCacheMode::Full;
  Config.Scale.Cache = std::make_shared<TraceCache>(
      Config.Scale.CacheMode, /*Dir=*/std::string());
  Config.Workers = 2;
  return Config;
}

const char *SpinSource = "int spinner(int x) {\n"
                         "  int spin3 = 0;\n"
                         "  while (spin3 == 0) { spin3 = spin3 * 1; }\n"
                         "  return spin3;\n"
                         "}\n";
const char *SumSource = "int sumAll(int[] xs) {\n"
                        "  int s = 0;\n"
                        "  for (int i = 0; i < len(xs); i = i + 1) {\n"
                        "    s = s + xs[i];\n"
                        "  }\n"
                        "  return s;\n"
                        "}\n";

} // namespace

TEST(ServeStatusTest, PipelineFiltersMapToStatuses) {
  ServeEngine Engine(tinyServeConfig());
  std::vector<ServeResponse> Out = Engine.handleBatch({
      {"sumAll", SumSource, 0},
      {"sumAll", "int sumAll(", 0},
      {"other", SumSource, 0},
      {"tiny", "int tiny(int x) { return x; }", 0},
      {"spinner", SpinSource, 60000},
  });
  ASSERT_EQ(Out.size(), 5u);
  EXPECT_EQ(Out[0].Status, ServeStatus::Ok);
  EXPECT_FALSE(Out[0].NameSubtokens.empty());
  EXPECT_EQ(Out[1].Status, ServeStatus::ParseError);
  EXPECT_EQ(Out[2].Status, ServeStatus::NoSuchMethod);
  EXPECT_EQ(Out[3].Status, ServeStatus::TooSmall);
  // With an effectively unlimited deadline the spin is caught by the
  // fuel budget on every run: the timeout filter, not the deadline.
  EXPECT_EQ(Out[4].Status, ServeStatus::NoTraces);

  ServeStats Stats = Engine.stats();
  EXPECT_EQ(Stats.Requests, 5u);
  EXPECT_EQ(Stats.Ok, 1u);
  EXPECT_EQ(Stats.ParseErrors, 1u);
  EXPECT_EQ(Stats.NoSuchMethod, 1u);
  EXPECT_EQ(Stats.TooSmall, 1u);
  EXPECT_EQ(Stats.NoTraces, 1u);
  EXPECT_EQ(Stats.DeadlineExceeded, 0u);
}

TEST(ServeDeadlineTest, TinyDeadlineSurfacesAsDistinctStatus) {
  ServeEngine Engine(tinyServeConfig());
  // A 1ms deadline on an uncached hostile method: the fuel-bounded
  // exploration alone takes longer, and the phase-boundary check then
  // reports the deadline, which dominates the trace-outcome filters.
  std::vector<ServeResponse> Out =
      Engine.handleBatch({{"spinner", SpinSource, 1}});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].Status, ServeStatus::DeadlineExceeded);
  EXPECT_TRUE(Out[0].NameSubtokens.empty());
  EXPECT_NE(Out[0].Diagnostic.find("deadline"), std::string::npos);
  EXPECT_EQ(Engine.stats().DeadlineExceeded, 1u);
}

//===----------------------------------------------------------------------===//
// Shared-directory concurrency
//===----------------------------------------------------------------------===//

TEST(ServeSharedCacheTest, TwoEnginesShareOneDirectory) {
  std::string Dir = tempPath("liger-serve-shared-cache");
  std::filesystem::remove_all(Dir);

  auto makeConfig = [&] {
    ServeConfig Config = tinyServeConfig();
    // Each engine gets its own TraceCache instance (fresh memory map,
    // as in separate processes) over the same directory.
    Config.Scale.TraceCacheDir = Dir;
    Config.Scale.Cache = std::make_shared<TraceCache>(
        Config.Scale.CacheMode, Config.Scale.TraceCacheDir);
    return Config;
  };

  std::vector<ServeRequest> Burst = {{"sumAll", SumSource, 0},
                                     {"sumAll", SumSource, 0}};

  // Cold pass one request at a time (a batched pair may race to the
  // same key on two workers and both legitimately miss): the second
  // identical request must deterministically reuse the first's entry.
  ServeEngine First(makeConfig());
  std::vector<ServeResponse> Cold = {First.handle(Burst[0]),
                                     First.handle(Burst[1])};
  ASSERT_EQ(Cold[0].Status, ServeStatus::Ok);
  ASSERT_EQ(Cold[1].Status, ServeStatus::Ok);
  EXPECT_FALSE(Cold[0].TraceCacheHit);
  EXPECT_TRUE(Cold[1].TraceCacheHit)
      << "second identical request must reuse the first's entry";

  // A second engine with no memory of the first: all disk hits, same
  // predictions, concurrently from both engines' worker pools.
  ServeEngine Second(makeConfig());
  std::vector<ServeResponse> FromFirst, FromSecond;
  std::thread Reader([&] { FromFirst = First.handleBatch(Burst); });
  FromSecond = Second.handleBatch(Burst);
  Reader.join();

  for (const ServeResponse &R : FromSecond) {
    EXPECT_EQ(R.Status, ServeStatus::Ok);
    EXPECT_TRUE(R.TraceCacheHit);
    EXPECT_EQ(R.NameSubtokens, Cold[0].NameSubtokens);
  }
  for (const ServeResponse &R : FromFirst) {
    EXPECT_EQ(R.Status, ServeStatus::Ok);
    EXPECT_TRUE(R.TraceCacheHit);
    EXPECT_EQ(R.NameSubtokens, Cold[0].NameSubtokens);
  }
  std::filesystem::remove_all(Dir);
}

TEST(TraceCacheConcurrencyTest, SharedDirReadersAndWritersStayClean) {
  std::string Dir = tempPath("liger-trace-cache-concurrent");
  std::filesystem::remove_all(Dir);

  // Synthetic entries, one per key; every thread stores and looks up
  // every key through its own cache instance (simulating processes
  // that share only the directory). Stores atomically replace files
  // while other threads are mid-read; the reader must treat any
  // interleaving as a whole old or whole new entry, never corruption.
  constexpr size_t NumKeys = 8;
  constexpr size_t NumThreads = 4;
  constexpr size_t Rounds = 25;
  auto keyOf = [](size_t I) {
    TestGenOptions Options;
    Options.Seed = 1000 + I;
    return traceCacheKey("shared-source", "method" + std::to_string(I),
                         Options);
  };
  auto entryOf = [](size_t I) {
    CachedTraceEntry E;
    E.Attempts = static_cast<uint32_t>(10 + I);
    E.OkRuns = static_cast<uint32_t>(I);
    E.AcceptedInputs.resize(1);
    PortableValue V;
    V.Kind = ValueKind::Int;
    V.Int = static_cast<int64_t>(I);
    E.AcceptedInputs[0].push_back(V);
    return E;
  };

  std::vector<std::unique_ptr<TraceCache>> Caches;
  for (size_t T = 0; T < NumThreads; ++T)
    Caches.push_back(
        std::make_unique<TraceCache>(TraceCacheMode::Full, Dir));

  std::atomic<uint64_t> WrongPayloads{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (size_t R = 0; R < Rounds; ++R)
        for (size_t I = 0; I < NumKeys; ++I) {
          if ((R + T + I) % 2 == 0)
            Caches[T]->store(keyOf(I), entryOf(I));
          CachedTraceEntry Out;
          if (Caches[T]->lookup(keyOf(I), Out))
            if (Out.Attempts != 10 + I || Out.OkRuns != I ||
                Out.AcceptedInputs.size() != 1 ||
                Out.AcceptedInputs[0].size() != 1 ||
                Out.AcceptedInputs[0][0].Int != static_cast<int64_t>(I))
              WrongPayloads.fetch_add(1);
        }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(WrongPayloads.load(), 0u);
  for (const std::unique_ptr<TraceCache> &C : Caches)
    EXPECT_EQ(C->badEntries(), 0u)
        << "atomic replace + handle-sized reads must never look corrupt";

  // A fresh instance over the settled directory hits every key.
  TraceCache Fresh(TraceCacheMode::Full, Dir);
  for (size_t I = 0; I < NumKeys; ++I) {
    CachedTraceEntry Out;
    EXPECT_TRUE(Fresh.lookup(keyOf(I), Out)) << "key " << I;
  }
  std::filesystem::remove_all(Dir);
}
