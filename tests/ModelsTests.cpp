//===-- tests/ModelsTests.cpp - Unit tests for the neural models ----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Code2Seq.h"
#include "models/Code2Vec.h"
#include "models/Decoder.h"
#include "models/Dypro.h"
#include "models/Liger.h"

#include "lang/Parser.h"
#include "nn/Optim.h"
#include "support/StringUtils.h"
#include "testgen/TraceCollector.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace liger;

namespace {

/// Builds a MethodSample from source (the function is the last
/// declaration) with labels derived from its name.
MethodSample makeSample(const std::string &Source, int ClassId = -1) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  MethodSample Sample;
  Sample.Prog = std::make_shared<Program>(std::move(*P));
  Sample.Fn = &Sample.Prog->Functions.back();
  TestGenOptions Options;
  Options.TargetPaths = 4;
  Options.ExecutionsPerPath = 3;
  Options.MaxAttempts = 60;
  Sample.Traces = collectTraces(*Sample.Prog, *Sample.Fn, Options);
  Sample.NameSubtokens = splitSubtokens(Sample.Fn->Name);
  Sample.ClassId = ClassId;
  Sample.Project = "test";
  return Sample;
}

/// A small two-sample corpus with distinct semantics and names.
std::vector<MethodSample> tinyCorpus() {
  std::vector<MethodSample> Samples;
  Samples.push_back(makeSample(R"(
int sumArray(int[] arr) {
  int total = 0;
  for (int i = 0; i < len(arr); i++)
    total += arr[i];
  return total;
}
)", 0));
  Samples.push_back(makeSample(R"(
int maxArray(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int best = arr[0];
  for (int i = 1; i < len(arr); i++)
    if (arr[i] > best)
      best = arr[i];
  return best;
}
)", 1));
  return Samples;
}

struct TinyVocabs {
  Vocabulary Joint;
  Vocabulary Target;
};

TinyVocabs buildVocabs(const std::vector<MethodSample> &Samples) {
  TinyVocabs V;
  for (const MethodSample &Sample : Samples) {
    addSampleToVocabulary(Sample, V.Joint);
    addVariableNamesToVocabulary(Sample, V.Joint);
    addNameToVocabulary(Sample, V.Target);
  }
  V.Joint.freeze();
  V.Target.freeze();
  return V;
}

LigerConfig tinyLigerConfig() {
  LigerConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  Config.AttnHidden = 12;
  Config.MaxStepsPerTrace = 24;
  return Config;
}

} // namespace

//===----------------------------------------------------------------------===//
// Common helpers
//===----------------------------------------------------------------------===//

TEST(CommonTest, NameTargetRoundTrip) {
  Vocabulary Target;
  Target.add("sum");
  Target.add("array");
  Target.freeze();
  std::vector<int> Ids = nameTargetIds({"sum", "array"}, Target);
  ASSERT_EQ(Ids.size(), 3u);
  EXPECT_EQ(Ids.back(), Vocabulary::Eos);
  EXPECT_EQ(idsToSubtokens(Ids, Target),
            (std::vector<std::string>{"sum", "array"}));
}

TEST(CommonTest, UnknownSubtokensMapToUnk) {
  Vocabulary Target;
  Target.add("sum");
  Target.freeze();
  std::vector<int> Ids = nameTargetIds({"sum", "exotic"}, Target);
  EXPECT_EQ(Ids[1], Vocabulary::Unk);
  // Unk is skipped when decoding back.
  EXPECT_EQ(idsToSubtokens(Ids, Target), (std::vector<std::string>{"sum"}));
}

TEST(CommonTest, VocabularyCoversTracesAndNames) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  // Statement labels, value tokens, and variable names must be present.
  EXPECT_TRUE(V.Joint.contains("Decl"));
  EXPECT_TRUE(V.Joint.contains("0"));
  EXPECT_TRUE(V.Joint.contains("arr"));
  EXPECT_TRUE(V.Target.contains("sum"));
  EXPECT_TRUE(V.Target.contains("max"));
  EXPECT_TRUE(V.Target.contains("array"));
}

//===----------------------------------------------------------------------===//
// LIGER
//===----------------------------------------------------------------------===//

TEST(LigerTest, EncoderShapesAndDeterminism) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
  Var Loss1 = Net.loss(Samples[0]);
  Var Loss2 = Net.loss(Samples[0]);
  EXPECT_FLOAT_EQ(Loss1->Value[0], Loss2->Value[0]); // same params, input
  EXPECT_GT(Loss1->Value[0], 0.0f);
  EXPECT_FALSE(std::isnan(Loss1->Value[0]));
}

TEST(LigerTest, SameSeedSameModel) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor A(V.Joint, V.Target, tinyLigerConfig(), 7);
  LigerNamePredictor B(V.Joint, V.Target, tinyLigerConfig(), 7);
  EXPECT_FLOAT_EQ(A.loss(Samples[0])->Value[0],
                  B.loss(Samples[0])->Value[0]);
}

TEST(LigerTest, BackwardProducesParameterGradients) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
  backward(Net.loss(Samples[0]));
  EXPECT_GT(Net.params().gradNorm(), 0.0);
}

TEST(LigerTest, OverfitsTinyCorpus) {
  // Two distinct programs with distinct names: LIGER must be able to
  // memorize them (sanity that all layers learn jointly).
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
  AdamOptions Opts;
  Opts.LearningRate = 0.01f;
  Adam Opt(Net.params(), Opts);
  for (int Iter = 0; Iter < 60; ++Iter) {
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    backward(meanLoss(Losses));
    Opt.step();
  }
  EXPECT_EQ(Net.predict(Samples[0]), Samples[0].NameSubtokens);
  EXPECT_EQ(Net.predict(Samples[1]), Samples[1].NameSubtokens);
}

TEST(LigerTest, FusionStatsAreSensible) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
  FusionStats Stats;
  Net.predict(Samples[0], &Stats);
  EXPECT_GT(Stats.FusionSteps, 0u);
  EXPECT_GE(Stats.staticMean(), 0.0);
  EXPECT_LE(Stats.staticMean(), 1.0);
}

TEST(LigerTest, FusedAttentionTrainingStepIsBitwise) {
  // End-to-end check that the fused attention path (both the encoder
  // fusion site A1 and the cached decoder memory) is bitwise identical
  // to the per-pair reference graph through loss, gradients, and one
  // Adam step.
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  auto RunStep = [&](bool Fused) {
    bool Prev = fusedAttentionEnabled();
    setFusedAttentionEnabled(Fused);
    LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
    Adam Opt(Net.params());
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    Var Loss = meanLoss(Losses);
    backward(Loss);
    std::vector<std::vector<float>> Grads, Params;
    for (const Var &P : Net.params().params())
      Grads.emplace_back(P->Grad.data(), P->Grad.data() + P->Grad.size());
    Opt.step();
    for (const Var &P : Net.params().params())
      Params.emplace_back(P->Value.data(), P->Value.data() + P->Value.size());
    setFusedAttentionEnabled(Prev);
    return std::make_tuple(Loss->Value[0], Grads, Params);
  };
  auto [FusedLoss, FusedGrads, FusedParams] = RunStep(true);
  auto [RefLoss, RefGrads, RefParams] = RunStep(false);
  EXPECT_EQ(FusedLoss, RefLoss);
  EXPECT_EQ(FusedGrads, RefGrads);
  EXPECT_EQ(FusedParams, RefParams);
}

TEST(LigerTest, AblationsRunAndDiffer) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerConfig Full = tinyLigerConfig();

  LigerConfig NoStatic = Full;
  NoStatic.UseStaticFeature = false;
  LigerConfig NoDynamic = Full;
  NoDynamic.UseDynamicFeature = false;
  LigerConfig NoAttention = Full;
  NoAttention.UseFusionAttention = false;
  LigerConfig MeanPool = Full;
  MeanPool.MeanPoolPrograms = true;

  float FullLoss =
      LigerNamePredictor(V.Joint, V.Target, Full, 42).loss(Samples[0])
          ->Value[0];
  for (const LigerConfig &Config :
       {NoStatic, NoDynamic, NoAttention, MeanPool}) {
    LigerNamePredictor Net(V.Joint, V.Target, Config, 42);
    Var Loss = Net.loss(Samples[0]);
    EXPECT_FALSE(std::isnan(Loss->Value[0]));
    EXPECT_GT(Loss->Value[0], 0.0f);
  }
  // The no-dynamic ablation must actually change the computation.
  LigerNamePredictor NoDynNet(V.Joint, V.Target, NoDynamic, 42);
  EXPECT_NE(FullLoss, NoDynNet.loss(Samples[0])->Value[0]);
}

TEST(LigerTest, NoDynamicIgnoresConcreteTraces) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerConfig NoDynamic = tinyLigerConfig();
  NoDynamic.UseDynamicFeature = false;
  LigerNamePredictor Net(V.Joint, V.Target, NoDynamic, 42);

  // Dropping all concrete traces must not change the symbolic-only
  // encoding.
  MethodSample Stripped = Samples[0];
  for (BlendedTrace &Path : Stripped.Traces.Paths) {
    Path.Concrete.clear();
    Path.Inputs.clear();
  }
  EXPECT_FLOAT_EQ(Net.loss(Samples[0])->Value[0],
                  Net.loss(Stripped)->Value[0]);
}

TEST(LigerTest, ClassifierPredictsValidClass) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerClassifier Net(V.Joint, 2, tinyLigerConfig(), 42);
  int Predicted = Net.predict(Samples[0]);
  EXPECT_GE(Predicted, 0);
  EXPECT_LT(Predicted, 2);
  Tensor Embedding = Net.embed(Samples[0].Traces);
  EXPECT_EQ(Embedding.size(), tinyLigerConfig().Hidden);
}

TEST(LigerTest, ClassifierLearnsTinyCorpus) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerClassifier Net(V.Joint, 2, tinyLigerConfig(), 42);
  AdamOptions Opts;
  Opts.LearningRate = 0.01f;
  Adam Opt(Net.params(), Opts);
  for (int Iter = 0; Iter < 40; ++Iter) {
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    backward(meanLoss(Losses));
    Opt.step();
  }
  EXPECT_EQ(Net.predict(Samples[0]), 0);
  EXPECT_EQ(Net.predict(Samples[1]), 1);
}

//===----------------------------------------------------------------------===//
// DYPRO
//===----------------------------------------------------------------------===//

TEST(DyproTest, LossAndPredictRun) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  DyproConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  Config.AttnHidden = 12;
  DyproNamePredictor Net(V.Joint, V.Target, Config, 42);
  Var Loss = Net.loss(Samples[0]);
  EXPECT_GT(Loss->Value[0], 0.0f);
  backward(Loss);
  EXPECT_GT(Net.params().gradNorm(), 0.0);
  auto Predicted = Net.predict(Samples[0]);
  EXPECT_LE(Predicted.size(), Config.MaxDecodeLen);
}

TEST(DyproTest, IgnoresSymbolicDimension) {
  // DYPRO must be a pure dynamic model: replacing the symbolic trace
  // steps with an empty sequence (keeping states) must not change it.
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  DyproConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  DyproNamePredictor Net(V.Joint, V.Target, Config, 42);

  MethodSample Stripped = Samples[0];
  for (BlendedTrace &Path : Stripped.Traces.Paths)
    Path.Symbolic.Steps.clear();
  EXPECT_FLOAT_EQ(Net.loss(Samples[0])->Value[0],
                  Net.loss(Stripped)->Value[0]);
}

TEST(DyproTest, ClassifierLearns) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  DyproConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  DyproClassifier Net(V.Joint, 2, Config, 42);
  AdamOptions Opts;
  Opts.LearningRate = 0.01f;
  Adam Opt(Net.params(), Opts);
  for (int Iter = 0; Iter < 40; ++Iter) {
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    backward(meanLoss(Losses));
    Opt.step();
  }
  EXPECT_EQ(Net.predict(Samples[0]), 0);
  EXPECT_EQ(Net.predict(Samples[1]), 1);
}

//===----------------------------------------------------------------------===//
// code2vec / code2seq
//===----------------------------------------------------------------------===//

namespace {

struct StaticVocabs {
  Vocabulary Tokens, Paths, Names;
  Vocabulary Subtokens, Nodes, Target;
};

StaticVocabs buildStaticVocabs(const std::vector<MethodSample> &Samples) {
  StaticVocabs V;
  Code2VecConfig C2v;
  Code2SeqConfig C2s;
  for (const MethodSample &Sample : Samples) {
    addPathContextsToVocabulary(Sample, V.Tokens, V.Paths, C2v);
    Code2VecNamePredictor::addNameToVocabulary(Sample, V.Names);
    addSeqPathContextsToVocabulary(Sample, V.Subtokens, V.Nodes, C2s);
    addNameToVocabulary(Sample, V.Target);
  }
  V.Tokens.freeze();
  V.Paths.freeze();
  V.Names.freeze();
  V.Subtokens.freeze();
  V.Nodes.freeze();
  V.Target.freeze();
  return V;
}

} // namespace

TEST(Code2VecTest, ExtractionIsDeterministic) {
  auto Samples = tinyCorpus();
  StaticVocabs V = buildStaticVocabs(Samples);
  Code2VecConfig Config;
  auto A = extractPathContexts(Samples[0], V.Tokens, V.Paths, Config);
  auto B = extractPathContexts(Samples[0], V.Tokens, V.Paths, Config);
  ASSERT_EQ(A.size(), B.size());
  ASSERT_FALSE(A.empty());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Source, B[I].Source);
    EXPECT_EQ(A[I].Path, B[I].Path);
    EXPECT_EQ(A[I].Target, B[I].Target);
  }
}

TEST(Code2VecTest, LearnsTinyCorpus) {
  auto Samples = tinyCorpus();
  StaticVocabs V = buildStaticVocabs(Samples);
  Code2VecConfig Config;
  Config.EmbedDim = 12;
  Config.CodeDim = 12;
  Code2VecNamePredictor Net(V.Tokens, V.Paths, V.Names, Config, 42);
  AdamOptions Opts;
  Opts.LearningRate = 0.02f;
  Adam Opt(Net.params(), Opts);
  for (int Iter = 0; Iter < 60; ++Iter) {
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    backward(meanLoss(Losses));
    Opt.step();
  }
  EXPECT_EQ(Net.predict(Samples[0]), Samples[0].NameSubtokens);
  EXPECT_EQ(Net.predict(Samples[1]), Samples[1].NameSubtokens);
}

TEST(Code2VecTest, StaticModelIgnoresTraces) {
  auto Samples = tinyCorpus();
  StaticVocabs V = buildStaticVocabs(Samples);
  Code2VecConfig Config;
  Config.EmbedDim = 12;
  Config.CodeDim = 12;
  Code2VecNamePredictor Net(V.Tokens, V.Paths, V.Names, Config, 42);
  MethodSample Stripped = Samples[0];
  Stripped.Traces.Paths.clear();
  EXPECT_FLOAT_EQ(Net.loss(Samples[0])->Value[0],
                  Net.loss(Stripped)->Value[0]);
}

TEST(Code2SeqTest, LearnsTinyCorpus) {
  auto Samples = tinyCorpus();
  StaticVocabs V = buildStaticVocabs(Samples);
  Code2SeqConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  Config.AttnHidden = 12;
  Code2SeqNamePredictor Net(V.Subtokens, V.Nodes, V.Target, Config, 42);
  AdamOptions Opts;
  Opts.LearningRate = 0.01f;
  Adam Opt(Net.params(), Opts);
  for (int Iter = 0; Iter < 80; ++Iter) {
    std::vector<Var> Losses;
    for (const MethodSample &Sample : Samples)
      Losses.push_back(Net.loss(Sample));
    backward(meanLoss(Losses));
    Opt.step();
  }
  EXPECT_EQ(Net.predict(Samples[0]), Samples[0].NameSubtokens);
  EXPECT_EQ(Net.predict(Samples[1]), Samples[1].NameSubtokens);
}

TEST(Code2SeqTest, ClassifierRuns) {
  auto Samples = tinyCorpus();
  StaticVocabs V = buildStaticVocabs(Samples);
  Code2SeqConfig Config;
  Config.EmbedDim = 12;
  Config.Hidden = 12;
  Code2SeqClassifier Net(V.Subtokens, V.Nodes, 2, Config, 42);
  Var Loss = Net.loss(Samples[0]);
  EXPECT_GT(Loss->Value[0], 0.0f);
  backward(Loss);
  EXPECT_GT(Net.params().gradNorm(), 0.0);
  int Predicted = Net.predict(Samples[1]);
  EXPECT_GE(Predicted, 0);
  EXPECT_LT(Predicted, 2);
}

//===----------------------------------------------------------------------===//
// Checkpoint round trips for every model's ParamStore
//===----------------------------------------------------------------------===//

namespace {

/// Saves \p Store, perturbs every parameter, loads the file back, and
/// checks bitwise recovery.
void roundTripStore(ParamStore &Store, const std::string &Tag) {
  std::string Path = testing::TempDir() + "/liger_model_" + Tag + ".ckpt";
  std::vector<std::vector<float>> Original;
  for (const Var &P : Store.params())
    Original.emplace_back(P->Value.data(),
                          P->Value.data() + P->Value.size());
  std::string Error;
  ASSERT_TRUE(Store.save(Path, &Error)) << Tag << ": " << Error;
  for (const Var &P : Store.params())
    P->Value.zero();
  ASSERT_TRUE(Store.load(Path, &Error)) << Tag << ": " << Error;
  ASSERT_EQ(Store.params().size(), Original.size());
  for (size_t I = 0; I < Original.size(); ++I) {
    const Tensor &T = Store.params()[I]->Value;
    ASSERT_EQ(T.size(), Original[I].size()) << Tag;
    EXPECT_EQ(std::memcmp(T.data(), Original[I].data(),
                          T.size() * sizeof(float)),
              0)
        << Tag << " parameter " << Store.names()[I];
  }
}

} // namespace

TEST(CheckpointTest, AllFourModelStoresRoundTrip) {
  auto Samples = tinyCorpus();
  TinyVocabs Dyn = buildVocabs(Samples);
  StaticVocabs Sta = buildStaticVocabs(Samples);

  Code2VecConfig C2v;
  C2v.EmbedDim = 12;
  C2v.CodeDim = 12;
  Code2VecNamePredictor C2vNet(Sta.Tokens, Sta.Paths, Sta.Names, C2v, 42);
  roundTripStore(C2vNet.params(), "code2vec");

  Code2SeqConfig C2s;
  C2s.EmbedDim = 12;
  C2s.Hidden = 12;
  C2s.AttnHidden = 12;
  Code2SeqNamePredictor C2sNet(Sta.Subtokens, Sta.Nodes, Sta.Target, C2s, 42);
  roundTripStore(C2sNet.params(), "code2seq");

  DyproConfig Dy;
  Dy.EmbedDim = 12;
  Dy.Hidden = 12;
  Dy.AttnHidden = 12;
  DyproNamePredictor DyNet(Dyn.Joint, Dyn.Target, Dy, 42);
  roundTripStore(DyNet.params(), "dypro");

  LigerNamePredictor LgNet(Dyn.Joint, Dyn.Target, tinyLigerConfig(), 42);
  roundTripStore(LgNet.params(), "liger");

  // A checkpoint from one model must not load into another: the
  // parameter names diverge, with a diagnostic saying how.
  std::string LigerPath = testing::TempDir() + "/liger_model_liger.ckpt";
  std::string Error;
  EXPECT_FALSE(DyNet.params().load(LigerPath, &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Batched decoder: lossBatch and beam search
//===----------------------------------------------------------------------===//

namespace {

/// A standalone decoder over parameter-backed embeddings/memories, so
/// the lockstep scheduler sees ragged targets and ragged memories.
struct DecoderFixture {
  ParamStore Store;
  SeqDecoder Dec;
  std::vector<Var> Embeds;
  std::vector<std::vector<Var>> Memories;
  std::vector<std::vector<int>> Targets;

  DecoderFixture() {
    Rng R(91);
    SeqDecoderConfig Config;
    Config.TargetVocabSize = 9;
    Config.EmbedDim = 6;
    Config.Hidden = 8;
    Config.AttnHidden = 7;
    Config.MemoryDim = 5;
    Config.InitDim = 6;
    Dec = SeqDecoder(Store, "dec", Config, R);
    const size_t MemLens[] = {2, 4, 3};
    for (size_t S = 0; S < 3; ++S) {
      Embeds.push_back(Store.addParam("e" + std::to_string(S),
                                      Tensor::uniform(Config.InitDim, 0.9f, R)));
      std::vector<Var> Mem;
      for (size_t T = 0; T < MemLens[S]; ++T)
        Mem.push_back(Store.addParam(
            "m" + std::to_string(S) + "_" + std::to_string(T),
            Tensor::uniform(Config.MemoryDim, 0.9f, R)));
      Memories.push_back(std::move(Mem));
    }
    // Ragged target lengths exercise lanes retiring mid-schedule.
    Targets = {{4, 5, Vocabulary::Eos},
               {6, Vocabulary::Eos},
               {4, 6, 7, 5, Vocabulary::Eos}};
  }
};

} // namespace

TEST(BatchedLossEquivalenceTest, LossBatchValuesMatchLoss) {
  DecoderFixture F;
  std::vector<Var> Batched = F.Dec.lossBatch(F.Embeds, F.Memories, F.Targets);
  ASSERT_EQ(Batched.size(), 3u);
  for (size_t S = 0; S < 3; ++S) {
    Var Ref = F.Dec.loss(F.Embeds[S], F.Memories[S], F.Targets[S]);
    EXPECT_EQ(Batched[S]->Value[0], Ref->Value[0]) << "sample " << S;
  }
}

TEST(BatchedLossEquivalenceTest, LossBatchToggleIsBitwise) {
  // lossBatch always builds the graph timestep-major; the toggle only
  // swaps the batch op internals, so a whole training step must agree
  // down to the bit.
  auto RunStep = [](bool Batched) {
    bool PrevCells = batchedCellsEnabled();
    bool PrevAttn = batchedAttentionEnabled();
    bool PrevHead = batchedLossHeadEnabled();
    setBatchedCellsEnabled(Batched);
    setBatchedAttentionEnabled(Batched);
    setBatchedLossHeadEnabled(Batched);
    DecoderFixture F;
    Adam Opt(F.Store);
    std::vector<Var> Losses = F.Dec.lossBatch(F.Embeds, F.Memories, F.Targets);
    Var Sum = sumV(stackScalars(Losses));
    backward(Sum);
    std::vector<std::vector<float>> Grads, Params;
    for (const Var &P : F.Store.params())
      Grads.emplace_back(P->Grad.data(), P->Grad.data() + P->Grad.size());
    Opt.step();
    for (const Var &P : F.Store.params())
      Params.emplace_back(P->Value.data(), P->Value.data() + P->Value.size());
    setBatchedCellsEnabled(PrevCells);
    setBatchedAttentionEnabled(PrevAttn);
    setBatchedLossHeadEnabled(PrevHead);
    return std::make_tuple(Sum->Value[0], Grads, Params);
  };
  auto [BatchedLoss, BatchedGrads, BatchedParams] = RunStep(true);
  auto [RefLoss, RefGrads, RefParams] = RunStep(false);
  EXPECT_EQ(BatchedLoss, RefLoss);
  EXPECT_EQ(BatchedGrads, RefGrads);
  EXPECT_EQ(BatchedParams, RefParams);
}

TEST(BatchedLossEquivalenceTest, LigerLossBatchMatchesLoss) {
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
  std::vector<const MethodSample *> Group;
  for (const MethodSample &Sample : Samples)
    Group.push_back(&Sample);
  std::vector<Var> Batched = Net.lossBatch(Group);
  ASSERT_EQ(Batched.size(), Samples.size());
  for (size_t S = 0; S < Samples.size(); ++S)
    EXPECT_EQ(Batched[S]->Value[0], Net.loss(Samples[S])->Value[0])
        << "sample " << S;
}

TEST(BatchedLossEquivalenceTest, CrossSampleStateCacheKeepsLossValuesBitwise) {
  // Sharing one state-embedding cache across the samples of a batch
  // merges gradient flow (documented: accumulation order inside a
  // batched graph is already mode-specific), but the forward values
  // must stay bitwise-identical: state keys are injective and the
  // fusion layers are deterministic functions of key + parameters.
  auto Samples = tinyCorpus();
  TinyVocabs V = buildVocabs(Samples);
  auto BatchLossValues = [&](bool Shared) {
    bool Prev = crossSampleStateCacheEnabled();
    setCrossSampleStateCacheEnabled(Shared);
    LigerNamePredictor Net(V.Joint, V.Target, tinyLigerConfig(), 42);
    std::vector<const MethodSample *> Group;
    for (const MethodSample &Sample : Samples)
      Group.push_back(&Sample);
    std::vector<Var> Losses = Net.lossBatch(Group);
    std::vector<float> Out;
    for (const Var &L : Losses)
      Out.push_back(L->Value[0]);
    setCrossSampleStateCacheEnabled(Prev);
    return Out;
  };
  EXPECT_EQ(BatchLossValues(true), BatchLossValues(false));
}

TEST(BatchedLossEquivalenceTest, DecodeBeamWidth1MatchesGreedy) {
  DecoderFixture F;
  for (size_t S = 0; S < 3; ++S) {
    std::vector<int> Greedy = F.Dec.decodeGreedy(F.Embeds[S], F.Memories[S], 6);
    std::vector<int> Beam = F.Dec.decodeBeam(F.Embeds[S], F.Memories[S], 6, 1);
    EXPECT_EQ(Beam, Greedy) << "sample " << S;
  }
}

TEST(BatchedLossEquivalenceTest, DecodeBeamWiderEmitsValidIds) {
  DecoderFixture F;
  for (size_t Width : {2u, 4u}) {
    std::vector<int> Ids = F.Dec.decodeBeam(F.Embeds[0], F.Memories[0], 6, Width);
    EXPECT_LE(Ids.size(), 6u);
    for (int Id : Ids) {
      EXPECT_GE(Id, 4);    // no Pad/Sos/Eos/Unk in the output
      EXPECT_LT(Id, 9);
    }
  }
}
