//===-- tests/TraceTests.cpp - Unit tests for the trace data model --------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"
#include "trace/Vocabulary.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

Value intArray(std::initializer_list<int64_t> Values) {
  std::vector<Value> Elements;
  for (int64_t V : Values)
    Elements.push_back(Value::makeInt(V));
  return Value::makeArray(std::move(Elements));
}

const char *AbsProgram = R"(
int myAbs(int a) {
  if (a < 0)
    return -a;
  return a;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Projections (Defs. 2.1–2.3)
//===----------------------------------------------------------------------===//

TEST(TraceTest, SymbolicAndStateProjectionsAlign) {
  Program P = mustParse(AbsProgram);
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(-4)});
  ASSERT_TRUE(R.ok());

  SymbolicTrace Sym = extractSymbolicTrace(R);
  StateTrace States = extractStateTrace(R);
  EXPECT_EQ(Sym.Steps.size(), States.States.size());
  EXPECT_EQ(Sym.Steps.size(), 2u); // if-cond (true), return
  EXPECT_EQ(Sym.Steps[0].Kind, StepKind::CondTrue);
}

TEST(TraceTest, PathKeyDistinguishesBranches) {
  Program P = mustParse(AbsProgram);
  ExecResult Neg = execute(P, P.Functions[0], {Value::makeInt(-4)});
  ExecResult Pos = execute(P, P.Functions[0], {Value::makeInt(4)});
  EXPECT_NE(pathKeyOf(Neg), pathKeyOf(Pos));
}

TEST(TraceTest, PathKeySameForSamePathDifferentValues) {
  Program P = mustParse(AbsProgram);
  ExecResult A = execute(P, P.Functions[0], {Value::makeInt(-4)});
  ExecResult B = execute(P, P.Functions[0], {Value::makeInt(-400)});
  EXPECT_EQ(pathKeyOf(A), pathKeyOf(B));
}

TEST(TraceTest, PathKeyDependsOnLoopTripCount) {
  Program P = mustParse(
      "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; "
      "return s; }");
  ExecResult Two = execute(P, P.Functions[0], {Value::makeInt(2)});
  ExecResult Three = execute(P, P.Functions[0], {Value::makeInt(3)});
  EXPECT_NE(pathKeyOf(Two), pathKeyOf(Three));
}

TEST(TraceTest, CoveredLinesSubsetOfSource) {
  Program P = mustParse(AbsProgram);
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(4)});
  SymbolicTrace Sym = extractSymbolicTrace(R);
  std::set<unsigned> Lines = Sym.coveredLines();
  EXPECT_EQ(Lines.size(), 2u); // the if line and the final return line
  // The negative branch covers the other return.
  ExecResult R2 = execute(P, P.Functions[0], {Value::makeInt(-4)});
  std::set<unsigned> Lines2 = extractSymbolicTrace(R2).coveredLines();
  EXPECT_NE(Lines, Lines2);
}

//===----------------------------------------------------------------------===//
// Path grouping (blended traces, Def. 5.1)
//===----------------------------------------------------------------------===//

TEST(TraceTest, GroupByPathMergesSamePathExecutions) {
  Program P = mustParse(AbsProgram);
  std::vector<ExecResult> Results;
  std::vector<std::vector<Value>> Inputs;
  for (int64_t V : {-4, -1, 3, 9, -100}) {
    Inputs.push_back({Value::makeInt(V)});
    Results.push_back(execute(P, P.Functions[0], Inputs.back()));
  }
  MethodTraces Traces = groupByPath(P.Functions[0], Results, Inputs);
  ASSERT_EQ(Traces.Paths.size(), 2u);
  // First-seen order: the negative path first (3 executions), then the
  // non-negative path (2 executions).
  EXPECT_EQ(Traces.Paths[0].numConcrete(), 3u);
  EXPECT_EQ(Traces.Paths[1].numConcrete(), 2u);
  EXPECT_EQ(Traces.totalExecutions(), 5u);
  EXPECT_EQ(Traces.Paths[0].Inputs.size(), 3u);
}

TEST(TraceTest, GroupByPathSkipsFailedExecutions) {
  Program P = mustParse("int f(int a) { return 10 / a; }");
  std::vector<ExecResult> Results;
  std::vector<std::vector<Value>> Inputs;
  for (int64_t V : {0, 2, 5}) {
    Inputs.push_back({Value::makeInt(V)});
    Results.push_back(execute(P, P.Functions[0], Inputs.back()));
  }
  MethodTraces Traces = groupByPath(P.Functions[0], Results, Inputs);
  ASSERT_EQ(Traces.Paths.size(), 1u);
  EXPECT_EQ(Traces.Paths[0].numConcrete(), 2u);
}

TEST(TraceTest, BlendedTraceStateLengthsMatchSymbolic) {
  Program P = mustParse(R"(
int[] sort(int[] A) {
  for (int i = 0; i < len(A); i++) {
    for (int j = 0; j + 1 < len(A) - i; j++) {
      if (A[j] > A[j + 1]) {
        int t = A[j];
        A[j] = A[j + 1];
        A[j + 1] = t;
      }
    }
  }
  return A;
}
)");
  std::vector<ExecResult> Results;
  std::vector<std::vector<Value>> Inputs;
  // Two inputs with the same comparison outcomes follow the same path.
  Inputs.push_back({intArray({3, 1, 2})});
  Inputs.push_back({intArray({30, 10, 20})});
  for (const auto &In : Inputs)
    Results.push_back(execute(P, P.Functions[0], In));
  MethodTraces Traces = groupByPath(P.Functions[0], Results, Inputs);
  ASSERT_EQ(Traces.Paths.size(), 1u);
  const BlendedTrace &Blended = Traces.Paths[0];
  ASSERT_EQ(Blended.numConcrete(), 2u);
  for (const StateTrace &States : Blended.Concrete)
    EXPECT_EQ(States.States.size(), Blended.Symbolic.Steps.size());
}

TEST(TraceTest, RenderBlendedTraceShowsStatementsAndStates) {
  Program P = mustParse(AbsProgram);
  std::vector<std::vector<Value>> Inputs{{Value::makeInt(-4)}};
  std::vector<ExecResult> Results{
      execute(P, P.Functions[0], Inputs[0])};
  MethodTraces Traces = groupByPath(P.Functions[0], Results, Inputs);
  std::string Rendered =
      renderBlendedTrace(Traces.Paths[0], Traces.VarNames);
  EXPECT_NE(Rendered.find("if (a < 0)"), std::string::npos);
  EXPECT_NE(Rendered.find("[true]"), std::string::npos);
  EXPECT_NE(Rendered.find("a: -4"), std::string::npos);
}

TEST(TraceTest, ProgramStateStrMatchesPaperNotation) {
  ProgramState State;
  State.Values = {intArray({8, 5, 1, 4, 3}), Value::makeInt(0),
                  Value::undef()};
  EXPECT_EQ(State.str({"A", "left", "right"}),
            "{A: [8, 5, 1, 4, 3]; left: 0; right: ⊥}");
}

//===----------------------------------------------------------------------===//
// Vocabulary
//===----------------------------------------------------------------------===//

TEST(VocabularyTest, SpecialTokensPresent) {
  Vocabulary V;
  EXPECT_EQ(V.size(), 4);
  EXPECT_EQ(V.lookup("<pad>"), Vocabulary::Pad);
  EXPECT_EQ(V.lookup("<unk>"), Vocabulary::Unk);
  EXPECT_EQ(V.lookup("<s>"), Vocabulary::Sos);
  EXPECT_EQ(V.lookup("</s>"), Vocabulary::Eos);
}

TEST(VocabularyTest, AddIsIdempotent) {
  Vocabulary V;
  int A = V.add("x");
  int B = V.add("x");
  EXPECT_EQ(A, B);
  EXPECT_EQ(V.size(), 5);
}

TEST(VocabularyTest, FrozenLookupReturnsUnk) {
  Vocabulary V;
  V.add("known");
  V.freeze();
  EXPECT_EQ(V.lookup("unknown"), Vocabulary::Unk);
  EXPECT_NE(V.lookup("known"), Vocabulary::Unk);
}

TEST(VocabularyTest, TokenRoundTrip) {
  Vocabulary V;
  int Id = V.add("hello");
  EXPECT_EQ(V.token(Id), "hello");
}

TEST(ValueTokenTest, SmallIntsExact) {
  EXPECT_EQ(valueToken(Value::makeInt(0)), "0");
  EXPECT_EQ(valueToken(Value::makeInt(-7)), "-7");
  EXPECT_EQ(valueToken(Value::makeInt(64)), "64");
}

TEST(ValueTokenTest, LargeIntsBucketed) {
  EXPECT_EQ(valueToken(Value::makeInt(100)), "<int+e2>");
  EXPECT_EQ(valueToken(Value::makeInt(-100)), "<int-e2>");
  EXPECT_EQ(valueToken(Value::makeInt(1000)), "<int+e3>");
  EXPECT_EQ(valueToken(Value::makeInt(1000000)), "<int+big>");
}

TEST(ValueTokenTest, BucketingIsStable) {
  // Two values in the same bucket share a token; across buckets differ.
  EXPECT_EQ(valueToken(Value::makeInt(100)), valueToken(Value::makeInt(200)));
  EXPECT_NE(valueToken(Value::makeInt(100)), valueToken(Value::makeInt(5000)));
}

TEST(ValueTokenTest, StringsAndBools) {
  EXPECT_EQ(valueToken(Value::makeBool(true)), "true");
  EXPECT_EQ(valueToken(Value::makeString("ab")), "\"ab\"");
  EXPECT_EQ(valueToken(Value::makeString("abcdefghijklmnop")), "<str:len16>");
  EXPECT_EQ(valueToken(Value::undef()), "⊥");
}

TEST(ValueTokenTest, StringLengthsBucketPowerOfTwo) {
  // Lengths 9..64 share three power-of-two buckets instead of one
  // token per distinct length; longer strings join the largest bucket.
  EXPECT_EQ(valueToken(Value::makeString(std::string(9, 'x'))),
            "<str:len16>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(16, 'x'))),
            "<str:len16>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(17, 'x'))),
            "<str:len32>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(32, 'x'))),
            "<str:len32>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(33, 'x'))),
            "<str:len64>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(64, 'x'))),
            "<str:len64>");
  EXPECT_EQ(valueToken(Value::makeString(std::string(1000, 'x'))),
            "<str:len64>");

  // The whole 9.. length range maps to exactly three distinct tokens.
  std::set<std::string> Buckets;
  for (size_t Len = 9; Len <= 200; ++Len)
    Buckets.insert(valueToken(Value::makeString(std::string(Len, 'x'))));
  EXPECT_EQ(Buckets.size(), 3u);
}

TEST(ValueTokenTest, FlattenedArrayTokens) {
  Value Arr = intArray({1, 2});
  std::vector<std::string> Tokens = valueTokens(Arr);
  EXPECT_EQ(Tokens, (std::vector<std::string>{"1", "2"}));
  Value Empty = Value::makeArray({});
  EXPECT_EQ(valueTokens(Empty), (std::vector<std::string>{"<empty>"}));
}
