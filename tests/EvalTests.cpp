//===-- tests/EvalTests.cpp - Unit tests for metrics/training/experiments -===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"
#include "eval/Metrics.h"
#include "eval/Training.h"

#include "nn/Module.h"
#include "support/BinaryIO.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>

#include <sys/wait.h>
#include <unistd.h>

using namespace liger;

//===----------------------------------------------------------------------===//
// Sub-token metric (the paper's §6.1.1 examples)
//===----------------------------------------------------------------------===//

TEST(MetricsTest, PerfectPrediction) {
  SubtokenScorer S;
  S.add({"compute", "diff"}, {"compute", "diff"});
  PrfScores Scores = S.scores();
  EXPECT_DOUBLE_EQ(Scores.Precision, 100.0);
  EXPECT_DOUBLE_EQ(Scores.Recall, 100.0);
  EXPECT_DOUBLE_EQ(Scores.F1, 100.0);
}

TEST(MetricsTest, OrderDoesNotMatter) {
  // "a prediction of diffCompute is considered a perfect answer".
  SubtokenScorer S;
  S.add({"diff", "compute"}, {"compute", "diff"});
  EXPECT_DOUBLE_EQ(S.scores().F1, 100.0);
}

TEST(MetricsTest, PartialPrecisionRecall) {
  // "a prediction of compute has a full precision, but low recall".
  SubtokenScorer S;
  S.add({"compute"}, {"compute", "diff"});
  PrfScores Scores = S.scores();
  EXPECT_DOUBLE_EQ(Scores.Precision, 100.0);
  EXPECT_DOUBLE_EQ(Scores.Recall, 50.0);

  // "computeFileDiff has full recall, but low precision".
  SubtokenScorer S2;
  S2.add({"compute", "file", "diff"}, {"compute", "diff"});
  PrfScores Scores2 = S2.scores();
  EXPECT_DOUBLE_EQ(Scores2.Recall, 100.0);
  EXPECT_NEAR(Scores2.Precision, 100.0 * 2 / 3, 1e-9);
}

TEST(MetricsTest, CaseInsensitive) {
  SubtokenScorer S;
  S.add({"Compute", "DIFF"}, {"compute", "diff"});
  EXPECT_DOUBLE_EQ(S.scores().F1, 100.0);
}

TEST(MetricsTest, MultisetSemantics) {
  // Predicting a token twice when it appears once: one TP, one FP.
  SubtokenCounts Counts =
      countSubtokenMatches({"get", "get"}, {"get", "name"});
  EXPECT_EQ(Counts.TruePositive, 1u);
  EXPECT_EQ(Counts.FalsePositive, 1u);
  EXPECT_EQ(Counts.FalseNegative, 1u);
}

TEST(MetricsTest, MicroAggregation) {
  SubtokenScorer S;
  S.add({"a"}, {"a"});         // TP=1
  S.add({"b", "c"}, {"d"});    // FP=2 FN=1
  PrfScores Scores = S.scores();
  EXPECT_NEAR(Scores.Precision, 100.0 / 3, 1e-9); // 1/(1+2)
  EXPECT_NEAR(Scores.Recall, 50.0, 1e-9);         // 1/(1+1)
  EXPECT_EQ(S.numExamples(), 2u);
}

TEST(MetricsTest, EmptyPrediction) {
  SubtokenScorer S;
  S.add({}, {"compute", "diff"});
  PrfScores Scores = S.scores();
  EXPECT_DOUBLE_EQ(Scores.Precision, 0.0);
  EXPECT_DOUBLE_EQ(Scores.Recall, 0.0);
  EXPECT_DOUBLE_EQ(Scores.F1, 0.0);
}

//===----------------------------------------------------------------------===//
// Classification metrics
//===----------------------------------------------------------------------===//

TEST(MetricsTest, ClassificationAccuracy) {
  ClassificationScorer S(3);
  S.add(0, 0);
  S.add(1, 1);
  S.add(2, 1);
  S.add(0, 2);
  EXPECT_DOUBLE_EQ(S.accuracy(), 0.5);
  EXPECT_EQ(S.numExamples(), 4u);
}

TEST(MetricsTest, MacroF1PerfectAndZero) {
  ClassificationScorer Perfect(2);
  Perfect.add(0, 0);
  Perfect.add(1, 1);
  EXPECT_DOUBLE_EQ(Perfect.macroF1(), 1.0);

  ClassificationScorer Wrong(2);
  Wrong.add(1, 0);
  Wrong.add(0, 1);
  EXPECT_DOUBLE_EQ(Wrong.macroF1(), 0.0);
}

TEST(MetricsTest, MacroF1IgnoresAbsentClasses) {
  ClassificationScorer S(10);
  S.add(0, 0);
  S.add(1, 1);
  // Only classes 0 and 1 appear; macro F1 averages over them alone.
  EXPECT_DOUBLE_EQ(S.macroF1(), 1.0);
}

//===----------------------------------------------------------------------===//
// Scale parsing and transforms
//===----------------------------------------------------------------------===//

TEST(ScaleTest, ParsesOverrides) {
  const char *Argv[] = {"bench",        "--methods=99", "--epochs=3",
                        "--hidden=16",  "--seed=123",   "--lr=0.005",
                        "--threads=4",  "--verbose"};
  ExperimentScale Scale =
      ExperimentScale::fromArgs(8, const_cast<char **>(Argv));
  EXPECT_EQ(Scale.MethodsMed, 99u);
  EXPECT_EQ(Scale.MethodsLarge, 198u); // derived default
  EXPECT_EQ(Scale.Epochs, 3u);
  EXPECT_EQ(Scale.Hidden, 16u);
  EXPECT_EQ(Scale.Seed, 123u);
  EXPECT_FLOAT_EQ(Scale.LearningRate, 0.005f);
  EXPECT_EQ(Scale.Threads, 4u);
  EXPECT_TRUE(Scale.Verbose);
  EXPECT_EQ(Scale.trainOptions().Threads, 4u);
}

namespace {

std::vector<MethodSample> tinyTransformCorpus() {
  CorpusOptions Options;
  Options.NumMethods = 12;
  Options.TraceGen.TargetPaths = 6;
  Options.TraceGen.ExecutionsPerPath = 4;
  Options.TraceGen.MaxAttempts = 80;
  Options.Seed = 21;
  return generateMethodCorpus(Options);
}

} // namespace

TEST(TransformTest, ConcreteReductionCapsExecutions) {
  auto Samples = tinyTransformCorpus();
  ASSERT_FALSE(Samples.empty());
  auto Reduced =
      transformSamples(Samples, reduceConcreteTransform(2), 5);
  ASSERT_EQ(Reduced.size(), Samples.size());
  for (size_t I = 0; I < Reduced.size(); ++I) {
    EXPECT_EQ(Reduced[I].Traces.Paths.size(),
              Samples[I].Traces.Paths.size());
    for (const BlendedTrace &Path : Reduced[I].Traces.Paths)
      EXPECT_LE(Path.numConcrete(), 2u);
  }
}

TEST(TransformTest, SymbolicReductionCapsPaths) {
  auto Samples = tinyTransformCorpus();
  auto Reduced =
      transformSamples(Samples, reduceSymbolicTransform(2, 3), 5);
  for (size_t I = 0; I < Reduced.size(); ++I) {
    EXPECT_LE(Reduced[I].Traces.Paths.size(), 2u);
    for (const BlendedTrace &Path : Reduced[I].Traces.Paths)
      EXPECT_LE(Path.numConcrete(), 3u);
  }
}

TEST(TransformTest, NullTransformIsIdentity) {
  auto Samples = tinyTransformCorpus();
  auto Same = transformSamples(Samples, nullptr, 5);
  ASSERT_EQ(Same.size(), Samples.size());
  for (size_t I = 0; I < Same.size(); ++I)
    EXPECT_EQ(Same[I].Traces.totalExecutions(),
              Samples[I].Traces.totalExecutions());
}

TEST(TransformTest, TraceBudgetBookkeeping) {
  auto Samples = tinyTransformCorpus();
  double Paths = 0, Execs = 0;
  traceBudget(Samples, Paths, Execs);
  EXPECT_GT(Paths, 0.0);
  EXPECT_GT(Execs, Paths - 1e-9); // at least one execution per path
  auto Reduced =
      transformSamples(Samples, reduceConcreteTransform(1), 5);
  double RPaths = 0, RExecs = 0;
  traceBudget(Reduced, RPaths, RExecs);
  EXPECT_DOUBLE_EQ(RPaths, Paths);
  EXPECT_LT(RExecs, Execs);
}

//===----------------------------------------------------------------------===//
// End-to-end training integration (small but real)
//===----------------------------------------------------------------------===//

TEST(TrainingIntegrationTest, LigerImprovesOverTraining) {
  ExperimentScale Scale;
  Scale.MethodsMed = 60;
  Scale.Epochs = 4;
  Scale.Hidden = 16;
  Scale.EmbedDim = 16;
  Scale.TargetPaths = 4;
  Scale.ExecutionsPerPath = 3;
  Scale.LearningRate = 4e-3f;
  Scale.Seed = 3;

  NameTask Task = buildNameTask(Scale, false);
  ASSERT_GE(Task.Split.Train.size(), 20u);
  ASSERT_FALSE(Task.Split.Test.empty());

  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
  NameModelHooks Hooks;
  Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
  Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
  Hooks.Params = &Net.params();

  // Loss must drop substantially from the untrained baseline.
  double InitialLoss = 0;
  {
    GraphArena Arena;
    GraphArena::Scope Scope(Arena);
    for (const MethodSample &Sample : Task.Split.Train) {
      InitialLoss += Net.loss(Sample)->Value[0];
      Arena.reset();
    }
  }
  InitialLoss /= static_cast<double>(Task.Split.Train.size());

  TrainOptions Options = Scale.trainOptions();
  TrainResult Result =
      trainNameModel(Hooks, Task.Split.Train, Task.Split.Valid, Options);
  EXPECT_LT(Result.FinalTrainLoss, InitialLoss * 0.8);
}

TEST(TrainingIntegrationTest, ParallelEpochMatchesSerialBitwise) {
  // Training distributes each mini-batch's samples over a worker pool,
  // but per-sample gradients accumulate into per-sample sinks that are
  // reduced in sample-index order — so any thread count must produce
  // bitwise-identical losses and parameters.
  ExperimentScale Scale;
  Scale.MethodsMed = 30;
  Scale.Epochs = 2;
  Scale.Hidden = 12;
  Scale.EmbedDim = 12;
  Scale.TargetPaths = 3;
  Scale.ExecutionsPerPath = 2;
  Scale.Seed = 5;

  NameTask Task = buildNameTask(Scale, false);
  ASSERT_GE(Task.Split.Train.size(), 10u);

  auto RunWith = [&](size_t Threads,
                     std::vector<std::vector<float>> &ParamsOut) {
    LigerConfig Config;
    Config.EmbedDim = Scale.EmbedDim;
    Config.Hidden = Scale.Hidden;
    Config.AttnHidden = Scale.Hidden;
    LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    TrainOptions Options = Scale.trainOptions();
    Options.Threads = Threads;
    Options.SelectBestOnValidation = false;
    TrainResult Result = trainNameModel(Hooks, Task.Split.Train,
                                        std::vector<MethodSample>(), Options);
    for (const Var &P : Net.params().params())
      ParamsOut.emplace_back(P->Value.data(),
                             P->Value.data() + P->Value.size());
    return Result.FinalTrainLoss;
  };

  std::vector<std::vector<float>> SerialParams, ParallelParams;
  double SerialLoss = RunWith(1, SerialParams);
  double ParallelLoss = RunWith(4, ParallelParams);

  EXPECT_EQ(SerialLoss, ParallelLoss);
  ASSERT_EQ(SerialParams.size(), ParallelParams.size());
  for (size_t I = 0; I < SerialParams.size(); ++I)
    EXPECT_EQ(SerialParams[I], ParallelParams[I]) << "parameter " << I;
}

TEST(TrainingIntegrationTest, LockstepThreadedEpochIsBitwise) {
  // Under BatchedSamples each mini-batch is split into LockstepShards
  // contiguous shard graphs — the units the ThreadPool distributes.
  // The shard partition depends only on the batch size (never on the
  // thread count) and shard sinks are reduced in shard order on the
  // calling thread, so losses and final weights must be
  // bitwise-identical at any --threads — with the batched op
  // internals (cells, attention, loss head, cross-sample state cache)
  // toggled either way.
  ExperimentScale Scale;
  Scale.MethodsMed = 30;
  Scale.Epochs = 2;
  Scale.Hidden = 12;
  Scale.EmbedDim = 12;
  Scale.TargetPaths = 3;
  Scale.ExecutionsPerPath = 2;
  Scale.Seed = 5;
  Scale.BatchedSamples = true;

  NameTask Task = buildNameTask(Scale, false);
  ASSERT_GE(Task.Split.Train.size(), 10u);

  auto RunWith = [&](size_t Threads, bool BatchedOps,
                     std::vector<std::vector<float>> &ParamsOut) {
    bool PrevCells = batchedCellsEnabled();
    bool PrevAttn = batchedAttentionEnabled();
    bool PrevHead = batchedLossHeadEnabled();
    bool PrevShared = crossSampleStateCacheEnabled();
    setBatchedCellsEnabled(BatchedOps);
    setBatchedAttentionEnabled(BatchedOps);
    setBatchedLossHeadEnabled(BatchedOps);
    setCrossSampleStateCacheEnabled(BatchedOps);

    LigerConfig Config;
    Config.EmbedDim = Scale.EmbedDim;
    Config.Hidden = Scale.Hidden;
    Config.AttnHidden = Scale.Hidden;
    LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.LossBatch =
        [&](const std::vector<const MethodSample *> &Group) {
          return Net.lossBatch(Group);
        };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    TrainOptions Options = Scale.trainOptions();
    Options.Threads = Threads;
    Options.SelectBestOnValidation = false;
    TrainResult Result = trainNameModel(Hooks, Task.Split.Train,
                                        std::vector<MethodSample>(), Options);
    for (const Var &P : Net.params().params())
      ParamsOut.emplace_back(P->Value.data(),
                             P->Value.data() + P->Value.size());

    setBatchedCellsEnabled(PrevCells);
    setBatchedAttentionEnabled(PrevAttn);
    setBatchedLossHeadEnabled(PrevHead);
    setCrossSampleStateCacheEnabled(PrevShared);
    return Result.FinalTrainLoss;
  };

  for (bool BatchedOps : {true, false}) {
    std::vector<std::vector<float>> P1, P2, P4;
    double L1 = RunWith(1, BatchedOps, P1);
    double L2 = RunWith(2, BatchedOps, P2);
    double L4 = RunWith(4, BatchedOps, P4);
    EXPECT_EQ(L1, L2) << "batchedOps=" << BatchedOps;
    EXPECT_EQ(L1, L4) << "batchedOps=" << BatchedOps;
    ASSERT_EQ(P1.size(), P2.size());
    ASSERT_EQ(P1.size(), P4.size());
    for (size_t I = 0; I < P1.size(); ++I) {
      EXPECT_EQ(P1[I], P2[I])
          << "parameter " << I << " batchedOps=" << BatchedOps;
      EXPECT_EQ(P1[I], P4[I])
          << "parameter " << I << " batchedOps=" << BatchedOps;
    }
  }
}

TEST(TrainingIntegrationTest, BatchedSamplesWithoutHookFallsBackPerSample) {
  // Multi-model drivers hand one TrainOptions to every model, so
  // BatchedSamples must be a silent no-op for models that expose no
  // LossBatch hook — same per-sample path, bitwise-identical results.
  ExperimentScale Scale;
  Scale.MethodsMed = 30;
  Scale.Epochs = 2;
  Scale.Hidden = 12;
  Scale.EmbedDim = 12;
  Scale.TargetPaths = 3;
  Scale.ExecutionsPerPath = 2;
  Scale.Seed = 5;

  NameTask Task = buildNameTask(Scale, false);
  ASSERT_GE(Task.Split.Train.size(), 10u);

  auto RunWith = [&](bool Batched,
                     std::vector<std::vector<float>> &ParamsOut) {
    LigerConfig Config;
    Config.EmbedDim = Scale.EmbedDim;
    Config.Hidden = Scale.Hidden;
    Config.AttnHidden = Scale.Hidden;
    LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    // Deliberately no Hooks.LossBatch.
    TrainOptions Options = Scale.trainOptions();
    Options.BatchedSamples = Batched;
    Options.SelectBestOnValidation = false;
    TrainResult Result = trainNameModel(Hooks, Task.Split.Train,
                                        std::vector<MethodSample>(), Options);
    for (const Var &P : Net.params().params())
      ParamsOut.emplace_back(P->Value.data(),
                             P->Value.data() + P->Value.size());
    return Result.FinalTrainLoss;
  };

  std::vector<std::vector<float>> PlainParams, BatchedParams;
  double PlainLoss = RunWith(false, PlainParams);
  double BatchedLoss = RunWith(true, BatchedParams);

  EXPECT_EQ(PlainLoss, BatchedLoss);
  ASSERT_EQ(PlainParams.size(), BatchedParams.size());
  for (size_t I = 0; I < PlainParams.size(); ++I)
    EXPECT_EQ(PlainParams[I], BatchedParams[I]) << "parameter " << I;
}

TEST(TrainingIntegrationTest, ClassifierBeatsChanceOnCoset) {
  ExperimentScale Scale;
  Scale.CosetPerClass = 5;
  Scale.Epochs = 6;
  Scale.Hidden = 16;
  Scale.EmbedDim = 16;
  Scale.TargetPaths = 4;
  Scale.ExecutionsPerPath = 3;
  Scale.LearningRate = 4e-3f;
  Scale.Seed = 3;

  CosetTask Task = buildCosetTask(Scale);
  ASSERT_GT(Task.NumClasses, 10u);
  ASSERT_FALSE(Task.Split.Test.empty());

  ClassRunResult Result = runCosetModel(ClassModel::Liger, Task, Scale);
  double Chance = 1.0 / static_cast<double>(Task.NumClasses);
  EXPECT_GT(Result.Test.Accuracy, Chance * 2);
}

//===----------------------------------------------------------------------===//
// Checkpoint / resume (crash safety)
//===----------------------------------------------------------------------===//

namespace {

ExperimentScale resumeScale() {
  ExperimentScale Scale;
  Scale.MethodsMed = 60; // enough projects for a non-empty valid split
  Scale.Epochs = 4;
  Scale.Hidden = 12;
  Scale.EmbedDim = 12;
  Scale.TargetPaths = 3;
  Scale.ExecutionsPerPath = 2;
  Scale.Seed = 5;
  return Scale;
}

/// The corpus is comparatively slow to generate, so the resume tests
/// below share one.
const NameTask &resumeTask() {
  static NameTask Task = buildNameTask(resumeScale(), false);
  return Task;
}

/// Trains a freshly initialized Liger net on the shared task under
/// \p Options and appends every final parameter value to \p ParamsOut.
double trainFreshNet(const TrainOptions &Options,
                     std::vector<std::vector<float>> *ParamsOut,
                     TrainResult *ResultOut = nullptr) {
  const NameTask &Task = resumeTask();
  ExperimentScale Scale = resumeScale();
  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed);
  NameModelHooks Hooks;
  Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
  Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
  Hooks.Params = &Net.params();
  TrainResult Result =
      trainNameModel(Hooks, Task.Split.Train, Task.Split.Valid, Options);
  if (ParamsOut)
    for (const Var &P : Net.params().params())
      ParamsOut->emplace_back(P->Value.data(),
                              P->Value.data() + P->Value.size());
  if (ResultOut)
    *ResultOut = Result;
  return Result.FinalTrainLoss;
}

/// Per-test checkpoint directory with any stale snapshots removed.
std::string freshCheckpointDir(const std::string &Name) {
  std::string Dir = "eval-ckpt-" + Name;
  std::remove((Dir + "/state.ckpt").c_str());
  std::remove((Dir + "/best.ckpt").c_str());
  return Dir;
}

} // namespace

TEST(CheckpointResumeTest, ResumeMatchesUninterruptedBitwise) {
  // Train 4 epochs straight through; then train 2 epochs with
  // checkpointing, throw the net away, and resume a fresh one for the
  // remaining epochs. Parameters, loss, and best-epoch bookkeeping
  // must be bitwise identical at every thread count.
  ASSERT_FALSE(resumeTask().Split.Valid.empty())
      << "the scale must produce a validation split so best-snapshot "
         "tracking is exercised";
  for (size_t Threads : {size_t(1), size_t(2)}) {
    TrainOptions Full = resumeScale().trainOptions();
    Full.Threads = Threads;
    std::vector<std::vector<float>> FullParams;
    TrainResult FullResult;
    double FullLoss = trainFreshNet(Full, &FullParams, &FullResult);

    std::string Dir =
        freshCheckpointDir("bitwise-t" + std::to_string(Threads));
    TrainOptions Half = Full;
    Half.Epochs = 2;
    Half.CheckpointDir = Dir;
    trainFreshNet(Half, nullptr);

    TrainOptions Rest = Full;
    Rest.CheckpointDir = Dir;
    Rest.Resume = true;
    std::vector<std::vector<float>> ResumedParams;
    TrainResult ResumedResult;
    double ResumedLoss = trainFreshNet(Rest, &ResumedParams, &ResumedResult);

    EXPECT_TRUE(ResumedResult.Resumed);
    EXPECT_EQ(ResumedResult.StartEpoch, 2u);
    EXPECT_EQ(FullLoss, ResumedLoss) << "threads " << Threads;
    EXPECT_EQ(FullResult.BestEpoch, ResumedResult.BestEpoch);
    EXPECT_EQ(FullResult.BestValidScore, ResumedResult.BestValidScore);
    ASSERT_EQ(FullParams.size(), ResumedParams.size());
    for (size_t I = 0; I < FullParams.size(); ++I)
      EXPECT_EQ(FullParams[I], ResumedParams[I])
          << "parameter " << I << " threads " << Threads;
  }
}

TEST(CheckpointResumeTest, ResumeAcrossThreadCounts) {
  // A checkpoint written by a single-threaded run resumes under a
  // worker pool (and still matches the uninterrupted run): the state
  // file stores no thread-dependent data.
  TrainOptions Full = resumeScale().trainOptions();
  Full.Threads = 2;
  std::vector<std::vector<float>> FullParams;
  double FullLoss = trainFreshNet(Full, &FullParams);

  std::string Dir = freshCheckpointDir("crossthread");
  TrainOptions Half = Full;
  Half.Epochs = 2;
  Half.Threads = 1;
  Half.CheckpointDir = Dir;
  trainFreshNet(Half, nullptr);

  TrainOptions Rest = Full;
  Rest.CheckpointDir = Dir;
  Rest.Resume = true;
  std::vector<std::vector<float>> ResumedParams;
  double ResumedLoss = trainFreshNet(Rest, &ResumedParams);

  EXPECT_EQ(FullLoss, ResumedLoss);
  ASSERT_EQ(FullParams.size(), ResumedParams.size());
  for (size_t I = 0; I < FullParams.size(); ++I)
    EXPECT_EQ(FullParams[I], ResumedParams[I]) << "parameter " << I;
}

TEST(CheckpointResumeTest, SigkillMidEpochThenResumeIsBitwise) {
  // Simulate a real crash: a child process trains with checkpointing
  // and SIGKILLs itself in the middle of epoch 2, after the epoch-1
  // snapshot. The on-disk state must survive (atomic writes) and a
  // resumed run must match the uninterrupted one bitwise. The child
  // forks before the parent ever trains, so no worker threads are lost
  // to fork(); it also trains single-threaded.
  std::string Dir = freshCheckpointDir("sigkill");
  TrainOptions ChildOpts = resumeScale().trainOptions();
  ChildOpts.Threads = 1;
  ChildOpts.CheckpointDir = Dir;
  ChildOpts.StepHook = [](size_t Epoch, size_t Batch) {
    if (Epoch == 2 && Batch == 1)
      raise(SIGKILL);
  };

  pid_t Child = fork();
  ASSERT_GE(Child, 0) << "fork failed";
  if (Child == 0) {
    trainFreshNet(ChildOpts, nullptr);
    _exit(0); // Not reached: the hook kills the process first.
  }
  int Status = 0;
  ASSERT_EQ(waitpid(Child, &Status, 0), Child);
  ASSERT_TRUE(WIFSIGNALED(Status)) << "child was expected to die mid-epoch";
  EXPECT_EQ(WTERMSIG(Status), SIGKILL);

  TrainOptions Full = resumeScale().trainOptions();
  Full.Threads = 1;
  std::vector<std::vector<float>> FullParams;
  double FullLoss = trainFreshNet(Full, &FullParams);

  TrainOptions Rest = Full;
  Rest.CheckpointDir = Dir;
  Rest.Resume = true;
  std::vector<std::vector<float>> ResumedParams;
  TrainResult ResumedResult;
  double ResumedLoss = trainFreshNet(Rest, &ResumedParams, &ResumedResult);

  EXPECT_TRUE(ResumedResult.Resumed);
  EXPECT_EQ(ResumedResult.StartEpoch, 2u); // killed before epoch 2 finished
  EXPECT_EQ(FullLoss, ResumedLoss);
  ASSERT_EQ(FullParams.size(), ResumedParams.size());
  for (size_t I = 0; I < FullParams.size(); ++I)
    EXPECT_EQ(FullParams[I], ResumedParams[I]) << "parameter " << I;
}

TEST(CheckpointResumeTest, ResumeWithoutCheckpointStartsFresh) {
  TrainOptions Full = resumeScale().trainOptions();
  std::vector<std::vector<float>> FullParams;
  double FullLoss = trainFreshNet(Full, &FullParams);

  // --resume with an empty directory is a fresh run, not an error.
  std::string Dir = freshCheckpointDir("fresh");
  TrainOptions Opts = Full;
  Opts.CheckpointDir = Dir;
  Opts.Resume = true;
  std::vector<std::vector<float>> Params;
  TrainResult Result;
  double Loss = trainFreshNet(Opts, &Params, &Result);

  EXPECT_FALSE(Result.Resumed);
  EXPECT_EQ(Result.StartEpoch, 0u);
  EXPECT_EQ(FullLoss, Loss);
  ASSERT_EQ(FullParams.size(), Params.size());
  for (size_t I = 0; I < FullParams.size(); ++I)
    EXPECT_EQ(FullParams[I], Params[I]) << "parameter " << I;

  // The run also leaves an inference-ready best.ckpt behind that loads
  // into a freshly built net's ParamStore.
  ASSERT_TRUE(fileExists(Dir + "/best.ckpt"));
  const NameTask &Task = resumeTask();
  ExperimentScale Scale = resumeScale();
  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  LigerNamePredictor Net(Task.Joint, Task.Target, Config, Scale.Seed + 1);
  std::string Error;
  EXPECT_TRUE(Net.params().load(Dir + "/best.ckpt", &Error)) << Error;
}
