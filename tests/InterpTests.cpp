//===-- tests/InterpTests.cpp - Unit tests for the interpreter ------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace liger;

namespace {

Program mustParse(const std::string &Source) {
  DiagnosticSink Diags;
  std::optional<Program> P = parseAndCheck(Source, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  if (!P)
    return Program();
  return std::move(*P);
}

Value intArray(std::initializer_list<int64_t> Values) {
  std::vector<Value> Elements;
  for (int64_t V : Values)
    Elements.push_back(Value::makeInt(V));
  return Value::makeArray(std::move(Elements));
}

std::vector<int64_t> toInts(const Value &Array) {
  std::vector<int64_t> Out;
  for (const Value &V : Array.elements())
    Out.push_back(V.asInt());
  return Out;
}

/// The paper's Fig. 1(a) bubble sort, in MiniLang.
const char *SortI = R"(
int[] sortI(int[] A)
{
  int left = 0;
  int right = len(A) - 1;
  for (int i = right; i > left; i--) {
    for (int j = left; j < i; j++) {
      if (A[j] > A[j + 1]) {
        int tmp = A[j];
        A[j] = A[j + 1];
        A[j + 1] = tmp;
      }
    }
  }
  return A;
}
)";

/// The paper's Fig. 1(b) insertion sort, in MiniLang.
const char *SortII = R"(
int[] sortII(int[] A)
{
  int left = 0;
  int right = len(A);
  for (int i = left; i < right; i++) {
    for (int j = i - 1; j >= left; j--) {
      if (A[j] > A[j + 1]) {
        int tmp = A[j];
        A[j] = A[j + 1];
        A[j + 1] = tmp;
      }
    }
  }
  return A;
}
)";

/// The paper's Fig. 1(c) flag-controlled bubble sort, in MiniLang.
const char *SortIII = R"(
int[] sortIII(int[] A)
{
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < len(A) - 1; i++) {
      if (A[i] > A[i + 1]) {
        int tmp = A[i];
        A[i] = A[i + 1];
        A[i + 1] = tmp;
        swapbit = 1;
      }
    }
  }
  return A;
}
)";

/// The paper's Fig. 4 string-rotation check, in MiniLang.
const char *IsStringRotation = R"(
bool isStringRotation(string A, string B)
{
  if (len(A) != len(B))
    return false;
  for (int i = 1; i < len(A); i++) {
    string tail = substring(A, i, len(A) - i);
    string wrap = substring(A, 0, i);
    if (tail + wrap == B)
      return true;
  }
  return false;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Basic evaluation
//===----------------------------------------------------------------------===//

TEST(InterpTest, Arithmetic) {
  Program P = mustParse(
      "int f(int a, int b) { return (a + b) * (a - b) % 7 + b / a; }");
  ExecResult R = execute(P, P.Functions[0],
                         {Value::makeInt(3), Value::makeInt(5)});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_EQ(R.ReturnValue.asInt(), (3 + 5) * (3 - 5) % 7 + 5 / 3);
}

TEST(InterpTest, ShortCircuitAvoidsError) {
  // Without short circuit, 1/0 would fault.
  Program P = mustParse(
      "bool f(int a) { return a == 0 || 10 / a > 1; }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(0)});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_TRUE(R.ReturnValue.asBool());

  Program P2 = mustParse(
      "bool f(int a) { return a != 0 && 10 / a > 1; }");
  ExecResult R2 = execute(P2, P2.Functions[0], {Value::makeInt(0)});
  ASSERT_TRUE(R2.ok()) << R2.ErrorMessage;
  EXPECT_FALSE(R2.ReturnValue.asBool());
}

TEST(InterpTest, StringOps) {
  Program P = mustParse(R"(
string f(string s) { return substring(s, 1, 2) + s[0]; }
)");
  ExecResult R = execute(P, P.Functions[0], {Value::makeString("abcd")});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_EQ(R.ReturnValue.asString(), "bca");
}

TEST(InterpTest, BuiltinMath) {
  Program P = mustParse(
      "int f(int a, int b) { return abs(a - b) + min(a, b) * max(a, b); }");
  ExecResult R = execute(P, P.Functions[0],
                         {Value::makeInt(-2), Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.asInt(), 7 + (-2) * 5);
}

TEST(InterpTest, ArrayAliasing) {
  // Arrays are reference types: mutation through one name is visible
  // through another.
  Program P = mustParse(R"(
int f(int[] a) {
  int[] b = a;
  b[0] = 42;
  return a[0];
}
)");
  ExecResult R = execute(P, P.Functions[0], {intArray({1, 2})});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.asInt(), 42);
}

TEST(InterpTest, StructFieldUpdate) {
  Program P = mustParse(R"(
struct Point { int x; int y; }
int f() {
  Point p = new Point(1, 2);
  p.x = p.x + p.y;
  return p.x;
}
)");
  ExecResult R = execute(P, P.Functions[0], {});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_EQ(R.ReturnValue.asInt(), 3);
}

TEST(InterpTest, UserFunctionCalls) {
  Program P = mustParse(R"(
int square(int x) { return x * x; }
int f(int n) { return square(n) + square(n + 1); }
)");
  const FunctionDecl *F = P.findFunction("f");
  ASSERT_NE(F, nullptr);
  ExecResult R = execute(P, *F, {Value::makeInt(3)});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_EQ(R.ReturnValue.asInt(), 9 + 16);
}

TEST(InterpTest, RecursionWithinDepthLimit) {
  Program P = mustParse(R"(
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
)");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(6)});
  ASSERT_TRUE(R.ok()) << R.ErrorMessage;
  EXPECT_EQ(R.ReturnValue.asInt(), 720);
}

TEST(InterpTest, UnboundedRecursionFails) {
  Program P = mustParse("int f(int n) { return f(n + 1); }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(0)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
}

//===----------------------------------------------------------------------===//
// The paper's example programs (Fig. 1 and Fig. 4)
//===----------------------------------------------------------------------===//

TEST(InterpTest, ThreeSortsAgreeOnPaperInput) {
  // Fig. 2 input: A = [8, 5, 1, 4, 3].
  std::vector<int64_t> Expected{1, 3, 4, 5, 8};
  for (const char *Source : {SortI, SortII, SortIII}) {
    Program P = mustParse(Source);
    ExecResult R = execute(P, P.Functions[0], {intArray({8, 5, 1, 4, 3})});
    ASSERT_TRUE(R.ok()) << R.ErrorMessage;
    EXPECT_EQ(toInts(R.ReturnValue), Expected);
  }
}

TEST(InterpTest, SortsHandleEdgeCases) {
  for (const char *Source : {SortI, SortII, SortIII}) {
    Program P = mustParse(Source);
    // Empty, single, duplicates, already sorted, reverse sorted.
    for (auto Input : std::vector<std::vector<int64_t>>{
             {}, {7}, {2, 2, 2}, {1, 2, 3}, {3, 2, 1}, {5, -1, 5, -1}}) {
      std::vector<Value> Elements;
      for (int64_t V : Input)
        Elements.push_back(Value::makeInt(V));
      ExecResult R =
          execute(P, P.Functions[0], {Value::makeArray(Elements)});
      ASSERT_TRUE(R.ok()) << R.ErrorMessage;
      std::vector<int64_t> Got = toInts(R.ReturnValue);
      std::vector<int64_t> Want = Input;
      std::sort(Want.begin(), Want.end());
      EXPECT_EQ(Got, Want);
    }
  }
}

TEST(InterpTest, StringRotation) {
  Program P = mustParse(IsStringRotation);
  auto Run = [&](const char *A, const char *B) {
    ExecResult R = execute(P, P.Functions[0],
                           {Value::makeString(A), Value::makeString(B)});
    EXPECT_TRUE(R.ok()) << R.ErrorMessage;
    return R.ReturnValue.asBool();
  };
  EXPECT_TRUE(Run("abc", "bca"));
  EXPECT_TRUE(Run("abc", "cab"));
  EXPECT_FALSE(Run("abc", "abc")); // the paper's loop starts at i = 1
  EXPECT_FALSE(Run("abc", "acb"));
  EXPECT_FALSE(Run("abc", "abcd"));
}

//===----------------------------------------------------------------------===//
// Runtime errors and fuel
//===----------------------------------------------------------------------===//

TEST(InterpTest, DivisionByZero) {
  Program P = mustParse("int f(int a) { return 1 / a; }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(0)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
  EXPECT_NE(R.ErrorMessage.find("division by zero"), std::string::npos);
}

TEST(InterpTest, ModuloByZero) {
  Program P = mustParse("int f(int a) { return 1 % a; }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(0)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
}

TEST(InterpTest, IndexOutOfRange) {
  Program P = mustParse("int f(int[] a, int i) { return a[i]; }");
  ExecResult R = execute(P, P.Functions[0],
                         {intArray({1, 2, 3}), Value::makeInt(3)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
  ExecResult R2 = execute(P, P.Functions[0],
                          {intArray({1, 2, 3}), Value::makeInt(-1)});
  EXPECT_EQ(R2.Status, ExecStatus::RuntimeError);
}

TEST(InterpTest, SubstringOutOfRange) {
  Program P = mustParse(
      "string f(string s, int i) { return substring(s, i, 2); }");
  ExecResult R = execute(P, P.Functions[0],
                         {Value::makeString("ab"), Value::makeInt(1)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
}

TEST(InterpTest, NegativeArraySize) {
  Program P = mustParse("int f(int n) { int[] a = new int[n]; return 0; }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(-1)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
}

TEST(InterpTest, InfiniteLoopRunsOutOfFuel) {
  Program P = mustParse("void f() { while (true) { } }");
  InterpOptions Options;
  Options.Fuel = 500;
  ExecResult R = execute(P, P.Functions[0], {}, Options);
  EXPECT_EQ(R.Status, ExecStatus::OutOfFuel);
  EXPECT_EQ(R.FuelUsed, 500u);
}

//===----------------------------------------------------------------------===//
// Instrumentation: traces and states
//===----------------------------------------------------------------------===//

TEST(InterpTest, VariableTupleOrder) {
  Program P = mustParse(SortI);
  std::vector<std::string> Tuple = collectVariableTuple(P.Functions[0]);
  EXPECT_EQ(Tuple, (std::vector<std::string>{"A", "left", "right", "i", "j",
                                             "tmp"}));
}

TEST(InterpTest, InitialStateHasParamsAndBottoms) {
  Program P = mustParse(SortI);
  ExecResult R = execute(P, P.Functions[0], {intArray({2, 1})});
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.InitialState.size(), 6u);
  EXPECT_TRUE(R.InitialState[0].isArray()); // A
  EXPECT_TRUE(R.InitialState[1].isUndef()); // left is ⊥ before its decl
  EXPECT_TRUE(R.InitialState[5].isUndef()); // tmp
}

TEST(InterpTest, StepsRecordStatementsAndOutcomes) {
  Program P = mustParse(R"(
int f(int a) {
  if (a > 0)
    return 1;
  return 0;
}
)");
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(5)});
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Steps.size(), 2u);
  EXPECT_EQ(R.Steps[0].Kind, StepKind::CondTrue);
  EXPECT_EQ(R.Steps[1].Statement->kind(), StmtKind::Return);

  ExecResult R2 = execute(P, P.Functions[0], {Value::makeInt(-5)});
  ASSERT_TRUE(R2.ok());
  ASSERT_EQ(R2.Steps.size(), 2u);
  EXPECT_EQ(R2.Steps[0].Kind, StepKind::CondFalse);
}

TEST(InterpTest, StatesAreDeepCopies) {
  // After in-place mutation, earlier snapshots must keep the old values.
  Program P = mustParse(R"(
int[] f(int[] a) {
  a[0] = 99;
  a[1] = 77;
  return a;
}
)");
  ExecResult R = execute(P, P.Functions[0], {intArray({1, 2})});
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Steps.size(), 3u);
  // Step 0 state: a = [99, 2]; step 1 state: a = [99, 77].
  EXPECT_EQ(R.Steps[0].State[0].elements()[0].asInt(), 99);
  EXPECT_EQ(R.Steps[0].State[0].elements()[1].asInt(), 2);
  EXPECT_EQ(R.Steps[1].State[0].elements()[1].asInt(), 77);
}

TEST(InterpTest, LoopBodyStatesMatchFigureTwo) {
  // Count the array-mutation steps of bubble sort on the Fig. 2 input:
  // every swap is two element assignments plus a tmp declaration.
  Program P = mustParse(SortIII);
  ExecResult R = execute(P, P.Functions[0], {intArray({8, 5, 1, 4, 3})});
  ASSERT_TRUE(R.ok());
  size_t AssignsToA = 0;
  for (const ExecStep &Step : R.Steps) {
    if (const auto *Assign = dyn_cast<AssignStmt>(Step.Statement))
      if (isa<IndexExpr>(Assign->target()))
        ++AssignsToA;
  }
  // [8,5,1,4,3] needs 8 swaps to sort (4 + 3 + 1 across passes); each
  // swap writes A twice.
  EXPECT_EQ(AssignsToA, 16u);
}

TEST(InterpTest, RecordStatesOffLeavesStatesEmpty) {
  Program P = mustParse(SortI);
  InterpOptions Options;
  Options.RecordStates = false;
  ExecResult R = execute(P, P.Functions[0], {intArray({3, 1, 2})}, Options);
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.Steps.empty());
  for (const ExecStep &Step : R.Steps)
    EXPECT_TRUE(Step.State.empty());
}

TEST(InterpTest, CalleeStatementsNotTraced) {
  Program P = mustParse(R"(
int helper(int x) { int y = x * 2; return y; }
int f(int a) { int r = helper(a); return r; }
)");
  const FunctionDecl *F = P.findFunction("f");
  ExecResult R = execute(P, *F, {Value::makeInt(4)});
  ASSERT_TRUE(R.ok());
  // Only f's two statements are traced, not helper's.
  ASSERT_EQ(R.Steps.size(), 2u);
  EXPECT_EQ(R.ReturnValue.asInt(), 8);
  // And f's variable tuple does not contain helper's locals.
  EXPECT_EQ(R.VarNames, (std::vector<std::string>{"a", "r"}));
}

TEST(InterpTest, MaxRecordedStepsCapsTrace) {
  Program P = mustParse(
      "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; "
      "return s; }");
  InterpOptions Options;
  Options.MaxRecordedSteps = 10;
  ExecResult R = execute(P, P.Functions[0], {Value::makeInt(100)}, Options);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Steps.size(), 10u);
  EXPECT_EQ(R.ReturnValue.asInt(), 4950); // execution still completed
}

//===----------------------------------------------------------------------===//
// Value model
//===----------------------------------------------------------------------===//

TEST(ValueTest, DeepCopyDisconnectsStorage) {
  Value A = intArray({1, 2, 3});
  Value B = A.deepCopy();
  A.elements()[0] = Value::makeInt(9);
  EXPECT_EQ(B.elements()[0].asInt(), 1);
}

TEST(ValueTest, EqualsIsStructural) {
  EXPECT_TRUE(intArray({1, 2}).equals(intArray({1, 2})));
  EXPECT_FALSE(intArray({1, 2}).equals(intArray({2, 1})));
  EXPECT_FALSE(intArray({1}).equals(intArray({1, 1})));
  EXPECT_FALSE(Value::makeInt(1).equals(Value::makeBool(true)));
  EXPECT_TRUE(Value::undef().equals(Value::undef()));
}

TEST(ValueTest, StrRendersPaperNotation) {
  EXPECT_EQ(intArray({8, 5, 1}).str(), "[8, 5, 1]");
  EXPECT_EQ(Value::makeInt(-3).str(), "-3");
  EXPECT_EQ(Value::undef().str(), "⊥");
  EXPECT_EQ(Value::makeString("ab").str(), "\"ab\"");
}

TEST(ValueTest, FlattenYieldsAttrArray) {
  Value Arr = intArray({4, 7});
  std::vector<Value> Leaves;
  Arr.flatten(Leaves);
  ASSERT_EQ(Leaves.size(), 2u);
  EXPECT_EQ(Leaves[0].asInt(), 4);
  EXPECT_EQ(Leaves[1].asInt(), 7);
}

TEST(ValueTest, ZeroOfTypes) {
  EXPECT_EQ(Value::zeroOf(Type::intTy(), nullptr).asInt(), 0);
  EXPECT_FALSE(Value::zeroOf(Type::boolTy(), nullptr).asBool());
  EXPECT_EQ(Value::zeroOf(Type::stringTy(), nullptr).asString(), "");
  EXPECT_TRUE(
      Value::zeroOf(Type::arrayOf(TypeKind::Int), nullptr).elements().empty());
}

//===----------------------------------------------------------------------===//
// Hardening: memory budget, totality on hostile inputs (DESIGN.md §12)
//===----------------------------------------------------------------------===//

namespace {

/// Lex + parse only, skipping the type checker — models hostile inputs
/// that reach the interpreter without the checker's guarantees (testgen
/// runs methods whose checking stage was bypassed or raced).
Program parseOnly(const std::string &Source) {
  DiagnosticSink Diags;
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  Program Prog = P.parseProgram();
  EXPECT_FALSE(Prog.Functions.empty()) << Diags.str();
  return Prog;
}

} // namespace

TEST(InterpHardeningTest, StringDoublingHitsMemoryLimit) {
  // s = s + s doubles every iteration: 2^60 bytes long before fuel runs
  // out. Pre-budget this OOM'd the process.
  Program P = mustParse(R"(
    int f() {
      string s = "aaaaaaaaaaaaaaaa";
      for (int i = 0; i < 60; i++) { s = s + s; }
      return len(s);
    }
  )");
  InterpOptions Options;
  Options.MaxMemoryBytes = 1u << 20;
  ExecResult R = execute(P, P.Functions[0], {}, Options);
  EXPECT_EQ(R.Status, ExecStatus::MemoryLimit);
}

TEST(InterpHardeningTest, ArrayChurnHitsMemoryLimit) {
  // Each allocation is modest but accounting is monotone, so repeated
  // large allocations exhaust the budget even though peak live memory
  // stays flat.
  Program P = mustParse(R"(
    int f() {
      int total = 0;
      for (int i = 0; i < 100000; i++) {
        int[] a = new int[10000];
        total = total + len(a);
      }
      return total;
    }
  )");
  InterpOptions Options;
  Options.MaxMemoryBytes = 4u << 20;
  ExecResult R = execute(P, P.Functions[0], {}, Options);
  EXPECT_EQ(R.Status, ExecStatus::MemoryLimit);
}

TEST(InterpHardeningTest, GenerousBudgetLeavesNormalRunsUntouched) {
  Program P = mustParse(SortI);
  ExecResult R = execute(P, P.Functions[0], {intArray({5, 2, 4, 1, 3})});
  ASSERT_EQ(R.Status, ExecStatus::Ok);
  EXPECT_EQ(toInts(R.ReturnValue), (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST(InterpHardeningTest, AllTerminalStatusesWellFormed) {
  // Table-driven sweep over the four terminal statuses: every result —
  // truncated or not — must carry consistent bookkeeping.
  struct Case {
    const char *Name;
    const char *Source;
    ExecStatus Expected;
  };
  const Case Cases[] = {
      {"ok", "int f() { int x = 1; return x + 1; }", ExecStatus::Ok},
      {"fuel", "int f() { int x = 0; while (true) { x = x + 1; } return x; }",
       ExecStatus::OutOfFuel},
      {"runtime", "int f() { int x = 0; return 1 / x; }",
       ExecStatus::RuntimeError},
      {"memory",
       "int f() { string s = \"aaaaaaaa\"; while (true) { s = s + s; } "
       "return len(s); }",
       ExecStatus::MemoryLimit},
  };
  InterpOptions Options;
  Options.Fuel = 2000;
  Options.MaxMemoryBytes = 1u << 20;
  Options.MaxRecordedSteps = 64;
  for (const Case &C : Cases) {
    Program P = mustParse(C.Source);
    ExecResult R = execute(P, P.Functions[0], {}, Options);
    EXPECT_EQ(R.Status, C.Expected) << C.Name << ": " << R.ErrorMessage;
    EXPECT_GT(R.FuelUsed, 0u) << C.Name;
    EXPECT_LE(R.FuelUsed, Options.Fuel) << C.Name;
    EXPECT_LE(R.Steps.size(), Options.MaxRecordedSteps) << C.Name;
    EXPECT_EQ(R.InitialState.size(), R.VarNames.size()) << C.Name;
    // Even a truncated trace is valid: every recorded snapshot aligns
    // with the variable tuple.
    for (const ExecStep &S : R.Steps) {
      ASSERT_NE(S.Statement, nullptr) << C.Name;
      EXPECT_EQ(S.State.size(), R.VarNames.size()) << C.Name;
    }
    if (C.Expected != ExecStatus::Ok)
      EXPECT_FALSE(R.ErrorMessage.empty()) << C.Name;
  }
}

TEST(InterpHardeningTest, ProbeAndRecordReachSameTerminalState) {
  // The trace collector probes with RecordStates=false, then re-runs
  // recording. Snapshot bytes are charged in both modes, so the
  // terminal status and fuel must not depend on the recording flag.
  const char *Sources[] = {
      "int f() { int x = 1; for (int i = 0; i < 50; i++) { x = x * 2; } "
      "return x; }",
      "int f() { string s = \"aaaaaaaa\"; while (true) { s = s + s; } "
      "return len(s); }",
      "int f() { int x = 0; while (true) { x = x + 1; } return x; }",
  };
  for (const char *Source : Sources) {
    Program P = mustParse(Source);
    InterpOptions Probe;
    Probe.Fuel = 3000;
    Probe.MaxMemoryBytes = 1u << 20;
    Probe.RecordStates = false;
    InterpOptions Record = Probe;
    Record.RecordStates = true;
    ExecResult A = execute(P, P.Functions[0], {}, Probe);
    ExecResult B = execute(P, P.Functions[0], {}, Record);
    EXPECT_EQ(A.Status, B.Status) << Source;
    EXPECT_EQ(A.FuelUsed, B.FuelUsed) << Source;
  }
}

TEST(InterpHardeningTest, NonIntegerArraySizeIsRuntimeError) {
  // `new int[b]` with a bool size never passes the type checker, but the
  // interpreter must still reject it (satellite c: typecheck bypassed).
  Program P = parseOnly(
      "int f(bool b) { int[] a = new int[b]; return len(a); }");
  ExecResult R = execute(P, P.Functions[0], {Value::makeBool(true)});
  EXPECT_EQ(R.Status, ExecStatus::RuntimeError);
  EXPECT_NE(R.ErrorMessage.find("array size"), std::string::npos)
      << R.ErrorMessage;
}

TEST(InterpHardeningTest, TypeConfusedOperandsAreRuntimeErrors) {
  // Un-typechecked ASTs exercise every operand trust point; all must
  // fail totally instead of asserting.
  const char *Sources[] = {
      "int f() { string s = \"a\"; return s + 1; }",
      "int f(bool b) { return -b; }",
      "int f() { if (1) { return 1; } return 0; }",
      "int f() { P p; return 0; }",
      "int g(int x) { return x; } int f() { return g(); }",
      "int f() { string s = \"a\"; return s[0] * 2; }",
      "int f(bool b) { while (b + 1) { return 1; } return 0; }",
  };
  for (const char *Source : Sources) {
    Program P = parseOnly(Source);
    const FunctionDecl *Fn = P.findFunction("f");
    ASSERT_NE(Fn, nullptr) << Source;
    std::vector<Value> Args;
    for (size_t I = 0; I < Fn->Params.size(); ++I)
      Args.push_back(Value::makeBool(true));
    ExecResult R = execute(P, *Fn, Args);
    EXPECT_EQ(R.Status, ExecStatus::RuntimeError) << Source;
    EXPECT_FALSE(R.ErrorMessage.empty()) << Source;
  }
}

TEST(InterpHardeningTest, SubstringChargesAndBoundsChecks) {
  Program P = mustParse(R"(
    string f(string s, int i, int n) { return substring(s, i, n); }
  )");
  // In-bounds works.
  ExecResult Ok = execute(
      P, P.Functions[0],
      {Value::makeString("hello"), Value::makeInt(1), Value::makeInt(3)});
  ASSERT_EQ(Ok.Status, ExecStatus::Ok);
  EXPECT_EQ(Ok.ReturnValue.asString(), "ell");
  // Out-of-bounds is a runtime error, not UB.
  ExecResult Bad = execute(
      P, P.Functions[0],
      {Value::makeString("hello"), Value::makeInt(3), Value::makeInt(9)});
  EXPECT_EQ(Bad.Status, ExecStatus::RuntimeError);
}
