//===-- tests/SupportTests.cpp - Unit tests for the support library -------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace liger;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForFixedSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Same;
  EXPECT_EQ(Same, 0);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBelow(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng R(3);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 2000; ++I) {
    int64_t V = R.nextInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, GaussianRoughMoments) {
  Rng R(13);
  double Sum = 0, SumSq = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double V = R.nextGaussian();
    Sum += V;
    SumSq += V * V;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.08);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(17);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Original = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Original);
}

TEST(RngTest, PickWeightedFollowsWeights) {
  Rng R(23);
  std::vector<double> Weights{0.0, 1.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 4000; ++I)
    ++Counts[R.pickWeighted(Weights)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1] * 2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng A(99);
  Rng Child = A.split();
  // The child stream should not replay the parent's next outputs.
  EXPECT_NE(Child.next(), A.next());
}

//===----------------------------------------------------------------------===//
// Sub-token splitting (the paper's evaluation metric tokenization)
//===----------------------------------------------------------------------===//

TEST(SubtokenTest, CamelCase) {
  EXPECT_EQ(splitSubtokens("computeDiff"),
            (std::vector<std::string>{"compute", "diff"}));
}

TEST(SubtokenTest, SingleWord) {
  EXPECT_EQ(splitSubtokens("compute"), (std::vector<std::string>{"compute"}));
}

TEST(SubtokenTest, Snake) {
  EXPECT_EQ(splitSubtokens("compute_file_diff"),
            (std::vector<std::string>{"compute", "file", "diff"}));
}

TEST(SubtokenTest, AcronymBoundary) {
  EXPECT_EQ(splitSubtokens("parseHTTPHeader"),
            (std::vector<std::string>{"parse", "http", "header"}));
}

TEST(SubtokenTest, Digits) {
  EXPECT_EQ(splitSubtokens("base64Encode"),
            (std::vector<std::string>{"base", "64", "encode"}));
}

TEST(SubtokenTest, LeadingUpper) {
  EXPECT_EQ(splitSubtokens("SortArray"),
            (std::vector<std::string>{"sort", "array"}));
}

TEST(SubtokenTest, Empty) { EXPECT_TRUE(splitSubtokens("").empty()); }

TEST(SubtokenTest, CamelCaseJoinRoundTrip) {
  std::vector<std::string> Parts{"compute", "file", "diff"};
  EXPECT_EQ(camelCaseJoin(Parts), "computeFileDiff");
  EXPECT_EQ(splitSubtokens(camelCaseJoin(Parts)), Parts);
}

//===----------------------------------------------------------------------===//
// String helpers
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringUtilsTest, ToLower) { EXPECT_EQ(toLower("AbC9_z"), "abc9_z"); }

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("liger", "li"));
  EXPECT_FALSE(startsWith("li", "liger"));
  EXPECT_TRUE(endsWith("liger", "ger"));
  EXPECT_FALSE(endsWith("ger", "liger"));
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilsTest, SplitChar) {
  EXPECT_EQ(splitChar("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitChar("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilsTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 1), "2.0");
}

//===----------------------------------------------------------------------===//
// TextTable
//===----------------------------------------------------------------------===//

TEST(TextTableTest, AlignsColumns) {
  TextTable Table({"Model", "F1"});
  Table.addRow({"code2seq", "25.07"});
  Table.addRow({"LIGER", "32.30"});
  std::string Out = Table.render();
  EXPECT_NE(Out.find("Model"), std::string::npos);
  EXPECT_NE(Out.find("LIGER"), std::string::npos);
  // Every line has the same column start for "F1" values.
  EXPECT_NE(Out.find("code2seq  25.07"), std::string::npos);
  EXPECT_NE(Out.find("LIGER     32.30"), std::string::npos);
}

TEST(TextTableTest, CsvEscaping) {
  TextTable Table({"a", "b"});
  Table.addRow({"x,y", "He said \"hi\""});
  std::string Path = testing::TempDir() + "/liger_table_test.csv";
  ASSERT_TRUE(Table.writeCsv(Path));
  FILE *F = fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buffer[256];
  std::string Content;
  while (fgets(Buffer, sizeof(Buffer), F))
    Content += Buffer;
  fclose(F);
  EXPECT_NE(Content.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Content.find("\"He said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTableTest, RowCount) {
  TextTable Table({"only"});
  EXPECT_EQ(Table.numRows(), 0u);
  Table.addRow({"r"});
  EXPECT_EQ(Table.numRows(), 1u);
}

//===----------------------------------------------------------------------===//
// StableHash
//===----------------------------------------------------------------------===//

TEST(StableHashTest, DeterministicForSameFeed) {
  auto Feed = [](StableHash &H) {
    H.addU64(7);
    H.addString("collect");
    H.addI64(-3);
    H.addBool(true);
    H.addF64(0.25);
  };
  StableHash A, B;
  Feed(A);
  Feed(B);
  EXPECT_EQ(A.digest(), B.digest());
  EXPECT_EQ(A.digest128(), B.digest128());
  EXPECT_NE(A.digest(), 0u);
}

TEST(StableHashTest, LengthPrefixPreventsStringAliasing) {
  StableHash A, B;
  A.addString("ab");
  A.addString("c");
  B.addString("a");
  B.addString("bc");
  EXPECT_NE(A.digest(), B.digest());
}

TEST(StableHashTest, OrderSensitive) {
  StableHash A, B;
  A.addU64(1);
  A.addU64(2);
  B.addU64(2);
  B.addU64(1);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(StableHashTest, FloatBitPatternDistinguishesSignedZero) {
  StableHash A, B;
  A.addF64(0.0);
  B.addF64(-0.0);
  EXPECT_NE(A.digest(), B.digest());
}

TEST(StableHashTest, HexIs32LowercaseChars) {
  StableHash H;
  H.addString("liger");
  Digest128 D = H.digest128();
  std::string Hex = D.hex();
  ASSERT_EQ(Hex.size(), 32u);
  for (char C : Hex)
    EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Hex;
  StableHash Other;
  Other.addString("tiger");
  EXPECT_NE(Other.digest128().hex(), Hex);
}

TEST(StableHashTest, StreamingMatchesOneShot) {
  const char Data[] = "stable content hashing";
  StableHash A, B;
  A.addBytes(Data, sizeof(Data) - 1);
  for (size_t I = 0; I + 1 < sizeof(Data); ++I)
    B.addBytes(Data + I, 1);
  EXPECT_EQ(A.digest128(), B.digest128());
}
