//===-- dataset/Corpus.h - Synthetic corpora generation ---------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the two corpora (Java-med/Java-large and COSET
/// substitutes — see DESIGN.md §2 for the substitution argument):
///
///  - Method-name corpus: tasks × variants × identifier mutations
///    (informative / generic / misleading names) × optional dead code,
///    labelled with camelCase names composed from task synonym sets.
///    The generation pipeline reproduces Table 1's filters: methods
///    that do not compile, reference unavailable externals, time out
///    under test generation, or are too small are counted and dropped.
///
///  - COSET-like corpus: the 10 problems in the task library flagged as
///    CosetProblem, labelled by algorithm class; programs that crash or
///    produce no executions are removed (§6.2: "we remove programs that
///    fail to pass all test cases").
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_DATASET_CORPUS_H
#define LIGER_DATASET_CORPUS_H

#include "dataset/Tasks.h"
#include "models/Common.h"
#include "testgen/TraceCollector.h"

namespace liger {

class TraceCache;

/// Generation options for the method-name corpus.
struct CorpusOptions {
  /// Number of *raw* methods to generate (before filtering).
  size_t NumMethods = 240;
  /// Methods per synthetic "project" (split unit; the paper splits by
  /// project, §6.1).
  size_t MethodsPerProject = 8;
  /// Worker threads for trace construction (<= 1 runs inline). Each
  /// raw method draws its randomness from a seed derived from
  /// (Seed, method index), and results are assembled in index order,
  /// so the corpus is bitwise-identical for any thread count.
  size_t Threads = 1;
  /// Optional trace cache shared by all workers (null: no caching).
  TraceCache *Cache = nullptr;
  /// Probability that a renameable identifier is replaced by a generic
  /// name (a, b, x, tmp1...).
  double GenericNameProb = 0.25;
  /// Probability that a renameable identifier is replaced by a
  /// *misleading* name mined from other tasks' vocabularies.
  double MisleadingNameProb = 0.25;
  /// Probability of injecting one dead declaration at body start.
  double DeadCodeProb = 0.35;
  /// Trace collection settings (per kept method).
  TestGenOptions TraceGen;
  uint64_t Seed = 1;

  // Defect injection rates reproducing the Table 1 filter pipeline
  // (all zero by default: every method passes).
  double SyntaxDefectRate = 0.0;
  double ExternalRefRate = 0.0;
  double NonTerminationRate = 0.0;
  double TooSmallRate = 0.0;
};

/// Filter-pipeline counts (drives the Table 1 bench), plus trace-cache
/// counters and per-phase timings aggregated over every method that
/// reached trace construction.
struct CorpusStats {
  size_t Requested = 0;
  size_t ParseFailures = 0;       ///< "do not compile"
  size_t ExternalRefFailures = 0; ///< "reference external packages"
  size_t TestgenTimeouts = 0;     ///< "take too long for Randoop"
  size_t TestgenMemoryBombs = 0;  ///< every run blew the memory budget
  size_t TooSmall = 0;            ///< "too small to be considered"
  size_t NoTraces = 0;            ///< no successful execution at all
  size_t Kept = 0;

  /// Trace-cache outcomes (one per method that ran the pipeline; the
  /// three sum to the number of collectTracesCached invocations).
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
  size_t CacheBypassed = 0;

  /// Summed wall-clock seconds per pipeline phase across methods.
  /// With several workers these can exceed elapsed time (they are CPU
  /// phase totals, not a wall-clock breakdown).
  double PhaseExploreSeconds = 0;
  double PhaseSymbolicSeconds = 0;
  double PhaseMutateSeconds = 0;
  double PhaseRecordSeconds = 0;
  double PhaseReplaySeconds = 0;
};

/// Generates the method-name corpus.
std::vector<MethodSample> generateMethodCorpus(const CorpusOptions &Options,
                                               CorpusStats *Stats = nullptr);

/// Generation options for the COSET-like corpus.
struct CosetOptions {
  /// Programs per (problem, algorithm) class.
  size_t ProgramsPerClass = 12;
  double GenericNameProb = 0.35;
  double MisleadingNameProb = 0.25;
  double DeadCodeProb = 0.35;
  TestGenOptions TraceGen;
  uint64_t Seed = 2;
  /// Worker threads, parallel over (problem, algorithm) classes; same
  /// determinism contract as CorpusOptions::Threads.
  size_t Threads = 1;
  /// Optional trace cache shared by all workers (null: no caching).
  TraceCache *Cache = nullptr;
};

/// Generates the COSET-like corpus; \p ClassNames receives the label
/// names ("sortArray/bubble", ...) indexed by ClassId.
std::vector<MethodSample>
generateCosetCorpus(const CosetOptions &Options,
                    std::vector<std::string> &ClassNames,
                    CorpusStats *Stats = nullptr);

/// A stable fingerprint of everything downstream training consumes
/// from \p Samples: method names, labels, projects, and the full
/// blended traces (statement ids, branch outcomes, every recorded
/// state and input value). Two corpora with equal fingerprints train
/// identically; used to verify thread-count and cache invariance.
uint64_t corpusFingerprint(const std::vector<MethodSample> &Samples);

/// A three-way split.
struct SplitCorpus {
  std::vector<MethodSample> Train;
  std::vector<MethodSample> Valid;
  std::vector<MethodSample> Test;
};

/// Splits by project (all methods of one project land in one part),
/// with approximate fractions \p ValidFrac and \p TestFrac.
SplitCorpus splitByProject(std::vector<MethodSample> Samples,
                           double ValidFrac, double TestFrac, uint64_t Seed);

} // namespace liger

#endif // LIGER_DATASET_CORPUS_H
