//===-- dataset/Tasks.h - Semantic task and variant library -----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library of semantic tasks backing both synthetic corpora
/// (DESIGN.md §2). A *task* is a behaviour (sum an array, sort, check a
/// string rotation, ...) with:
///
///  - name parts: synonym sets composed into realistic camelCase method
///    names (the prediction target);
///  - variants: syntactically different implementations of the same
///    behaviour (different loop styles, ++ vs +=, flag vs early
///    return, different algorithms) — the property that separates
///    static from dynamic models (paper Fig. 1);
///  - renameable identifiers for informative/generic/misleading
///    identifier mutation.
///
/// The COSET substitute draws from the subset of tasks whose variants
/// are genuinely distinct *algorithms* (bubble vs insertion vs
/// selection sort, Euclid-mod vs Euclid-sub gcd, ...), labelled by
/// variant.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_DATASET_TASKS_H
#define LIGER_DATASET_TASKS_H

#include <string>
#include <vector>

namespace liger {

/// One syntactic/algorithmic implementation of a task. The source
/// declares exactly one function named `FN` (substituted at generation
/// time).
struct TaskVariant {
  /// Algorithm label ("bubble", "two-pointer", ...). Variants of one
  /// task with *different* labels implement different algorithms (the
  /// COSET classes); same-label variants are mere syntax mutations.
  std::string Algorithm;
  /// MiniLang source with the placeholder function name FN.
  std::string Source;
};

/// A semantic task.
struct TaskSpec {
  /// Stable key, e.g. "sumArray".
  std::string Key;
  /// Synonym sets per name position; a method name picks one synonym
  /// from each set, e.g. {{"sum","total"},{"array","values"}} can yield
  /// sumArray, totalValues, ...
  std::vector<std::vector<std::string>> NameParts;
  /// Identifiers in the variant sources that may be renamed.
  std::vector<std::string> Renameable;
  std::vector<TaskVariant> Variants;
  /// True when the variants constitute distinct algorithms suitable as
  /// a COSET-style classification problem.
  bool CosetProblem = false;
};

/// The full task library (built once, immutable).
const std::vector<TaskSpec> &taskLibrary();

/// The subset of the library with CosetProblem set (10 problems).
std::vector<const TaskSpec *> cosetProblems();

/// Replaces whole-word occurrences of identifier \p From with \p To.
std::string replaceIdentifier(const std::string &Source,
                              const std::string &From, const std::string &To);

} // namespace liger

#endif // LIGER_DATASET_TASKS_H
