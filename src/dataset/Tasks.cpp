//===-- dataset/Tasks.cpp - Semantic task and variant library -------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dataset/Tasks.h"

#include <cctype>

using namespace liger;

std::string liger::replaceIdentifier(const std::string &Source,
                                     const std::string &From,
                                     const std::string &To) {
  auto IsIdentChar = [](char C) {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
  };
  std::string Out;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t Found = Source.find(From, Pos);
    if (Found == std::string::npos) {
      Out.append(Source, Pos, std::string::npos);
      break;
    }
    bool LeftBoundary = Found == 0 || !IsIdentChar(Source[Found - 1]);
    bool RightBoundary = Found + From.size() >= Source.size() ||
                         !IsIdentChar(Source[Found + From.size()]);
    Out.append(Source, Pos, Found - Pos);
    if (LeftBoundary && RightBoundary)
      Out += To;
    else
      Out.append(From);
    Pos = Found + From.size();
  }
  return Out;
}

namespace {

std::vector<TaskSpec> buildLibrary() {
  std::vector<TaskSpec> Lib;
  auto Add = [&Lib](TaskSpec Spec) { Lib.push_back(std::move(Spec)); };

  //-- Array aggregation --------------------------------------------------

  Add({"sumArray",
       {{"sum", "total"}, {"array", "values", "numbers"}},
       {"arr", "total", "i"},
       {{"forward-loop", R"(
int FN(int[] arr) {
  int total = 0;
  for (int i = 0; i < len(arr); i++) {
    total += arr[i];
  }
  return total;
}
)"},
        {"backward-loop", R"(
int FN(int[] arr) {
  int total = 0;
  for (int i = len(arr) - 1; i >= 0; i--) {
    total = total + arr[i];
  }
  return total;
}
)"},
        {"while-loop", R"(
int FN(int[] arr) {
  int total = 0;
  int i = 0;
  while (i < len(arr)) {
    total += arr[i];
    i++;
  }
  return total;
}
)"}},
       /*CosetProblem=*/true});

  Add({"maxArray",
       {{"max", "largest", "biggest"}, {"array", "element", "value"}},
       {"arr", "best", "i"},
       {{"first-init", R"(
int FN(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int best = arr[0];
  for (int i = 1; i < len(arr); i++) {
    if (arr[i] > best) {
      best = arr[i];
    }
  }
  return best;
}
)"},
        {"builtin-max", R"(
int FN(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int best = arr[0];
  for (int i = 1; i < len(arr); i++) {
    best = max(best, arr[i]);
  }
  return best;
}
)"},
        {"while-scan", R"(
int FN(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int best = arr[0];
  int i = 1;
  while (i < len(arr)) {
    if (arr[i] > best)
      best = arr[i];
    i = i + 1;
  }
  return best;
}
)"}},
       /*CosetProblem=*/true});

  Add({"minArray",
       {{"min", "smallest"}, {"array", "element", "value"}},
       {"arr", "low", "i"},
       {{"first-init", R"(
int FN(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int low = arr[0];
  for (int i = 1; i < len(arr); i++) {
    if (arr[i] < low)
      low = arr[i];
  }
  return low;
}
)"},
        {"builtin-min", R"(
int FN(int[] arr) {
  if (len(arr) == 0)
    return 0;
  int low = arr[0];
  int i = 1;
  while (i < len(arr)) {
    low = min(low, arr[i]);
    i++;
  }
  return low;
}
)"}}});

  Add({"countPositive",
       {{"count", "number"}, {"positive", "greater"}, {"values", "items"}},
       {"arr", "count", "i"},
       {{"for-count", R"(
int FN(int[] arr) {
  int count = 0;
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] > 0)
      count++;
  }
  return count;
}
)"},
        {"while-count", R"(
int FN(int[] arr) {
  int count = 0;
  int i = 0;
  while (i < len(arr)) {
    if (arr[i] > 0) {
      count += 1;
    }
    i++;
  }
  return count;
}
)"}}});

  Add({"countEven",
       {{"count", "tally"}, {"even"}, {"numbers", "entries"}},
       {"arr", "count", "i"},
       {{"mod-eq", R"(
int FN(int[] arr) {
  int count = 0;
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] % 2 == 0)
      count++;
  }
  return count;
}
)"},
        {"mod-ne", R"(
int FN(int[] arr) {
  int count = 0;
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] % 2 != 0) {
    } else {
      count += 1;
    }
  }
  return count;
}
)"}}});

  Add({"sumEven",
       {{"sum", "add"}, {"even"}, {"values", "numbers"}},
       {"arr", "total", "i"},
       {{"for-sum", R"(
int FN(int[] arr) {
  int total = 0;
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] % 2 == 0)
      total += arr[i];
  }
  return total;
}
)"},
        {"while-sum", R"(
int FN(int[] arr) {
  int total = 0;
  int i = 0;
  while (i < len(arr)) {
    if (arr[i] % 2 == 0) {
      total = total + arr[i];
    }
    i++;
  }
  return total;
}
)"}}});

  //-- Array transformation -----------------------------------------------

  Add({"reverseArray",
       {{"reverse", "flip"}, {"array", "list", "order"}},
       {"arr", "left", "right", "tmp", "out", "i"},
       {{"two-pointer", R"(
int[] FN(int[] arr) {
  int left = 0;
  int right = len(arr) - 1;
  while (left < right) {
    int tmp = arr[left];
    arr[left] = arr[right];
    arr[right] = tmp;
    left++;
    right--;
  }
  return arr;
}
)"},
        {"copy-backward", R"(
int[] FN(int[] arr) {
  int[] out = new int[len(arr)];
  for (int i = 0; i < len(arr); i++) {
    out[len(arr) - 1 - i] = arr[i];
  }
  return out;
}
)"}},
       /*CosetProblem=*/true});

  Add({"negateArray",
       {{"negate", "invert"}, {"values", "array", "signs"}},
       {"arr", "i"},
       {{"in-place", R"(
int[] FN(int[] arr) {
  for (int i = 0; i < len(arr); i++) {
    arr[i] = -arr[i];
  }
  return arr;
}
)"},
        {"mul-minus-one", R"(
int[] FN(int[] arr) {
  int i = 0;
  while (i < len(arr)) {
    arr[i] = arr[i] * -1;
    i++;
  }
  return arr;
}
)"}}});

  Add({"swapEnds",
       {{"swap", "exchange"}, {"ends", "first", "last"}},
       {"arr", "tmp"},
       {{"direct", R"(
int[] FN(int[] arr) {
  if (len(arr) < 2)
    return arr;
  int tmp = arr[0];
  arr[0] = arr[len(arr) - 1];
  arr[len(arr) - 1] = tmp;
  return arr;
}
)"}}});

  Add({"sortArray",
       {{"sort", "order", "arrange"}, {"array", "values", "numbers"}},
       {"arr", "i", "j", "tmp", "left", "right", "swapbit", "pos"},
       {{"bubble", R"(
int[] FN(int[] arr) {
  int left = 0;
  int right = len(arr) - 1;
  for (int i = right; i > left; i--) {
    for (int j = left; j < i; j++) {
      if (arr[j] > arr[j + 1]) {
        int tmp = arr[j];
        arr[j] = arr[j + 1];
        arr[j + 1] = tmp;
      }
    }
  }
  return arr;
}
)"},
        {"insertion", R"(
int[] FN(int[] arr) {
  int left = 0;
  int right = len(arr);
  for (int i = left; i < right; i++) {
    for (int j = i - 1; j >= left; j--) {
      if (arr[j] > arr[j + 1]) {
        int tmp = arr[j];
        arr[j] = arr[j + 1];
        arr[j + 1] = tmp;
      }
    }
  }
  return arr;
}
)"},
        {"bubble-flag", R"(
int[] FN(int[] arr) {
  int swapbit = 1;
  while (swapbit != 0) {
    swapbit = 0;
    for (int i = 0; i < len(arr) - 1; i++) {
      if (arr[i] > arr[i + 1]) {
        int tmp = arr[i];
        arr[i] = arr[i + 1];
        arr[i + 1] = tmp;
        swapbit = 1;
      }
    }
  }
  return arr;
}
)"},
        {"selection", R"(
int[] FN(int[] arr) {
  for (int i = 0; i < len(arr); i++) {
    int pos = i;
    for (int j = i + 1; j < len(arr); j++) {
      if (arr[j] < arr[pos])
        pos = j;
    }
    int tmp = arr[i];
    arr[i] = arr[pos];
    arr[pos] = tmp;
  }
  return arr;
}
)"}},
       /*CosetProblem=*/true});

  Add({"isSorted",
       {{"is", "check"}, {"sorted", "ordered"}},
       {"arr", "i", "ok"},
       {{"early-return", R"(
bool FN(int[] arr) {
  for (int i = 0; i + 1 < len(arr); i++) {
    if (arr[i] > arr[i + 1])
      return false;
  }
  return true;
}
)"},
        {"flag", R"(
bool FN(int[] arr) {
  bool ok = true;
  int i = 0;
  while (i + 1 < len(arr)) {
    if (arr[i] > arr[i + 1])
      ok = false;
    i++;
  }
  return ok;
}
)"}}});

  //-- Searching ------------------------------------------------------------

  Add({"containsValue",
       {{"contains", "has", "includes"}, {"value", "element", "item"}},
       {"arr", "target", "i", "found"},
       {{"early-return", R"(
bool FN(int[] arr, int target) {
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] == target)
      return true;
  }
  return false;
}
)"},
        {"flag", R"(
bool FN(int[] arr, int target) {
  bool found = false;
  int i = 0;
  while (i < len(arr)) {
    if (arr[i] == target) {
      found = true;
    }
    i++;
  }
  return found;
}
)"}},
       /*CosetProblem=*/true});

  Add({"indexOf",
       {{"index", "find", "position"}, {"of", "value"}},
       {"arr", "target", "i", "where"},
       {{"early-return", R"(
int FN(int[] arr, int target) {
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] == target)
      return i;
  }
  return -1;
}
)"},
        {"scan-keep-first", R"(
int FN(int[] arr, int target) {
  int where = -1;
  for (int i = len(arr) - 1; i >= 0; i--) {
    if (arr[i] == target)
      where = i;
  }
  return where;
}
)"}}});

  Add({"countOccurrences",
       {{"count", "tally"}, {"occurrences", "matches", "hits"}},
       {"arr", "target", "count", "i"},
       {{"for-scan", R"(
int FN(int[] arr, int target) {
  int count = 0;
  for (int i = 0; i < len(arr); i++) {
    if (arr[i] == target)
      count++;
  }
  return count;
}
)"},
        {"while-scan", R"(
int FN(int[] arr, int target) {
  int count = 0;
  int i = 0;
  while (i < len(arr)) {
    if (arr[i] == target)
      count += 1;
    i++;
  }
  return count;
}
)"}},
       /*CosetProblem=*/true});

  //-- Scalar arithmetic -----------------------------------------------------

  Add({"absValue",
       {{"abs", "absolute"}, {"value", "number"}},
       {"x"},
       {{"branch", R"(
int FN(int x) {
  if (x < 0)
    return -x;
  return x;
}
)"},
        {"mul-sign", R"(
int FN(int x) {
  if (x < 0) {
    x = x * -1;
  }
  return x;
}
)"}}});

  Add({"maxOfTwo",
       {{"max", "larger"}, {"of", "pick"}, {"two", "pair"}},
       {"a", "b"},
       {{"branch", R"(
int FN(int a, int b) {
  if (a > b)
    return a;
  return b;
}
)"},
        {"builtin", R"(
int FN(int a, int b) {
  return max(a, b);
}
)"}}});

  Add({"minOfThree",
       {{"min", "smallest"}, {"of", "among"}, {"three", "triple"}},
       {"a", "b", "c", "best"},
       {{"nested-if", R"(
int FN(int a, int b, int c) {
  if (a < b) {
    if (a < c)
      return a;
    return c;
  }
  if (b < c)
    return b;
  return c;
}
)"},
        {"sequential", R"(
int FN(int a, int b, int c) {
  int best = a;
  if (b < best)
    best = b;
  if (c < best)
    best = c;
  return best;
}
)"}}});

  Add({"clampValue",
       {{"clamp", "bound"}, {"value", "range"}},
       {"x", "lo", "hi"},
       {{"branches", R"(
int FN(int x, int lo, int hi) {
  if (lo > hi)
    return x;
  if (x < lo)
    return lo;
  if (x > hi)
    return hi;
  return x;
}
)"},
        {"min-max", R"(
int FN(int x, int lo, int hi) {
  if (lo > hi)
    return x;
  return min(max(x, lo), hi);
}
)"}}});

  Add({"sumRange",
       {{"sum", "total"}, {"range", "between", "interval"}},
       {"lo", "hi", "total", "i"},
       {{"for-loop", R"(
int FN(int lo, int hi) {
  int total = 0;
  for (int i = lo; i <= hi; i++) {
    total += i;
  }
  return total;
}
)"},
        {"while-loop", R"(
int FN(int lo, int hi) {
  int total = 0;
  int i = lo;
  while (i <= hi) {
    total = total + i;
    i++;
  }
  return total;
}
)"}}});

  Add({"factorial",
       {{"factorial", "fact"}, {"of", "value"}},
       {"n", "result", "i"},
       {{"for-product", R"(
int FN(int n) {
  int result = 1;
  for (int i = 2; i <= n; i++) {
    result *= i;
  }
  return result;
}
)"},
        {"while-countdown", R"(
int FN(int n) {
  int result = 1;
  while (n > 1) {
    result = result * n;
    n--;
  }
  return result;
}
)"}}});

  Add({"fibonacci",
       {{"fib", "fibonacci"}, {"number", "term"}},
       {"n", "a", "b", "tmp", "i", "seq"},
       {{"pair-rolling", R"(
int FN(int n) {
  int a = 0;
  int b = 1;
  for (int i = 0; i < n; i++) {
    int tmp = a + b;
    a = b;
    b = tmp;
  }
  return a;
}
)"},
        {"array-table", R"(
int FN(int n) {
  if (n <= 0)
    return 0;
  int[] seq = new int[n + 1];
  seq[0] = 0;
  if (n >= 1)
    seq[1] = 1;
  for (int i = 2; i <= n; i++) {
    seq[i] = seq[i - 1] + seq[i - 2];
  }
  return seq[n];
}
)"}},
       /*CosetProblem=*/true});

  Add({"gcd",
       {{"gcd", "greatest"}, {"divisor", "common"}},
       {"a", "b", "tmp"},
       {{"euclid-mod", R"(
int FN(int a, int b) {
  a = abs(a);
  b = abs(b);
  while (b != 0) {
    int tmp = a % b;
    a = b;
    b = tmp;
  }
  return a;
}
)"},
        {"euclid-sub", R"(
int FN(int a, int b) {
  a = abs(a);
  b = abs(b);
  if (a == 0)
    return b;
  if (b == 0)
    return a;
  while (a != b) {
    if (a > b)
      a -= b;
    else
      b -= a;
  }
  return a;
}
)"}},
       /*CosetProblem=*/true});

  Add({"power",
       {{"power", "raise"}, {"of", "to"}},
       {"base", "exp", "result", "i"},
       {{"linear-multiply", R"(
int FN(int base, int exp) {
  int result = 1;
  for (int i = 0; i < exp; i++) {
    result *= base;
  }
  return result;
}
)"},
        {"square-multiply", R"(
int FN(int base, int exp) {
  int result = 1;
  while (exp > 0) {
    if (exp % 2 == 1)
      result = result * base;
    base = base * base;
    exp = exp / 2;
  }
  return result;
}
)"}},
       /*CosetProblem=*/true});

  Add({"sumDigits",
       {{"sum", "add"}, {"digits"}},
       {"n", "total"},
       {{"mod-loop", R"(
int FN(int n) {
  n = abs(n);
  int total = 0;
  while (n > 0) {
    total += n % 10;
    n /= 10;
  }
  return total;
}
)"},
        {"mod-loop-plain", R"(
int FN(int n) {
  n = abs(n);
  int total = 0;
  while (n > 0) {
    total = total + n % 10;
    n = n / 10;
  }
  return total;
}
)"}}});

  Add({"isPrime",
       {{"is", "check"}, {"prime"}},
       {"n", "i"},
       {{"trial-division", R"(
bool FN(int n) {
  if (n < 2)
    return false;
  for (int i = 2; i * i <= n; i++) {
    if (n % i == 0)
      return false;
  }
  return true;
}
)"},
        {"scan-all", R"(
bool FN(int n) {
  if (n < 2)
    return false;
  int i = 2;
  while (i < n) {
    if (n % i == 0)
      return false;
    i++;
  }
  return true;
}
)"}}});

  Add({"signOf",
       {{"sign", "signum"}, {"of", "value"}},
       {"x"},
       {{"two-branch", R"(
int FN(int x) {
  if (x > 0)
    return 1;
  if (x < 0)
    return -1;
  return 0;
}
)"},
        {"nested", R"(
int FN(int x) {
  if (x == 0)
    return 0;
  if (x > 0)
    return 1;
  return -1;
}
)"}}});

  //-- Pairwise array ops ----------------------------------------------------

  Add({"dotProduct",
       {{"dot", "inner"}, {"product"}},
       {"xs", "ys", "total", "i", "bound"},
       {{"min-bound", R"(
int FN(int[] xs, int[] ys) {
  int bound = min(len(xs), len(ys));
  int total = 0;
  for (int i = 0; i < bound; i++) {
    total += xs[i] * ys[i];
  }
  return total;
}
)"},
        {"while-bound", R"(
int FN(int[] xs, int[] ys) {
  int total = 0;
  int i = 0;
  while (i < len(xs) && i < len(ys)) {
    total = total + xs[i] * ys[i];
    i++;
  }
  return total;
}
)"}}});

  Add({"rangeProduct",
       {{"product", "multiply"}, {"range", "values"}},
       {"arr", "result", "i"},
       {{"for-product", R"(
int FN(int[] arr) {
  int result = 1;
  for (int i = 0; i < len(arr); i++) {
    result *= arr[i];
  }
  return result;
}
)"},
        {"backward-product", R"(
int FN(int[] arr) {
  int result = 1;
  int i = len(arr) - 1;
  while (i >= 0) {
    result = result * arr[i];
    i--;
  }
  return result;
}
)"}}});

  //-- Strings ----------------------------------------------------------------

  Add({"reverseString",
       {{"reverse", "flip"}, {"string", "text", "word"}},
       {"s", "out", "i"},
       {{"append-backward", R"(
string FN(string s) {
  string out = "";
  for (int i = len(s) - 1; i >= 0; i--) {
    out += s[i];
  }
  return out;
}
)"},
        {"prepend-forward", R"(
string FN(string s) {
  string out = "";
  int i = 0;
  while (i < len(s)) {
    out = s[i] + out;
    i++;
  }
  return out;
}
)"}},
       /*CosetProblem=*/true});

  Add({"countChar",
       {{"count", "tally"}, {"char", "letter"}},
       {"s", "c", "count", "i"},
       {{"for-scan", R"(
int FN(string s, string c) {
  int count = 0;
  for (int i = 0; i < len(s); i++) {
    if (s[i] == c)
      count++;
  }
  return count;
}
)"},
        {"while-scan", R"(
int FN(string s, string c) {
  int count = 0;
  int i = 0;
  while (i < len(s)) {
    if (s[i] == c)
      count += 1;
    i++;
  }
  return count;
}
)"}}});

  Add({"isPalindrome",
       {{"is", "check"}, {"palindrome"}},
       {"s", "left", "right", "out", "i"},
       {{"two-pointer", R"(
bool FN(string s) {
  int left = 0;
  int right = len(s) - 1;
  while (left < right) {
    if (s[left] != s[right])
      return false;
    left++;
    right--;
  }
  return true;
}
)"},
        {"reverse-compare", R"(
bool FN(string s) {
  string out = "";
  for (int i = len(s) - 1; i >= 0; i--) {
    out += s[i];
  }
  return out == s;
}
)"}}});

  Add({"repeatString",
       {{"repeat", "duplicate"}, {"string", "text"}},
       {"s", "times", "out", "i"},
       {{"for-append", R"(
string FN(string s, int times) {
  string out = "";
  for (int i = 0; i < times; i++) {
    out += s;
  }
  return out;
}
)"},
        {"while-append", R"(
string FN(string s, int times) {
  string out = "";
  while (times > 0) {
    out = out + s;
    times--;
  }
  return out;
}
)"}}});

  Add({"isStringRotation",
       {{"is", "check"}, {"string", "word"}, {"rotation"}},
       {"a", "b", "tail", "wrap", "i"},
       {{"cut-and-wrap", R"(
bool FN(string a, string b) {
  if (len(a) != len(b))
    return false;
  for (int i = 1; i < len(a); i++) {
    string tail = substring(a, i, len(a) - i);
    string wrap = substring(a, 0, i);
    if (tail + wrap == b)
      return true;
  }
  return false;
}
)"}}});

  //-- Structs -----------------------------------------------------------------

  Add({"manhattanDistance",
       {{"manhattan", "grid"}, {"distance", "length"}},
       {"p"},
       {{"abs-sum", R"(
struct Point { int x; int y; }
int FN(Point p) {
  return abs(p.x) + abs(p.y);
}
)"},
        {"branchy", R"(
struct Point { int x; int y; }
int FN(Point p) {
  int dx = p.x;
  if (dx < 0)
    dx = -dx;
  int dy = p.y;
  if (dy < 0)
    dy = -dy;
  return dx + dy;
}
)"}}});

  Add({"boolAnyTrue",
       {{"any", "has"}, {"true", "set"}, {"flag", "bit"}},
       {"flags", "i", "found"},
       {{"early-return", R"(
bool FN(bool[] flags) {
  for (int i = 0; i < len(flags); i++) {
    if (flags[i])
      return true;
  }
  return false;
}
)"},
        {"fold", R"(
bool FN(bool[] flags) {
  bool found = false;
  int i = 0;
  while (i < len(flags)) {
    found = found || flags[i];
    i++;
  }
  return found;
}
)"}}});

  return Lib;
}

} // namespace

const std::vector<TaskSpec> &liger::taskLibrary() {
  static const std::vector<TaskSpec> Library = buildLibrary();
  return Library;
}

std::vector<const TaskSpec *> liger::cosetProblems() {
  std::vector<const TaskSpec *> Problems;
  for (const TaskSpec &Task : taskLibrary())
    if (Task.CosetProblem)
      Problems.push_back(&Task);
  return Problems;
}
