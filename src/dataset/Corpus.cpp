//===-- dataset/Corpus.cpp - Synthetic corpora generation ------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dataset/Corpus.h"

#include "lang/Parser.h"
#include "support/Hash.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "testgen/TraceCache.h"

#include <map>
#include <set>

using namespace liger;

namespace {

/// Generic identifier pool for the "uninformative names" mutation.
const std::vector<std::string> GenericNames = {
    "a",  "b",  "c",  "d",  "e",  "f0", "g",  "h",  "k",
    "m",  "n0", "p",  "q",  "r",  "t",  "u",  "v",  "w",
    "x0", "y0", "z",  "tmp1", "tmp2", "val0", "var1", "var2"};

/// Misleading pool: plausible names mined from *other* domains so the
/// surface vocabulary points away from the true semantics.
const std::vector<std::string> MisleadingNames = {
    "price",  "salary", "weight", "buffer", "cache",  "queue",
    "node",   "parent", "child",  "width",  "height", "color",
    "offset", "cursor", "ticket", "score",  "angle",  "depth",
    "label",  "token",  "status", "flagged"};

/// Words reserved by the language or builtins: never valid rename
/// targets.
bool isReservedWord(const std::string &Word) {
  static const std::set<std::string> Reserved = {
      "int",   "bool",     "string", "void",  "struct", "if",
      "else",  "while",    "for",    "return", "break", "continue",
      "true",  "false",    "new",    "len",   "substring", "abs",
      "min",   "max"};
  return Reserved.count(Word) != 0;
}

/// Draws a rename target distinct from \p Used and reserved words.
std::string drawName(const std::vector<std::string> &Pool, Rng &R,
                     std::set<std::string> &Used) {
  for (int Attempt = 0; Attempt < 32; ++Attempt) {
    const std::string &Candidate = R.pick(Pool);
    if (!isReservedWord(Candidate) && Used.insert(Candidate).second)
      return Candidate;
  }
  // Fall back to a fresh unique name.
  std::string Fresh = "v" + std::to_string(Used.size()) + "u";
  Used.insert(Fresh);
  return Fresh;
}

/// Applies identifier mutations to \p Source.
std::string mutateIdentifiers(std::string Source, const TaskSpec &Task,
                              double GenericProb, double MisleadingProb,
                              Rng &R) {
  std::set<std::string> Used(Task.Renameable.begin(), Task.Renameable.end());
  for (const std::string &Ident : Task.Renameable) {
    double Draw = R.nextDouble();
    if (Draw < GenericProb) {
      Source = replaceIdentifier(Source, Ident,
                                 drawName(GenericNames, R, Used));
    } else if (Draw < GenericProb + MisleadingProb) {
      Source = replaceIdentifier(Source, Ident,
                                 drawName(MisleadingNames, R, Used));
    }
    // Otherwise keep the informative template name.
  }
  return Source;
}

/// Inserts one dead declaration right after the function body opens.
/// The body brace is the first '{' after the FN( marker.
std::string injectDeadCode(const std::string &Source, Rng &R) {
  size_t FnPos = Source.find("FN(");
  if (FnPos == std::string::npos)
    return Source;
  size_t Brace = Source.find('{', FnPos);
  if (Brace == std::string::npos)
    return Source;
  static const char *DeadNames[] = {"unused0", "scratch1", "spare2"};
  std::string Decl = "\n  int " +
                     std::string(DeadNames[R.nextBelow(3)]) + " = " +
                     std::to_string(R.nextInt(-4, 9)) + ";";
  std::string Out = Source;
  Out.insert(Brace + 1, Decl);
  return Out;
}

/// Composes a camelCase method name from the task's synonym sets.
std::string composeName(const TaskSpec &Task, Rng &R) {
  std::vector<std::string> Parts;
  for (const std::vector<std::string> &Synonyms : Task.NameParts)
    Parts.push_back(R.pick(Synonyms));
  return camelCaseJoin(Parts);
}

/// Kinds of deliberately defective methods (Table 1 pipeline).
enum class DefectKind { None, Syntax, ExternalRef, NonTermination,
                        TooSmall };

std::string applyDefect(std::string Source, DefectKind Kind, Rng &R) {
  switch (Kind) {
  case DefectKind::None:
    return Source;
  case DefectKind::Syntax: {
    // Drop one semicolon: reliably unparseable.
    size_t Semi = Source.find(';');
    if (Semi != std::string::npos)
      Source.erase(Semi, 1);
    return Source;
  }
  case DefectKind::ExternalRef: {
    // Call into a library that is not on the classpath.
    size_t FnPos = Source.find("FN(");
    size_t Brace = FnPos == std::string::npos ? std::string::npos
                                              : Source.find('{', FnPos);
    if (Brace != std::string::npos)
      Source.insert(Brace + 1, "\n  int ext0 = externalLibraryCall(" +
                                   std::to_string(R.nextInt(0, 3)) + ");");
    return Source;
  }
  case DefectKind::NonTermination: {
    size_t FnPos = Source.find("FN(");
    size_t Brace = FnPos == std::string::npos ? std::string::npos
                                              : Source.find('{', FnPos);
    if (Brace != std::string::npos)
      Source.insert(Brace + 1, "\n  int spin3 = 0;\n  while (spin3 == 0) { "
                               "spin3 = spin3 * 1; }");
    return Source;
  }
  case DefectKind::TooSmall:
    return "int FN(int x) { return x; }";
  }
  LIGER_UNREACHABLE("covered switch");
}

/// Counts the trace-level statements of a function (the "too small"
/// filter threshold).
size_t countStatements(const Stmt *S) {
  if (!S)
    return 0;
  switch (S->kind()) {
  case StmtKind::Block: {
    size_t Total = 0;
    for (const Stmt *Child : cast<BlockStmt>(S)->body())
      Total += countStatements(Child);
    return Total;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    return 1 + countStatements(If->thenStmt()) +
           countStatements(If->elseStmt());
  }
  case StmtKind::While:
    return 1 + countStatements(cast<WhileStmt>(S)->body());
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    return 1 + countStatements(For->init()) + countStatements(For->step()) +
           countStatements(For->body());
  }
  default:
    return 1;
  }
}

/// Stable per-task seed: mixing through StableHash decorrelates the
/// streams of adjacent indices (plain Seed + Index would make worker
/// RNGs start one step apart).
uint64_t perTaskSeed(uint64_t Seed, uint64_t Index, uint64_t Salt) {
  StableHash H;
  H.addU64(Seed);
  H.addU64(Index);
  H.addU64(Salt);
  return H.digest();
}

/// Builds one MethodSample from instantiated source. Returns false
/// (with the right counter bumped) when a filter rejects it.
bool buildSample(const std::string &Source, const std::string &MethodName,
                 const TestGenOptions &TraceGen, uint64_t TraceSeed,
                 TraceCache *Cache, CorpusStats &Stats, MethodSample &Out) {
  std::string Final = replaceIdentifier(Source, "FN", MethodName);
  DiagnosticSink Diags;
  std::optional<Program> Parsed = parseAndCheck(Final, Diags);
  if (!Parsed) {
    // Distinguish the external-reference failure mode by its message.
    bool External =
        Diags.str().find("undeclared function") != std::string::npos;
    if (External)
      ++Stats.ExternalRefFailures;
    else
      ++Stats.ParseFailures;
    return false;
  }

  auto Prog = std::make_shared<Program>(std::move(*Parsed));
  const FunctionDecl *Fn = Prog->findFunction(MethodName);
  if (!Fn || !Fn->Body) {
    ++Stats.ParseFailures;
    return false;
  }

  if (countStatements(Fn->Body) < 3) {
    ++Stats.TooSmall;
    return false;
  }

  TestGenOptions PerMethod = TraceGen;
  PerMethod.Seed = TraceSeed;
  CollectStats Collect;
  MethodTraces Traces =
      collectTracesCached(*Prog, *Fn, Final, PerMethod, Cache, &Collect);
  Stats.CacheHits += Collect.CacheHits;
  Stats.CacheMisses += Collect.CacheMisses;
  Stats.CacheBypassed += Collect.CacheBypasses;
  Stats.PhaseExploreSeconds += Collect.ExploreSeconds;
  Stats.PhaseSymbolicSeconds += Collect.SymbolicSeconds;
  Stats.PhaseMutateSeconds += Collect.MutateSeconds;
  Stats.PhaseRecordSeconds += Collect.RecordSeconds;
  Stats.PhaseReplaySeconds += Collect.ReplaySeconds;
  if (Collect.allTimedOut()) {
    ++Stats.TestgenTimeouts;
    return false;
  }
  if (Collect.allMemoryExceeded()) {
    ++Stats.TestgenMemoryBombs;
    return false;
  }
  if (Traces.Paths.empty()) {
    ++Stats.NoTraces;
    return false;
  }

  Out.Prog = Prog;
  Out.Fn = Fn;
  Out.Traces = std::move(Traces);
  Out.NameSubtokens = splitSubtokens(MethodName);
  ++Stats.Kept;
  return true;
}

/// Adds every counter and timing of \p From into \p Into (the
/// index-order reduction of per-worker stats).
void accumulateStats(CorpusStats &Into, const CorpusStats &From) {
  Into.Requested += From.Requested;
  Into.ParseFailures += From.ParseFailures;
  Into.ExternalRefFailures += From.ExternalRefFailures;
  Into.TestgenTimeouts += From.TestgenTimeouts;
  Into.TestgenMemoryBombs += From.TestgenMemoryBombs;
  Into.TooSmall += From.TooSmall;
  Into.NoTraces += From.NoTraces;
  Into.Kept += From.Kept;
  Into.CacheHits += From.CacheHits;
  Into.CacheMisses += From.CacheMisses;
  Into.CacheBypassed += From.CacheBypassed;
  Into.PhaseExploreSeconds += From.PhaseExploreSeconds;
  Into.PhaseSymbolicSeconds += From.PhaseSymbolicSeconds;
  Into.PhaseMutateSeconds += From.PhaseMutateSeconds;
  Into.PhaseRecordSeconds += From.PhaseRecordSeconds;
  Into.PhaseReplaySeconds += From.PhaseReplaySeconds;
}

} // namespace

std::vector<MethodSample>
liger::generateMethodCorpus(const CorpusOptions &Options,
                            CorpusStats *StatsOut) {
  // One independent slot per raw method: workers never touch shared
  // state, and the reduction below runs in index order, so the corpus
  // is a pure function of Options regardless of the thread count.
  struct SampleSlot {
    bool Kept = false;
    MethodSample Sample;
    CorpusStats Stats;
  };
  std::vector<SampleSlot> Slots(Options.NumMethods);

  // Force the magic statics (task library, interner-style pools)
  // before the parallel region.
  const std::vector<TaskSpec> &Library = taskLibrary();

  ThreadPool Pool(Options.Threads <= 1 ? 0 : Options.Threads);
  Pool.run(Options.NumMethods, [&](size_t Index) {
    SampleSlot &Slot = Slots[Index];
    ++Slot.Stats.Requested;
    Rng R(perTaskSeed(Options.Seed, Index, /*Salt=*/0x4D455448)); // "METH"
    const TaskSpec &Task = Library[R.nextBelow(Library.size())];
    const TaskVariant &Variant =
        Task.Variants[R.nextBelow(Task.Variants.size())];

    std::string Source = Variant.Source;
    if (R.nextBool(Options.DeadCodeProb))
      Source = injectDeadCode(Source, R);
    Source = mutateIdentifiers(Source, Task, Options.GenericNameProb,
                               Options.MisleadingNameProb, R);

    DefectKind Defect = DefectKind::None;
    double Draw = R.nextDouble();
    if (Draw < Options.SyntaxDefectRate)
      Defect = DefectKind::Syntax;
    else if (Draw < Options.SyntaxDefectRate + Options.ExternalRefRate)
      Defect = DefectKind::ExternalRef;
    else if (Draw < Options.SyntaxDefectRate + Options.ExternalRefRate +
                        Options.NonTerminationRate)
      Defect = DefectKind::NonTermination;
    else if (Draw < Options.SyntaxDefectRate + Options.ExternalRefRate +
                        Options.NonTerminationRate + Options.TooSmallRate)
      Defect = DefectKind::TooSmall;
    Source = applyDefect(std::move(Source), Defect, R);

    Slot.Kept = buildSample(Source, composeName(Task, R), Options.TraceGen,
                            Options.Seed * 7919 + Index, Options.Cache,
                            Slot.Stats, Slot.Sample);
  });

  CorpusStats Stats;
  std::vector<MethodSample> Samples;
  Samples.reserve(Options.NumMethods);
  for (SampleSlot &Slot : Slots) {
    accumulateStats(Stats, Slot.Stats);
    if (!Slot.Kept)
      continue;
    Slot.Sample.Project =
        "proj" + std::to_string(Samples.size() / Options.MethodsPerProject);
    Samples.push_back(std::move(Slot.Sample));
  }

  if (StatsOut)
    *StatsOut = Stats;
  return Samples;
}

std::vector<MethodSample>
liger::generateCosetCorpus(const CosetOptions &Options,
                           std::vector<std::string> &ClassNames,
                           CorpusStats *StatsOut) {
  ClassNames.clear();

  // Enumerate (problem, algorithm) classes up front; each class is one
  // independent parallel task with its own RNG stream and trace seeds,
  // reduced in class order.
  struct ClassSpec {
    const TaskSpec *Problem = nullptr;
    const TaskVariant *Variant = nullptr;
  };
  std::vector<ClassSpec> Classes;
  for (const TaskSpec *Problem : cosetProblems())
    for (const TaskVariant &Variant : Problem->Variants) {
      Classes.push_back({Problem, &Variant});
      ClassNames.push_back(Problem->Key + "/" + Variant.Algorithm);
    }

  struct ClassSlot {
    std::vector<MethodSample> Samples;
    CorpusStats Stats; // COSET pipeline only drops crashing programs
  };
  std::vector<ClassSlot> Slots(Classes.size());

  ThreadPool Pool(Options.Threads <= 1 ? 0 : Options.Threads);
  Pool.run(Classes.size(), [&](size_t C) {
    const ClassSpec &Spec = Classes[C];
    ClassSlot &Slot = Slots[C];
    Rng R(perTaskSeed(Options.Seed, C, /*Salt=*/0x434F5345)); // "COSE"
    size_t Made = 0;
    size_t Attempts = 0;
    while (Made < Options.ProgramsPerClass &&
           Attempts < Options.ProgramsPerClass * 3) {
      ++Attempts;
      ++Slot.Stats.Requested;
      std::string Source = Spec.Variant->Source;
      if (R.nextBool(Options.DeadCodeProb))
        Source = injectDeadCode(Source, R);
      Source = mutateIdentifiers(Source, *Spec.Problem,
                                 Options.GenericNameProb,
                                 Options.MisleadingNameProb, R);
      MethodSample Sample;
      if (!buildSample(Source, composeName(*Spec.Problem, R),
                       Options.TraceGen,
                       Options.Seed * 104729 + C * 131071 + Attempts,
                       Options.Cache, Slot.Stats, Sample))
        continue;
      Sample.ClassId = static_cast<int>(C);
      Slot.Samples.push_back(std::move(Sample));
      ++Made;
    }
  });

  CorpusStats Stats;
  std::vector<MethodSample> Samples;
  for (ClassSlot &Slot : Slots) {
    accumulateStats(Stats, Slot.Stats);
    for (MethodSample &Sample : Slot.Samples) {
      Sample.Project = "coset" + std::to_string(Samples.size() % 10);
      Samples.push_back(std::move(Sample));
    }
  }
  if (StatsOut)
    *StatsOut = Stats;
  return Samples;
}

uint64_t liger::corpusFingerprint(const std::vector<MethodSample> &Samples) {
  StableHash H;
  H.addU64(Samples.size());
  for (const MethodSample &Sample : Samples) {
    H.addString(Sample.Fn ? Sample.Fn->Name : std::string());
    H.addI64(Sample.ClassId);
    H.addString(Sample.Project);
    H.addU64(Sample.NameSubtokens.size());
    for (const std::string &Tok : Sample.NameSubtokens)
      H.addString(Tok);
    H.addU64(Sample.Traces.VarNames.size());
    for (const std::string &Name : Sample.Traces.VarNames)
      H.addString(Name);
    H.addU64(Sample.Traces.Paths.size());
    for (const BlendedTrace &Path : Sample.Traces.Paths) {
      H.addU64(Path.Symbolic.Steps.size());
      for (const SymbolicStep &Step : Path.Symbolic.Steps) {
        H.addU32(Step.Statement->id());
        H.addU8(static_cast<uint8_t>(Step.Kind));
      }
      auto AddState = [&H](const std::vector<Value> &Values) {
        H.addU64(Values.size());
        for (const Value &V : Values)
          H.addString(V.str());
      };
      H.addU64(Path.Concrete.size());
      for (const StateTrace &ST : Path.Concrete) {
        AddState(ST.Initial.Values);
        H.addU64(ST.States.size());
        for (const ProgramState &State : ST.States)
          AddState(State.Values);
      }
      H.addU64(Path.Inputs.size());
      for (const std::vector<Value> &Inputs : Path.Inputs)
        AddState(Inputs);
    }
  }
  return H.digest();
}

SplitCorpus liger::splitByProject(std::vector<MethodSample> Samples,
                                  double ValidFrac, double TestFrac,
                                  uint64_t Seed) {
  // Collect distinct projects in first-seen order, then shuffle them.
  std::vector<std::string> Projects;
  std::map<std::string, size_t> Index;
  for (const MethodSample &Sample : Samples)
    if (Index.emplace(Sample.Project, Projects.size()).second)
      Projects.push_back(Sample.Project);
  Rng R(Seed);
  R.shuffle(Projects);

  size_t NumValid =
      static_cast<size_t>(static_cast<double>(Projects.size()) * ValidFrac);
  size_t NumTest =
      static_cast<size_t>(static_cast<double>(Projects.size()) * TestFrac);
  std::set<std::string> ValidSet(Projects.begin(),
                                 Projects.begin() + NumValid);
  std::set<std::string> TestSet(Projects.begin() + NumValid,
                                Projects.begin() + NumValid + NumTest);

  SplitCorpus Split;
  for (MethodSample &Sample : Samples) {
    if (ValidSet.count(Sample.Project))
      Split.Valid.push_back(std::move(Sample));
    else if (TestSet.count(Sample.Project))
      Split.Test.push_back(std::move(Sample));
    else
      Split.Train.push_back(std::move(Sample));
  }
  return Split;
}
