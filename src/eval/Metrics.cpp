//===-- eval/Metrics.cpp - Evaluation metrics ------------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Metrics.h"

#include "support/Error.h"
#include "support/StringUtils.h"

#include <map>

using namespace liger;

SubtokenCounts
liger::countSubtokenMatches(const std::vector<std::string> &Predicted,
                            const std::vector<std::string> &Actual) {
  std::map<std::string, size_t> Wanted;
  for (const std::string &Token : Actual)
    ++Wanted[toLower(Token)];

  SubtokenCounts Counts;
  for (const std::string &Token : Predicted) {
    auto It = Wanted.find(toLower(Token));
    if (It != Wanted.end() && It->second > 0) {
      --It->second;
      ++Counts.TruePositive;
    } else {
      ++Counts.FalsePositive;
    }
  }
  for (const auto &Entry : Wanted)
    Counts.FalseNegative += Entry.second;
  return Counts;
}

void SubtokenScorer::add(const std::vector<std::string> &Predicted,
                         const std::vector<std::string> &Actual) {
  SubtokenCounts Counts = countSubtokenMatches(Predicted, Actual);
  Totals.TruePositive += Counts.TruePositive;
  Totals.FalsePositive += Counts.FalsePositive;
  Totals.FalseNegative += Counts.FalseNegative;
  ++Examples;
}

PrfScores SubtokenScorer::scores() const {
  PrfScores Out;
  double TP = static_cast<double>(Totals.TruePositive);
  double FP = static_cast<double>(Totals.FalsePositive);
  double FN = static_cast<double>(Totals.FalseNegative);
  if (TP + FP > 0)
    Out.Precision = 100.0 * TP / (TP + FP);
  if (TP + FN > 0)
    Out.Recall = 100.0 * TP / (TP + FN);
  if (Out.Precision + Out.Recall > 0)
    Out.F1 = 2.0 * Out.Precision * Out.Recall /
             (Out.Precision + Out.Recall);
  return Out;
}

ClassificationScorer::ClassificationScorer(size_t NumClasses)
    : Classes(NumClasses) {}

void ClassificationScorer::add(int Predicted, int Actual) {
  LIGER_CHECK(Actual >= 0 && static_cast<size_t>(Actual) < Classes.size(),
              "actual class out of range");
  ++Examples;
  if (Predicted == Actual) {
    ++Correct;
    ++Classes[static_cast<size_t>(Actual)].TruePositive;
    return;
  }
  ++Classes[static_cast<size_t>(Actual)].FalseNegative;
  if (Predicted >= 0 && static_cast<size_t>(Predicted) < Classes.size())
    ++Classes[static_cast<size_t>(Predicted)].FalsePositive;
}

double ClassificationScorer::accuracy() const {
  return Examples == 0 ? 0.0
                       : static_cast<double>(Correct) /
                             static_cast<double>(Examples);
}

double ClassificationScorer::macroF1() const {
  double Sum = 0;
  size_t Present = 0;
  for (const PerClass &C : Classes) {
    size_t Support = C.TruePositive + C.FalseNegative;
    if (Support == 0 && C.FalsePositive == 0)
      continue; // class absent from this evaluation
    ++Present;
    double TP = static_cast<double>(C.TruePositive);
    double Precision =
        TP + C.FalsePositive > 0 ? TP / (TP + C.FalsePositive) : 0.0;
    double Recall =
        TP + C.FalseNegative > 0 ? TP / (TP + C.FalseNegative) : 0.0;
    if (Precision + Recall > 0)
      Sum += 2.0 * Precision * Recall / (Precision + Recall);
  }
  return Present == 0 ? 0.0 : Sum / static_cast<double>(Present);
}
