//===-- eval/Metrics.h - Evaluation metrics ---------------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's metrics. For method name prediction (§6.1.1): precision,
/// recall, and F1 over case-insensitive sub-tokens, order-ignoring
/// (predicting "diffCompute" for computeDiff is perfect; "compute" has
/// full precision / low recall; "computeFileDiff" full recall / low
/// precision). Counts are aggregated micro-style (global TP/FP/FN, as
/// in code2seq's reference implementation). For semantics
/// classification (§6.2): accuracy and macro-averaged F1 over classes.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_EVAL_METRICS_H
#define LIGER_EVAL_METRICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace liger {

/// Precision / recall / F1 triple (percentages in [0, 100]).
struct PrfScores {
  double Precision = 0;
  double Recall = 0;
  double F1 = 0;
};

/// Multiset sub-token match counts for one prediction.
struct SubtokenCounts {
  size_t TruePositive = 0;
  size_t FalsePositive = 0;
  size_t FalseNegative = 0;
};

/// Compares predicted vs. actual sub-tokens (case-insensitive,
/// order-free, multiset semantics).
SubtokenCounts countSubtokenMatches(const std::vector<std::string> &Predicted,
                                    const std::vector<std::string> &Actual);

/// Accumulates micro-aggregated sub-token scores across a test set.
class SubtokenScorer {
public:
  void add(const std::vector<std::string> &Predicted,
           const std::vector<std::string> &Actual);

  PrfScores scores() const;
  size_t numExamples() const { return Examples; }

private:
  SubtokenCounts Totals;
  size_t Examples = 0;
};

/// Accumulates classification accuracy and macro F1.
class ClassificationScorer {
public:
  explicit ClassificationScorer(size_t NumClasses);

  void add(int Predicted, int Actual);

  /// Fraction correct in [0, 1].
  double accuracy() const;
  /// Macro-averaged F1 in [0, 1] over classes that appear.
  double macroF1() const;
  size_t numExamples() const { return Examples; }

private:
  struct PerClass {
    size_t TruePositive = 0;
    size_t FalsePositive = 0;
    size_t FalseNegative = 0;
  };
  std::vector<PerClass> Classes;
  size_t Correct = 0;
  size_t Examples = 0;
};

} // namespace liger

#endif // LIGER_EVAL_METRICS_H
