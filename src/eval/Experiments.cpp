//===-- eval/Experiments.cpp - Paper experiment drivers --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Experiments.h"

#include "models/Code2Seq.h"
#include "models/Code2Vec.h"
#include "models/Dypro.h"
#include "support/StringUtils.h"
#include "testgen/Coverage.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace liger;

//===----------------------------------------------------------------------===//
// ExperimentScale
//===----------------------------------------------------------------------===//

ExperimentScale ExperimentScale::fromArgs(int Argc, char **Argv) {
  ExperimentScale Scale;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto TakeSize = [&](const char *Key, size_t &Slot) {
      std::string Prefix = std::string("--") + Key + "=";
      if (!startsWith(Arg, Prefix))
        return false;
      Slot = static_cast<size_t>(
          std::strtoull(Arg.c_str() + Prefix.size(), nullptr, 10));
      return true;
    };
    if (Arg == "--verbose") {
      Scale.Verbose = true;
      continue;
    }
    if (Arg == "--resume") {
      Scale.Resume = true;
      continue;
    }
    if (Arg == "--batched-samples") {
      Scale.BatchedSamples = true;
      continue;
    }
    if (startsWith(Arg, "--checkpoint-dir=")) {
      Scale.CheckpointDir = Arg.substr(std::strlen("--checkpoint-dir="));
      continue;
    }
    if (startsWith(Arg, "--trace-cache-dir=")) {
      Scale.TraceCacheDir = Arg.substr(std::strlen("--trace-cache-dir="));
      Scale.CacheFlagsExplicit = true;
      continue;
    }
    if (startsWith(Arg, "--trace-cache=")) {
      std::string Mode = Arg.substr(std::strlen("--trace-cache="));
      if (!parseTraceCacheMode(Mode, Scale.CacheMode)) {
        std::fprintf(stderr,
                     "bad --trace-cache mode '%s' (off|inputs|full)\n",
                     Mode.c_str());
        std::exit(2);
      }
      Scale.CacheFlagsExplicit = true;
      continue;
    }
    size_t Tmp;
    if (TakeSize("methods", Scale.MethodsMed)) {
      Scale.MethodsLarge = Scale.MethodsMed * 2;
      continue;
    }
    if (TakeSize("methods-large", Scale.MethodsLarge) ||
        TakeSize("coset-per-class", Scale.CosetPerClass) ||
        TakeSize("epochs", Scale.Epochs) ||
        TakeSize("batch", Scale.BatchSize) ||
        TakeSize("hidden", Scale.Hidden) ||
        TakeSize("embed", Scale.EmbedDim) ||
        TakeSize("threads", Scale.Threads) ||
        TakeSize("lockstep-shards", Scale.LockstepShards) ||
        TakeSize("checkpoint-every", Scale.CheckpointEveryEpochs))
      continue;
    if (TakeSize("trace-cache-max-bytes", Tmp)) {
      Scale.TraceCacheMaxBytes = static_cast<uint64_t>(Tmp);
      Scale.CacheFlagsExplicit = true;
      continue;
    }
    if (TakeSize("paths", Tmp)) {
      Scale.TargetPaths = static_cast<unsigned>(Tmp);
      continue;
    }
    if (TakeSize("execs", Tmp)) {
      Scale.ExecutionsPerPath = static_cast<unsigned>(Tmp);
      continue;
    }
    if (TakeSize("seed", Tmp)) {
      Scale.Seed = Tmp;
      continue;
    }
    if (startsWith(Arg, "--lr=")) {
      Scale.LearningRate = std::strtof(Arg.c_str() + 5, nullptr);
      continue;
    }
    if (startsWith(Arg, "--benchmark"))
      continue; // tolerate google-benchmark flags when mixed
    std::fprintf(stderr, "unknown experiment flag: %s\n", Arg.c_str());
    std::exit(2);
  }
  // A directory without an explicit mode means "cache as much as
  // possible": full reuse.
  if (Scale.CacheMode == TraceCacheMode::Off && !Scale.TraceCacheDir.empty())
    Scale.CacheMode = TraceCacheMode::Full;
  if (Scale.CacheMode != TraceCacheMode::Off)
    Scale.Cache = std::make_shared<TraceCache>(
        Scale.CacheMode, Scale.TraceCacheDir, Scale.TraceCacheMaxBytes);
  return Scale;
}

TestGenOptions ExperimentScale::traceGenOptions() const {
  TestGenOptions Options;
  Options.TargetPaths = TargetPaths;
  Options.ExecutionsPerPath = ExecutionsPerPath;
  return Options;
}

TrainOptions ExperimentScale::trainOptions() const {
  TrainOptions Options;
  Options.Epochs = Epochs;
  Options.BatchSize = BatchSize;
  Options.LearningRate = LearningRate;
  Options.Seed = Seed;
  Options.Verbose = Verbose;
  Options.Threads = Threads;
  Options.BatchedSamples = BatchedSamples;
  Options.LockstepShards = LockstepShards;
  Options.CheckpointDir = CheckpointDir;
  Options.CheckpointEveryEpochs = CheckpointEveryEpochs;
  Options.Resume = Resume;
  return Options;
}

//===----------------------------------------------------------------------===//
// Trace transforms
//===----------------------------------------------------------------------===//

TraceTransform liger::reduceConcreteTransform(size_t K) {
  return [K](const MethodTraces &Traces, Rng &R) {
    return reduceConcreteTraces(Traces, K, R);
  };
}

TraceTransform liger::reduceSymbolicTransform(size_t K,
                                              size_t ConcretePerPath) {
  return [K, ConcretePerPath](const MethodTraces &Traces, Rng &R) {
    MethodTraces Capped = reduceConcreteTraces(Traces, ConcretePerPath, R);
    return reduceSymbolicTraces(Capped, K, R);
  };
}

std::vector<MethodSample>
liger::transformSamples(const std::vector<MethodSample> &Samples,
                        const TraceTransform &Transform, uint64_t Seed) {
  if (!Transform)
    return Samples;
  Rng R(Seed);
  std::vector<MethodSample> Out = Samples;
  for (MethodSample &Sample : Out)
    Sample.Traces = Transform(Sample.Traces, R);
  return Out;
}

void liger::traceBudget(const std::vector<MethodSample> &Samples,
                        double &AvgPaths, double &AvgExecs) {
  AvgPaths = AvgExecs = 0;
  if (Samples.empty())
    return;
  for (const MethodSample &Sample : Samples) {
    AvgPaths += static_cast<double>(Sample.Traces.Paths.size());
    AvgExecs += static_cast<double>(Sample.Traces.totalExecutions());
  }
  AvgPaths /= static_cast<double>(Samples.size());
  AvgExecs /= static_cast<double>(Samples.size());
}

//===----------------------------------------------------------------------===//
// Task construction
//===----------------------------------------------------------------------===//

namespace {

Code2VecConfig code2vecConfig(const ExperimentScale &Scale) {
  Code2VecConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.CodeDim = Scale.Hidden;
  return Config;
}

Code2SeqConfig code2seqConfig(const ExperimentScale &Scale) {
  Code2SeqConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  return Config;
}

LigerConfig ligerConfig(const ExperimentScale &Scale,
                        const LigerAblation &Ablation) {
  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  Config.UseStaticFeature = Ablation.StaticFeature;
  Config.UseDynamicFeature = Ablation.DynamicFeature;
  Config.UseFusionAttention = Ablation.FusionAttention;
  Config.MeanPoolPrograms = Ablation.MeanPool;
  Config.MaxConcretePerPath = Scale.ExecutionsPerPath;
  return Config;
}

DyproConfig dyproConfig(const ExperimentScale &Scale) {
  DyproConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  return Config;
}

const char *modelId(NameModel Model) {
  switch (Model) {
  case NameModel::Code2Vec:
    return "code2vec";
  case NameModel::Code2Seq:
    return "code2seq";
  case NameModel::Dypro:
    return "dypro";
  case NameModel::Liger:
    return "liger";
  }
  LIGER_UNREACHABLE("covered switch");
}

const char *modelId(ClassModel Model) {
  switch (Model) {
  case ClassModel::Code2Vec:
    return "code2vec";
  case ClassModel::Code2Seq:
    return "code2seq";
  case ClassModel::Dypro:
    return "dypro";
  case ClassModel::Liger:
    return "liger";
  }
  LIGER_UNREACHABLE("covered switch");
}

/// Scopes the experiment-wide checkpoint root to one (task, model)
/// run, so multi-model/multi-dataset binaries never collide on the
/// same state file.
void scopeCheckpointDir(TrainOptions &Opts, const std::string &Tag,
                        const char *Model) {
  if (!Opts.CheckpointDir.empty())
    Opts.CheckpointDir += "/" + Tag + "-" + Model;
}

/// Fills the shared vocabularies from a training split.
void buildVocabularies(const std::vector<MethodSample> &Train,
                       const ExperimentScale &Scale, Vocabulary &Joint,
                       Vocabulary *Target, Vocabulary &C2vTokens,
                       Vocabulary &C2vPaths, Vocabulary *C2vNames,
                       Vocabulary &C2sSubtokens, Vocabulary &C2sNodes) {
  Code2VecConfig C2v = code2vecConfig(Scale);
  Code2SeqConfig C2s = code2seqConfig(Scale);
  for (const MethodSample &Sample : Train) {
    addSampleToVocabulary(Sample, Joint);
    addVariableNamesToVocabulary(Sample, Joint);
    if (Target)
      addNameToVocabulary(Sample, *Target);
    addPathContextsToVocabulary(Sample, C2vTokens, C2vPaths, C2v);
    if (C2vNames)
      Code2VecNamePredictor::addNameToVocabulary(Sample, *C2vNames);
    addSeqPathContextsToVocabulary(Sample, C2sSubtokens, C2sNodes, C2s);
  }
  Joint.freeze();
  if (Target)
    Target->freeze();
  C2vTokens.freeze();
  C2vPaths.freeze();
  if (C2vNames)
    C2vNames->freeze();
  C2sSubtokens.freeze();
  C2sNodes.freeze();
}

} // namespace

NameTask liger::buildNameTask(const ExperimentScale &Scale, bool Large) {
  CorpusOptions Options;
  Options.NumMethods = Large ? Scale.MethodsLarge : Scale.MethodsMed;
  Options.TraceGen = Scale.traceGenOptions();
  Options.TraceGen.Scope = Large ? "large" : "med";
  Options.Seed = Scale.Seed + (Large ? 1000 : 0);
  Options.Threads = Scale.Threads;
  Options.Cache = Scale.Cache.get();

  NameTask Task;
  Task.Tag = Large ? "large" : "med";
  std::vector<MethodSample> Samples =
      generateMethodCorpus(Options, &Task.Stats);
  Task.Split = splitByProject(std::move(Samples), 0.15, 0.2,
                              Scale.Seed + (Large ? 11 : 10));
  buildVocabularies(Task.Split.Train, Scale, Task.Joint, &Task.Target,
                    Task.C2vTokens, Task.C2vPaths, &Task.C2vNames,
                    Task.C2sSubtokens, Task.C2sNodes);
  return Task;
}

CosetTask liger::buildCosetTask(const ExperimentScale &Scale) {
  CosetOptions Options;
  Options.ProgramsPerClass = Scale.CosetPerClass;
  Options.TraceGen = Scale.traceGenOptions();
  Options.TraceGen.Scope = "coset";
  Options.Seed = Scale.Seed + 2000;
  Options.Threads = Scale.Threads;
  Options.Cache = Scale.Cache.get();

  CosetTask Task;
  Task.Tag = "coset";
  std::vector<MethodSample> Samples =
      generateCosetCorpus(Options, Task.ClassNames);
  Task.NumClasses = Task.ClassNames.size();
  Task.Split = splitByProject(std::move(Samples), 0.15, 0.2, Scale.Seed + 12);
  buildVocabularies(Task.Split.Train, Scale, Task.Joint, nullptr,
                    Task.C2vTokens, Task.C2vPaths, nullptr,
                    Task.C2sSubtokens, Task.C2sNodes);
  return Task;
}

//===----------------------------------------------------------------------===//
// Name model runner
//===----------------------------------------------------------------------===//

NameRunResult liger::runNameModel(NameModel Model, const NameTask &Task,
                                  const ExperimentScale &Scale,
                                  const LigerAblation &Ablation,
                                  const TraceTransform &Transform) {
  std::vector<MethodSample> Train =
      transformSamples(Task.Split.Train, Transform, Scale.Seed + 100);
  std::vector<MethodSample> Valid =
      transformSamples(Task.Split.Valid, Transform, Scale.Seed + 101);
  std::vector<MethodSample> Test =
      transformSamples(Task.Split.Test, Transform, Scale.Seed + 102);

  NameRunResult Result;
  traceBudget(Test, Result.AvgPaths, Result.AvgExecutions);
  TrainOptions TrainOpts = Scale.trainOptions();
  scopeCheckpointDir(TrainOpts, Task.Tag, modelId(Model));

  switch (Model) {
  case NameModel::Code2Vec: {
    Code2VecNamePredictor Net(Task.C2vTokens, Task.C2vPaths, Task.C2vNames,
                              code2vecConfig(Scale), Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    Result.TrainSeconds =
        trainNameModel(Hooks, Train, Valid, TrainOpts).Seconds;
    Result.Test = evaluateNameModel(Hooks, Test);
    return Result;
  }
  case NameModel::Code2Seq: {
    Code2SeqNamePredictor Net(Task.C2sSubtokens, Task.C2sNodes, Task.Target,
                              code2seqConfig(Scale), Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    Result.TrainSeconds =
        trainNameModel(Hooks, Train, Valid, TrainOpts).Seconds;
    Result.Test = evaluateNameModel(Hooks, Test);
    return Result;
  }
  case NameModel::Dypro: {
    DyproNamePredictor Net(Task.Joint, Task.Target, dyproConfig(Scale),
                           Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    Result.TrainSeconds =
        trainNameModel(Hooks, Train, Valid, TrainOpts).Seconds;
    Result.Test = evaluateNameModel(Hooks, Test);
    return Result;
  }
  case NameModel::Liger: {
    LigerNamePredictor Net(Task.Joint, Task.Target,
                           ligerConfig(Scale, Ablation), Scale.Seed);
    NameModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.LossBatch = [&](const std::vector<const MethodSample *> &Group) {
      return Net.lossBatch(Group);
    };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    Result.TrainSeconds =
        trainNameModel(Hooks, Train, Valid, TrainOpts).Seconds;
    // Evaluate with attention introspection.
    SubtokenScorer Scorer;
    FusionStats Fusion;
    GraphArena Arena;
    GraphArena::Scope Scope(Arena);
    for (const MethodSample &Sample : Test) {
      Scorer.add(Net.predict(Sample, &Fusion), Sample.NameSubtokens);
      Arena.reset();
    }
    Result.Test = Scorer.scores();
    Result.StaticAttention = Fusion.staticMean();
    return Result;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

//===----------------------------------------------------------------------===//
// COSET model runner
//===----------------------------------------------------------------------===//

ClassRunResult liger::runCosetModel(ClassModel Model, const CosetTask &Task,
                                    const ExperimentScale &Scale,
                                    const LigerAblation &Ablation,
                                    const TraceTransform &Transform) {
  std::vector<MethodSample> Train =
      transformSamples(Task.Split.Train, Transform, Scale.Seed + 200);
  std::vector<MethodSample> Valid =
      transformSamples(Task.Split.Valid, Transform, Scale.Seed + 201);
  std::vector<MethodSample> Test =
      transformSamples(Task.Split.Test, Transform, Scale.Seed + 202);

  ClassRunResult Result;
  traceBudget(Test, Result.AvgPaths, Result.AvgExecutions);
  TrainOptions TrainOpts = Scale.trainOptions();
  scopeCheckpointDir(TrainOpts, Task.Tag, modelId(Model));

  auto Run = [&](auto &Net) {
    ClassModelHooks Hooks;
    Hooks.Loss = [&](const MethodSample &S) { return Net.loss(S); };
    Hooks.Predict = [&](const MethodSample &S) { return Net.predict(S); };
    Hooks.Params = &Net.params();
    Result.TrainSeconds =
        trainClassifier(Hooks, Train, Valid, Task.NumClasses, TrainOpts)
            .Seconds;
    Result.Test = evaluateClassifier(Hooks, Test, Task.NumClasses);
  };

  switch (Model) {
  case ClassModel::Code2Vec: {
    Code2VecClassifier Net(Task.C2vTokens, Task.C2vPaths, Task.NumClasses,
                           code2vecConfig(Scale), Scale.Seed);
    Run(Net);
    return Result;
  }
  case ClassModel::Code2Seq: {
    Code2SeqClassifier Net(Task.C2sSubtokens, Task.C2sNodes, Task.NumClasses,
                           code2seqConfig(Scale), Scale.Seed);
    Run(Net);
    return Result;
  }
  case ClassModel::Dypro: {
    DyproClassifier Net(Task.Joint, Task.NumClasses, dyproConfig(Scale),
                        Scale.Seed);
    Run(Net);
    return Result;
  }
  case ClassModel::Liger: {
    LigerClassifier Net(Task.Joint, Task.NumClasses,
                        ligerConfig(Scale, Ablation), Scale.Seed);
    Run(Net);
    return Result;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}
