//===-- eval/Experiments.h - Paper experiment drivers -----------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end drivers for every table and figure of the paper's
/// evaluation (§6), shared by the bench/ binaries:
///
///  - buildNameTask / runNameModel: Table 2, Figures 6, 8, 9, 10, 11
///    (method name prediction on the Java-med / Java-large substitutes,
///    with trace-reduction transforms and ablation switches);
///  - buildCosetTask / runCosetModel: Table 3 and Figure 7;
///  - generateMethodCorpus stats: Table 1.
///
/// Scale: paper-size corpora and models are replaced by CPU-feasible
/// defaults; ExperimentScale holds every knob and parses command-line
/// overrides (--methods=N --epochs=N --hidden=N --seed=N ...).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_EVAL_EXPERIMENTS_H
#define LIGER_EVAL_EXPERIMENTS_H

#include "dataset/Corpus.h"
#include "eval/Training.h"
#include "models/Liger.h"
#include "testgen/TraceCache.h"

#include <memory>

namespace liger {

/// Every experiment knob with CPU-scale defaults.
struct ExperimentScale {
  size_t MethodsMed = 150;   ///< Raw methods, "Java-med" substitute.
  size_t MethodsLarge = 300; ///< Raw methods, "Java-large" substitute.
  size_t CosetPerClass = 8;  ///< Programs per (problem, algorithm).
  size_t Epochs = 6;
  size_t BatchSize = 8;
  float LearningRate = 4e-3f;
  size_t Hidden = 24;
  size_t EmbedDim = 24;
  unsigned TargetPaths = 8;       ///< Symbolic traces/method (paper: 20).
  unsigned ExecutionsPerPath = 5; ///< Concrete traces/path (paper: 5).
  uint64_t Seed = 7;
  size_t Threads = 1; ///< Training worker threads (results invariant).
  /// Train models exposing a LossBatch hook (currently LIGER name
  /// prediction) with lockstep-batched mini-batch graphs
  /// (--batched-samples; see TrainOptions::BatchedSamples).
  bool BatchedSamples = false;
  /// Lockstep shards per mini-batch under --batched-samples
  /// (--lockstep-shards=N; see TrainOptions::LockstepShards). The
  /// units --threads distributes; results are thread-count invariant.
  size_t LockstepShards = 4;
  /// Evict least-recently-used on-disk trace-cache entries once the
  /// cache directory exceeds this many bytes
  /// (--trace-cache-max-bytes=N; 0 = unbounded).
  uint64_t TraceCacheMaxBytes = 0;
  bool Verbose = false;
  /// Root directory for crash-safe training checkpoints (empty =
  /// disabled). Each trained model checkpoints under its own
  /// "<tag>-<model>" subdirectory, so one directory serves a whole
  /// multi-model, multi-dataset experiment binary.
  std::string CheckpointDir;
  /// Write a state checkpoint every N completed epochs.
  size_t CheckpointEveryEpochs = 1;
  /// Resume every training run from its state checkpoint when present.
  bool Resume = false;
  /// Trace-cache mode (--trace-cache=off|inputs|full). Giving
  /// --trace-cache-dir without a mode implies Full.
  TraceCacheMode CacheMode = TraceCacheMode::Off;
  /// On-disk trace-cache directory (--trace-cache-dir=PATH; empty =
  /// memory-only when a mode is set).
  std::string TraceCacheDir;
  /// The cache instance built from the two knobs above (shared by all
  /// corpora of one experiment binary; null when CacheMode is Off).
  std::shared_ptr<TraceCache> Cache;
  /// True when the user passed any --trace-cache flag, so defaults
  /// applied by binaries (the figure benches share one on-disk cache
  /// unless told otherwise) never override an explicit choice —
  /// including an explicit --trace-cache=off.
  bool CacheFlagsExplicit = false;

  /// Parses --key=value overrides (unknown keys are fatal).
  static ExperimentScale fromArgs(int Argc, char **Argv);

  /// Trace-collection options derived from this scale.
  TestGenOptions traceGenOptions() const;
  /// Training options derived from this scale.
  TrainOptions trainOptions() const;
};

/// A transform applied to every sample's traces (train/valid/test) —
/// the reduction sweeps of §6.1.2. Null means "no reduction".
using TraceTransform =
    std::function<MethodTraces(const MethodTraces &, Rng &)>;

/// Keep at most K concrete traces per path (Fig. 6a/6b x-axis).
TraceTransform reduceConcreteTransform(size_t K);
/// Keep at most K symbolic traces, line coverage preserved while
/// possible (Fig. 6c/6d x-axis); concrete traces per path first capped
/// at \p ConcretePerPath (the paper uses 3 of the original 5).
TraceTransform reduceSymbolicTransform(size_t K, size_t ConcretePerPath);

/// Everything a name-prediction experiment needs.
struct NameTask {
  std::string Tag; ///< "med"/"large"; names the checkpoint subdirectory.
  SplitCorpus Split;
  CorpusStats Stats;
  Vocabulary Joint;   ///< Ds ∪ Dd ∪ variable names (LIGER, DYPRO).
  Vocabulary Target;  ///< Method-name sub-tokens.
  Vocabulary C2vTokens, C2vPaths, C2vNames; ///< code2vec vocabularies.
  Vocabulary C2sSubtokens, C2sNodes;        ///< code2seq vocabularies.
};

/// Generates and prepares the corpus (\p Large selects the bigger
/// substitute). Vocabularies are built from the training split.
NameTask buildNameTask(const ExperimentScale &Scale, bool Large);

/// Which name model to run.
enum class NameModel { Code2Vec, Code2Seq, Dypro, Liger };

/// LIGER ablation switches (defaults = full model).
struct LigerAblation {
  bool StaticFeature = true;
  bool DynamicFeature = true;
  bool FusionAttention = true;
  bool MeanPool = false;
};

/// Result of one name-model run.
struct NameRunResult {
  PrfScores Test;
  double TrainSeconds = 0;
  /// Mean fusion-attention weight on the symbolic dimension over the
  /// test set (LIGER only; the §6.1.2 introspection).
  double StaticAttention = 0;
  /// Average symbolic traces and concrete executions per test method
  /// (after transforms) — the data-budget axis of the figures.
  double AvgPaths = 0;
  double AvgExecutions = 0;
};

/// Trains and evaluates one name model end to end.
NameRunResult runNameModel(NameModel Model, const NameTask &Task,
                           const ExperimentScale &Scale,
                           const LigerAblation &Ablation = {},
                           const TraceTransform &Transform = nullptr);

/// Everything a COSET-style experiment needs.
struct CosetTask {
  std::string Tag; ///< Names the checkpoint subdirectory.
  SplitCorpus Split;
  std::vector<std::string> ClassNames;
  size_t NumClasses = 0;
  Vocabulary Joint;
  Vocabulary C2vTokens, C2vPaths;
  Vocabulary C2sSubtokens, C2sNodes;
};

/// Generates and prepares the COSET substitute.
CosetTask buildCosetTask(const ExperimentScale &Scale);

/// Which classifier to run.
enum class ClassModel { Code2Vec, Code2Seq, Dypro, Liger };

/// Result of one classification run.
struct ClassRunResult {
  ClassScores Test;
  double TrainSeconds = 0;
  double AvgPaths = 0;
  double AvgExecutions = 0;
};

/// Trains and evaluates one classifier end to end.
ClassRunResult runCosetModel(ClassModel Model, const CosetTask &Task,
                             const ExperimentScale &Scale,
                             const LigerAblation &Ablation = {},
                             const TraceTransform &Transform = nullptr);

/// Applies \p Transform to a copy of \p Samples (identity when null).
std::vector<MethodSample>
transformSamples(const std::vector<MethodSample> &Samples,
                 const TraceTransform &Transform, uint64_t Seed);

/// Mean paths / executions per sample (the figures' x-axis bookkeeping).
void traceBudget(const std::vector<MethodSample> &Samples, double &AvgPaths,
                 double &AvgExecs);

} // namespace liger

#endif // LIGER_EVAL_EXPERIMENTS_H
