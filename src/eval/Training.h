//===-- eval/Training.h - Model-agnostic training loops ---------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Training and evaluation loops shared across LIGER, DYPRO, code2vec,
/// and code2seq. Models plug in through small hook structs (loss,
/// predict, parameter store), mirroring the paper's setup: Adam,
/// mini-batches, best-on-validation selection.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_EVAL_TRAINING_H
#define LIGER_EVAL_TRAINING_H

#include "eval/Metrics.h"
#include "models/Common.h"
#include "nn/Optim.h"

#include <functional>

namespace liger {

/// Training configuration.
struct TrainOptions {
  size_t Epochs = 6;
  size_t BatchSize = 8;
  float LearningRate = 2e-3f;
  uint64_t Seed = 1;
  bool Verbose = false;
  /// Select the epoch with the best validation score (F1 or accuracy);
  /// requires a non-empty validation set.
  bool SelectBestOnValidation = true;
  /// Worker threads within a mini-batch: per-sample graphs, or the
  /// LockstepShards shard graphs under BatchedSamples. Results are
  /// bitwise-identical for any value: every sample's (or shard's)
  /// gradient lands in its own accumulator, and accumulators are
  /// reduced in sample order on the calling thread. 0 or 1 = serial.
  size_t Threads = 1;
  /// Clip the global gradient norm before each Adam step (0 = off).
  float ClipNorm = 0.0f;
  /// Directory for crash-safe training checkpoints (empty = disabled;
  /// created on demand). "state.ckpt" holds the full training state —
  /// parameters, Adam moments and step count, shuffle-Rng state, epoch
  /// cursor, best-on-validation bookkeeping — written atomically after
  /// each checkpointed epoch; "best.ckpt" holds the best-on-validation
  /// parameters as an inference-ready params-only snapshot.
  std::string CheckpointDir;
  /// Write state.ckpt every N completed epochs (and always after the
  /// final one). Best-on-validation snapshots are written whenever the
  /// validation score improves, regardless of cadence.
  size_t CheckpointEveryEpochs = 1;
  /// Resume from CheckpointDir/state.ckpt when it exists; training
  /// then restarts at the first incomplete epoch and finishes bitwise
  /// identical to an uninterrupted run (for any Threads value). A
  /// missing state file starts a fresh run; a corrupt one is fatal.
  bool Resume = false;
  /// Optional hook called after every optimizer step with the 0-based
  /// epoch and the batch index within it (progress reporting; tests
  /// use it to kill a run mid-epoch).
  std::function<void(size_t Epoch, size_t Batch)> StepHook;
  /// Build each mini-batch as lockstep graphs through the model's
  /// LossBatch hook (same-timestep samples share matmul-backed batch
  /// ops) instead of per-sample graphs. Requires the hook;
  /// deterministic, but a distinct gradient-accumulation order from
  /// the per-sample-sink mode, so the two modes are not bitwise
  /// comparable. Ignored (with the per-sample path) by models without
  /// a LossBatch hook and by the classifier driver.
  bool BatchedSamples = false;
  /// Under BatchedSamples, split each mini-batch into this many
  /// contiguous sample shards, each built and differentiated as its
  /// own lockstep graph — the units the ThreadPool distributes when
  /// Threads > 1. The partition depends only on the batch size (never
  /// on Threads), and shard sinks are reduced in shard order on the
  /// calling thread, so losses, gradients, and final weights are
  /// bitwise-identical for any Threads value. Clamped to the batch
  /// size; 1 = one graph per batch (the pre-sharding behavior).
  size_t LockstepShards = 4;
};

/// Batched loss hook: per-sample mean losses for a whole mini-batch,
/// built as one lockstep graph (see SeqDecoder::lossBatch).
using BatchLossFn =
    std::function<std::vector<Var>(const std::vector<const MethodSample *> &)>;

/// Hooks for a method-name prediction model.
struct NameModelHooks {
  std::function<Var(const MethodSample &)> Loss;
  /// Optional batched variant of Loss (TrainOptions::BatchedSamples).
  BatchLossFn LossBatch;
  std::function<std::vector<std::string>(const MethodSample &)> Predict;
  ParamStore *Params = nullptr;
};

/// Hooks for a classification model.
struct ClassModelHooks {
  std::function<Var(const MethodSample &)> Loss;
  std::function<int(const MethodSample &)> Predict;
  ParamStore *Params = nullptr;
};

/// Result of one training run.
struct TrainResult {
  double FinalTrainLoss = 0;
  double BestValidScore = 0; ///< F1 (names) or accuracy (classes).
  size_t BestEpoch = 0;
  double Seconds = 0;
  size_t StartEpoch = 0; ///< First epoch this run executed (resume).
  bool Resumed = false;  ///< Whether a state checkpoint was restored.
};

/// Evaluates a name model on \p Samples.
PrfScores evaluateNameModel(const NameModelHooks &Hooks,
                            const std::vector<MethodSample> &Samples);

/// Trains a name model; restores the best-validation parameters.
TrainResult trainNameModel(const NameModelHooks &Hooks,
                           const std::vector<MethodSample> &Train,
                           const std::vector<MethodSample> &Valid,
                           const TrainOptions &Options);

/// Evaluates a classifier; \p NumClasses sizes the scorer.
struct ClassScores {
  double Accuracy = 0;
  double MacroF1 = 0;
};
ClassScores evaluateClassifier(const ClassModelHooks &Hooks,
                               const std::vector<MethodSample> &Samples,
                               size_t NumClasses);

/// Trains a classifier; restores the best-validation parameters.
TrainResult trainClassifier(const ClassModelHooks &Hooks,
                            const std::vector<MethodSample> &Train,
                            const std::vector<MethodSample> &Valid,
                            size_t NumClasses, const TrainOptions &Options);

} // namespace liger

#endif // LIGER_EVAL_TRAINING_H
