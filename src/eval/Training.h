//===-- eval/Training.h - Model-agnostic training loops ---------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Training and evaluation loops shared across LIGER, DYPRO, code2vec,
/// and code2seq. Models plug in through small hook structs (loss,
/// predict, parameter store), mirroring the paper's setup: Adam,
/// mini-batches, best-on-validation selection.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_EVAL_TRAINING_H
#define LIGER_EVAL_TRAINING_H

#include "eval/Metrics.h"
#include "models/Common.h"
#include "nn/Optim.h"

#include <functional>

namespace liger {

/// Training configuration.
struct TrainOptions {
  size_t Epochs = 6;
  size_t BatchSize = 8;
  float LearningRate = 2e-3f;
  uint64_t Seed = 1;
  bool Verbose = false;
  /// Select the epoch with the best validation score (F1 or accuracy);
  /// requires a non-empty validation set.
  bool SelectBestOnValidation = true;
  /// Worker threads building/differentiating sample graphs within a
  /// mini-batch. Results are bitwise-identical for any value: every
  /// sample's gradient lands in its own accumulator, and accumulators
  /// are reduced in sample order on the calling thread. 0 or 1 = serial.
  size_t Threads = 1;
  /// Clip the global gradient norm before each Adam step (0 = off).
  float ClipNorm = 0.0f;
};

/// Hooks for a method-name prediction model.
struct NameModelHooks {
  std::function<Var(const MethodSample &)> Loss;
  std::function<std::vector<std::string>(const MethodSample &)> Predict;
  ParamStore *Params = nullptr;
};

/// Hooks for a classification model.
struct ClassModelHooks {
  std::function<Var(const MethodSample &)> Loss;
  std::function<int(const MethodSample &)> Predict;
  ParamStore *Params = nullptr;
};

/// Result of one training run.
struct TrainResult {
  double FinalTrainLoss = 0;
  double BestValidScore = 0; ///< F1 (names) or accuracy (classes).
  size_t BestEpoch = 0;
  double Seconds = 0;
};

/// Evaluates a name model on \p Samples.
PrfScores evaluateNameModel(const NameModelHooks &Hooks,
                            const std::vector<MethodSample> &Samples);

/// Trains a name model; restores the best-validation parameters.
TrainResult trainNameModel(const NameModelHooks &Hooks,
                           const std::vector<MethodSample> &Train,
                           const std::vector<MethodSample> &Valid,
                           const TrainOptions &Options);

/// Evaluates a classifier; \p NumClasses sizes the scorer.
struct ClassScores {
  double Accuracy = 0;
  double MacroF1 = 0;
};
ClassScores evaluateClassifier(const ClassModelHooks &Hooks,
                               const std::vector<MethodSample> &Samples,
                               size_t NumClasses);

/// Trains a classifier; restores the best-validation parameters.
TrainResult trainClassifier(const ClassModelHooks &Hooks,
                            const std::vector<MethodSample> &Train,
                            const std::vector<MethodSample> &Valid,
                            size_t NumClasses, const TrainOptions &Options);

} // namespace liger

#endif // LIGER_EVAL_TRAINING_H
