//===-- eval/Training.cpp - Model-agnostic training loops ------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Training.h"

#include "support/Stopwatch.h"

#include <cstdio>

using namespace liger;

namespace {

std::vector<Tensor> snapshotParams(const ParamStore &Store) {
  std::vector<Tensor> Out;
  Out.reserve(Store.params().size());
  for (const Var &P : Store.params())
    Out.push_back(P->Value);
  return Out;
}

void restoreParams(ParamStore &Store, const std::vector<Tensor> &Snapshot) {
  LIGER_CHECK(Snapshot.size() == Store.params().size(),
              "snapshot/store size mismatch");
  for (size_t I = 0; I < Snapshot.size(); ++I)
    Store.params()[I]->Value = Snapshot[I];
}

/// Shared epoch loop: shuffled mini-batches, mean loss, Adam step.
template <typename LossFn>
double runEpoch(const std::vector<MethodSample> &Train, size_t BatchSize,
                const LossFn &Loss, Adam &Opt, Rng &R) {
  std::vector<size_t> Order(Train.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  R.shuffle(Order);

  double EpochLoss = 0;
  size_t NumLosses = 0;
  for (size_t Begin = 0; Begin < Order.size(); Begin += BatchSize) {
    size_t End = std::min(Order.size(), Begin + BatchSize);
    std::vector<Var> Losses;
    for (size_t I = Begin; I < End; ++I)
      Losses.push_back(Loss(Train[Order[I]]));
    Var Batch = meanLoss(Losses);
    EpochLoss += static_cast<double>(Batch->Value[0]) *
                 static_cast<double>(Losses.size());
    NumLosses += Losses.size();
    backward(Batch);
    Opt.step();
  }
  return NumLosses == 0 ? 0.0 : EpochLoss / static_cast<double>(NumLosses);
}

} // namespace

PrfScores liger::evaluateNameModel(const NameModelHooks &Hooks,
                                   const std::vector<MethodSample> &Samples) {
  SubtokenScorer Scorer;
  for (const MethodSample &Sample : Samples)
    Scorer.add(Hooks.Predict(Sample), Sample.NameSubtokens);
  return Scorer.scores();
}

TrainResult liger::trainNameModel(const NameModelHooks &Hooks,
                                  const std::vector<MethodSample> &Train,
                                  const std::vector<MethodSample> &Valid,
                                  const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  Stopwatch Timer;
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = Options.LearningRate;
  Adam Opt(*Hooks.Params, AdamOpts);
  Rng R(Options.Seed);

  TrainResult Result;
  std::vector<Tensor> Best;
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();

  for (size_t Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    Result.FinalTrainLoss =
        runEpoch(Train, Options.BatchSize, Hooks.Loss, Opt, R);
    if (TrackBest) {
      PrfScores ValidScores = evaluateNameModel(Hooks, Valid);
      if (ValidScores.F1 >= Result.BestValidScore) {
        Result.BestValidScore = ValidScores.F1;
        Result.BestEpoch = Epoch;
        Best = snapshotParams(*Hooks.Params);
      }
      if (Options.Verbose)
        std::printf("  epoch %zu  loss %.4f  valid F1 %.2f\n", Epoch,
                    Result.FinalTrainLoss, ValidScores.F1);
    } else if (Options.Verbose) {
      std::printf("  epoch %zu  loss %.4f\n", Epoch, Result.FinalTrainLoss);
    }
  }
  if (TrackBest && !Best.empty())
    restoreParams(*Hooks.Params, Best);
  Result.Seconds = Timer.seconds();
  return Result;
}

ClassScores liger::evaluateClassifier(const ClassModelHooks &Hooks,
                                      const std::vector<MethodSample> &Samples,
                                      size_t NumClasses) {
  ClassificationScorer Scorer(NumClasses);
  for (const MethodSample &Sample : Samples)
    Scorer.add(Hooks.Predict(Sample), Sample.ClassId);
  ClassScores Out;
  Out.Accuracy = Scorer.accuracy();
  Out.MacroF1 = Scorer.macroF1();
  return Out;
}

TrainResult liger::trainClassifier(const ClassModelHooks &Hooks,
                                   const std::vector<MethodSample> &Train,
                                   const std::vector<MethodSample> &Valid,
                                   size_t NumClasses,
                                   const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  Stopwatch Timer;
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = Options.LearningRate;
  Adam Opt(*Hooks.Params, AdamOpts);
  Rng R(Options.Seed);

  TrainResult Result;
  std::vector<Tensor> Best;
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();

  for (size_t Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    Result.FinalTrainLoss =
        runEpoch(Train, Options.BatchSize, Hooks.Loss, Opt, R);
    if (TrackBest) {
      ClassScores ValidScores =
          evaluateClassifier(Hooks, Valid, NumClasses);
      if (ValidScores.Accuracy >= Result.BestValidScore) {
        Result.BestValidScore = ValidScores.Accuracy;
        Result.BestEpoch = Epoch;
        Best = snapshotParams(*Hooks.Params);
      }
      if (Options.Verbose)
        std::printf("  epoch %zu  loss %.4f  valid acc %.3f\n", Epoch,
                    Result.FinalTrainLoss, ValidScores.Accuracy);
    } else if (Options.Verbose) {
      std::printf("  epoch %zu  loss %.4f\n", Epoch, Result.FinalTrainLoss);
    }
  }
  if (TrackBest && !Best.empty())
    restoreParams(*Hooks.Params, Best);
  Result.Seconds = Timer.seconds();
  return Result;
}
