//===-- eval/Training.cpp - Model-agnostic training loops ------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Training.h"

#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <memory>

using namespace liger;

namespace {

std::vector<Tensor> snapshotParams(const ParamStore &Store) {
  std::vector<Tensor> Out;
  Out.reserve(Store.params().size());
  for (const Var &P : Store.params())
    Out.push_back(P->Value);
  return Out;
}

void restoreParams(ParamStore &Store, const std::vector<Tensor> &Snapshot) {
  LIGER_CHECK(Snapshot.size() == Store.params().size(),
              "snapshot/store size mismatch");
  for (size_t I = 0; I < Snapshot.size(); ++I)
    Store.params()[I]->Value = Snapshot[I];
}

/// Shared epoch loop: shuffled mini-batches, mean loss, Adam step.
///
/// Each sample in a batch is processed independently — its graph is
/// built and differentiated into a per-sample GradSink, and its arena
/// is reset immediately afterwards — so the samples of a batch can run
/// on pool workers concurrently (parameters are read-only during the
/// batch). The calling thread then reduces the sinks in sample-index
/// order, scales by 1/B, and steps Adam once. Because the per-sample
/// work and the reduction order are independent of which thread ran
/// which sample, the result is bitwise-identical for any thread count.
template <typename LossFn>
double runEpoch(const std::vector<MethodSample> &Train, size_t BatchSize,
                const LossFn &Loss, ParamStore &Store, Adam &Opt, Rng &R,
                ThreadPool *Pool) {
  std::vector<size_t> Order(Train.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  R.shuffle(Order);

  // Serial (and pool-of-zero) execution runs inline on this thread;
  // scope a dedicated arena so per-sample resets cannot clobber graph
  // nodes the caller may hold on the thread's default arena. Pool
  // workers fall back to their own per-thread default arenas.
  GraphArena EpochArena;
  GraphArena::Scope EpochScope(EpochArena);

  size_t MaxBatch = std::min(BatchSize, Order.size());
  std::vector<GradSink> Sinks(MaxBatch);
  std::vector<double> SampleLoss(MaxBatch);

  double EpochLoss = 0;
  for (size_t Begin = 0; Begin < Order.size(); Begin += BatchSize) {
    size_t B = std::min(Order.size(), Begin + BatchSize) - Begin;
    auto Work = [&](size_t K) {
      // Clearing here (not after the reduction) returns the sink's
      // buffers to the pool of the thread that will refill it.
      Sinks[K].clear();
      Var SampleVar = Loss(Train[Order[Begin + K]]);
      SampleLoss[K] = static_cast<double>(SampleVar->Value[0]);
      backward(SampleVar, Sinks[K]);
      GraphArena::current().reset();
    };
    if (Pool)
      Pool->run(B, Work);
    else
      for (size_t K = 0; K < B; ++K)
        Work(K);

    for (size_t K = 0; K < B; ++K) {
      Store.accumulateSink(Sinks[K]);
      EpochLoss += SampleLoss[K];
    }
    Store.scaleGrads(1.0f / static_cast<float>(B));
    Opt.step();
  }
  return Order.empty() ? 0.0 : EpochLoss / static_cast<double>(Order.size());
}

/// The worker pool for \p Options, or null for inline execution.
std::unique_ptr<ThreadPool> makePool(const TrainOptions &Options) {
  if (Options.Threads <= 1)
    return nullptr;
  return std::make_unique<ThreadPool>(Options.Threads);
}

} // namespace

PrfScores liger::evaluateNameModel(const NameModelHooks &Hooks,
                                   const std::vector<MethodSample> &Samples) {
  SubtokenScorer Scorer;
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (const MethodSample &Sample : Samples) {
    Scorer.add(Hooks.Predict(Sample), Sample.NameSubtokens);
    Arena.reset();
  }
  return Scorer.scores();
}

TrainResult liger::trainNameModel(const NameModelHooks &Hooks,
                                  const std::vector<MethodSample> &Train,
                                  const std::vector<MethodSample> &Valid,
                                  const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  Stopwatch Timer;
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = Options.LearningRate;
  AdamOpts.ClipNorm = Options.ClipNorm;
  Adam Opt(*Hooks.Params, AdamOpts);
  Rng R(Options.Seed);
  std::unique_ptr<ThreadPool> Pool = makePool(Options);

  TrainResult Result;
  std::vector<Tensor> Best;
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();

  for (size_t Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    Result.FinalTrainLoss = runEpoch(Train, Options.BatchSize, Hooks.Loss,
                                     *Hooks.Params, Opt, R, Pool.get());
    if (TrackBest) {
      PrfScores ValidScores = evaluateNameModel(Hooks, Valid);
      if (ValidScores.F1 >= Result.BestValidScore) {
        Result.BestValidScore = ValidScores.F1;
        Result.BestEpoch = Epoch;
        Best = snapshotParams(*Hooks.Params);
      }
      if (Options.Verbose)
        std::printf("  epoch %zu  loss %.4f  valid F1 %.2f\n", Epoch,
                    Result.FinalTrainLoss, ValidScores.F1);
    } else if (Options.Verbose) {
      std::printf("  epoch %zu  loss %.4f\n", Epoch, Result.FinalTrainLoss);
    }
  }
  if (TrackBest && !Best.empty())
    restoreParams(*Hooks.Params, Best);
  Result.Seconds = Timer.seconds();
  return Result;
}

ClassScores liger::evaluateClassifier(const ClassModelHooks &Hooks,
                                      const std::vector<MethodSample> &Samples,
                                      size_t NumClasses) {
  ClassificationScorer Scorer(NumClasses);
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (const MethodSample &Sample : Samples) {
    Scorer.add(Hooks.Predict(Sample), Sample.ClassId);
    Arena.reset();
  }
  ClassScores Out;
  Out.Accuracy = Scorer.accuracy();
  Out.MacroF1 = Scorer.macroF1();
  return Out;
}

TrainResult liger::trainClassifier(const ClassModelHooks &Hooks,
                                   const std::vector<MethodSample> &Train,
                                   const std::vector<MethodSample> &Valid,
                                   size_t NumClasses,
                                   const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  Stopwatch Timer;
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = Options.LearningRate;
  AdamOpts.ClipNorm = Options.ClipNorm;
  Adam Opt(*Hooks.Params, AdamOpts);
  Rng R(Options.Seed);
  std::unique_ptr<ThreadPool> Pool = makePool(Options);

  TrainResult Result;
  std::vector<Tensor> Best;
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();

  for (size_t Epoch = 0; Epoch < Options.Epochs; ++Epoch) {
    Result.FinalTrainLoss = runEpoch(Train, Options.BatchSize, Hooks.Loss,
                                     *Hooks.Params, Opt, R, Pool.get());
    if (TrackBest) {
      ClassScores ValidScores =
          evaluateClassifier(Hooks, Valid, NumClasses);
      if (ValidScores.Accuracy >= Result.BestValidScore) {
        Result.BestValidScore = ValidScores.Accuracy;
        Result.BestEpoch = Epoch;
        Best = snapshotParams(*Hooks.Params);
      }
      if (Options.Verbose)
        std::printf("  epoch %zu  loss %.4f  valid acc %.3f\n", Epoch,
                    Result.FinalTrainLoss, ValidScores.Accuracy);
    } else if (Options.Verbose) {
      std::printf("  epoch %zu  loss %.4f\n", Epoch, Result.FinalTrainLoss);
    }
  }
  if (TrackBest && !Best.empty())
    restoreParams(*Hooks.Params, Best);
  Result.Seconds = Timer.seconds();
  return Result;
}
