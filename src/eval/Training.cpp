//===-- eval/Training.cpp - Model-agnostic training loops ------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "eval/Training.h"

#include "nn/Checkpoint.h"
#include "support/BinaryIO.h"
#include "support/Stopwatch.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <memory>

using namespace liger;

namespace {

std::vector<Tensor> snapshotParams(const ParamStore &Store) {
  std::vector<Tensor> Out;
  Out.reserve(Store.params().size());
  for (const Var &P : Store.params())
    Out.push_back(P->Value);
  return Out;
}

void restoreParams(ParamStore &Store, const std::vector<Tensor> &Snapshot) {
  LIGER_CHECK(Snapshot.size() == Store.params().size(),
              "snapshot/store size mismatch");
  for (size_t I = 0; I < Snapshot.size(); ++I)
    Store.params()[I]->Value = Snapshot[I];
}

/// Shared epoch loop: shuffled mini-batches, mean loss, Adam step.
///
/// Each sample in a batch is processed independently — its graph is
/// built and differentiated into a per-sample GradSink, and its arena
/// is reset immediately afterwards — so the samples of a batch can run
/// on pool workers concurrently (parameters are read-only during the
/// batch). The calling thread then reduces the sinks in sample-index
/// order, scales by 1/B, and steps Adam once. Because the per-sample
/// work and the reduction order are independent of which thread ran
/// which sample, the result is bitwise-identical for any thread count.
template <typename LossFn>
double runEpoch(const std::vector<MethodSample> &Train, size_t BatchSize,
                const LossFn &Loss, ParamStore &Store, Adam &Opt, Rng &R,
                ThreadPool *Pool, size_t EpochIndex,
                const std::function<void(size_t, size_t)> &StepHook) {
  std::vector<size_t> Order(Train.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  R.shuffle(Order);

  // Serial (and pool-of-zero) execution runs inline on this thread;
  // scope a dedicated arena so per-sample resets cannot clobber graph
  // nodes the caller may hold on the thread's default arena. Pool
  // workers fall back to their own per-thread default arenas.
  GraphArena EpochArena;
  GraphArena::Scope EpochScope(EpochArena);

  size_t MaxBatch = std::min(BatchSize, Order.size());
  std::vector<GradSink> Sinks(MaxBatch);
  std::vector<double> SampleLoss(MaxBatch);

  double EpochLoss = 0;
  for (size_t Begin = 0; Begin < Order.size(); Begin += BatchSize) {
    size_t B = std::min(Order.size(), Begin + BatchSize) - Begin;
    auto Work = [&](size_t K) {
      // Clearing here (not after the reduction) returns the sink's
      // buffers to the pool of the thread that will refill it.
      Sinks[K].clear();
      Var SampleVar = Loss(Train[Order[Begin + K]]);
      SampleLoss[K] = static_cast<double>(SampleVar->Value[0]);
      backward(SampleVar, Sinks[K]);
      GraphArena::current().reset();
    };
    if (Pool)
      Pool->run(B, Work);
    else
      for (size_t K = 0; K < B; ++K)
        Work(K);

    for (size_t K = 0; K < B; ++K) {
      Store.accumulateSink(Sinks[K]);
      EpochLoss += SampleLoss[K];
    }
    Store.scaleGrads(1.0f / static_cast<float>(B));
    Opt.step();
    if (StepHook)
      StepHook(EpochIndex, Begin / BatchSize);
  }
  return Order.empty() ? 0.0 : EpochLoss / static_cast<double>(Order.size());
}

/// Batched-sample epoch loop: each mini-batch is split into
/// LockstepShards contiguous sample shards, each built as its own
/// combined lockstep graph (the model's BatchLossFn over the shard's
/// samples), differentiated once from the sum of the shard's
/// per-sample losses into the shard's sink. Shards are the units the
/// ThreadPool distributes — each worker builds its shard's graph on
/// its own thread-routed arena — and the calling thread reduces the
/// shard sinks in shard (= sample) order before scaling by 1/B, so
/// the parameter update matches runEpoch's mean-gradient semantics
/// and is bitwise-identical for any thread count (the shard partition
/// depends only on B, never on Threads).
///
/// One backward per shard over its summed loss — not one per sample —
/// is load-bearing: the shard's samples share graph nodes (batch cell
/// steps, cross-sample state embeddings, and non-parameter node
/// gradients persist within an arena generation), so repeated
/// per-sample backwards over the combined graph would double-count
/// every shared subgraph. The mode is deterministic but orders
/// gradient accumulation differently from the per-sample-sink mode
/// (and one shard count differently from another), so those variants
/// are not bitwise comparable with each other.
double runEpochBatched(const std::vector<MethodSample> &Train,
                       size_t BatchSize, size_t Shards,
                       const BatchLossFn &Loss, ParamStore &Store, Adam &Opt,
                       Rng &R, ThreadPool *Pool, size_t EpochIndex,
                       const std::function<void(size_t, size_t)> &StepHook) {
  std::vector<size_t> Order(Train.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  R.shuffle(Order);

  // Serial (and pool-of-zero) execution runs inline on this thread on
  // a dedicated scoped arena; pool workers use their own per-thread
  // default arenas. Either way every shard resets the arena it built
  // on right after its backward.
  GraphArena EpochArena;
  GraphArena::Scope EpochScope(EpochArena);

  size_t MaxShards = std::max<size_t>(1, Shards);
  std::vector<GradSink> Sinks(MaxShards);
  std::vector<double> ShardLoss(MaxShards);

  double EpochLoss = 0;
  for (size_t Begin = 0; Begin < Order.size(); Begin += BatchSize) {
    size_t B = std::min(Order.size(), Begin + BatchSize) - Begin;
    size_t S = std::min(MaxShards, B);
    auto Work = [&](size_t K) {
      // Contiguous shard [Begin + Lo, Begin + Hi) of the shuffled
      // batch; the bounds are a pure function of (B, S, K).
      size_t Lo = K * B / S, Hi = (K + 1) * B / S;
      Sinks[K].clear();
      std::vector<const MethodSample *> Group;
      Group.reserve(Hi - Lo);
      for (size_t I = Lo; I < Hi; ++I)
        Group.push_back(&Train[Order[Begin + I]]);
      std::vector<Var> SampleLosses = Loss(Group);
      LIGER_CHECK(SampleLosses.size() == Group.size(),
                  "batched loss hook must return one loss per sample");
      double Total = 0;
      for (const Var &L : SampleLosses)
        Total += static_cast<double>(L->Value[0]);
      ShardLoss[K] = Total;
      Var Sum = sumV(stackScalars(SampleLosses));
      backward(Sum, Sinks[K]);
      GraphArena::current().reset();
    };
    if (Pool)
      Pool->run(S, Work);
    else
      for (size_t K = 0; K < S; ++K)
        Work(K);

    for (size_t K = 0; K < S; ++K) {
      Store.accumulateSink(Sinks[K]);
      EpochLoss += ShardLoss[K];
    }
    Store.scaleGrads(1.0f / static_cast<float>(B));
    Opt.step();
    if (StepHook)
      StepHook(EpochIndex, Begin / BatchSize);
  }
  return Order.empty() ? 0.0 : EpochLoss / static_cast<double>(Order.size());
}

/// The worker pool for \p Options, or null for inline execution.
std::unique_ptr<ThreadPool> makePool(const TrainOptions &Options) {
  if (Options.Threads <= 1)
    return nullptr;
  return std::make_unique<ThreadPool>(Options.Threads);
}

/// Shared training driver for both task types: Adam over shuffled
/// epochs with best-on-validation tracking, optional crash-safe
/// checkpointing, and resume. \p Validate returns the current
/// validation score (F1 or accuracy) and is only called when
/// \p TrackBest.
///
/// Checkpoint/resume correctness: state.ckpt is written atomically at
/// the end of a checkpointed epoch and captures everything the loop
/// consumes — parameters, Adam moments + step count, the shuffle Rng
/// state, the epoch cursor, and the best-snapshot bookkeeping. Since
/// epochs are deterministic for any thread count (per-sample sinks
/// reduced in sample order), restoring that state and rerunning the
/// remaining epochs is bitwise-identical to never having stopped.
template <typename LossFn, typename ValidateFn>
TrainResult runTrainingLoop(const LossFn &Loss, const BatchLossFn &BatchLoss,
                            ParamStore &Store,
                            const std::vector<MethodSample> &Train,
                            bool TrackBest, const ValidateFn &Validate,
                            const char *ScoreName,
                            const TrainOptions &Options) {
  Stopwatch Timer;
  AdamOptions AdamOpts;
  AdamOpts.LearningRate = Options.LearningRate;
  AdamOpts.ClipNorm = Options.ClipNorm;
  Adam Opt(Store, AdamOpts);
  Rng R(Options.Seed);

  TrainResult Result;
  std::vector<Tensor> Best;

  const bool Checkpointing = !Options.CheckpointDir.empty();
  const std::string StatePath = Options.CheckpointDir + "/state.ckpt";
  const std::string BestPath = Options.CheckpointDir + "/best.ckpt";
  if (Checkpointing)
    LIGER_CHECK(ensureDirExists(Options.CheckpointDir),
                "cannot create the checkpoint directory");

  size_t StartEpoch = 0;
  if (Checkpointing && Options.Resume && fileExists(StatePath)) {
    TrainerState TS;
    std::string Err;
    if (!loadCheckpoint(StatePath, Store, &Opt, &TS, &Err)) {
      // Refusing beats silently retraining from scratch: the atomic
      // writer never leaves a torn file, so damage here is real.
      std::fprintf(stderr, "cannot resume: %s\n", Err.c_str());
      reportFatalError("--resume found an unreadable state checkpoint");
    }
    R.setState(TS.RngState);
    StartEpoch = static_cast<size_t>(TS.NextEpoch);
    Result.BestValidScore = TS.BestValidScore;
    Result.BestEpoch = static_cast<size_t>(TS.BestEpoch);
    Result.FinalTrainLoss = TS.FinalTrainLoss;
    if (TS.HasBest)
      Best = std::move(TS.BestParams);
    Result.Resumed = true;
    if (Options.Verbose)
      std::printf("  resuming at epoch %zu (best %s %.4f at epoch %zu)\n",
                  StartEpoch, ScoreName, Result.BestValidScore,
                  Result.BestEpoch);
  }
  Result.StartEpoch = StartEpoch;

  std::unique_ptr<ThreadPool> Pool = makePool(Options);
  const size_t Cadence = std::max<size_t>(1, Options.CheckpointEveryEpochs);
  for (size_t Epoch = StartEpoch; Epoch < Options.Epochs; ++Epoch) {
    Result.FinalTrainLoss =
        BatchLoss ? runEpochBatched(Train, Options.BatchSize,
                                    Options.LockstepShards, BatchLoss, Store,
                                    Opt, R, Pool.get(), Epoch,
                                    Options.StepHook)
                  : runEpoch(Train, Options.BatchSize, Loss, Store, Opt, R,
                             Pool.get(), Epoch, Options.StepHook);
    if (TrackBest) {
      double Score = Validate();
      if (Score >= Result.BestValidScore) {
        Result.BestValidScore = Score;
        Result.BestEpoch = Epoch;
        Best = snapshotParams(Store);
        if (Checkpointing) {
          std::string Err;
          if (!Store.save(BestPath, &Err))
            std::fprintf(stderr,
                         "warning: best-snapshot checkpoint failed: %s\n",
                         Err.c_str());
        }
      }
      if (Options.Verbose)
        std::printf("  epoch %zu  loss %.4f  %s %.4f\n", Epoch,
                    Result.FinalTrainLoss, ScoreName, Score);
    } else if (Options.Verbose) {
      std::printf("  epoch %zu  loss %.4f\n", Epoch, Result.FinalTrainLoss);
    }
    if (Checkpointing &&
        ((Epoch + 1) % Cadence == 0 || Epoch + 1 == Options.Epochs)) {
      TrainerState TS;
      TS.NextEpoch = Epoch + 1;
      TS.BestEpoch = Result.BestEpoch;
      TS.BestValidScore = Result.BestValidScore;
      TS.FinalTrainLoss = Result.FinalTrainLoss;
      TS.RngState = R.state();
      TS.HasBest = !Best.empty();
      TS.BestParams = Best;
      std::string Err;
      if (!saveCheckpoint(StatePath, Store, &Opt, &TS, &Err)) {
        std::fprintf(stderr, "cannot checkpoint: %s\n", Err.c_str());
        reportFatalError("failed to write the training state checkpoint");
      }
    }
  }
  if (TrackBest && !Best.empty())
    restoreParams(Store, Best);
  Result.Seconds = Timer.seconds();
  return Result;
}

} // namespace

PrfScores liger::evaluateNameModel(const NameModelHooks &Hooks,
                                   const std::vector<MethodSample> &Samples) {
  SubtokenScorer Scorer;
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (const MethodSample &Sample : Samples) {
    Scorer.add(Hooks.Predict(Sample), Sample.NameSubtokens);
    Arena.reset();
  }
  return Scorer.scores();
}

TrainResult liger::trainNameModel(const NameModelHooks &Hooks,
                                  const std::vector<MethodSample> &Train,
                                  const std::vector<MethodSample> &Valid,
                                  const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();
  // Models without a LossBatch hook (the baselines) silently train
  // per-sample under --batched-samples, as TrainOptions documents —
  // multi-model drivers pass one TrainOptions to every model.
  BatchLossFn BatchLoss;
  if (Options.BatchedSamples && Hooks.LossBatch)
    BatchLoss = Hooks.LossBatch;
  return runTrainingLoop(
      Hooks.Loss, BatchLoss, *Hooks.Params, Train, TrackBest,
      [&] { return evaluateNameModel(Hooks, Valid).F1; }, "valid F1",
      Options);
}

ClassScores liger::evaluateClassifier(const ClassModelHooks &Hooks,
                                      const std::vector<MethodSample> &Samples,
                                      size_t NumClasses) {
  ClassificationScorer Scorer(NumClasses);
  GraphArena Arena;
  GraphArena::Scope Scope(Arena);
  for (const MethodSample &Sample : Samples) {
    Scorer.add(Hooks.Predict(Sample), Sample.ClassId);
    Arena.reset();
  }
  ClassScores Out;
  Out.Accuracy = Scorer.accuracy();
  Out.MacroF1 = Scorer.macroF1();
  return Out;
}

TrainResult liger::trainClassifier(const ClassModelHooks &Hooks,
                                   const std::vector<MethodSample> &Train,
                                   const std::vector<MethodSample> &Valid,
                                   size_t NumClasses,
                                   const TrainOptions &Options) {
  LIGER_CHECK(Hooks.Params, "hooks must expose the parameter store");
  bool TrackBest = Options.SelectBestOnValidation && !Valid.empty();
  // Classifier encodes are one-step graphs with nothing to lockstep;
  // BatchedSamples deliberately has no effect here.
  return runTrainingLoop(
      Hooks.Loss, BatchLossFn(), *Hooks.Params, Train, TrackBest,
      [&] { return evaluateClassifier(Hooks, Valid, NumClasses).Accuracy; },
      "valid acc", Options);
}
