//===-- trace/Trace.h - Execution, symbolic, state, blended traces -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's trace formalism (§2 and §5.1):
///
///  - Execution trace (Def. 2.1): s0 -> (e_i -> s_i)*, produced by the
///    interpreter as an ExecResult.
///  - Symbolic trace  (Def. 2.2): the statement projection (e_i ...).
///  - State trace     (Def. 2.3): the state projection (s_i ...).
///  - Blended trace   (Def. 5.1): a symbolic trace paired with the state
///    traces of several executions that traverse the same program path.
///
/// This module turns raw ExecResults into those structures, groups
/// executions by path (the paper's "we group concrete executions that
/// traverse the same program path"), and computes line/path coverage.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TRACE_TRACE_H
#define LIGER_TRACE_TRACE_H

#include "interp/Interpreter.h"

#include <set>
#include <string>
#include <vector>

namespace liger {

/// A program state: values aligned with the owning trace's VarNames.
struct ProgramState {
  std::vector<Value> Values;

  /// Renders as the paper's Fig. 2 notation:
  /// {A: [8, 5, 1], left: 0, right: ⊥}.
  std::string str(const std::vector<std::string> &VarNames) const;
};

/// One statement of a symbolic trace (with its branch outcome when it is
/// a control-flow condition — the outcome is what distinguishes paths).
struct SymbolicStep {
  const Stmt *Statement = nullptr;
  StepKind Kind = StepKind::Plain;
};

/// Def. 2.2: the sequence of statements visited along one program path.
struct SymbolicTrace {
  std::vector<SymbolicStep> Steps;

  /// A stable identity for the program path this trace follows: the
  /// sequence of (statement id, branch outcome) pairs.
  std::string pathKey() const;

  /// The set of source lines the path covers.
  std::set<unsigned> coveredLines() const;

  size_t length() const { return Steps.size(); }
};

/// Def. 2.3: the sequence of program states of one execution, including
/// the initial state s0 (States.size() == Steps.size() + 1 relative to
/// the corresponding symbolic trace).
struct StateTrace {
  ProgramState Initial;
  std::vector<ProgramState> States;
};

/// Def. 5.1: one symbolic trace plus the state traces of the concrete
/// executions that traverse the same path, with the inputs that realized
/// them.
struct BlendedTrace {
  SymbolicTrace Symbolic;
  std::vector<StateTrace> Concrete;
  std::vector<std::vector<Value>> Inputs;

  size_t numConcrete() const { return Concrete.size(); }
};

/// All traces collected for one method: the unit the models consume.
/// Holds non-owning pointers into the method's Program, which must
/// outlive it.
struct MethodTraces {
  const FunctionDecl *Fn = nullptr;
  std::vector<std::string> VarNames;
  std::vector<BlendedTrace> Paths;

  /// Union of lines covered by all retained paths.
  std::set<unsigned> coveredLines() const;

  /// Total number of concrete executions across paths.
  size_t totalExecutions() const;
};

/// Extracts the symbolic projection of an execution.
SymbolicTrace extractSymbolicTrace(const ExecResult &Result);

/// Extracts the state projection of an execution.
StateTrace extractStateTrace(const ExecResult &Result);

/// Path identity of a raw execution (same definition as
/// SymbolicTrace::pathKey).
std::string pathKeyOf(const ExecResult &Result);

/// Groups executions of one method by program path, producing one
/// BlendedTrace per distinct path. Executions must all come from the
/// same function. \p Inputs[i] are the arguments of Results[i].
MethodTraces groupByPath(const FunctionDecl &Fn,
                         const std::vector<ExecResult> &Results,
                         const std::vector<std::vector<Value>> &Inputs);

/// Renders a blended trace for human inspection (one line per step:
/// statement text followed by each execution's state).
std::string renderBlendedTrace(const BlendedTrace &Trace,
                               const std::vector<std::string> &VarNames,
                               size_t MaxSteps = 64);

} // namespace liger

#endif // LIGER_TRACE_TRACE_H
