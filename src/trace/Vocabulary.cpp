//===-- trace/Vocabulary.cpp - Static and dynamic vocabularies ------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "trace/Vocabulary.h"

#include "support/Error.h"

using namespace liger;

Vocabulary::Vocabulary() {
  Tokens = {"<pad>", "<unk>", "<s>", "</s>"};
  for (int I = 0; I < static_cast<int>(Tokens.size()); ++I)
    Ids.emplace(Tokens[static_cast<size_t>(I)], I);
}

int Vocabulary::add(const std::string &Token) {
  auto It = Ids.find(Token);
  if (It != Ids.end())
    return It->second;
  LIGER_CHECK(!Frozen, "cannot add tokens to a frozen vocabulary");
  int Id = static_cast<int>(Tokens.size());
  Tokens.push_back(Token);
  Ids.emplace(Token, Id);
  return Id;
}

int Vocabulary::lookup(const std::string &Token) const {
  auto It = Ids.find(Token);
  return It == Ids.end() ? Unk : It->second;
}

const std::string &Vocabulary::token(int Id) const {
  LIGER_CHECK(Id >= 0 && Id < size(), "token id out of range");
  return Tokens[static_cast<size_t>(Id)];
}

std::string liger::valueToken(const Value &V) {
  switch (V.kind()) {
  case ValueKind::Undef:
    return "⊥";
  case ValueKind::Bool:
    return V.asBool() ? "true" : "false";
  case ValueKind::Int: {
    int64_t X = V.asInt();
    if (X >= -64 && X <= 64)
      return std::to_string(X);
    // Logarithmic magnitude buckets beyond the exact range.
    const char *Sign = X < 0 ? "-" : "+";
    uint64_t Mag = X < 0 ? static_cast<uint64_t>(-(X + 1)) + 1
                         : static_cast<uint64_t>(X);
    const char *Bucket;
    if (Mag <= 256)
      Bucket = "e2";
    else if (Mag <= 4096)
      Bucket = "e3";
    else if (Mag <= 65536)
      Bucket = "e4";
    else
      Bucket = "big";
    return std::string("<int") + Sign + Bucket + ">";
  }
  case ValueKind::String: {
    const std::string &S = V.asString();
    if (S.size() <= 8)
      return "\"" + S + "\"";
    // Power-of-two length buckets (16/32/64, 64 also catching longer
    // strings), mirroring the integer magnitude buckets above: three
    // tokens in Dd instead of one per distinct length.
    size_t Bucket = 16;
    while (Bucket < S.size() && Bucket < 64)
      Bucket *= 2;
    return "<str:len" + std::to_string(Bucket) + ">";
  }
  case ValueKind::Array:
  case ValueKind::Struct:
    LIGER_UNREACHABLE("valueToken expects a primitive; flatten first");
  }
  LIGER_UNREACHABLE("covered switch");
}

std::vector<std::string> liger::valueTokens(const Value &V) {
  std::vector<Value> Leaves;
  V.flatten(Leaves);
  std::vector<std::string> Out;
  Out.reserve(Leaves.size() + 1);
  if (Leaves.empty()) // e.g. an empty array still needs a token
    Out.push_back("<empty>");
  for (const Value &Leaf : Leaves)
    Out.push_back(valueToken(Leaf));
  return Out;
}
