//===-- trace/Trace.cpp - Execution, symbolic, state, blended traces ------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "lang/AstPrinter.h"
#include "support/Error.h"

#include <map>

using namespace liger;

std::string ProgramState::str(
    const std::vector<std::string> &VarNames) const {
  LIGER_CHECK(VarNames.size() == Values.size(),
              "state arity must match variable tuple");
  std::string Out = "{";
  for (size_t I = 0; I < Values.size(); ++I) {
    if (I)
      Out += "; ";
    Out += VarNames[I] + ": " + Values[I].str();
  }
  Out += "}";
  return Out;
}

std::string SymbolicTrace::pathKey() const {
  std::string Key;
  Key.reserve(Steps.size() * 8);
  for (const SymbolicStep &Step : Steps) {
    Key += std::to_string(Step.Statement->id());
    switch (Step.Kind) {
    case StepKind::Plain:
      Key += ';';
      break;
    case StepKind::CondTrue:
      Key += "T;";
      break;
    case StepKind::CondFalse:
      Key += "F;";
      break;
    }
  }
  return Key;
}

std::set<unsigned> SymbolicTrace::coveredLines() const {
  std::set<unsigned> Lines;
  for (const SymbolicStep &Step : Steps)
    if (Step.Statement->loc().isValid())
      Lines.insert(Step.Statement->loc().Line);
  return Lines;
}

std::set<unsigned> MethodTraces::coveredLines() const {
  std::set<unsigned> Lines;
  for (const BlendedTrace &Path : Paths) {
    std::set<unsigned> PathLines = Path.Symbolic.coveredLines();
    Lines.insert(PathLines.begin(), PathLines.end());
  }
  return Lines;
}

size_t MethodTraces::totalExecutions() const {
  size_t Total = 0;
  for (const BlendedTrace &Path : Paths)
    Total += Path.numConcrete();
  return Total;
}

SymbolicTrace liger::extractSymbolicTrace(const ExecResult &Result) {
  SymbolicTrace Trace;
  Trace.Steps.reserve(Result.Steps.size());
  for (const ExecStep &Step : Result.Steps)
    Trace.Steps.push_back({Step.Statement, Step.Kind});
  return Trace;
}

StateTrace liger::extractStateTrace(const ExecResult &Result) {
  StateTrace Trace;
  Trace.Initial.Values = Result.InitialState;
  Trace.States.reserve(Result.Steps.size());
  for (const ExecStep &Step : Result.Steps)
    Trace.States.push_back({Step.State});
  return Trace;
}

std::string liger::pathKeyOf(const ExecResult &Result) {
  return extractSymbolicTrace(Result).pathKey();
}

MethodTraces liger::groupByPath(const FunctionDecl &Fn,
                                const std::vector<ExecResult> &Results,
                                const std::vector<std::vector<Value>> &Inputs) {
  LIGER_CHECK(Results.size() == Inputs.size(),
              "one input vector per execution");
  MethodTraces Traces;
  Traces.Fn = &Fn;
  Traces.VarNames = collectVariableTuple(Fn);

  // Preserve first-seen order of paths for determinism.
  std::map<std::string, size_t> PathIndex;
  for (size_t I = 0; I < Results.size(); ++I) {
    const ExecResult &Result = Results[I];
    if (!Result.ok())
      continue; // failed or timed-out executions contribute no traces
    std::string Key = pathKeyOf(Result);
    auto It = PathIndex.find(Key);
    size_t Index;
    if (It == PathIndex.end()) {
      Index = Traces.Paths.size();
      PathIndex.emplace(std::move(Key), Index);
      BlendedTrace Blended;
      Blended.Symbolic = extractSymbolicTrace(Result);
      Traces.Paths.push_back(std::move(Blended));
    } else {
      Index = It->second;
    }
    Traces.Paths[Index].Concrete.push_back(extractStateTrace(Result));
    Traces.Paths[Index].Inputs.push_back(Inputs[I]);
  }
  return Traces;
}

std::string liger::renderBlendedTrace(const BlendedTrace &Trace,
                                      const std::vector<std::string> &VarNames,
                                      size_t MaxSteps) {
  std::string Out;
  size_t Limit = std::min(MaxSteps, Trace.Symbolic.Steps.size());
  for (size_t Step = 0; Step < Limit; ++Step) {
    const SymbolicStep &Sym = Trace.Symbolic.Steps[Step];
    Out += printStmtHead(Sym.Statement);
    if (Sym.Kind == StepKind::CondTrue)
      Out += "  [true]";
    else if (Sym.Kind == StepKind::CondFalse)
      Out += "  [false]";
    Out += '\n';
    for (const StateTrace &States : Trace.Concrete) {
      if (Step < States.States.size() && !States.States[Step].Values.empty()) {
        Out += "    ";
        Out += States.States[Step].str(VarNames);
        Out += '\n';
      }
    }
  }
  if (Trace.Symbolic.Steps.size() > Limit)
    Out += "    ... (" +
           std::to_string(Trace.Symbolic.Steps.size() - Limit) +
           " more steps)\n";
  return Out;
}
