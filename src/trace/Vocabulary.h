//===-- trace/Vocabulary.h - Static and dynamic vocabularies ----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token vocabularies for the models. The paper (§5.1.1) defines Ds as
/// all source tokens plus AST node types across the dataset, and Dd as
/// all runtime values any variable was ever assigned. Both map into one
/// learned embedding table per vocabulary.
///
/// Runtime values are tokenized by valueToken(): small integers keep
/// their exact spelling (so the model can learn e.g. what 0 means),
/// larger magnitudes fall into logarithmic buckets, and strings longer
/// than 8 characters fall into power-of-two length buckets
/// (<str:len16>, <str:len32>, <str:len64> — the last also catching
/// anything longer) — an out-of-vocabulary control identical in spirit
/// to the paper's "special symbol for values of objects whose
/// definitions are not accessible".
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TRACE_VOCABULARY_H
#define LIGER_TRACE_VOCABULARY_H

#include "interp/Value.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace liger {

/// A bidirectional token <-> id map with fixed special tokens.
class Vocabulary {
public:
  /// Ids of the special tokens, present in every vocabulary.
  enum : int { Pad = 0, Unk = 1, Sos = 2, Eos = 3 };

  Vocabulary();

  /// Interns \p Token (idempotent) and returns its id. Must not be
  /// called after freeze().
  int add(const std::string &Token);

  /// Marks the vocabulary immutable; lookups of unknown tokens then
  /// return Unk instead of asserting.
  void freeze() { Frozen = true; }
  bool frozen() const { return Frozen; }

  /// Returns the id of \p Token, or Unk when absent.
  int lookup(const std::string &Token) const;

  /// Returns true if \p Token is interned.
  bool contains(const std::string &Token) const {
    return Ids.count(Token) != 0;
  }

  /// The token spelling for \p Id.
  const std::string &token(int Id) const;

  /// Number of tokens including the specials.
  int size() const { return static_cast<int>(Tokens.size()); }

private:
  std::unordered_map<std::string, int> Ids;
  std::vector<std::string> Tokens;
  bool Frozen = false;
};

/// Tokenizes one *primitive* runtime value for the dynamic vocabulary
/// Dd. Aggregates (arrays/structs) must be flattened with
/// Value::flatten() first.
std::string valueToken(const Value &V);

/// Flattens a program-state variable value into dynamic-vocabulary
/// tokens: attr(v)[0..] of §5.1.1.
std::vector<std::string> valueTokens(const Value &V);

} // namespace liger

#endif // LIGER_TRACE_VOCABULARY_H
