//===-- testgen/TraceCollector.h - Feedback-directed trace harvest -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end trace collection pipeline of §6.1: random inputs are
/// executed, executions are grouped by program path, each retained path
/// becomes one blended trace with up to ExecutionsPerPath concrete
/// traces (the paper collects "on average 20 symbolic traces, each ...
/// coupled with 5 concrete executions"). Feedback direction: inputs
/// that discover a new path are kept and mutated to find same-path
/// siblings; optionally the bounded symbolic executor seeds paths that
/// random testing missed.
///
/// The pipeline runs in four phases — random exploration, symbolic
/// seeding, mutation, state recording — each timed into CollectStats.
/// collectTracesCached() additionally consults a TraceCache keyed on
/// (instantiated source, method name, options, seed): a hit skips the
/// discovery phases entirely by replaying the cached accepted inputs
/// (or, in full mode, by rebinding the cached traces to the re-parsed
/// AST without running the interpreter at all). See DESIGN.md §10.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TESTGEN_TRACECOLLECTOR_H
#define LIGER_TESTGEN_TRACECOLLECTOR_H

#include "testgen/InputGen.h"
#include "trace/Trace.h"

namespace liger {

class TraceCache;

/// Pipeline configuration.
struct TestGenOptions {
  InputGenOptions Input;
  InterpOptions Interp;
  /// Stop discovering once this many distinct paths have traces.
  unsigned TargetPaths = 20;
  /// Concrete executions retained per path.
  unsigned ExecutionsPerPath = 5;
  /// Random-input attempts before giving up on new paths.
  unsigned MaxAttempts = 300;
  /// Mutation attempts per path to fill same-path executions.
  unsigned MutationAttemptsPerPath = 12;
  /// Also seed paths from the bounded symbolic executor.
  bool UseSymbolicSeeding = true;
  uint64_t Seed = 1;
  /// Dataset-scope tag ("med", "large", "coset", ...) hashed into the
  /// trace-cache key and nothing else: two corpora sharing one cache
  /// directory never serve each other's entries even when a method's
  /// source and every pipeline knob coincide, so per-dataset eviction
  /// and invalidation stay independent. Empty = unscoped.
  std::string Scope;
};

/// Outcome statistics (drives the Table 1 filter pipeline), plus the
/// per-phase timings and cache counters the throughput bench reports.
///
/// The discovery counters (Attempts..SymbolicSeeds) are part of the
/// pipeline's deterministic output: a cache hit restores the values the
/// original discovery produced, so filter decisions (allTimedOut) and
/// corpus funnel counts are identical between cold and warm runs. The
/// Seconds fields are wall-clock observability only and are never
/// compared.
struct CollectStats {
  unsigned Attempts = 0;
  unsigned OkRuns = 0;
  unsigned Faults = 0;
  unsigned Timeouts = 0;
  unsigned MemoryExceeded = 0;
  unsigned SymbolicSeeds = 0;

  /// Cache outcome for this method: exactly one of the three is 1.
  /// Bypassed means the pipeline ran with caching disabled.
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  unsigned CacheBypasses = 0;

  /// Wall-clock seconds per phase (zero for phases that did not run).
  double ExploreSeconds = 0;  ///< Phase 1: random exploration.
  double SymbolicSeconds = 0; ///< Phase 2: symbolic seeding.
  double MutateSeconds = 0;   ///< Phase 3: same-path mutation.
  double RecordSeconds = 0;   ///< Phase 4: state-recording runs.
  double ReplaySeconds = 0;   ///< Cache-hit replay / materialization.

  /// True when every single run timed out (the "takes too long" filter).
  bool allTimedOut() const { return Attempts > 0 && Timeouts == Attempts; }

  /// True when every single run blew the memory budget (the allocation-
  /// bomb filter; DESIGN.md §12).
  bool allMemoryExceeded() const {
    return Attempts > 0 && MemoryExceeded == Attempts;
  }
};

/// Collects blended traces for \p Fn. The returned MethodTraces holds
/// pointers into \p P, which must outlive it.
MethodTraces collectTraces(const Program &P, const FunctionDecl &Fn,
                           const TestGenOptions &Options = {},
                           CollectStats *Stats = nullptr);

/// Like collectTraces, but consults \p Cache (when non-null and not in
/// Off mode) under the key derived from (\p SourceText, Fn.Name,
/// \p Options). Misses run the full pipeline and store an entry;
/// corrupt or stale entries are silently treated as misses. The result
/// is bitwise-identical to collectTraces for any cache state.
MethodTraces collectTracesCached(const Program &P, const FunctionDecl &Fn,
                                 const std::string &SourceText,
                                 const TestGenOptions &Options,
                                 TraceCache *Cache,
                                 CollectStats *Stats = nullptr);

} // namespace liger

#endif // LIGER_TESTGEN_TRACECOLLECTOR_H
