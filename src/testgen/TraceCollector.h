//===-- testgen/TraceCollector.h - Feedback-directed trace harvest -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end trace collection pipeline of §6.1: random inputs are
/// executed, executions are grouped by program path, each retained path
/// becomes one blended trace with up to ExecutionsPerPath concrete
/// traces (the paper collects "on average 20 symbolic traces, each ...
/// coupled with 5 concrete executions"). Feedback direction: inputs
/// that discover a new path are kept and mutated to find same-path
/// siblings; optionally the bounded symbolic executor seeds paths that
/// random testing missed.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TESTGEN_TRACECOLLECTOR_H
#define LIGER_TESTGEN_TRACECOLLECTOR_H

#include "testgen/InputGen.h"
#include "trace/Trace.h"

namespace liger {

/// Pipeline configuration.
struct TestGenOptions {
  InputGenOptions Input;
  InterpOptions Interp;
  /// Stop discovering once this many distinct paths have traces.
  unsigned TargetPaths = 20;
  /// Concrete executions retained per path.
  unsigned ExecutionsPerPath = 5;
  /// Random-input attempts before giving up on new paths.
  unsigned MaxAttempts = 300;
  /// Mutation attempts per path to fill same-path executions.
  unsigned MutationAttemptsPerPath = 12;
  /// Also seed paths from the bounded symbolic executor.
  bool UseSymbolicSeeding = true;
  uint64_t Seed = 1;
};

/// Outcome statistics (drives the Table 1 filter pipeline).
struct CollectStats {
  unsigned Attempts = 0;
  unsigned OkRuns = 0;
  unsigned Faults = 0;
  unsigned Timeouts = 0;
  unsigned SymbolicSeeds = 0;

  /// True when every single run timed out (the "takes too long" filter).
  bool allTimedOut() const { return Attempts > 0 && Timeouts == Attempts; }
};

/// Collects blended traces for \p Fn. The returned MethodTraces holds
/// pointers into \p P, which must outlive it.
MethodTraces collectTraces(const Program &P, const FunctionDecl &Fn,
                           const TestGenOptions &Options = {},
                           CollectStats *Stats = nullptr);

} // namespace liger

#endif // LIGER_TESTGEN_TRACECOLLECTOR_H
