//===-- testgen/Coverage.h - Coverage metrics and trace reduction -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/path coverage bookkeeping and the trace-reduction operators the
/// data-reliance experiments of §6.1.2 are built from:
///
///  - reduceConcreteTraces: keep k concrete traces per path while the
///    symbolic trace count stays constant (Fig. 6a/6b sweep);
///  - minimalLineCoveringPaths: greedy set cover — the paper's "minimum
///    set of symbolic traces ... that achieve the same line coverage";
///  - reduceSymbolicTraces: drop paths outside the minimum set one by
///    one, preserving line coverage (Fig. 6c/6d sweep).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TESTGEN_COVERAGE_H
#define LIGER_TESTGEN_COVERAGE_H

#include "support/Rng.h"
#include "trace/Trace.h"

#include <set>

namespace liger {

/// All source lines holding trace-level statements of \p Fn (the
/// denominator of line coverage).
std::set<unsigned> allStatementLines(const FunctionDecl &Fn);

/// Fraction of \p Fn's statement lines covered by \p Traces, in [0, 1].
double lineCoverageRatio(const MethodTraces &Traces);

/// Returns indices of a (greedily) minimal subset of paths whose union
/// of covered lines equals the full set's coverage.
std::vector<size_t> minimalLineCoveringPaths(const MethodTraces &Traces);

/// Returns a copy of \p Traces keeping only the paths at \p Indices
/// (in the given order).
MethodTraces selectPaths(const MethodTraces &Traces,
                         const std::vector<size_t> &Indices);

/// Keeps at most \p K concrete traces per path, selected at random but
/// deterministically under \p R. Symbolic traces are untouched.
MethodTraces reduceConcreteTraces(const MethodTraces &Traces, size_t K,
                                  Rng &R);

/// Keeps \p KeepCount paths: the minimal line-covering set first, then
/// random extras. If KeepCount is smaller than the minimal set, coverage
/// is sacrificed (paths are dropped from the minimal set at random) —
/// mirroring the paper's observation that accuracy collapses below the
/// coverage-preserving floor.
MethodTraces reduceSymbolicTraces(const MethodTraces &Traces,
                                  size_t KeepCount, Rng &R);

} // namespace liger

#endif // LIGER_TESTGEN_COVERAGE_H
