//===-- testgen/InputGen.h - Random typed input generation -----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random generation of typed MiniLang inputs — the role Randoop [22]
/// plays in the paper's pipeline (§6.1: "we rely on Randoop ... to
/// trigger high-coverage executions") and the paper's own "random input
/// generation engine" for COSET (§6.2). Values are drawn from small
/// bounded domains so that branch conditions have non-trivial hit
/// probability, plus occasional "interesting" values (0, ±1, bounds).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TESTGEN_INPUTGEN_H
#define LIGER_TESTGEN_INPUTGEN_H

#include "interp/Value.h"
#include "lang/Ast.h"
#include "support/Rng.h"

#include <string>
#include <vector>

namespace liger {

/// Domain configuration for random inputs.
struct InputGenOptions {
  int64_t IntLo = -8;
  int64_t IntHi = 8;
  std::vector<size_t> ArrayLenChoices = {0, 1, 2, 3, 4, 5};
  std::vector<std::string> StringPool = {"",    "a",   "ab",  "ba",
                                         "abc", "bca", "aab", "abab"};
  /// Probability of picking an "interesting" int (0, ±1, lo, hi)
  /// instead of a uniform draw.
  double InterestingProb = 0.25;
};

/// Draws one random value of type \p Ty. For struct types, \p P supplies
/// the field layout.
Value randomValueOf(const Type &Ty, const Program &P, Rng &R,
                    const InputGenOptions &Options);

/// Draws a full argument vector for \p Fn.
std::vector<Value> randomInputs(const FunctionDecl &Fn, const Program &P,
                                Rng &R, const InputGenOptions &Options);

/// Mutates one argument slightly (one scalar perturbed). Used to find
/// additional executions that stay on an already-discovered path.
std::vector<Value> mutateInputs(const std::vector<Value> &Inputs, Rng &R,
                                const InputGenOptions &Options);

} // namespace liger

#endif // LIGER_TESTGEN_INPUTGEN_H
