//===-- testgen/TraceCollector.cpp - Feedback-directed trace harvest ------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/TraceCollector.h"

#include "symx/SymExec.h"

#include <map>

using namespace liger;

namespace {

/// Inputs selected per path, in path-discovery order.
struct PathBucket {
  std::vector<std::vector<Value>> Inputs;
};

/// Execution mutates reference-typed arguments in place (arrays are
/// aliased, exactly like Java) — always run on a deep copy so stored
/// inputs stay pristine and replays are faithful.
std::vector<Value> deepCopyInputs(const std::vector<Value> &Inputs) {
  std::vector<Value> Copy;
  Copy.reserve(Inputs.size());
  for (const Value &V : Inputs)
    Copy.push_back(V.deepCopy());
  return Copy;
}

} // namespace

MethodTraces liger::collectTraces(const Program &P, const FunctionDecl &Fn,
                                  const TestGenOptions &Options,
                                  CollectStats *Stats) {
  Rng R(Options.Seed);
  CollectStats LocalStats;

  InterpOptions ProbeOptions = Options.Interp;
  ProbeOptions.RecordStates = false; // discovery runs skip snapshots

  std::map<std::string, size_t> PathIndex;
  std::vector<PathBucket> Buckets;

  auto TryInput = [&](const std::vector<Value> &Inputs) -> bool {
    ++LocalStats.Attempts;
    ExecResult Probe = execute(P, Fn, deepCopyInputs(Inputs), ProbeOptions);
    if (Probe.Status == ExecStatus::OutOfFuel) {
      ++LocalStats.Timeouts;
      return false;
    }
    if (Probe.Status == ExecStatus::RuntimeError) {
      ++LocalStats.Faults;
      return false;
    }
    ++LocalStats.OkRuns;
    std::string Key = pathKeyOf(Probe);
    auto It = PathIndex.find(Key);
    if (It == PathIndex.end()) {
      if (Buckets.size() >= Options.TargetPaths)
        return false; // enough paths; ignore further novelty
      PathIndex.emplace(std::move(Key), Buckets.size());
      Buckets.emplace_back();
      Buckets.back().Inputs.push_back(Inputs);
      return true;
    }
    PathBucket &Bucket = Buckets[It->second];
    if (Bucket.Inputs.size() < Options.ExecutionsPerPath) {
      Bucket.Inputs.push_back(Inputs);
      return true;
    }
    return false;
  };

  // Phase 1: random exploration. Methods that look non-terminating
  // (every early probe exhausts its fuel) are abandoned quickly — the
  // Table 1 "takes too long" filter should not itself take long.
  for (unsigned Attempt = 0; Attempt < Options.MaxAttempts; ++Attempt) {
    if (LocalStats.Timeouts >= 8 &&
        LocalStats.Timeouts == LocalStats.Attempts)
      break;
    if (Buckets.size() >= Options.TargetPaths) {
      // Stop early once every discovered path is also saturated.
      bool AllFull = true;
      for (const PathBucket &Bucket : Buckets)
        if (Bucket.Inputs.size() < Options.ExecutionsPerPath) {
          AllFull = false;
          break;
        }
      if (AllFull)
        break;
    }
    TryInput(randomInputs(Fn, P, R, Options.Input));
  }

  // Phase 2: symbolic seeding of paths random testing missed.
  if (Options.UseSymbolicSeeding &&
      Buckets.size() < Options.TargetPaths) {
    SymxOptions Symx;
    Symx.MaxPaths = Options.TargetPaths;
    Symx.Solver.Seed = Options.Seed ^ 0x5EEDu;
    for (const SymbolicPath &Path : enumeratePaths(P, Fn, Symx)) {
      if (Buckets.size() >= Options.TargetPaths)
        break;
      if (PathIndex.count(Path.Trace.pathKey()))
        continue;
      if (TryInput(Path.WitnessInputs))
        ++LocalStats.SymbolicSeeds;
    }
  }

  // Phase 3: mutate per-path representatives to fill concrete slots.
  for (size_t Index = 0; Index < Buckets.size(); ++Index) {
    unsigned Budget = Options.MutationAttemptsPerPath;
    while (Buckets[Index].Inputs.size() < Options.ExecutionsPerPath &&
           Budget-- > 0) {
      const std::vector<Value> &Seed =
          Buckets[Index].Inputs[R.nextBelow(Buckets[Index].Inputs.size())];
      TryInput(mutateInputs(Seed, R, Options.Input));
    }
  }

  // Phase 4: re-execute every selected input with state recording.
  std::vector<ExecResult> Results;
  std::vector<std::vector<Value>> AllInputs;
  InterpOptions FullOptions = Options.Interp;
  FullOptions.RecordStates = true;
  for (const PathBucket &Bucket : Buckets)
    for (const std::vector<Value> &Inputs : Bucket.Inputs) {
      Results.push_back(execute(P, Fn, deepCopyInputs(Inputs), FullOptions));
      AllInputs.push_back(Inputs);
    }

  if (Stats)
    *Stats = LocalStats;
  return groupByPath(Fn, Results, AllInputs);
}
