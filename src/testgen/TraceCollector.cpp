//===-- testgen/TraceCollector.cpp - Feedback-directed trace harvest ------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/TraceCollector.h"

#include "support/Stopwatch.h"
#include "symx/SymExec.h"
#include "testgen/TraceCache.h"

#include <map>

using namespace liger;

namespace {

/// Inputs selected per path, in path-discovery order. Runs accepted
/// during the recording phases (symbolic seeding, mutation) already
/// carry their state-recorded ExecResult, so phase 4 reuses them
/// instead of executing the same inputs a second time; Recorded and
/// HasRecorded are parallel to Inputs.
struct PathBucket {
  std::vector<std::vector<Value>> Inputs;
  std::vector<ExecResult> Recorded;
  std::vector<char> HasRecorded;

  void accept(const std::vector<Value> &In, ExecResult Run, bool Record) {
    Inputs.push_back(In);
    HasRecorded.push_back(Record ? 1 : 0);
    Recorded.push_back(Record ? std::move(Run) : ExecResult());
  }
};

/// Execution mutates reference-typed arguments in place (arrays are
/// aliased, exactly like Java) — always run on a deep copy so stored
/// inputs stay pristine and replays are faithful.
std::vector<Value> deepCopyInputs(const std::vector<Value> &Inputs) {
  std::vector<Value> Copy;
  Copy.reserve(Inputs.size());
  for (const Value &V : Inputs)
    Copy.push_back(V.deepCopy());
  return Copy;
}

/// The four-phase discovery pipeline. Fills \p LocalStats (discovery
/// counters plus per-phase timings) and, when \p AcceptedOut is
/// non-null, the accepted inputs flattened in phase-4 order — exactly
/// what a cache entry needs to replay this invocation.
///
/// Output is a pure function of (P, Fn, Options): the interpreter and
/// both input generators are deterministic, and state recording never
/// influences path keys or control flow (the recorded-step cap applies
/// identically with recording on or off), so accepting a run straight
/// from a recording execution is bitwise-equivalent to probing first
/// and re-executing later.
MethodTraces runPipeline(const Program &P, const FunctionDecl &Fn,
                         const TestGenOptions &Options,
                         CollectStats &LocalStats,
                         std::vector<std::vector<Value>> *AcceptedOut) {
  Rng R(Options.Seed);
  Stopwatch Phase;

  InterpOptions ProbeOptions = Options.Interp;
  ProbeOptions.RecordStates = false; // discovery probes skip snapshots
  InterpOptions FullOptions = Options.Interp;
  FullOptions.RecordStates = true;

  std::map<std::string, size_t> PathIndex;
  std::vector<PathBucket> Buckets;

  // Executes one candidate input and accepts it if it discovers a new
  // path or fills an unsaturated one. With \p Record set the execution
  // snapshots states and, on acceptance, is kept for phase 4 — used by
  // the phases whose acceptance rate is high enough that recording
  // up front is cheaper than re-executing later.
  auto TryInput = [&](const std::vector<Value> &Inputs, bool Record) -> bool {
    ++LocalStats.Attempts;
    ExecResult Run = execute(P, Fn, deepCopyInputs(Inputs),
                             Record ? FullOptions : ProbeOptions);
    if (Run.Status == ExecStatus::OutOfFuel) {
      ++LocalStats.Timeouts;
      return false;
    }
    if (Run.Status == ExecStatus::MemoryLimit) {
      ++LocalStats.MemoryExceeded;
      return false;
    }
    if (Run.Status == ExecStatus::RuntimeError) {
      ++LocalStats.Faults;
      return false;
    }
    ++LocalStats.OkRuns;
    std::string Key = pathKeyOf(Run);
    auto It = PathIndex.find(Key);
    if (It == PathIndex.end()) {
      if (Buckets.size() >= Options.TargetPaths)
        return false; // enough paths; ignore further novelty
      PathIndex.emplace(std::move(Key), Buckets.size());
      Buckets.emplace_back();
      Buckets.back().accept(Inputs, std::move(Run), Record);
      return true;
    }
    PathBucket &Bucket = Buckets[It->second];
    if (Bucket.Inputs.size() < Options.ExecutionsPerPath) {
      Bucket.accept(Inputs, std::move(Run), Record);
      return true;
    }
    return false;
  };

  // Phase 1: random exploration. Methods that look hostile (every
  // early probe exhausts its fuel or memory budget) are abandoned
  // quickly — the Table 1 "takes too long" filter and its allocation-
  // bomb sibling should not themselves take long.
  // Probes stay recording-free: most random inputs are rejected, so
  // snapshotting them up front would be wasted work.
  for (unsigned Attempt = 0; Attempt < Options.MaxAttempts; ++Attempt) {
    unsigned Hostile = LocalStats.Timeouts + LocalStats.MemoryExceeded;
    if (Hostile >= 8 && Hostile == LocalStats.Attempts)
      break;
    if (Buckets.size() >= Options.TargetPaths) {
      // Stop early once every discovered path is also saturated.
      bool AllFull = true;
      for (const PathBucket &Bucket : Buckets)
        if (Bucket.Inputs.size() < Options.ExecutionsPerPath) {
          AllFull = false;
          break;
        }
      if (AllFull)
        break;
    }
    TryInput(randomInputs(Fn, P, R, Options.Input), /*Record=*/false);
  }
  LocalStats.ExploreSeconds = Phase.seconds();

  // Phase 2: symbolic seeding of paths random testing missed. Witness
  // inputs target an undiscovered path, so acceptance is near-certain:
  // record immediately and spare phase 4 the re-execution.
  Phase.reset();
  if (Options.UseSymbolicSeeding &&
      Buckets.size() < Options.TargetPaths) {
    SymxOptions Symx;
    Symx.MaxPaths = Options.TargetPaths;
    Symx.Solver.Seed = Options.Seed ^ 0x5EEDu;
    for (const SymbolicPath &Path : enumeratePaths(P, Fn, Symx)) {
      if (Buckets.size() >= Options.TargetPaths)
        break;
      if (PathIndex.count(Path.Trace.pathKey()))
        continue;
      if (TryInput(Path.WitnessInputs, /*Record=*/true))
        ++LocalStats.SymbolicSeeds;
    }
  }
  LocalStats.SymbolicSeconds = Phase.seconds();

  // Phase 3: mutate per-path representatives to fill concrete slots.
  // Mutants mostly stay on their seed's path, so record these too.
  Phase.reset();
  for (size_t Index = 0; Index < Buckets.size(); ++Index) {
    unsigned Budget = Options.MutationAttemptsPerPath;
    while (Buckets[Index].Inputs.size() < Options.ExecutionsPerPath &&
           Budget-- > 0) {
      const std::vector<Value> &Seed =
          Buckets[Index].Inputs[R.nextBelow(Buckets[Index].Inputs.size())];
      TryInput(mutateInputs(Seed, R, Options.Input), /*Record=*/true);
    }
  }
  LocalStats.MutateSeconds = Phase.seconds();

  // Phase 4: assemble every selected input's state-recorded execution,
  // running the interpreter only for inputs accepted without recording
  // (phase-1 discoveries).
  Phase.reset();
  size_t TotalAccepted = 0;
  for (const PathBucket &Bucket : Buckets)
    TotalAccepted += Bucket.Inputs.size();
  std::vector<ExecResult> Results;
  std::vector<std::vector<Value>> AllInputs;
  Results.reserve(TotalAccepted);
  AllInputs.reserve(TotalAccepted);
  if (AcceptedOut) {
    AcceptedOut->clear();
    AcceptedOut->reserve(TotalAccepted);
  }
  for (PathBucket &Bucket : Buckets)
    for (size_t I = 0; I < Bucket.Inputs.size(); ++I) {
      if (Bucket.HasRecorded[I])
        Results.push_back(std::move(Bucket.Recorded[I]));
      else
        Results.push_back(
            execute(P, Fn, deepCopyInputs(Bucket.Inputs[I]), FullOptions));
      AllInputs.push_back(Bucket.Inputs[I]);
      if (AcceptedOut)
        AcceptedOut->push_back(Bucket.Inputs[I]);
    }
  MethodTraces Out = groupByPath(Fn, Results, AllInputs);
  LocalStats.RecordSeconds = Phase.seconds();
  return Out;
}

/// Reproduces a pipeline invocation from a cache entry. Restores the
/// discovery counters (so corpus filter decisions match the cold run),
/// then either re-binds the cached traces (full entries) or replays the
/// cached accepted inputs through the recording interpreter. Returns
/// false — with \p Out untouched — when the entry cannot be applied to
/// this program; callers fall back to the full pipeline.
bool replayEntry(const Program &P, const FunctionDecl &Fn,
                 const TestGenOptions &Options, const CachedTraceEntry &Entry,
                 TraceCacheMode Mode, CollectStats &LocalStats,
                 MethodTraces &Out) {
  Stopwatch Replay;
  if (Mode == TraceCacheMode::Full && Entry.HasTraces) {
    if (!materializeTraces(Entry.Traces, P, Fn, Out))
      return false;
  } else {
    InterpOptions FullOptions = Options.Interp;
    FullOptions.RecordStates = true;
    std::vector<ExecResult> Results;
    std::vector<std::vector<Value>> AllInputs;
    Results.reserve(Entry.AcceptedInputs.size());
    AllInputs.reserve(Entry.AcceptedInputs.size());
    for (const std::vector<PortableValue> &PIn : Entry.AcceptedInputs) {
      std::vector<Value> Inputs;
      Inputs.reserve(PIn.size());
      for (const PortableValue &PV : PIn) {
        Value V;
        if (!fromPortable(PV, P, V))
          return false;
        Inputs.push_back(std::move(V));
      }
      // Arity is implied by the key (the signature is part of the
      // hashed source); still guard so a colliding or hand-edited
      // entry degrades to a miss instead of tripping interpreter
      // invariants.
      if (Inputs.size() != Fn.Params.size())
        return false;
      Results.push_back(execute(P, Fn, deepCopyInputs(Inputs), FullOptions));
      AllInputs.push_back(std::move(Inputs));
    }
    Out = groupByPath(Fn, Results, AllInputs);
  }
  LocalStats.Attempts = Entry.Attempts;
  LocalStats.OkRuns = Entry.OkRuns;
  LocalStats.Faults = Entry.Faults;
  LocalStats.Timeouts = Entry.Timeouts;
  LocalStats.MemoryExceeded = Entry.MemoryExceeded;
  LocalStats.SymbolicSeeds = Entry.SymbolicSeeds;
  LocalStats.ReplaySeconds = Replay.seconds();
  return true;
}

} // namespace

MethodTraces liger::collectTraces(const Program &P, const FunctionDecl &Fn,
                                  const TestGenOptions &Options,
                                  CollectStats *Stats) {
  CollectStats LocalStats;
  LocalStats.CacheBypasses = 1;
  MethodTraces Out = runPipeline(P, Fn, Options, LocalStats, nullptr);
  if (Stats)
    *Stats = LocalStats;
  return Out;
}

MethodTraces liger::collectTracesCached(const Program &P,
                                        const FunctionDecl &Fn,
                                        const std::string &SourceText,
                                        const TestGenOptions &Options,
                                        TraceCache *Cache,
                                        CollectStats *Stats) {
  if (!Cache || Cache->mode() == TraceCacheMode::Off)
    return collectTraces(P, Fn, Options, Stats);

  CollectStats LocalStats;
  TraceCacheKey Key = traceCacheKey(SourceText, Fn.Name, Options);
  CachedTraceEntry Entry;
  if (Cache->lookup(Key, Entry)) {
    MethodTraces Out;
    if (replayEntry(P, Fn, Options, Entry, Cache->mode(), LocalStats, Out)) {
      LocalStats.CacheHits = 1;
      if (Stats)
        *Stats = LocalStats;
      return Out;
    }
    // Unapplicable entry (e.g. hashed-field-set change without a salt
    // bump during development): recompute from scratch.
    LocalStats = CollectStats();
  }

  LocalStats.CacheMisses = 1;
  std::vector<std::vector<Value>> Accepted;
  MethodTraces Out = runPipeline(P, Fn, Options, LocalStats, &Accepted);

  CachedTraceEntry NewEntry;
  NewEntry.Attempts = LocalStats.Attempts;
  NewEntry.OkRuns = LocalStats.OkRuns;
  NewEntry.Faults = LocalStats.Faults;
  NewEntry.Timeouts = LocalStats.Timeouts;
  NewEntry.MemoryExceeded = LocalStats.MemoryExceeded;
  NewEntry.SymbolicSeeds = LocalStats.SymbolicSeeds;
  NewEntry.AcceptedInputs.reserve(Accepted.size());
  for (const std::vector<Value> &Inputs : Accepted) {
    std::vector<PortableValue> PIn;
    PIn.reserve(Inputs.size());
    for (const Value &V : Inputs)
      PIn.push_back(toPortable(V));
    NewEntry.AcceptedInputs.push_back(std::move(PIn));
  }
  if (Cache->mode() == TraceCacheMode::Full) {
    NewEntry.HasTraces = true;
    NewEntry.Traces = toPortable(Out);
  }
  Cache->store(Key, std::move(NewEntry));

  if (Stats)
    *Stats = LocalStats;
  return Out;
}
