//===-- testgen/TraceCache.cpp - Content-addressed trace cache ------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/TraceCache.h"

#include "support/BinaryIO.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace liger;

namespace {

//===----------------------------------------------------------------------===//
// LGTR container constants
//===----------------------------------------------------------------------===//

/// Section tags, spelled as four ASCII bytes (little-endian u32) —
/// same discipline as the LGCK checkpoint format.
constexpr uint32_t tagOf(char A, char B, char C, char D) {
  return static_cast<uint32_t>(static_cast<uint8_t>(A)) |
         static_cast<uint32_t>(static_cast<uint8_t>(B)) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(C)) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(D)) << 24;
}
constexpr uint32_t MagicLGTR = tagOf('L', 'G', 'T', 'R');
constexpr uint32_t FormatVersion = 2; // v2: MemoryExceeded in STAT
constexpr uint32_t TagStats = tagOf('S', 'T', 'A', 'T');
constexpr uint32_t TagInputs = tagOf('I', 'N', 'P', 'T');
constexpr uint32_t TagTraces = tagOf('T', 'R', 'C', 'E');

/// Bump to invalidate every existing key when the hashed field set of
/// traceCacheKey changes.
constexpr uint64_t KeySalt = 0x4C47545203ULL; // "LGTR" + key schema 03

/// Sanity bounds: real entries are small, so anything bigger marks
/// corruption and is rejected before any allocation happens.
constexpr uint64_t MaxStringLen = 1ULL << 20;
constexpr uint64_t MaxSections = 16;
constexpr uint64_t MaxEntryBytes = 1ULL << 30;
constexpr unsigned MaxValueDepth = 64;

//===----------------------------------------------------------------------===//
// In-memory byte stream helpers
//===----------------------------------------------------------------------===//
// Entries are serialized into a buffer first so the payload checksum
// can be computed before anything touches the disk, and parsed from a
// buffer so a checksum mismatch rejects the file before any payload
// byte is interpreted. Reads are bounded exactly like BinaryReader:
// a truncated or corrupt buffer can never read past its end or induce
// an oversized allocation.

void putBytes(std::string &Out, const void *Data, size_t Size) {
  Out.append(static_cast<const char *>(Data), Size);
}
void putU8(std::string &Out, uint8_t V) { putBytes(Out, &V, sizeof(V)); }
void putU32(std::string &Out, uint32_t V) { putBytes(Out, &V, sizeof(V)); }
void putU64(std::string &Out, uint64_t V) { putBytes(Out, &V, sizeof(V)); }
void putI64(std::string &Out, int64_t V) {
  putU64(Out, static_cast<uint64_t>(V));
}
void putString(std::string &Out, const std::string &S) {
  putU64(Out, S.size());
  putBytes(Out, S.data(), S.size());
}

/// Bounded reader over a byte buffer. After the first failure every
/// later call fails too.
class BufReader {
public:
  BufReader(const char *Data, size_t Size) : Data(Data), Left(Size) {}

  bool readBytes(void *Out, size_t Size) {
    if (Failed || Size > Left) {
      Failed = true;
      return false;
    }
    std::memcpy(Out, Data, Size);
    Data += Size;
    Left -= Size;
    return true;
  }
  bool readU8(uint8_t &V) { return readBytes(&V, sizeof(V)); }
  bool readU32(uint32_t &V) { return readBytes(&V, sizeof(V)); }
  bool readU64(uint64_t &V) { return readBytes(&V, sizeof(V)); }
  bool readI64(int64_t &V) {
    uint64_t U = 0;
    if (!readU64(U))
      return false;
    V = static_cast<int64_t>(U);
    return true;
  }
  bool readString(std::string &Out, uint64_t MaxLen) {
    uint64_t Len = 0;
    if (!readU64(Len))
      return false;
    if (Len > MaxLen || Len > Left) {
      Failed = true;
      return false;
    }
    Out.assign(Data, static_cast<size_t>(Len));
    Data += Len;
    Left -= Len;
    return true;
  }
  bool skip(uint64_t Count) {
    if (Failed || Count > Left) {
      Failed = true;
      return false;
    }
    Data += Count;
    Left -= Count;
    return true;
  }
  /// A stored element count can never exceed the remaining bytes (every
  /// element costs at least one byte), so this check rejects corrupt
  /// counts before any reserve/resize.
  bool plausibleCount(uint64_t Count) const { return Count <= Left; }

  uint64_t remaining() const { return Left; }
  bool ok() const { return !Failed; }

private:
  const char *Data;
  uint64_t Left;
  bool Failed = false;
};

//===----------------------------------------------------------------------===//
// Portable value serialization
//===----------------------------------------------------------------------===//

void putValue(std::string &Out, const PortableValue &V) {
  putU8(Out, static_cast<uint8_t>(V.Kind));
  switch (V.Kind) {
  case ValueKind::Undef:
    break;
  case ValueKind::Int:
    putI64(Out, V.Int);
    break;
  case ValueKind::Bool:
    putU8(Out, V.Bool ? 1 : 0);
    break;
  case ValueKind::String:
    putString(Out, V.Str);
    break;
  case ValueKind::Struct:
    putString(Out, V.Str); // struct type name
    [[fallthrough]];
  case ValueKind::Array:
    putU64(Out, V.Elements.size());
    for (const PortableValue &E : V.Elements)
      putValue(Out, E);
    break;
  }
}

bool readValue(BufReader &R, PortableValue &Out, unsigned Depth) {
  if (Depth > MaxValueDepth)
    return false;
  uint8_t Kind = 0;
  if (!R.readU8(Kind) || Kind > static_cast<uint8_t>(ValueKind::Struct))
    return false;
  Out.Kind = static_cast<ValueKind>(Kind);
  Out.Elements.clear();
  switch (Out.Kind) {
  case ValueKind::Undef:
    return true;
  case ValueKind::Int:
    return R.readI64(Out.Int);
  case ValueKind::Bool: {
    uint8_t B = 0;
    if (!R.readU8(B))
      return false;
    Out.Bool = B != 0;
    return true;
  }
  case ValueKind::String:
    return R.readString(Out.Str, MaxStringLen);
  case ValueKind::Struct:
    if (!R.readString(Out.Str, MaxStringLen))
      return false;
    [[fallthrough]];
  case ValueKind::Array: {
    uint64_t Count = 0;
    if (!R.readU64(Count) || !R.plausibleCount(Count))
      return false;
    Out.Elements.resize(static_cast<size_t>(Count));
    for (PortableValue &E : Out.Elements)
      if (!readValue(R, E, Depth + 1))
        return false;
    return true;
  }
  }
  return false;
}

void putValueList(std::string &Out, const std::vector<PortableValue> &Vs) {
  putU64(Out, Vs.size());
  for (const PortableValue &V : Vs)
    putValue(Out, V);
}

bool readValueList(BufReader &R, std::vector<PortableValue> &Out) {
  uint64_t Count = 0;
  if (!R.readU64(Count) || !R.plausibleCount(Count))
    return false;
  Out.resize(static_cast<size_t>(Count));
  for (PortableValue &V : Out)
    if (!readValue(R, V, 0))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Section payloads
//===----------------------------------------------------------------------===//

std::string statsSection(const CachedTraceEntry &E) {
  std::string Out;
  putU32(Out, E.Attempts);
  putU32(Out, E.OkRuns);
  putU32(Out, E.Faults);
  putU32(Out, E.Timeouts);
  putU32(Out, E.MemoryExceeded);
  putU32(Out, E.SymbolicSeeds);
  return Out;
}

bool readStatsSection(BufReader &R, CachedTraceEntry &E) {
  return R.readU32(E.Attempts) && R.readU32(E.OkRuns) &&
         R.readU32(E.Faults) && R.readU32(E.Timeouts) &&
         R.readU32(E.MemoryExceeded) && R.readU32(E.SymbolicSeeds);
}

std::string inputsSection(const CachedTraceEntry &E) {
  std::string Out;
  putU64(Out, E.AcceptedInputs.size());
  for (const std::vector<PortableValue> &In : E.AcceptedInputs)
    putValueList(Out, In);
  return Out;
}

bool readInputsSection(BufReader &R, CachedTraceEntry &E) {
  uint64_t Count = 0;
  if (!R.readU64(Count) || !R.plausibleCount(Count))
    return false;
  E.AcceptedInputs.resize(static_cast<size_t>(Count));
  for (std::vector<PortableValue> &In : E.AcceptedInputs)
    if (!readValueList(R, In))
      return false;
  return true;
}

std::string tracesSection(const PortableMethodTraces &T) {
  std::string Out;
  putU64(Out, T.VarNames.size());
  for (const std::string &Name : T.VarNames)
    putString(Out, Name);
  putU64(Out, T.Paths.size());
  for (const PortableBlendedTrace &Path : T.Paths) {
    putU64(Out, Path.Steps.size());
    for (const PortableStep &Step : Path.Steps) {
      putU32(Out, Step.StmtId);
      putU8(Out, static_cast<uint8_t>(Step.Kind));
    }
    putU64(Out, Path.Concrete.size());
    for (const PortableStateTrace &ST : Path.Concrete) {
      putValueList(Out, ST.Initial);
      putU64(Out, ST.States.size());
      for (const std::vector<PortableValue> &State : ST.States)
        putValueList(Out, State);
    }
    putU64(Out, Path.Inputs.size());
    for (const std::vector<PortableValue> &In : Path.Inputs)
      putValueList(Out, In);
  }
  return Out;
}

bool readTracesSection(BufReader &R, PortableMethodTraces &T) {
  uint64_t Count = 0;
  if (!R.readU64(Count) || !R.plausibleCount(Count))
    return false;
  T.VarNames.resize(static_cast<size_t>(Count));
  for (std::string &Name : T.VarNames)
    if (!R.readString(Name, MaxStringLen))
      return false;
  if (!R.readU64(Count) || !R.plausibleCount(Count))
    return false;
  T.Paths.resize(static_cast<size_t>(Count));
  for (PortableBlendedTrace &Path : T.Paths) {
    if (!R.readU64(Count) || !R.plausibleCount(Count))
      return false;
    Path.Steps.resize(static_cast<size_t>(Count));
    for (PortableStep &Step : Path.Steps) {
      uint8_t Kind = 0;
      if (!R.readU32(Step.StmtId) || !R.readU8(Kind) ||
          Kind > static_cast<uint8_t>(StepKind::CondFalse))
        return false;
      Step.Kind = static_cast<StepKind>(Kind);
    }
    if (!R.readU64(Count) || !R.plausibleCount(Count))
      return false;
    Path.Concrete.resize(static_cast<size_t>(Count));
    for (PortableStateTrace &ST : Path.Concrete) {
      if (!readValueList(R, ST.Initial))
        return false;
      if (!R.readU64(Count) || !R.plausibleCount(Count))
        return false;
      ST.States.resize(static_cast<size_t>(Count));
      for (std::vector<PortableValue> &State : ST.States)
        if (!readValueList(R, State))
          return false;
    }
    if (!R.readU64(Count) || !R.plausibleCount(Count))
      return false;
    Path.Inputs.resize(static_cast<size_t>(Count));
    for (std::vector<PortableValue> &In : Path.Inputs)
      if (!readValueList(R, In))
        return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Statement re-binding
//===----------------------------------------------------------------------===//

void collectStmtIds(const Stmt *S,
                    std::unordered_map<uint32_t, const Stmt *> &Map) {
  if (!S)
    return;
  Map.emplace(S->id(), S);
  switch (S->kind()) {
  case StmtKind::Block:
    for (const Stmt *Child : cast<BlockStmt>(S)->body())
      collectStmtIds(Child, Map);
    break;
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    collectStmtIds(If->thenStmt(), Map);
    collectStmtIds(If->elseStmt(), Map);
    break;
  }
  case StmtKind::While:
    collectStmtIds(cast<WhileStmt>(S)->body(), Map);
    break;
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    collectStmtIds(For->init(), Map);
    collectStmtIds(For->step(), Map);
    collectStmtIds(For->body(), Map);
    break;
  }
  default:
    break;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Mode parsing and key computation
//===----------------------------------------------------------------------===//

bool liger::parseTraceCacheMode(const std::string &Text,
                                TraceCacheMode &Out) {
  if (Text == "off")
    Out = TraceCacheMode::Off;
  else if (Text == "inputs")
    Out = TraceCacheMode::Inputs;
  else if (Text == "full")
    Out = TraceCacheMode::Full;
  else
    return false;
  return true;
}

TraceCacheKey liger::traceCacheKey(const std::string &SourceText,
                                   const std::string &MethodName,
                                   const TestGenOptions &Options) {
  StableHash H;
  H.addU64(KeySalt);
  H.addString(SourceText);
  H.addString(MethodName);
  // Input domain.
  H.addI64(Options.Input.IntLo);
  H.addI64(Options.Input.IntHi);
  H.addU64(Options.Input.ArrayLenChoices.size());
  for (size_t Len : Options.Input.ArrayLenChoices)
    H.addU64(Len);
  H.addU64(Options.Input.StringPool.size());
  for (const std::string &S : Options.Input.StringPool)
    H.addString(S);
  H.addF64(Options.Input.InterestingProb);
  // Interpreter budgets. RecordStates is deliberately excluded: the
  // pipeline overrides it per phase, so it never affects the output.
  H.addU64(Options.Interp.Fuel);
  H.addU64(Options.Interp.MaxRecordedSteps);
  H.addU64(Options.Interp.MaxMemoryBytes);
  // Pipeline budgets and seed.
  H.addU32(Options.TargetPaths);
  H.addU32(Options.ExecutionsPerPath);
  H.addU32(Options.MaxAttempts);
  H.addU32(Options.MutationAttemptsPerPath);
  H.addBool(Options.UseSymbolicSeeding);
  H.addU64(Options.Seed);
  // Dataset scope: partitions one shared cache directory per corpus.
  H.addString(Options.Scope);
  return H.digest128();
}

//===----------------------------------------------------------------------===//
// Portable value conversion
//===----------------------------------------------------------------------===//

PortableValue liger::toPortable(const Value &V) {
  PortableValue Out;
  Out.Kind = V.kind();
  switch (V.kind()) {
  case ValueKind::Undef:
    break;
  case ValueKind::Int:
    Out.Int = V.asInt();
    break;
  case ValueKind::Bool:
    Out.Bool = V.asBool();
    break;
  case ValueKind::String:
    Out.Str = V.asString();
    break;
  case ValueKind::Struct:
    Out.Str = V.structDecl()->Name;
    [[fallthrough]];
  case ValueKind::Array:
    Out.Elements.reserve(V.elements().size());
    for (const Value &E : V.elements())
      Out.Elements.push_back(toPortable(E));
    break;
  }
  return Out;
}

bool liger::fromPortable(const PortableValue &PV, const Program &P,
                         Value &Out) {
  switch (PV.Kind) {
  case ValueKind::Undef:
    Out = Value::undef();
    return true;
  case ValueKind::Int:
    Out = Value::makeInt(PV.Int);
    return true;
  case ValueKind::Bool:
    Out = Value::makeBool(PV.Bool);
    return true;
  case ValueKind::String:
    Out = Value::makeString(PV.Str);
    return true;
  case ValueKind::Array: {
    std::vector<Value> Elements;
    Elements.reserve(PV.Elements.size());
    for (const PortableValue &E : PV.Elements) {
      Value V;
      if (!fromPortable(E, P, V))
        return false;
      Elements.push_back(std::move(V));
    }
    Out = Value::makeArray(std::move(Elements));
    return true;
  }
  case ValueKind::Struct: {
    const StructDecl *Decl = P.findStruct(PV.Str);
    if (!Decl || Decl->Fields.size() != PV.Elements.size())
      return false;
    std::vector<Value> Fields;
    Fields.reserve(PV.Elements.size());
    for (const PortableValue &E : PV.Elements) {
      Value V;
      if (!fromPortable(E, P, V))
        return false;
      Fields.push_back(std::move(V));
    }
    Out = Value::makeStruct(Decl, std::move(Fields));
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Portable trace conversion
//===----------------------------------------------------------------------===//

namespace {

std::vector<PortableValue> toPortableList(const std::vector<Value> &Vs) {
  std::vector<PortableValue> Out;
  Out.reserve(Vs.size());
  for (const Value &V : Vs)
    Out.push_back(toPortable(V));
  return Out;
}

bool fromPortableList(const std::vector<PortableValue> &PVs,
                      const Program &P, std::vector<Value> &Out) {
  Out.clear();
  Out.reserve(PVs.size());
  for (const PortableValue &PV : PVs) {
    Value V;
    if (!fromPortable(PV, P, V))
      return false;
    Out.push_back(std::move(V));
  }
  return true;
}

} // namespace

PortableMethodTraces liger::toPortable(const MethodTraces &Traces) {
  PortableMethodTraces Out;
  Out.VarNames = Traces.VarNames;
  Out.Paths.reserve(Traces.Paths.size());
  for (const BlendedTrace &Path : Traces.Paths) {
    PortableBlendedTrace PPath;
    PPath.Steps.reserve(Path.Symbolic.Steps.size());
    for (const SymbolicStep &Step : Path.Symbolic.Steps)
      PPath.Steps.push_back({Step.Statement->id(), Step.Kind});
    PPath.Concrete.reserve(Path.Concrete.size());
    for (const StateTrace &ST : Path.Concrete) {
      PortableStateTrace PST;
      PST.Initial = toPortableList(ST.Initial.Values);
      PST.States.reserve(ST.States.size());
      for (const ProgramState &State : ST.States)
        PST.States.push_back(toPortableList(State.Values));
      PPath.Concrete.push_back(std::move(PST));
    }
    PPath.Inputs.reserve(Path.Inputs.size());
    for (const std::vector<Value> &In : Path.Inputs)
      PPath.Inputs.push_back(toPortableList(In));
    Out.Paths.push_back(std::move(PPath));
  }
  return Out;
}

bool liger::materializeTraces(const PortableMethodTraces &PT,
                              const Program &P, const FunctionDecl &Fn,
                              MethodTraces &Out) {
  // Statements can come from any function in the program (the
  // interpreter records across calls), so index them all.
  std::unordered_map<uint32_t, const Stmt *> StmtById;
  for (const FunctionDecl &F : P.Functions)
    collectStmtIds(F.Body, StmtById);

  Out = MethodTraces();
  Out.Fn = &Fn;
  Out.VarNames = PT.VarNames;
  Out.Paths.reserve(PT.Paths.size());
  for (const PortableBlendedTrace &PPath : PT.Paths) {
    BlendedTrace Path;
    Path.Symbolic.Steps.reserve(PPath.Steps.size());
    for (const PortableStep &Step : PPath.Steps) {
      auto It = StmtById.find(Step.StmtId);
      if (It == StmtById.end())
        return false;
      Path.Symbolic.Steps.push_back({It->second, Step.Kind});
    }
    Path.Concrete.reserve(PPath.Concrete.size());
    for (const PortableStateTrace &PST : PPath.Concrete) {
      StateTrace ST;
      if (!fromPortableList(PST.Initial, P, ST.Initial.Values))
        return false;
      ST.States.reserve(PST.States.size());
      for (const std::vector<PortableValue> &State : PST.States) {
        ProgramState PS;
        if (!fromPortableList(State, P, PS.Values))
          return false;
        ST.States.push_back(std::move(PS));
      }
      Path.Concrete.push_back(std::move(ST));
    }
    Path.Inputs.reserve(PPath.Inputs.size());
    for (const std::vector<PortableValue> &In : PPath.Inputs) {
      std::vector<Value> Values;
      if (!fromPortableList(In, P, Values))
        return false;
      Path.Inputs.push_back(std::move(Values));
    }
    Out.Paths.push_back(std::move(Path));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Container serialization
//===----------------------------------------------------------------------===//

std::string liger::serializeCacheEntry(const TraceCacheKey &Key,
                                       const CachedTraceEntry &Entry) {
  // Payload: section count, then tag/size/bytes per section.
  std::string Payload;
  std::vector<std::pair<uint32_t, std::string>> Sections;
  Sections.emplace_back(TagStats, statsSection(Entry));
  Sections.emplace_back(TagInputs, inputsSection(Entry));
  if (Entry.HasTraces)
    Sections.emplace_back(TagTraces, tracesSection(Entry.Traces));
  putU32(Payload, static_cast<uint32_t>(Sections.size()));
  for (const auto &[Tag, Bytes] : Sections) {
    putU32(Payload, Tag);
    putU64(Payload, Bytes.size());
    Payload += Bytes;
  }

  StableHash Checksum;
  Checksum.addBytes(Payload.data(), Payload.size());
  Digest128 Sum = Checksum.digest128();

  std::string Out;
  putU32(Out, MagicLGTR);
  putU32(Out, FormatVersion);
  putU64(Out, Key.Hi);
  putU64(Out, Key.Lo);
  putU64(Out, Payload.size());
  putU64(Out, Sum.Hi);
  putU64(Out, Sum.Lo);
  Out += Payload;
  return Out;
}

bool liger::deserializeCacheEntry(const std::string &Bytes,
                                  const TraceCacheKey &Key,
                                  CachedTraceEntry &Out) {
  BufReader Header(Bytes.data(), Bytes.size());
  uint32_t Magic = 0, Version = 0;
  uint64_t KeyHi = 0, KeyLo = 0, PayloadSize = 0, SumHi = 0, SumLo = 0;
  if (!Header.readU32(Magic) || Magic != MagicLGTR)
    return false;
  if (!Header.readU32(Version) || Version != FormatVersion)
    return false;
  if (!Header.readU64(KeyHi) || !Header.readU64(KeyLo) ||
      KeyHi != Key.Hi || KeyLo != Key.Lo)
    return false;
  if (!Header.readU64(PayloadSize) || !Header.readU64(SumHi) ||
      !Header.readU64(SumLo) || PayloadSize != Header.remaining())
    return false;

  const char *Payload = Bytes.data() + (Bytes.size() - PayloadSize);
  StableHash Checksum;
  Checksum.addBytes(Payload, static_cast<size_t>(PayloadSize));
  Digest128 Sum = Checksum.digest128();
  if (Sum.Hi != SumHi || Sum.Lo != SumLo)
    return false;

  BufReader R(Payload, static_cast<size_t>(PayloadSize));
  uint32_t NumSections = 0;
  if (!R.readU32(NumSections) || NumSections > MaxSections)
    return false;
  Out = CachedTraceEntry();
  bool SawStats = false, SawInputs = false;
  for (uint32_t I = 0; I < NumSections; ++I) {
    uint32_t Tag = 0;
    uint64_t Size = 0;
    if (!R.readU32(Tag) || !R.readU64(Size) || Size > R.remaining())
      return false;
    uint64_t Before = R.remaining();
    if (Tag == TagStats) {
      if (!readStatsSection(R, Out))
        return false;
      SawStats = true;
    } else if (Tag == TagInputs) {
      if (!readInputsSection(R, Out))
        return false;
      SawInputs = true;
    } else if (Tag == TagTraces) {
      if (!readTracesSection(R, Out.Traces))
        return false;
      Out.HasTraces = true;
    } else {
      // Unknown section from a future writer at the same version is
      // still corruption here (the version gates format changes), but
      // skipping keeps the reader total either way.
      if (!R.skip(Size))
        return false;
    }
    // A section must consume exactly the bytes it declared.
    if (Before - R.remaining() != Size)
      return false;
  }
  return R.ok() && R.remaining() == 0 && SawStats && SawInputs;
}

//===----------------------------------------------------------------------===//
// TraceCache
//===----------------------------------------------------------------------===//

TraceCache::TraceCache(TraceCacheMode Mode, std::string Dir,
                       uint64_t MaxBytes)
    : Mode(Mode), Dir(std::move(Dir)), MaxBytes(MaxBytes) {}

std::string TraceCache::entryFileName(const TraceCacheKey &Key) {
  return Key.hex() + ".lgtr";
}

std::string TraceCache::entryPath(const TraceCacheKey &Key) const {
  if (Dir.empty())
    return "";
  return Dir + "/" + entryFileName(Key);
}

namespace {

enum class SlurpResult { Ok, Absent, Bad };

/// Reads a whole regular file into \p Out (bounded). The size comes
/// from the open handle, never from a separate stat: concurrent serve
/// workers atomically replace entries via rename, and an open FILE*
/// pins one whole snapshot of the file, so there is no window where a
/// reader can observe a size that does not match what it then reads.
/// Absent (never created, or unlinked between the caller's decision
/// and the open) is distinguished from Bad (I/O error, oversized) so
/// lookup() does not count replacement races as corruption.
SlurpResult slurpEntryFile(const std::string &Path, std::string &Out) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return SlurpResult::Absent;
  struct Closer {
    FILE *F;
    ~Closer() { std::fclose(F); }
  } Close{F};
  if (std::fseek(F, 0, SEEK_END) != 0)
    return SlurpResult::Bad;
  long End = std::ftell(F);
  if (End < 0 || static_cast<uint64_t>(End) > MaxEntryBytes ||
      std::fseek(F, 0, SEEK_SET) != 0)
    return SlurpResult::Bad;
  size_t Size = static_cast<size_t>(End);
  Out.assign(Size, '\0');
  if (Size != 0 && std::fread(Out.data(), 1, Size, F) != Size)
    return SlurpResult::Bad;
  return SlurpResult::Ok;
}

} // namespace

bool TraceCache::lookup(const TraceCacheKey &Key, CachedTraceEntry &Out) {
  std::string Hex = Key.hex();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = Memory.find(Hex);
    if (It != Memory.end()) {
      Out = It->second;
      Hits.fetch_add(1);
      return true;
    }
  }
  if (!Dir.empty()) {
    std::string Path = entryPath(Key);
    std::string Bytes;
    switch (slurpEntryFile(Path, Bytes)) {
    case SlurpResult::Ok:
      if (deserializeCacheEntry(Bytes, Key, Out)) {
        std::lock_guard<std::mutex> Lock(Mutex);
        Memory.emplace(std::move(Hex), Out);
        Hits.fetch_add(1);
        return true;
      }
      BadEntries.fetch_add(1);
      break;
    case SlurpResult::Bad:
      BadEntries.fetch_add(1);
      break;
    case SlurpResult::Absent:
      break;
    }
  }
  Misses.fetch_add(1);
  return false;
}

void TraceCache::store(const TraceCacheKey &Key, CachedTraceEntry Entry) {
  bool Wrote = false;
  if (!Dir.empty() && ensureDirExists(Dir)) {
    std::string Bytes = serializeCacheEntry(Key, Entry);
    // Failures are non-fatal: the entry still serves from memory, and
    // the next cold run will simply re-store it.
    Wrote = atomicWriteFile(entryPath(Key), [&](BinaryWriter &W) {
      W.writeBytes(Bytes.data(), Bytes.size());
    });
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Wrote && MaxBytes != 0)
    evictOverBudget(entryFileName(Key));
  Memory[Key.hex()] = std::move(Entry);
  Stores.fetch_add(1);
}

void TraceCache::evictOverBudget(const std::string &KeepFile) {
  // One scan per store keeps this free of persistent bookkeeping that
  // could drift from the directory (other processes store here too).
  struct DiskEntry {
    std::string Name;
    uint64_t Size;
    int64_t Mtime;
  };
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return;
  std::vector<DiskEntry> Entries;
  uint64_t Total = 0;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < 5 || Name.compare(Name.size() - 5, 5, ".lgtr") != 0)
      continue;
    struct stat St;
    if (::stat((Dir + "/" + Name).c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Total += static_cast<uint64_t>(St.st_size);
    Entries.push_back({std::move(Name), static_cast<uint64_t>(St.st_size),
                       static_cast<int64_t>(St.st_mtime)});
  }
  closedir(D);
  if (Total <= MaxBytes)
    return;
  // Oldest mtime first; name breaks ties so eviction order is stable
  // even when a burst of stores lands within one mtime granule.
  std::sort(Entries.begin(), Entries.end(),
            [](const DiskEntry &A, const DiskEntry &B) {
              return A.Mtime != B.Mtime ? A.Mtime < B.Mtime : A.Name < B.Name;
            });
  for (const DiskEntry &E : Entries) {
    if (Total <= MaxBytes)
      break;
    if (E.Name == KeepFile)
      continue;
    // A concurrent eviction racing us just means the unlink fails and
    // the bytes were freed anyway; only successful unlinks count.
    if (::unlink((Dir + "/" + E.Name).c_str()) == 0) {
      Total -= E.Size;
      Evictions.fetch_add(1);
    }
  }
}
