//===-- testgen/InputGen.cpp - Random typed input generation --------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/InputGen.h"

using namespace liger;

namespace {

int64_t randomInt(Rng &R, const InputGenOptions &Options) {
  if (R.nextBool(Options.InterestingProb)) {
    static const int64_t Candidates[] = {0, 1, -1};
    switch (R.nextBelow(5)) {
    case 0:
    case 1:
    case 2:
      return Candidates[R.nextBelow(3)];
    case 3:
      return Options.IntLo;
    default:
      return Options.IntHi;
    }
  }
  return R.nextInt(Options.IntLo, Options.IntHi);
}

Value randomPrimitive(TypeKind Kind, Rng &R, const InputGenOptions &Options) {
  switch (Kind) {
  case TypeKind::Int:
    return Value::makeInt(randomInt(R, Options));
  case TypeKind::Bool:
    return Value::makeBool(R.nextBool());
  case TypeKind::String:
    return Value::makeString(R.pick(Options.StringPool));
  default:
    LIGER_UNREACHABLE("not a primitive kind");
  }
}

} // namespace

Value liger::randomValueOf(const Type &Ty, const Program &P, Rng &R,
                           const InputGenOptions &Options) {
  switch (Ty.kind()) {
  case TypeKind::Int:
  case TypeKind::Bool:
  case TypeKind::String:
    return randomPrimitive(Ty.kind(), R, Options);
  case TypeKind::Array: {
    size_t Len = Options.ArrayLenChoices.empty()
                     ? 4
                     : R.pick(Options.ArrayLenChoices);
    std::vector<Value> Elements;
    Elements.reserve(Len);
    for (size_t I = 0; I < Len; ++I)
      Elements.push_back(randomPrimitive(Ty.elemKind(), R, Options));
    return Value::makeArray(std::move(Elements));
  }
  case TypeKind::Struct: {
    const StructDecl *Decl = P.findStruct(Ty.structName());
    LIGER_CHECK(Decl, "struct type without declaration");
    std::vector<Value> Fields;
    Fields.reserve(Decl->Fields.size());
    for (const TypedName &F : Decl->Fields)
      Fields.push_back(randomPrimitive(F.Ty.kind(), R, Options));
    return Value::makeStruct(Decl, std::move(Fields));
  }
  case TypeKind::Void:
    LIGER_UNREACHABLE("void has no values");
  }
  LIGER_UNREACHABLE("covered switch");
}

std::vector<Value> liger::randomInputs(const FunctionDecl &Fn,
                                       const Program &P, Rng &R,
                                       const InputGenOptions &Options) {
  std::vector<Value> Inputs;
  Inputs.reserve(Fn.Params.size());
  for (const TypedName &Param : Fn.Params)
    Inputs.push_back(randomValueOf(Param.Ty, P, R, Options));
  return Inputs;
}

std::vector<Value> liger::mutateInputs(const std::vector<Value> &Inputs,
                                       Rng &R,
                                       const InputGenOptions &Options) {
  std::vector<Value> Mutated;
  Mutated.reserve(Inputs.size());
  for (const Value &V : Inputs)
    Mutated.push_back(V.deepCopy());
  if (Mutated.empty())
    return Mutated;

  // Collect mutable scalar cells (top-level ints/bools/strings and
  // array/struct elements).
  std::vector<Value *> Cells;
  for (Value &V : Mutated) {
    switch (V.kind()) {
    case ValueKind::Int:
    case ValueKind::Bool:
    case ValueKind::String:
      Cells.push_back(&V);
      break;
    case ValueKind::Array:
    case ValueKind::Struct:
      for (Value &Elem : V.elements())
        if (Elem.isInt() || Elem.isBool() || Elem.isString())
          Cells.push_back(&Elem);
      break;
    case ValueKind::Undef:
      break;
    }
  }
  if (Cells.empty())
    return Mutated;

  Value *Cell = Cells[R.nextBelow(Cells.size())];
  switch (Cell->kind()) {
  case ValueKind::Int: {
    // Nudge by ±1/±2 or redraw; stay within the domain.
    int64_t V = Cell->asInt();
    if (R.nextBool(0.6))
      V += R.nextInt(-2, 2);
    else
      V = R.nextInt(Options.IntLo, Options.IntHi);
    V = std::max(Options.IntLo, std::min(Options.IntHi, V));
    *Cell = Value::makeInt(V);
    break;
  }
  case ValueKind::Bool:
    *Cell = Value::makeBool(!Cell->asBool());
    break;
  case ValueKind::String:
    *Cell = Value::makeString(R.pick(Options.StringPool));
    break;
  default:
    break;
  }
  return Mutated;
}
