//===-- testgen/TraceCache.h - Content-addressed trace cache ----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache for the trace-construction pipeline. The
/// key is a stable 128-bit hash over (instantiated method source,
/// method name, every TestGenOptions field that influences the
/// pipeline, seed); the value is everything needed to reproduce
/// collectTraces' output without re-running discovery:
///
///  - the discovery outcome counters (so corpus filter decisions and
///    funnel statistics are identical between cold and warm runs);
///  - the accepted inputs in phase-4 order ("inputs" mode: a hit
///    replays them through the state-recording interpreter, skipping
///    random exploration, symbolic enumeration, and mutation);
///  - optionally the recorded MethodTraces themselves ("full" mode:
///    statements are stored by NodeId and re-bound to the re-parsed
///    AST, so a hit skips the interpreter too).
///
/// Entries live in a thread-safe in-memory map and, when a directory
/// is configured, in one LGTR-versioned file per entry (same
/// magic/version/section discipline as the LGCK checkpoint format,
/// written atomically via support/BinaryIO). Every entry carries a
/// checksum over its payload: truncated, bit-flipped, or
/// version-mismatched files degrade to a cache miss, never a crash.
///
/// Values inside entries are stored in a program-independent portable
/// form (struct types by name, statements by id) because every corpus
/// sample re-parses its own Program; materialization re-binds them and
/// fails softly — any unresolvable name or id turns the hit into a
/// miss. See DESIGN.md §10 for the container layout.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_TESTGEN_TRACECACHE_H
#define LIGER_TESTGEN_TRACECACHE_H

#include "support/Hash.h"
#include "testgen/TraceCollector.h"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace liger {

/// What the pipeline is allowed to reuse.
enum class TraceCacheMode {
  Off,    ///< Cache disabled; every method runs the full pipeline.
  Inputs, ///< Reuse accepted inputs; re-run the recording interpreter.
  Full,   ///< Reuse the recorded traces; skip the interpreter entirely.
};

/// Parses "off" / "inputs" / "full"; returns false on anything else.
bool parseTraceCacheMode(const std::string &Text, TraceCacheMode &Out);

/// The content-addressed key of one pipeline invocation.
using TraceCacheKey = Digest128;

/// Computes the cache key for collecting traces of method \p MethodName
/// inside \p SourceText under \p Options. Every option that can change
/// the pipeline's output is hashed (input domains, fuel, path/execution
/// budgets, seed, dataset scope); a format-version salt invalidates old
/// keys when the hashed field set changes.
TraceCacheKey traceCacheKey(const std::string &SourceText,
                            const std::string &MethodName,
                            const TestGenOptions &Options);

/// A runtime Value lifted into program-independent form: struct types
/// are referenced by name and re-bound at materialization time.
struct PortableValue {
  ValueKind Kind = ValueKind::Undef;
  int64_t Int = 0;
  bool Bool = false;
  std::string Str;        ///< String payload or struct type name.
  std::vector<PortableValue> Elements; ///< Array/struct elements.
};

/// One symbolic-trace step, with the statement referenced by NodeId.
struct PortableStep {
  uint32_t StmtId = 0;
  StepKind Kind = StepKind::Plain;
};

/// Def. 2.3 in portable form.
struct PortableStateTrace {
  std::vector<PortableValue> Initial;
  std::vector<std::vector<PortableValue>> States;
};

/// Def. 5.1 in portable form.
struct PortableBlendedTrace {
  std::vector<PortableStep> Steps;
  std::vector<PortableStateTrace> Concrete;
  std::vector<std::vector<PortableValue>> Inputs;
};

/// A whole MethodTraces in portable form.
struct PortableMethodTraces {
  std::vector<std::string> VarNames;
  std::vector<PortableBlendedTrace> Paths;
};

/// One cache entry: discovery counters, accepted inputs, and (full
/// mode) the recorded traces.
struct CachedTraceEntry {
  /// CollectStats discovery counters of the original cold run.
  uint32_t Attempts = 0;
  uint32_t OkRuns = 0;
  uint32_t Faults = 0;
  uint32_t Timeouts = 0;
  uint32_t MemoryExceeded = 0;
  uint32_t SymbolicSeeds = 0;
  /// Accepted inputs, flattened in phase-4 (bucket, then acceptance)
  /// order — replaying them in this order reproduces groupByPath's
  /// path ordering exactly.
  std::vector<std::vector<PortableValue>> AcceptedInputs;
  /// Present when the entry was stored in Full mode.
  bool HasTraces = false;
  PortableMethodTraces Traces;
};

/// Lifts a runtime value into portable form.
PortableValue toPortable(const Value &V);

/// Re-binds a portable value against \p P (struct declarations looked
/// up by name). Returns false when a referenced struct is missing.
bool fromPortable(const PortableValue &PV, const Program &P, Value &Out);

/// Lifts collected traces into portable form (statements by id).
PortableMethodTraces toPortable(const MethodTraces &Traces);

/// Re-binds portable traces against the re-parsed \p P / \p Fn.
/// Returns false when any statement id or struct name fails to
/// resolve — callers treat that as a cache miss.
bool materializeTraces(const PortableMethodTraces &PT, const Program &P,
                       const FunctionDecl &Fn, MethodTraces &Out);

/// Thread-safe content-addressed trace cache: an in-memory map plus an
/// optional on-disk LGTR store. Shared by every corpus worker thread.
class TraceCache {
public:
  /// \p Dir may be empty for a memory-only cache. The directory (and
  /// missing parents) is created on first store. \p MaxBytes bounds
  /// the on-disk footprint: when the directory's .lgtr entries exceed
  /// it after a store, the least-recently-used entries (oldest mtime,
  /// file name as the deterministic tiebreaker) are unlinked until the
  /// total fits again. The entry just stored is never evicted, so a
  /// bound smaller than one entry still keeps the newest. 0 =
  /// unbounded. The in-memory map is never evicted — the bound exists
  /// to keep long-lived shared cache directories from growing without
  /// limit across bench sweeps.
  TraceCache(TraceCacheMode Mode, std::string Dir, uint64_t MaxBytes = 0);

  TraceCacheMode mode() const { return Mode; }
  const std::string &dir() const { return Dir; }
  uint64_t maxBytes() const { return MaxBytes; }

  /// Looks \p Key up in memory, then on disk. Disk hits are promoted
  /// into memory. Malformed disk entries count as BadEntries and miss.
  ///
  /// Safe under concurrency, including across processes sharing one
  /// directory (serve workers, parallel bench sweeps): entry files are
  /// only ever replaced atomically by rename, and the reader sizes the
  /// file from its own open handle, so every read observes one whole
  /// entry snapshot — a replacement race can at worst miss, never
  /// corrupt or misattribute an entry (the key and payload checksum
  /// are re-verified on every disk read regardless).
  bool lookup(const TraceCacheKey &Key, CachedTraceEntry &Out);

  /// Stores \p Entry in memory and, when a directory is configured, as
  /// an LGTR file (written atomically; failures are non-fatal — the
  /// cache degrades to memory-only for that entry).
  void store(const TraceCacheKey &Key, CachedTraceEntry Entry);

  /// File name (without directory) of \p Key's on-disk entry.
  static std::string entryFileName(const TraceCacheKey &Key);
  /// Full path of \p Key's on-disk entry ("" for memory-only caches).
  std::string entryPath(const TraceCacheKey &Key) const;

  // Global counters (across all threads, monotone).
  uint64_t hits() const { return Hits.load(); }
  uint64_t misses() const { return Misses.load(); }
  uint64_t stores() const { return Stores.load(); }
  /// Disk entries rejected as corrupt/truncated/version-mismatched.
  uint64_t badEntries() const { return BadEntries.load(); }
  /// On-disk entries unlinked by the MaxBytes LRU bound.
  uint64_t evictions() const { return Evictions.load(); }

private:
  /// Unlinks LRU .lgtr entries until the directory fits MaxBytes,
  /// never touching \p KeepFile (the entry just stored). Called with
  /// Mutex held so concurrent stores scan a consistent directory.
  void evictOverBudget(const std::string &KeepFile);

  TraceCacheMode Mode;
  std::string Dir;
  uint64_t MaxBytes = 0;

  std::mutex Mutex;
  std::unordered_map<std::string, CachedTraceEntry> Memory;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> BadEntries{0};
  std::atomic<uint64_t> Evictions{0};
};

/// Serializes \p Entry into LGTR container bytes (exposed for tests).
std::string serializeCacheEntry(const TraceCacheKey &Key,
                                const CachedTraceEntry &Entry);

/// Parses LGTR container bytes. Returns false (never throws, never
/// over-allocates) on any malformed input or key mismatch.
bool deserializeCacheEntry(const std::string &Bytes,
                           const TraceCacheKey &Key, CachedTraceEntry &Out);

} // namespace liger

#endif // LIGER_TESTGEN_TRACECACHE_H
