//===-- testgen/Coverage.cpp - Coverage metrics and trace reduction -------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "testgen/Coverage.h"

#include "support/Error.h"

#include <functional>

using namespace liger;

std::set<unsigned> liger::allStatementLines(const FunctionDecl &Fn) {
  std::set<unsigned> Lines;
  std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Block:
      for (const Stmt *Child : cast<BlockStmt>(S)->body())
        Walk(Child);
      return;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Lines.insert(S->loc().Line);
      Walk(If->thenStmt());
      Walk(If->elseStmt());
      return;
    }
    case StmtKind::While:
      Lines.insert(S->loc().Line);
      Walk(cast<WhileStmt>(S)->body());
      return;
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      Lines.insert(S->loc().Line);
      Walk(For->init());
      Walk(For->step());
      Walk(For->body());
      return;
    }
    default:
      Lines.insert(S->loc().Line);
      return;
    }
  };
  Walk(Fn.Body);
  Lines.erase(0); // drop unknown locations
  return Lines;
}

double liger::lineCoverageRatio(const MethodTraces &Traces) {
  LIGER_CHECK(Traces.Fn, "traces must reference their function");
  std::set<unsigned> All = allStatementLines(*Traces.Fn);
  if (All.empty())
    return 1.0;
  std::set<unsigned> Covered = Traces.coveredLines();
  size_t Hit = 0;
  for (unsigned Line : Covered)
    if (All.count(Line))
      ++Hit;
  return static_cast<double>(Hit) / static_cast<double>(All.size());
}

std::vector<size_t>
liger::minimalLineCoveringPaths(const MethodTraces &Traces) {
  std::set<unsigned> Target = Traces.coveredLines();
  std::vector<std::set<unsigned>> PathLines;
  PathLines.reserve(Traces.Paths.size());
  for (const BlendedTrace &Path : Traces.Paths)
    PathLines.push_back(Path.Symbolic.coveredLines());

  std::vector<size_t> Chosen;
  std::set<unsigned> Covered;
  std::vector<bool> Used(Traces.Paths.size(), false);
  while (Covered != Target) {
    // Pick the path covering the most uncovered lines; break ties by
    // index for determinism.
    size_t Best = Traces.Paths.size();
    size_t BestGain = 0;
    for (size_t I = 0; I < PathLines.size(); ++I) {
      if (Used[I])
        continue;
      size_t Gain = 0;
      for (unsigned Line : PathLines[I])
        if (!Covered.count(Line))
          ++Gain;
      if (Gain > BestGain) {
        BestGain = Gain;
        Best = I;
      }
    }
    LIGER_CHECK(Best < Traces.Paths.size(),
                "target coverage must be reachable from its own union");
    Used[Best] = true;
    Chosen.push_back(Best);
    Covered.insert(PathLines[Best].begin(), PathLines[Best].end());
  }
  return Chosen;
}

MethodTraces liger::selectPaths(const MethodTraces &Traces,
                                const std::vector<size_t> &Indices) {
  MethodTraces Out;
  Out.Fn = Traces.Fn;
  Out.VarNames = Traces.VarNames;
  for (size_t Index : Indices) {
    LIGER_CHECK(Index < Traces.Paths.size(), "path index out of range");
    Out.Paths.push_back(Traces.Paths[Index]);
  }
  return Out;
}

MethodTraces liger::reduceConcreteTraces(const MethodTraces &Traces,
                                         size_t K, Rng &R) {
  MethodTraces Out;
  Out.Fn = Traces.Fn;
  Out.VarNames = Traces.VarNames;
  for (const BlendedTrace &Path : Traces.Paths) {
    BlendedTrace Reduced;
    Reduced.Symbolic = Path.Symbolic;
    size_t Keep = std::min(K, Path.Concrete.size());
    std::vector<size_t> Order(Path.Concrete.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    R.shuffle(Order);
    Order.resize(Keep);
    for (size_t I : Order) {
      Reduced.Concrete.push_back(Path.Concrete[I]);
      Reduced.Inputs.push_back(Path.Inputs[I]);
    }
    Out.Paths.push_back(std::move(Reduced));
  }
  return Out;
}

MethodTraces liger::reduceSymbolicTraces(const MethodTraces &Traces,
                                         size_t KeepCount, Rng &R) {
  std::vector<size_t> Minimal = minimalLineCoveringPaths(Traces);
  std::vector<size_t> Keep;

  if (KeepCount < Minimal.size()) {
    // Below the coverage-preserving floor: keep a random subset of the
    // minimal set (coverage necessarily drops).
    Keep = Minimal;
    R.shuffle(Keep);
    Keep.resize(KeepCount);
  } else {
    Keep = Minimal;
    // Fill with random non-minimal paths.
    std::vector<size_t> Extras;
    for (size_t I = 0; I < Traces.Paths.size(); ++I)
      if (std::find(Minimal.begin(), Minimal.end(), I) == Minimal.end())
        Extras.push_back(I);
    R.shuffle(Extras);
    for (size_t I : Extras) {
      if (Keep.size() >= KeepCount)
        break;
      Keep.push_back(I);
    }
  }
  return selectPaths(Traces, Keep);
}
