//===-- symx/SymExec.h - Bounded symbolic executor --------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded symbolic execution of MiniLang functions (§5.1.1: "we
/// symbolically execute P to obtain U distinct paths ... by solving φ_i
/// we obtain concrete traces"). The engine enumerates program paths by
/// depth-first search over *decision prefixes* and re-executes from the
/// start for each prefix — no symbolic-state cloning. Decision points:
///
///   - control-flow conditions whose value is symbolic (outcomes: T/F),
///   - short-circuit && / || with a symbolic left operand,
///   - array reads/writes with a symbolic index (fan-out over in-bounds
///     indices, each guarded by the constraint index == k),
///   - `new T[n]` with symbolic n (fan-out over small lengths).
///
/// Input model: int and bool parameters are symbolic scalars; arrays of
/// int/bool have concrete lengths (one "shape" per configured length)
/// with symbolic elements; strings and string arrays are concrete,
/// drawn from configured candidates. Faulting paths (division by zero,
/// out-of-bounds with concrete index) are dropped; symbolic divisors
/// get an implicit `!= 0` constraint; symbolic indices only explore
/// in-bounds arms — i.e. the executor enumerates non-faulting paths.
///
/// Every returned path carries a concrete *witness input* found by the
/// solver, and the invariant — checked by the property tests — that the
/// concrete interpreter run on the witness follows exactly the path's
/// symbolic trace.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SYMX_SYMEXEC_H
#define LIGER_SYMX_SYMEXEC_H

#include "symx/Solver.h"
#include "trace/Trace.h"

#include <string>
#include <vector>

namespace liger {

/// One enumerated program path.
struct SymbolicPath {
  /// The statements along the path (same instrumentation granularity as
  /// the concrete interpreter, so path keys are comparable).
  SymbolicTrace Trace;
  /// The path condition φ: conjunction of boolean symbolic expressions.
  std::vector<SymExprPtr> PathCondition;
  /// Concrete inputs that realize the path (solver witness).
  std::vector<Value> WitnessInputs;

  /// Renders φ as "(c1) && (c2) && ...".
  std::string conditionStr() const;
};

/// Symbolic execution configuration.
struct SymxOptions {
  SolverOptions Solver;
  /// Stop after this many completed, witnessed paths.
  size_t MaxPaths = 24;
  /// Per-run statement budget (bounds loop unrolling).
  size_t MaxSteps = 600;
  /// Per-run budget for concretely-carried bytes (strings are tracked
  /// as real std::strings, so unrolled `s = s + s` would otherwise
  /// double a real allocation each step; arrays allocate real element
  /// vectors). Monotone like InterpOptions::MaxMemoryBytes; runs that
  /// blow it are dropped like StepLimit runs (DESIGN.md §12).
  uint64_t MaxConcreteBytes = 4u << 20;
  /// Cap on fan-out at one choice point (symbolic indices/lengths).
  unsigned MaxChoiceOutcomes = 8;
  /// Global cap on re-executions (runOnce calls) across all shapes of
  /// one enumeratePaths call. MaxPaths alone does not bound work:
  /// only *completed, witnessed, novel* paths count toward it, while
  /// chained symbolic-index choices explore an exponential prefix
  /// tree whose arms all dedup to the same path key (or all fault).
  /// This is the DFS's own fuel (DESIGN.md §12).
  size_t MaxRuns = 2000;
  /// Concrete lengths tried for each array parameter (one shape each).
  std::vector<size_t> ArrayLengths = {4};
  /// Concrete candidates tried for each string parameter.
  std::vector<std::string> StringCandidates = {"ab"};
  /// Cap on the number of input shapes (cartesian combinations).
  size_t MaxShapes = 4;
};

/// Enumerates witnessed paths of \p Fn. The returned paths have
/// pairwise distinct path keys.
std::vector<SymbolicPath> enumeratePaths(const Program &P,
                                         const FunctionDecl &Fn,
                                         const SymxOptions &Options = {});

} // namespace liger

#endif // LIGER_SYMX_SYMEXEC_H
