//===-- symx/Solver.cpp - Enumerative path-condition solver ---------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "symx/Solver.h"

using namespace liger;

namespace {

/// Returns the number of violated constraints (faulting evaluation
/// counts as violated).
unsigned countViolations(const std::vector<SymExprPtr> &Constraints,
                         const Assignment &A) {
  unsigned Violated = 0;
  for (const SymExprPtr &C : Constraints) {
    std::optional<bool> V = C->evalBool(A.Ints, A.Bools);
    if (!V || !*V)
      ++Violated;
  }
  return Violated;
}

/// Deterministic "nice" probes that satisfy many common path shapes:
/// all-zero, all-one, ramps, alternating signs, extremes.
std::vector<Assignment> heuristicProbes(unsigned NumInts, unsigned NumBools,
                                        const SolverOptions &Options) {
  std::vector<Assignment> Probes;
  auto Make = [&](auto IntOf, bool BoolVal) {
    Assignment A;
    A.Ints.resize(NumInts);
    for (unsigned I = 0; I < NumInts; ++I) {
      int64_t V = IntOf(I);
      A.Ints[I] = std::max(Options.IntLo, std::min(Options.IntHi, V));
    }
    A.Bools.assign(NumBools, BoolVal);
    Probes.push_back(std::move(A));
  };
  for (bool B : {false, true}) {
    Make([](unsigned) -> int64_t { return 0; }, B);
    Make([](unsigned) -> int64_t { return 1; }, B);
    Make([](unsigned I) -> int64_t { return static_cast<int64_t>(I); }, B);
    Make([](unsigned I) -> int64_t { return -static_cast<int64_t>(I); }, B);
    Make([](unsigned I) -> int64_t { return static_cast<int64_t>(I) % 2; },
         B);
    Make([&](unsigned I) -> int64_t {
      return I % 2 ? Options.IntLo : Options.IntHi;
    }, B);
    Make([&](unsigned I) -> int64_t {
      return static_cast<int64_t>(NumInts - I);
    }, B);
  }
  return Probes;
}

std::optional<Assignment>
search(const std::vector<SymExprPtr> &Constraints, unsigned NumInts,
       unsigned NumBools, const SolverOptions &Options, unsigned Budget) {
  for (const SymExprPtr &C : Constraints)
    LIGER_CHECK(C->isBoolTyped(), "constraints must be boolean");

  // Trivially satisfiable?
  Assignment Zero;
  Zero.Ints.assign(NumInts, 0);
  Zero.Bools.assign(NumBools, false);
  if (Constraints.empty())
    return Zero;

  unsigned Steps = 0;
  for (Assignment &Probe : heuristicProbes(NumInts, NumBools, Options)) {
    if (++Steps > Budget)
      return std::nullopt;
    if (countViolations(Constraints, Probe) == 0)
      return Probe;
  }

  // WalkSAT-style restarts: random assignment, then greedy/random moves
  // on variables of violated constraints.
  Rng R(Options.Seed);
  const unsigned StepsPerRestart = 60;
  while (Steps < Budget) {
    ++Steps; // each restart costs at least one step (ground-false
             // constraints would otherwise loop forever)
    Assignment A;
    A.Ints.resize(NumInts);
    for (unsigned I = 0; I < NumInts; ++I)
      A.Ints[I] = R.nextInt(Options.IntLo, Options.IntHi);
    A.Bools.resize(NumBools);
    for (unsigned I = 0; I < NumBools; ++I)
      A.Bools[I] = R.nextBool();

    for (unsigned Local = 0; Local < StepsPerRestart && Steps < Budget;
         ++Local, ++Steps) {
      unsigned Violated = countViolations(Constraints, A);
      if (Violated == 0)
        return A;
      // Pick a violated constraint and perturb one of its variables.
      unsigned Target = static_cast<unsigned>(R.nextBelow(Violated));
      const SymExpr *Chosen = nullptr;
      for (const SymExprPtr &C : Constraints) {
        std::optional<bool> V = C->evalBool(A.Ints, A.Bools);
        if (!V || !*V) {
          if (Target == 0) {
            Chosen = C.get();
            break;
          }
          --Target;
        }
      }
      LIGER_CHECK(Chosen, "violated constraint must exist");
      std::vector<unsigned> IntSlots, BoolSlots;
      Chosen->collectSlots(IntSlots, BoolSlots);
      if (IntSlots.empty() && BoolSlots.empty())
        break; // ground-false constraint: this restart cannot fix it
      size_t Pick = R.nextBelow(IntSlots.size() + BoolSlots.size());
      if (Pick < IntSlots.size())
        A.Ints[IntSlots[Pick]] = R.nextInt(Options.IntLo, Options.IntHi);
      else
        A.Bools[BoolSlots[Pick - IntSlots.size()]] = R.nextBool();
    }
  }
  return std::nullopt;
}

} // namespace

std::optional<Assignment>
liger::solveConstraints(const std::vector<SymExprPtr> &Constraints,
                        unsigned NumIntSlots, unsigned NumBoolSlots,
                        const SolverOptions &Options) {
  return search(Constraints, NumIntSlots, NumBoolSlots, Options,
                Options.MaxSteps);
}

bool liger::quickFeasible(const std::vector<SymExprPtr> &Constraints,
                          unsigned NumIntSlots, unsigned NumBoolSlots,
                          const SolverOptions &Options, unsigned Budget) {
  return search(Constraints, NumIntSlots, NumBoolSlots, Options, Budget)
      .has_value();
}
