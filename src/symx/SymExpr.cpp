//===-- symx/SymExpr.cpp - Symbolic expressions ---------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "symx/SymExpr.h"

#include <algorithm>

using namespace liger;

bool SymExpr::isBoolTyped() const {
  switch (Op) {
  case SymOp::BoolConst:
  case SymOp::BoolVar:
  case SymOp::Lt:
  case SymOp::Le:
  case SymOp::Gt:
  case SymOp::Ge:
  case SymOp::EqInt:
  case SymOp::NeInt:
  case SymOp::Not:
  case SymOp::And:
  case SymOp::Or:
  case SymOp::EqBool:
  case SymOp::NeBool:
    return true;
  default:
    return false;
  }
}

std::optional<int64_t>
SymExpr::evalInt(const std::vector<int64_t> &IntAssign,
                 const std::vector<bool> &BoolAssign) const {
  switch (Op) {
  case SymOp::IntConst:
    return IntVal;
  case SymOp::IntVar:
    LIGER_CHECK(Slot < IntAssign.size(), "int slot out of range");
    return IntAssign[Slot];
  case SymOp::Neg: {
    auto A = Operands[0]->evalInt(IntAssign, BoolAssign);
    if (!A)
      return std::nullopt;
    return -*A;
  }
  case SymOp::Abs: {
    auto A = Operands[0]->evalInt(IntAssign, BoolAssign);
    if (!A)
      return std::nullopt;
    return *A < 0 ? -*A : *A;
  }
  case SymOp::Add:
  case SymOp::Sub:
  case SymOp::Mul:
  case SymOp::Div:
  case SymOp::Mod:
  case SymOp::Min:
  case SymOp::Max: {
    auto A = Operands[0]->evalInt(IntAssign, BoolAssign);
    auto B = Operands[1]->evalInt(IntAssign, BoolAssign);
    if (!A || !B)
      return std::nullopt;
    switch (Op) {
    case SymOp::Add: return *A + *B;
    case SymOp::Sub: return *A - *B;
    case SymOp::Mul: return *A * *B;
    case SymOp::Div:
      if (*B == 0)
        return std::nullopt;
      return *A / *B;
    case SymOp::Mod:
      if (*B == 0)
        return std::nullopt;
      return *A % *B;
    case SymOp::Min: return std::min(*A, *B);
    case SymOp::Max: return std::max(*A, *B);
    default: LIGER_UNREACHABLE("handled above");
    }
  }
  default:
    LIGER_UNREACHABLE("evalInt on a boolean-typed expression");
  }
}

std::optional<bool>
SymExpr::evalBool(const std::vector<int64_t> &IntAssign,
                  const std::vector<bool> &BoolAssign) const {
  switch (Op) {
  case SymOp::BoolConst:
    return IntVal != 0;
  case SymOp::BoolVar:
    LIGER_CHECK(Slot < BoolAssign.size(), "bool slot out of range");
    return BoolAssign[Slot];
  case SymOp::Not: {
    auto A = Operands[0]->evalBool(IntAssign, BoolAssign);
    if (!A)
      return std::nullopt;
    return !*A;
  }
  case SymOp::And:
  case SymOp::Or:
  case SymOp::EqBool:
  case SymOp::NeBool: {
    auto A = Operands[0]->evalBool(IntAssign, BoolAssign);
    if (!A)
      return std::nullopt;
    // Short-circuit semantics must match the interpreter: the right
    // operand's faults are irrelevant when the left decides.
    if (Op == SymOp::And && !*A)
      return false;
    if (Op == SymOp::Or && *A)
      return true;
    auto B = Operands[1]->evalBool(IntAssign, BoolAssign);
    if (!B)
      return std::nullopt;
    switch (Op) {
    case SymOp::And: return *A && *B;
    case SymOp::Or: return *A || *B;
    case SymOp::EqBool: return *A == *B;
    case SymOp::NeBool: return *A != *B;
    default: LIGER_UNREACHABLE("handled above");
    }
  }
  case SymOp::Lt:
  case SymOp::Le:
  case SymOp::Gt:
  case SymOp::Ge:
  case SymOp::EqInt:
  case SymOp::NeInt: {
    auto A = Operands[0]->evalInt(IntAssign, BoolAssign);
    auto B = Operands[1]->evalInt(IntAssign, BoolAssign);
    if (!A || !B)
      return std::nullopt;
    switch (Op) {
    case SymOp::Lt: return *A < *B;
    case SymOp::Le: return *A <= *B;
    case SymOp::Gt: return *A > *B;
    case SymOp::Ge: return *A >= *B;
    case SymOp::EqInt: return *A == *B;
    case SymOp::NeInt: return *A != *B;
    default: LIGER_UNREACHABLE("handled above");
    }
  }
  default:
    LIGER_UNREACHABLE("evalBool on an integer-typed expression");
  }
}

void SymExpr::collectSlots(std::vector<unsigned> &IntSlots,
                           std::vector<unsigned> &BoolSlots) const {
  if (Op == SymOp::IntVar) {
    if (std::find(IntSlots.begin(), IntSlots.end(), Slot) == IntSlots.end())
      IntSlots.push_back(Slot);
    return;
  }
  if (Op == SymOp::BoolVar) {
    if (std::find(BoolSlots.begin(), BoolSlots.end(), Slot) ==
        BoolSlots.end())
      BoolSlots.push_back(Slot);
    return;
  }
  for (const SymExprPtr &Operand : Operands)
    Operand->collectSlots(IntSlots, BoolSlots);
}

std::string SymExpr::str() const {
  auto Bin = [&](const char *Sym) {
    return "(" + Operands[0]->str() + " " + Sym + " " + Operands[1]->str() +
           ")";
  };
  switch (Op) {
  case SymOp::IntConst: return std::to_string(IntVal);
  case SymOp::BoolConst: return IntVal ? "true" : "false";
  case SymOp::IntVar: return "x" + std::to_string(Slot);
  case SymOp::BoolVar: return "b" + std::to_string(Slot);
  case SymOp::Neg: return "-" + Operands[0]->str();
  case SymOp::Abs: return "abs(" + Operands[0]->str() + ")";
  case SymOp::Min:
    return "min(" + Operands[0]->str() + ", " + Operands[1]->str() + ")";
  case SymOp::Max:
    return "max(" + Operands[0]->str() + ", " + Operands[1]->str() + ")";
  case SymOp::Add: return Bin("+");
  case SymOp::Sub: return Bin("-");
  case SymOp::Mul: return Bin("*");
  case SymOp::Div: return Bin("/");
  case SymOp::Mod: return Bin("%");
  case SymOp::Lt: return Bin("<");
  case SymOp::Le: return Bin("<=");
  case SymOp::Gt: return Bin(">");
  case SymOp::Ge: return Bin(">=");
  case SymOp::EqInt:
  case SymOp::EqBool: return Bin("==");
  case SymOp::NeInt:
  case SymOp::NeBool: return Bin("!=");
  case SymOp::Not: return "!" + Operands[0]->str();
  case SymOp::And: return Bin("&&");
  case SymOp::Or: return Bin("||");
  }
  LIGER_UNREACHABLE("covered switch");
}

//===----------------------------------------------------------------------===//
// Factories with constant folding
//===----------------------------------------------------------------------===//

namespace {
SymExprPtr make(SymOp Op, int64_t IntVal, unsigned Slot,
                std::vector<SymExprPtr> Operands) {
  struct Access : SymExpr {
    Access(SymOp Op, int64_t IntVal, unsigned Slot,
           std::vector<SymExprPtr> Operands)
        : SymExpr(Op, IntVal, Slot, std::move(Operands)) {}
  };
  return std::make_shared<Access>(Op, IntVal, Slot, std::move(Operands));
}
} // namespace

SymExprPtr SymExpr::intConst(int64_t V) {
  return make(SymOp::IntConst, V, 0, {});
}

SymExprPtr SymExpr::boolConst(bool V) {
  return make(SymOp::BoolConst, V ? 1 : 0, 0, {});
}

SymExprPtr SymExpr::intVar(unsigned Slot) {
  return make(SymOp::IntVar, 0, Slot, {});
}

SymExprPtr SymExpr::boolVar(unsigned Slot) {
  return make(SymOp::BoolVar, 0, Slot, {});
}

SymExprPtr SymExpr::unary(SymOp Op, SymExprPtr A) {
  LIGER_CHECK(Op == SymOp::Neg || Op == SymOp::Abs || Op == SymOp::Not,
              "not a unary op");
  if (A->isConst()) {
    switch (Op) {
    case SymOp::Neg: return intConst(-A->intValue());
    case SymOp::Abs:
      return intConst(A->intValue() < 0 ? -A->intValue() : A->intValue());
    case SymOp::Not: return boolConst(!A->boolValue());
    default: break;
    }
  }
  return make(Op, 0, 0, {std::move(A)});
}

SymExprPtr SymExpr::binary(SymOp Op, SymExprPtr A, SymExprPtr B) {
  if (A->isConst() && B->isConst()) {
    std::vector<int64_t> NoInts;
    std::vector<bool> NoBools;
    SymExprPtr Folded = make(Op, 0, 0, {A, B});
    if (Folded->isBoolTyped()) {
      if (auto V = Folded->evalBool(NoInts, NoBools))
        return boolConst(*V);
    } else {
      if (auto V = Folded->evalInt(NoInts, NoBools))
        return intConst(*V);
    }
    return Folded; // e.g. constant division by zero: keep symbolic form
  }
  // Light algebraic identities keep path conditions small.
  if (Op == SymOp::And) {
    if (A->isBoolConst())
      return A->boolValue() ? B : A;
    if (B->isBoolConst())
      return B->boolValue() ? A : B;
  }
  if (Op == SymOp::Or) {
    if (A->isBoolConst())
      return A->boolValue() ? A : B;
    if (B->isBoolConst())
      return B->boolValue() ? B : A;
  }
  if (Op == SymOp::Add && A->isIntConst() && A->intValue() == 0)
    return B;
  if (Op == SymOp::Add && B->isIntConst() && B->intValue() == 0)
    return A;
  if (Op == SymOp::Sub && B->isIntConst() && B->intValue() == 0)
    return A;
  if (Op == SymOp::Mul && A->isIntConst() && A->intValue() == 1)
    return B;
  if (Op == SymOp::Mul && B->isIntConst() && B->intValue() == 1)
    return A;
  return make(Op, 0, 0, {std::move(A), std::move(B)});
}
