//===-- symx/SymExpr.h - Symbolic expressions -------------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable symbolic expression DAG over 64-bit integers and booleans,
/// used by the bounded symbolic executor (§5.1.1's "we symbolically
/// execute P to obtain U distinct paths, where each path σ_i is
/// associated with a condition φ_i"). Construction constant-folds
/// eagerly, so purely concrete computation stays concrete.
///
/// Strings are kept concrete in the executor; only ints and bools are
/// symbolic. That restriction is what makes the enumerative solver in
/// Solver.h adequate (documented in DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SYMX_SYMEXPR_H
#define LIGER_SYMX_SYMEXPR_H

#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace liger {

enum class SymOp {
  // Leaves.
  IntConst,
  BoolConst,
  IntVar,  ///< A symbolic integer input slot.
  BoolVar, ///< A symbolic boolean input slot.
  // Integer arithmetic.
  Neg, Add, Sub, Mul, Div, Mod, Abs, Min, Max,
  // Comparisons (int × int → bool).
  Lt, Le, Gt, Ge, EqInt, NeInt,
  // Boolean connectives.
  Not, And, Or, EqBool, NeBool,
};

class SymExpr;
using SymExprPtr = std::shared_ptr<const SymExpr>;

/// A node of the symbolic expression DAG. Create through the factory
/// functions below (they constant-fold).
class SymExpr {
public:
  SymOp op() const { return Op; }
  int64_t intValue() const {
    LIGER_CHECK(Op == SymOp::IntConst, "intValue on non-constant");
    return IntVal;
  }
  bool boolValue() const {
    LIGER_CHECK(Op == SymOp::BoolConst, "boolValue on non-constant");
    return IntVal != 0;
  }
  /// Input slot id; only valid for IntVar/BoolVar.
  unsigned varSlot() const {
    LIGER_CHECK(Op == SymOp::IntVar || Op == SymOp::BoolVar,
                "varSlot on non-variable");
    return Slot;
  }
  const std::vector<SymExprPtr> &operands() const { return Operands; }

  bool isIntConst() const { return Op == SymOp::IntConst; }
  bool isBoolConst() const { return Op == SymOp::BoolConst; }
  bool isConst() const { return isIntConst() || isBoolConst(); }
  /// True for expressions whose result is boolean.
  bool isBoolTyped() const;

  /// Evaluates under \p IntAssign / \p BoolAssign (indexed by slot).
  /// Returns nullopt on arithmetic faults (division by zero), which the
  /// solver treats as "constraint not satisfied".
  std::optional<int64_t> evalInt(const std::vector<int64_t> &IntAssign,
                                 const std::vector<bool> &BoolAssign) const;
  std::optional<bool> evalBool(const std::vector<int64_t> &IntAssign,
                               const std::vector<bool> &BoolAssign) const;

  /// Collects the distinct variable slots appearing in the expression.
  void collectSlots(std::vector<unsigned> &IntSlots,
                    std::vector<unsigned> &BoolSlots) const;

  /// Human-readable rendering, e.g. "(x0 + 1) < x1".
  std::string str() const;

  // Factories (all constant-fold where possible).
  static SymExprPtr intConst(int64_t V);
  static SymExprPtr boolConst(bool V);
  static SymExprPtr intVar(unsigned Slot);
  static SymExprPtr boolVar(unsigned Slot);
  static SymExprPtr unary(SymOp Op, SymExprPtr A);
  static SymExprPtr binary(SymOp Op, SymExprPtr A, SymExprPtr B);

protected:
  SymExpr(SymOp Op, int64_t IntVal, unsigned Slot,
          std::vector<SymExprPtr> Operands)
      : Op(Op), IntVal(IntVal), Slot(Slot), Operands(std::move(Operands)) {}

private:

  SymOp Op;
  int64_t IntVal = 0;
  unsigned Slot = 0;
  std::vector<SymExprPtr> Operands;
};

} // namespace liger

#endif // LIGER_SYMX_SYMEXPR_H
