//===-- symx/SymExec.cpp - Bounded symbolic executor ----------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "symx/SymExec.h"

#include "support/Error.h"

#include <set>
#include <unordered_map>

using namespace liger;

std::string SymbolicPath::conditionStr() const {
  std::string Out;
  for (size_t I = 0; I < PathCondition.size(); ++I) {
    if (I)
      Out += " && ";
    Out += PathCondition[I]->str();
  }
  return Out.empty() ? "true" : Out;
}

namespace {

//===----------------------------------------------------------------------===//
// Symbolic runtime values
//===----------------------------------------------------------------------===//

/// A value during symbolic execution. Ints and bools are symbolic
/// expressions (constants when concrete); strings are always concrete;
/// arrays and structs are reference types exactly as in the concrete
/// interpreter (shared storage, aliasing).
struct SValue {
  enum class K { Undef, Int, Bool, Str, Array, Struct };

  K Kind = K::Undef;
  SymExprPtr E;                                ///< Int / Bool
  std::string S;                               ///< Str
  std::shared_ptr<std::vector<SValue>> Elems;  ///< Array / Struct
  const StructDecl *Decl = nullptr;            ///< Struct

  static SValue undef() { return SValue(); }
  static SValue intExpr(SymExprPtr E) {
    SValue V;
    V.Kind = K::Int;
    V.E = std::move(E);
    return V;
  }
  static SValue boolExpr(SymExprPtr E) {
    SValue V;
    V.Kind = K::Bool;
    V.E = std::move(E);
    return V;
  }
  static SValue str(std::string S) {
    SValue V;
    V.Kind = K::Str;
    V.S = std::move(S);
    return V;
  }
  static SValue array(std::vector<SValue> Elements) {
    SValue V;
    V.Kind = K::Array;
    V.Elems = std::make_shared<std::vector<SValue>>(std::move(Elements));
    return V;
  }
  static SValue structV(const StructDecl *Decl,
                        std::vector<SValue> Fields) {
    SValue V;
    V.Kind = K::Struct;
    V.Decl = Decl;
    V.Elems = std::make_shared<std::vector<SValue>>(std::move(Fields));
    return V;
  }

  bool isInt() const { return Kind == K::Int; }
  bool isBool() const { return Kind == K::Bool; }
  bool isStr() const { return Kind == K::Str; }
  bool isArray() const { return Kind == K::Array; }
  bool isStruct() const { return Kind == K::Struct; }
  bool isConcreteInt() const { return isInt() && E->isIntConst(); }
  bool isConcreteBool() const { return isBool() && E->isBoolConst(); }
};

/// Describes where one symbolic scalar slot lives in the input tuple.
struct SlotInfo {
  unsigned Param = 0;
  int Elem = -1;  ///< Array element or struct field index; -1 for scalar.
  bool IsBool = false;
};

/// One concrete input "shape": array lengths and string choices.
struct Shape {
  std::vector<size_t> ArrayLen;   ///< Per-parameter (0 when not array).
  std::vector<size_t> StringIdx;  ///< Per-parameter candidate index.
};

//===----------------------------------------------------------------------===//
// The engine
//===----------------------------------------------------------------------===//

class SymEngine {
public:
  enum class RunEnd { Completed, ChoicePending, Fault, Unsupported,
                      StepLimit, MemoryLimit };

  struct RunResult {
    RunEnd End = RunEnd::Fault;
    std::vector<uint8_t> FeasibleOutcomes; ///< When ChoicePending.
    SymbolicTrace Trace;                   ///< When Completed.
    std::vector<SymExprPtr> PathCondition; ///< When Completed.
  };

  SymEngine(const Program &P, const FunctionDecl &Fn, const Shape &Sh,
            const SymxOptions &Options)
      : P(P), Fn(Fn), Sh(Sh), Options(Options) {}

  unsigned numIntSlots() const { return NumIntSlots; }
  unsigned numBoolSlots() const { return NumBoolSlots; }

  /// Executes once, following \p Forced decisions; see header comment.
  RunResult runOnce(const std::vector<uint8_t> &Forced) {
    this->Forced = &Forced;
    Cursor = 0;
    PC.clear();
    Trace.Steps.clear();
    StepsLeft = Options.MaxSteps;
    BytesCharged = 0;
    Frames.clear();
    CallDepth = 0;
    Status = RunEnd::Completed;
    Pending.clear();
    IntSlots.clear();
    BoolSlots.clear();
    NumIntSlots = NumBoolSlots = 0;

    pushFrame();
    for (unsigned I = 0; I < Fn.Params.size(); ++I)
      Frames.back()[Fn.Params[I].Name] = makeParam(I);
    Flow F = Flow::Normal;
    if (Fn.Body && !stopped())
      F = execBlock(Fn.Body);
    (void)F;
    popFrame();

    RunResult Result;
    Result.End = Status;
    if (Status == RunEnd::Completed) {
      Result.Trace = std::move(Trace);
      Result.PathCondition = PC;
    } else if (Status == RunEnd::ChoicePending) {
      Result.FeasibleOutcomes = std::move(Pending);
    }
    return Result;
  }

  /// Builds the concrete witness input vector from a solver assignment.
  std::vector<Value> buildWitness(const Assignment &A) const {
    std::vector<Value> Inputs;
    for (unsigned I = 0; I < Fn.Params.size(); ++I)
      Inputs.push_back(buildWitnessParam(I, A));
    return Inputs;
  }

  const std::vector<SlotInfo> &intSlotInfos() const { return IntSlots; }

private:
  enum class Flow { Normal, Break, Continue, Return };

  //===--------------------------------------------------------------------===//
  // Parameter construction
  //===--------------------------------------------------------------------===//

  SymExprPtr freshInt(unsigned Param, int Elem) {
    IntSlots.push_back({Param, Elem, false});
    return SymExpr::intVar(NumIntSlots++);
  }
  SymExprPtr freshBool(unsigned Param, int Elem) {
    BoolSlots.push_back({Param, Elem, true});
    return SymExpr::boolVar(NumBoolSlots++);
  }

  const std::string &stringCandidate(unsigned Param) const {
    const auto &Cands = Options.StringCandidates;
    LIGER_CHECK(!Cands.empty(), "need at least one string candidate");
    return Cands[Sh.StringIdx[Param] % Cands.size()];
  }

  SValue makeParam(unsigned I) {
    const Type &Ty = Fn.Params[I].Ty;
    switch (Ty.kind()) {
    case TypeKind::Int:
      return SValue::intExpr(freshInt(I, -1));
    case TypeKind::Bool:
      return SValue::boolExpr(freshBool(I, -1));
    case TypeKind::String:
      return SValue::str(stringCandidate(I));
    case TypeKind::Array: {
      size_t Len = Sh.ArrayLen[I];
      std::vector<SValue> Elements;
      Elements.reserve(Len);
      for (size_t E = 0; E < Len; ++E) {
        switch (Ty.elemKind()) {
        case TypeKind::Int:
          Elements.push_back(
              SValue::intExpr(freshInt(I, static_cast<int>(E))));
          break;
        case TypeKind::Bool:
          Elements.push_back(
              SValue::boolExpr(freshBool(I, static_cast<int>(E))));
          break;
        case TypeKind::String: {
          const auto &Cands = Options.StringCandidates;
          Elements.push_back(SValue::str(Cands[E % Cands.size()]));
          break;
        }
        default:
          LIGER_UNREACHABLE("arrays hold primitives");
        }
      }
      return SValue::array(std::move(Elements));
    }
    case TypeKind::Struct: {
      const StructDecl *Decl = P.findStruct(Ty.structName());
      LIGER_CHECK(Decl, "typed program has declared structs");
      std::vector<SValue> Fields;
      for (size_t F = 0; F < Decl->Fields.size(); ++F) {
        switch (Decl->Fields[F].Ty.kind()) {
        case TypeKind::Int:
          Fields.push_back(SValue::intExpr(freshInt(I, static_cast<int>(F))));
          break;
        case TypeKind::Bool:
          Fields.push_back(
              SValue::boolExpr(freshBool(I, static_cast<int>(F))));
          break;
        case TypeKind::String:
          Fields.push_back(SValue::str(stringCandidate(I)));
          break;
        default:
          LIGER_UNREACHABLE("struct fields are primitive");
        }
      }
      return SValue::structV(Decl, std::move(Fields));
    }
    case TypeKind::Void:
      LIGER_UNREACHABLE("void parameter");
    }
    LIGER_UNREACHABLE("covered switch");
  }

  Value buildWitnessParam(unsigned I, const Assignment &A) const {
    const Type &Ty = Fn.Params[I].Ty;
    // Find slot values by scanning the slot tables (small).
    auto IntAt = [&](int Elem) -> int64_t {
      for (size_t S = 0; S < IntSlots.size(); ++S)
        if (IntSlots[S].Param == I && IntSlots[S].Elem == Elem)
          return S < A.Ints.size() ? A.Ints[S] : 0;
      return 0;
    };
    auto BoolAt = [&](int Elem) -> bool {
      for (size_t S = 0; S < BoolSlots.size(); ++S)
        if (BoolSlots[S].Param == I && BoolSlots[S].Elem == Elem)
          return S < A.Bools.size() ? A.Bools[S] : false;
      return false;
    };
    switch (Ty.kind()) {
    case TypeKind::Int:
      return Value::makeInt(IntAt(-1));
    case TypeKind::Bool:
      return Value::makeBool(BoolAt(-1));
    case TypeKind::String:
      return Value::makeString(stringCandidate(I));
    case TypeKind::Array: {
      size_t Len = Sh.ArrayLen[I];
      std::vector<Value> Elements;
      for (size_t E = 0; E < Len; ++E) {
        switch (Ty.elemKind()) {
        case TypeKind::Int:
          Elements.push_back(Value::makeInt(IntAt(static_cast<int>(E))));
          break;
        case TypeKind::Bool:
          Elements.push_back(Value::makeBool(BoolAt(static_cast<int>(E))));
          break;
        case TypeKind::String: {
          const auto &Cands = Options.StringCandidates;
          Elements.push_back(Value::makeString(Cands[E % Cands.size()]));
          break;
        }
        default:
          LIGER_UNREACHABLE("arrays hold primitives");
        }
      }
      return Value::makeArray(std::move(Elements));
    }
    case TypeKind::Struct: {
      const StructDecl *Decl = P.findStruct(Ty.structName());
      std::vector<Value> Fields;
      for (size_t F = 0; F < Decl->Fields.size(); ++F) {
        switch (Decl->Fields[F].Ty.kind()) {
        case TypeKind::Int:
          Fields.push_back(Value::makeInt(IntAt(static_cast<int>(F))));
          break;
        case TypeKind::Bool:
          Fields.push_back(Value::makeBool(BoolAt(static_cast<int>(F))));
          break;
        case TypeKind::String:
          Fields.push_back(Value::makeString(stringCandidate(I)));
          break;
        default:
          LIGER_UNREACHABLE("struct fields are primitive");
        }
      }
      return Value::makeStruct(Decl, std::move(Fields));
    }
    case TypeKind::Void:
      LIGER_UNREACHABLE("void parameter");
    }
    LIGER_UNREACHABLE("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Decisions
  //===--------------------------------------------------------------------===//

  bool stopped() const { return Status != RunEnd::Completed; }
  void stop(RunEnd Why) {
    if (!stopped())
      Status = Why;
  }

  /// Resolves a choice point with the given alternative constraints
  /// (one per outcome; an alternative may be null meaning "no
  /// constraint"). Returns the chosen outcome, or nullopt when the run
  /// stops here (pending alternatives recorded for the driver).
  std::optional<uint8_t> choose(const std::vector<SymExprPtr> &Alts) {
    if (stopped())
      return std::nullopt;
    if (Cursor < Forced->size()) {
      uint8_t Outcome = (*Forced)[Cursor++];
      LIGER_CHECK(Outcome < Alts.size(), "forced outcome out of range");
      if (Alts[Outcome])
        PC.push_back(Alts[Outcome]);
      return Outcome;
    }
    // New frontier: determine which alternatives are feasible.
    for (uint8_t O = 0; O < Alts.size(); ++O) {
      if (Alts[O] && Alts[O]->isBoolConst() && !Alts[O]->boolValue())
        continue;
      std::vector<SymExprPtr> Check = PC;
      if (Alts[O])
        Check.push_back(Alts[O]);
      if (quickFeasible(Check, NumIntSlots, NumBoolSlots, Options.Solver))
        Pending.push_back(O);
    }
    stop(RunEnd::ChoicePending);
    return std::nullopt;
  }

  /// Resolves a symbolic boolean to a concrete outcome, forking.
  std::optional<bool> decideBool(const SymExprPtr &Cond) {
    if (Cond->isBoolConst())
      return Cond->boolValue();
    std::vector<SymExprPtr> Alts{
        SymExpr::unary(SymOp::Not, Cond), // outcome 0: false
        Cond,                             // outcome 1: true
    };
    std::optional<uint8_t> Choice = choose(Alts);
    if (!Choice)
      return std::nullopt;
    return *Choice == 1;
  }

  /// Resolves a symbolic integer index into [0, Size) by fan-out.
  std::optional<size_t> decideIndex(const SymExprPtr &Index, size_t Size) {
    if (Index->isIntConst()) {
      int64_t I = Index->intValue();
      if (I < 0 || static_cast<size_t>(I) >= Size) {
        stop(RunEnd::Fault);
        return std::nullopt;
      }
      return static_cast<size_t>(I);
    }
    size_t Arms = std::min<size_t>(Size, Options.MaxChoiceOutcomes);
    if (Arms == 0) {
      stop(RunEnd::Fault); // every index faults on an empty container
      return std::nullopt;
    }
    std::vector<SymExprPtr> Alts;
    for (size_t K = 0; K < Arms; ++K)
      Alts.push_back(SymExpr::binary(
          SymOp::EqInt, Index,
          SymExpr::intConst(static_cast<int64_t>(K))));
    std::optional<uint8_t> Choice = choose(Alts);
    if (!Choice)
      return std::nullopt;
    return static_cast<size_t>(*Choice);
  }

  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  using Frame = std::unordered_map<std::string, SValue>;
  void pushFrame() { Frames.emplace_back(); }
  void popFrame() { Frames.pop_back(); }
  SValue *lookup(const std::string &Name) {
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  void record(const Stmt *S, StepKind Kind) {
    if (CallDepth == 0)
      Trace.Steps.push_back({S, Kind});
  }

  bool burnStep() {
    if (StepsLeft == 0) {
      stop(RunEnd::StepLimit);
      return false;
    }
    --StepsLeft;
    return true;
  }

  /// Charges concretely-allocated bytes (string concat, array element
  /// storage) against the per-run budget; false once blown.
  bool chargeBytes(uint64_t Bytes) {
    BytesCharged += Bytes;
    if (BytesCharged > Options.MaxConcreteBytes) {
      stop(RunEnd::MemoryLimit);
      return false;
    }
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Statements (mirrors the concrete interpreter's instrumentation)
  //===--------------------------------------------------------------------===//

  Flow execBlock(const BlockStmt *Block) {
    pushFrame();
    Flow F = Flow::Normal;
    for (const Stmt *S : Block->body()) {
      F = execStmt(S);
      if (F != Flow::Normal || stopped())
        break;
    }
    popFrame();
    return F;
  }

  Flow execStmt(const Stmt *S) {
    if (!burnStep())
      return Flow::Normal;
    switch (S->kind()) {
    case StmtKind::Block:
      return execBlock(cast<BlockStmt>(S));
    case StmtKind::Decl: {
      const auto *Decl = cast<DeclStmt>(S);
      SValue Init;
      if (Decl->init()) {
        Init = evalExpr(Decl->init());
        if (stopped())
          return Flow::Normal;
      } else {
        Init = zeroOf(Decl->declType());
      }
      Frames.back()[Decl->name()] = std::move(Init);
      record(S, StepKind::Plain);
      return Flow::Normal;
    }
    case StmtKind::Assign:
      execAssign(cast<AssignStmt>(S));
      if (stopped())
        return Flow::Normal;
      record(S, StepKind::Plain);
      return Flow::Normal;
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      SValue Cond = evalExpr(If->cond());
      if (stopped())
        return Flow::Normal;
      std::optional<bool> Taken = decideBool(Cond.E);
      if (!Taken)
        return Flow::Normal;
      record(S, *Taken ? StepKind::CondTrue : StepKind::CondFalse);
      if (*Taken)
        return execStmt(If->thenStmt());
      if (If->elseStmt())
        return execStmt(If->elseStmt());
      return Flow::Normal;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      for (;;) {
        if (!burnStep())
          return Flow::Normal;
        SValue Cond = evalExpr(While->cond());
        if (stopped())
          return Flow::Normal;
        std::optional<bool> Taken = decideBool(Cond.E);
        if (!Taken)
          return Flow::Normal;
        record(S, *Taken ? StepKind::CondTrue : StepKind::CondFalse);
        if (!*Taken)
          return Flow::Normal;
        Flow F = execStmt(While->body());
        if (stopped() || F == Flow::Return)
          return F;
        if (F == Flow::Break)
          return Flow::Normal;
      }
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      pushFrame();
      Flow Result = Flow::Normal;
      if (For->init()) {
        execStmt(For->init());
        if (stopped()) {
          popFrame();
          return Flow::Normal;
        }
      }
      for (;;) {
        if (!burnStep())
          break;
        bool Taken = true;
        if (For->cond()) {
          SValue Cond = evalExpr(For->cond());
          if (stopped())
            break;
          std::optional<bool> Decided = decideBool(Cond.E);
          if (!Decided)
            break;
          Taken = *Decided;
          record(S, Taken ? StepKind::CondTrue : StepKind::CondFalse);
        }
        if (!Taken)
          break;
        Flow F = execStmt(For->body());
        if (stopped())
          break;
        if (F == Flow::Return) {
          Result = Flow::Return;
          break;
        }
        if (F == Flow::Break)
          break;
        if (For->step()) {
          execStmt(For->step());
          if (stopped())
            break;
        }
      }
      popFrame();
      return Result;
    }
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      if (Ret->value()) {
        ReturnValue = evalExpr(Ret->value());
        if (stopped())
          return Flow::Normal;
      } else {
        ReturnValue = SValue::undef();
      }
      record(S, StepKind::Plain);
      return Flow::Return;
    }
    case StmtKind::Break:
      record(S, StepKind::Plain);
      return Flow::Break;
    case StmtKind::Continue:
      record(S, StepKind::Plain);
      return Flow::Continue;
    case StmtKind::Expr:
      evalExpr(cast<ExprStmt>(S)->expr());
      if (stopped())
        return Flow::Normal;
      record(S, StepKind::Plain);
      return Flow::Normal;
    }
    LIGER_UNREACHABLE("covered switch");
  }

  SValue zeroOf(const Type &Ty) {
    switch (Ty.kind()) {
    case TypeKind::Int:
      return SValue::intExpr(SymExpr::intConst(0));
    case TypeKind::Bool:
      return SValue::boolExpr(SymExpr::boolConst(false));
    case TypeKind::String:
      return SValue::str("");
    case TypeKind::Array:
      return SValue::array({});
    case TypeKind::Struct: {
      const StructDecl *Decl = P.findStruct(Ty.structName());
      LIGER_CHECK(Decl, "typed program has declared structs");
      std::vector<SValue> Fields;
      for (const TypedName &F : Decl->Fields)
        Fields.push_back(zeroOf(F.Ty));
      return SValue::structV(Decl, std::move(Fields));
    }
    case TypeKind::Void:
      return SValue::undef();
    }
    LIGER_UNREACHABLE("covered switch");
  }

  void execAssign(const AssignStmt *S) {
    SValue NewValue = evalExpr(S->value());
    if (stopped())
      return;

    SValue *Cell = nullptr;
    if (const auto *Var = dyn_cast<VarExpr>(S->target())) {
      Cell = lookup(Var->name());
      if (!Cell) {
        stop(RunEnd::Fault);
        return;
      }
    } else if (const auto *Index = dyn_cast<IndexExpr>(S->target())) {
      SValue Base = evalExpr(Index->base());
      SValue Idx = evalExpr(Index->index());
      if (stopped())
        return;
      if (!Base.isArray() || !Idx.isInt()) {
        stop(RunEnd::Fault);
        return;
      }
      std::optional<size_t> I = decideIndex(Idx.E, Base.Elems->size());
      if (!I)
        return;
      Cell = &(*Base.Elems)[*I];
    } else if (const auto *Field = dyn_cast<FieldExpr>(S->target())) {
      SValue Base = evalExpr(Field->base());
      if (stopped())
        return;
      if (!Base.isStruct()) {
        stop(RunEnd::Fault);
        return;
      }
      int FieldIdx = Base.Decl->fieldIndex(Field->field());
      if (FieldIdx < 0) {
        stop(RunEnd::Fault);
        return;
      }
      Cell = &(*Base.Elems)[static_cast<size_t>(FieldIdx)];
    } else {
      stop(RunEnd::Fault);
      return;
    }

    if (S->op() == AssignOp::Set) {
      *Cell = std::move(NewValue);
      return;
    }
    if (Cell->isStr() && NewValue.isStr() && S->op() == AssignOp::Add) {
      if (!chargeBytes(Cell->S.size() + NewValue.S.size()))
        return;
      Cell->S += NewValue.S;
      return;
    }
    if (!Cell->isInt() || !NewValue.isInt()) {
      stop(RunEnd::Fault);
      return;
    }
    SymExprPtr Result = applyIntOp(S->op(), Cell->E, NewValue.E);
    if (!Result)
      return;
    *Cell = SValue::intExpr(Result);
  }

  /// Integer op with fault handling for concrete zero divisors and an
  /// implicit `divisor != 0` path constraint for symbolic ones.
  SymExprPtr applyIntOp(AssignOp Op, SymExprPtr L, SymExprPtr R) {
    SymOp SOp = SymOp::Add;
    switch (Op) {
    case AssignOp::Add: SOp = SymOp::Add; break;
    case AssignOp::Sub: SOp = SymOp::Sub; break;
    case AssignOp::Mul: SOp = SymOp::Mul; break;
    case AssignOp::Div: SOp = SymOp::Div; break;
    case AssignOp::Mod: SOp = SymOp::Mod; break;
    case AssignOp::Set: LIGER_UNREACHABLE("Set is not an int op");
    }
    if (SOp == SymOp::Div || SOp == SymOp::Mod) {
      if (R->isIntConst() && R->intValue() == 0) {
        stop(RunEnd::Fault);
        return nullptr;
      }
      if (!R->isIntConst())
        PC.push_back(SymExpr::binary(SymOp::NeInt, R, SymExpr::intConst(0)));
    }
    return SymExpr::binary(SOp, std::move(L), std::move(R));
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  SValue evalExpr(const Expr *E) {
    if (stopped())
      return SValue::undef();
    switch (E->kind()) {
    case ExprKind::IntLit:
      return SValue::intExpr(SymExpr::intConst(cast<IntLitExpr>(E)->value()));
    case ExprKind::BoolLit:
      return SValue::boolExpr(
          SymExpr::boolConst(cast<BoolLitExpr>(E)->value()));
    case ExprKind::StringLit:
      return SValue::str(cast<StringLitExpr>(E)->value());
    case ExprKind::Var: {
      if (SValue *V = lookup(cast<VarExpr>(E)->name()))
        return *V;
      stop(RunEnd::Fault);
      return SValue::undef();
    }
    case ExprKind::ArrayLit: {
      std::vector<SValue> Elements;
      for (const Expr *Elem : cast<ArrayLitExpr>(E)->elements()) {
        Elements.push_back(evalExpr(Elem));
        if (stopped())
          return SValue::undef();
      }
      return SValue::array(std::move(Elements));
    }
    case ExprKind::NewArray: {
      const auto *New = cast<NewArrayExpr>(E);
      SValue Size = evalExpr(New->size());
      if (stopped())
        return SValue::undef();
      size_t Len;
      if (Size.E->isIntConst()) {
        int64_t N = Size.E->intValue();
        if (N < 0 || N > 4096) {
          stop(RunEnd::Fault);
          return SValue::undef();
        }
        Len = static_cast<size_t>(N);
      } else {
        // Fan out over small lengths: constraint n == k.
        std::optional<size_t> Decided =
            decideIndex(Size.E, Options.MaxChoiceOutcomes);
        if (!Decided)
          return SValue::undef();
        Len = *Decided;
      }
      if (!chargeBytes(16 * static_cast<uint64_t>(Len)))
        return SValue::undef();
      std::vector<SValue> Elements(Len, zeroOf(New->elemType()));
      return SValue::array(std::move(Elements));
    }
    case ExprKind::NewStruct: {
      const auto *New = cast<NewStructExpr>(E);
      const StructDecl *Decl = P.findStruct(New->structName());
      std::vector<SValue> Fields;
      for (const Expr *Arg : New->args()) {
        Fields.push_back(evalExpr(Arg));
        if (stopped())
          return SValue::undef();
      }
      return SValue::structV(Decl, std::move(Fields));
    }
    case ExprKind::Index: {
      const auto *Index = cast<IndexExpr>(E);
      SValue Base = evalExpr(Index->base());
      SValue Idx = evalExpr(Index->index());
      if (stopped())
        return SValue::undef();
      if (Base.isArray()) {
        std::optional<size_t> I = decideIndex(Idx.E, Base.Elems->size());
        if (!I)
          return SValue::undef();
        return (*Base.Elems)[*I];
      }
      if (Base.isStr()) {
        std::optional<size_t> I = decideIndex(Idx.E, Base.S.size());
        if (!I)
          return SValue::undef();
        return SValue::str(std::string(1, Base.S[*I]));
      }
      stop(RunEnd::Fault);
      return SValue::undef();
    }
    case ExprKind::Field: {
      const auto *Field = cast<FieldExpr>(E);
      SValue Base = evalExpr(Field->base());
      if (stopped())
        return SValue::undef();
      if (!Base.isStruct()) {
        stop(RunEnd::Fault);
        return SValue::undef();
      }
      int FieldIdx = Base.Decl->fieldIndex(Field->field());
      if (FieldIdx < 0) {
        stop(RunEnd::Fault);
        return SValue::undef();
      }
      return (*Base.Elems)[static_cast<size_t>(FieldIdx)];
    }
    case ExprKind::Unary: {
      const auto *Unary = cast<UnaryExpr>(E);
      SValue Operand = evalExpr(Unary->operand());
      if (stopped())
        return SValue::undef();
      if (Unary->op() == UnaryOp::Neg)
        return SValue::intExpr(SymExpr::unary(SymOp::Neg, Operand.E));
      return SValue::boolExpr(SymExpr::unary(SymOp::Not, Operand.E));
    }
    case ExprKind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case ExprKind::Call:
      return evalCall(cast<CallExpr>(E));
    }
    LIGER_UNREACHABLE("covered switch");
  }

  SValue evalBinary(const BinaryExpr *E) {
    // Short-circuit: a symbolic left operand becomes a decision point,
    // matching concrete evaluation order (so an infeasible right-side
    // fault is never explored when the left side decides).
    if (E->op() == BinaryOp::And || E->op() == BinaryOp::Or) {
      SValue L = evalExpr(E->lhs());
      if (stopped())
        return SValue::undef();
      std::optional<bool> LV = decideBool(L.E);
      if (!LV)
        return SValue::undef();
      if (E->op() == BinaryOp::And && !*LV)
        return SValue::boolExpr(SymExpr::boolConst(false));
      if (E->op() == BinaryOp::Or && *LV)
        return SValue::boolExpr(SymExpr::boolConst(true));
      SValue R = evalExpr(E->rhs());
      if (stopped())
        return SValue::undef();
      return R;
    }

    SValue L = evalExpr(E->lhs());
    SValue R = evalExpr(E->rhs());
    if (stopped())
      return SValue::undef();

    switch (E->op()) {
    case BinaryOp::Add:
      if (L.isStr() && R.isStr()) {
        if (!chargeBytes(L.S.size() + R.S.size()))
          return SValue::undef();
        return SValue::str(L.S + R.S);
      }
      return SValue::intExpr(SymExpr::binary(SymOp::Add, L.E, R.E));
    case BinaryOp::Sub:
      return SValue::intExpr(SymExpr::binary(SymOp::Sub, L.E, R.E));
    case BinaryOp::Mul:
      return SValue::intExpr(SymExpr::binary(SymOp::Mul, L.E, R.E));
    case BinaryOp::Div:
    case BinaryOp::Mod: {
      SymExprPtr Result = applyIntOp(
          E->op() == BinaryOp::Div ? AssignOp::Div : AssignOp::Mod, L.E,
          R.E);
      if (!Result)
        return SValue::undef();
      return SValue::intExpr(Result);
    }
    case BinaryOp::Lt:
      return SValue::boolExpr(SymExpr::binary(SymOp::Lt, L.E, R.E));
    case BinaryOp::Le:
      return SValue::boolExpr(SymExpr::binary(SymOp::Le, L.E, R.E));
    case BinaryOp::Gt:
      return SValue::boolExpr(SymExpr::binary(SymOp::Gt, L.E, R.E));
    case BinaryOp::Ge:
      return SValue::boolExpr(SymExpr::binary(SymOp::Ge, L.E, R.E));
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      SymExprPtr Eq = buildEquality(L, R);
      if (!Eq)
        return SValue::undef();
      if (E->op() == BinaryOp::Ne)
        Eq = SymExpr::unary(SymOp::Not, Eq);
      return SValue::boolExpr(Eq);
    }
    case BinaryOp::And:
    case BinaryOp::Or:
      LIGER_UNREACHABLE("short-circuit ops handled above");
    }
    LIGER_UNREACHABLE("covered switch");
  }

  /// Structural equality as a symbolic boolean. Null on unsupported
  /// shapes (stops the run).
  SymExprPtr buildEquality(const SValue &L, const SValue &R) {
    if (L.isInt() && R.isInt())
      return SymExpr::binary(SymOp::EqInt, L.E, R.E);
    if (L.isBool() && R.isBool())
      return SymExpr::binary(SymOp::EqBool, L.E, R.E);
    if (L.isStr() && R.isStr())
      return SymExpr::boolConst(L.S == R.S);
    if (L.isArray() && R.isArray()) {
      if (L.Elems->size() != R.Elems->size())
        return SymExpr::boolConst(false);
      SymExprPtr All = SymExpr::boolConst(true);
      for (size_t I = 0; I < L.Elems->size(); ++I) {
        SymExprPtr ElemEq = buildEquality((*L.Elems)[I], (*R.Elems)[I]);
        if (!ElemEq)
          return nullptr;
        All = SymExpr::binary(SymOp::And, All, ElemEq);
      }
      return All;
    }
    stop(RunEnd::Unsupported);
    return nullptr;
  }

  SValue evalCall(const CallExpr *E) {
    std::vector<SValue> Args;
    Args.reserve(E->args().size());
    for (const Expr *Arg : E->args()) {
      Args.push_back(evalExpr(Arg));
      if (stopped())
        return SValue::undef();
    }

    const std::string &Callee = E->callee();
    if (Callee == "len") {
      if (Args[0].isArray())
        return SValue::intExpr(
            SymExpr::intConst(static_cast<int64_t>(Args[0].Elems->size())));
      if (Args[0].isStr())
        return SValue::intExpr(
            SymExpr::intConst(static_cast<int64_t>(Args[0].S.size())));
      stop(RunEnd::Fault);
      return SValue::undef();
    }
    if (Callee == "substring") {
      // Requires concrete offsets (loops over concrete strings produce
      // them); otherwise the path is unsupported.
      if (!Args[0].isStr() || !Args[1].E->isIntConst() ||
          !Args[2].E->isIntConst()) {
        stop(RunEnd::Unsupported);
        return SValue::undef();
      }
      int64_t Start = Args[1].E->intValue();
      int64_t Count = Args[2].E->intValue();
      const std::string &S = Args[0].S;
      if (Start < 0 || Count < 0 ||
          static_cast<size_t>(Start) + static_cast<size_t>(Count) >
              S.size()) {
        stop(RunEnd::Fault);
        return SValue::undef();
      }
      return SValue::str(S.substr(static_cast<size_t>(Start),
                                  static_cast<size_t>(Count)));
    }
    if (Callee == "abs")
      return SValue::intExpr(SymExpr::unary(SymOp::Abs, Args[0].E));
    if (Callee == "min")
      return SValue::intExpr(
          SymExpr::binary(SymOp::Min, Args[0].E, Args[1].E));
    if (Callee == "max")
      return SValue::intExpr(
          SymExpr::binary(SymOp::Max, Args[0].E, Args[1].E));

    const FunctionDecl *Target = P.findFunction(Callee);
    if (!Target) {
      stop(RunEnd::Fault);
      return SValue::undef();
    }
    if (CallDepth >= MaxCallDepth) {
      stop(RunEnd::Unsupported);
      return SValue::undef();
    }
    SValue SavedReturn = ReturnValue;
    ++CallDepth;
    pushFrame();
    for (size_t I = 0; I < Target->Params.size(); ++I)
      Frames.back()[Target->Params[I].Name] = Args[I];
    Flow F = Flow::Normal;
    if (Target->Body)
      F = execBlock(Target->Body);
    popFrame();
    --CallDepth;
    SValue Result = F == Flow::Return ? ReturnValue : SValue::undef();
    ReturnValue = SavedReturn;
    if (!Target->ReturnType.isVoid() && Result.Kind == SValue::K::Undef &&
        !stopped())
      stop(RunEnd::Fault);
    return Result;
  }

  const Program &P;
  const FunctionDecl &Fn;
  const Shape &Sh;
  const SymxOptions &Options;

  const std::vector<uint8_t> *Forced = nullptr;
  size_t Cursor = 0;
  std::vector<SymExprPtr> PC;
  SymbolicTrace Trace;
  size_t StepsLeft = 0;
  uint64_t BytesCharged = 0;
  std::vector<Frame> Frames;
  unsigned CallDepth = 0;
  RunEnd Status = RunEnd::Completed;
  std::vector<uint8_t> Pending;
  SValue ReturnValue;

  std::vector<SlotInfo> IntSlots;
  std::vector<SlotInfo> BoolSlots;
  unsigned NumIntSlots = 0;
  unsigned NumBoolSlots = 0;

  static constexpr unsigned MaxCallDepth = 16;
};

/// Enumerates input shapes: the cartesian product of array lengths and
/// string candidates per parameter, truncated to MaxShapes.
std::vector<Shape> enumerateShapes(const FunctionDecl &Fn,
                                   const SymxOptions &Options) {
  size_t NumParams = Fn.Params.size();
  std::vector<size_t> Radix(NumParams, 1);
  for (size_t I = 0; I < NumParams; ++I) {
    const Type &Ty = Fn.Params[I].Ty;
    if (Ty.isArray())
      Radix[I] = std::max<size_t>(1, Options.ArrayLengths.size());
    else if (Ty.isString())
      Radix[I] = std::max<size_t>(1, Options.StringCandidates.size());
  }
  std::vector<Shape> Shapes;
  std::vector<size_t> Digits(NumParams, 0);
  for (;;) {
    Shape Sh;
    Sh.ArrayLen.resize(NumParams, 0);
    Sh.StringIdx.resize(NumParams, 0);
    for (size_t I = 0; I < NumParams; ++I) {
      const Type &Ty = Fn.Params[I].Ty;
      if (Ty.isArray())
        Sh.ArrayLen[I] =
            Options.ArrayLengths.empty() ? 4 : Options.ArrayLengths[Digits[I]];
      else if (Ty.isString())
        Sh.StringIdx[I] = Digits[I];
    }
    Shapes.push_back(std::move(Sh));
    if (Shapes.size() >= Options.MaxShapes)
      return Shapes;
    // Increment mixed-radix counter.
    size_t I = 0;
    while (I < NumParams) {
      if (++Digits[I] < Radix[I])
        break;
      Digits[I] = 0;
      ++I;
    }
    if (I == NumParams)
      return Shapes;
  }
}

/// Recursive DFS over decision prefixes for one shape.
void explorePrefix(SymEngine &Engine, std::vector<uint8_t> &Prefix,
                   const SymxOptions &Options,
                   std::set<std::string> &SeenKeys, size_t &RunsLeft,
                   std::vector<SymbolicPath> &Out) {
  if (Out.size() >= Options.MaxPaths || RunsLeft == 0)
    return;
  --RunsLeft;
  SymEngine::RunResult Result = Engine.runOnce(Prefix);
  switch (Result.End) {
  case SymEngine::RunEnd::Completed: {
    std::string Key = Result.Trace.pathKey();
    if (SeenKeys.count(Key))
      return;
    std::optional<Assignment> Witness =
        solveConstraints(Result.PathCondition, Engine.numIntSlots(),
                         Engine.numBoolSlots(), Options.Solver);
    if (!Witness)
      return; // no witness within budget: treat as infeasible
    SeenKeys.insert(std::move(Key));
    SymbolicPath Path;
    Path.Trace = std::move(Result.Trace);
    Path.PathCondition = std::move(Result.PathCondition);
    Path.WitnessInputs = Engine.buildWitness(*Witness);
    Out.push_back(std::move(Path));
    return;
  }
  case SymEngine::RunEnd::ChoicePending:
    for (uint8_t Outcome : Result.FeasibleOutcomes) {
      if (Out.size() >= Options.MaxPaths || RunsLeft == 0)
        return;
      Prefix.push_back(Outcome);
      explorePrefix(Engine, Prefix, Options, SeenKeys, RunsLeft, Out);
      Prefix.pop_back();
    }
    return;
  case SymEngine::RunEnd::Fault:
  case SymEngine::RunEnd::Unsupported:
  case SymEngine::RunEnd::StepLimit:
  case SymEngine::RunEnd::MemoryLimit:
    return; // dropped
  }
}

} // namespace

std::vector<SymbolicPath> liger::enumeratePaths(const Program &P,
                                                const FunctionDecl &Fn,
                                                const SymxOptions &Options) {
  std::vector<SymbolicPath> Paths;
  std::set<std::string> SeenKeys;
  size_t RunsLeft = Options.MaxRuns;
  for (const Shape &Sh : enumerateShapes(Fn, Options)) {
    if (Paths.size() >= Options.MaxPaths || RunsLeft == 0)
      break;
    SymEngine Engine(P, Fn, Sh, Options);
    std::vector<uint8_t> Prefix;
    explorePrefix(Engine, Prefix, Options, SeenKeys, RunsLeft, Paths);
  }
  return Paths;
}
