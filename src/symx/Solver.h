//===-- symx/Solver.h - Enumerative path-condition solver ------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small satisfiability engine for path conditions over bounded
/// integer and boolean input slots. It is not an SMT solver: corpus
/// programs draw inputs from small domains (the test generator uses the
/// same bounds), so seeded heuristic probes + WalkSAT-style local search
/// over the bounded domain find witnesses for every feasible path that
/// matters in practice. Infeasible paths simply fail to produce a
/// witness and are dropped, which is sound for the trace pipeline (we
/// never fabricate executions).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SYMX_SOLVER_H
#define LIGER_SYMX_SOLVER_H

#include "support/Rng.h"
#include "symx/SymExpr.h"

#include <optional>
#include <vector>

namespace liger {

/// A concrete assignment to the symbolic input slots.
struct Assignment {
  std::vector<int64_t> Ints;
  std::vector<bool> Bools;
};

/// Solver configuration.
struct SolverOptions {
  int64_t IntLo = -8; ///< Inclusive lower bound of every int slot.
  int64_t IntHi = 8;  ///< Inclusive upper bound of every int slot.
  /// Total evaluation budget (heuristic probes + local-search steps).
  unsigned MaxSteps = 6000;
  uint64_t Seed = 1;
};

/// Searches for an assignment satisfying all \p Constraints (each must
/// be bool-typed). Returns nullopt when none was found within budget —
/// callers must treat that as "unknown", not "unsat".
std::optional<Assignment>
solveConstraints(const std::vector<SymExprPtr> &Constraints,
                 unsigned NumIntSlots, unsigned NumBoolSlots,
                 const SolverOptions &Options = {});

/// Cheap feasibility probe used at branch forks: same search with a
/// smaller budget.
bool quickFeasible(const std::vector<SymExprPtr> &Constraints,
                   unsigned NumIntSlots, unsigned NumBoolSlots,
                   const SolverOptions &Options, unsigned Budget = 400);

} // namespace liger

#endif // LIGER_SYMX_SOLVER_H
