//===-- lang/Parser.cpp - MiniLang recursive-descent parser ---------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/TypeCheck.h"
#include "support/Error.h"

using namespace liger;

Parser::Parser(std::vector<Token> Toks, DiagnosticSink &DiagSink)
    : Tokens(std::move(Toks)), Diags(DiagSink) {
  LIGER_CHECK(!Tokens.empty() && Tokens.back().is(TokenKind::EndOfFile),
              "token stream must end with EndOfFile");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Index = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[Index];
}

const Token &Parser::previous() const {
  LIGER_CHECK(Pos > 0, "previous() before any advance()");
  return Tokens[Pos - 1];
}

bool Parser::check(TokenKind Kind) const { return peek().is(Kind); }

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

const Token &Parser::advance() {
  const Token &Tok = Tokens[Pos];
  if (!Tok.is(TokenKind::EndOfFile))
    ++Pos;
  return Tok;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return false;
}

void Parser::synchronizeToDeclBoundary() {
  while (!atEnd()) {
    if (check(TokenKind::KwStruct) || check(TokenKind::KwInt) ||
        check(TokenKind::KwBool) || check(TokenKind::KwString) ||
        check(TokenKind::KwVoid))
      return;
    advance();
  }
}

void Parser::synchronizeToStmtBoundary() {
  // Only ever called when the current token cannot be used, so always
  // consume at least one token — checking previous() before advancing
  // stalls recovery loops whenever the last accepted token was already
  // a ';' (the caller re-errors on the same token forever). Stop after
  // eating a ';' or before a '}' so the enclosing block's loop ends.
  while (!atEnd()) {
    if (check(TokenKind::RBrace))
      return;
    if (advance().is(TokenKind::Semicolon))
      return;
  }
}

bool Parser::atDepthLimit() {
  if (Depth < MaxParseDepth)
    return false;
  if (!DepthDiagnosed) {
    DepthDiagnosed = true;
    Diags.error(peek().Loc,
                "nesting too deep (limit " + std::to_string(MaxParseDepth) +
                    " levels of statements/expressions)");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

Program Parser::parseProgram() {
  Program P;
  // Pre-scan struct names so types can be recognized regardless of
  // declaration order.
  for (size_t I = 0; I + 1 < Tokens.size(); ++I)
    if (Tokens[I].is(TokenKind::KwStruct) &&
        Tokens[I + 1].is(TokenKind::Identifier)) {
      StructDecl Decl;
      Decl.Name = Tokens[I + 1].Text;
      Decl.Loc = Tokens[I + 1].Loc;
      P.Structs.push_back(std::move(Decl));
    }

  size_t StructCursor = 0;
  while (!atEnd()) {
    if (check(TokenKind::KwStruct)) {
      // `struct` without a name was not pre-scanned — reject it here
      // rather than asserting a shell exists.
      if (!peek(1).is(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected struct name");
        advance();
        synchronizeToDeclBoundary();
        continue;
      }
      // Fill in the pre-scanned shell in declaration order.
      LIGER_CHECK(StructCursor < P.Structs.size(),
                  "pre-scan missed a struct declaration");
      parseStructDecl(P);
      ++StructCursor;
      continue;
    }
    if (looksLikeType(P) || check(TokenKind::KwVoid)) {
      parseFunctionDecl(P);
      continue;
    }
    Diags.error(peek().Loc, "expected a struct or function declaration");
    synchronizeToDeclBoundary();
    if (!atEnd() && check(TokenKind::KwStruct) && StructCursor < P.Structs.size())
      continue;
    if (atEnd())
      break;
  }
  return P;
}

void Parser::parseStructDecl(Program &P) {
  expect(TokenKind::KwStruct, "to begin struct declaration");
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected struct name");
    synchronizeToDeclBoundary();
    return;
  }
  const Token &NameTok = advance();
  StructDecl *Decl = nullptr;
  for (StructDecl &S : P.Structs)
    if (S.Name == NameTok.Text && S.Fields.empty())
      Decl = &S;
  LIGER_CHECK(Decl, "struct shell should have been pre-scanned");

  expect(TokenKind::LBrace, "after struct name");
  while (!check(TokenKind::RBrace) && !atEnd()) {
    std::optional<Type> FieldTy = parseType(P);
    if (!FieldTy) {
      synchronizeToStmtBoundary();
      continue;
    }
    if (!FieldTy->isPrimitive())
      Diags.error(previous().Loc, "struct fields must be primitive types");
    if (!check(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected field name");
      synchronizeToStmtBoundary();
      continue;
    }
    const Token &FieldName = advance();
    Decl->Fields.push_back({*FieldTy, FieldName.Text});
    expect(TokenKind::Semicolon, "after struct field");
  }
  expect(TokenKind::RBrace, "to close struct declaration");
}

void Parser::parseFunctionDecl(Program &P) {
  std::optional<Type> RetTy;
  if (match(TokenKind::KwVoid))
    RetTy = Type::voidTy();
  else
    RetTy = parseType(P);
  if (!RetTy) {
    synchronizeToDeclBoundary();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected function name");
    synchronizeToDeclBoundary();
    return;
  }
  const Token &NameTok = advance();

  FunctionDecl Fn;
  Fn.ReturnType = *RetTy;
  Fn.Name = NameTok.Text;
  Fn.Loc = NameTok.Loc;

  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      std::optional<Type> ParamTy = parseType(P);
      if (!ParamTy) {
        synchronizeToStmtBoundary();
        return;
      }
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected parameter name");
        return;
      }
      const Token &ParamName = advance();
      Fn.Params.push_back({*ParamTy, ParamName.Text});
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");

  if (!check(TokenKind::LBrace)) {
    Diags.error(peek().Loc, "expected function body");
    synchronizeToDeclBoundary();
    return;
  }
  Fn.Body = parseBlock(P);
  P.Functions.push_back(std::move(Fn));
}

std::optional<Type> Parser::parseType(const Program &P) {
  Type Base;
  if (match(TokenKind::KwInt))
    Base = Type::intTy();
  else if (match(TokenKind::KwBool))
    Base = Type::boolTy();
  else if (match(TokenKind::KwString))
    Base = Type::stringTy();
  else if (check(TokenKind::Identifier) && P.findStruct(peek().Text)) {
    Base = Type::structTy(advance().Text);
  } else {
    Diags.error(peek().Loc, std::string("expected a type, found ") +
                                tokenKindName(peek().Kind));
    return std::nullopt;
  }
  if (match(TokenKind::LBracket)) {
    if (!Base.isPrimitive()) {
      Diags.error(previous().Loc, "arrays of non-primitive types are not "
                                  "supported");
      return std::nullopt;
    }
    expect(TokenKind::RBracket, "to close array type");
    return Type::arrayOf(Base.kind());
  }
  return Base;
}

bool Parser::looksLikeType(const Program &P) const {
  if (check(TokenKind::KwInt) || check(TokenKind::KwBool) ||
      check(TokenKind::KwString))
    return true;
  // A struct-typed declaration is "StructName ident".
  return check(TokenKind::Identifier) && P.findStruct(peek().Text) &&
         peek(1).is(TokenKind::Identifier);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const BlockStmt *Parser::parseBlock(Program &P) {
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<const Stmt *> Body;
  while (!check(TokenKind::RBrace) && !atEnd()) {
    size_t Before = Pos;
    const Stmt *S = parseStmt(P);
    if (S)
      Body.push_back(S);
    // A statement parser can error without consuming (e.g. an
    // expression statement whose expression was cut off by the depth
    // budget one level down); the loop invariant is that every
    // iteration makes token progress, so force recovery if not.
    if (Pos == Before)
      synchronizeToStmtBoundary();
  }
  expect(TokenKind::RBrace, "to close block");
  return P.context().createStmt<BlockStmt>(Loc, std::move(Body));
}

const Stmt *Parser::parseStmt(Program &P) {
  if (atDepthLimit()) {
    synchronizeToStmtBoundary();
    return nullptr;
  }
  DepthGuard G(*this);
  if (check(TokenKind::LBrace))
    return parseBlock(P);
  if (check(TokenKind::KwIf))
    return parseIf(P);
  if (check(TokenKind::KwWhile))
    return parseWhile(P);
  if (check(TokenKind::KwFor))
    return parseFor(P);
  if (check(TokenKind::KwReturn)) {
    SourceLoc Loc = advance().Loc;
    const Expr *Value = nullptr;
    if (!check(TokenKind::Semicolon))
      Value = parseExpr(P);
    expect(TokenKind::Semicolon, "after return statement");
    return P.context().createStmt<ReturnStmt>(Loc, Value);
  }
  if (check(TokenKind::KwBreak)) {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semicolon, "after break");
    return P.context().createStmt<BreakStmt>(Loc);
  }
  if (check(TokenKind::KwContinue)) {
    SourceLoc Loc = advance().Loc;
    expect(TokenKind::Semicolon, "after continue");
    return P.context().createStmt<ContinueStmt>(Loc);
  }
  const Stmt *S = parseSimpleStmt(P);
  expect(TokenKind::Semicolon, "after statement");
  return S;
}

const Stmt *Parser::parseIf(Program &P) {
  SourceLoc Loc = advance().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  const Expr *Cond = parseExpr(P);
  expect(TokenKind::RParen, "to close if condition");
  const Stmt *Then = parseStmt(P);
  const Stmt *Else = nullptr;
  if (match(TokenKind::KwElse))
    Else = parseStmt(P);
  return P.context().createStmt<IfStmt>(Loc, Cond, Then, Else);
}

const Stmt *Parser::parseWhile(Program &P) {
  SourceLoc Loc = advance().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  const Expr *Cond = parseExpr(P);
  expect(TokenKind::RParen, "to close while condition");
  const Stmt *Body = parseStmt(P);
  return P.context().createStmt<WhileStmt>(Loc, Cond, Body);
}

const Stmt *Parser::parseFor(Program &P) {
  SourceLoc Loc = advance().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");
  const Stmt *Init = nullptr;
  if (!check(TokenKind::Semicolon))
    Init = parseSimpleStmt(P);
  expect(TokenKind::Semicolon, "after for-init");
  const Expr *Cond = nullptr;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpr(P);
  expect(TokenKind::Semicolon, "after for-condition");
  const Stmt *Step = nullptr;
  if (!check(TokenKind::RParen))
    Step = parseSimpleStmt(P);
  expect(TokenKind::RParen, "to close for header");
  const Stmt *Body = parseStmt(P);
  return P.context().createStmt<ForStmt>(Loc, Init, Cond, Step, Body);
}

const Stmt *Parser::parseDecl(Program &P) {
  SourceLoc Loc = peek().Loc;
  std::optional<Type> Ty = parseType(P);
  if (!Ty) {
    synchronizeToStmtBoundary();
    return nullptr;
  }
  if (!check(TokenKind::Identifier)) {
    Diags.error(peek().Loc, "expected variable name in declaration");
    synchronizeToStmtBoundary();
    return nullptr;
  }
  const Token &Name = advance();
  const Expr *Init = nullptr;
  if (match(TokenKind::Assign))
    Init = parseExpr(P);
  return P.context().createStmt<DeclStmt>(Loc, *Ty, Name.Text, Init);
}

const Stmt *Parser::parseSimpleStmt(Program &P) {
  if (looksLikeType(P))
    return parseDecl(P);
  return parseAssignOrExprStmt(P);
}

static bool isLValue(const Expr *E) {
  return isa<VarExpr>(E) || isa<IndexExpr>(E) || isa<FieldExpr>(E);
}

const Stmt *Parser::parseAssignOrExprStmt(Program &P) {
  SourceLoc Loc = peek().Loc;
  const Expr *Target = parseExpr(P);
  if (!Target)
    return nullptr;

  auto MakeAssign = [&](AssignOp Op, const Expr *Value, AssignSyntax Syntax) {
    if (!isLValue(Target))
      Diags.error(Loc, "left-hand side of assignment is not assignable");
    return P.context().createStmt<AssignStmt>(Loc, Target, Op, Value, Syntax);
  };

  if (match(TokenKind::Assign))
    return MakeAssign(AssignOp::Set, parseExpr(P), AssignSyntax::Plain);
  if (match(TokenKind::PlusAssign))
    return MakeAssign(AssignOp::Add, parseExpr(P), AssignSyntax::Compound);
  if (match(TokenKind::MinusAssign))
    return MakeAssign(AssignOp::Sub, parseExpr(P), AssignSyntax::Compound);
  if (match(TokenKind::StarAssign))
    return MakeAssign(AssignOp::Mul, parseExpr(P), AssignSyntax::Compound);
  if (match(TokenKind::SlashAssign))
    return MakeAssign(AssignOp::Div, parseExpr(P), AssignSyntax::Compound);
  if (match(TokenKind::PercentAssign))
    return MakeAssign(AssignOp::Mod, parseExpr(P), AssignSyntax::Compound);
  if (match(TokenKind::PlusPlus)) {
    const Expr *One = P.context().createExpr<IntLitExpr>(previous().Loc, 1);
    return MakeAssign(AssignOp::Add, One, AssignSyntax::IncDec);
  }
  if (match(TokenKind::MinusMinus)) {
    const Expr *One = P.context().createExpr<IntLitExpr>(previous().Loc, 1);
    return MakeAssign(AssignOp::Sub, One, AssignSyntax::IncDec);
  }

  if (!isa<CallExpr>(Target))
    Diags.error(Loc, "only call expressions may be used as statements");
  return P.context().createStmt<ExprStmt>(Loc, Target);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Expr *Parser::makeErrorExpr(Program &P, SourceLoc Loc) {
  // Error placeholder: a zero literal keeps downstream passes total.
  return P.context().createExpr<IntLitExpr>(Loc, 0);
}

const Expr *Parser::parseExpr(Program &P) {
  if (atDepthLimit())
    // No token is consumed here; every caller reached this point by
    // consuming at least one opening token per nesting level, so the
    // parse still terminates.
    return makeErrorExpr(P, peek().Loc);
  DepthGuard G(*this);
  return parseOr(P);
}

const Expr *Parser::parseOr(Program &P) {
  const Expr *Lhs = parseAnd(P);
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseAnd(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, BinaryOp::Or, Lhs, Rhs);
  }
  return Lhs;
}

const Expr *Parser::parseAnd(Program &P) {
  const Expr *Lhs = parseEquality(P);
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseEquality(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, BinaryOp::And, Lhs, Rhs);
  }
  return Lhs;
}

const Expr *Parser::parseEquality(Program &P) {
  const Expr *Lhs = parseRelational(P);
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::EqualEqual))
      Op = BinaryOp::Eq;
    else if (check(TokenKind::NotEqual))
      Op = BinaryOp::Ne;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseRelational(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

const Expr *Parser::parseRelational(Program &P) {
  const Expr *Lhs = parseAdditive(P);
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Less))
      Op = BinaryOp::Lt;
    else if (check(TokenKind::LessEqual))
      Op = BinaryOp::Le;
    else if (check(TokenKind::Greater))
      Op = BinaryOp::Gt;
    else if (check(TokenKind::GreaterEqual))
      Op = BinaryOp::Ge;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseAdditive(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

const Expr *Parser::parseAdditive(Program &P) {
  const Expr *Lhs = parseMultiplicative(P);
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (check(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseMultiplicative(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

const Expr *Parser::parseMultiplicative(Program &P) {
  const Expr *Lhs = parseUnary(P);
  for (;;) {
    BinaryOp Op;
    if (check(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (check(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (check(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else
      return Lhs;
    SourceLoc Loc = advance().Loc;
    const Expr *Rhs = parseUnary(P);
    Lhs = P.context().createExpr<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

const Expr *Parser::parseUnary(Program &P) {
  if (check(TokenKind::Minus) || check(TokenKind::Bang)) {
    // Self-recursive production ("!!!!...x"): budget it like any other
    // nesting level so operator chains cannot overflow the stack.
    if (atDepthLimit()) {
      SourceLoc Loc = advance().Loc; // consume the operator: progress
      return makeErrorExpr(P, Loc);
    }
    DepthGuard G(*this);
    UnaryOp Op = check(TokenKind::Minus) ? UnaryOp::Neg : UnaryOp::Not;
    SourceLoc Loc = advance().Loc;
    const Expr *Operand = parseUnary(P);
    return P.context().createExpr<UnaryExpr>(Loc, Op, Operand);
  }
  return parsePostfix(P);
}

const Expr *Parser::parsePostfix(Program &P) {
  const Expr *Base = parsePrimary(P);
  for (;;) {
    if (check(TokenKind::LBracket)) {
      SourceLoc Loc = advance().Loc;
      const Expr *Index = parseExpr(P);
      expect(TokenKind::RBracket, "to close index expression");
      Base = P.context().createExpr<IndexExpr>(Loc, Base, Index);
      continue;
    }
    if (check(TokenKind::Dot)) {
      SourceLoc Loc = advance().Loc;
      if (!check(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected field name after '.'");
        return Base;
      }
      const Token &Field = advance();
      Base = P.context().createExpr<FieldExpr>(Loc, Base, Field.Text);
      continue;
    }
    if (check(TokenKind::LParen) && isa<VarExpr>(Base)) {
      // A call: the callee must be a bare identifier.
      SourceLoc Loc = advance().Loc;
      std::vector<const Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr(P));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close argument list");
      const std::string &Callee = cast<VarExpr>(Base)->name();
      Base = P.context().createExpr<CallExpr>(Loc, Callee, std::move(Args));
      continue;
    }
    return Base;
  }
}

const Expr *Parser::parsePrimary(Program &P) {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::IntLiteral)) {
    const Token &Tok = advance();
    return P.context().createExpr<IntLitExpr>(Loc, Tok.IntValue);
  }
  if (check(TokenKind::StringLiteral)) {
    const Token &Tok = advance();
    return P.context().createExpr<StringLitExpr>(Loc, Tok.Text);
  }
  if (match(TokenKind::KwTrue))
    return P.context().createExpr<BoolLitExpr>(Loc, true);
  if (match(TokenKind::KwFalse))
    return P.context().createExpr<BoolLitExpr>(Loc, false);
  if (check(TokenKind::Identifier)) {
    const Token &Tok = advance();
    return P.context().createExpr<VarExpr>(Loc, Tok.Text);
  }
  if (match(TokenKind::LParen)) {
    const Expr *Inner = parseExpr(P);
    expect(TokenKind::RParen, "to close parenthesized expression");
    return Inner;
  }
  if (match(TokenKind::LBracket)) {
    std::vector<const Expr *> Elements;
    if (!check(TokenKind::RBracket)) {
      do {
        Elements.push_back(parseExpr(P));
      } while (match(TokenKind::Comma));
    }
    expect(TokenKind::RBracket, "to close array literal");
    return P.context().createExpr<ArrayLitExpr>(Loc, std::move(Elements));
  }
  if (match(TokenKind::KwNew)) {
    // new int[n] | new bool[n] | new string[n] | new Struct(args)
    if (match(TokenKind::KwInt) || match(TokenKind::KwBool) ||
        match(TokenKind::KwString)) {
      TokenKind BaseKind = previous().Kind;
      Type ElemTy = BaseKind == TokenKind::KwInt    ? Type::intTy()
                    : BaseKind == TokenKind::KwBool ? Type::boolTy()
                                                    : Type::stringTy();
      expect(TokenKind::LBracket, "after element type in 'new'");
      const Expr *Size = parseExpr(P);
      expect(TokenKind::RBracket, "to close array allocation");
      return P.context().createExpr<NewArrayExpr>(Loc, ElemTy, Size);
    }
    if (check(TokenKind::Identifier)) {
      const Token &Name = advance();
      expect(TokenKind::LParen, "after struct name in 'new'");
      std::vector<const Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseExpr(P));
        } while (match(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close struct construction");
      return P.context().createExpr<NewStructExpr>(Loc, Name.Text,
                                                   std::move(Args));
    }
    Diags.error(peek().Loc, "expected a type after 'new'");
    return makeErrorExpr(P, Loc);
  }

  Diags.error(Loc, std::string("expected an expression, found ") +
                       tokenKindName(peek().Kind));
  if (!atEnd())
    advance(); // make progress to avoid infinite loops
  return makeErrorExpr(P, Loc);
}

//===----------------------------------------------------------------------===//
// Convenience driver
//===----------------------------------------------------------------------===//

std::optional<Program> liger::parseAndCheck(const std::string &Source,
                                            DiagnosticSink &Diags) {
  Lexer Lex(Source, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return std::nullopt;
  Parser Parse(std::move(Tokens), Diags);
  Program P = Parse.parseProgram();
  if (Diags.hasErrors())
    return std::nullopt;
  if (!typeCheck(P, Diags))
    return std::nullopt;
  return P;
}
