//===-- lang/SourceLoc.h - Source positions and diagnostics ----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations (1-based line/column) and the diagnostic sink shared
/// by the lexer, parser, and type checker. Line numbers also drive the
/// *line coverage* notion used by the paper's §6.1.2 data-reliance
/// experiments, so they must be stable across pretty-print round trips.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_SOURCELOC_H
#define LIGER_LANG_SOURCELOC_H

#include <string>
#include <vector>

namespace liger {

/// A 1-based position in a source buffer. Line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// One diagnostic message with its location.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; the front end never throws or aborts on bad
/// input, it records errors here and the caller inspects hasErrors().
///
/// Storage is capped: hostile inputs (e.g. a megabyte of invalid bytes,
/// each producing its own lexer error) would otherwise make the sink
/// itself the memory bomb. Errors past the cap are counted but not
/// stored — hasErrors() and errorCount() see every error regardless.
class DiagnosticSink {
public:
  /// Maximum number of diagnostics kept verbatim.
  static constexpr size_t MaxStoredDiags = 256;

  void error(SourceLoc Loc, const std::string &Message) {
    ++ErrorCount;
    if (Diags.size() < MaxStoredDiags)
      Diags.push_back({Loc, Message});
  }

  bool hasErrors() const { return ErrorCount != 0; }
  /// Total errors reported, including those dropped past the cap.
  size_t errorCount() const { return ErrorCount; }
  /// Errors reported but not stored because the cap was reached.
  size_t droppedCount() const { return ErrorCount - Diags.size(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all stored diagnostics as "line:col: message" lines, plus
  /// a trailing note when some were dropped at the cap.
  std::string str() const {
    std::string Result;
    for (const Diagnostic &D : Diags) {
      Result += D.Loc.str();
      Result += ": ";
      Result += D.Message;
      Result += '\n';
    }
    if (size_t Dropped = droppedCount())
      Result += "note: " + std::to_string(Dropped) +
                " further error(s) not shown\n";
    return Result;
  }

private:
  std::vector<Diagnostic> Diags;
  size_t ErrorCount = 0;
};

} // namespace liger

#endif // LIGER_LANG_SOURCELOC_H
