//===-- lang/SourceLoc.h - Source positions and diagnostics ----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations (1-based line/column) and the diagnostic sink shared
/// by the lexer, parser, and type checker. Line numbers also drive the
/// *line coverage* notion used by the paper's §6.1.2 data-reliance
/// experiments, so they must be stable across pretty-print round trips.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_SOURCELOC_H
#define LIGER_LANG_SOURCELOC_H

#include <string>
#include <vector>

namespace liger {

/// A 1-based position in a source buffer. Line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// One diagnostic message with its location.
struct Diagnostic {
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics; the front end never throws or aborts on bad
/// input, it records errors here and the caller inspects hasErrors().
class DiagnosticSink {
public:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.push_back({Loc, Message});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: message" lines.
  std::string str() const {
    std::string Result;
    for (const Diagnostic &D : Diags) {
      Result += D.Loc.str();
      Result += ": ";
      Result += D.Message;
      Result += '\n';
    }
    return Result;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace liger

#endif // LIGER_LANG_SOURCELOC_H
