//===-- lang/Type.h - MiniLang type representation -------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniLang type system: int, bool, string, fixed element arrays of
/// primitives, and user-declared structs whose fields are primitive.
/// Struct values are the "object types" of the paper (§5.1.1): the
/// encoder flattens an object value into the array of its primitive
/// attribute values, attr(v).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_TYPE_H
#define LIGER_LANG_TYPE_H

#include "support/Error.h"

#include <string>

namespace liger {

/// Value category of a MiniLang type.
enum class TypeKind {
  Void,   ///< Only valid as a function return type.
  Int,
  Bool,
  String,
  Array,  ///< Array of a primitive element type.
  Struct, ///< User-declared record of primitive fields.
};

/// A MiniLang type. Small value type; arrays store their element kind
/// (primitives only, no nested arrays) and structs their declared name.
class Type {
public:
  Type() : Kind(TypeKind::Void), Elem(TypeKind::Void) {}

  static Type voidTy() { return Type(TypeKind::Void); }
  static Type intTy() { return Type(TypeKind::Int); }
  static Type boolTy() { return Type(TypeKind::Bool); }
  static Type stringTy() { return Type(TypeKind::String); }

  static Type arrayOf(TypeKind ElemKind) {
    LIGER_CHECK(ElemKind == TypeKind::Int || ElemKind == TypeKind::Bool ||
                    ElemKind == TypeKind::String,
                "array elements must be primitive");
    Type T(TypeKind::Array);
    T.Elem = ElemKind;
    return T;
  }

  static Type structTy(std::string Name) {
    Type T(TypeKind::Struct);
    T.StructName = std::move(Name);
    return T;
  }

  TypeKind kind() const { return Kind; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isString() const { return Kind == TypeKind::String; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isPrimitive() const { return isInt() || isBool() || isString(); }

  /// Element kind; only valid for arrays.
  TypeKind elemKind() const {
    LIGER_CHECK(isArray(), "elemKind on non-array type");
    return Elem;
  }

  /// Element type as a full Type; only valid for arrays.
  Type elemType() const { return Type(elemKind()); }

  /// Declared struct name; only valid for structs.
  const std::string &structName() const {
    LIGER_CHECK(isStruct(), "structName on non-struct type");
    return StructName;
  }

  bool operator==(const Type &Other) const {
    return Kind == Other.Kind && Elem == Other.Elem &&
           StructName == Other.StructName;
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  /// Source-syntax spelling, e.g. "int[]" or "Point".
  std::string str() const;

private:
  explicit Type(TypeKind K) : Kind(K), Elem(TypeKind::Void) {}

  TypeKind Kind;
  TypeKind Elem;
  std::string StructName;
};

} // namespace liger

#endif // LIGER_LANG_TYPE_H
