//===-- lang/Ast.h - MiniLang abstract syntax trees ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniLang AST. Nodes are arena-allocated by an AstContext owned by
/// the Program; all cross-references are raw non-owning pointers, which
/// stay valid for the lifetime of the Program.
///
/// Design notes relevant to the paper:
///  - Surface syntax is preserved (compound assignment, ++/--, for vs
///    while), because the static feature dimension must distinguish
///    syntactic variants of the same semantics (e.g. the paper's
///    `i += i` vs `i *= 2` discussion in §3).
///  - Every node carries a SourceLoc whose line number feeds the line
///    coverage metric of §6.1.2.
///  - Nodes use LLVM-style isa/cast/dyn_cast via classof.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_AST_H
#define LIGER_LANG_AST_H

#include "lang/SourceLoc.h"
#include "lang/Type.h"
#include "support/Casting.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace liger {

class AstContext;

/// Unique (per Program) id for AST nodes; used as a stable key by
/// coverage tracking and trace encoding.
using NodeId = uint32_t;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  IntLit,
  BoolLit,
  StringLit,
  Var,
  ArrayLit,
  NewArray,
  NewStruct,
  Index,
  Field,
  Unary,
  Binary,
  Call,
};

/// Spelled name of an expression kind ("Binary", "Var", ...), used as the
/// AST-node-type vocabulary item in the static feature dimension.
const char *exprKindName(ExprKind Kind);

/// Base class of all MiniLang expressions.
class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr() = default;

  ExprKind kind() const { return Kind; }
  NodeId id() const { return Id; }
  SourceLoc loc() const { return Loc; }

  /// Static type, filled in by the type checker (Void until then).
  const Type &type() const { return Ty; }
  void setType(Type T) { Ty = std::move(T); }

  /// Invokes \p Fn on each direct sub-expression, in source order.
  virtual void forEachChild(
      const std::function<void(const Expr *)> &Fn) const = 0;

protected:
  Expr(ExprKind K, NodeId Id, SourceLoc Loc) : Kind(K), Id(Id), Loc(Loc) {}

private:
  ExprKind Kind;
  NodeId Id;
  SourceLoc Loc;
  Type Ty;
};

/// Integer literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(NodeId Id, SourceLoc Loc, int64_t Value)
      : Expr(ExprKind::IntLit, Id, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  void forEachChild(const std::function<void(const Expr *)> &) const override {
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Value;
};

/// Boolean literal.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(NodeId Id, SourceLoc Loc, bool Value)
      : Expr(ExprKind::BoolLit, Id, Loc), Value(Value) {}

  bool value() const { return Value; }

  void forEachChild(const std::function<void(const Expr *)> &) const override {
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

private:
  bool Value;
};

/// String literal (stores the unescaped value).
class StringLitExpr : public Expr {
public:
  StringLitExpr(NodeId Id, SourceLoc Loc, std::string Value)
      : Expr(ExprKind::StringLit, Id, Loc), Value(std::move(Value)) {}

  const std::string &value() const { return Value; }

  void forEachChild(const std::function<void(const Expr *)> &) const override {
  }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLit;
  }

private:
  std::string Value;
};

/// Reference to a variable or parameter.
class VarExpr : public Expr {
public:
  VarExpr(NodeId Id, SourceLoc Loc, std::string Name)
      : Expr(ExprKind::Var, Id, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  void forEachChild(const std::function<void(const Expr *)> &) const override {
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  std::string Name;
};

/// Array literal: [e0, e1, ...]. Elements must share a primitive type.
class ArrayLitExpr : public Expr {
public:
  ArrayLitExpr(NodeId Id, SourceLoc Loc, std::vector<const Expr *> Elements)
      : Expr(ExprKind::ArrayLit, Id, Loc), Elements(std::move(Elements)) {}

  const std::vector<const Expr *> &elements() const { return Elements; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    for (const Expr *E : Elements)
      Fn(E);
  }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayLit;
  }

private:
  std::vector<const Expr *> Elements;
};

/// Array allocation: new int[n] (elements are zero-initialized).
class NewArrayExpr : public Expr {
public:
  NewArrayExpr(NodeId Id, SourceLoc Loc, Type ElemTy, const Expr *Size)
      : Expr(ExprKind::NewArray, Id, Loc), ElemTy(std::move(ElemTy)),
        Size(Size) {}

  const Type &elemType() const { return ElemTy; }
  const Expr *size() const { return Size; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    Fn(Size);
  }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewArray;
  }

private:
  Type ElemTy;
  const Expr *Size;
};

/// Struct construction with positional field values: new Point(1, 2).
class NewStructExpr : public Expr {
public:
  NewStructExpr(NodeId Id, SourceLoc Loc, std::string StructName,
                std::vector<const Expr *> Args)
      : Expr(ExprKind::NewStruct, Id, Loc), StructName(std::move(StructName)),
        Args(std::move(Args)) {}

  const std::string &structName() const { return StructName; }
  const std::vector<const Expr *> &args() const { return Args; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    for (const Expr *E : Args)
      Fn(E);
  }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NewStruct;
  }

private:
  std::string StructName;
  std::vector<const Expr *> Args;
};

/// Array or string indexing: a[i]. Indexing a string yields a length-1
/// string (character), mirroring the paper's C#-flavoured examples.
class IndexExpr : public Expr {
public:
  IndexExpr(NodeId Id, SourceLoc Loc, const Expr *Base, const Expr *Index)
      : Expr(ExprKind::Index, Id, Loc), Base(Base), Index(Index) {}

  const Expr *base() const { return Base; }
  const Expr *index() const { return Index; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    Fn(Base);
    Fn(Index);
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Index; }

private:
  const Expr *Base;
  const Expr *Index;
};

/// Struct field access: p.x.
class FieldExpr : public Expr {
public:
  FieldExpr(NodeId Id, SourceLoc Loc, const Expr *Base, std::string Field)
      : Expr(ExprKind::Field, Id, Loc), Base(Base), Field(std::move(Field)) {}

  const Expr *base() const { return Base; }
  const std::string &field() const { return Field; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    Fn(Base);
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Field; }

private:
  const Expr *Base;
  std::string Field;
};

enum class UnaryOp { Neg, Not };

/// Unary operation: -e or !e.
class UnaryExpr : public Expr {
public:
  UnaryExpr(NodeId Id, SourceLoc Loc, UnaryOp Op, const Expr *Operand)
      : Expr(ExprKind::Unary, Id, Loc), Op(Op), Operand(Operand) {}

  UnaryOp op() const { return Op; }
  const Expr *operand() const { return Operand; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    Fn(Operand);
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  const Expr *Operand;
};

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

/// Spelling of a binary operator ("+", "<=", ...).
const char *binaryOpSpelling(BinaryOp Op);

/// Binary operation. && and || are short-circuiting.
class BinaryExpr : public Expr {
public:
  BinaryExpr(NodeId Id, SourceLoc Loc, BinaryOp Op, const Expr *Lhs,
             const Expr *Rhs)
      : Expr(ExprKind::Binary, Id, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    Fn(Lhs);
    Fn(Rhs);
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

/// Call to a builtin (len, substring) or a user-declared function.
class CallExpr : public Expr {
public:
  CallExpr(NodeId Id, SourceLoc Loc, std::string Callee,
           std::vector<const Expr *> Args)
      : Expr(ExprKind::Call, Id, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<const Expr *> &args() const { return Args; }

  void forEachChild(
      const std::function<void(const Expr *)> &Fn) const override {
    for (const Expr *E : Args)
      Fn(E);
  }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  std::string Callee;
  std::vector<const Expr *> Args;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Decl,
  Assign,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  Block,
  Expr,
};

/// Spelled name of a statement kind ("If", "Assign", ...).
const char *stmtKindName(StmtKind Kind);

/// Base class of all MiniLang statements.
class Stmt {
public:
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
  virtual ~Stmt() = default;

  StmtKind kind() const { return Kind; }
  NodeId id() const { return Id; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind K, NodeId Id, SourceLoc Loc) : Kind(K), Id(Id), Loc(Loc) {}

private:
  StmtKind Kind;
  NodeId Id;
  SourceLoc Loc;
};

/// Local variable declaration, optionally initialized:  int x = e;
/// Uninitialized variables get the type's zero value.
class DeclStmt : public Stmt {
public:
  DeclStmt(NodeId Id, SourceLoc Loc, Type Ty, std::string Name,
           const Expr *Init)
      : Stmt(StmtKind::Decl, Id, Loc), Ty(std::move(Ty)),
        Name(std::move(Name)), Init(Init) {}

  const Type &declType() const { return Ty; }
  const std::string &name() const { return Name; }
  const Expr *init() const { return Init; } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  Type Ty;
  std::string Name;
  const Expr *Init;
};

/// The operator of an assignment statement.
enum class AssignOp { Set, Add, Sub, Mul, Div, Mod };

/// Surface form the assignment was written in; preserved so that the
/// pretty printer round-trips and the static feature dimension can tell
/// `i = i + 1`, `i += 1`, and `i++` apart.
enum class AssignSyntax { Plain, Compound, IncDec };

/// Assignment to a variable, array element, or struct field.
class AssignStmt : public Stmt {
public:
  AssignStmt(NodeId Id, SourceLoc Loc, const Expr *Target, AssignOp Op,
             const Expr *Value, AssignSyntax Syntax)
      : Stmt(StmtKind::Assign, Id, Loc), Target(Target), Op(Op), Value(Value),
        Syntax(Syntax) {}

  const Expr *target() const { return Target; }
  AssignOp op() const { return Op; }
  const Expr *value() const { return Value; }
  AssignSyntax syntax() const { return Syntax; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  const Expr *Target;
  AssignOp Op;
  const Expr *Value;
  AssignSyntax Syntax;
};

/// if (Cond) Then [else Else].
class IfStmt : public Stmt {
public:
  IfStmt(NodeId Id, SourceLoc Loc, const Expr *Cond, const Stmt *Then,
         const Stmt *Else)
      : Stmt(StmtKind::If, Id, Loc), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const Stmt *thenStmt() const { return Then; }
  const Stmt *elseStmt() const { return Else; } ///< May be null.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  const Expr *Cond;
  const Stmt *Then;
  const Stmt *Else;
};

/// while (Cond) Body.
class WhileStmt : public Stmt {
public:
  WhileStmt(NodeId Id, SourceLoc Loc, const Expr *Cond, const Stmt *Body)
      : Stmt(StmtKind::While, Id, Loc), Cond(Cond), Body(Body) {}

  const Expr *cond() const { return Cond; }
  const Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  const Expr *Cond;
  const Stmt *Body;
};

/// for (Init; Cond; Step) Body. Init/Cond/Step may each be null.
class ForStmt : public Stmt {
public:
  ForStmt(NodeId Id, SourceLoc Loc, const Stmt *Init, const Expr *Cond,
          const Stmt *Step, const Stmt *Body)
      : Stmt(StmtKind::For, Id, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}

  const Stmt *init() const { return Init; } ///< Decl or Assign; may be null.
  const Expr *cond() const { return Cond; } ///< May be null (infinite).
  const Stmt *step() const { return Step; } ///< Assign; may be null.
  const Stmt *body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  const Stmt *Init;
  const Expr *Cond;
  const Stmt *Step;
  const Stmt *Body;
};

/// return [e];
class ReturnStmt : public Stmt {
public:
  ReturnStmt(NodeId Id, SourceLoc Loc, const Expr *Value)
      : Stmt(StmtKind::Return, Id, Loc), Value(Value) {}

  const Expr *value() const { return Value; } ///< Null for void return.

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  const Expr *Value;
};

/// break;
class BreakStmt : public Stmt {
public:
  BreakStmt(NodeId Id, SourceLoc Loc) : Stmt(StmtKind::Break, Id, Loc) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

/// continue;
class ContinueStmt : public Stmt {
public:
  ContinueStmt(NodeId Id, SourceLoc Loc) : Stmt(StmtKind::Continue, Id, Loc) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

/// { s0; s1; ... }
class BlockStmt : public Stmt {
public:
  BlockStmt(NodeId Id, SourceLoc Loc, std::vector<const Stmt *> Body)
      : Stmt(StmtKind::Block, Id, Loc), Body(std::move(Body)) {}

  const std::vector<const Stmt *> &body() const { return Body; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Block; }

private:
  std::vector<const Stmt *> Body;
};

/// Expression evaluated for its side effect (a call): f(a, b);
class ExprStmt : public Stmt {
public:
  ExprStmt(NodeId Id, SourceLoc Loc, const Expr *E)
      : Stmt(StmtKind::Expr, Id, Loc), E(E) {}

  const Expr *expr() const { return E; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  const Expr *E;
};

//===----------------------------------------------------------------------===//
// Declarations and Program
//===----------------------------------------------------------------------===//

/// A typed name (function parameter or struct field).
struct TypedName {
  Type Ty;
  std::string Name;
};

/// A struct declaration: struct Point { int x; int y; }
struct StructDecl {
  std::string Name;
  std::vector<TypedName> Fields;
  SourceLoc Loc;

  /// Index of a field by name, or -1 if absent.
  int fieldIndex(const std::string &FieldName) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == FieldName)
        return static_cast<int>(I);
    return -1;
  }
};

/// A function declaration with body.
struct FunctionDecl {
  Type ReturnType;
  std::string Name;
  std::vector<TypedName> Params;
  const BlockStmt *Body = nullptr;
  SourceLoc Loc;
};

/// Arena that owns all AST nodes of one Program and hands out NodeIds.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  /// Allocates and owns a new expression node.
  template <typename T, typename... Args> T *createExpr(Args &&...A) {
    auto Node = std::make_unique<T>(NextId++, std::forward<Args>(A)...);
    T *Raw = Node.get();
    ExprPool.push_back(std::move(Node));
    return Raw;
  }

  /// Allocates and owns a new statement node.
  template <typename T, typename... Args> T *createStmt(Args &&...A) {
    auto Node = std::make_unique<T>(NextId++, std::forward<Args>(A)...);
    T *Raw = Node.get();
    StmtPool.push_back(std::move(Node));
    return Raw;
  }

  NodeId numNodes() const { return NextId; }

private:
  std::vector<std::unique_ptr<Expr>> ExprPool;
  std::vector<std::unique_ptr<Stmt>> StmtPool;
  NodeId NextId = 0;
};

/// A parsed compilation unit: struct declarations plus functions, with
/// the arena that owns every node. Movable, not copyable.
class Program {
public:
  Program() : Context(std::make_unique<AstContext>()) {}
  Program(Program &&) = default;
  Program &operator=(Program &&) = default;

  AstContext &context() { return *Context; }
  const AstContext &context() const { return *Context; }

  std::vector<StructDecl> Structs;
  std::vector<FunctionDecl> Functions;

  /// Finds a struct declaration by name (null if absent).
  const StructDecl *findStruct(const std::string &Name) const {
    for (const StructDecl &S : Structs)
      if (S.Name == Name)
        return &S;
    return nullptr;
  }

  /// Finds a function by name (null if absent).
  const FunctionDecl *findFunction(const std::string &Name) const {
    for (const FunctionDecl &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }

private:
  std::unique_ptr<AstContext> Context;
};

} // namespace liger

#endif // LIGER_LANG_AST_H
