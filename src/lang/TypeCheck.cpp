//===-- lang/TypeCheck.cpp - MiniLang static type checker -----------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/TypeCheck.h"

#include "support/Error.h"

#include <unordered_map>
#include <unordered_set>

using namespace liger;

bool liger::isBuiltinFunction(const std::string &Name) {
  return Name == "len" || Name == "substring" || Name == "abs" ||
         Name == "min" || Name == "max";
}

namespace {

/// Lexical scope stack mapping variable names to types.
class Scope {
public:
  void push() { Frames.emplace_back(); }
  void pop() { Frames.pop_back(); }

  bool declare(const std::string &Name, const Type &Ty) {
    LIGER_CHECK(!Frames.empty(), "declare outside any scope");
    // Redeclaration in the *same* frame is an error; shadowing an outer
    // frame is allowed (as in Java).
    if (Frames.back().count(Name))
      return false;
    Frames.back().emplace(Name, Ty);
    return true;
  }

  const Type *lookup(const std::string &Name) const {
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::unordered_map<std::string, Type>> Frames;
};

/// The checker itself: one instance per program.
class TypeChecker {
public:
  TypeChecker(Program &P, DiagnosticSink &Diags) : P(P), Diags(Diags) {}

  bool run() {
    checkStructs();
    checkFunctionTable();
    for (const FunctionDecl &Fn : P.Functions)
      checkFunction(Fn);
    return !Diags.hasErrors();
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) { Diags.error(Loc, Msg); }

  void checkStructs() {
    std::unordered_set<std::string> Seen;
    for (const StructDecl &S : P.Structs) {
      if (!Seen.insert(S.Name).second)
        error(S.Loc, "duplicate struct '" + S.Name + "'");
      std::unordered_set<std::string> Fields;
      for (const TypedName &F : S.Fields)
        if (!Fields.insert(F.Name).second)
          error(S.Loc, "duplicate field '" + F.Name + "' in struct '" +
                           S.Name + "'");
      if (S.Fields.empty())
        error(S.Loc, "struct '" + S.Name + "' has no fields");
    }
  }

  void checkFunctionTable() {
    std::unordered_set<std::string> Seen;
    for (const FunctionDecl &Fn : P.Functions) {
      if (!Seen.insert(Fn.Name).second)
        error(Fn.Loc, "duplicate function '" + Fn.Name + "'");
      if (isBuiltinFunction(Fn.Name))
        error(Fn.Loc, "function '" + Fn.Name + "' shadows a builtin");
    }
  }

  void checkFunction(const FunctionDecl &Fn) {
    CurrentReturnType = Fn.ReturnType;
    LoopDepth = 0;
    Vars.push();
    for (const TypedName &Param : Fn.Params) {
      if (Param.Ty.isStruct() && !P.findStruct(Param.Ty.structName()))
        error(Fn.Loc, "unknown struct type '" + Param.Ty.structName() + "'");
      if (!Vars.declare(Param.Name, Param.Ty))
        error(Fn.Loc, "duplicate parameter '" + Param.Name + "'");
    }
    if (Fn.Body)
      checkStmt(Fn.Body);
    Vars.pop();
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void checkStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Block: {
      Vars.push();
      for (const Stmt *Child : cast<BlockStmt>(S)->body())
        checkStmt(Child);
      Vars.pop();
      return;
    }
    case StmtKind::Decl: {
      const auto *Decl = cast<DeclStmt>(S);
      if (Decl->declType().isVoid()) {
        error(S->loc(), "variables cannot have void type");
        return;
      }
      if (Decl->declType().isStruct() &&
          !P.findStruct(Decl->declType().structName()))
        error(S->loc(),
              "unknown struct type '" + Decl->declType().structName() + "'");
      if (const Expr *Init = Decl->init()) {
        Type InitTy = checkExpr(Init);
        if (!InitTy.isVoid() && InitTy != Decl->declType())
          error(S->loc(), "cannot initialize '" + Decl->declType().str() +
                              "' from '" + InitTy.str() + "'");
      }
      if (!Vars.declare(Decl->name(), Decl->declType()))
        error(S->loc(), "redeclaration of '" + Decl->name() + "'");
      return;
    }
    case StmtKind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      Type TargetTy = checkExpr(Assign->target());
      Type ValueTy = checkExpr(Assign->value());
      if (TargetTy.isVoid() || ValueTy.isVoid())
        return; // error already reported below
      if (Assign->op() != AssignOp::Set) {
        // Compound assignment: int op= int, or string += string.
        bool StringConcat = Assign->op() == AssignOp::Add &&
                            TargetTy.isString() && ValueTy.isString();
        bool IntArith = TargetTy.isInt() && ValueTy.isInt();
        if (!StringConcat && !IntArith)
          error(S->loc(), "invalid compound assignment on '" +
                              TargetTy.str() + "' and '" + ValueTy.str() +
                              "'");
        return;
      }
      if (TargetTy != ValueTy)
        error(S->loc(), "cannot assign '" + ValueTy.str() + "' to '" +
                            TargetTy.str() + "'");
      return;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Type CondTy = checkExpr(If->cond());
      if (!CondTy.isBool() && !CondTy.isVoid())
        error(If->cond()->loc(), "if condition must be bool, got '" +
                                     CondTy.str() + "'");
      checkStmt(If->thenStmt());
      if (If->elseStmt())
        checkStmt(If->elseStmt());
      return;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      Type CondTy = checkExpr(While->cond());
      if (!CondTy.isBool() && !CondTy.isVoid())
        error(While->cond()->loc(), "while condition must be bool, got '" +
                                        CondTy.str() + "'");
      ++LoopDepth;
      checkStmt(While->body());
      --LoopDepth;
      return;
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      Vars.push(); // for-init variables scope over the whole loop
      if (For->init())
        checkStmt(For->init());
      if (For->cond()) {
        Type CondTy = checkExpr(For->cond());
        if (!CondTy.isBool() && !CondTy.isVoid())
          error(For->cond()->loc(), "for condition must be bool, got '" +
                                        CondTy.str() + "'");
      }
      if (For->step())
        checkStmt(For->step());
      ++LoopDepth;
      checkStmt(For->body());
      --LoopDepth;
      Vars.pop();
      return;
    }
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      if (CurrentReturnType.isVoid()) {
        if (Ret->value())
          error(S->loc(), "void function cannot return a value");
        return;
      }
      if (!Ret->value()) {
        error(S->loc(), "non-void function must return a value");
        return;
      }
      Type ValueTy = checkExpr(Ret->value());
      if (!ValueTy.isVoid() && ValueTy != CurrentReturnType)
        error(S->loc(), "cannot return '" + ValueTy.str() + "' from a '" +
                            CurrentReturnType.str() + "' function");
      return;
    }
    case StmtKind::Break:
      if (LoopDepth == 0)
        error(S->loc(), "break outside a loop");
      return;
    case StmtKind::Continue:
      if (LoopDepth == 0)
        error(S->loc(), "continue outside a loop");
      return;
    case StmtKind::Expr: {
      const auto *ES = cast<ExprStmt>(S);
      checkExpr(ES->expr());
      if (!isa<CallExpr>(ES->expr()))
        error(S->loc(), "only calls may be used as statements");
      return;
    }
    }
    LIGER_UNREACHABLE("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  /// Checks an expression, records its type on the node, and returns it.
  /// Returns Void on error (after reporting); callers treat Void as
  /// "already diagnosed".
  Type checkExpr(const Expr *E) {
    Type Ty = computeExprType(E);
    const_cast<Expr *>(E)->setType(Ty);
    return Ty;
  }

  Type computeExprType(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Type::intTy();
    case ExprKind::BoolLit:
      return Type::boolTy();
    case ExprKind::StringLit:
      return Type::stringTy();
    case ExprKind::Var: {
      const auto *Var = cast<VarExpr>(E);
      if (const Type *Ty = Vars.lookup(Var->name()))
        return *Ty;
      error(E->loc(), "use of undeclared variable '" + Var->name() + "'");
      return Type::voidTy();
    }
    case ExprKind::ArrayLit: {
      const auto *Lit = cast<ArrayLitExpr>(E);
      if (Lit->elements().empty()) {
        error(E->loc(), "empty array literals are not supported; "
                        "use 'new T[0]'");
        return Type::voidTy();
      }
      Type ElemTy = checkExpr(Lit->elements().front());
      for (const Expr *Elem : Lit->elements()) {
        Type Ty = checkExpr(Elem);
        if (!Ty.isVoid() && Ty != ElemTy)
          error(Elem->loc(), "array literal elements must share one type");
      }
      if (ElemTy.isVoid())
        return Type::voidTy();
      if (!ElemTy.isPrimitive()) {
        error(E->loc(), "array elements must be primitive");
        return Type::voidTy();
      }
      return Type::arrayOf(ElemTy.kind());
    }
    case ExprKind::NewArray: {
      const auto *New = cast<NewArrayExpr>(E);
      Type SizeTy = checkExpr(New->size());
      if (!SizeTy.isInt() && !SizeTy.isVoid())
        error(New->size()->loc(), "array size must be int");
      return Type::arrayOf(New->elemType().kind());
    }
    case ExprKind::NewStruct: {
      const auto *New = cast<NewStructExpr>(E);
      const StructDecl *Decl = P.findStruct(New->structName());
      if (!Decl) {
        error(E->loc(), "unknown struct '" + New->structName() + "'");
        return Type::voidTy();
      }
      if (New->args().size() != Decl->Fields.size()) {
        error(E->loc(), "struct '" + New->structName() + "' expects " +
                            std::to_string(Decl->Fields.size()) +
                            " field values");
        return Type::structTy(New->structName());
      }
      for (size_t I = 0; I < New->args().size(); ++I) {
        Type ArgTy = checkExpr(New->args()[I]);
        if (!ArgTy.isVoid() && ArgTy != Decl->Fields[I].Ty)
          error(New->args()[I]->loc(),
                "field '" + Decl->Fields[I].Name + "' of struct '" +
                    New->structName() + "' has type '" +
                    Decl->Fields[I].Ty.str() + "'");
      }
      return Type::structTy(New->structName());
    }
    case ExprKind::Index: {
      const auto *Index = cast<IndexExpr>(E);
      Type BaseTy = checkExpr(Index->base());
      Type IdxTy = checkExpr(Index->index());
      if (!IdxTy.isInt() && !IdxTy.isVoid())
        error(Index->index()->loc(), "index must be int");
      if (BaseTy.isArray())
        return BaseTy.elemType();
      if (BaseTy.isString())
        return Type::stringTy(); // s[i] is a length-1 string
      if (!BaseTy.isVoid())
        error(E->loc(), "cannot index a '" + BaseTy.str() + "'");
      return Type::voidTy();
    }
    case ExprKind::Field: {
      const auto *Field = cast<FieldExpr>(E);
      Type BaseTy = checkExpr(Field->base());
      if (BaseTy.isVoid())
        return Type::voidTy();
      if (!BaseTy.isStruct()) {
        error(E->loc(), "cannot access field of '" + BaseTy.str() + "'");
        return Type::voidTy();
      }
      const StructDecl *Decl = P.findStruct(BaseTy.structName());
      LIGER_CHECK(Decl, "struct type without declaration survived checking");
      int Index = Decl->fieldIndex(Field->field());
      if (Index < 0) {
        error(E->loc(), "struct '" + BaseTy.structName() +
                            "' has no field '" + Field->field() + "'");
        return Type::voidTy();
      }
      return Decl->Fields[static_cast<size_t>(Index)].Ty;
    }
    case ExprKind::Unary: {
      const auto *Unary = cast<UnaryExpr>(E);
      Type OperandTy = checkExpr(Unary->operand());
      if (OperandTy.isVoid())
        return Type::voidTy();
      if (Unary->op() == UnaryOp::Neg) {
        if (!OperandTy.isInt())
          error(E->loc(), "unary '-' requires int");
        return Type::intTy();
      }
      if (!OperandTy.isBool())
        error(E->loc(), "unary '!' requires bool");
      return Type::boolTy();
    }
    case ExprKind::Binary:
      return checkBinary(cast<BinaryExpr>(E));
    case ExprKind::Call:
      return checkCall(cast<CallExpr>(E));
    }
    LIGER_UNREACHABLE("covered switch");
  }

  Type checkBinary(const BinaryExpr *E) {
    Type L = checkExpr(E->lhs());
    Type R = checkExpr(E->rhs());
    if (L.isVoid() || R.isVoid())
      return Type::voidTy();
    switch (E->op()) {
    case BinaryOp::Add:
      if (L.isInt() && R.isInt())
        return Type::intTy();
      if (L.isString() && R.isString())
        return Type::stringTy();
      error(E->loc(), "'+' requires two ints or two strings");
      return Type::voidTy();
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
    case BinaryOp::Mod:
      if (!(L.isInt() && R.isInt()))
        error(E->loc(), std::string("'") + binaryOpSpelling(E->op()) +
                            "' requires int operands");
      return Type::intTy();
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      if (!(L.isInt() && R.isInt()))
        error(E->loc(), std::string("'") + binaryOpSpelling(E->op()) +
                            "' requires int operands");
      return Type::boolTy();
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      if (L != R)
        error(E->loc(), "'==' / '!=' require operands of the same type");
      else if (L.isStruct())
        error(E->loc(), "structs cannot be compared with '=='");
      return Type::boolTy();
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!(L.isBool() && R.isBool()))
        error(E->loc(), std::string("'") + binaryOpSpelling(E->op()) +
                            "' requires bool operands");
      return Type::boolTy();
    }
    LIGER_UNREACHABLE("covered switch");
  }

  Type checkCall(const CallExpr *E) {
    std::vector<Type> ArgTypes;
    ArgTypes.reserve(E->args().size());
    for (const Expr *Arg : E->args())
      ArgTypes.push_back(checkExpr(Arg));

    const std::string &Callee = E->callee();
    auto RequireArity = [&](size_t N) {
      if (E->args().size() != N) {
        error(E->loc(), "'" + Callee + "' expects " + std::to_string(N) +
                            " argument(s)");
        return false;
      }
      return true;
    };

    if (Callee == "len") {
      if (!RequireArity(1))
        return Type::intTy();
      if (!ArgTypes[0].isVoid() && !ArgTypes[0].isArray() &&
          !ArgTypes[0].isString())
        error(E->loc(), "'len' requires an array or string");
      return Type::intTy();
    }
    if (Callee == "substring") {
      if (!RequireArity(3))
        return Type::stringTy();
      if (!ArgTypes[0].isVoid() && !ArgTypes[0].isString())
        error(E->loc(), "'substring' requires a string first argument");
      for (size_t I = 1; I < 3; ++I)
        if (!ArgTypes[I].isVoid() && !ArgTypes[I].isInt())
          error(E->loc(), "'substring' offsets must be ints");
      return Type::stringTy();
    }
    if (Callee == "abs") {
      if (RequireArity(1) && !ArgTypes[0].isVoid() && !ArgTypes[0].isInt())
        error(E->loc(), "'abs' requires an int");
      return Type::intTy();
    }
    if (Callee == "min" || Callee == "max") {
      if (RequireArity(2))
        for (const Type &Ty : ArgTypes)
          if (!Ty.isVoid() && !Ty.isInt())
            error(E->loc(), "'" + Callee + "' requires int arguments");
      return Type::intTy();
    }

    const FunctionDecl *Fn = P.findFunction(Callee);
    if (!Fn) {
      error(E->loc(), "call to undeclared function '" + Callee + "'");
      return Type::voidTy();
    }
    if (E->args().size() != Fn->Params.size()) {
      error(E->loc(), "'" + Callee + "' expects " +
                          std::to_string(Fn->Params.size()) + " argument(s)");
      return Fn->ReturnType;
    }
    for (size_t I = 0; I < ArgTypes.size(); ++I)
      if (!ArgTypes[I].isVoid() && ArgTypes[I] != Fn->Params[I].Ty)
        error(E->args()[I]->loc(),
              "argument " + std::to_string(I + 1) + " of '" + Callee +
                  "' must be '" + Fn->Params[I].Ty.str() + "'");
    return Fn->ReturnType;
  }

  Program &P;
  DiagnosticSink &Diags;
  Scope Vars;
  Type CurrentReturnType;
  unsigned LoopDepth = 0;
};

} // namespace

bool liger::typeCheck(Program &P, DiagnosticSink &Diags) {
  return TypeChecker(P, Diags).run();
}
