//===-- lang/Lexer.h - MiniLang lexer --------------------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniLang. Supports //-style line comments and
/// /* */ block comments, decimal integer literals, and double-quoted
/// string literals with \n, \t, \\, \" escapes. Invalid input yields an
/// Error token and a diagnostic instead of aborting.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_LEXER_H
#define LIGER_LANG_LEXER_H

#include "lang/Token.h"

#include <vector>

namespace liger {

/// Lexes a whole source buffer into tokens (the last one is EndOfFile).
class Lexer {
public:
  Lexer(std::string Source, DiagnosticSink &Diags);

  /// Lexes the next token.
  Token lex();

  /// Lexes the entire input; always ends with an EndOfFile token.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text = "");
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexString(SourceLoc Loc);
  SourceLoc currentLoc() const { return {Line, Col}; }

  std::string Source;
  DiagnosticSink &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace liger

#endif // LIGER_LANG_LEXER_H
