//===-- lang/Ast.cpp - MiniLang abstract syntax trees ---------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace liger;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::String:
    return "string";
  case TypeKind::Array:
    return Type(Elem).str() + "[]";
  case TypeKind::Struct:
    return StructName;
  }
  LIGER_UNREACHABLE("covered switch");
}

const char *liger::exprKindName(ExprKind Kind) {
  switch (Kind) {
  case ExprKind::IntLit:    return "IntLit";
  case ExprKind::BoolLit:   return "BoolLit";
  case ExprKind::StringLit: return "StringLit";
  case ExprKind::Var:       return "Var";
  case ExprKind::ArrayLit:  return "ArrayLit";
  case ExprKind::NewArray:  return "NewArray";
  case ExprKind::NewStruct: return "NewStruct";
  case ExprKind::Index:     return "Index";
  case ExprKind::Field:     return "Field";
  case ExprKind::Unary:     return "Unary";
  case ExprKind::Binary:    return "Binary";
  case ExprKind::Call:      return "Call";
  }
  LIGER_UNREACHABLE("covered switch");
}

const char *liger::stmtKindName(StmtKind Kind) {
  switch (Kind) {
  case StmtKind::Decl:     return "Decl";
  case StmtKind::Assign:   return "Assign";
  case StmtKind::If:       return "If";
  case StmtKind::While:    return "While";
  case StmtKind::For:      return "For";
  case StmtKind::Return:   return "Return";
  case StmtKind::Break:    return "Break";
  case StmtKind::Continue: return "Continue";
  case StmtKind::Block:    return "Block";
  case StmtKind::Expr:     return "Expr";
  }
  LIGER_UNREACHABLE("covered switch");
}

const char *liger::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::Div: return "/";
  case BinaryOp::Mod: return "%";
  case BinaryOp::Lt:  return "<";
  case BinaryOp::Le:  return "<=";
  case BinaryOp::Gt:  return ">";
  case BinaryOp::Ge:  return ">=";
  case BinaryOp::Eq:  return "==";
  case BinaryOp::Ne:  return "!=";
  case BinaryOp::And: return "&&";
  case BinaryOp::Or:  return "||";
  }
  LIGER_UNREACHABLE("covered switch");
}
