//===-- lang/Lexer.cpp - MiniLang lexer -----------------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include "support/Error.h"

#include <cctype>
#include <unordered_map>

using namespace liger;

const char *liger::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:    return "identifier";
  case TokenKind::IntLiteral:    return "integer literal";
  case TokenKind::StringLiteral: return "string literal";
  case TokenKind::KwInt:         return "'int'";
  case TokenKind::KwBool:        return "'bool'";
  case TokenKind::KwString:      return "'string'";
  case TokenKind::KwVoid:        return "'void'";
  case TokenKind::KwStruct:      return "'struct'";
  case TokenKind::KwIf:          return "'if'";
  case TokenKind::KwElse:        return "'else'";
  case TokenKind::KwWhile:       return "'while'";
  case TokenKind::KwFor:         return "'for'";
  case TokenKind::KwReturn:      return "'return'";
  case TokenKind::KwBreak:       return "'break'";
  case TokenKind::KwContinue:    return "'continue'";
  case TokenKind::KwTrue:        return "'true'";
  case TokenKind::KwFalse:       return "'false'";
  case TokenKind::KwNew:         return "'new'";
  case TokenKind::LParen:        return "'('";
  case TokenKind::RParen:        return "')'";
  case TokenKind::LBrace:        return "'{'";
  case TokenKind::RBrace:        return "'}'";
  case TokenKind::LBracket:      return "'['";
  case TokenKind::RBracket:      return "']'";
  case TokenKind::Comma:         return "','";
  case TokenKind::Semicolon:     return "';'";
  case TokenKind::Dot:           return "'.'";
  case TokenKind::Plus:          return "'+'";
  case TokenKind::Minus:         return "'-'";
  case TokenKind::Star:          return "'*'";
  case TokenKind::Slash:         return "'/'";
  case TokenKind::Percent:       return "'%'";
  case TokenKind::Assign:        return "'='";
  case TokenKind::PlusAssign:    return "'+='";
  case TokenKind::MinusAssign:   return "'-='";
  case TokenKind::StarAssign:    return "'*='";
  case TokenKind::SlashAssign:   return "'/='";
  case TokenKind::PercentAssign: return "'%='";
  case TokenKind::PlusPlus:      return "'++'";
  case TokenKind::MinusMinus:    return "'--'";
  case TokenKind::EqualEqual:    return "'=='";
  case TokenKind::NotEqual:      return "'!='";
  case TokenKind::Less:          return "'<'";
  case TokenKind::LessEqual:     return "'<='";
  case TokenKind::Greater:       return "'>'";
  case TokenKind::GreaterEqual:  return "'>='";
  case TokenKind::AmpAmp:        return "'&&'";
  case TokenKind::PipePipe:      return "'||'";
  case TokenKind::Bang:          return "'!'";
  case TokenKind::EndOfFile:     return "end of file";
  case TokenKind::Error:         return "invalid token";
  }
  LIGER_UNREACHABLE("covered switch");
}

Lexer::Lexer(std::string Src, DiagnosticSink &DiagSink)
    : Source(std::move(Src)), Diags(DiagSink) {}

char Lexer::peek(size_t Ahead) const {
  return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

/// True for bytes that can begin a MiniLang token (or trivia). Anything
/// else is garbage the lexer should skip over in one recovery step.
static bool isTokenStartByte(char C) {
  if (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
    return true;
  switch (C) {
  case ' ': case '\t': case '\r': case '\n':
  case '"': case '(': case ')': case '{': case '}': case '[': case ']':
  case ',': case ';': case '.': case '+': case '-': case '*': case '/':
  case '%': case '=': case '!': case '<': case '>': case '&': case '|':
    return true;
  default:
    return false;
  }
}

/// Renders up to 8 bytes of \p Bytes printably for a diagnostic,
/// escaping control and non-ASCII bytes as \xNN.
static std::string printableBytes(const std::string &Bytes) {
  static const char Hex[] = "0123456789abcdef";
  std::string Out;
  size_t Shown = std::min<size_t>(Bytes.size(), 8);
  for (size_t I = 0; I < Shown; ++I) {
    unsigned char C = static_cast<unsigned char>(Bytes[I]);
    if (C >= 0x20 && C < 0x7F) {
      Out.push_back(static_cast<char>(C));
    } else {
      Out += "\\x";
      Out.push_back(Hex[C >> 4]);
      Out.push_back(Hex[C & 0xF]);
    }
  }
  if (Bytes.size() > Shown)
    Out += "...";
  return Out;
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  std::string Text;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Text.push_back(advance());
  Token Tok = makeToken(TokenKind::IntLiteral, Loc, Text);
  // MiniLang integers are 64-bit; saturate absurd literals and diagnose.
  errno = 0;
  Tok.IntValue = std::strtoll(Text.c_str(), nullptr, 10);
  if (errno == ERANGE)
    Diags.error(Loc, "integer literal out of 64-bit range");
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"bool", TokenKind::KwBool},
      {"string", TokenKind::KwString},   {"void", TokenKind::KwVoid},
      {"struct", TokenKind::KwStruct},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"true", TokenKind::KwTrue},       {"false", TokenKind::KwFalse},
      {"new", TokenKind::KwNew},
  };
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text.push_back(advance());
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Loc, Text);
  return makeToken(TokenKind::Identifier, Loc, Text);
}

Token Lexer::lexString(SourceLoc Loc) {
  std::string Value;
  advance(); // consume opening quote
  for (;;) {
    char C = peek();
    if (C == '\0' || C == '\n') {
      Diags.error(Loc, "unterminated string literal");
      return makeToken(TokenKind::Error, Loc, Value);
    }
    if (C == '"') {
      advance();
      return makeToken(TokenKind::StringLiteral, Loc, Value);
    }
    if (C == '\\') {
      advance();
      char Esc = advance();
      switch (Esc) {
      case 'n': Value.push_back('\n'); break;
      case 't': Value.push_back('\t'); break;
      case '\\': Value.push_back('\\'); break;
      case '"': Value.push_back('"'); break;
      default:
        Diags.error(currentLoc(), "unknown escape sequence");
        Value.push_back(Esc);
        break;
      }
      continue;
    }
    Value.push_back(advance());
  }
}

Token Lexer::lex() {
  skipTrivia();
  SourceLoc Loc = currentLoc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::EndOfFile, Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (C == '"')
    return lexString(Loc);

  advance();
  switch (C) {
  case '(': return makeToken(TokenKind::LParen, Loc, "(");
  case ')': return makeToken(TokenKind::RParen, Loc, ")");
  case '{': return makeToken(TokenKind::LBrace, Loc, "{");
  case '}': return makeToken(TokenKind::RBrace, Loc, "}");
  case '[': return makeToken(TokenKind::LBracket, Loc, "[");
  case ']': return makeToken(TokenKind::RBracket, Loc, "]");
  case ',': return makeToken(TokenKind::Comma, Loc, ",");
  case ';': return makeToken(TokenKind::Semicolon, Loc, ";");
  case '.': return makeToken(TokenKind::Dot, Loc, ".");
  case '+':
    if (match('='))
      return makeToken(TokenKind::PlusAssign, Loc, "+=");
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc, "++");
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    if (match('='))
      return makeToken(TokenKind::MinusAssign, Loc, "-=");
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc, "--");
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarAssign, Loc, "*=");
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashAssign, Loc, "/=");
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentAssign, Loc, "%=");
    return makeToken(TokenKind::Percent, Loc, "%");
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc, "==");
    return makeToken(TokenKind::Assign, Loc, "=");
  case '!':
    if (match('='))
      return makeToken(TokenKind::NotEqual, Loc, "!=");
    return makeToken(TokenKind::Bang, Loc, "!");
  case '<':
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc, "<=");
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc, ">=");
    return makeToken(TokenKind::Greater, Loc, ">");
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc, "&&");
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc, "||");
    break;
  default:
    break;
  }
  // Invalid byte. Recover by swallowing the whole run of bytes that
  // cannot begin any token, so hostile input (a megabyte of '\x00' or
  // '@') yields one Error token and one diagnostic per run instead of
  // one per byte.
  std::string Bad(1, C);
  while (peek() != '\0' && !isTokenStartByte(peek()))
    Bad.push_back(advance());
  Diags.error(Loc, Bad.size() == 1
                       ? "unexpected character '" + printableBytes(Bad) + "'"
                       : "unexpected characters '" + printableBytes(Bad) +
                             "' (" + std::to_string(Bad.size()) + " bytes)");
  return makeToken(TokenKind::Error, Loc, std::move(Bad));
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Token Tok = lex();
    bool Done = Tok.is(TokenKind::EndOfFile);
    Tokens.push_back(std::move(Tok));
    if (Done)
      return Tokens;
  }
}
