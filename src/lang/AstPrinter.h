//===-- lang/AstPrinter.h - MiniLang pretty printer ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty printer for MiniLang. Two uses: (1) the corpus generators
/// build ASTs and print them back to source so every generated method
/// exists as text (and round-trips through the parser — a property
/// test); (2) single statements/expressions are rendered for trace
/// display and for the statement-token view of the static feature
/// dimension. Surface forms (`i++` vs `i += 1`) are preserved.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_ASTPRINTER_H
#define LIGER_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace liger {

/// Renders an expression as source text.
std::string printExpr(const Expr *E);

/// Renders a single statement (without nested sub-statements for
/// control flow: "if (x < y)" rather than the whole if). Used for the
/// symbolic-trace statement view.
std::string printStmtHead(const Stmt *S);

/// Renders a statement including nested statements, indented by
/// \p Indent levels.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders a full function declaration.
std::string printFunction(const FunctionDecl &Fn);

/// Renders a whole program (structs then functions).
std::string printProgram(const Program &P);

} // namespace liger

#endif // LIGER_LANG_ASTPRINTER_H
