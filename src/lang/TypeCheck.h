//===-- lang/TypeCheck.h - MiniLang static type checker --------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checker for MiniLang. Resolves and records a static type on
/// every expression (Expr::setType), checks statement well-formedness
/// (assignability, condition types, return types, break/continue
/// placement), scoping (block-scoped variables, no shadowing of
/// parameters), and call signatures (builtins and user functions).
///
/// Builtins:
///   int    len(string|T[])        length of a string or array
///   string substring(string s, int start, int length)
///   int    abs(int)
///   int    min(int, int) / max(int, int)
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_TYPECHECK_H
#define LIGER_LANG_TYPECHECK_H

#include "lang/Ast.h"

namespace liger {

/// Type checks \p P, annotating expression types in place.
/// Returns true when no errors were found.
bool typeCheck(Program &P, DiagnosticSink &Diags);

/// Returns true if \p Name is a MiniLang builtin function.
bool isBuiltinFunction(const std::string &Name);

} // namespace liger

#endif // LIGER_LANG_TYPECHECK_H
