//===-- lang/AstTree.cpp - Generic labelled tree views of the AST ---------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/AstTree.h"

#include "support/Error.h"
#include "support/Rng.h"

using namespace liger;

//===----------------------------------------------------------------------===//
// Tree construction
//===----------------------------------------------------------------------===//

AstTree liger::buildExprTree(const Expr *E) {
  AstTree Node;
  switch (E->kind()) {
  case ExprKind::IntLit:
    Node.Label = std::to_string(cast<IntLitExpr>(E)->value());
    return Node;
  case ExprKind::BoolLit:
    Node.Label = cast<BoolLitExpr>(E)->value() ? "true" : "false";
    return Node;
  case ExprKind::StringLit:
    Node.Label = "\"" + cast<StringLitExpr>(E)->value() + "\"";
    return Node;
  case ExprKind::Var:
    Node.Label = cast<VarExpr>(E)->name();
    return Node;
  case ExprKind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    Node.Label = Unary->op() == UnaryOp::Neg ? "Neg" : "Not";
    Node.Children.push_back(buildExprTree(Unary->operand()));
    return Node;
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    Node.Label = std::string("Op") + binaryOpSpelling(Bin->op());
    Node.Children.push_back(buildExprTree(Bin->lhs()));
    Node.Children.push_back(buildExprTree(Bin->rhs()));
    return Node;
  }
  case ExprKind::Index: {
    const auto *Index = cast<IndexExpr>(E);
    Node.Label = "Index";
    Node.Children.push_back(buildExprTree(Index->base()));
    Node.Children.push_back(buildExprTree(Index->index()));
    return Node;
  }
  case ExprKind::Field: {
    const auto *Field = cast<FieldExpr>(E);
    Node.Label = "Field";
    Node.Children.push_back(buildExprTree(Field->base()));
    AstTree Leaf;
    Leaf.Label = Field->field();
    Node.Children.push_back(std::move(Leaf));
    return Node;
  }
  case ExprKind::ArrayLit: {
    Node.Label = "ArrayLit";
    for (const Expr *Elem : cast<ArrayLitExpr>(E)->elements())
      Node.Children.push_back(buildExprTree(Elem));
    return Node;
  }
  case ExprKind::NewArray: {
    const auto *New = cast<NewArrayExpr>(E);
    Node.Label = "NewArray";
    AstTree TypeLeaf;
    TypeLeaf.Label = New->elemType().str();
    Node.Children.push_back(std::move(TypeLeaf));
    Node.Children.push_back(buildExprTree(New->size()));
    return Node;
  }
  case ExprKind::NewStruct: {
    const auto *New = cast<NewStructExpr>(E);
    Node.Label = "NewStruct";
    AstTree NameLeaf;
    NameLeaf.Label = New->structName();
    Node.Children.push_back(std::move(NameLeaf));
    for (const Expr *Arg : New->args())
      Node.Children.push_back(buildExprTree(Arg));
    return Node;
  }
  case ExprKind::Call: {
    const auto *Call = cast<CallExpr>(E);
    Node.Label = "Call";
    AstTree NameLeaf;
    NameLeaf.Label = Call->callee();
    Node.Children.push_back(std::move(NameLeaf));
    for (const Expr *Arg : Call->args())
      Node.Children.push_back(buildExprTree(Arg));
    return Node;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

AstTree liger::buildStmtHeadTree(const Stmt *S) {
  AstTree Node;
  switch (S->kind()) {
  case StmtKind::Decl: {
    const auto *Decl = cast<DeclStmt>(S);
    Node.Label = "Decl";
    AstTree TypeLeaf;
    TypeLeaf.Label = Decl->declType().str();
    Node.Children.push_back(std::move(TypeLeaf));
    AstTree NameLeaf;
    NameLeaf.Label = Decl->name();
    Node.Children.push_back(std::move(NameLeaf));
    if (Decl->init())
      Node.Children.push_back(buildExprTree(Decl->init()));
    return Node;
  }
  case StmtKind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    // Preserve the surface form in the node label so the static view
    // distinguishes `i = i + 1` / `i += 1` / `i++`.
    switch (Assign->syntax()) {
    case AssignSyntax::Plain:
      Node.Label = "Assign";
      break;
    case AssignSyntax::Compound:
      Node.Label = std::string("CompoundAssign") +
                   (Assign->op() == AssignOp::Add   ? "+"
                    : Assign->op() == AssignOp::Sub ? "-"
                    : Assign->op() == AssignOp::Mul ? "*"
                    : Assign->op() == AssignOp::Div ? "/"
                                                    : "%");
      break;
    case AssignSyntax::IncDec:
      Node.Label = Assign->op() == AssignOp::Add ? "Increment" : "Decrement";
      break;
    }
    Node.Children.push_back(buildExprTree(Assign->target()));
    if (Assign->syntax() != AssignSyntax::IncDec)
      Node.Children.push_back(buildExprTree(Assign->value()));
    return Node;
  }
  case StmtKind::If:
    Node.Label = "IfCond";
    Node.Children.push_back(buildExprTree(cast<IfStmt>(S)->cond()));
    return Node;
  case StmtKind::While:
    Node.Label = "WhileCond";
    Node.Children.push_back(buildExprTree(cast<WhileStmt>(S)->cond()));
    return Node;
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    Node.Label = "ForCond";
    if (For->cond())
      Node.Children.push_back(buildExprTree(For->cond()));
    return Node;
  }
  case StmtKind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    Node.Label = "Return";
    if (Ret->value())
      Node.Children.push_back(buildExprTree(Ret->value()));
    return Node;
  }
  case StmtKind::Break:
    Node.Label = "Break";
    return Node;
  case StmtKind::Continue:
    Node.Label = "Continue";
    return Node;
  case StmtKind::Expr:
    Node.Label = "ExprStmt";
    Node.Children.push_back(buildExprTree(cast<ExprStmt>(S)->expr()));
    return Node;
  case StmtKind::Block:
    LIGER_UNREACHABLE("blocks are not trace-level statements");
  }
  LIGER_UNREACHABLE("covered switch");
}

namespace {

AstTree buildFullStmtTree(const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Block: {
    AstTree Node;
    Node.Label = "Block";
    for (const Stmt *Child : cast<BlockStmt>(S)->body())
      Node.Children.push_back(buildFullStmtTree(Child));
    return Node;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    AstTree Node;
    Node.Label = "If";
    Node.Children.push_back(buildExprTree(If->cond()));
    Node.Children.push_back(buildFullStmtTree(If->thenStmt()));
    if (If->elseStmt())
      Node.Children.push_back(buildFullStmtTree(If->elseStmt()));
    return Node;
  }
  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    AstTree Node;
    Node.Label = "While";
    Node.Children.push_back(buildExprTree(While->cond()));
    Node.Children.push_back(buildFullStmtTree(While->body()));
    return Node;
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    AstTree Node;
    Node.Label = "For";
    if (For->init())
      Node.Children.push_back(buildFullStmtTree(For->init()));
    if (For->cond())
      Node.Children.push_back(buildExprTree(For->cond()));
    if (For->step())
      Node.Children.push_back(buildFullStmtTree(For->step()));
    Node.Children.push_back(buildFullStmtTree(For->body()));
    return Node;
  }
  default:
    return buildStmtHeadTree(S);
  }
}

} // namespace

AstTree liger::buildFunctionTree(const FunctionDecl &Fn, bool IncludeName) {
  AstTree Root;
  Root.Label = "Function";
  if (IncludeName) {
    AstTree NameLeaf;
    NameLeaf.Label = Fn.Name;
    Root.Children.push_back(std::move(NameLeaf));
  }
  AstTree Params;
  Params.Label = "Params";
  for (const TypedName &Param : Fn.Params) {
    AstTree ParamNode;
    ParamNode.Label = "Param";
    AstTree TypeLeaf;
    TypeLeaf.Label = Param.Ty.str();
    ParamNode.Children.push_back(std::move(TypeLeaf));
    AstTree NameLeaf;
    NameLeaf.Label = Param.Name;
    ParamNode.Children.push_back(std::move(NameLeaf));
    Params.Children.push_back(std::move(ParamNode));
  }
  Root.Children.push_back(std::move(Params));
  if (Fn.Body)
    Root.Children.push_back(buildFullStmtTree(Fn.Body));
  return Root;
}

//===----------------------------------------------------------------------===//
// AST path extraction (code2vec/code2seq front end)
//===----------------------------------------------------------------------===//

std::string AstPath::interiorKey() const {
  std::string Key;
  for (size_t I = 0; I < InteriorLabels.size(); ++I) {
    if (I)
      Key += '|';
    Key += InteriorLabels[I];
  }
  return Key;
}

namespace {

/// A leaf together with the interior nodes on its root-to-leaf spine.
/// Spine entries are node pointers so the LCA is computed on identity,
/// not labels (same-labelled sibling subtrees are common in real code).
struct LeafSpine {
  std::string Leaf;
  std::vector<const AstTree *> Spine; // root ... parent
};

void collectSpines(const AstTree &Node, std::vector<const AstTree *> &Prefix,
                   std::vector<LeafSpine> &Out) {
  if (Node.isLeaf()) {
    Out.push_back({Node.Label, Prefix});
    return;
  }
  Prefix.push_back(&Node);
  for (const AstTree &Child : Node.Children)
    collectSpines(Child, Prefix, Out);
  Prefix.pop_back();
}

} // namespace

std::vector<AstPath> liger::extractAstPaths(const AstTree &Tree,
                                            size_t MaxPaths, size_t MaxLength,
                                            size_t MaxWidth, uint64_t Seed) {
  std::vector<LeafSpine> Spines;
  std::vector<const AstTree *> Prefix;
  collectSpines(Tree, Prefix, Spines);

  std::vector<AstPath> Paths;
  for (size_t I = 0; I < Spines.size(); ++I) {
    size_t MaxJ = std::min(Spines.size(), I + 1 + MaxWidth);
    for (size_t J = I + 1; J < MaxJ; ++J) {
      const LeafSpine &A = Spines[I];
      const LeafSpine &B = Spines[J];
      // Longest common prefix of the two spines = path through the LCA.
      size_t Common = 0;
      while (Common < A.Spine.size() && Common < B.Spine.size() &&
             A.Spine[Common] == B.Spine[Common])
        ++Common;
      LIGER_CHECK(Common > 0, "two leaves must share at least the root");
      AstPath Path;
      Path.SourceLeaf = A.Leaf;
      Path.TargetLeaf = B.Leaf;
      // Up-moves from A's parent to the LCA (exclusive), marked '^';
      // the LCA itself; then down-moves to B's parent, marked '_'.
      for (size_t K = A.Spine.size(); K-- > Common;)
        Path.InteriorLabels.push_back(A.Spine[K]->Label + "^");
      Path.InteriorLabels.push_back(A.Spine[Common - 1]->Label);
      for (size_t K = Common; K < B.Spine.size(); ++K)
        Path.InteriorLabels.push_back(B.Spine[K]->Label + "_");
      if (Path.InteriorLabels.size() > MaxLength)
        continue;
      Paths.push_back(std::move(Path));
    }
  }

  if (Paths.size() > MaxPaths) {
    Rng R(Seed);
    R.shuffle(Paths);
    Paths.resize(MaxPaths);
  }
  return Paths;
}
