//===-- lang/AstPrinter.cpp - MiniLang pretty printer ---------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "support/Error.h"

using namespace liger;

namespace {

/// Binding strength used to emit minimal parentheses. Higher binds
/// tighter. Mirrors the parser's precedence ladder.
int precedenceOf(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Or:  return 1;
  case BinaryOp::And: return 2;
  case BinaryOp::Eq:
  case BinaryOp::Ne:  return 3;
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:  return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub: return 5;
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Mod: return 6;
  }
  LIGER_UNREACHABLE("covered switch");
}

constexpr int UnaryPrec = 7;
constexpr int PostfixPrec = 8;

std::string escapeString(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    switch (C) {
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\\': Out += "\\\\"; break;
    case '"':  Out += "\\\""; break;
    default:   Out.push_back(C); break;
    }
  }
  Out += '"';
  return Out;
}

/// Prints \p E, parenthesizing if its precedence is below \p MinPrec.
std::string printExprPrec(const Expr *E, int MinPrec) {
  switch (E->kind()) {
  case ExprKind::IntLit: {
    int64_t V = cast<IntLitExpr>(E)->value();
    if (V < 0 && MinPrec > UnaryPrec)
      return "(" + std::to_string(V) + ")";
    return std::to_string(V);
  }
  case ExprKind::BoolLit:
    return cast<BoolLitExpr>(E)->value() ? "true" : "false";
  case ExprKind::StringLit:
    return escapeString(cast<StringLitExpr>(E)->value());
  case ExprKind::Var:
    return cast<VarExpr>(E)->name();
  case ExprKind::ArrayLit: {
    const auto *Lit = cast<ArrayLitExpr>(E);
    std::string Out = "[";
    for (size_t I = 0; I < Lit->elements().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExprPrec(Lit->elements()[I], 0);
    }
    Out += "]";
    return Out;
  }
  case ExprKind::NewArray: {
    const auto *New = cast<NewArrayExpr>(E);
    return "new " + New->elemType().str() + "[" +
           printExprPrec(New->size(), 0) + "]";
  }
  case ExprKind::NewStruct: {
    const auto *New = cast<NewStructExpr>(E);
    std::string Out = "new " + New->structName() + "(";
    for (size_t I = 0; I < New->args().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExprPrec(New->args()[I], 0);
    }
    Out += ")";
    return Out;
  }
  case ExprKind::Index: {
    const auto *Index = cast<IndexExpr>(E);
    return printExprPrec(Index->base(), PostfixPrec) + "[" +
           printExprPrec(Index->index(), 0) + "]";
  }
  case ExprKind::Field: {
    const auto *Field = cast<FieldExpr>(E);
    return printExprPrec(Field->base(), PostfixPrec) + "." + Field->field();
  }
  case ExprKind::Unary: {
    const auto *Unary = cast<UnaryExpr>(E);
    std::string Out = (Unary->op() == UnaryOp::Neg ? "-" : "!") +
                      printExprPrec(Unary->operand(), UnaryPrec);
    if (MinPrec > UnaryPrec)
      return "(" + Out + ")";
    return Out;
  }
  case ExprKind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    int Prec = precedenceOf(Bin->op());
    // Left-associative: the right operand needs strictly higher binding.
    std::string Out = printExprPrec(Bin->lhs(), Prec) + " " +
                      binaryOpSpelling(Bin->op()) + " " +
                      printExprPrec(Bin->rhs(), Prec + 1);
    if (Prec < MinPrec)
      return "(" + Out + ")";
    return Out;
  }
  case ExprKind::Call: {
    const auto *Call = cast<CallExpr>(E);
    std::string Out = Call->callee() + "(";
    for (size_t I = 0; I < Call->args().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExprPrec(Call->args()[I], 0);
    }
    Out += ")";
    return Out;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

std::string indentStr(unsigned Indent) { return std::string(Indent * 2, ' '); }

const char *assignOpSpelling(AssignOp Op) {
  switch (Op) {
  case AssignOp::Set: return "=";
  case AssignOp::Add: return "+=";
  case AssignOp::Sub: return "-=";
  case AssignOp::Mul: return "*=";
  case AssignOp::Div: return "/=";
  case AssignOp::Mod: return "%=";
  }
  LIGER_UNREACHABLE("covered switch");
}

std::string printAssignHead(const AssignStmt *S) {
  std::string Target = printExprPrec(S->target(), 0);
  switch (S->syntax()) {
  case AssignSyntax::IncDec:
    return Target + (S->op() == AssignOp::Add ? "++" : "--");
  case AssignSyntax::Compound:
    return Target + " " + assignOpSpelling(S->op()) + " " +
           printExprPrec(S->value(), 0);
  case AssignSyntax::Plain:
    if (S->op() == AssignOp::Set)
      return Target + " = " + printExprPrec(S->value(), 0);
    // A compound op recorded with Plain syntax is impossible by
    // construction; render defensively.
    return Target + " " + assignOpSpelling(S->op()) + " " +
           printExprPrec(S->value(), 0);
  }
  LIGER_UNREACHABLE("covered switch");
}

} // namespace

std::string liger::printExpr(const Expr *E) { return printExprPrec(E, 0); }

std::string liger::printStmtHead(const Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Decl: {
    const auto *Decl = cast<DeclStmt>(S);
    std::string Out = Decl->declType().str() + " " + Decl->name();
    if (Decl->init())
      Out += " = " + printExprPrec(Decl->init(), 0);
    return Out;
  }
  case StmtKind::Assign:
    return printAssignHead(cast<AssignStmt>(S));
  case StmtKind::If:
    return "if (" + printExprPrec(cast<IfStmt>(S)->cond(), 0) + ")";
  case StmtKind::While:
    return "while (" + printExprPrec(cast<WhileStmt>(S)->cond(), 0) + ")";
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    std::string Out = "for (";
    if (For->init())
      Out += printStmtHead(For->init());
    Out += "; ";
    if (For->cond())
      Out += printExprPrec(For->cond(), 0);
    Out += "; ";
    if (For->step())
      Out += printStmtHead(For->step());
    Out += ")";
    return Out;
  }
  case StmtKind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->value())
      return "return " + printExprPrec(Ret->value(), 0);
    return "return";
  }
  case StmtKind::Break:
    return "break";
  case StmtKind::Continue:
    return "continue";
  case StmtKind::Block:
    return "{...}";
  case StmtKind::Expr:
    return printExprPrec(cast<ExprStmt>(S)->expr(), 0);
  }
  LIGER_UNREACHABLE("covered switch");
}

std::string liger::printStmt(const Stmt *S, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (S->kind()) {
  case StmtKind::Decl:
  case StmtKind::Assign:
  case StmtKind::Return:
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Expr:
    return Pad + printStmtHead(S) + ";\n";
  case StmtKind::Block: {
    std::string Out = Pad + "{\n";
    for (const Stmt *Child : cast<BlockStmt>(S)->body())
      Out += printStmt(Child, Indent + 1);
    Out += Pad + "}\n";
    return Out;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    std::string Out = Pad + printStmtHead(S) + "\n";
    Out += printStmt(If->thenStmt(),
                     isa<BlockStmt>(If->thenStmt()) ? Indent : Indent + 1);
    if (If->elseStmt()) {
      Out += Pad + "else\n";
      Out += printStmt(If->elseStmt(),
                       isa<BlockStmt>(If->elseStmt()) ? Indent : Indent + 1);
    }
    return Out;
  }
  case StmtKind::While: {
    const auto *While = cast<WhileStmt>(S);
    std::string Out = Pad + printStmtHead(S) + "\n";
    Out += printStmt(While->body(),
                     isa<BlockStmt>(While->body()) ? Indent : Indent + 1);
    return Out;
  }
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    std::string Out = Pad + printStmtHead(S) + "\n";
    Out += printStmt(For->body(),
                     isa<BlockStmt>(For->body()) ? Indent : Indent + 1);
    return Out;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

std::string liger::printFunction(const FunctionDecl &Fn) {
  std::string Out = Fn.ReturnType.str() + " " + Fn.Name + "(";
  for (size_t I = 0; I < Fn.Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Fn.Params[I].Ty.str() + " " + Fn.Params[I].Name;
  }
  Out += ")\n";
  if (Fn.Body)
    Out += printStmt(Fn.Body, 0);
  else
    Out += "{\n}\n";
  return Out;
}

std::string liger::printProgram(const Program &P) {
  std::string Out;
  for (const StructDecl &S : P.Structs) {
    Out += "struct " + S.Name + " {\n";
    for (const TypedName &F : S.Fields)
      Out += "  " + F.Ty.str() + " " + F.Name + ";\n";
    Out += "}\n\n";
  }
  for (const FunctionDecl &Fn : P.Functions) {
    Out += printFunction(Fn);
    Out += "\n";
  }
  return Out;
}
