//===-- lang/Parser.h - MiniLang recursive-descent parser ------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniLang. Grammar sketch:
///
///   program    := (structDecl | funcDecl)*
///   structDecl := 'struct' ID '{' (type ID ';')* '}'
///   funcDecl   := type ID '(' [type ID (',' type ID)*] ')' block
///   type       := ('int'|'bool'|'string'|'void'|ID) ['[' ']']
///   stmt       := block | decl ';' | ifStmt | whileStmt | forStmt
///               | 'return' [expr] ';' | 'break' ';' | 'continue' ';'
///               | assignOrExpr ';'
///   expr       := precedence climbing over || && ==/!= relational
///                 additive multiplicative unary postfix primary
///
/// On syntax errors the parser records a diagnostic and synchronizes to
/// the next statement/declaration boundary, so a single bad method does
/// not abort corpus processing (the Table 1 filter pipeline depends on
/// being able to *count* unparseable programs).
///
/// Recursion is depth-budgeted: statements and expressions may nest at
/// most MaxParseDepth levels. Deeper input (e.g. ten thousand nested
/// parentheses) produces a clean "nesting too deep" diagnostic instead
/// of overflowing the C stack — a hard requirement once the pipeline
/// accepts arbitrary byte input (see DESIGN.md §12).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_PARSER_H
#define LIGER_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"

#include <optional>
#include <vector>

namespace liger {

/// Parses token streams into Programs.
class Parser {
public:
  /// Maximum nesting depth of statements + expressions. Each nested
  /// statement, each nested expression (one per parenthesis/index/call
  /// level), and each chained unary operator consumes one level. The
  /// value bounds every downstream recursion over the AST (type check,
  /// tree building, interpretation) to a few thousand stack frames.
  static constexpr size_t MaxParseDepth = 200;

  Parser(std::vector<Token> Tokens, DiagnosticSink &Diags);

  /// Parses a whole compilation unit. Check Diags.hasErrors() afterwards;
  /// a Program is returned regardless so partial results can be examined.
  Program parseProgram();

private:
  /// RAII nesting-depth accounting for the recursive productions.
  struct DepthGuard {
    explicit DepthGuard(Parser &P) : P(P) { ++P.Depth; }
    ~DepthGuard() { --P.Depth; }
    Parser &P;
  };

  /// True when one more nesting level would exceed the budget; emits
  /// the (single) depth diagnostic on first trip.
  bool atDepthLimit();
  // Token cursor helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &previous() const;
  bool check(TokenKind Kind) const;
  bool match(TokenKind Kind);
  const Token &advance();
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToDeclBoundary();
  void synchronizeToStmtBoundary();
  bool atEnd() const { return peek().is(TokenKind::EndOfFile); }

  // Grammar productions.
  void parseStructDecl(Program &P);
  void parseFunctionDecl(Program &P);
  std::optional<Type> parseType(const Program &P);
  bool looksLikeType(const Program &P) const;
  const Stmt *parseStmt(Program &P);
  const BlockStmt *parseBlock(Program &P);
  const Stmt *parseIf(Program &P);
  const Stmt *parseWhile(Program &P);
  const Stmt *parseFor(Program &P);
  const Stmt *parseDecl(Program &P);
  const Stmt *parseSimpleStmt(Program &P); ///< decl | assignment | call
  const Stmt *parseAssignOrExprStmt(Program &P);
  const Expr *parseExpr(Program &P);
  const Expr *parseOr(Program &P);
  const Expr *parseAnd(Program &P);
  const Expr *parseEquality(Program &P);
  const Expr *parseRelational(Program &P);
  const Expr *parseAdditive(Program &P);
  const Expr *parseMultiplicative(Program &P);
  const Expr *parseUnary(Program &P);
  const Expr *parsePostfix(Program &P);
  const Expr *parsePrimary(Program &P);
  const Expr *makeErrorExpr(Program &P, SourceLoc Loc);

  std::vector<Token> Tokens;
  DiagnosticSink &Diags;
  size_t Pos = 0;
  size_t Depth = 0;
  bool DepthDiagnosed = false;
};

/// Convenience: lex, parse, and type check \p Source in one call.
/// Returns std::nullopt (with diagnostics in \p Diags) on any error.
std::optional<Program> parseAndCheck(const std::string &Source,
                                     DiagnosticSink &Diags);

} // namespace liger

#endif // LIGER_LANG_PARSER_H
