//===-- lang/Token.h - MiniLang tokens -------------------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the MiniLang lexer. The token spelling stream
/// is also one of the inputs the static baselines (code2vec/code2seq
/// vocabulary) and the static vocabulary Ds (§5.1.1) are built from.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_TOKEN_H
#define LIGER_LANG_TOKEN_H

#include "lang/SourceLoc.h"

#include <cstdint>
#include <string>

namespace liger {

enum class TokenKind {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwBool,
  KwString,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwNew,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Dot,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Assign,
  PlusAssign,
  MinusAssign,
  StarAssign,
  SlashAssign,
  PercentAssign,
  PlusPlus,
  MinusMinus,
  EqualEqual,
  NotEqual,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  AmpAmp,
  PipePipe,
  Bang,

  // Sentinels.
  EndOfFile,
  Error,
};

/// Returns a stable human-readable name for \p Kind ("'+='", "identifier").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text holds the original spelling (for identifiers and
/// literals); IntValue is the parsed value for IntLiteral tokens.
struct Token {
  TokenKind Kind = TokenKind::Error;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace liger

#endif // LIGER_LANG_TOKEN_H
