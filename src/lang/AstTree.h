//===-- lang/AstTree.h - Generic labelled tree views of the AST -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain labelled ordered tree extracted from AST nodes. This is the
/// interchange format between the front end and the neural models:
///  - LIGER's fusion layer runs a TreeLSTM over the statement tree
///    (§5.1.1, "LIGER employs a TreeLSTM to embed a statement via its
///    abstract syntax tree"), where non-terminals are labelled with AST
///    node types and terminals with token spellings;
///  - code2vec / code2seq extract leaf-to-leaf paths from the same trees.
///
/// Statement trees are *per trace event*: for control-flow statements
/// only the header (e.g. the if-condition) is included, matching the
/// paper's decomposition of a path into a list of statements.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_LANG_ASTTREE_H
#define LIGER_LANG_ASTTREE_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace liger {

/// A labelled ordered tree. Leaves carry token spellings; interior nodes
/// carry AST node-type labels.
struct AstTree {
  std::string Label;
  std::vector<AstTree> Children;

  bool isLeaf() const { return Children.empty(); }

  /// Number of nodes in the tree (including this one).
  size_t size() const {
    size_t Total = 1;
    for (const AstTree &Child : Children)
      Total += Child.size();
    return Total;
  }

  /// Collects the leaf labels left to right.
  void collectLeaves(std::vector<std::string> &Out) const {
    if (isLeaf()) {
      Out.push_back(Label);
      return;
    }
    for (const AstTree &Child : Children)
      Child.collectLeaves(Out);
  }
};

/// Builds the labelled tree of an expression.
AstTree buildExprTree(const Expr *E);

/// Builds the labelled tree of a single trace-level statement: for
/// Decl/Assign/Return/Expr statements the full statement, for
/// If/While/For only the header condition (with a distinguishing root
/// label such as "IfCond"). Block statements are not trace-level and
/// must not be passed here.
AstTree buildStmtHeadTree(const Stmt *S);

/// Builds the full tree of a function (used by the static baselines):
/// root "Function" with the name leaf, parameter subtrees, and the
/// complete body including nested statements.
AstTree buildFunctionTree(const FunctionDecl &Fn, bool IncludeName = false);

/// One leaf-to-leaf AST path in the code2vec sense: the source leaf
/// token, the sequence of interior node labels with direction (up then
/// down), and the target leaf token.
struct AstPath {
  std::string SourceLeaf;
  std::vector<std::string> InteriorLabels;
  std::string TargetLeaf;

  /// Renders the interior as a single path string, e.g.
  /// "Var^Binary_IntLit" style joined labels.
  std::string interiorKey() const;
};

/// Extracts up to \p MaxPaths leaf-to-leaf paths of length at most
/// \p MaxLength (number of interior nodes) and width at most \p MaxWidth
/// (distance between leaf indices), sampling deterministically via
/// \p Seed when more are available.
std::vector<AstPath> extractAstPaths(const AstTree &Tree, size_t MaxPaths,
                                     size_t MaxLength, size_t MaxWidth,
                                     uint64_t Seed);

} // namespace liger

#endif // LIGER_LANG_ASTTREE_H
