//===-- models/Inference.h - Forward-only LIGER runtime ---------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The no-graph inference runtime: a mirror of the single-sample
/// LigerEncoder::encode -> SeqDecoder::decodeGreedy walk that runs the
/// shared forward kernels (nn/InferOps.h) directly against an immutable
/// WeightImage — no graph Nodes, no backward payloads kept alive, no
/// arena of parent arrays. Temporaries come from a reusable per-engine
/// ScratchArena that is reset at the top of every request, so a warmed
/// engine allocates nothing on the steady path.
///
/// Because the ops are the literal functions the autodiff builders
/// call, the embeddings and predictions are bitwise-identical to the
/// training-path forward (InferenceEquivalenceTest pins this for GRU
/// and LSTM configs, encode and decode).
///
/// Since parameters are frozen at serving time, the per-encode
/// statement/state embedding caches of the training path become
/// persistent, parameter-versioned caches here: statements are keyed
/// by their serialized head tree (Stmt pointers do not survive
/// re-parsing), states by the same token-signature key the training
/// cache uses, and both are cleared whenever rebind() installs an
/// image with a different content digest (DESIGN.md §13).
///
/// An engine is single-threaded; serving spawns one per worker. It
/// borrows the WeightImage and vocabularies, which must outlive it.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_INFERENCE_H
#define LIGER_MODELS_INFERENCE_H

#include "models/Liger.h"
#include "nn/WeightImage.h"
#include "trace/Trace.h"
#include "trace/Vocabulary.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace liger {

/// Bump allocator over retained float blocks: alloc() hands out
/// pointers that stay valid until the next reset(), reset() recycles
/// every block without freeing, so steady-state requests perform no
/// heap allocation for tensor temporaries.
class ScratchArena {
public:
  float *alloc(size_t N);
  float *allocZeroed(size_t N);
  /// Recycles all blocks; previously returned pointers become invalid.
  void reset();
  /// Total floats reserved across blocks (capacity, not live use).
  size_t floatsReserved() const;

private:
  struct Block {
    std::vector<float> Data;
    size_t Used = 0;
  };
  std::vector<Block> Blocks;
  size_t Active = 0;
};

/// Forward-only inference over a frozen weight image.
class LigerInference {
public:
  struct CacheStats {
    uint64_t StmtHits = 0;
    uint64_t StmtMisses = 0;
    uint64_t StateHits = 0;
    uint64_t StateMisses = 0;
  };

  /// \p Target may be null for encode-only / classifier images (then
  /// predictName() is unavailable). Binds every tensor the config
  /// implies; missing or mis-shaped tensors are fatal.
  LigerInference(const WeightImage &Image, const Vocabulary &JointVocab,
                 const Vocabulary *Target, const LigerConfig &Config);

  /// Program embedding (Config.Hidden floats, arena-owned: valid until
  /// the next encode/predict call on this engine).
  const float *encode(const MethodTraces &Traces);

  /// Greedy-decoded method-name subtokens (mirrors
  /// LigerNamePredictor::predict).
  std::vector<std::string> predictName(const MethodTraces &Traces);

  /// Argmax class of the classification head (mirrors
  /// LigerClassifier::predict); only for images with "liger.head".
  int predictClass(const MethodTraces &Traces);
  bool hasClassifierHead() const { return Head.W != nullptr; }

  /// Re-binds against \p Image (same architecture). The embedding
  /// caches survive when the content digest matches and are dropped
  /// otherwise — they key computations by parameter version.
  void rebind(const WeightImage &Image);

  const Digest128 &paramVersion() const { return Version; }
  const CacheStats &cacheStats() const { return Stats; }
  const LigerConfig &config() const { return Config; }
  size_t arenaFloats() const { return Arena.floatsReserved(); }

private:
  struct LinearRef {
    size_t In = 0, Out = 0;
    const float *W = nullptr, *B = nullptr;
  };
  struct CellRef {
    CellKind Kind = CellKind::Gru;
    size_t In = 0, Hidden = 0;
    const float *Wx = nullptr, *Bx = nullptr, *Wh = nullptr; // packed
    LinearRef L1;                                            // Rnn
    const float *U1 = nullptr;                               // Rnn
  };
  struct AttnRef {
    size_t QueryDim = 0, KeyDim = 0, Hidden = 0;
    const float *W1 = nullptr, *B1 = nullptr, *W2 = nullptr, *B2 = nullptr;
  };
  struct St {
    const float *H = nullptr;
    const float *C = nullptr;
  };

  void bind(const WeightImage &Image);
  LinearRef bindLinear(const WeightImage &Image, const std::string &Name,
                       size_t In, size_t Out) const;
  CellRef bindCell(const WeightImage &Image, const std::string &Name,
                   CellKind Kind, size_t In, size_t Hidden) const;
  AttnRef bindAttn(const WeightImage &Image, const std::string &Name,
                   size_t QueryDim, size_t KeyDim, size_t Hidden) const;

  const float *tokenEmbed(const std::string &Token) const;
  const float *linearApply(const LinearRef &L, const float *X);
  St cellInitial(const CellRef &Cell);
  St cellStep(const CellRef &Cell, const float *X, const St &Prev);
  const float *attnContext(const AttnRef &Attn,
                           const std::vector<const float *> &Keys,
                           const float *KeyProj, const float *Query);
  const float *attnKeyProj(const AttnRef &Attn,
                           const std::vector<const float *> &Keys);

  St treeNode(const AstTree &Tree);
  const float *embedStatement(const Stmt *S);
  const float *embedState(const ProgramState &State);
  const float *fuseStep(const BlendedTrace &Path, size_t J,
                        size_t NumConcrete, const float *PrevH);
  const float *encodePath(const BlendedTrace &Path,
                          std::vector<const float *> &StepMemory);
  const float *encodeInternal(const MethodTraces &Traces,
                              std::vector<const float *> &StepMemory);
  std::vector<int> decodeGreedy(const float *ProgramEmbedding,
                                const std::vector<const float *> &Memory);

  LigerConfig Config;
  const Vocabulary &Vocab;
  const Vocabulary *TargetVocab = nullptr;
  Digest128 Version{};

  // Bound weights (raw pointers into the borrowed image).
  const float *Embed = nullptr; ///< [V x EmbedDim] joint table.
  struct {
    const float *Wx = nullptr, *Bx = nullptr, *Wh = nullptr;
  } TreeW; ///< Child-sum TreeLSTM weights, packed i/o/u/f.
  CellRef F1, F2, F3;
  AttnRef A1;
  struct {
    const float *TargetEmbed = nullptr; ///< [Vt x EmbedDim].
    LinearRef Init, Out;
    CellRef Cell;
    AttnRef Attn;
  } Dec;
  LinearRef Head; ///< Classifier head; W null when absent.

  ScratchArena Arena;
  CacheStats Stats;
  // Parameter-versioned persistent caches: Config.Hidden floats each.
  // unordered_map never moves a vector's heap buffer on rehash, so
  // returned pointers stay valid for the engine's lifetime.
  std::unordered_map<std::string, std::vector<float>> StmtCache;
  std::unordered_map<std::string, std::vector<float>> StateCache;
};

} // namespace liger

#endif // LIGER_MODELS_INFERENCE_H
