//===-- models/Dypro.h - DYPRO dynamic-only baseline ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of DYPRO [26], the state-of-the-art dynamic model
/// the paper compares against: program embeddings learned from concrete
/// state traces only. Per §6.1 ("we feed the variable names together
/// with their values for DYPRO to embed execution traces"), each
/// variable's embedding is the concatenation of its name embedding and
/// its value embedding. Each concrete execution trace is embedded by a
/// recurrent network over its state vectors *separately*, then all
/// trace embeddings are pooled into the program embedding — unlike
/// LIGER, there is no path grouping and no symbolic dimension.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_DYPRO_H
#define LIGER_MODELS_DYPRO_H

#include "models/Common.h"
#include "models/Decoder.h"

#include <unordered_map>

namespace liger {

/// DYPRO hyper-parameters.
struct DyproConfig {
  size_t EmbedDim = 32;
  size_t Hidden = 32;
  size_t AttnHidden = 32;
  CellKind Cell = CellKind::Gru;
  size_t MaxStatesPerTrace = 40;
  size_t MaxTraces = 100; ///< Cap on executions consumed per method.
  /// Cap on the decoder's attention memory: when the per-state hidden
  /// count exceeds this, evenly strided states are kept. Purely an
  /// engineering bound (the decode-attention cost is quadratic-ish in
  /// it); the trace RNN still consumes every state.
  size_t MaxAttentionMemory = 256;
  size_t MaxFlattenedValues = 12;
  size_t MaxDecodeLen = 8;
};

/// Encoder shared by the name predictor and the classifier.
class DyproEncoder {
public:
  DyproEncoder(ParamStore &Store, const Vocabulary &Vocab,
               const DyproConfig &Config, Rng &R);

  struct Encoding {
    Var ProgramEmbedding;
    std::vector<Var> StateMemory; ///< Per-state hiddens of all traces.
  };

  Encoding encode(const MethodTraces &Traces) const;

  const DyproConfig &config() const { return Config; }

private:
  struct EncodeContext {
    std::unordered_map<std::string, Var> TokenCache;
  };

  Var lookupToken(const std::string &Token, EncodeContext &Ctx) const;
  Var embedState(const ProgramState &State,
                 const std::vector<std::string> &VarNames,
                 EncodeContext &Ctx) const;

  DyproConfig Config;
  const Vocabulary &Vocab;
  EmbeddingTable Embed;
  RecurrentCell F1;    ///< Object-value flattening RNN.
  RecurrentCell F2;    ///< State RNN over (name ⊕ value) embeddings.
  RecurrentCell Trace; ///< RNN over a trace's state vectors.
};

/// DYPRO for method name prediction.
class DyproNamePredictor {
public:
  DyproNamePredictor(const Vocabulary &Vocab, const Vocabulary &TargetVocab,
                     const DyproConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  std::vector<std::string> predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

private:
  ParamStore Store;
  Rng InitRng;
  DyproEncoder Encoder;
  SeqDecoder Decoder;
  const Vocabulary &TargetVocab;
};

/// DYPRO for semantics classification.
class DyproClassifier {
public:
  DyproClassifier(const Vocabulary &Vocab, size_t NumClasses,
                  const DyproConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  int predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

private:
  ParamStore Store;
  Rng InitRng;
  DyproEncoder Encoder;
  Linear Head;
};

/// Adds the variable-name tokens DYPRO needs to \p Vocab.
void addVariableNamesToVocabulary(const MethodSample &Sample,
                                  Vocabulary &Vocab);

} // namespace liger

#endif // LIGER_MODELS_DYPRO_H
