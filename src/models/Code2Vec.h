//===-- models/Code2Vec.h - code2vec static baseline ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of code2vec (Alon et al., POPL 2019): a method body
/// is a bag of AST *path-contexts* (sourceLeaf, path, targetLeaf); each
/// context is embedded as tanh(W [e_l ⊕ e_p ⊕ e_r]); a learned global
/// attention vector weighs contexts into one code vector; prediction is
/// a softmax over *whole method names* (the original model's design —
/// one reason its sub-token F1 trails code2seq, as in the paper's
/// Table 2).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_CODE2VEC_H
#define LIGER_MODELS_CODE2VEC_H

#include "models/Common.h"

namespace liger {

/// code2vec hyper-parameters.
struct Code2VecConfig {
  size_t EmbedDim = 32;
  size_t CodeDim = 32; ///< Context/code vector width.
  size_t MaxContexts = 120;
  size_t MaxPathLength = 12;
  size_t MaxPathWidth = 16;
};

/// One extracted path-context, already mapped to vocabulary ids.
struct PathContextIds {
  int Source = 0;
  int Path = 0;
  int Target = 0;
};

/// Extracts path-contexts from a sample's function body (deterministic
/// per function, seeded by the function's name hash).
std::vector<PathContextIds>
extractPathContexts(const MethodSample &Sample, const Vocabulary &TokenVocab,
                    const Vocabulary &PathVocab, const Code2VecConfig &Config);

/// Populates the token and path vocabularies from a sample.
void addPathContextsToVocabulary(const MethodSample &Sample,
                                 Vocabulary &TokenVocab,
                                 Vocabulary &PathVocab,
                                 const Code2VecConfig &Config);

/// code2vec for method name prediction (whole-name classification).
class Code2VecNamePredictor {
public:
  Code2VecNamePredictor(const Vocabulary &TokenVocab,
                        const Vocabulary &PathVocab,
                        const Vocabulary &NameVocab,
                        const Code2VecConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  /// Predicts the best whole name and splits it into sub-tokens.
  std::vector<std::string> predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

  /// Interns a sample's whole name into \p NameVocab (call during
  /// vocabulary building).
  static void addNameToVocabulary(const MethodSample &Sample,
                                  Vocabulary &NameVocab);

private:
  Var codeVector(const MethodSample &Sample) const;

  ParamStore Store;
  Rng InitRng;
  Code2VecConfig Config;
  const Vocabulary &TokenVocab;
  const Vocabulary &PathVocab;
  const Vocabulary &NameVocab;
  EmbeddingTable TokenEmbed;
  EmbeddingTable PathEmbed;
  Linear ContextProj;
  Var AttnVector; ///< Global attention vector a.
  Linear OutProj;
};

/// code2vec with a classification head (COSET task).
class Code2VecClassifier {
public:
  Code2VecClassifier(const Vocabulary &TokenVocab,
                     const Vocabulary &PathVocab, size_t NumClasses,
                     const Code2VecConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  int predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

private:
  Var codeVector(const MethodSample &Sample) const;

  ParamStore Store;
  Rng InitRng;
  Code2VecConfig Config;
  const Vocabulary &TokenVocab;
  const Vocabulary &PathVocab;
  EmbeddingTable TokenEmbed;
  EmbeddingTable PathEmbed;
  Linear ContextProj;
  Var AttnVector;
  Linear Head;
};

} // namespace liger

#endif // LIGER_MODELS_CODE2VEC_H
