//===-- models/Liger.h - The LIGER blended model ----------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LIGER (§5): learns program embeddings from blended traces.
///
/// Encoder layers (Fig. 5):
///  1. Vocabulary embedding — one joint table over Ds ∪ Dd;
///  2. Fusion — a TreeLSTM embeds each statement via its AST; two
///     stacked RNNs embed each program state (f1 flattens object values
///     into primitive sequences, f2 folds per-variable vectors); an
///     attention network a1, queried by the running trace embedding
///     H^e_{i_j-1}, fuses the statement vector with the state vectors
///     of the accompanying concrete traces (uniform weights on the
///     first step, per the paper);
///  3. Executions embedding — RNN f3 folds fused step vectors into the
///     path embedding H^e_i;
///  4. Programs embedding — element-wise max pooling over paths.
///
/// Decoder: SeqDecoder attending over every H^e_{i_j} (method name
/// prediction). Classification replaces the decoder by a linear +
/// softmax head (§6.2).
///
/// The three §6.3 ablations are configuration switches:
/// UseStaticFeature, UseDynamicFeature, UseFusionAttention; an extra
/// MeanPoolPrograms switch ablates the pooling choice.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_LIGER_H
#define LIGER_MODELS_LIGER_H

#include "models/Common.h"
#include "models/Decoder.h"

#include <unordered_map>

namespace liger {

/// LIGER hyper-parameters and ablation switches.
struct LigerConfig {
  size_t EmbedDim = 32;   ///< Vocabulary embedding (paper: 100).
  size_t Hidden = 32;     ///< Recurrent hidden size (paper: 100).
  size_t AttnHidden = 32; ///< Attention MLP hidden size.
  CellKind Cell = CellKind::Gru;
  bool UseStaticFeature = true;   ///< §6.3.1 ablation when false.
  bool UseDynamicFeature = true;  ///< §6.3.2 ablation when false.
  bool UseFusionAttention = true; ///< §6.3.3 ablation when false.
  bool MeanPoolPrograms = false;  ///< Extra ablation: mean vs max pool.
  size_t MaxStepsPerTrace = 40;   ///< Truncate long blended traces.
  size_t MaxConcretePerPath = 5;  ///< Cap state traces fused per step.
  size_t MaxFlattenedValues = 12; ///< Cap attr(v) length fed to f1.
  size_t MaxDecodeLen = 8;
};

/// Attention introspection for §6.1.2: average fusion weight assigned
/// to the symbolic (static) feature vector.
struct FusionStats {
  double StaticWeightSum = 0;
  size_t FusionSteps = 0;

  double staticMean() const {
    return FusionSteps == 0 ? 0.0 : StaticWeightSum / FusionSteps;
  }
};

/// Output of the LIGER encoder.
struct LigerEncoding {
  Var ProgramEmbedding;
  /// Flattened step embeddings H^e_{i_j} of all blended traces (the
  /// decoder's attention memory).
  std::vector<Var> StepMemory;
};

/// The encoder (layers 1–4).
class LigerEncoder {
public:
  LigerEncoder(ParamStore &Store, const Vocabulary &JointVocab,
               const LigerConfig &Config, Rng &R);

  /// Encodes one method's blended traces. When \p Stats is non-null,
  /// fusion attention weights are accumulated into it.
  LigerEncoding encode(const MethodTraces &Traces,
                       FusionStats *Stats = nullptr) const;

  /// Encodes a mini-batch of methods with every blended trace advanced
  /// in lockstep: at each step index the per-path component fusions
  /// run per lane (each path attends over its own components), then
  /// all live paths advance through one batched F3 step
  /// (RecurrentCell::stepBatch). Per-sample values are
  /// bitwise-identical to encode(); only node creation order — and so
  /// gradient accumulation order across lanes — follows the
  /// timestep-major schedule SeqDecoder::lossBatch already uses, which
  /// is the same schedule whether batching is toggled on or off.
  std::vector<LigerEncoding>
  encodeBatch(const std::vector<const MethodTraces *> &Batch) const;

  const LigerConfig &config() const { return Config; }

private:
  /// Per-forward-pass caches (statement embeddings recur across loop
  /// iterations; token embeddings recur everywhere).
  struct EncodeContext {
    std::unordered_map<const Stmt *, Var> StmtCache;
    std::unordered_map<std::string, Var> TokenCache;
    /// State embeddings keyed by the state's full token signature:
    /// concrete executions of the same path revisit identical variable
    /// valuations constantly (loop iterations, repeated inputs), and
    /// the f1/f2 recurrences over equal token sequences produce the
    /// same graph value, so equal states share one node.
    std::unordered_map<std::string, Var> StateCache;
    FusionStats *Stats = nullptr;
  };

  /// One state an encodeBatch round still needs embedded: the owning
  /// sample's context, the state, its precomputed cache key and
  /// per-variable token sequences, and the cache the result parks in —
  /// the batch-scoped cross-sample cache by default
  /// (crossSampleStateCacheEnabled()), the sample's own StateCache
  /// otherwise.
  struct StateEmbedRequest {
    EncodeContext *Ctx;
    const ProgramState *State;
    std::unordered_map<std::string, Var> *Cache = nullptr;
    std::string Key;
    std::vector<std::vector<std::string>> ValueTokens;
  };

  Var lookupToken(const std::string &Token, EncodeContext &Ctx) const;
  Var embedStatement(const Stmt *S, EncodeContext &Ctx) const;
  /// Computes a state's cache key and fills \p ValueTokens with each
  /// variable's flattened token sequence (truncated to
  /// MaxFlattenedValues for object values).
  std::string
  stateKey(const ProgramState &State,
           std::vector<std::vector<std::string>> &ValueTokens) const;
  Var embedState(const ProgramState &State, EncodeContext &Ctx) const;
  /// Embeds every requested state through lockstep-batched f1/f2 runs
  /// (runCellLockstep) and parks the results in each request's target
  /// cache; per-state values are bitwise-identical to embedState.
  void embedStatesBatch(std::vector<StateEmbedRequest> &Requests) const;
  /// Fuses step \p J of one path (statement + state components through
  /// the fusion rule) or returns null when the step has no components.
  /// When \p StateComps is non-null it supplies the step's state
  /// embeddings (resolved up front by encodeBatch's prefetch) instead
  /// of the per-state embedState walk.
  Var fuseStep(const BlendedTrace &Path, size_t J, size_t NumConcrete,
               Var PrevH, EncodeContext &Ctx,
               const std::vector<Var> *StateComps = nullptr) const;
  Var encodePath(const BlendedTrace &Path, EncodeContext &Ctx,
                 std::vector<Var> &StepMemory) const;

  LigerConfig Config;
  const Vocabulary &Vocab;
  EmbeddingTable Embed;       ///< Layer 1 (joint Ds ∪ Dd).
  ChildSumTreeLstm StmtTree;  ///< Statement embedding.
  RecurrentCell F1;           ///< Object-value flattening RNN (Eq. 3).
  RecurrentCell F2;           ///< State RNN over variable embeddings.
  AttentionScorer A1;         ///< Fusion attention.
  RecurrentCell F3;           ///< Executions embedding RNN.
};

/// LIGER for method name prediction (encoder + attention decoder).
class LigerNamePredictor {
public:
  LigerNamePredictor(const Vocabulary &JointVocab,
                     const Vocabulary &TargetVocab,
                     const LigerConfig &Config, uint64_t Seed);

  /// Teacher-forced loss for one sample.
  Var loss(const MethodSample &Sample) const;

  /// Teacher-forced losses for a mini-batch decoded in lockstep (see
  /// SeqDecoder::lossBatch): encodes every sample, then advances all
  /// decoders together so same-timestep samples share one batched cell
  /// step. Per-sample values are bitwise-identical to loss().
  std::vector<Var>
  lossBatch(const std::vector<const MethodSample *> &Samples) const;

  /// Greedy prediction of name sub-tokens; \p Stats optionally receives
  /// fusion attention statistics.
  std::vector<std::string> predict(const MethodSample &Sample,
                                   FusionStats *Stats = nullptr) const;

  ParamStore &params() { return Store; }
  const LigerEncoder &encoder() const { return Encoder; }

private:
  ParamStore Store;
  Rng InitRng;
  LigerEncoder Encoder;
  SeqDecoder Decoder;
  const Vocabulary &TargetVocab;
};

/// LIGER for semantics classification (encoder + linear softmax head).
class LigerClassifier {
public:
  LigerClassifier(const Vocabulary &JointVocab, size_t NumClasses,
                  const LigerConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  int predict(const MethodSample &Sample) const;

  /// The program embedding itself (for embedding-space analyses).
  Tensor embed(const MethodTraces &Traces) const;

  ParamStore &params() { return Store; }

private:
  ParamStore Store;
  Rng InitRng;
  LigerEncoder Encoder;
  Linear Head;
};

} // namespace liger

#endif // LIGER_MODELS_LIGER_H
