//===-- models/Decoder.cpp - Attention sequence decoder -------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Decoder.h"

#include <unordered_map>

using namespace liger;

SeqDecoder::SeqDecoder(ParamStore &Store, const std::string &Name,
                       const SeqDecoderConfig &Cfg, Rng &R)
    : Config(Cfg),
      TargetEmbed(Store, Name + ".target_embed", Cfg.TargetVocabSize,
                  Cfg.EmbedDim, R),
      InitProj(Store, Name + ".init", Cfg.InitDim, Cfg.Hidden, R),
      Cell(Store, Name + ".cell", Cfg.Cell,
           Cfg.EmbedDim + Cfg.MemoryDim, Cfg.Hidden, R),
      Attn(Store, Name + ".attn", Cfg.Hidden, Cfg.MemoryDim, Cfg.AttnHidden,
           R),
      OutProj(Store, Name + ".out", Cfg.Hidden + Cfg.MemoryDim,
              Cfg.TargetVocabSize, R) {}

Var SeqDecoder::stepLogits(const Var &PrevEmbed, RecState &State,
                           const AttentionScorer::Memory &Mem) const {
  // Context from attention over the prepared memory with the current
  // hidden state as the query (µ_t = a2(H^d_{t-1}, H^e_{i_j})); the
  // key-side projections were computed once in prepare(), so each step
  // costs one fused attention node.
  AttentionScorer::Result Attention = Attn.contextOf(State.H, Mem);
  State = Cell.step(concat(PrevEmbed, Attention.Context), State);
  return OutProj.apply(concat(State.H, Attention.Context));
}

Var SeqDecoder::loss(const Var &ProgramEmbedding,
                     const std::vector<Var> &Memory,
                     const std::vector<int> &TargetIds) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  LIGER_CHECK(!TargetIds.empty() && TargetIds.back() == Vocabulary::Eos,
              "targets must end with Eos");
  // Validate every target id once, ahead of the step loop (they feed
  // both the embedding lookups and the cross-entropy targets).
  for (int Id : TargetIds)
    LIGER_CHECK(Id >= 0 &&
                    static_cast<size_t>(Id) < Config.TargetVocabSize,
                "decoder target id out of range");

  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  // Key-side attention projections: once per decode, shared by every
  // step below.
  AttentionScorer::Memory Mem = Attn.prepare(Memory);

  // Teacher-forced inputs are [Sos, T_0, ..., T_{n-2}]; hoist the
  // embedding lookups out of the step loop and look each distinct id
  // up once (repeated sub-tokens share one graph node).
  std::vector<Var> Inputs;
  Inputs.reserve(TargetIds.size());
  std::unordered_map<int, Var> EmbedCache;
  int Prev = Vocabulary::Sos;
  for (int Target : TargetIds) {
    Var &Embed = EmbedCache[Prev];
    if (!Embed)
      Embed = TargetEmbed.lookup(Prev);
    Inputs.push_back(Embed);
    Prev = Target; // teacher forcing
  }

  std::vector<Var> Losses;
  Losses.reserve(TargetIds.size());
  for (size_t I = 0; I < TargetIds.size(); ++I) {
    Var Logits = stepLogits(Inputs[I], State, Mem);
    Losses.push_back(
        softmaxCrossEntropy(Logits, static_cast<size_t>(TargetIds[I])));
  }
  return meanLoss(Losses);
}

std::vector<int> SeqDecoder::decodeGreedy(const Var &ProgramEmbedding,
                                          const std::vector<Var> &Memory,
                                          size_t MaxLen) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  AttentionScorer::Memory Mem = Attn.prepare(Memory);

  std::vector<int> Output;
  int Prev = Vocabulary::Sos;
  for (size_t Step = 0; Step < MaxLen; ++Step) {
    Var Logits = stepLogits(TargetEmbed.lookup(Prev), State, Mem);
    // Never emit the structural specials other than Eos.
    Tensor Masked = Logits->Value;
    Masked[Vocabulary::Pad] = -1e30f;
    Masked[Vocabulary::Sos] = -1e30f;
    Masked[Vocabulary::Unk] = -1e30f;
    int Next = static_cast<int>(argmax(Masked));
    if (Next == Vocabulary::Eos)
      break;
    Output.push_back(Next);
    Prev = Next;
  }
  return Output;
}
