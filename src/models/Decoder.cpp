//===-- models/Decoder.cpp - Attention sequence decoder -------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Decoder.h"

using namespace liger;

SeqDecoder::SeqDecoder(ParamStore &Store, const std::string &Name,
                       const SeqDecoderConfig &Cfg, Rng &R)
    : Config(Cfg),
      TargetEmbed(Store, Name + ".target_embed", Cfg.TargetVocabSize,
                  Cfg.EmbedDim, R),
      InitProj(Store, Name + ".init", Cfg.InitDim, Cfg.Hidden, R),
      Cell(Store, Name + ".cell", Cfg.Cell,
           Cfg.EmbedDim + Cfg.MemoryDim, Cfg.Hidden, R),
      Attn(Store, Name + ".attn", Cfg.Hidden, Cfg.MemoryDim, Cfg.AttnHidden,
           R),
      OutProj(Store, Name + ".out", Cfg.Hidden + Cfg.MemoryDim,
              Cfg.TargetVocabSize, R) {}

Var SeqDecoder::stepLogits(const Var &PrevEmbed, RecState &State,
                           const std::vector<Var> &Memory) const {
  // Context from attention over the memory with the current hidden
  // state as the query (µ_t = a2(H^d_{t-1}, H^e_{i_j})).
  Var Weights = Attn.weights(State.H, Memory);
  Var Context = weightedCombine(Memory, Weights);
  State = Cell.step(concat(PrevEmbed, Context), State);
  return OutProj.apply(concat(State.H, Context));
}

Var SeqDecoder::loss(const Var &ProgramEmbedding,
                     const std::vector<Var> &Memory,
                     const std::vector<int> &TargetIds) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  LIGER_CHECK(!TargetIds.empty() && TargetIds.back() == Vocabulary::Eos,
              "targets must end with Eos");
  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  std::vector<Var> Losses;
  int Prev = Vocabulary::Sos;
  for (int Target : TargetIds) {
    Var Logits = stepLogits(TargetEmbed.lookup(Prev), State, Memory);
    Losses.push_back(
        softmaxCrossEntropy(Logits, static_cast<size_t>(Target)));
    Prev = Target; // teacher forcing
  }
  return meanLoss(Losses);
}

std::vector<int> SeqDecoder::decodeGreedy(const Var &ProgramEmbedding,
                                          const std::vector<Var> &Memory,
                                          size_t MaxLen) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  std::vector<int> Output;
  int Prev = Vocabulary::Sos;
  for (size_t Step = 0; Step < MaxLen; ++Step) {
    Var Logits = stepLogits(TargetEmbed.lookup(Prev), State, Memory);
    // Never emit the structural specials other than Eos.
    Tensor Masked = Logits->Value;
    Masked[Vocabulary::Pad] = -1e30f;
    Masked[Vocabulary::Sos] = -1e30f;
    Masked[Vocabulary::Unk] = -1e30f;
    int Next = static_cast<int>(argmax(Masked));
    if (Next == Vocabulary::Eos)
      break;
    Output.push_back(Next);
    Prev = Next;
  }
  return Output;
}
