//===-- models/Decoder.cpp - Attention sequence decoder -------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Decoder.h"

#include "models/Common.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

using namespace liger;

SeqDecoder::SeqDecoder(ParamStore &Store, const std::string &Name,
                       const SeqDecoderConfig &Cfg, Rng &R)
    : Config(Cfg),
      TargetEmbed(Store, Name + ".target_embed", Cfg.TargetVocabSize,
                  Cfg.EmbedDim, R),
      InitProj(Store, Name + ".init", Cfg.InitDim, Cfg.Hidden, R),
      Cell(Store, Name + ".cell", Cfg.Cell,
           Cfg.EmbedDim + Cfg.MemoryDim, Cfg.Hidden, R),
      Attn(Store, Name + ".attn", Cfg.Hidden, Cfg.MemoryDim, Cfg.AttnHidden,
           R),
      OutProj(Store, Name + ".out", Cfg.Hidden + Cfg.MemoryDim,
              Cfg.TargetVocabSize, R) {}

Var SeqDecoder::stepLogits(const Var &PrevEmbed, RecState &State,
                           const AttentionScorer::Memory &Mem) const {
  // Context from attention over the prepared memory with the current
  // hidden state as the query (µ_t = a2(H^d_{t-1}, H^e_{i_j})); the
  // key-side projections were computed once in prepare(), so each step
  // costs one fused attention node.
  AttentionScorer::Result Attention = Attn.contextOf(State.H, Mem);
  State = Cell.step(concat(PrevEmbed, Attention.Context), State);
  return OutProj.apply(concat(State.H, Attention.Context));
}

Var SeqDecoder::loss(const Var &ProgramEmbedding,
                     const std::vector<Var> &Memory,
                     const std::vector<int> &TargetIds) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  LIGER_CHECK(!TargetIds.empty() && TargetIds.back() == Vocabulary::Eos,
              "targets must end with Eos");
  // Validate every target id once, ahead of the step loop (they feed
  // both the embedding lookups and the cross-entropy targets).
  for (int Id : TargetIds)
    LIGER_CHECK(Id >= 0 &&
                    static_cast<size_t>(Id) < Config.TargetVocabSize,
                "decoder target id out of range");

  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  // Key-side attention projections: once per decode, shared by every
  // step below.
  AttentionScorer::Memory Mem = Attn.prepare(Memory);

  // Teacher-forced inputs are [Sos, T_0, ..., T_{n-2}]; hoist the
  // embedding lookups out of the step loop and look each distinct id
  // up once (repeated sub-tokens share one graph node).
  std::vector<Var> Inputs;
  Inputs.reserve(TargetIds.size());
  std::unordered_map<int, Var> EmbedCache;
  int Prev = Vocabulary::Sos;
  for (int Target : TargetIds) {
    Var &Embed = EmbedCache[Prev];
    if (!Embed)
      Embed = TargetEmbed.lookup(Prev);
    Inputs.push_back(Embed);
    Prev = Target; // teacher forcing
  }

  std::vector<Var> Losses;
  Losses.reserve(TargetIds.size());
  for (size_t I = 0; I < TargetIds.size(); ++I) {
    Var Logits = stepLogits(Inputs[I], State, Mem);
    Losses.push_back(
        softmaxCrossEntropy(Logits, static_cast<size_t>(TargetIds[I])));
  }
  return meanLoss(Losses);
}

std::vector<Var>
SeqDecoder::lossBatch(const std::vector<Var> &ProgramEmbeddings,
                      const std::vector<std::vector<Var>> &Memories,
                      const std::vector<std::vector<int>> &TargetIds) const {
  size_t B = ProgramEmbeddings.size();
  LIGER_CHECK(B > 0 && Memories.size() == B && TargetIds.size() == B,
              "lossBatch needs matching non-empty sample sets");

  // Per-sample validation, initial states, and prepared attention
  // memories, in ascending sample order (the same nodes loss() builds
  // first for each sample).
  std::vector<RecState> States(B);
  std::vector<AttentionScorer::Memory> Mems;
  Mems.reserve(B);
  std::vector<size_t> Lens(B);
  for (size_t Bi = 0; Bi < B; ++Bi) {
    LIGER_CHECK(!Memories[Bi].empty(), "decoder needs a non-empty memory");
    LIGER_CHECK(!TargetIds[Bi].empty() &&
                    TargetIds[Bi].back() == Vocabulary::Eos,
                "targets must end with Eos");
    for (int Id : TargetIds[Bi])
      LIGER_CHECK(Id >= 0 &&
                      static_cast<size_t>(Id) < Config.TargetVocabSize,
                  "decoder target id out of range");
    States[Bi].H = tanhV(InitProj.apply(ProgramEmbeddings[Bi]));
    if (Config.Cell == CellKind::Lstm)
      States[Bi].C = constant(Tensor::zeros(Config.Hidden));
    Mems.push_back(Attn.prepare(Memories[Bi]));
    Lens[Bi] = TargetIds[Bi].size();
  }

  // Timestep-major walk over the lockstep schedule: each timestep
  // attends every active lane over its own memory in one multi-memory
  // node, advances every lane through one batched cell step, then
  // scores every lane's logits through one batched loss-head node.
  std::vector<std::unordered_map<int, Var>> EmbedCaches(B);
  std::vector<std::vector<Var>> Losses(B);
  for (size_t Bi = 0; Bi < B; ++Bi)
    Losses[Bi].reserve(Lens[Bi]);
  std::vector<std::vector<size_t>> Schedule = lockstepSchedule(Lens);
  for (size_t T = 0; T < Schedule.size(); ++T) {
    const std::vector<size_t> &Active = Schedule[T];
    std::vector<Var> Queries;
    std::vector<const AttentionScorer::Memory *> ActiveMems;
    Queries.reserve(Active.size());
    ActiveMems.reserve(Active.size());
    for (size_t Bi : Active) {
      Queries.push_back(States[Bi].H);
      ActiveMems.push_back(&Mems[Bi]);
    }
    std::vector<AttentionScorer::Result> Ctxres =
        Attn.contextOfMultiMemory(Queries, ActiveMems);
    std::vector<Var> Ins, Ctxs;
    std::vector<RecState> PrevStates;
    Ins.reserve(Active.size());
    Ctxs.reserve(Active.size());
    PrevStates.reserve(Active.size());
    for (size_t Lane = 0; Lane < Active.size(); ++Lane) {
      size_t Bi = Active[Lane];
      int Prev = T == 0 ? Vocabulary::Sos : TargetIds[Bi][T - 1];
      Var &Embed = EmbedCaches[Bi][Prev];
      if (!Embed)
        Embed = TargetEmbed.lookup(Prev);
      Ins.push_back(concat(Embed, Ctxres[Lane].Context));
      Ctxs.push_back(Ctxres[Lane].Context);
      PrevStates.push_back(States[Bi]);
    }
    std::vector<RecState> Next = Cell.stepBatch(Ins, PrevStates);
    std::vector<Var> HeadIns;
    std::vector<size_t> Targets;
    HeadIns.reserve(Active.size());
    Targets.reserve(Active.size());
    for (size_t Lane = 0; Lane < Active.size(); ++Lane) {
      size_t Bi = Active[Lane];
      States[Bi] = Next[Lane];
      HeadIns.push_back(concat(Next[Lane].H, Ctxs[Lane]));
      Targets.push_back(static_cast<size_t>(TargetIds[Bi][T]));
    }
    std::vector<Var> StepLosses =
        OutProj.softmaxCrossEntropyBatch(HeadIns, Targets);
    for (size_t Lane = 0; Lane < Active.size(); ++Lane)
      Losses[Active[Lane]].push_back(StepLosses[Lane]);
  }

  std::vector<Var> Out;
  Out.reserve(B);
  for (size_t Bi = 0; Bi < B; ++Bi)
    Out.push_back(meanLoss(Losses[Bi]));
  return Out;
}

std::vector<int> SeqDecoder::decodeGreedy(const Var &ProgramEmbedding,
                                          const std::vector<Var> &Memory,
                                          size_t MaxLen) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  RecState State;
  State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    State.C = constant(Tensor::zeros(Config.Hidden));

  AttentionScorer::Memory Mem = Attn.prepare(Memory);

  std::vector<int> Output;
  int Prev = Vocabulary::Sos;
  for (size_t Step = 0; Step < MaxLen; ++Step) {
    Var Logits = stepLogits(TargetEmbed.lookup(Prev), State, Mem);
    // Never emit the structural specials other than Eos.
    Tensor Masked = Logits->Value;
    Masked[Vocabulary::Pad] = -1e30f;
    Masked[Vocabulary::Sos] = -1e30f;
    Masked[Vocabulary::Unk] = -1e30f;
    int Next = static_cast<int>(argmax(Masked));
    if (Next == Vocabulary::Eos)
      break;
    Output.push_back(Next);
    Prev = Next;
  }
  return Output;
}

namespace {

/// One beam hypothesis: decoder state after consuming Ids, the token
/// to feed next, and the accumulated log-probability.
struct Hypothesis {
  RecState State;
  std::vector<int> Ids;
  int Prev = Vocabulary::Sos;
  double Score = 0.0;
};

} // namespace

std::vector<int> SeqDecoder::decodeBeam(const Var &ProgramEmbedding,
                                        const std::vector<Var> &Memory,
                                        size_t MaxLen, size_t Width) const {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  LIGER_CHECK(Width > 0, "beam width must be positive");

  Hypothesis Init;
  Init.State.H = tanhV(InitProj.apply(ProgramEmbedding));
  if (Config.Cell == CellKind::Lstm)
    Init.State.C = constant(Tensor::zeros(Config.Hidden));
  AttentionScorer::Memory Mem = Attn.prepare(Memory);

  std::vector<Hypothesis> Live{Init};
  std::vector<Hypothesis> Done;
  for (size_t Step = 0; Step < MaxLen && !Live.empty(); ++Step) {
    // The whole hypothesis set advances together: one multi-query
    // attention node over the shared prepared memory, one batched cell
    // step over the stacked states.
    std::vector<Var> Queries;
    Queries.reserve(Live.size());
    for (const Hypothesis &Hyp : Live)
      Queries.push_back(Hyp.State.H);
    std::vector<AttentionScorer::Result> Ctxs =
        Attn.contextOfMulti(Queries, Mem);
    std::vector<Var> Ins;
    std::vector<RecState> PrevStates;
    Ins.reserve(Live.size());
    PrevStates.reserve(Live.size());
    for (size_t I = 0; I < Live.size(); ++I) {
      Ins.push_back(
          concat(TargetEmbed.lookup(Live[I].Prev), Ctxs[I].Context));
      PrevStates.push_back(Live[I].State);
    }
    std::vector<RecState> Next = Cell.stepBatch(Ins, PrevStates);

    // Expand: candidates are generated hypothesis-ascending then
    // id-ascending, and the sort below is stable on that order with a
    // strict > comparator — so at Width 1 the surviving candidate is
    // exactly decodeGreedy's first-wins argmax (log is monotone in the
    // masked logits).
    struct Candidate {
      size_t Hyp;
      int Id;
      double Score;
    };
    std::vector<Candidate> Candidates;
    Candidates.reserve(Live.size() * Config.TargetVocabSize);
    for (size_t I = 0; I < Live.size(); ++I) {
      Var Logits = OutProj.apply(concat(Next[I].H, Ctxs[I].Context));
      Tensor Masked = Logits->Value;
      Masked[Vocabulary::Pad] = -1e30f;
      Masked[Vocabulary::Sos] = -1e30f;
      Masked[Vocabulary::Unk] = -1e30f;
      std::vector<float> Probs = softmaxValues(Masked);
      for (size_t Id = 0; Id < Probs.size(); ++Id) {
        if (Id == Vocabulary::Pad || Id == Vocabulary::Sos ||
            Id == Vocabulary::Unk)
          continue;
        double LogP =
            std::log(std::max(static_cast<double>(Probs[Id]), 1e-12));
        Candidates.push_back({I, static_cast<int>(Id), Live[I].Score + LogP});
      }
    }
    std::stable_sort(Candidates.begin(), Candidates.end(),
                     [](const Candidate &A, const Candidate &B) {
                       return A.Score > B.Score;
                     });

    std::vector<Hypothesis> NewLive;
    NewLive.reserve(Width);
    size_t Taken = 0;
    for (const Candidate &C : Candidates) {
      if (Taken >= Width)
        break;
      ++Taken;
      Hypothesis Hyp;
      Hyp.State = Next[C.Hyp];
      Hyp.Ids = Live[C.Hyp].Ids;
      Hyp.Score = C.Score;
      if (C.Id == Vocabulary::Eos) {
        Done.push_back(std::move(Hyp));
        continue;
      }
      Hyp.Ids.push_back(C.Id);
      Hyp.Prev = C.Id;
      NewLive.push_back(std::move(Hyp));
    }
    Live = std::move(NewLive);

    // Scores only decrease as hypotheses extend (log-probs are ≤ 0),
    // so once the best finished hypothesis outranks every live one no
    // extension can overtake it.
    if (!Done.empty() && !Live.empty()) {
      double BestDone = Done[0].Score, BestLive = Live[0].Score;
      for (const Hypothesis &Hyp : Done)
        BestDone = std::max(BestDone, Hyp.Score);
      for (const Hypothesis &Hyp : Live)
        BestLive = std::max(BestLive, Hyp.Score);
      if (BestDone >= BestLive)
        break;
    }
  }

  const Hypothesis *Best = nullptr;
  for (const Hypothesis &Hyp : Done)
    if (!Best || Hyp.Score > Best->Score)
      Best = &Hyp;
  if (!Best)
    for (const Hypothesis &Hyp : Live)
      if (!Best || Hyp.Score > Best->Score)
        Best = &Hyp;
  LIGER_CHECK(Best, "beam search produced no hypotheses");
  return Best->Ids;
}
