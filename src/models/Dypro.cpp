//===-- models/Dypro.cpp - DYPRO dynamic-only baseline ---------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Dypro.h"

using namespace liger;

void liger::addVariableNamesToVocabulary(const MethodSample &Sample,
                                         Vocabulary &Vocab) {
  for (const std::string &Name : Sample.Traces.VarNames)
    Vocab.add(Name);
}

DyproEncoder::DyproEncoder(ParamStore &Store, const Vocabulary &V,
                           const DyproConfig &Cfg, Rng &R)
    : Config(Cfg), Vocab(V),
      Embed(Store, "dypro.embed", V.size(), Cfg.EmbedDim, R),
      F1(Store, "dypro.f1", Cfg.Cell, Cfg.EmbedDim, Cfg.EmbedDim, R),
      F2(Store, "dypro.f2", Cfg.Cell, 2 * Cfg.EmbedDim, Cfg.Hidden, R),
      Trace(Store, "dypro.trace", Cfg.Cell, Cfg.Hidden, Cfg.Hidden, R) {}

Var DyproEncoder::lookupToken(const std::string &Token,
                              EncodeContext &Ctx) const {
  auto It = Ctx.TokenCache.find(Token);
  if (It != Ctx.TokenCache.end())
    return It->second;
  Var E = Embed.lookup(Vocab.lookup(Token));
  Ctx.TokenCache.emplace(Token, E);
  return E;
}

Var DyproEncoder::embedState(const ProgramState &State,
                             const std::vector<std::string> &VarNames,
                             EncodeContext &Ctx) const {
  std::vector<Var> VarEmbeds;
  VarEmbeds.reserve(State.Values.size());
  for (size_t I = 0; I < State.Values.size(); ++I) {
    const Value &V = State.Values[I];
    Var ValueEmbed;
    if (V.isArray() || V.isStruct()) {
      std::vector<std::string> Tokens = valueTokens(V);
      if (Tokens.size() > Config.MaxFlattenedValues)
        Tokens.resize(Config.MaxFlattenedValues);
      std::vector<Var> Inputs;
      for (const std::string &Token : Tokens)
        Inputs.push_back(lookupToken(Token, Ctx));
      ValueEmbed = F1.run(Inputs).back().H;
    } else {
      ValueEmbed = lookupToken(valueToken(V), Ctx);
    }
    Var NameEmbed = I < VarNames.size()
                        ? lookupToken(VarNames[I], Ctx)
                        : constant(Tensor::zeros(Config.EmbedDim));
    VarEmbeds.push_back(concat(NameEmbed, ValueEmbed));
  }
  if (VarEmbeds.empty())
    return constant(Tensor::zeros(Config.Hidden));
  return F2.run(VarEmbeds).back().H;
}

DyproEncoder::Encoding DyproEncoder::encode(const MethodTraces &Traces) const {
  EncodeContext Ctx;
  Encoding Out;
  std::vector<Var> TraceEmbeddings;
  size_t Consumed = 0;

  for (const BlendedTrace &Path : Traces.Paths) {
    for (const StateTrace &States : Path.Concrete) {
      if (Consumed >= Config.MaxTraces)
        break;
      ++Consumed;
      RecState S = Trace.initial();
      size_t Steps =
          std::min(States.States.size(), Config.MaxStatesPerTrace);
      bool Stepped = false;
      for (size_t J = 0; J < Steps; ++J) {
        if (States.States[J].Values.empty())
          continue;
        Var StateVec = embedState(States.States[J], Traces.VarNames, Ctx);
        S = Trace.step(StateVec, S);
        Out.StateMemory.push_back(S.H);
        Stepped = true;
      }
      if (Stepped)
        TraceEmbeddings.push_back(S.H);
    }
  }

  if (TraceEmbeddings.empty()) {
    Out.ProgramEmbedding = constant(Tensor::zeros(Config.Hidden));
    Out.StateMemory.push_back(Out.ProgramEmbedding);
    return Out;
  }
  Out.ProgramEmbedding = maxPool(TraceEmbeddings);

  // Bound the decoder's attention memory (see MaxAttentionMemory).
  if (Out.StateMemory.size() > Config.MaxAttentionMemory) {
    std::vector<Var> Strided;
    Strided.reserve(Config.MaxAttentionMemory);
    double Step = static_cast<double>(Out.StateMemory.size()) /
                  static_cast<double>(Config.MaxAttentionMemory);
    for (size_t I = 0; I < Config.MaxAttentionMemory; ++I)
      Strided.push_back(
          Out.StateMemory[static_cast<size_t>(Step * static_cast<double>(I))]);
    Out.StateMemory = std::move(Strided);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Heads
//===----------------------------------------------------------------------===//

namespace {

SeqDecoderConfig decoderConfig(const DyproConfig &Cfg,
                               size_t TargetVocabSize) {
  SeqDecoderConfig DC;
  DC.TargetVocabSize = TargetVocabSize;
  DC.EmbedDim = Cfg.EmbedDim;
  DC.Hidden = Cfg.Hidden;
  DC.AttnHidden = Cfg.AttnHidden;
  DC.MemoryDim = Cfg.Hidden;
  DC.InitDim = Cfg.Hidden;
  DC.Cell = Cfg.Cell;
  return DC;
}

} // namespace

DyproNamePredictor::DyproNamePredictor(const Vocabulary &Vocab,
                                       const Vocabulary &Target,
                                       const DyproConfig &Config,
                                       uint64_t Seed)
    : InitRng(Seed), Encoder(Store, Vocab, Config, InitRng),
      Decoder(Store, "dypro.dec",
              decoderConfig(Config, static_cast<size_t>(Target.size())),
              InitRng),
      TargetVocab(Target) {}

Var DyproNamePredictor::loss(const MethodSample &Sample) const {
  DyproEncoder::Encoding Enc = Encoder.encode(Sample.Traces);
  std::vector<int> Targets =
      nameTargetIds(Sample.NameSubtokens, TargetVocab);
  return Decoder.loss(Enc.ProgramEmbedding, Enc.StateMemory, Targets);
}

std::vector<std::string>
DyproNamePredictor::predict(const MethodSample &Sample) const {
  DyproEncoder::Encoding Enc = Encoder.encode(Sample.Traces);
  std::vector<int> Ids = Decoder.decodeGreedy(
      Enc.ProgramEmbedding, Enc.StateMemory, Encoder.config().MaxDecodeLen);
  return idsToSubtokens(Ids, TargetVocab);
}

DyproClassifier::DyproClassifier(const Vocabulary &Vocab, size_t NumClasses,
                                 const DyproConfig &Config, uint64_t Seed)
    : InitRng(Seed), Encoder(Store, Vocab, Config, InitRng),
      Head(Store, "dypro.head", Config.Hidden, NumClasses, InitRng) {}

Var DyproClassifier::loss(const MethodSample &Sample) const {
  LIGER_CHECK(Sample.ClassId >= 0, "classification sample without label");
  DyproEncoder::Encoding Enc = Encoder.encode(Sample.Traces);
  return softmaxCrossEntropy(Head.apply(Enc.ProgramEmbedding),
                             static_cast<size_t>(Sample.ClassId));
}

int DyproClassifier::predict(const MethodSample &Sample) const {
  DyproEncoder::Encoding Enc = Encoder.encode(Sample.Traces);
  return static_cast<int>(argmax(Head.apply(Enc.ProgramEmbedding)->Value));
}
