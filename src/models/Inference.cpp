//===-- models/Inference.cpp - Forward-only LIGER runtime ------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Every function here is a values-only transliteration of its graph
// counterpart (Liger.cpp / Decoder.cpp / Module.cpp), calling the same
// inferops:: kernels the fused graph ops call; keep the two in lockstep
// when either changes — InferenceEquivalenceTest compares them with
// memcmp.
//
//===----------------------------------------------------------------------===//

#include "models/Inference.h"

#include "lang/AstTree.h"
#include "models/Common.h"
#include "nn/InferOps.h"

#include <cstring>

using namespace liger;

//===----------------------------------------------------------------------===//
// ScratchArena
//===----------------------------------------------------------------------===//

namespace {
constexpr size_t MinBlockFloats = 1u << 16;
} // namespace

float *ScratchArena::alloc(size_t N) {
  if (N == 0)
    N = 1;
  while (Active < Blocks.size()) {
    Block &B = Blocks[Active];
    if (B.Used + N <= B.Data.size()) {
      float *P = B.Data.data() + B.Used;
      B.Used += N;
      return P;
    }
    ++Active; // Tail slack is reclaimed at the next reset().
  }
  Blocks.emplace_back();
  Blocks.back().Data.resize(std::max(MinBlockFloats, N));
  Blocks.back().Used = N;
  Active = Blocks.size() - 1;
  return Blocks.back().Data.data();
}

float *ScratchArena::allocZeroed(size_t N) {
  float *P = alloc(N);
  std::memset(P, 0, N * sizeof(float));
  return P;
}

void ScratchArena::reset() {
  for (Block &B : Blocks)
    B.Used = 0;
  Active = 0;
}

size_t ScratchArena::floatsReserved() const {
  size_t Total = 0;
  for (const Block &B : Blocks)
    Total += B.Data.size();
  return Total;
}

//===----------------------------------------------------------------------===//
// Weight binding
//===----------------------------------------------------------------------===//

LigerInference::LigerInference(const WeightImage &Image,
                               const Vocabulary &JointVocab,
                               const Vocabulary *Target,
                               const LigerConfig &Cfg)
    : Config(Cfg), Vocab(JointVocab), TargetVocab(Target) {
  LIGER_CHECK(Config.UseStaticFeature || Config.UseDynamicFeature,
              "at least one feature dimension must be enabled");
  bind(Image);
}

LigerInference::LinearRef
LigerInference::bindLinear(const WeightImage &Image, const std::string &Name,
                           size_t In, size_t Out) const {
  LinearRef L;
  L.In = In;
  L.Out = Out;
  L.W = Image.tensor2d(Name + ".W", Out, In);
  L.B = Image.tensor1d(Name + ".b", Out);
  return L;
}

LigerInference::CellRef
LigerInference::bindCell(const WeightImage &Image, const std::string &Name,
                         CellKind Kind, size_t In, size_t Hidden) const {
  CellRef C;
  C.Kind = Kind;
  C.In = In;
  C.Hidden = Hidden;
  if (Kind == CellKind::Rnn) {
    C.L1 = bindLinear(Image, Name + ".Wx", In, Hidden);
    C.U1 = Image.tensor2d(Name + ".Wh", Hidden, Hidden);
    return C;
  }
  size_t K = Kind == CellKind::Gru ? 3 : 4;
  C.Wx = Image.tensor2d(Name + ".Wx", K * Hidden, In);
  C.Bx = Image.tensor1d(Name + ".bx", K * Hidden);
  C.Wh = Image.tensor2d(Name + ".Wh", K * Hidden, Hidden);
  return C;
}

LigerInference::AttnRef
LigerInference::bindAttn(const WeightImage &Image, const std::string &Name,
                         size_t QueryDim, size_t KeyDim,
                         size_t Hidden) const {
  AttnRef A;
  A.QueryDim = QueryDim;
  A.KeyDim = KeyDim;
  A.Hidden = Hidden;
  A.W1 = Image.tensor2d(Name + ".l1.W", Hidden, KeyDim + QueryDim);
  A.B1 = Image.tensor1d(Name + ".l1.b", Hidden);
  A.W2 = Image.tensor2d(Name + ".l2.W", 1, Hidden);
  A.B2 = Image.tensor1d(Name + ".l2.b", 1);
  return A;
}

void LigerInference::bind(const WeightImage &Image) {
  size_t E = Config.EmbedDim, H = Config.Hidden, A = Config.AttnHidden;
  Embed = Image.tensor2d("liger.embed",
                         static_cast<size_t>(Vocab.size()), E);
  TreeW.Wx = Image.tensor2d("liger.stmt_tree.Wx", 4 * H, E);
  TreeW.Bx = Image.tensor1d("liger.stmt_tree.bx", 4 * H);
  TreeW.Wh = Image.tensor2d("liger.stmt_tree.Wh", 4 * H, H);
  F1 = bindCell(Image, "liger.f1", Config.Cell, E, E);
  F2 = bindCell(Image, "liger.f2", Config.Cell, E, H);
  A1 = bindAttn(Image, "liger.a1", H, H, A);
  F3 = bindCell(Image, "liger.f3", Config.Cell, H, H);

  if (TargetVocab) {
    size_t Vt = static_cast<size_t>(TargetVocab->size());
    Dec.TargetEmbed = Image.tensor2d("liger.dec.target_embed", Vt, E);
    Dec.Init = bindLinear(Image, "liger.dec.init", H, H);
    Dec.Cell = bindCell(Image, "liger.dec.cell", Config.Cell, E + H, H);
    Dec.Attn = bindAttn(Image, "liger.dec.attn", H, H, A);
    Dec.Out = bindLinear(Image, "liger.dec.out", H + H, Vt);
  }

  Head = LinearRef();
  if (const WeightImage::Entry *HeadW = Image.find("liger.head.W")) {
    LIGER_CHECK(HeadW->Rank == 2 && HeadW->Dims[1] == H,
                "classifier head shape mismatch");
    Head = bindLinear(Image, "liger.head", H, HeadW->Dims[0]);
  }

  Version = Image.version();
}

void LigerInference::rebind(const WeightImage &Image) {
  Digest128 Old = Version;
  bind(Image);
  if (Version != Old) {
    StmtCache.clear();
    StateCache.clear();
  }
}

//===----------------------------------------------------------------------===//
// Primitive module forwards
//===----------------------------------------------------------------------===//

const float *LigerInference::tokenEmbed(const std::string &Token) const {
  // EmbeddingTable::lookup is a zero-copy row view; here it is plain
  // pointer arithmetic into the image.
  int Id = Vocab.lookup(Token);
  return Embed + static_cast<size_t>(Id) * Config.EmbedDim;
}

const float *LigerInference::linearApply(const LinearRef &L, const float *X) {
  // Mirrors Linear::apply = add(matvec(W, X), B).
  float *Y = Arena.alloc(L.Out);
  kernels::matvec(L.Out, L.In, L.W, X, Y);
  kernels::addAcc(L.Out, L.B, Y);
  return Y;
}

LigerInference::St LigerInference::cellInitial(const CellRef &Cell) {
  St S;
  S.H = Arena.allocZeroed(Cell.Hidden);
  if (Cell.Kind == CellKind::Lstm)
    S.C = Arena.allocZeroed(Cell.Hidden);
  return S;
}

LigerInference::St LigerInference::cellStep(const CellRef &Cell,
                                            const float *X, const St &Prev) {
  size_t H = Cell.Hidden;
  St Next;
  switch (Cell.Kind) {
  case CellKind::Rnn: {
    // tanhV(add(L1.apply(X), matvec(U1, Prev.H))).
    float *Y = Arena.alloc(H);
    kernels::matvec(H, Cell.In, Cell.L1.W, X, Y);
    kernels::addAcc(H, Cell.L1.B, Y);
    float *Uh = Arena.alloc(H);
    kernels::matvec(H, H, Cell.U1, Prev.H, Uh);
    kernels::addAcc(H, Uh, Y);
    kernels::tanhMap(H, Y, Y);
    Next.H = Y;
    break;
  }
  case CellKind::Gru: {
    float *Gates = Arena.alloc(3 * H);
    float *Ws = Arena.alloc(9 * H);
    float *Out = Arena.alloc(H);
    inferops::gruCellForward(H, Cell.In, Cell.Wx, Cell.Bx, Cell.Wh, X,
                             Prev.H, Gates, Out, Ws);
    Next.H = Out;
    break;
  }
  case CellKind::Lstm: {
    float *Pay = Arena.alloc(6 * H);
    float *Ws = Arena.alloc(10 * H);
    float *C = Arena.alloc(H);
    float *HOut = Arena.alloc(H);
    inferops::lstmCellForward(H, Cell.In, Cell.Wx, Cell.Bx, Cell.Wh, X,
                              Prev.H, Prev.C, Pay, C, HOut, Ws);
    Next.H = HOut;
    Next.C = C;
    break;
  }
  }
  return Next;
}

const float *
LigerInference::attnKeyProj(const AttnRef &Attn,
                            const std::vector<const float *> &Keys) {
  float *KP = Arena.alloc(Keys.size() * Attn.Hidden);
  inferops::attentionKeyProjForward(Keys.size(), Attn.Hidden, Attn.KeyDim,
                                    Attn.KeyDim + Attn.QueryDim, Attn.W1,
                                    Attn.B1, Keys.data(), KP);
  return KP;
}

const float *
LigerInference::attnContext(const AttnRef &Attn,
                            const std::vector<const float *> &Keys,
                            const float *KeyProj, const float *Query) {
  size_t T = Keys.size();
  float *Ht = Arena.alloc(T * Attn.Hidden);
  float *A = Arena.alloc(T);
  float *Out = Arena.alloc(Attn.KeyDim);
  float *Ws = Arena.alloc(2 * Attn.Hidden + T);
  inferops::attentionForward(T, Attn.KeyDim, Attn.QueryDim, Attn.Hidden,
                             Attn.KeyDim + Attn.QueryDim, Attn.W1, Attn.W2,
                             Attn.B2[0], Query, KeyProj, Keys.data(), Ht, A,
                             Out, Ws);
  return Out;
}

//===----------------------------------------------------------------------===//
// Statement embedding (persistent cache)
//===----------------------------------------------------------------------===//

LigerInference::St LigerInference::treeNode(const AstTree &Tree) {
  // Mirrors ChildSumTreeLstm::embedNode: children first, then the
  // child-sum and the fused node op.
  size_t H = Config.Hidden;
  size_t K = Tree.Children.size();
  std::vector<const float *> ChildH(K), ChildC(K);
  for (size_t I = 0; I < K; ++I) {
    St Child = treeNode(Tree.Children[I]);
    ChildH[I] = Child.H;
    ChildC[I] = Child.C;
  }

  const float *X = tokenEmbed(Tree.Label);

  // childHSum: zeros / the single child / a left-to-right add chain.
  const float *HSum;
  if (K == 0) {
    HSum = Arena.allocZeroed(H);
  } else if (K == 1) {
    HSum = ChildH[0];
  } else {
    float *Sum = Arena.alloc(H);
    std::memcpy(Sum, ChildH[0], H * sizeof(float));
    for (size_t I = 1; I < K; ++I)
      kernels::addAcc(H, ChildH[I], Sum);
    HSum = Sum;
  }

  float *Gates = Arena.alloc((5 + K) * H);
  float *Ws = Arena.alloc(10 * H);
  St Out;
  float *C = Arena.alloc(H);
  float *HOut = Arena.alloc(H);
  inferops::treeLstmNodeForward(H, Config.EmbedDim, K, TreeW.Wx, TreeW.Bx,
                                TreeW.Wh, X, HSum, ChildH.data(),
                                ChildC.data(), Gates, C, HOut, Ws);
  Out.H = HOut;
  Out.C = C;
  return Out;
}

namespace {

/// Injective serialization of a statement head tree: length-prefixed
/// labels plus explicit child-list delimiters, so distinct trees can
/// never produce the same key.
void appendTreeKey(const AstTree &Tree, std::string &Key) {
  Key += std::to_string(Tree.Label.size());
  Key += ':';
  Key += Tree.Label;
  Key += '(';
  for (const AstTree &Child : Tree.Children)
    appendTreeKey(Child, Key);
  Key += ')';
}

} // namespace

const float *LigerInference::embedStatement(const Stmt *S) {
  AstTree Tree = buildStmtHeadTree(S);
  std::string Key;
  appendTreeKey(Tree, Key);
  auto It = StmtCache.find(Key);
  if (It != StmtCache.end()) {
    ++Stats.StmtHits;
    return It->second.data();
  }
  ++Stats.StmtMisses;
  St R = treeNode(Tree);
  std::vector<float> &Slot = StmtCache[std::move(Key)];
  Slot.assign(R.H, R.H + Config.Hidden);
  return Slot.data();
}

//===----------------------------------------------------------------------===//
// State embedding (persistent cache)
//===----------------------------------------------------------------------===//

const float *LigerInference::embedState(const ProgramState &State) {
  // The key construction is LigerEncoder::stateKey verbatim — serving
  // and training must agree on which states are "the same".
  std::string Key;
  std::vector<std::vector<std::string>> ValueTokens;
  ValueTokens.reserve(State.Values.size());
  for (const Value &V : State.Values) {
    bool IsObject = V.isArray() || V.isStruct();
    if (IsObject) {
      std::vector<std::string> Tokens = valueTokens(V);
      if (Tokens.size() > Config.MaxFlattenedValues)
        Tokens.resize(Config.MaxFlattenedValues);
      ValueTokens.push_back(std::move(Tokens));
    } else {
      ValueTokens.push_back({valueToken(V)});
    }
    // Kind tag as in LigerEncoder::stateKey: a persistent cache must
    // never hand a primitive's token embedding to the one-element
    // object with the same token stream (or vice versa).
    Key += IsObject ? 'O' : 'P';
    for (const std::string &Token : ValueTokens.back()) {
      Key += Token;
      Key += '\x1f';
    }
    Key += '\x1e';
  }

  auto It = StateCache.find(Key);
  if (It != StateCache.end()) {
    ++Stats.StateHits;
    return It->second.data();
  }
  ++Stats.StateMisses;

  // Per-variable embeddings: primitives embed directly; object values
  // run f1 over their flattened attr sequence.
  std::vector<const float *> VarEmbeds;
  VarEmbeds.reserve(State.Values.size());
  for (size_t I = 0; I < State.Values.size(); ++I) {
    const Value &V = State.Values[I];
    if (V.isArray() || V.isStruct()) {
      St S = cellInitial(F1);
      for (const std::string &Token : ValueTokens[I])
        S = cellStep(F1, tokenEmbed(Token), S);
      VarEmbeds.push_back(S.H);
    } else {
      VarEmbeds.push_back(tokenEmbed(ValueTokens[I][0]));
    }
  }

  const float *H;
  if (VarEmbeds.empty()) {
    H = Arena.allocZeroed(Config.Hidden);
  } else {
    St S = cellInitial(F2);
    for (const float *In : VarEmbeds)
      S = cellStep(F2, In, S);
    H = S.H;
  }
  std::vector<float> &Slot = StateCache[std::move(Key)];
  Slot.assign(H, H + Config.Hidden);
  return Slot.data();
}

//===----------------------------------------------------------------------===//
// Encode walk
//===----------------------------------------------------------------------===//

const float *LigerInference::fuseStep(const BlendedTrace &Path, size_t J,
                                      size_t NumConcrete,
                                      const float *PrevH) {
  std::vector<const float *> Components;
  if (Config.UseStaticFeature)
    Components.push_back(embedStatement(Path.Symbolic.Steps[J].Statement));
  for (size_t T = 0; T < NumConcrete; ++T) {
    const StateTrace &States = Path.Concrete[T];
    if (J < States.States.size() && !States.States[J].Values.empty())
      Components.push_back(embedState(States.States[J]));
  }
  if (Components.empty())
    return nullptr;

  if (Components.size() == 1)
    return Components[0];
  if (!Config.UseFusionAttention || J == 0) {
    // meanPool: zeros + in-order axpy with the 1/N weight.
    size_t H = Config.Hidden;
    float *Out = Arena.allocZeroed(H);
    float Inv = 1.0f / static_cast<float>(Components.size());
    for (const float *Item : Components)
      kernels::axpy(H, Inv, Item, Out);
    return Out;
  }
  const float *KP = attnKeyProj(A1, Components);
  return attnContext(A1, Components, KP, PrevH);
}

const float *
LigerInference::encodePath(const BlendedTrace &Path,
                           std::vector<const float *> &StepMemory) {
  size_t Steps = std::min(Path.Symbolic.Steps.size(), Config.MaxStepsPerTrace);
  size_t NumConcrete =
      Config.UseDynamicFeature
          ? std::min(Path.Concrete.size(), Config.MaxConcretePerPath)
          : 0;

  St Trace = cellInitial(F3);
  const float *PrevH = Trace.H;
  for (size_t J = 0; J < Steps; ++J) {
    const float *Fused = fuseStep(Path, J, NumConcrete, PrevH);
    if (!Fused)
      continue;
    Trace = cellStep(F3, Fused, Trace);
    PrevH = Trace.H;
    StepMemory.push_back(Trace.H);
  }
  return Trace.H;
}

const float *
LigerInference::encodeInternal(const MethodTraces &Traces,
                               std::vector<const float *> &StepMemory) {
  std::vector<const float *> PathEmbeddings;
  for (const BlendedTrace &Path : Traces.Paths) {
    if (!Config.UseDynamicFeature && Path.Symbolic.Steps.empty())
      continue;
    if (Config.UseDynamicFeature && !Config.UseStaticFeature &&
        Path.Concrete.empty())
      continue;
    PathEmbeddings.push_back(encodePath(Path, StepMemory));
  }

  size_t H = Config.Hidden;
  if (PathEmbeddings.empty()) {
    float *Zero = Arena.allocZeroed(H);
    StepMemory.push_back(Zero);
    return Zero;
  }
  const float *Program;
  if (Config.MeanPoolPrograms) {
    float *Out = Arena.allocZeroed(H);
    float Inv = 1.0f / static_cast<float>(PathEmbeddings.size());
    for (const float *Item : PathEmbeddings)
      kernels::axpy(H, Inv, Item, Out);
    Program = Out;
  } else {
    // maxPool: copy the first item, strict-> updates after.
    float *Out = Arena.alloc(H);
    std::memcpy(Out, PathEmbeddings[0], H * sizeof(float));
    for (size_t I = 1; I < PathEmbeddings.size(); ++I) {
      const float *Item = PathEmbeddings[I];
      for (size_t D = 0; D < H; ++D)
        if (Item[D] > Out[D])
          Out[D] = Item[D];
    }
    Program = Out;
  }
  if (StepMemory.empty())
    StepMemory.push_back(Program);
  return Program;
}

const float *LigerInference::encode(const MethodTraces &Traces) {
  Arena.reset();
  std::vector<const float *> StepMemory;
  return encodeInternal(Traces, StepMemory);
}

//===----------------------------------------------------------------------===//
// Greedy decode
//===----------------------------------------------------------------------===//

std::vector<int>
LigerInference::decodeGreedy(const float *ProgramEmbedding,
                             const std::vector<const float *> &Memory) {
  LIGER_CHECK(!Memory.empty(), "decoder needs a non-empty memory");
  size_t H = Config.Hidden, E = Config.EmbedDim;
  size_t Vt = Dec.Out.Out;

  St State;
  {
    float *H0 = Arena.alloc(H);
    kernels::matvec(H, Dec.Init.In, Dec.Init.W, ProgramEmbedding, H0);
    kernels::addAcc(H, Dec.Init.B, H0);
    kernels::tanhMap(H, H0, H0);
    State.H = H0;
  }
  if (Config.Cell == CellKind::Lstm)
    State.C = Arena.allocZeroed(H);

  const float *KP = attnKeyProj(Dec.Attn, Memory);

  std::vector<int> Output;
  int Prev = Vocabulary::Sos;
  for (size_t Step = 0; Step < Config.MaxDecodeLen; ++Step) {
    const float *PrevEmbed =
        Dec.TargetEmbed + static_cast<size_t>(Prev) * E;
    // stepLogits: attention over the *previous* state, cell step, then
    // the output projection over the new state and the same context.
    const float *Ctx = attnContext(Dec.Attn, Memory, KP, State.H);
    float *CellIn = Arena.alloc(E + H);
    std::memcpy(CellIn, PrevEmbed, E * sizeof(float));
    std::memcpy(CellIn + E, Ctx, H * sizeof(float));
    State = cellStep(Dec.Cell, CellIn, State);
    float *OutIn = Arena.alloc(H + H);
    std::memcpy(OutIn, State.H, H * sizeof(float));
    std::memcpy(OutIn + H, Ctx, H * sizeof(float));
    float *Logits = Arena.alloc(Vt);
    kernels::matvec(Vt, Dec.Out.In, Dec.Out.W, OutIn, Logits);
    kernels::addAcc(Vt, Dec.Out.B, Logits);

    // Never emit the structural specials other than Eos.
    Logits[Vocabulary::Pad] = -1e30f;
    Logits[Vocabulary::Sos] = -1e30f;
    Logits[Vocabulary::Unk] = -1e30f;
    int Next = static_cast<int>(inferops::argmaxRow(Vt, Logits));
    if (Next == Vocabulary::Eos)
      break;
    Output.push_back(Next);
    Prev = Next;
  }
  return Output;
}

std::vector<std::string>
LigerInference::predictName(const MethodTraces &Traces) {
  LIGER_CHECK(TargetVocab, "predictName needs a target vocabulary");
  Arena.reset();
  std::vector<const float *> StepMemory;
  const float *Program = encodeInternal(Traces, StepMemory);
  std::vector<int> Ids = decodeGreedy(Program, StepMemory);
  return idsToSubtokens(Ids, *TargetVocab);
}

int LigerInference::predictClass(const MethodTraces &Traces) {
  LIGER_CHECK(hasClassifierHead(), "image has no classifier head");
  Arena.reset();
  std::vector<const float *> StepMemory;
  const float *Program = encodeInternal(Traces, StepMemory);
  const float *Logits = linearApply(Head, Program);
  return static_cast<int>(inferops::argmaxRow(Head.Out, Logits));
}
