//===-- models/Common.h - Shared model infrastructure -----------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dataset sample type and vocabulary construction shared by LIGER and
/// the baselines. A MethodSample bundles everything any model may need:
/// the parsed function (static models), its collected blended traces
/// (dynamic models), and the labels (method-name sub-tokens and/or a
/// semantics class).
///
/// Vocabulary: following §6.1 ("our vocabulary has 9,641 unique tokens
/// (for both static and dynamic feature dimensions)"), one joint
/// Vocabulary holds the static tokens Ds (AST labels and token
/// spellings) and the dynamic value tokens Dd.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_COMMON_H
#define LIGER_MODELS_COMMON_H

#include "nn/Module.h"
#include "trace/Trace.h"
#include "trace/Vocabulary.h"

#include <memory>
#include <string>
#include <vector>

namespace liger {

/// One corpus method with labels and traces.
struct MethodSample {
  /// Owning pointer: each generated method lives in its own Program.
  std::shared_ptr<Program> Prog;
  const FunctionDecl *Fn = nullptr;
  /// Blended traces (non-owning pointers into *Prog).
  MethodTraces Traces;
  /// Target for method name prediction (lower-case sub-tokens).
  std::vector<std::string> NameSubtokens;
  /// Target for semantics classification.
  int ClassId = -1;
  /// Grouping key for train/valid/test splits (the paper splits by
  /// project so identical helpers don't leak).
  std::string Project;
};

/// Adds Ds tokens (statement-tree labels along every path) and Dd
/// tokens (state value tokens) of \p Sample to \p Vocab.
void addSampleToVocabulary(const MethodSample &Sample, Vocabulary &Vocab);

/// Adds the *full-function* static tokens (used by code2vec/code2seq,
/// which see the whole body rather than trace slices).
void addFunctionTreeToVocabulary(const MethodSample &Sample,
                                 Vocabulary &Vocab);

/// Adds the sample's name sub-tokens to the decoder target vocabulary.
void addNameToVocabulary(const MethodSample &Sample, Vocabulary &Vocab);

/// Encodes name sub-tokens as target ids with EOS appended.
std::vector<int> nameTargetIds(const std::vector<std::string> &Subtokens,
                               const Vocabulary &TargetVocab);

/// Decodes target ids back to sub-token strings (stops at EOS, skips
/// specials).
std::vector<std::string> idsToSubtokens(const std::vector<int> &Ids,
                                        const Vocabulary &TargetVocab);

/// Lockstep batching schedule over variable-length sequences: entry t
/// lists the indices of every sequence still active at timestep t
/// (Lens[i] > t), in ascending index order. The schedule has
/// max(Lens) timesteps; callers feed each timestep's active lanes to
/// one batched cell/attention step so same-timestep samples share a
/// matmul.
std::vector<std::vector<size_t>>
lockstepSchedule(const std::vector<size_t> &Lens);

/// Runs one shared recurrent cell over many variable-length sequences
/// in lockstep: at each timestep every still-active sequence advances
/// through one batched cell step (RecurrentCell::stepBatch), so
/// same-timestep lanes share a matmul when batching is enabled and
/// degrade to per-lane steps in lane order when it is not. Returns
/// each sequence's final state; per-lane values are bitwise-identical
/// to RecurrentCell::run over that sequence alone.
std::vector<RecState>
runCellLockstep(const RecurrentCell &Cell,
                const std::vector<std::vector<Var>> &Seqs);

} // namespace liger

#endif // LIGER_MODELS_COMMON_H
