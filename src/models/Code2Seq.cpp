//===-- models/Code2Seq.cpp - code2seq static baseline ---------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Code2Seq.h"

#include "lang/AstTree.h"
#include "support/StringUtils.h"

using namespace liger;

namespace {

uint64_t nameSeed(const MethodSample &Sample) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Sample.Fn->Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H ^ 0xC2u; // distinct from code2vec's sampling stream
}

std::vector<AstPath> samplePaths(const MethodSample &Sample,
                                 const Code2SeqConfig &Config) {
  AstTree Tree = buildFunctionTree(*Sample.Fn);
  return extractAstPaths(Tree, Config.MaxContexts, Config.MaxPathLength,
                         Config.MaxPathWidth, nameSeed(Sample));
}

std::vector<std::string> leafSubtokens(const std::string &Leaf) {
  std::vector<std::string> Subs = splitSubtokens(Leaf);
  if (Subs.empty())
    Subs.push_back(Leaf); // punctuation-ish leaves keep their spelling
  return Subs;
}

} // namespace

std::vector<SeqPathContext>
liger::extractSeqPathContexts(const MethodSample &Sample,
                              const Vocabulary &SubtokenVocab,
                              const Vocabulary &NodeVocab,
                              const Code2SeqConfig &Config) {
  std::vector<SeqPathContext> Out;
  for (const AstPath &Path : samplePaths(Sample, Config)) {
    SeqPathContext Context;
    for (const std::string &Sub : leafSubtokens(Path.SourceLeaf))
      Context.SourceSubtokens.push_back(SubtokenVocab.lookup(Sub));
    for (const std::string &Node : Path.InteriorLabels)
      Context.PathNodes.push_back(NodeVocab.lookup(Node));
    for (const std::string &Sub : leafSubtokens(Path.TargetLeaf))
      Context.TargetSubtokens.push_back(SubtokenVocab.lookup(Sub));
    Out.push_back(std::move(Context));
  }
  return Out;
}

void liger::addSeqPathContextsToVocabulary(const MethodSample &Sample,
                                           Vocabulary &SubtokenVocab,
                                           Vocabulary &NodeVocab,
                                           const Code2SeqConfig &Config) {
  for (const AstPath &Path : samplePaths(Sample, Config)) {
    for (const std::string &Sub : leafSubtokens(Path.SourceLeaf))
      SubtokenVocab.add(Sub);
    for (const std::string &Sub : leafSubtokens(Path.TargetLeaf))
      SubtokenVocab.add(Sub);
    for (const std::string &Node : Path.InteriorLabels)
      NodeVocab.add(Node);
  }
}

//===----------------------------------------------------------------------===//
// Shared context embedding
//===----------------------------------------------------------------------===//

namespace {

Var sumSubtokenEmbeds(const std::vector<int> &Ids,
                      const EmbeddingTable &Table, size_t Dim) {
  if (Ids.empty())
    return constant(Tensor::zeros(Dim));
  Var Sum = Table.lookup(Ids[0]);
  for (size_t I = 1; I < Ids.size(); ++I)
    Sum = add(Sum, Table.lookup(Ids[I]));
  return Sum;
}

Var embedContextImpl(const SeqPathContext &Context,
                     const EmbeddingTable &SubtokenEmbed,
                     const EmbeddingTable &NodeEmbed,
                     const RecurrentCell &PathRnn, const Linear &ContextProj,
                     size_t EmbedDim, size_t Hidden) {
  Var L = sumSubtokenEmbeds(Context.SourceSubtokens, SubtokenEmbed,
                            EmbedDim);
  Var R = sumSubtokenEmbeds(Context.TargetSubtokens, SubtokenEmbed,
                            EmbedDim);
  Var PathH;
  if (Context.PathNodes.empty()) {
    PathH = constant(Tensor::zeros(Hidden));
  } else {
    std::vector<Var> Inputs;
    for (int Id : Context.PathNodes)
      Inputs.push_back(NodeEmbed.lookup(Id));
    PathH = PathRnn.run(Inputs).back().H;
  }
  return tanhV(ContextProj.apply(concat(concat(L, PathH), R)));
}

SeqDecoderConfig decoderConfig(const Code2SeqConfig &Cfg,
                               size_t TargetVocabSize) {
  SeqDecoderConfig DC;
  DC.TargetVocabSize = TargetVocabSize;
  DC.EmbedDim = Cfg.EmbedDim;
  DC.Hidden = Cfg.Hidden;
  DC.AttnHidden = Cfg.AttnHidden;
  DC.MemoryDim = Cfg.Hidden;
  DC.InitDim = Cfg.Hidden;
  DC.Cell = Cfg.Cell;
  return DC;
}

} // namespace

//===----------------------------------------------------------------------===//
// Code2SeqNamePredictor
//===----------------------------------------------------------------------===//

Code2SeqNamePredictor::Code2SeqNamePredictor(const Vocabulary &Subtokens,
                                             const Vocabulary &Nodes,
                                             const Vocabulary &Target,
                                             const Code2SeqConfig &Cfg,
                                             uint64_t Seed)
    : InitRng(Seed), Config(Cfg), SubtokenVocab(Subtokens), NodeVocab(Nodes),
      TargetVocab(Target),
      SubtokenEmbed(Store, "c2s.sub", Subtokens.size(), Cfg.EmbedDim,
                    InitRng),
      NodeEmbed(Store, "c2s.node", Nodes.size(), Cfg.EmbedDim, InitRng),
      PathRnn(Store, "c2s.path", Cfg.Cell, Cfg.EmbedDim, Cfg.Hidden,
              InitRng),
      ContextProj(Store, "c2s.ctx", 2 * Cfg.EmbedDim + Cfg.Hidden,
                  Cfg.Hidden, InitRng),
      Decoder(Store, "c2s.dec",
              decoderConfig(Cfg, static_cast<size_t>(Target.size())),
              InitRng) {}

Var Code2SeqNamePredictor::embedContext(const SeqPathContext &Context) const {
  return embedContextImpl(Context, SubtokenEmbed, NodeEmbed, PathRnn,
                          ContextProj, Config.EmbedDim, Config.Hidden);
}

Code2SeqNamePredictor::Encoding
Code2SeqNamePredictor::encode(const MethodSample &Sample) const {
  std::vector<SeqPathContext> Contexts =
      extractSeqPathContexts(Sample, SubtokenVocab, NodeVocab, Config);
  Encoding Out;
  if (Contexts.empty()) {
    Out.ProgramEmbedding = constant(Tensor::zeros(Config.Hidden));
    Out.Memory.push_back(Out.ProgramEmbedding);
    return Out;
  }
  for (const SeqPathContext &Context : Contexts)
    Out.Memory.push_back(embedContext(Context));
  Out.ProgramEmbedding = meanPool(Out.Memory);
  return Out;
}

Var Code2SeqNamePredictor::loss(const MethodSample &Sample) const {
  Encoding Enc = encode(Sample);
  std::vector<int> Targets =
      nameTargetIds(Sample.NameSubtokens, TargetVocab);
  return Decoder.loss(Enc.ProgramEmbedding, Enc.Memory, Targets);
}

std::vector<std::string>
Code2SeqNamePredictor::predict(const MethodSample &Sample) const {
  Encoding Enc = encode(Sample);
  std::vector<int> Ids = Decoder.decodeGreedy(
      Enc.ProgramEmbedding, Enc.Memory, Config.MaxDecodeLen);
  return idsToSubtokens(Ids, TargetVocab);
}

//===----------------------------------------------------------------------===//
// Code2SeqClassifier
//===----------------------------------------------------------------------===//

Code2SeqClassifier::Code2SeqClassifier(const Vocabulary &Subtokens,
                                       const Vocabulary &Nodes,
                                       size_t NumClasses,
                                       const Code2SeqConfig &Cfg,
                                       uint64_t Seed)
    : InitRng(Seed), Config(Cfg), SubtokenVocab(Subtokens), NodeVocab(Nodes),
      SubtokenEmbed(Store, "c2s.sub", Subtokens.size(), Cfg.EmbedDim,
                    InitRng),
      NodeEmbed(Store, "c2s.node", Nodes.size(), Cfg.EmbedDim, InitRng),
      PathRnn(Store, "c2s.path", Cfg.Cell, Cfg.EmbedDim, Cfg.Hidden,
              InitRng),
      ContextProj(Store, "c2s.ctx", 2 * Cfg.EmbedDim + Cfg.Hidden,
                  Cfg.Hidden, InitRng),
      Head(Store, "c2s.head", Cfg.Hidden, NumClasses, InitRng) {}

Var Code2SeqClassifier::embedContext(const SeqPathContext &Context) const {
  return embedContextImpl(Context, SubtokenEmbed, NodeEmbed, PathRnn,
                          ContextProj, Config.EmbedDim, Config.Hidden);
}

Var Code2SeqClassifier::codeVector(const MethodSample &Sample) const {
  std::vector<SeqPathContext> Contexts =
      extractSeqPathContexts(Sample, SubtokenVocab, NodeVocab, Config);
  if (Contexts.empty())
    return constant(Tensor::zeros(Config.Hidden));
  std::vector<Var> Vecs;
  for (const SeqPathContext &Context : Contexts)
    Vecs.push_back(embedContext(Context));
  return meanPool(Vecs);
}

Var Code2SeqClassifier::loss(const MethodSample &Sample) const {
  LIGER_CHECK(Sample.ClassId >= 0, "classification sample without label");
  return softmaxCrossEntropy(Head.apply(codeVector(Sample)),
                             static_cast<size_t>(Sample.ClassId));
}

int Code2SeqClassifier::predict(const MethodSample &Sample) const {
  return static_cast<int>(argmax(Head.apply(codeVector(Sample))->Value));
}
