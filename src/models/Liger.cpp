//===-- models/Liger.cpp - The LIGER blended model -------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Liger.h"

#include "lang/AstTree.h"

using namespace liger;

//===----------------------------------------------------------------------===//
// LigerEncoder
//===----------------------------------------------------------------------===//

LigerEncoder::LigerEncoder(ParamStore &Store, const Vocabulary &JointVocab,
                           const LigerConfig &Cfg, Rng &R)
    : Config(Cfg), Vocab(JointVocab),
      Embed(Store, "liger.embed", JointVocab.size(), Cfg.EmbedDim, R),
      StmtTree(Store, "liger.stmt_tree", Cfg.EmbedDim, Cfg.Hidden, R),
      F1(Store, "liger.f1", Cfg.Cell, Cfg.EmbedDim, Cfg.EmbedDim, R),
      F2(Store, "liger.f2", Cfg.Cell, Cfg.EmbedDim, Cfg.Hidden, R),
      A1(Store, "liger.a1", Cfg.Hidden, Cfg.Hidden, Cfg.AttnHidden, R),
      F3(Store, "liger.f3", Cfg.Cell, Cfg.Hidden, Cfg.Hidden, R) {
  LIGER_CHECK(Cfg.UseStaticFeature || Cfg.UseDynamicFeature,
              "at least one feature dimension must be enabled");
}

Var LigerEncoder::lookupToken(const std::string &Token,
                              EncodeContext &Ctx) const {
  auto It = Ctx.TokenCache.find(Token);
  if (It != Ctx.TokenCache.end())
    return It->second;
  Var E = Embed.lookup(Vocab.lookup(Token));
  Ctx.TokenCache.emplace(Token, E);
  return E;
}

Var LigerEncoder::embedStatement(const Stmt *S, EncodeContext &Ctx) const {
  auto It = Ctx.StmtCache.find(S);
  if (It != Ctx.StmtCache.end())
    return It->second;
  AstTree Tree = buildStmtHeadTree(S);
  Var H = StmtTree.embed(
      Tree, [&](const std::string &Label) { return lookupToken(Label, Ctx); });
  Ctx.StmtCache.emplace(S, H);
  return H;
}

Var LigerEncoder::embedState(const ProgramState &State,
                             EncodeContext &Ctx) const {
  // Equal variable valuations embed identically; key the state by its
  // full token signature so repeated states (loop iterations, shared
  // prefixes across executions) cost one f1/f2 run per encode.
  std::string Key;
  std::vector<std::vector<std::string>> ValueTokens;
  ValueTokens.reserve(State.Values.size());
  for (const Value &V : State.Values) {
    if (V.isArray() || V.isStruct()) {
      std::vector<std::string> Tokens = valueTokens(V);
      if (Tokens.size() > Config.MaxFlattenedValues)
        Tokens.resize(Config.MaxFlattenedValues);
      ValueTokens.push_back(std::move(Tokens));
    } else {
      ValueTokens.push_back({valueToken(V)});
    }
    for (const std::string &Token : ValueTokens.back()) {
      Key += Token;
      Key += '\x1f'; // token separator
    }
    Key += '\x1e'; // value separator (tokens can't merge across values)
  }
  auto It = Ctx.StateCache.find(Key);
  if (It != Ctx.StateCache.end())
    return It->second;

  // Per-variable embeddings h'_{v}: primitives embed directly; object
  // (array/struct) values run f1 over their flattened attr sequence
  // (Eq. 3).
  std::vector<Var> VarEmbeds;
  VarEmbeds.reserve(State.Values.size());
  for (size_t I = 0; I < State.Values.size(); ++I) {
    const Value &V = State.Values[I];
    if (V.isArray() || V.isStruct()) {
      std::vector<Var> Inputs;
      Inputs.reserve(ValueTokens[I].size());
      for (const std::string &Token : ValueTokens[I])
        Inputs.push_back(lookupToken(Token, Ctx));
      VarEmbeds.push_back(F1.run(Inputs).back().H);
    } else {
      VarEmbeds.push_back(lookupToken(ValueTokens[I][0], Ctx));
    }
  }
  // f2 folds variable embeddings (fixed variable order) into the state
  // vector.
  Var H = VarEmbeds.empty() ? constant(Tensor::zeros(Config.Hidden))
                            : F2.run(VarEmbeds).back().H;
  Ctx.StateCache.emplace(std::move(Key), H);
  return H;
}

Var LigerEncoder::encodePath(const BlendedTrace &Path, EncodeContext &Ctx,
                             std::vector<Var> &StepMemory) const {
  size_t Steps =
      std::min(Path.Symbolic.Steps.size(), Config.MaxStepsPerTrace);
  size_t NumConcrete = Config.UseDynamicFeature
                           ? std::min(Path.Concrete.size(),
                                      Config.MaxConcretePerPath)
                           : 0;

  RecState Trace = F3.initial();
  Var PrevH = Trace.H; // H^e_{i_0} = 0
  for (size_t J = 0; J < Steps; ++J) {
    // Collect the feature vectors of this ordered pair; the statement
    // vector (when enabled) is component 0.
    std::vector<Var> Components;
    if (Config.UseStaticFeature)
      Components.push_back(
          embedStatement(Path.Symbolic.Steps[J].Statement, Ctx));
    for (size_t T = 0; T < NumConcrete; ++T) {
      const StateTrace &States = Path.Concrete[T];
      if (J < States.States.size() && !States.States[J].Values.empty())
        Components.push_back(embedState(States.States[J], Ctx));
    }
    if (Components.empty())
      continue; // dynamic-only config with a state-less step

    Var Fused;
    bool UniformFirstStep = J == 0; // paper: even weights at step one
    if (Components.size() == 1) {
      Fused = Components[0];
      if (Ctx.Stats && Config.UseStaticFeature) {
        Ctx.Stats->StaticWeightSum += 1.0;
        ++Ctx.Stats->FusionSteps;
      }
    } else if (!Config.UseFusionAttention || UniformFirstStep) {
      Fused = meanPool(Components);
      if (Ctx.Stats && Config.UseStaticFeature) {
        Ctx.Stats->StaticWeightSum +=
            1.0 / static_cast<double>(Components.size());
        ++Ctx.Stats->FusionSteps;
      }
    } else {
      // Components change every step, so the key-side projections are
      // prepared fresh here; the win is the fused two-node step (key
      // projection + attention op) replacing the per-pair score chain.
      AttentionScorer::Memory Mem = A1.prepare(Components);
      AttentionScorer::Result Fusion = A1.contextOf(PrevH, Mem);
      Fused = Fusion.Context;
      if (Ctx.Stats && Config.UseStaticFeature) {
        Ctx.Stats->StaticWeightSum +=
            static_cast<double>(Fusion.Weights[0]);
        ++Ctx.Stats->FusionSteps;
      }
    }

    Trace = F3.step(Fused, Trace);
    PrevH = Trace.H;
    StepMemory.push_back(Trace.H);
  }
  return Trace.H; // H^e_i
}

LigerEncoding LigerEncoder::encode(const MethodTraces &Traces,
                                   FusionStats *Stats) const {
  EncodeContext Ctx;
  Ctx.Stats = Stats;

  std::vector<Var> PathEmbeddings;
  std::vector<Var> StepMemory;
  for (const BlendedTrace &Path : Traces.Paths) {
    if (!Config.UseDynamicFeature && Path.Symbolic.Steps.empty())
      continue;
    if (Config.UseDynamicFeature && !Config.UseStaticFeature &&
        Path.Concrete.empty())
      continue;
    PathEmbeddings.push_back(encodePath(Path, Ctx, StepMemory));
  }

  LigerEncoding Out;
  if (PathEmbeddings.empty()) {
    Out.ProgramEmbedding = constant(Tensor::zeros(Config.Hidden));
    Out.StepMemory.push_back(Out.ProgramEmbedding);
    return Out;
  }
  Out.ProgramEmbedding = Config.MeanPoolPrograms
                             ? meanPool(PathEmbeddings)
                             : maxPool(PathEmbeddings);
  if (StepMemory.empty())
    StepMemory.push_back(Out.ProgramEmbedding);
  Out.StepMemory = std::move(StepMemory);
  return Out;
}

//===----------------------------------------------------------------------===//
// LigerNamePredictor
//===----------------------------------------------------------------------===//

namespace {

SeqDecoderConfig decoderConfig(const LigerConfig &Cfg,
                               size_t TargetVocabSize) {
  SeqDecoderConfig DC;
  DC.TargetVocabSize = TargetVocabSize;
  DC.EmbedDim = Cfg.EmbedDim;
  DC.Hidden = Cfg.Hidden;
  DC.AttnHidden = Cfg.AttnHidden;
  DC.MemoryDim = Cfg.Hidden;
  DC.InitDim = Cfg.Hidden;
  DC.Cell = Cfg.Cell;
  return DC;
}

} // namespace

LigerNamePredictor::LigerNamePredictor(const Vocabulary &JointVocab,
                                       const Vocabulary &Target,
                                       const LigerConfig &Config,
                                       uint64_t Seed)
    : InitRng(Seed), Encoder(Store, JointVocab, Config, InitRng),
      Decoder(Store, "liger.dec",
              decoderConfig(Config, static_cast<size_t>(Target.size())),
              InitRng),
      TargetVocab(Target) {}

Var LigerNamePredictor::loss(const MethodSample &Sample) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  std::vector<int> Targets =
      nameTargetIds(Sample.NameSubtokens, TargetVocab);
  return Decoder.loss(Enc.ProgramEmbedding, Enc.StepMemory, Targets);
}

std::vector<std::string>
LigerNamePredictor::predict(const MethodSample &Sample,
                            FusionStats *Stats) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces, Stats);
  std::vector<int> Ids =
      Decoder.decodeGreedy(Enc.ProgramEmbedding, Enc.StepMemory,
                           Encoder.config().MaxDecodeLen);
  return idsToSubtokens(Ids, TargetVocab);
}

//===----------------------------------------------------------------------===//
// LigerClassifier
//===----------------------------------------------------------------------===//

LigerClassifier::LigerClassifier(const Vocabulary &JointVocab,
                                 size_t NumClasses, const LigerConfig &Config,
                                 uint64_t Seed)
    : InitRng(Seed), Encoder(Store, JointVocab, Config, InitRng),
      Head(Store, "liger.head", Config.Hidden, NumClasses, InitRng) {}

Var LigerClassifier::loss(const MethodSample &Sample) const {
  LIGER_CHECK(Sample.ClassId >= 0, "classification sample without label");
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  return softmaxCrossEntropy(Head.apply(Enc.ProgramEmbedding),
                             static_cast<size_t>(Sample.ClassId));
}

int LigerClassifier::predict(const MethodSample &Sample) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  return static_cast<int>(argmax(Head.apply(Enc.ProgramEmbedding)->Value));
}

Tensor LigerClassifier::embed(const MethodTraces &Traces) const {
  return Encoder.encode(Traces).ProgramEmbedding->Value;
}
