//===-- models/Liger.cpp - The LIGER blended model -------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Liger.h"

#include "lang/AstTree.h"

using namespace liger;

//===----------------------------------------------------------------------===//
// LigerEncoder
//===----------------------------------------------------------------------===//

LigerEncoder::LigerEncoder(ParamStore &Store, const Vocabulary &JointVocab,
                           const LigerConfig &Cfg, Rng &R)
    : Config(Cfg), Vocab(JointVocab),
      Embed(Store, "liger.embed", JointVocab.size(), Cfg.EmbedDim, R),
      StmtTree(Store, "liger.stmt_tree", Cfg.EmbedDim, Cfg.Hidden, R),
      F1(Store, "liger.f1", Cfg.Cell, Cfg.EmbedDim, Cfg.EmbedDim, R),
      F2(Store, "liger.f2", Cfg.Cell, Cfg.EmbedDim, Cfg.Hidden, R),
      A1(Store, "liger.a1", Cfg.Hidden, Cfg.Hidden, Cfg.AttnHidden, R),
      F3(Store, "liger.f3", Cfg.Cell, Cfg.Hidden, Cfg.Hidden, R) {
  LIGER_CHECK(Cfg.UseStaticFeature || Cfg.UseDynamicFeature,
              "at least one feature dimension must be enabled");
}

Var LigerEncoder::lookupToken(const std::string &Token,
                              EncodeContext &Ctx) const {
  auto It = Ctx.TokenCache.find(Token);
  if (It != Ctx.TokenCache.end())
    return It->second;
  Var E = Embed.lookup(Vocab.lookup(Token));
  Ctx.TokenCache.emplace(Token, E);
  return E;
}

Var LigerEncoder::embedStatement(const Stmt *S, EncodeContext &Ctx) const {
  auto It = Ctx.StmtCache.find(S);
  if (It != Ctx.StmtCache.end())
    return It->second;
  AstTree Tree = buildStmtHeadTree(S);
  Var H = StmtTree.embed(
      Tree, [&](const std::string &Label) { return lookupToken(Label, Ctx); });
  Ctx.StmtCache.emplace(S, H);
  return H;
}

std::string LigerEncoder::stateKey(
    const ProgramState &State,
    std::vector<std::vector<std::string>> &ValueTokens) const {
  std::string Key;
  ValueTokens.reserve(State.Values.size());
  for (const Value &V : State.Values) {
    bool IsObject = V.isArray() || V.isStruct();
    if (IsObject) {
      std::vector<std::string> Tokens = valueTokens(V);
      if (Tokens.size() > Config.MaxFlattenedValues)
        Tokens.resize(Config.MaxFlattenedValues);
      ValueTokens.push_back(std::move(Tokens));
    } else {
      ValueTokens.push_back({valueToken(V)});
    }
    // The kind tag keeps the key injective: a primitive embeds its
    // token directly while an object runs f1 over its flattening, so
    // int 5 and the one-element array [5] — identical token streams —
    // must not share an entry.
    Key += IsObject ? 'O' : 'P';
    for (const std::string &Token : ValueTokens.back()) {
      Key += Token;
      Key += '\x1f'; // token separator
    }
    Key += '\x1e'; // value separator (tokens can't merge across values)
  }
  return Key;
}

Var LigerEncoder::embedState(const ProgramState &State,
                             EncodeContext &Ctx) const {
  // Equal variable valuations embed identically; key the state by its
  // full token signature so repeated states (loop iterations, shared
  // prefixes across executions) cost one f1/f2 run per encode.
  std::vector<std::vector<std::string>> ValueTokens;
  std::string Key = stateKey(State, ValueTokens);
  auto It = Ctx.StateCache.find(Key);
  if (It != Ctx.StateCache.end())
    return It->second;

  // Per-variable embeddings h'_{v}: primitives embed directly; object
  // (array/struct) values run f1 over their flattened attr sequence
  // (Eq. 3).
  std::vector<Var> VarEmbeds;
  VarEmbeds.reserve(State.Values.size());
  for (size_t I = 0; I < State.Values.size(); ++I) {
    const Value &V = State.Values[I];
    if (V.isArray() || V.isStruct()) {
      std::vector<Var> Inputs;
      Inputs.reserve(ValueTokens[I].size());
      for (const std::string &Token : ValueTokens[I])
        Inputs.push_back(lookupToken(Token, Ctx));
      VarEmbeds.push_back(F1.run(Inputs).back().H);
    } else {
      VarEmbeds.push_back(lookupToken(ValueTokens[I][0], Ctx));
    }
  }
  // f2 folds variable embeddings (fixed variable order) into the state
  // vector.
  Var H = VarEmbeds.empty() ? constant(Tensor::zeros(Config.Hidden))
                            : F2.run(VarEmbeds).back().H;
  Ctx.StateCache.emplace(std::move(Key), H);
  return H;
}

void LigerEncoder::embedStatesBatch(
    std::vector<StateEmbedRequest> &Requests) const {
  // f1 lanes: one per flattened object value across every request, in
  // request order — the order embedState walks them one state at a
  // time — so every object value of every state shares the lockstep
  // f1 recurrence.
  std::vector<std::vector<Var>> F1Seqs;
  for (StateEmbedRequest &Rq : Requests) {
    for (size_t I = 0; I < Rq.State->Values.size(); ++I) {
      const Value &V = Rq.State->Values[I];
      if (!V.isArray() && !V.isStruct())
        continue;
      std::vector<Var> Inputs;
      Inputs.reserve(Rq.ValueTokens[I].size());
      for (const std::string &Token : Rq.ValueTokens[I])
        Inputs.push_back(lookupToken(Token, *Rq.Ctx));
      F1Seqs.push_back(std::move(Inputs));
    }
  }
  std::vector<RecState> F1Out = runCellLockstep(F1, F1Seqs);

  // f2 lanes: each request's variable sequence (primitives embed
  // directly, object values take their f1 final state).
  std::vector<std::vector<Var>> F2Seqs;
  std::vector<size_t> F2Req;
  size_t F1Lane = 0;
  for (size_t R = 0; R < Requests.size(); ++R) {
    StateEmbedRequest &Rq = Requests[R];
    std::vector<Var> VarEmbeds;
    VarEmbeds.reserve(Rq.State->Values.size());
    for (size_t I = 0; I < Rq.State->Values.size(); ++I) {
      const Value &V = Rq.State->Values[I];
      if (V.isArray() || V.isStruct())
        VarEmbeds.push_back(F1Out[F1Lane++].H);
      else
        VarEmbeds.push_back(lookupToken(Rq.ValueTokens[I][0], *Rq.Ctx));
    }
    if (VarEmbeds.empty()) {
      Rq.Cache->emplace(std::move(Rq.Key),
                        constant(Tensor::zeros(Config.Hidden)));
      continue;
    }
    F2Req.push_back(R);
    F2Seqs.push_back(std::move(VarEmbeds));
  }
  std::vector<RecState> F2Out = runCellLockstep(F2, F2Seqs);
  for (size_t K = 0; K < F2Seqs.size(); ++K) {
    StateEmbedRequest &Rq = Requests[F2Req[K]];
    Rq.Cache->emplace(std::move(Rq.Key), F2Out[K].H);
  }
}

Var LigerEncoder::fuseStep(const BlendedTrace &Path, size_t J,
                           size_t NumConcrete, Var PrevH, EncodeContext &Ctx,
                           const std::vector<Var> *StateComps) const {
  // Collect the feature vectors of this ordered pair; the statement
  // vector (when enabled) is component 0.
  std::vector<Var> Components;
  if (Config.UseStaticFeature)
    Components.push_back(
        embedStatement(Path.Symbolic.Steps[J].Statement, Ctx));
  if (StateComps) {
    Components.insert(Components.end(), StateComps->begin(),
                      StateComps->end());
  } else {
    for (size_t T = 0; T < NumConcrete; ++T) {
      const StateTrace &States = Path.Concrete[T];
      if (J < States.States.size() && !States.States[J].Values.empty())
        Components.push_back(embedState(States.States[J], Ctx));
    }
  }
  if (Components.empty())
    return nullptr; // dynamic-only config with a state-less step

  bool UniformFirstStep = J == 0; // paper: even weights at step one
  if (Components.size() == 1) {
    if (Ctx.Stats && Config.UseStaticFeature) {
      Ctx.Stats->StaticWeightSum += 1.0;
      ++Ctx.Stats->FusionSteps;
    }
    return Components[0];
  }
  if (!Config.UseFusionAttention || UniformFirstStep) {
    Var Fused = meanPool(Components);
    if (Ctx.Stats && Config.UseStaticFeature) {
      Ctx.Stats->StaticWeightSum +=
          1.0 / static_cast<double>(Components.size());
      ++Ctx.Stats->FusionSteps;
    }
    return Fused;
  }
  // Components change every step, so the key-side projections are
  // prepared fresh here; the win is the fused two-node step (key
  // projection + attention op) replacing the per-pair score chain.
  AttentionScorer::Memory Mem = A1.prepare(Components);
  AttentionScorer::Result Fusion = A1.contextOf(PrevH, Mem);
  if (Ctx.Stats && Config.UseStaticFeature) {
    Ctx.Stats->StaticWeightSum += static_cast<double>(Fusion.Weights[0]);
    ++Ctx.Stats->FusionSteps;
  }
  return Fusion.Context;
}

Var LigerEncoder::encodePath(const BlendedTrace &Path, EncodeContext &Ctx,
                             std::vector<Var> &StepMemory) const {
  size_t Steps =
      std::min(Path.Symbolic.Steps.size(), Config.MaxStepsPerTrace);
  size_t NumConcrete = Config.UseDynamicFeature
                           ? std::min(Path.Concrete.size(),
                                      Config.MaxConcretePerPath)
                           : 0;

  RecState Trace = F3.initial();
  Var PrevH = Trace.H; // H^e_{i_0} = 0
  for (size_t J = 0; J < Steps; ++J) {
    Var Fused = fuseStep(Path, J, NumConcrete, PrevH, Ctx);
    if (!Fused)
      continue;
    Trace = F3.step(Fused, Trace);
    PrevH = Trace.H;
    StepMemory.push_back(Trace.H);
  }
  return Trace.H; // H^e_i
}

LigerEncoding LigerEncoder::encode(const MethodTraces &Traces,
                                   FusionStats *Stats) const {
  EncodeContext Ctx;
  Ctx.Stats = Stats;

  std::vector<Var> PathEmbeddings;
  std::vector<Var> StepMemory;
  for (const BlendedTrace &Path : Traces.Paths) {
    if (!Config.UseDynamicFeature && Path.Symbolic.Steps.empty())
      continue;
    if (Config.UseDynamicFeature && !Config.UseStaticFeature &&
        Path.Concrete.empty())
      continue;
    PathEmbeddings.push_back(encodePath(Path, Ctx, StepMemory));
  }

  LigerEncoding Out;
  if (PathEmbeddings.empty()) {
    Out.ProgramEmbedding = constant(Tensor::zeros(Config.Hidden));
    Out.StepMemory.push_back(Out.ProgramEmbedding);
    return Out;
  }
  Out.ProgramEmbedding = Config.MeanPoolPrograms
                             ? meanPool(PathEmbeddings)
                             : maxPool(PathEmbeddings);
  if (StepMemory.empty())
    StepMemory.push_back(Out.ProgramEmbedding);
  Out.StepMemory = std::move(StepMemory);
  return Out;
}

std::vector<LigerEncoding> LigerEncoder::encodeBatch(
    const std::vector<const MethodTraces *> &Batch) const {
  size_t B = Batch.size();
  // Statement and token caches never cross samples. State embeddings
  // DO share one batch-scoped cache by default
  // (crossSampleStateCacheEnabled()): the kind-tagged state key is
  // injective and f1/f2 are deterministic functions of the key's token
  // sequences and the parameters, so a state revisited by another
  // sample reuses a node with bitwise-identical value — per-sample
  // loss values are unchanged. Gradient flow through a shared node
  // merges where per-sample caches would duplicate it, which only the
  // (already order-sensitive) batched gradient accumulation can
  // observe.
  std::vector<EncodeContext> Ctxs(B);
  std::unordered_map<std::string, Var> BatchStateCache;
  const bool SharedStates = crossSampleStateCacheEnabled();

  // One lane per eligible blended trace, in sample-major order.
  struct Lane {
    size_t Sample;
    const BlendedTrace *Path;
    size_t Steps;
    size_t NumConcrete;
    RecState Trace;
    Var PrevH;
    std::vector<Var> Memory;
  };
  std::vector<Lane> Lanes;
  size_t MaxSteps = 0;
  for (size_t S = 0; S < B; ++S) {
    for (const BlendedTrace &Path : Batch[S]->Paths) {
      if (!Config.UseDynamicFeature && Path.Symbolic.Steps.empty())
        continue;
      if (Config.UseDynamicFeature && !Config.UseStaticFeature &&
          Path.Concrete.empty())
        continue;
      Lane L;
      L.Sample = S;
      L.Path = &Path;
      L.Steps =
          std::min(Path.Symbolic.Steps.size(), Config.MaxStepsPerTrace);
      L.NumConcrete = Config.UseDynamicFeature
                          ? std::min(Path.Concrete.size(),
                                     Config.MaxConcretePerPath)
                          : 0;
      L.Trace = F3.initial();
      L.PrevH = L.Trace.H;
      MaxSteps = std::max(MaxSteps, L.Steps);
      Lanes.push_back(std::move(L));
    }
  }

  // Timestep-major lockstep: each round fuses every live lane's step-J
  // components per lane, then advances all lanes with a fused input
  // through one batched F3 step. With batching toggled off stepBatch
  // degrades to per-lane step() calls in the same lane order — the
  // reference schedule the pinned toggle-equivalence tests compare
  // against.
  struct PendingSlot {
    size_t LaneIdx;
    size_t CompIdx;
    std::unordered_map<std::string, Var> *Cache;
    std::string Key;
  };
  std::vector<std::vector<Var>> LaneStates(Lanes.size());
  std::vector<StateEmbedRequest> Requests;
  std::vector<PendingSlot> Pending;
  std::vector<size_t> Active;
  std::vector<Var> Ins;
  std::vector<RecState> PrevStates;
  for (size_t J = 0; J < MaxSteps; ++J) {
    // Resolve the round's state components up front: cached states
    // fill their lane slots directly, the rest are gathered (deduped
    // per sample) and embedded through lockstep-batched f1/f2 runs,
    // then patched into the slots they came from.
    for (std::vector<Var> &Slots : LaneStates)
      Slots.clear();
    Requests.clear();
    Pending.clear();
    for (size_t Li = 0; Li < Lanes.size(); ++Li) {
      Lane &L = Lanes[Li];
      if (J >= L.Steps)
        continue;
      EncodeContext &Ctx = Ctxs[L.Sample];
      for (size_t T = 0; T < L.NumConcrete; ++T) {
        const StateTrace &States = L.Path->Concrete[T];
        if (J >= States.States.size() || States.States[J].Values.empty())
          continue;
        StateEmbedRequest Rq;
        Rq.Ctx = &Ctx;
        Rq.State = &States.States[J];
        Rq.Cache = SharedStates ? &BatchStateCache : &Ctx.StateCache;
        Rq.Key = stateKey(*Rq.State, Rq.ValueTokens);
        auto It = Rq.Cache->find(Rq.Key);
        if (It != Rq.Cache->end()) {
          LaneStates[Li].push_back(It->second);
          continue;
        }
        LaneStates[Li].push_back(nullptr);
        Pending.push_back(
            {Li, LaneStates[Li].size() - 1, Rq.Cache, Rq.Key});
        bool Queued = false;
        for (const StateEmbedRequest &Prev : Requests)
          Queued |= Prev.Cache == Rq.Cache && Prev.Key == Rq.Key;
        if (!Queued)
          Requests.push_back(std::move(Rq));
      }
    }
    if (!Requests.empty())
      embedStatesBatch(Requests);
    for (PendingSlot &Slot : Pending)
      LaneStates[Slot.LaneIdx][Slot.CompIdx] = Slot.Cache->at(Slot.Key);

    Active.clear();
    Ins.clear();
    PrevStates.clear();
    for (size_t Li = 0; Li < Lanes.size(); ++Li) {
      Lane &L = Lanes[Li];
      if (J >= L.Steps)
        continue;
      Var Fused = fuseStep(*L.Path, J, L.NumConcrete, L.PrevH,
                           Ctxs[L.Sample], &LaneStates[Li]);
      if (!Fused)
        continue;
      Active.push_back(Li);
      Ins.push_back(Fused);
      PrevStates.push_back(L.Trace);
    }
    if (Active.empty())
      continue;
    std::vector<RecState> Next = F3.stepBatch(Ins, PrevStates);
    for (size_t K = 0; K < Active.size(); ++K) {
      Lane &L = Lanes[Active[K]];
      L.Trace = Next[K];
      L.PrevH = Next[K].H;
      L.Memory.push_back(Next[K].H);
    }
  }

  // Per-sample assembly in encode()'s path-major order.
  std::vector<LigerEncoding> Out(B);
  std::vector<std::vector<Var>> PathEmbeds(B);
  for (Lane &L : Lanes) {
    PathEmbeds[L.Sample].push_back(L.Trace.H);
    Out[L.Sample].StepMemory.insert(Out[L.Sample].StepMemory.end(),
                                    L.Memory.begin(), L.Memory.end());
  }
  for (size_t S = 0; S < B; ++S) {
    if (PathEmbeds[S].empty()) {
      Out[S].ProgramEmbedding = constant(Tensor::zeros(Config.Hidden));
      Out[S].StepMemory.assign(1, Out[S].ProgramEmbedding);
      continue;
    }
    Out[S].ProgramEmbedding = Config.MeanPoolPrograms
                                  ? meanPool(PathEmbeds[S])
                                  : maxPool(PathEmbeds[S]);
    if (Out[S].StepMemory.empty())
      Out[S].StepMemory.push_back(Out[S].ProgramEmbedding);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// LigerNamePredictor
//===----------------------------------------------------------------------===//

namespace {

SeqDecoderConfig decoderConfig(const LigerConfig &Cfg,
                               size_t TargetVocabSize) {
  SeqDecoderConfig DC;
  DC.TargetVocabSize = TargetVocabSize;
  DC.EmbedDim = Cfg.EmbedDim;
  DC.Hidden = Cfg.Hidden;
  DC.AttnHidden = Cfg.AttnHidden;
  DC.MemoryDim = Cfg.Hidden;
  DC.InitDim = Cfg.Hidden;
  DC.Cell = Cfg.Cell;
  return DC;
}

} // namespace

LigerNamePredictor::LigerNamePredictor(const Vocabulary &JointVocab,
                                       const Vocabulary &Target,
                                       const LigerConfig &Config,
                                       uint64_t Seed)
    : InitRng(Seed), Encoder(Store, JointVocab, Config, InitRng),
      Decoder(Store, "liger.dec",
              decoderConfig(Config, static_cast<size_t>(Target.size())),
              InitRng),
      TargetVocab(Target) {}

Var LigerNamePredictor::loss(const MethodSample &Sample) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  std::vector<int> Targets =
      nameTargetIds(Sample.NameSubtokens, TargetVocab);
  return Decoder.loss(Enc.ProgramEmbedding, Enc.StepMemory, Targets);
}

std::vector<Var> LigerNamePredictor::lossBatch(
    const std::vector<const MethodSample *> &Samples) const {
  std::vector<Var> Embs;
  std::vector<std::vector<Var>> Mems;
  std::vector<std::vector<int>> Targets;
  Embs.reserve(Samples.size());
  Mems.reserve(Samples.size());
  Targets.reserve(Samples.size());
  std::vector<const MethodTraces *> Traces;
  Traces.reserve(Samples.size());
  for (const MethodSample *Sample : Samples) {
    Traces.push_back(&Sample->Traces);
    Targets.push_back(nameTargetIds(Sample->NameSubtokens, TargetVocab));
  }
  // Lockstep-batched encode: all samples' blended traces advance their
  // F3 recurrences together, so same-timestep lanes share one batched
  // cell step exactly as the decoder loop below does.
  std::vector<LigerEncoding> Encs = Encoder.encodeBatch(Traces);
  for (LigerEncoding &Enc : Encs) {
    Embs.push_back(Enc.ProgramEmbedding);
    Mems.push_back(std::move(Enc.StepMemory));
  }
  return Decoder.lossBatch(Embs, Mems, Targets);
}

std::vector<std::string>
LigerNamePredictor::predict(const MethodSample &Sample,
                            FusionStats *Stats) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces, Stats);
  std::vector<int> Ids =
      Decoder.decodeGreedy(Enc.ProgramEmbedding, Enc.StepMemory,
                           Encoder.config().MaxDecodeLen);
  return idsToSubtokens(Ids, TargetVocab);
}

//===----------------------------------------------------------------------===//
// LigerClassifier
//===----------------------------------------------------------------------===//

LigerClassifier::LigerClassifier(const Vocabulary &JointVocab,
                                 size_t NumClasses, const LigerConfig &Config,
                                 uint64_t Seed)
    : InitRng(Seed), Encoder(Store, JointVocab, Config, InitRng),
      Head(Store, "liger.head", Config.Hidden, NumClasses, InitRng) {}

Var LigerClassifier::loss(const MethodSample &Sample) const {
  LIGER_CHECK(Sample.ClassId >= 0, "classification sample without label");
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  return softmaxCrossEntropy(Head.apply(Enc.ProgramEmbedding),
                             static_cast<size_t>(Sample.ClassId));
}

int LigerClassifier::predict(const MethodSample &Sample) const {
  LigerEncoding Enc = Encoder.encode(Sample.Traces);
  return static_cast<int>(argmax(Head.apply(Enc.ProgramEmbedding)->Value));
}

Tensor LigerClassifier::embed(const MethodTraces &Traces) const {
  return Encoder.encode(Traces).ProgramEmbedding->Value;
}
