//===-- models/Decoder.h - Attention sequence decoder -----------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The attention decoder shared by LIGER, DYPRO, and code2seq (§5.1.2):
/// a recurrent cell initialized from the program embedding that emits
/// method-name sub-tokens, attending at each step over a memory of
/// encoder vectors (for LIGER: every step embedding H^e_{i_j} of every
/// blended trace) via the feedforward score network a2.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_DECODER_H
#define LIGER_MODELS_DECODER_H

#include "nn/Module.h"
#include "trace/Vocabulary.h"

namespace liger {

/// Decoder configuration.
struct SeqDecoderConfig {
  size_t TargetVocabSize = 0;
  size_t EmbedDim = 32;
  size_t Hidden = 32;
  size_t AttnHidden = 32;
  size_t MemoryDim = 32; ///< Dimension of the encoder memory vectors.
  size_t InitDim = 32;   ///< Dimension of the program embedding.
  CellKind Cell = CellKind::Gru;
};

/// Attention decoder over a memory of encoder vectors.
class SeqDecoder {
public:
  SeqDecoder() = default;
  SeqDecoder(ParamStore &Store, const std::string &Name,
             const SeqDecoderConfig &Config, Rng &R);

  /// Teacher-forced sequence loss. \p Memory must be non-empty;
  /// \p TargetIds must end with Eos.
  Var loss(const Var &ProgramEmbedding, const std::vector<Var> &Memory,
           const std::vector<int> &TargetIds) const;

  /// Teacher-forced losses for B samples decoded in lockstep: the
  /// batching scheduler (lockstepSchedule) groups the samples still
  /// active at each timestep into one batched cell step, so
  /// same-timestep samples share a matmul. Per-sample loss values are
  /// bitwise-identical to loss() on each sample; the graph is always
  /// built timestep-major, so flipping batchedCellsEnabled() only
  /// swaps the batch op's internals (BatchedLossEquivalenceTest pins
  /// both). Returns each sample's mean loss.
  std::vector<Var>
  lossBatch(const std::vector<Var> &ProgramEmbeddings,
            const std::vector<std::vector<Var>> &Memories,
            const std::vector<std::vector<int>> &TargetIds) const;

  /// Greedy decoding until Eos or \p MaxLen tokens. Returned ids do not
  /// include Eos.
  std::vector<int> decodeGreedy(const Var &ProgramEmbedding,
                                const std::vector<Var> &Memory,
                                size_t MaxLen) const;

  /// Beam-search decoding with \p Width hypotheses: every step scores
  /// the whole live hypothesis set through one multi-query attention
  /// node and one batched cell step (the decoder-side consumer of the
  /// batching scheduler). Width 1 reproduces decodeGreedy exactly.
  /// Returned ids do not include Eos.
  std::vector<int> decodeBeam(const Var &ProgramEmbedding,
                              const std::vector<Var> &Memory, size_t MaxLen,
                              size_t Width) const;

private:
  /// Shared per-step computation: emits logits for the next token,
  /// attending over a prepared memory (key-side projections cached
  /// once per decode by AttentionScorer::prepare).
  Var stepLogits(const Var &PrevEmbed, RecState &State,
                 const AttentionScorer::Memory &Mem) const;

  SeqDecoderConfig Config;
  EmbeddingTable TargetEmbed;
  Linear InitProj;  ///< Program embedding -> initial hidden state.
  RecurrentCell Cell;
  AttentionScorer Attn;
  Linear OutProj;   ///< [hidden ⊕ context] -> target logits.
};

} // namespace liger

#endif // LIGER_MODELS_DECODER_H
