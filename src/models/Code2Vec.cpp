//===-- models/Code2Vec.cpp - code2vec static baseline ---------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Code2Vec.h"

#include "lang/AstTree.h"
#include "support/StringUtils.h"

using namespace liger;

namespace {

uint64_t nameSeed(const MethodSample &Sample) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Sample.Fn->Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

std::vector<AstPath> samplePaths(const MethodSample &Sample,
                                 const Code2VecConfig &Config) {
  AstTree Tree = buildFunctionTree(*Sample.Fn);
  return extractAstPaths(Tree, Config.MaxContexts, Config.MaxPathLength,
                         Config.MaxPathWidth, nameSeed(Sample));
}

} // namespace

std::vector<PathContextIds>
liger::extractPathContexts(const MethodSample &Sample,
                           const Vocabulary &TokenVocab,
                           const Vocabulary &PathVocab,
                           const Code2VecConfig &Config) {
  std::vector<PathContextIds> Out;
  for (const AstPath &Path : samplePaths(Sample, Config)) {
    PathContextIds Ids;
    Ids.Source = TokenVocab.lookup(Path.SourceLeaf);
    Ids.Path = PathVocab.lookup(Path.interiorKey());
    Ids.Target = TokenVocab.lookup(Path.TargetLeaf);
    Out.push_back(Ids);
  }
  return Out;
}

void liger::addPathContextsToVocabulary(const MethodSample &Sample,
                                        Vocabulary &TokenVocab,
                                        Vocabulary &PathVocab,
                                        const Code2VecConfig &Config) {
  for (const AstPath &Path : samplePaths(Sample, Config)) {
    TokenVocab.add(Path.SourceLeaf);
    TokenVocab.add(Path.TargetLeaf);
    PathVocab.add(Path.interiorKey());
  }
}

//===----------------------------------------------------------------------===//
// Shared encoder plumbing
//===----------------------------------------------------------------------===//

namespace {

/// Builds the attended code vector from path contexts. Empty context
/// sets yield a zero vector.
Var buildCodeVector(const std::vector<PathContextIds> &Contexts,
                    const EmbeddingTable &TokenEmbed,
                    const EmbeddingTable &PathEmbed,
                    const Linear &ContextProj, const Var &AttnVector,
                    size_t CodeDim) {
  if (Contexts.empty())
    return constant(Tensor::zeros(CodeDim));
  std::vector<Var> ContextVecs;
  std::vector<Var> Scores;
  ContextVecs.reserve(Contexts.size());
  for (const PathContextIds &Ids : Contexts) {
    Var C = tanhV(ContextProj.apply(
        concat(concat(TokenEmbed.lookup(Ids.Source),
                      PathEmbed.lookup(Ids.Path)),
               TokenEmbed.lookup(Ids.Target))));
    ContextVecs.push_back(C);
    Scores.push_back(dot(AttnVector, C));
  }
  Var Weights = softmax(stackScalars(Scores));
  return weightedCombine(ContextVecs, Weights);
}

} // namespace

//===----------------------------------------------------------------------===//
// Code2VecNamePredictor
//===----------------------------------------------------------------------===//

void Code2VecNamePredictor::addNameToVocabulary(const MethodSample &Sample,
                                                Vocabulary &NameVocab) {
  NameVocab.add(Sample.Fn->Name);
}

Code2VecNamePredictor::Code2VecNamePredictor(const Vocabulary &Tokens,
                                             const Vocabulary &Paths,
                                             const Vocabulary &Names,
                                             const Code2VecConfig &Cfg,
                                             uint64_t Seed)
    : InitRng(Seed), Config(Cfg), TokenVocab(Tokens), PathVocab(Paths),
      NameVocab(Names),
      TokenEmbed(Store, "c2v.token", Tokens.size(), Cfg.EmbedDim, InitRng),
      PathEmbed(Store, "c2v.path", Paths.size(), Cfg.EmbedDim, InitRng),
      ContextProj(Store, "c2v.ctx", 3 * Cfg.EmbedDim, Cfg.CodeDim, InitRng),
      OutProj(Store, "c2v.out", Cfg.CodeDim, Names.size(), InitRng) {
  AttnVector = Store.addParam(
      "c2v.attn", Tensor::uniform(Cfg.CodeDim, 0.2f, InitRng));
}

Var Code2VecNamePredictor::codeVector(const MethodSample &Sample) const {
  std::vector<PathContextIds> Contexts =
      extractPathContexts(Sample, TokenVocab, PathVocab, Config);
  return buildCodeVector(Contexts, TokenEmbed, PathEmbed, ContextProj,
                         AttnVector, Config.CodeDim);
}

Var Code2VecNamePredictor::loss(const MethodSample &Sample) const {
  int Target = NameVocab.lookup(Sample.Fn->Name);
  return softmaxCrossEntropy(OutProj.apply(codeVector(Sample)),
                             static_cast<size_t>(Target));
}

std::vector<std::string>
Code2VecNamePredictor::predict(const MethodSample &Sample) const {
  Var Logits = OutProj.apply(codeVector(Sample));
  Tensor Masked = Logits->Value;
  // Never predict the special tokens.
  for (int Special :
       {Vocabulary::Pad, Vocabulary::Unk, Vocabulary::Sos, Vocabulary::Eos})
    Masked[static_cast<size_t>(Special)] = -1e30f;
  size_t Best = argmax(Masked);
  return splitSubtokens(NameVocab.token(static_cast<int>(Best)));
}

//===----------------------------------------------------------------------===//
// Code2VecClassifier
//===----------------------------------------------------------------------===//

Code2VecClassifier::Code2VecClassifier(const Vocabulary &Tokens,
                                       const Vocabulary &Paths,
                                       size_t NumClasses,
                                       const Code2VecConfig &Cfg,
                                       uint64_t Seed)
    : InitRng(Seed), Config(Cfg), TokenVocab(Tokens), PathVocab(Paths),
      TokenEmbed(Store, "c2v.token", Tokens.size(), Cfg.EmbedDim, InitRng),
      PathEmbed(Store, "c2v.path", Paths.size(), Cfg.EmbedDim, InitRng),
      ContextProj(Store, "c2v.ctx", 3 * Cfg.EmbedDim, Cfg.CodeDim, InitRng),
      Head(Store, "c2v.head", Cfg.CodeDim, NumClasses, InitRng) {
  AttnVector = Store.addParam(
      "c2v.attn", Tensor::uniform(Cfg.CodeDim, 0.2f, InitRng));
}

Var Code2VecClassifier::codeVector(const MethodSample &Sample) const {
  std::vector<PathContextIds> Contexts =
      extractPathContexts(Sample, TokenVocab, PathVocab, Config);
  return buildCodeVector(Contexts, TokenEmbed, PathEmbed, ContextProj,
                         AttnVector, Config.CodeDim);
}

Var Code2VecClassifier::loss(const MethodSample &Sample) const {
  LIGER_CHECK(Sample.ClassId >= 0, "classification sample without label");
  return softmaxCrossEntropy(Head.apply(codeVector(Sample)),
                             static_cast<size_t>(Sample.ClassId));
}

int Code2VecClassifier::predict(const MethodSample &Sample) const {
  return static_cast<int>(argmax(Head.apply(codeVector(Sample))->Value));
}
