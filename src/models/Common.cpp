//===-- models/Common.cpp - Shared model infrastructure -------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Common.h"

#include "lang/AstTree.h"

using namespace liger;

namespace {

void addTreeLabels(const AstTree &Tree, Vocabulary &Vocab) {
  Vocab.add(Tree.Label);
  for (const AstTree &Child : Tree.Children)
    addTreeLabels(Child, Vocab);
}

} // namespace

void liger::addSampleToVocabulary(const MethodSample &Sample,
                                  Vocabulary &Vocab) {
  for (const BlendedTrace &Path : Sample.Traces.Paths) {
    // Static dimension: statement-tree labels.
    for (const SymbolicStep &Step : Path.Symbolic.Steps)
      addTreeLabels(buildStmtHeadTree(Step.Statement), Vocab);
    // Dynamic dimension: value tokens of every state (including s0).
    for (const StateTrace &States : Path.Concrete) {
      for (const Value &V : States.Initial.Values)
        for (const std::string &Token : valueTokens(V))
          Vocab.add(Token);
      for (const ProgramState &State : States.States)
        for (const Value &V : State.Values)
          for (const std::string &Token : valueTokens(V))
            Vocab.add(Token);
    }
  }
}

void liger::addFunctionTreeToVocabulary(const MethodSample &Sample,
                                        Vocabulary &Vocab) {
  LIGER_CHECK(Sample.Fn, "sample without function");
  addTreeLabels(buildFunctionTree(*Sample.Fn), Vocab);
}

void liger::addNameToVocabulary(const MethodSample &Sample,
                                Vocabulary &Vocab) {
  for (const std::string &Token : Sample.NameSubtokens)
    Vocab.add(Token);
}

std::vector<int>
liger::nameTargetIds(const std::vector<std::string> &Subtokens,
                     const Vocabulary &TargetVocab) {
  std::vector<int> Ids;
  Ids.reserve(Subtokens.size() + 1);
  for (const std::string &Token : Subtokens)
    Ids.push_back(TargetVocab.lookup(Token));
  Ids.push_back(Vocabulary::Eos);
  return Ids;
}

std::vector<std::string>
liger::idsToSubtokens(const std::vector<int> &Ids,
                      const Vocabulary &TargetVocab) {
  std::vector<std::string> Out;
  for (int Id : Ids) {
    if (Id == Vocabulary::Eos)
      break;
    if (Id == Vocabulary::Pad || Id == Vocabulary::Sos ||
        Id == Vocabulary::Unk)
      continue;
    Out.push_back(TargetVocab.token(Id));
  }
  return Out;
}
