//===-- models/Common.cpp - Shared model infrastructure -------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "models/Common.h"

#include "lang/AstTree.h"

#include <algorithm>

using namespace liger;

namespace {

void addTreeLabels(const AstTree &Tree, Vocabulary &Vocab) {
  Vocab.add(Tree.Label);
  for (const AstTree &Child : Tree.Children)
    addTreeLabels(Child, Vocab);
}

} // namespace

void liger::addSampleToVocabulary(const MethodSample &Sample,
                                  Vocabulary &Vocab) {
  for (const BlendedTrace &Path : Sample.Traces.Paths) {
    // Static dimension: statement-tree labels.
    for (const SymbolicStep &Step : Path.Symbolic.Steps)
      addTreeLabels(buildStmtHeadTree(Step.Statement), Vocab);
    // Dynamic dimension: value tokens of every state (including s0).
    for (const StateTrace &States : Path.Concrete) {
      for (const Value &V : States.Initial.Values)
        for (const std::string &Token : valueTokens(V))
          Vocab.add(Token);
      for (const ProgramState &State : States.States)
        for (const Value &V : State.Values)
          for (const std::string &Token : valueTokens(V))
            Vocab.add(Token);
    }
  }
}

void liger::addFunctionTreeToVocabulary(const MethodSample &Sample,
                                        Vocabulary &Vocab) {
  LIGER_CHECK(Sample.Fn, "sample without function");
  addTreeLabels(buildFunctionTree(*Sample.Fn), Vocab);
}

void liger::addNameToVocabulary(const MethodSample &Sample,
                                Vocabulary &Vocab) {
  for (const std::string &Token : Sample.NameSubtokens)
    Vocab.add(Token);
}

std::vector<int>
liger::nameTargetIds(const std::vector<std::string> &Subtokens,
                     const Vocabulary &TargetVocab) {
  std::vector<int> Ids;
  Ids.reserve(Subtokens.size() + 1);
  for (const std::string &Token : Subtokens)
    Ids.push_back(TargetVocab.lookup(Token));
  Ids.push_back(Vocabulary::Eos);
  return Ids;
}

std::vector<std::string>
liger::idsToSubtokens(const std::vector<int> &Ids,
                      const Vocabulary &TargetVocab) {
  std::vector<std::string> Out;
  for (int Id : Ids) {
    if (Id == Vocabulary::Eos)
      break;
    if (Id == Vocabulary::Pad || Id == Vocabulary::Sos ||
        Id == Vocabulary::Unk)
      continue;
    Out.push_back(TargetVocab.token(Id));
  }
  return Out;
}

std::vector<std::vector<size_t>>
liger::lockstepSchedule(const std::vector<size_t> &Lens) {
  size_t MaxLen = 0;
  for (size_t L : Lens)
    MaxLen = std::max(MaxLen, L);
  std::vector<std::vector<size_t>> Schedule(MaxLen);
  for (size_t T = 0; T < MaxLen; ++T)
    for (size_t I = 0; I < Lens.size(); ++I)
      if (Lens[I] > T)
        Schedule[T].push_back(I);
  return Schedule;
}

std::vector<RecState>
liger::runCellLockstep(const RecurrentCell &Cell,
                       const std::vector<std::vector<Var>> &Seqs) {
  std::vector<RecState> States;
  States.reserve(Seqs.size());
  std::vector<size_t> Lens;
  Lens.reserve(Seqs.size());
  for (const std::vector<Var> &Seq : Seqs) {
    States.push_back(Cell.initial());
    Lens.push_back(Seq.size());
  }
  std::vector<std::vector<size_t>> Schedule = lockstepSchedule(Lens);
  for (size_t T = 0; T < Schedule.size(); ++T) {
    const std::vector<size_t> &Active = Schedule[T];
    std::vector<Var> Ins;
    std::vector<RecState> Prev;
    Ins.reserve(Active.size());
    Prev.reserve(Active.size());
    for (size_t I : Active) {
      Ins.push_back(Seqs[I][T]);
      Prev.push_back(States[I]);
    }
    std::vector<RecState> Next = Cell.stepBatch(Ins, Prev);
    for (size_t K = 0; K < Active.size(); ++K)
      States[Active[K]] = Next[K];
  }
  return States;
}
