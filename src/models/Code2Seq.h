//===-- models/Code2Seq.h - code2seq static baseline ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of code2seq (Alon et al., ICLR 2019): AST
/// path-contexts with (a) terminal tokens decomposed into sub-tokens
/// whose embeddings are summed, and (b) the path's interior node
/// sequence encoded by a recurrent network; a sequence decoder with
/// attention over the context set emits the method name as sub-tokens —
/// which is why code2seq beats code2vec on the sub-token metric
/// (paper's Table 2) while both trail the dynamic models.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_MODELS_CODE2SEQ_H
#define LIGER_MODELS_CODE2SEQ_H

#include "models/Code2Vec.h" // Code2VecConfig reused for extraction caps
#include "models/Decoder.h"

namespace liger {

/// code2seq hyper-parameters.
struct Code2SeqConfig {
  size_t EmbedDim = 32;
  size_t Hidden = 32;
  size_t AttnHidden = 32;
  CellKind Cell = CellKind::Gru;
  size_t MaxContexts = 120;
  size_t MaxPathLength = 12;
  size_t MaxPathWidth = 16;
  size_t MaxDecodeLen = 8;
};

/// One path-context in code2seq form: sub-token ids for each terminal
/// plus the interior label id sequence.
struct SeqPathContext {
  std::vector<int> SourceSubtokens;
  std::vector<int> PathNodes;
  std::vector<int> TargetSubtokens;
};

/// Extracts code2seq path-contexts for a sample.
std::vector<SeqPathContext>
extractSeqPathContexts(const MethodSample &Sample,
                       const Vocabulary &SubtokenVocab,
                       const Vocabulary &NodeVocab,
                       const Code2SeqConfig &Config);

/// Populates the sub-token and path-node vocabularies from a sample.
void addSeqPathContextsToVocabulary(const MethodSample &Sample,
                                    Vocabulary &SubtokenVocab,
                                    Vocabulary &NodeVocab,
                                    const Code2SeqConfig &Config);

/// code2seq for method name prediction.
class Code2SeqNamePredictor {
public:
  Code2SeqNamePredictor(const Vocabulary &SubtokenVocab,
                        const Vocabulary &NodeVocab,
                        const Vocabulary &TargetVocab,
                        const Code2SeqConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  std::vector<std::string> predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

private:
  struct Encoding {
    Var ProgramEmbedding;
    std::vector<Var> Memory;
  };
  Encoding encode(const MethodSample &Sample) const;
  Var embedContext(const SeqPathContext &Context) const;

  ParamStore Store;
  Rng InitRng;
  Code2SeqConfig Config;
  const Vocabulary &SubtokenVocab;
  const Vocabulary &NodeVocab;
  const Vocabulary &TargetVocab;
  EmbeddingTable SubtokenEmbed;
  EmbeddingTable NodeEmbed;
  RecurrentCell PathRnn;
  Linear ContextProj;
  SeqDecoder Decoder;
};

/// code2seq with a classification head.
class Code2SeqClassifier {
public:
  Code2SeqClassifier(const Vocabulary &SubtokenVocab,
                     const Vocabulary &NodeVocab, size_t NumClasses,
                     const Code2SeqConfig &Config, uint64_t Seed);

  Var loss(const MethodSample &Sample) const;
  int predict(const MethodSample &Sample) const;

  ParamStore &params() { return Store; }

private:
  Var codeVector(const MethodSample &Sample) const;
  Var embedContext(const SeqPathContext &Context) const;

  ParamStore Store;
  Rng InitRng;
  Code2SeqConfig Config;
  const Vocabulary &SubtokenVocab;
  const Vocabulary &NodeVocab;
  EmbeddingTable SubtokenEmbed;
  EmbeddingTable NodeEmbed;
  RecurrentCell PathRnn;
  Linear ContextProj;
  Linear Head;
};

} // namespace liger

#endif // LIGER_MODELS_CODE2SEQ_H
