//===-- interp/Interpreter.cpp - Instrumented concrete interpreter --------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "lang/TypeCheck.h"
#include "support/Error.h"

#include <functional>
#include <unordered_map>

using namespace liger;

namespace {

/// Non-local control flow signal bubbling out of statement execution.
enum class Flow { Normal, Break, Continue, Return };

/// The interpreter engine. One instance per top-level execute() call;
/// user-function calls reuse the engine (sharing fuel) with fresh
/// environments and instrumentation disabled.
class Engine {
public:
  Engine(const Program &P, const InterpOptions &Options)
      : P(P), Options(Options), FuelLeft(Options.Fuel) {}

  ExecResult run(const FunctionDecl &Fn, const std::vector<Value> &Args) {
    ExecResult Result;
    Result.VarNames = collectVariableTuple(Fn);
    TraceVarNames = &Result.VarNames;
    Trace = &Result;

    LIGER_CHECK(Args.size() == Fn.Params.size(),
                "argument count must match parameter count");
    pushFrame();
    for (size_t I = 0; I < Fn.Params.size(); ++I)
      declare(Fn.Params[I].Name, Args[I]);

    if (Options.RecordStates)
      Result.InitialState = snapshotState();

    // The initial snapshot is charged whether or not it is materialized
    // so that probe and recording runs consume the budget identically.
    chargeMemory(stateBytes());
    Flow F = Flow::Normal;
    if (Fn.Body && !stopped())
      F = execBlock(Fn.Body, /*Instrument=*/true);
    popFrame();

    if (Failed) {
      Result.Status = ExecStatus::RuntimeError;
      Result.ErrorMessage = ErrorMessage;
    } else if (MemoryExceeded) {
      Result.Status = ExecStatus::MemoryLimit;
      Result.ErrorMessage = "memory budget exceeded (" +
                            std::to_string(Options.MaxMemoryBytes) +
                            " bytes)";
    } else if (OutOfFuel) {
      Result.Status = ExecStatus::OutOfFuel;
      Result.ErrorMessage = "fuel budget exhausted (" +
                            std::to_string(Options.Fuel) + " statements)";
    } else {
      Result.Status = ExecStatus::Ok;
      if (F == Flow::Return)
        Result.ReturnValue = ReturnValue;
    }
    Result.FuelUsed = Options.Fuel - FuelLeft;
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Environment
  //===--------------------------------------------------------------------===//

  using Frame = std::unordered_map<std::string, Value>;

  void pushFrame() { Frames.emplace_back(); }
  void popFrame() { Frames.pop_back(); }

  void declare(const std::string &Name, Value V) {
    Frames.back()[Name] = V;
    if (CallDepth == 0) // only the traced top-level activation
      LastKnown[Name] = V;
  }

  Value *lookup(const std::string &Name) {
    for (auto It = Frames.rbegin(); It != Frames.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    return nullptr;
  }

  /// Snapshot of the fixed variable tuple, deep-copied. Variables that
  /// went out of scope keep their last known value (matching the
  /// paper's presentation where a state is the accumulated variable
  /// valuation); never-declared variables are ⊥.
  std::vector<Value> snapshotState() {
    std::vector<Value> State;
    State.reserve(TraceVarNames->size());
    for (const std::string &Name : *TraceVarNames) {
      if (Value *V = lookup(Name))
        State.push_back(V->deepCopy());
      else {
        auto It = LastKnown.find(Name);
        State.push_back(It == LastKnown.end() ? Value::undef()
                                              : It->second.deepCopy());
      }
    }
    return State;
  }

  /// What snapshotState() would allocate, without allocating it. Used
  /// to charge snapshot costs identically whether states are recorded
  /// or not (see InterpOptions::MaxMemoryBytes).
  uint64_t stateBytes() {
    uint64_t Total = 0;
    for (const std::string &Name : *TraceVarNames) {
      if (Value *V = lookup(Name)) {
        Total += V->approxBytes();
        continue;
      }
      auto It = LastKnown.find(Name);
      Total += It == LastKnown.end() ? 16 : It->second.approxBytes();
    }
    return Total;
  }

  //===--------------------------------------------------------------------===//
  // Errors and fuel
  //===--------------------------------------------------------------------===//

  bool fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      ErrorMessage = Msg;
    }
    return false;
  }

  /// Burns one unit of fuel; returns false when exhausted.
  bool burnFuel() {
    if (FuelLeft == 0) {
      OutOfFuel = true;
      return false;
    }
    --FuelLeft;
    return true;
  }

  /// Charges \p Bytes against the monotone allocation budget; returns
  /// false (and latches MemoryExceeded) once the budget is blown.
  bool chargeMemory(uint64_t Bytes) {
    BytesCharged += Bytes;
    if (BytesCharged > Options.MaxMemoryBytes) {
      MemoryExceeded = true;
      return false;
    }
    return true;
  }

  bool stopped() const { return Failed || OutOfFuel || MemoryExceeded; }

  /// Extracts an int operand or fails with a RuntimeError. Hostile
  /// input can reach the interpreter without a type check (or with one
  /// the parser's error placeholders confused), so no operand kind is
  /// ever trusted.
  bool wantInt(const Value &V, int64_t &Out, const char *What) {
    if (!V.isInt()) {
      fail(std::string(What) + " is not an integer");
      return false;
    }
    Out = V.asInt();
    return true;
  }

  /// Extracts a bool operand or fails with a RuntimeError.
  bool wantBool(const Value &V, bool &Out, const char *What) {
    if (!V.isBool()) {
      fail(std::string(What) + " is not a boolean");
      return false;
    }
    Out = V.asBool();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Instrumentation
  //===--------------------------------------------------------------------===//

  void record(const Stmt *S, StepKind Kind, bool Instrument) {
    if (!Instrument || Trace->Steps.size() >= Options.MaxRecordedSteps)
      return;
    // Snapshot cost counts against the memory budget even when states
    // are not materialized (RecordStates off), so discovery probes and
    // recording runs reach identical terminal states. A blown budget
    // leaves the already-recorded prefix intact: truncated but valid.
    if (!chargeMemory(stateBytes()))
      return;
    ExecStep Step;
    Step.Statement = S;
    Step.Kind = Kind;
    if (Options.RecordStates)
      Step.State = snapshotState();
    Trace->Steps.push_back(std::move(Step));
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  Flow execBlock(const BlockStmt *Block, bool Instrument) {
    pushFrame();
    Flow F = Flow::Normal;
    for (const Stmt *S : Block->body()) {
      F = execStmt(S, Instrument);
      if (F != Flow::Normal || stopped())
        break;
    }
    // Persist this frame's bindings for snapshot fallback before popping.
    if (Instrument)
      for (auto &Entry : Frames.back())
        LastKnown[Entry.first] = Entry.second;
    popFrame();
    return F;
  }

  Flow execStmt(const Stmt *S, bool Instrument) {
    if (!burnFuel())
      return Flow::Normal;
    switch (S->kind()) {
    case StmtKind::Block:
      return execBlock(cast<BlockStmt>(S), Instrument);
    case StmtKind::Decl: {
      const auto *Decl = cast<DeclStmt>(S);
      Value Init;
      if (Decl->init()) {
        Init = evalExpr(Decl->init());
        if (stopped())
          return Flow::Normal;
      } else {
        const StructDecl *SD = nullptr;
        if (Decl->declType().isStruct()) {
          SD = P.findStruct(Decl->declType().structName());
          if (!SD) {
            fail("declaration of undeclared struct type '" +
                 Decl->declType().structName() + "'");
            return Flow::Normal;
          }
        }
        Init = Value::zeroOf(Decl->declType(), SD);
      }
      declare(Decl->name(), Init);
      record(S, StepKind::Plain, Instrument);
      return Flow::Normal;
    }
    case StmtKind::Assign: {
      execAssign(cast<AssignStmt>(S));
      if (stopped())
        return Flow::Normal;
      record(S, StepKind::Plain, Instrument);
      return Flow::Normal;
    }
    case StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      Value Cond = evalExpr(If->cond());
      bool Taken = false;
      if (stopped() || !wantBool(Cond, Taken, "if condition"))
        return Flow::Normal;
      record(S, Taken ? StepKind::CondTrue : StepKind::CondFalse, Instrument);
      if (Taken)
        return execStmt(If->thenStmt(), Instrument);
      if (If->elseStmt())
        return execStmt(If->elseStmt(), Instrument);
      return Flow::Normal;
    }
    case StmtKind::While: {
      const auto *While = cast<WhileStmt>(S);
      for (;;) {
        if (!burnFuel())
          return Flow::Normal;
        Value Cond = evalExpr(While->cond());
        bool Taken = false;
        if (stopped() || !wantBool(Cond, Taken, "while condition"))
          return Flow::Normal;
        record(S, Taken ? StepKind::CondTrue : StepKind::CondFalse,
               Instrument);
        if (!Taken)
          return Flow::Normal;
        Flow F = execStmt(While->body(), Instrument);
        if (stopped() || F == Flow::Return)
          return F;
        if (F == Flow::Break)
          return Flow::Normal;
      }
    }
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      pushFrame();
      Flow Result = Flow::Normal;
      if (For->init()) {
        execStmt(For->init(), Instrument);
        if (stopped()) {
          popFrame();
          return Flow::Normal;
        }
      }
      for (;;) {
        if (!burnFuel())
          break;
        bool Taken = true;
        if (For->cond()) {
          Value Cond = evalExpr(For->cond());
          if (stopped() || !wantBool(Cond, Taken, "for condition"))
            break;
          record(S, Taken ? StepKind::CondTrue : StepKind::CondFalse,
                 Instrument);
        }
        if (!Taken)
          break;
        Flow F = execStmt(For->body(), Instrument);
        if (stopped())
          break;
        if (F == Flow::Return) {
          Result = Flow::Return;
          break;
        }
        if (F == Flow::Break)
          break;
        if (For->step()) {
          execStmt(For->step(), Instrument);
          if (stopped())
            break;
        }
      }
      if (Instrument)
        for (auto &Entry : Frames.back())
          LastKnown[Entry.first] = Entry.second;
      popFrame();
      return Result;
    }
    case StmtKind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      if (Ret->value()) {
        ReturnValue = evalExpr(Ret->value());
        if (stopped())
          return Flow::Normal;
      } else {
        ReturnValue = Value::undef();
      }
      record(S, StepKind::Plain, Instrument);
      return Flow::Return;
    }
    case StmtKind::Break:
      record(S, StepKind::Plain, Instrument);
      return Flow::Break;
    case StmtKind::Continue:
      record(S, StepKind::Plain, Instrument);
      return Flow::Continue;
    case StmtKind::Expr: {
      evalExpr(cast<ExprStmt>(S)->expr());
      if (stopped())
        return Flow::Normal;
      record(S, StepKind::Plain, Instrument);
      return Flow::Normal;
    }
    }
    LIGER_UNREACHABLE("covered switch");
  }

  void execAssign(const AssignStmt *S) {
    Value NewValue = evalExpr(S->value());
    if (stopped())
      return;

    // Resolve the target cell.
    Value *Cell = nullptr;
    if (const auto *Var = dyn_cast<VarExpr>(S->target())) {
      Cell = lookup(Var->name());
      if (!Cell) {
        fail("assignment to undeclared variable '" + Var->name() + "'");
        return;
      }
    } else if (const auto *Index = dyn_cast<IndexExpr>(S->target())) {
      Value Base = evalExpr(Index->base());
      Value Idx = evalExpr(Index->index());
      if (stopped())
        return;
      if (!Base.isArray()) {
        fail("cannot assign into a non-array");
        return;
      }
      int64_t I = 0;
      if (!wantInt(Idx, I, "array index"))
        return;
      std::vector<Value> &Elems = Base.elements();
      if (I < 0 || static_cast<size_t>(I) >= Elems.size()) {
        fail("array index " + std::to_string(I) + " out of range [0, " +
             std::to_string(Elems.size()) + ")");
        return;
      }
      Cell = &Elems[static_cast<size_t>(I)];
    } else if (const auto *Field = dyn_cast<FieldExpr>(S->target())) {
      Value Base = evalExpr(Field->base());
      if (stopped())
        return;
      if (!Base.isStruct()) {
        fail("cannot assign into a field of a non-struct");
        return;
      }
      int FieldIdx = Base.structDecl()->fieldIndex(Field->field());
      if (FieldIdx < 0) {
        fail("unknown field '" + Field->field() + "'");
        return;
      }
      Cell = &Base.elements()[static_cast<size_t>(FieldIdx)];
    } else {
      fail("invalid assignment target");
      return;
    }

    if (S->op() == AssignOp::Set) {
      *Cell = NewValue;
      syncLastKnown(S->target());
      return;
    }

    // Compound assignment: int arithmetic or string concatenation.
    if (Cell->isString() && NewValue.isString() && S->op() == AssignOp::Add) {
      // `s += s` doubles the string every statement — charge the result
      // size so the growth trips MemoryLimit, not the fuel budget.
      if (!chargeMemory(32 + Cell->asString().size() +
                        NewValue.asString().size()))
        return;
      *Cell = Value::makeString(Cell->asString() + NewValue.asString());
      syncLastKnown(S->target());
      return;
    }
    if (!Cell->isInt() || !NewValue.isInt()) {
      fail("invalid operand types in compound assignment");
      return;
    }
    int64_t L = Cell->asInt();
    int64_t R = NewValue.asInt();
    int64_t Out = 0;
    switch (S->op()) {
    case AssignOp::Add: Out = L + R; break;
    case AssignOp::Sub: Out = L - R; break;
    case AssignOp::Mul: Out = L * R; break;
    case AssignOp::Div:
      if (R == 0) {
        fail("division by zero");
        return;
      }
      Out = L / R;
      break;
    case AssignOp::Mod:
      if (R == 0) {
        fail("modulo by zero");
        return;
      }
      Out = L % R;
      break;
    case AssignOp::Set:
      LIGER_UNREACHABLE("Set handled above");
    }
    *Cell = Value::makeInt(Out);
    syncLastKnown(S->target());
  }

  /// Keeps the LastKnown fallback in sync with direct variable writes in
  /// the traced (outermost) activation.
  void syncLastKnown(const Expr *Target) {
    if (CallDepth != 0)
      return;
    if (const auto *Var = dyn_cast<VarExpr>(Target))
      if (Value *Cell = lookup(Var->name()))
        LastKnown[Var->name()] = *Cell;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Value evalExpr(const Expr *E) {
    if (stopped())
      return Value::undef();
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Value::makeInt(cast<IntLitExpr>(E)->value());
    case ExprKind::BoolLit:
      return Value::makeBool(cast<BoolLitExpr>(E)->value());
    case ExprKind::StringLit:
      return Value::makeString(cast<StringLitExpr>(E)->value());
    case ExprKind::Var: {
      if (Value *V = lookup(cast<VarExpr>(E)->name()))
        return *V;
      fail("use of undeclared variable '" + cast<VarExpr>(E)->name() + "'");
      return Value::undef();
    }
    case ExprKind::ArrayLit: {
      std::vector<Value> Elements;
      for (const Expr *Elem : cast<ArrayLitExpr>(E)->elements()) {
        Elements.push_back(evalExpr(Elem));
        if (stopped())
          return Value::undef();
      }
      if (!chargeMemory(32 + 16 * static_cast<uint64_t>(Elements.size())))
        return Value::undef();
      return Value::makeArray(std::move(Elements));
    }
    case ExprKind::NewArray: {
      const auto *New = cast<NewArrayExpr>(E);
      Value Size = evalExpr(New->size());
      if (stopped())
        return Value::undef();
      // The size expression's value is not trusted: with the type
      // checker bypassed it can be any kind.
      int64_t N = 0;
      if (!wantInt(Size, N, "array size"))
        return Value::undef();
      if (N < 0 || N > 1000000) {
        fail("invalid array size " + std::to_string(N));
        return Value::undef();
      }
      const StructDecl *ElemDecl = nullptr;
      if (New->elemType().isStruct()) {
        ElemDecl = P.findStruct(New->elemType().structName());
        if (!ElemDecl) {
          fail("array of undeclared struct type '" +
               New->elemType().structName() + "'");
          return Value::undef();
        }
      }
      Value Zero = Value::zeroOf(New->elemType(), ElemDecl);
      if (!chargeMemory(32 + Zero.approxBytes() * static_cast<uint64_t>(N)))
        return Value::undef();
      std::vector<Value> Elements(static_cast<size_t>(N), Zero);
      return Value::makeArray(std::move(Elements));
    }
    case ExprKind::NewStruct: {
      const auto *New = cast<NewStructExpr>(E);
      const StructDecl *Decl = P.findStruct(New->structName());
      if (!Decl) {
        fail("construction of undeclared struct '" + New->structName() + "'");
        return Value::undef();
      }
      if (New->args().size() != Decl->Fields.size()) {
        fail("struct '" + New->structName() + "' expects " +
             std::to_string(Decl->Fields.size()) + " field values");
        return Value::undef();
      }
      std::vector<Value> Fields;
      for (const Expr *Arg : New->args()) {
        Fields.push_back(evalExpr(Arg));
        if (stopped())
          return Value::undef();
      }
      if (!chargeMemory(32 + 16 * static_cast<uint64_t>(Fields.size())))
        return Value::undef();
      return Value::makeStruct(Decl, std::move(Fields));
    }
    case ExprKind::Index: {
      const auto *Index = cast<IndexExpr>(E);
      Value Base = evalExpr(Index->base());
      Value Idx = evalExpr(Index->index());
      if (stopped())
        return Value::undef();
      int64_t I = 0;
      if (!wantInt(Idx, I, "index"))
        return Value::undef();
      if (Base.isArray()) {
        const std::vector<Value> &Elems = Base.elements();
        if (I < 0 || static_cast<size_t>(I) >= Elems.size()) {
          fail("array index " + std::to_string(I) + " out of range [0, " +
               std::to_string(Elems.size()) + ")");
          return Value::undef();
        }
        return Elems[static_cast<size_t>(I)];
      }
      if (Base.isString()) {
        const std::string &S = Base.asString();
        if (I < 0 || static_cast<size_t>(I) >= S.size()) {
          fail("string index " + std::to_string(I) + " out of range [0, " +
               std::to_string(S.size()) + ")");
          return Value::undef();
        }
        return Value::makeString(std::string(1, S[static_cast<size_t>(I)]));
      }
      fail("cannot index a scalar value");
      return Value::undef();
    }
    case ExprKind::Field: {
      const auto *Field = cast<FieldExpr>(E);
      Value Base = evalExpr(Field->base());
      if (stopped())
        return Value::undef();
      if (!Base.isStruct()) {
        fail("field access on a non-struct value");
        return Value::undef();
      }
      int FieldIdx = Base.structDecl()->fieldIndex(Field->field());
      if (FieldIdx < 0) {
        fail("unknown field '" + Field->field() + "'");
        return Value::undef();
      }
      return Base.elements()[static_cast<size_t>(FieldIdx)];
    }
    case ExprKind::Unary: {
      const auto *Unary = cast<UnaryExpr>(E);
      Value Operand = evalExpr(Unary->operand());
      if (stopped())
        return Value::undef();
      if (Unary->op() == UnaryOp::Neg) {
        int64_t V = 0;
        if (!wantInt(Operand, V, "negation operand"))
          return Value::undef();
        return Value::makeInt(-V);
      }
      bool B = false;
      if (!wantBool(Operand, B, "'!' operand"))
        return Value::undef();
      return Value::makeBool(!B);
    }
    case ExprKind::Binary:
      return evalBinary(cast<BinaryExpr>(E));
    case ExprKind::Call:
      return evalCall(cast<CallExpr>(E));
    }
    LIGER_UNREACHABLE("covered switch");
  }

  Value evalBinary(const BinaryExpr *E) {
    // Short-circuit operators first.
    if (E->op() == BinaryOp::And || E->op() == BinaryOp::Or) {
      Value L = evalExpr(E->lhs());
      if (stopped())
        return Value::undef();
      bool LeftTrue = false;
      if (!wantBool(L, LeftTrue, "logical operand"))
        return Value::undef();
      if (E->op() == BinaryOp::And && !LeftTrue)
        return Value::makeBool(false);
      if (E->op() == BinaryOp::Or && LeftTrue)
        return Value::makeBool(true);
      Value R = evalExpr(E->rhs());
      if (stopped())
        return Value::undef();
      bool RightTrue = false;
      if (!wantBool(R, RightTrue, "logical operand"))
        return Value::undef();
      return Value::makeBool(RightTrue);
    }

    Value L = evalExpr(E->lhs());
    Value R = evalExpr(E->rhs());
    if (stopped())
      return Value::undef();

    // Structural equality works on any kinds.
    if (E->op() == BinaryOp::Eq)
      return Value::makeBool(L.equals(R));
    if (E->op() == BinaryOp::Ne)
      return Value::makeBool(!L.equals(R));

    // String concatenation: like the compound-assignment form, charge
    // the result size so `s = s + s` in a loop hits the memory budget
    // instead of doubling until the process OOMs.
    if (E->op() == BinaryOp::Add && L.isString() && R.isString()) {
      if (!chargeMemory(32 + L.asString().size() + R.asString().size()))
        return Value::undef();
      return Value::makeString(L.asString() + R.asString());
    }

    // Everything else is int × int.
    int64_t LI = 0, RI = 0;
    if (!wantInt(L, LI, "arithmetic operand") ||
        !wantInt(R, RI, "arithmetic operand"))
      return Value::undef();

    switch (E->op()) {
    case BinaryOp::Add:
      return Value::makeInt(LI + RI);
    case BinaryOp::Sub:
      return Value::makeInt(LI - RI);
    case BinaryOp::Mul:
      return Value::makeInt(LI * RI);
    case BinaryOp::Div:
      if (RI == 0) {
        fail("division by zero");
        return Value::undef();
      }
      return Value::makeInt(LI / RI);
    case BinaryOp::Mod:
      if (RI == 0) {
        fail("modulo by zero");
        return Value::undef();
      }
      return Value::makeInt(LI % RI);
    case BinaryOp::Lt:
      return Value::makeBool(LI < RI);
    case BinaryOp::Le:
      return Value::makeBool(LI <= RI);
    case BinaryOp::Gt:
      return Value::makeBool(LI > RI);
    case BinaryOp::Ge:
      return Value::makeBool(LI >= RI);
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::And:
    case BinaryOp::Or:
      LIGER_UNREACHABLE("handled above");
    }
    LIGER_UNREACHABLE("covered switch");
  }

  Value evalCall(const CallExpr *E) {
    std::vector<Value> Args;
    Args.reserve(E->args().size());
    for (const Expr *Arg : E->args()) {
      Args.push_back(evalExpr(Arg));
      if (stopped())
        return Value::undef();
    }

    // Builtin arity and operand kinds are re-validated here: hostile
    // ASTs reach evalCall without a type check, so Args[N] accesses
    // must be guarded.
    const std::string &Callee = E->callee();
    auto wantArity = [&](size_t N) {
      if (Args.size() == N)
        return true;
      fail("'" + Callee + "' expects " + std::to_string(N) + " argument(s)");
      return false;
    };
    if (Callee == "len") {
      if (!wantArity(1))
        return Value::undef();
      const Value &V = Args[0];
      if (V.isArray())
        return Value::makeInt(static_cast<int64_t>(V.elements().size()));
      if (V.isString())
        return Value::makeInt(static_cast<int64_t>(V.asString().size()));
      fail("'len' applied to a scalar");
      return Value::undef();
    }
    if (Callee == "substring") {
      if (!wantArity(3))
        return Value::undef();
      if (!Args[0].isString()) {
        fail("'substring' applied to a non-string");
        return Value::undef();
      }
      const std::string &S = Args[0].asString();
      int64_t Start = 0, Count = 0;
      if (!wantInt(Args[1], Start, "substring start") ||
          !wantInt(Args[2], Count, "substring count"))
        return Value::undef();
      if (Start < 0 || Count < 0 ||
          static_cast<size_t>(Start) + static_cast<size_t>(Count) > S.size()) {
        fail("substring(" + std::to_string(Start) + ", " +
             std::to_string(Count) + ") out of range for length " +
             std::to_string(S.size()));
        return Value::undef();
      }
      if (!chargeMemory(32 + static_cast<uint64_t>(Count)))
        return Value::undef();
      return Value::makeString(S.substr(static_cast<size_t>(Start),
                                        static_cast<size_t>(Count)));
    }
    if (Callee == "abs") {
      int64_t V = 0;
      if (!wantArity(1) || !wantInt(Args[0], V, "'abs' argument"))
        return Value::undef();
      return Value::makeInt(V < 0 ? -V : V);
    }
    if (Callee == "min" || Callee == "max") {
      int64_t A = 0, B = 0;
      if (!wantArity(2) || !wantInt(Args[0], A, "'min'/'max' argument") ||
          !wantInt(Args[1], B, "'min'/'max' argument"))
        return Value::undef();
      return Value::makeInt(Callee == "min" ? std::min(A, B) : std::max(A, B));
    }

    // User function: fresh activation, instrumentation off, shared fuel.
    const FunctionDecl *Fn = P.findFunction(Callee);
    if (!Fn) {
      fail("call to undeclared function '" + Callee + "'");
      return Value::undef();
    }
    if (CallDepth >= MaxCallDepth) {
      fail("call depth limit exceeded (possible unbounded recursion)");
      return Value::undef();
    }
    if (Args.size() != Fn->Params.size()) {
      fail("function '" + Callee + "' expects " +
           std::to_string(Fn->Params.size()) + " argument(s)");
      return Value::undef();
    }

    size_t SavedFrameCount = Frames.size();
    Value SavedReturn = ReturnValue;
    ++CallDepth;
    pushFrame();
    for (size_t I = 0; I < Fn->Params.size(); ++I)
      Frames.back()[Fn->Params[I].Name] = Args[I];
    Flow F = Flow::Normal;
    if (Fn->Body)
      F = execBlock(Fn->Body, /*Instrument=*/false);
    popFrame();
    --CallDepth;
    LIGER_CHECK(Frames.size() == SavedFrameCount, "unbalanced frames");

    Value Result = F == Flow::Return ? ReturnValue : Value::undef();
    ReturnValue = SavedReturn;
    if (!Fn->ReturnType.isVoid() && Result.isUndef() && !stopped())
      fail("function '" + Callee + "' finished without returning a value");
    return Result;
  }

  const Program &P;
  const InterpOptions &Options;
  uint64_t FuelLeft;

  std::vector<Frame> Frames;
  std::unordered_map<std::string, Value> LastKnown;
  const std::vector<std::string> *TraceVarNames = nullptr;
  ExecResult *Trace = nullptr;

  bool Failed = false;
  bool OutOfFuel = false;
  bool MemoryExceeded = false;
  uint64_t BytesCharged = 0;
  std::string ErrorMessage;
  Value ReturnValue;

  unsigned CallDepth = 0;
  static constexpr unsigned MaxCallDepth = 64;
};

} // namespace

std::vector<std::string> liger::collectVariableTuple(const FunctionDecl &Fn) {
  std::vector<std::string> Names;
  auto Add = [&Names](const std::string &Name) {
    for (const std::string &Existing : Names)
      if (Existing == Name)
        return;
    Names.push_back(Name);
  };
  for (const TypedName &Param : Fn.Params)
    Add(Param.Name);

  // Walk statements collecting declarations in source order.
  std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Decl:
      Add(cast<DeclStmt>(S)->name());
      return;
    case StmtKind::Block:
      for (const Stmt *Child : cast<BlockStmt>(S)->body())
        Walk(Child);
      return;
    case StmtKind::If:
      Walk(cast<IfStmt>(S)->thenStmt());
      Walk(cast<IfStmt>(S)->elseStmt());
      return;
    case StmtKind::While:
      Walk(cast<WhileStmt>(S)->body());
      return;
    case StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      Walk(For->init());
      Walk(For->step());
      Walk(For->body());
      return;
    }
    default:
      return;
    }
  };
  Walk(Fn.Body);
  return Names;
}

ExecResult liger::execute(const Program &P, const FunctionDecl &Fn,
                          const std::vector<Value> &Args,
                          const InterpOptions &Options) {
  Engine E(P, Options);
  return E.run(Fn, Args);
}
