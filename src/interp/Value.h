//===-- interp/Value.h - MiniLang runtime values ---------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the MiniLang interpreter. Ints, bools, and strings
/// are immutable value types; arrays and structs are *reference* types
/// with Java-like aliasing semantics (assigning an array copies the
/// reference), which is what makes the paper's in-place sorting examples
/// (Fig. 1) behave as written. Program-state snapshots therefore use
/// deepCopy() to freeze heap contents at a trace step.
///
/// The Undef kind renders as the paper's ⊥ for variables that are in the
/// trace's fixed variable tuple but not yet declared at a given step
/// (Fig. 2, "right:⊥").
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_INTERP_VALUE_H
#define LIGER_INTERP_VALUE_H

#include "lang/Type.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace liger {

struct StructDecl;

enum class ValueKind { Undef, Int, Bool, String, Array, Struct };

/// A MiniLang runtime value (tagged union with shared heap storage for
/// reference types).
class Value {
public:
  /// Default-constructed values are Undef (⊥).
  Value() : Kind(ValueKind::Undef) {}

  static Value undef() { return Value(); }
  static Value makeInt(int64_t V) {
    Value Val(ValueKind::Int);
    Val.IntVal = V;
    return Val;
  }
  static Value makeBool(bool V) {
    Value Val(ValueKind::Bool);
    Val.BoolVal = V;
    return Val;
  }
  static Value makeString(std::string V) {
    Value Val(ValueKind::String);
    Val.StringVal = std::make_shared<std::string>(std::move(V));
    return Val;
  }
  /// Creates an array sharing no storage with any other value.
  static Value makeArray(std::vector<Value> Elements) {
    Value Val(ValueKind::Array);
    Val.Elements = std::make_shared<std::vector<Value>>(std::move(Elements));
    return Val;
  }
  /// Creates a struct instance; \p Decl must outlive the value.
  static Value makeStruct(const StructDecl *Decl,
                          std::vector<Value> FieldValues) {
    LIGER_CHECK(Decl != nullptr, "struct value needs a declaration");
    Value Val(ValueKind::Struct);
    Val.Decl = Decl;
    Val.Elements =
        std::make_shared<std::vector<Value>>(std::move(FieldValues));
    return Val;
  }

  /// The zero value of \p Ty (0, false, "", empty array, zeroed struct).
  static Value zeroOf(const Type &Ty, const StructDecl *Decl);

  ValueKind kind() const { return Kind; }
  bool isUndef() const { return Kind == ValueKind::Undef; }
  bool isInt() const { return Kind == ValueKind::Int; }
  bool isBool() const { return Kind == ValueKind::Bool; }
  bool isString() const { return Kind == ValueKind::String; }
  bool isArray() const { return Kind == ValueKind::Array; }
  bool isStruct() const { return Kind == ValueKind::Struct; }

  int64_t asInt() const {
    LIGER_CHECK(isInt(), "asInt on non-int value");
    return IntVal;
  }
  bool asBool() const {
    LIGER_CHECK(isBool(), "asBool on non-bool value");
    return BoolVal;
  }
  const std::string &asString() const {
    LIGER_CHECK(isString(), "asString on non-string value");
    return *StringVal;
  }
  /// Mutable element storage (arrays and structs).
  std::vector<Value> &elements() {
    LIGER_CHECK(isArray() || isStruct(), "elements on scalar value");
    return *Elements;
  }
  const std::vector<Value> &elements() const {
    LIGER_CHECK(isArray() || isStruct(), "elements on scalar value");
    return *Elements;
  }
  const StructDecl *structDecl() const {
    LIGER_CHECK(isStruct(), "structDecl on non-struct value");
    return Decl;
  }

  /// Deep structural copy: reference types get fresh storage.
  Value deepCopy() const;

  /// Deterministic estimate of the heap bytes this value owns (what a
  /// deepCopy would allocate): scalars count a fixed 16 bytes, strings
  /// 32 + length, arrays/structs 32 + their elements. Drives the
  /// interpreter's per-execution memory budget (DESIGN.md §12), so it
  /// is a platform-independent model, not sizeof arithmetic.
  uint64_t approxBytes() const;

  /// Deep structural equality (arrays/structs compared element-wise).
  bool equals(const Value &Other) const;

  /// Renders the value as the paper's state notation: 5, true, "ab",
  /// [1, 2, 3], {x: 1, y: 2}, or ⊥.
  std::string str() const;

  /// Flattens the value into primitive leaves — attr(v) in §5.1.1.
  /// Scalars yield themselves; arrays/structs their elements in order.
  void flatten(std::vector<Value> &Out) const;

private:
  explicit Value(ValueKind K) : Kind(K) {}

  ValueKind Kind;
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::shared_ptr<std::string> StringVal;
  std::shared_ptr<std::vector<Value>> Elements;
  const StructDecl *Decl = nullptr;
};

} // namespace liger

#endif // LIGER_INTERP_VALUE_H
