//===-- interp/Value.cpp - MiniLang runtime values ------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "lang/Ast.h"

using namespace liger;

Value Value::zeroOf(const Type &Ty, const StructDecl *Decl) {
  switch (Ty.kind()) {
  case TypeKind::Int:
    return makeInt(0);
  case TypeKind::Bool:
    return makeBool(false);
  case TypeKind::String:
    return makeString("");
  case TypeKind::Array:
    return makeArray({});
  case TypeKind::Struct: {
    LIGER_CHECK(Decl, "zeroOf(struct) needs the declaration");
    std::vector<Value> Fields;
    Fields.reserve(Decl->Fields.size());
    for (const TypedName &F : Decl->Fields)
      Fields.push_back(zeroOf(F.Ty, nullptr));
    return makeStruct(Decl, std::move(Fields));
  }
  case TypeKind::Void:
    return undef();
  }
  LIGER_UNREACHABLE("covered switch");
}

Value Value::deepCopy() const {
  switch (Kind) {
  case ValueKind::Undef:
  case ValueKind::Int:
  case ValueKind::Bool:
    return *this;
  case ValueKind::String:
    return makeString(*StringVal);
  case ValueKind::Array: {
    std::vector<Value> Copy;
    Copy.reserve(Elements->size());
    for (const Value &Elem : *Elements)
      Copy.push_back(Elem.deepCopy());
    return makeArray(std::move(Copy));
  }
  case ValueKind::Struct: {
    std::vector<Value> Copy;
    Copy.reserve(Elements->size());
    for (const Value &Elem : *Elements)
      Copy.push_back(Elem.deepCopy());
    return makeStruct(Decl, std::move(Copy));
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

uint64_t Value::approxBytes() const {
  switch (Kind) {
  case ValueKind::Undef:
  case ValueKind::Int:
  case ValueKind::Bool:
    return 16;
  case ValueKind::String:
    return 32 + StringVal->size();
  case ValueKind::Array:
  case ValueKind::Struct: {
    uint64_t Total = 32;
    for (const Value &Elem : *Elements)
      Total += Elem.approxBytes();
    return Total;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

bool Value::equals(const Value &Other) const {
  if (Kind != Other.Kind)
    return false;
  switch (Kind) {
  case ValueKind::Undef:
    return true;
  case ValueKind::Int:
    return IntVal == Other.IntVal;
  case ValueKind::Bool:
    return BoolVal == Other.BoolVal;
  case ValueKind::String:
    return *StringVal == *Other.StringVal;
  case ValueKind::Array:
  case ValueKind::Struct: {
    if (Kind == ValueKind::Struct && Decl != Other.Decl)
      return false;
    const std::vector<Value> &A = *Elements;
    const std::vector<Value> &B = *Other.Elements;
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!A[I].equals(B[I]))
        return false;
    return true;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

std::string Value::str() const {
  switch (Kind) {
  case ValueKind::Undef:
    return "⊥";
  case ValueKind::Int:
    return std::to_string(IntVal);
  case ValueKind::Bool:
    return BoolVal ? "true" : "false";
  case ValueKind::String:
    return "\"" + *StringVal + "\"";
  case ValueKind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Elements->size(); ++I) {
      if (I)
        Out += ", ";
      Out += (*Elements)[I].str();
    }
    Out += "]";
    return Out;
  }
  case ValueKind::Struct: {
    std::string Out = "{";
    for (size_t I = 0; I < Elements->size(); ++I) {
      if (I)
        Out += ", ";
      Out += Decl->Fields[I].Name + ": " + (*Elements)[I].str();
    }
    Out += "}";
    return Out;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

void Value::flatten(std::vector<Value> &Out) const {
  switch (Kind) {
  case ValueKind::Undef:
  case ValueKind::Int:
  case ValueKind::Bool:
  case ValueKind::String:
    Out.push_back(*this);
    return;
  case ValueKind::Array:
  case ValueKind::Struct:
    for (const Value &Elem : *Elements)
      Elem.flatten(Out);
    return;
  }
  LIGER_UNREACHABLE("covered switch");
}
