//===-- interp/Interpreter.h - Instrumented concrete interpreter -*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tree-walking interpreter for MiniLang with statement-level
/// instrumentation. Executing a function on concrete inputs yields an
/// ExecResult: the visited trace-level statements (Def. 2.2's symbolic
/// trace is their projection) together with a deep-copied snapshot of
/// the program state after each statement (Def. 2.3's state trace).
///
/// The trace-level statements are: declarations, assignments, returns,
/// break/continue, call statements, and the *conditions* of if/while/for
/// (recorded with their boolean outcome, which is what identifies the
/// program path).
///
/// Execution is fuel-bounded (infinite loops become OutOfFuel — the
/// Table 1 "takes too long" filter), memory-bounded (allocation bombs
/// like `s = s + s` in a loop become MemoryLimit before they can OOM
/// the process), and total: runtime errors (division by zero, index out
/// of range, type-confused operands when the type checker was bypassed,
/// ...) produce a RuntimeError status, not a crash. The bounded-
/// execution contract is documented in DESIGN.md §12.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_INTERP_INTERPRETER_H
#define LIGER_INTERP_INTERPRETER_H

#include "interp/Value.h"
#include "lang/Ast.h"

#include <string>
#include <vector>

namespace liger {

/// How execution of a function ended.
enum class ExecStatus {
  Ok,           ///< Function returned (or fell off the end of a void body).
  OutOfFuel,    ///< Statement budget exhausted (likely non-termination).
  RuntimeError, ///< Division by zero, index out of range, etc.
  MemoryLimit,  ///< Allocation budget exhausted (likely a memory bomb).
};

/// Classification of a recorded trace step.
enum class StepKind {
  Plain,     ///< Declaration, assignment, return, call, break, continue.
  CondTrue,  ///< A control-flow condition that evaluated to true.
  CondFalse, ///< A control-flow condition that evaluated to false.
};

/// One recorded trace step: a statement plus the state after it.
struct ExecStep {
  const Stmt *Statement = nullptr;
  StepKind Kind = StepKind::Plain;
  /// Deep-copied values aligned with ExecResult::VarNames; empty when
  /// state recording is disabled.
  std::vector<Value> State;
};

/// Result of executing one function on one input vector.
struct ExecResult {
  ExecStatus Status = ExecStatus::Ok;
  std::string ErrorMessage;
  Value ReturnValue;
  /// The fixed variable tuple: parameters first, then every local in
  /// source order. All state snapshots are aligned with this order.
  std::vector<std::string> VarNames;
  /// Program state before the first statement (the paper's s0).
  std::vector<Value> InitialState;
  std::vector<ExecStep> Steps;
  uint64_t FuelUsed = 0;

  bool ok() const { return Status == ExecStatus::Ok; }
};

/// Interpreter options.
struct InterpOptions {
  /// Maximum number of executed statements (across calls) before
  /// OutOfFuel. Chosen so that every reasonable corpus method finishes.
  uint64_t Fuel = 20000;
  /// When false, Steps carry no state snapshots (cheaper; used by the
  /// coverage-only feedback loop in testgen).
  bool RecordStates = true;
  /// Hard cap on recorded steps to bound trace memory; execution
  /// continues uninstrumented past the cap.
  size_t MaxRecordedSteps = 4096;
  /// Cumulative allocation budget in modelled bytes (Value::approxBytes
  /// of every string/array/struct the execution creates, plus the
  /// snapshot cost of each recorded step). Accounting is monotone —
  /// bytes are charged at allocation and never refunded — so it bounds
  /// both peak memory and allocation churn; exceeding it terminates the
  /// execution with ExecStatus::MemoryLimit. Snapshot costs are charged
  /// whether or not RecordStates is set, keeping the terminal status a
  /// pure function of (program, inputs, budgets) — the determinism the
  /// trace collector's probe-then-record pipeline relies on.
  uint64_t MaxMemoryBytes = 64ull << 20;
};

/// Returns the fixed variable tuple of \p Fn: parameters then every
/// declared local in source order (first occurrence of each name).
std::vector<std::string> collectVariableTuple(const FunctionDecl &Fn);

/// Executes \p Fn from \p P on \p Args (must match the parameter count;
/// type agreement is the caller's responsibility — corpus inputs are
/// generated from the signature).
ExecResult execute(const Program &P, const FunctionDecl &Fn,
                   const std::vector<Value> &Args,
                   const InterpOptions &Options = {});

} // namespace liger

#endif // LIGER_INTERP_INTERPRETER_H
