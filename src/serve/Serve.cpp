//===-- serve/Serve.cpp - Embedding/naming service core --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "lang/Parser.h"
#include "nn/Checkpoint.h"
#include "support/Error.h"
#include "support/Hash.h"
#include "testgen/TraceCache.h"

#include <chrono>
#include <cstring>

using namespace liger;

namespace {

using Clock = std::chrono::steady_clock;

double millisSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// Mirror of the corpus "too small" filter (dataset/Corpus.cpp): the
/// service rejects exactly what corpus generation would have dropped,
/// so served methods look like training-distribution methods.
size_t countStatements(const Stmt *S) {
  if (!S)
    return 0;
  switch (S->kind()) {
  case StmtKind::Block: {
    size_t Total = 0;
    for (const Stmt *Child : cast<BlockStmt>(S)->body())
      Total += countStatements(Child);
    return Total;
  }
  case StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    return 1 + countStatements(If->thenStmt()) +
           countStatements(If->elseStmt());
  }
  case StmtKind::While:
    return 1 + countStatements(cast<WhileStmt>(S)->body());
  case StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    return 1 + countStatements(For->init()) + countStatements(For->step()) +
           countStatements(For->body());
  }
  default:
    return 1;
  }
}

/// Deterministic per-request trace seed: a function of the source,
/// method name, and corpus seed only, so repeated requests for the
/// same method key identically into the shared trace cache.
uint64_t requestTraceSeed(const ServeRequest &Request, uint64_t Seed) {
  StableHash H;
  H.addString(Request.Source);
  H.addString(Request.MethodName);
  H.addU64(Seed);
  return H.digest();
}

} // namespace

// Mirror of the (file-local) ligerConfig in eval/Experiments.cpp at
// the full-model ablation: serving must bind exactly the tensors the
// training run created, so the two must stay in lockstep.
LigerConfig liger::serveLigerConfig(const ExperimentScale &Scale) {
  LigerConfig Config;
  Config.EmbedDim = Scale.EmbedDim;
  Config.Hidden = Scale.Hidden;
  Config.AttnHidden = Scale.Hidden;
  Config.MaxConcretePerPath = Scale.ExecutionsPerPath;
  return Config;
}

const char *liger::serveStatusName(ServeStatus Status) {
  switch (Status) {
  case ServeStatus::Ok:
    return "ok";
  case ServeStatus::ParseError:
    return "parse-error";
  case ServeStatus::NoSuchMethod:
    return "no-such-method";
  case ServeStatus::TooSmall:
    return "too-small";
  case ServeStatus::NoTraces:
    return "no-traces";
  case ServeStatus::DeadlineExceeded:
    return "deadline-exceeded";
  }
  LIGER_UNREACHABLE("covered switch");
}

/// RAII lease of one pooled inference engine. ThreadPool::run hands
/// tasks an index, not a stable worker identity, so engines are
/// checked out of a free list for the duration of one request.
struct ServeEngine::EngineLease {
  ServeEngine &S;
  size_t Index;

  explicit EngineLease(ServeEngine &S) : S(S) {
    std::unique_lock<std::mutex> Lock(S.EngineMutex);
    S.EngineAvailable.wait(Lock, [&] { return !S.FreeEngines.empty(); });
    Index = S.FreeEngines.back();
    S.FreeEngines.pop_back();
  }
  ~EngineLease() {
    {
      std::lock_guard<std::mutex> Lock(S.EngineMutex);
      S.FreeEngines.push_back(Index);
    }
    S.EngineAvailable.notify_one();
  }
  LigerInference &engine() { return *S.Engines[Index]; }
};

ServeEngine::ServeEngine(const ServeConfig &Config)
    : Config(Config), ModelConfig(serveLigerConfig(Config.Scale)),
      Cache(Config.Scale.Cache), Pool(Config.Workers) {
  // Rebuild the task for its vocabularies: corpus generation is
  // deterministic in (Scale, UseLarge), so the ids match the run that
  // produced the checkpoint as long as the scales match.
  NameTask Task = buildNameTask(Config.Scale, Config.UseLarge);
  Joint = std::move(Task.Joint);
  Target = std::move(Task.Target);

  // Materialize parameters exactly as training would have initialized
  // them, optionally overwrite from a checkpoint, bake the immutable
  // weight image, and drop the graph-capable model: serving never
  // needs Nodes or gradients again.
  {
    LigerNamePredictor Net(Joint, Target, ModelConfig, Config.Scale.Seed);
    if (!Config.CheckpointPath.empty()) {
      std::string Error;
      bool Loaded = loadCheckpoint(Config.CheckpointPath, Net.params(),
                                   nullptr, nullptr, &Error);
      LIGER_CHECK(Loaded, "liger_serve: cannot load checkpoint");
    }
    Image = WeightImage::fromStore(Net.params());
  }

  size_t NumEngines = Config.Workers == 0 ? 1 : Config.Workers;
  Engines.reserve(NumEngines);
  FreeEngines.reserve(NumEngines);
  for (size_t I = 0; I < NumEngines; ++I) {
    Engines.push_back(std::make_unique<LigerInference>(Image, Joint, &Target,
                                                       ModelConfig));
    FreeEngines.push_back(I);
  }
}

ServeResponse ServeEngine::handle(const ServeRequest &Request) {
  EngineLease Lease(*this);
  ServeResponse Resp = handleOn(Request, Lease.engine());

  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++Stats.Requests;
  switch (Resp.Status) {
  case ServeStatus::Ok:
    ++Stats.Ok;
    break;
  case ServeStatus::ParseError:
    ++Stats.ParseErrors;
    break;
  case ServeStatus::NoSuchMethod:
    ++Stats.NoSuchMethod;
    break;
  case ServeStatus::TooSmall:
    ++Stats.TooSmall;
    break;
  case ServeStatus::NoTraces:
    ++Stats.NoTraces;
    break;
  case ServeStatus::DeadlineExceeded:
    ++Stats.DeadlineExceeded;
    break;
  }
  return Resp;
}

ServeResponse ServeEngine::handleOn(const ServeRequest &Request,
                                    LigerInference &Engine) {
  Clock::time_point Start = Clock::now();
  uint64_t DeadlineMs = Request.DeadlineMillis != 0
                            ? Request.DeadlineMillis
                            : Config.DefaultDeadlineMillis;
  auto pastDeadline = [&] {
    return DeadlineMs != 0 && millisSince(Start) > double(DeadlineMs);
  };

  ServeResponse Resp;
  auto finish = [&](ServeStatus Status, const std::string &Diag) {
    Resp.Status = Status;
    Resp.Diagnostic = Diag;
    Resp.Millis = millisSince(Start);
    return Resp;
  };
  auto deadline = [&](const char *Phase) {
    return finish(ServeStatus::DeadlineExceeded,
                  std::string("deadline of ") + std::to_string(DeadlineMs) +
                      "ms exceeded after " + Phase);
  };

  // The corpus pipeline, phase by phase (dataset/Corpus.cpp
  // buildSample), with a wall-clock check after each phase. Every
  // phase is itself bounded by the fuel / memory / attempt budgets of
  // DESIGN.md §12, so the deadline can overshoot by at most one
  // budget-bounded phase before it is observed.
  DiagnosticSink Diags;
  std::optional<Program> Parsed = parseAndCheck(Request.Source, Diags);
  if (!Parsed)
    return finish(ServeStatus::ParseError, Diags.str());

  const FunctionDecl *Fn = Parsed->findFunction(Request.MethodName);
  if (!Fn || !Fn->Body)
    return finish(ServeStatus::NoSuchMethod,
                  "no function '" + Request.MethodName + "' in source");

  if (countStatements(Fn->Body) < 3)
    return finish(ServeStatus::TooSmall,
                  "method under the 3-statement corpus threshold");
  if (pastDeadline())
    return deadline("parse");

  TestGenOptions TraceGen = Config.Scale.traceGenOptions();
  TraceGen.Seed = requestTraceSeed(Request, Config.Scale.Seed);
  CollectStats Collect;
  MethodTraces Traces = collectTracesCached(*Parsed, *Fn, Request.Source,
                                            TraceGen, Cache.get(), &Collect);
  Resp.TraceCacheHit = Collect.CacheHits > 0;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.TraceCacheHits += Collect.CacheHits;
    Stats.TraceCacheMisses += Collect.CacheMisses;
  }
  // Deadline dominates the trace-outcome filters: a request that blew
  // its wall-clock budget reports DeadlineExceeded even when the
  // collection outcome would also have been terminal.
  if (pastDeadline())
    return deadline("trace collection");
  if (Collect.allTimedOut())
    return finish(ServeStatus::NoTraces, "every execution timed out");
  if (Collect.allMemoryExceeded())
    return finish(ServeStatus::NoTraces,
                  "every execution exceeded the memory budget");
  if (Traces.Paths.empty())
    return finish(ServeStatus::NoTraces, "no successful execution");

  if (Config.ReturnEmbedding) {
    const float *E = Engine.encode(Traces);
    Resp.Embedding.assign(E, E + ModelConfig.Hidden);
    if (pastDeadline())
      return deadline("encode");
  }
  Resp.NameSubtokens = Engine.predictName(Traces);
  return finish(ServeStatus::Ok, "");
}

std::vector<ServeResponse>
ServeEngine::handleBatch(const std::vector<ServeRequest> &Requests) {
  std::vector<ServeResponse> Out(Requests.size());
  Pool.run(Requests.size(),
           [&](size_t I) { Out[I] = handle(Requests[I]); });
  return Out;
}

ServeStats ServeEngine::stats() const {
  ServeStats Out;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Out = Stats;
  }
  // Engine-local counters: take the engine mutex so no request is in
  // flight on an engine while its counters are read (callers should
  // still prefer quiescent points — leased engines are not waited on).
  std::lock_guard<std::mutex> Lock(EngineMutex);
  for (const std::unique_ptr<LigerInference> &E : Engines) {
    const LigerInference::CacheStats &C = E->cacheStats();
    Out.Embeddings.StmtHits += C.StmtHits;
    Out.Embeddings.StmtMisses += C.StmtMisses;
    Out.Embeddings.StateHits += C.StateHits;
    Out.Embeddings.StateMisses += C.StateMisses;
  }
  return Out;
}
