//===-- serve/Serve.h - Embedding/naming service core -----------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer behind the liger_serve tool and the
/// serve_throughput bench: a ServeEngine owns a frozen WeightImage
/// (DESIGN.md §13), the vocabularies of a deterministically rebuilt
/// NameTask, a shared TraceCache, and a pool of per-worker
/// forward-only LigerInference engines. A request carries raw method
/// source; handling runs the exact corpus pipeline — parse ->
/// typecheck -> statement-count filter -> cached trace collection ->
/// encode -> greedy decode — and returns predicted name sub-tokens
/// (plus, optionally, the program embedding itself).
///
/// Batches fan out over a support/ThreadPool; engines are borrowed
/// from a free list because the pool hands tasks an index, not a
/// worker identity. Each request runs under a wall-clock deadline
/// layered on top of the interpreter's fuel and memory budgets: the
/// budgets bound every individual execution, the deadline bounds the
/// whole request and is checked at pipeline phase boundaries (so it
/// can overshoot by at most one budget-bounded phase). Deadline hits
/// are a distinct terminal status, visible per-response and counted
/// in ServeStats.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SERVE_SERVE_H
#define LIGER_SERVE_SERVE_H

#include "eval/Experiments.h"
#include "models/Inference.h"
#include "support/ThreadPool.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace liger {

/// Terminal status of one serve request. Every non-Ok status maps to
/// one filter of the corpus pipeline except DeadlineExceeded, which
/// is the serving layer's own wall-clock cutoff.
enum class ServeStatus {
  Ok,
  ParseError,       ///< Does not parse / typecheck.
  NoSuchMethod,     ///< Parsed, but no function of that name.
  TooSmall,         ///< Under the 3-statement corpus threshold.
  NoTraces,         ///< All runs timed out / blew memory / no paths.
  DeadlineExceeded, ///< Wall-clock deadline hit at a phase boundary.
};

const char *serveStatusName(ServeStatus Status);

/// The model configuration serving derives from a scale — the
/// full-model ablation of eval's ligerConfig(). Exposed so benches and
/// tests construct autodiff models that bind the same tensors the
/// serving engine binds.
LigerConfig serveLigerConfig(const ExperimentScale &Scale);

struct ServeRequest {
  /// Name of the function to embed within \p Source.
  std::string MethodName;
  /// Full MiniLang source text (may define helper functions too).
  std::string Source;
  /// Per-request wall-clock deadline; 0 uses the engine default.
  uint64_t DeadlineMillis = 0;
};

struct ServeResponse {
  ServeStatus Status = ServeStatus::ParseError;
  /// Predicted method-name sub-tokens (Ok only).
  std::vector<std::string> NameSubtokens;
  /// Program embedding (Ok and ServeConfig::ReturnEmbedding only).
  std::vector<float> Embedding;
  /// Wall-clock milliseconds spent handling this request.
  double Millis = 0;
  /// True when trace collection was served from the shared cache.
  bool TraceCacheHit = false;
  /// Human-readable detail for non-Ok statuses.
  std::string Diagnostic;
};

/// Aggregated over every request an engine has handled.
struct ServeStats {
  uint64_t Requests = 0;
  uint64_t Ok = 0;
  uint64_t ParseErrors = 0;
  uint64_t NoSuchMethod = 0;
  uint64_t TooSmall = 0;
  uint64_t NoTraces = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t TraceCacheHits = 0;
  uint64_t TraceCacheMisses = 0;
  /// Summed over the worker engines' persistent embedding caches.
  LigerInference::CacheStats Embeddings;
};

struct ServeConfig {
  /// Scale knobs; vocabularies are rebuilt deterministically from it,
  /// so it must match the scale the checkpoint was trained at.
  /// Scale.Cache (when set) becomes the shared trace cache.
  ExperimentScale Scale;
  /// Use the "large" corpus substitute's vocabularies.
  bool UseLarge = false;
  /// Worker threads (also the number of pooled inference engines).
  /// 0 serves inline on the caller thread with one engine.
  size_t Workers = 1;
  /// Default per-request deadline; 0 disables the wall-clock cutoff.
  uint64_t DefaultDeadlineMillis = 2000;
  /// Optional LGCK checkpoint to serve; empty serves the seed-derived
  /// initial parameters (still deterministic — useful for benching).
  std::string CheckpointPath;
  /// Copy the program embedding into ServeResponse::Embedding.
  bool ReturnEmbedding = false;
};

/// The serving engine. Construction is the expensive part (corpus
/// rebuild for vocabularies, checkpoint load, weight-image bake);
/// handling is allocation-light. Thread-safe: handle() may be called
/// concurrently, handleBatch() fans out internally.
class ServeEngine {
public:
  explicit ServeEngine(const ServeConfig &Config);

  ServeResponse handle(const ServeRequest &Request);
  std::vector<ServeResponse> handleBatch(
      const std::vector<ServeRequest> &Requests);

  ServeStats stats() const;
  const WeightImage &weightImage() const { return Image; }
  const Vocabulary &jointVocab() const { return Joint; }
  const Vocabulary &targetVocab() const { return Target; }
  const LigerConfig &modelConfig() const { return ModelConfig; }

private:
  struct EngineLease;
  ServeResponse handleOn(const ServeRequest &Request, LigerInference &Engine);

  ServeConfig Config;
  LigerConfig ModelConfig;
  Vocabulary Joint;  ///< Copied out of the rebuilt NameTask.
  Vocabulary Target; ///< Method-name sub-token vocabulary.
  WeightImage Image;
  std::shared_ptr<TraceCache> Cache; ///< Shared; may be null.
  ThreadPool Pool;

  // Free list of per-worker inference engines (ThreadPool::run hands
  // out task indices, not worker identities, so engines are leased).
  mutable std::mutex EngineMutex;
  std::condition_variable EngineAvailable;
  std::vector<std::unique_ptr<LigerInference>> Engines;
  std::vector<size_t> FreeEngines;

  mutable std::mutex StatsMutex;
  ServeStats Stats;
};

} // namespace liger

#endif // LIGER_SERVE_SERVE_H
