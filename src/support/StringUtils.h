//===-- support/StringUtils.h - String and sub-token helpers ---*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers used across the project, most importantly the
/// sub-token splitter underlying the paper's evaluation metric
/// (case-insensitive sub-token precision/recall/F1 over method names,
/// §6.1.1: "computeDiff" -> {"compute", "diff"}).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_STRINGUTILS_H
#define LIGER_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace liger {

/// Splits an identifier into lower-cased sub-tokens at camelCase
/// boundaries, underscores, digits-to-letter boundaries, and non-alnum
/// separators. "computeDiff" -> {"compute","diff"};
/// "parse_HTTPHeader2" -> {"parse","http","header","2"}.
std::vector<std::string> splitSubtokens(const std::string &Identifier);

/// Joins \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Lower-cases ASCII letters.
std::string toLower(const std::string &S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string &S);

/// Splits on a single character separator; empty fields are kept.
std::vector<std::string> splitChar(const std::string &S, char Sep);

/// Renders a double with \p Precision digits after the decimal point.
std::string formatDouble(double Value, int Precision = 2);

/// Builds a camelCase identifier from lower-case sub-tokens:
/// {"compute","diff"} -> "computeDiff".
std::string camelCaseJoin(const std::vector<std::string> &Subtokens);

} // namespace liger

#endif // LIGER_SUPPORT_STRINGUTILS_H
