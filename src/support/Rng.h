//===-- support/Rng.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (xoshiro256** seeded via splitmix64)
/// used everywhere randomness is needed: corpus generation, test-input
/// generation, weight initialization, and data shuffling. Determinism
/// given a fixed seed is load-bearing for reproducible experiments, so we
/// do not use std::mt19937 (whose distributions are not portable across
/// standard libraries).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_RNG_H
#define LIGER_SUPPORT_RNG_H

#include "support/Error.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace liger {

/// Deterministic xoshiro256** generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ULL) { reseed(Seed); }

  /// Re-initializes the state from \p Seed via splitmix64.
  void reseed(uint64_t Seed) {
    for (auto &Word : State) {
      Seed += 0x9E3779B97F4A7C15ULL;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    LIGER_CHECK(Bound > 0, "nextBelow requires positive bound");
    // Rejection sampling to avoid modulo bias.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  int64_t nextInt(int64_t Lo, int64_t Hi) {
    LIGER_CHECK(Lo <= Hi, "nextInt requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [Lo, Hi).
  float nextFloat(float Lo, float Hi) {
    return Lo + static_cast<float>(nextDouble()) * (Hi - Lo);
  }

  /// Bernoulli draw with probability \p P of returning true.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

  /// Standard normal draw (Box–Muller; one value per call for simplicity).
  double nextGaussian() {
    double U1 = nextDouble();
    double U2 = nextDouble();
    if (U1 < 1e-300)
      U1 = 1e-300;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.28318530717958647 * U2);
  }

  /// Picks a uniformly random element of \p Items (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Items) {
    LIGER_CHECK(!Items.empty(), "pick from empty vector");
    return Items[nextBelow(Items.size())];
  }

  /// Fisher–Yates shuffle of \p Items in place.
  template <typename T> void shuffle(std::vector<T> &Items) {
    for (size_t I = Items.size(); I > 1; --I)
      std::swap(Items[I - 1], Items[nextBelow(I)]);
  }

  /// Samples an index from an unnormalized non-negative weight vector.
  size_t pickWeighted(const std::vector<double> &Weights);

  /// Derives an independent child generator (useful for parallel or
  /// per-item determinism regardless of consumption order).
  Rng split() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

  /// The raw generator state, for checkpoint serialization: restoring
  /// it with setState() resumes the exact draw sequence.
  std::array<uint64_t, 4> state() const {
    return {State[0], State[1], State[2], State[3]};
  }

  /// Restores a state captured by state().
  void setState(const std::array<uint64_t, 4> &S) {
    for (size_t I = 0; I < 4; ++I)
      State[I] = S[I];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace liger

#endif // LIGER_SUPPORT_RNG_H
