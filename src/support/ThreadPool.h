//===-- support/ThreadPool.h - Persistent worker pool -----------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size pool of persistent worker threads for data-
/// parallel loops. run(N, Fn) partitions task indices [0, N) into
/// contiguous chunks, one per worker, and blocks until every index has
/// been processed. Workers persist across run() calls, so per-batch
/// dispatch costs two condition-variable round trips instead of thread
/// creation.
///
/// Static contiguous partitioning (rather than work stealing) keeps
/// the mapping of task index to thread deterministic, which the
/// trainer relies on for reproducible thread-local arena reuse; result
/// determinism itself comes from the caller reducing per-index outputs
/// in index order.
///
/// Fn must not throw (the codebase reports fatal errors via
/// LIGER_CHECK, which aborts).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_THREADPOOL_H
#define LIGER_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace liger {

/// Fixed pool of worker threads executing indexed task batches.
class ThreadPool {
public:
  /// Spawns \p NumThreads persistent workers. Zero is allowed and
  /// makes run() execute inline on the caller (useful for serial
  /// fallback without branching at every call site).
  explicit ThreadPool(size_t NumThreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t size() const { return Workers.size(); }

  /// Calls Fn(I) for every I in [0, NumTasks), spread over the workers
  /// in contiguous chunks (task I runs on worker I * size() /
  /// NumTasks-ish; exact chunking is stable for fixed NumTasks and
  /// size()). Blocks until all tasks finish. The caller thread does
  /// not execute tasks unless the pool is empty.
  void run(size_t NumTasks, const std::function<void(size_t)> &Fn);

private:
  void workerLoop(size_t WorkerIndex);

  std::vector<std::thread> Workers;

  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable BatchDone;
  uint64_t Generation = 0;   ///< Bumped per run(); workers wait on it.
  size_t NumTasks = 0;       ///< Tasks in the active batch.
  size_t WorkersLeft = 0;    ///< Workers still running the active batch.
  const std::function<void(size_t)> *Fn = nullptr;
  bool ShuttingDown = false;
};

} // namespace liger

#endif // LIGER_SUPPORT_THREADPOOL_H
