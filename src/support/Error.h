//===-- support/Error.h - Fatal errors and checked conditions --*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight programmatic-error helpers in the spirit of
/// llvm_unreachable / report_fatal_error. The library does not use C++
/// exceptions; invariant violations abort with a diagnostic, and
/// recoverable conditions are reported through return values
/// (std::optional / Expected-like structs defined near their use sites).
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_ERROR_H
#define LIGER_SUPPORT_ERROR_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace liger {

/// Prints \p Msg to stderr and aborts. Used for violated invariants that
/// indicate a bug in this library rather than bad user input.
[[noreturn]] inline void reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "liger fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// Marks a point in the code that must never be reached.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace liger

#define LIGER_UNREACHABLE(MSG) ::liger::unreachableImpl(MSG, __FILE__, __LINE__)

/// Always-on invariant check (unlike assert, survives NDEBUG builds).
#define LIGER_CHECK(COND, MSG)                                                 \
  do {                                                                         \
    if (!(COND))                                                               \
      ::liger::unreachableImpl("check failed: " #COND " — " MSG, __FILE__,    \
                               __LINE__);                                      \
  } while (false)

#endif // LIGER_SUPPORT_ERROR_H
