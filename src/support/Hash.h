//===-- support/Hash.h - Stable content hashing -----------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stable, process-independent content hash used wherever a value
/// must be addressed or fingerprinted across runs: trace-cache keys,
/// cache-entry checksums, and corpus fingerprints. std::hash is
/// explicitly unsuitable (implementation-defined and often randomized
/// per process); this hash is a fixed function of the fed bytes.
///
/// The construction is two independent FNV-1a lanes over the same byte
/// stream, each finished with a splitmix64 avalanche, yielding a
/// 128-bit digest. Not cryptographic — it addresses cache entries and
/// detects corruption, it does not defend against adversaries.
///
/// Multi-byte integers are fed in their native little-endian layout
/// (the only platform we target, same convention as support/BinaryIO).
/// Variable-length fields are length-prefixed so that ("ab", "c") and
/// ("a", "bc") hash differently.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_HASH_H
#define LIGER_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace liger {

/// A 128-bit stable digest (two finished 64-bit lanes).
struct Digest128 {
  uint64_t Lo = 0;
  uint64_t Hi = 0;

  bool operator==(const Digest128 &O) const {
    return Lo == O.Lo && Hi == O.Hi;
  }
  bool operator!=(const Digest128 &O) const { return !(*this == O); }

  /// 32 lowercase hex characters (Hi then Lo), usable as a file name.
  std::string hex() const;
};

/// Streaming stable hasher. Feed bytes/values, then read digest() or
/// digest128(); feeding more afterwards and re-reading is allowed.
class StableHash {
public:
  void addBytes(const void *Data, size_t Size);

  void addU8(uint8_t V) { addBytes(&V, sizeof(V)); }
  void addU32(uint32_t V) { addBytes(&V, sizeof(V)); }
  void addU64(uint64_t V) { addBytes(&V, sizeof(V)); }
  void addI64(int64_t V) { addU64(static_cast<uint64_t>(V)); }
  void addBool(bool V) { addU8(V ? 1 : 0); }
  /// Hashes the bit pattern (so -0.0 and 0.0 differ; NaNs are stable).
  void addF64(double V);
  /// Length-prefixed, so adjacent strings cannot alias.
  void addString(const std::string &S) {
    addU64(S.size());
    addBytes(S.data(), S.size());
  }

  /// The finished 64-bit digest (low lane).
  uint64_t digest() const;
  /// The finished 128-bit digest.
  Digest128 digest128() const;

private:
  // FNV-1a lanes: standard offset basis, and the same basis with the
  // halves swapped for the second lane.
  uint64_t A = 0xCBF29CE484222325ULL;
  uint64_t B = 0x84222325CBF29CE4ULL;
};

} // namespace liger

#endif // LIGER_SUPPORT_HASH_H
