//===-- support/StringUtils.cpp - String and sub-token helpers -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>

using namespace liger;

static bool isUpperAscii(char C) { return C >= 'A' && C <= 'Z'; }
static bool isLowerAscii(char C) { return C >= 'a' && C <= 'z'; }
static bool isDigitAscii(char C) { return C >= '0' && C <= '9'; }
static bool isAlnumAscii(char C) {
  return isUpperAscii(C) || isLowerAscii(C) || isDigitAscii(C);
}

std::vector<std::string> liger::splitSubtokens(const std::string &Identifier) {
  std::vector<std::string> Result;
  std::string Current;
  auto Flush = [&] {
    if (!Current.empty()) {
      Result.push_back(toLower(Current));
      Current.clear();
    }
  };
  for (size_t I = 0; I < Identifier.size(); ++I) {
    char C = Identifier[I];
    if (!isAlnumAscii(C)) {
      Flush();
      continue;
    }
    if (!Current.empty()) {
      char Prev = Current.back();
      bool LowerToUpper = isLowerAscii(Prev) && isUpperAscii(C);
      bool LetterToDigit = !isDigitAscii(Prev) && isDigitAscii(C);
      bool DigitToLetter = isDigitAscii(Prev) && !isDigitAscii(C);
      // "HTTPHeader": break between the last upper of an acronym and the
      // following Upper+lower word start.
      bool AcronymEnd = isUpperAscii(Prev) && isUpperAscii(C) &&
                        I + 1 < Identifier.size() &&
                        isLowerAscii(Identifier[I + 1]);
      if (LowerToUpper || LetterToDigit || DigitToLetter || AcronymEnd)
        Flush();
    }
    Current.push_back(C);
  }
  Flush();
  return Result;
}

std::string liger::join(const std::vector<std::string> &Parts,
                        const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string liger::toLower(const std::string &S) {
  std::string Result = S;
  for (char &C : Result)
    if (isUpperAscii(C))
      C = static_cast<char>(C - 'A' + 'a');
  return Result;
}

bool liger::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

bool liger::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string liger::trim(const std::string &S) {
  size_t Begin = 0;
  size_t End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> liger::splitChar(const std::string &S, char Sep) {
  std::vector<std::string> Result;
  std::string Current;
  for (char C : S) {
    if (C == Sep) {
      Result.push_back(Current);
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  Result.push_back(Current);
  return Result;
}

std::string liger::formatDouble(double Value, int Precision) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Precision, Value);
  return Buffer;
}

std::string liger::camelCaseJoin(const std::vector<std::string> &Subtokens) {
  std::string Result;
  for (const std::string &Tok : Subtokens) {
    if (Tok.empty())
      continue;
    if (Result.empty()) {
      Result += Tok;
      continue;
    }
    Result.push_back(
        isLowerAscii(Tok[0]) ? static_cast<char>(Tok[0] - 'a' + 'A') : Tok[0]);
    Result += Tok.substr(1);
  }
  return Result;
}
