//===-- support/Stopwatch.h - Wall-clock timing ----------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch used to report training/evaluation
/// durations in the experiment harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_STOPWATCH_H
#define LIGER_SUPPORT_STOPWATCH_H

#include <chrono>

namespace liger {

/// Measures elapsed wall-clock time since construction or last reset.
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  /// Restarts the measurement window.
  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Milliseconds elapsed since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace liger

#endif // LIGER_SUPPORT_STOPWATCH_H
