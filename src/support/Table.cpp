//===-- support/Table.cpp - Aligned table and CSV reporting --------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include "support/Error.h"

#include <cstdio>
#include <fstream>

using namespace liger;

TextTable::TextTable(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {
  LIGER_CHECK(!Header.empty(), "table needs at least one column");
}

void TextTable::addRow(std::vector<std::string> Row) {
  LIGER_CHECK(Row.size() == Header.size(), "row arity must match header");
  Rows.push_back(std::move(Row));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto RenderRow = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t C = 0; C < Row.size(); ++C) {
      Line += Row[C];
      Line.append(Widths[C] - Row[C].size(), ' ');
      if (C + 1 != Row.size())
        Line += "  ";
    }
    Line += '\n';
    return Line;
  };

  std::string Result = RenderRow(Header);
  size_t TotalWidth = Result.size() - 1;
  Result.append(TotalWidth, '-');
  Result += '\n';
  for (const auto &Row : Rows)
    Result += RenderRow(Row);
  return Result;
}

void TextTable::print() const {
  std::string Rendered = render();
  std::fwrite(Rendered.data(), 1, Rendered.size(), stdout);
  std::fflush(stdout);
}

static std::string escapeCsvField(const std::string &Field) {
  bool NeedsQuote = Field.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuote)
    return Field;
  std::string Result = "\"";
  for (char C : Field) {
    if (C == '"')
      Result += '"';
    Result += C;
  }
  Result += '"';
  return Result;
}

bool TextTable::writeCsv(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  auto WriteRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C < Row.size(); ++C) {
      if (C)
        Out << ',';
      Out << escapeCsvField(Row[C]);
    }
    Out << '\n';
  };
  WriteRow(Header);
  for (const auto &Row : Rows)
    WriteRow(Row);
  return static_cast<bool>(Out);
}
