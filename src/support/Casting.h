//===-- support/Casting.h - isa/cast/dyn_cast templates --------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal hand-rolled RTTI scheme in the style of LLVM's
/// llvm/Support/Casting.h. Classes opt in by providing a static
/// `classof(const Base *)` predicate; the templates below then provide
/// isa<>, cast<>, and dyn_cast<> without enabling C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_CASTING_H
#define LIGER_SUPPORT_CASTING_H

#include <cassert>

namespace liger {

/// Returns true if \p Val dynamically is a \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that the cast is valid.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast (const overload).
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast returning null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Downcast returning null (const overload).
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace liger

#endif // LIGER_SUPPORT_CASTING_H
