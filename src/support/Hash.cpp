//===-- support/Hash.cpp - Stable content hashing --------------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#include <cstring>

using namespace liger;

namespace {

constexpr uint64_t FnvPrime = 0x100000001B3ULL;

/// splitmix64 finalizer: avalanches the raw FNV state so that digests
/// of short inputs still differ in every bit position.
uint64_t finish(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBULL;
  return Z ^ (Z >> 31);
}

} // namespace

void StableHash::addBytes(const void *Data, size_t Size) {
  const auto *Bytes = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I < Size; ++I) {
    A = (A ^ Bytes[I]) * FnvPrime;
    B = (B ^ Bytes[I]) * FnvPrime;
  }
}

void StableHash::addF64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  addU64(Bits);
}

uint64_t StableHash::digest() const { return finish(A); }

Digest128 StableHash::digest128() const { return {finish(A), finish(B)}; }

std::string Digest128::hex() const {
  static const char *Digits = "0123456789abcdef";
  std::string Out(32, '0');
  uint64_t Words[2] = {Hi, Lo};
  for (int W = 0; W < 2; ++W)
    for (int I = 0; I < 16; ++I)
      Out[W * 16 + I] =
          Digits[(Words[W] >> (60 - 4 * I)) & 0xF];
  return Out;
}
