//===-- support/BinaryIO.cpp - Checked binary file I/O --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/BinaryIO.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

using namespace liger;

//===----------------------------------------------------------------------===//
// BinaryWriter
//===----------------------------------------------------------------------===//

void BinaryWriter::writeBytes(const void *Data, size_t Size) {
  if (Failed || Size == 0)
    return;
  if (std::fwrite(Data, 1, Size, F) != Size) {
    Failed = true;
    return;
  }
  Written += Size;
}

void BinaryWriter::writeString(const std::string &S) {
  writeU64(S.size());
  writeBytes(S.data(), S.size());
}

//===----------------------------------------------------------------------===//
// BinaryReader
//===----------------------------------------------------------------------===//

bool BinaryReader::readBytes(void *Out, size_t Size) {
  if (Failed)
    return false;
  if (Size > Left || std::fread(Out, 1, Size, F) != Size) {
    Failed = true;
    return false;
  }
  Left -= Size;
  return true;
}

bool BinaryReader::readString(std::string &Out, uint64_t MaxLen) {
  uint64_t Len = 0;
  if (!readU64(Len))
    return false;
  if (Len > MaxLen || Len > Left) {
    Failed = true;
    return false;
  }
  Out.assign(static_cast<size_t>(Len), '\0');
  return readBytes(Out.data(), static_cast<size_t>(Len));
}

bool BinaryReader::skip(uint64_t Count) {
  if (Failed)
    return false;
  if (Count > Left ||
      std::fseek(F, static_cast<long>(Count), SEEK_CUR) != 0) {
    Failed = true;
    return false;
  }
  Left -= Count;
  return true;
}

//===----------------------------------------------------------------------===//
// Atomic file replacement and filesystem helpers
//===----------------------------------------------------------------------===//

bool liger::atomicWriteFile(
    const std::string &Path,
    const std::function<void(BinaryWriter &)> &Fill, std::string *Error) {
  auto Fail = [&](const std::string &What) {
    if (Error)
      *Error = What + ": " + std::strerror(errno);
    return false;
  };

  // The temp name carries the pid and a process-wide counter so that
  // concurrent writers of the same target (e.g. two corpus workers
  // storing the same trace-cache key) never interleave into one temp
  // file; whichever rename lands last wins, and both files are whole.
  static std::atomic<uint64_t> TmpCounter{0};
  std::string TmpPath = Path + ".tmp." + std::to_string(::getpid()) + "." +
                        std::to_string(TmpCounter.fetch_add(1));
  FILE *F = std::fopen(TmpPath.c_str(), "wb");
  if (!F)
    return Fail("cannot create temp file " + TmpPath);

  BinaryWriter W(F);
  Fill(W);

  // A short write, a failed flush, or a failed fsync all mean the
  // payload may not be durably on disk — abandon the temp file and
  // leave any previous file at Path untouched.
  bool Ok = W.ok() && std::fflush(F) == 0 && ::fsync(::fileno(F)) == 0;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(TmpPath.c_str());
    return Fail("short write to " + TmpPath);
  }
  if (std::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    std::remove(TmpPath.c_str());
    return Fail("cannot rename " + TmpPath + " over " + Path);
  }
  return true;
}

bool liger::fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

uint64_t liger::fileSize(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
    return UINT64_MAX;
  return static_cast<uint64_t>(St.st_size);
}

bool liger::ensureDirExists(const std::string &Path) {
  if (Path.empty())
    return false;
  // Walk the path, creating each component; "a/b/c" needs a and a/b.
  for (size_t Pos = 1; Pos <= Path.size(); ++Pos) {
    if (Pos != Path.size() && Path[Pos] != '/')
      continue;
    std::string Prefix = Path.substr(0, Pos);
    if (::mkdir(Prefix.c_str(), 0755) == 0 || errno == EEXIST)
      continue;
    return false;
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}
