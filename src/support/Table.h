//===-- support/Table.h - Aligned table and CSV reporting ------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small reporting helpers used by the benchmark harnesses: an aligned
/// plain-text table (the format every table/figure bench prints its
/// paper-versus-measured rows in) and a CSV writer for plotting the
/// figure series externally.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_TABLE_H
#define LIGER_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace liger {

/// Accumulates rows of strings and renders them column-aligned.
class TextTable {
public:
  explicit TextTable(std::vector<std::string> Header);

  /// Appends one row; its arity must match the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table (header, separator, rows) as one string.
  std::string render() const;

  /// Writes the rendered table to stdout.
  void print() const;

  /// Writes header+rows as CSV to \p Path. Returns false on I/O failure.
  bool writeCsv(const std::string &Path) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace liger

#endif // LIGER_SUPPORT_TABLE_H
