//===-- support/ThreadPool.cpp - Persistent worker pool --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace liger;

ThreadPool::ThreadPool(size_t NumThreads) {
  Workers.reserve(NumThreads);
  for (size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::run(size_t NumTasksIn, const std::function<void(size_t)> &FnIn) {
  if (NumTasksIn == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < NumTasksIn; ++I)
      FnIn(I);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    NumTasks = NumTasksIn;
    Fn = &FnIn;
    WorkersLeft = Workers.size();
    ++Generation;
  }
  WakeWorkers.notify_all();
  std::unique_lock<std::mutex> Lock(Mutex);
  BatchDone.wait(Lock, [this] { return WorkersLeft == 0; });
  Fn = nullptr;
}

void ThreadPool::workerLoop(size_t WorkerIndex) {
  uint64_t SeenGeneration = 0;
  while (true) {
    const std::function<void(size_t)> *BatchFn;
    size_t BatchTasks;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      BatchFn = Fn;
      BatchTasks = NumTasks;
    }

    // Contiguous chunk [Begin, End) for this worker; the same index
    // always lands on the same worker for a fixed (tasks, threads).
    size_t PerWorker = (BatchTasks + Workers.size() - 1) / Workers.size();
    size_t Begin = WorkerIndex * PerWorker;
    size_t End = std::min(BatchTasks, Begin + PerWorker);
    for (size_t I = Begin; I < End; ++I)
      (*BatchFn)(I);

    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --WorkersLeft;
    }
    BatchDone.notify_one();
  }
}
