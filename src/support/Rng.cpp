//===-- support/Rng.cpp - Deterministic pseudo-random numbers ------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

using namespace liger;

size_t Rng::pickWeighted(const std::vector<double> &Weights) {
  LIGER_CHECK(!Weights.empty(), "pickWeighted from empty weights");
  double Total = 0;
  for (double W : Weights) {
    LIGER_CHECK(W >= 0, "pickWeighted requires non-negative weights");
    Total += W;
  }
  LIGER_CHECK(Total > 0, "pickWeighted requires a positive total weight");
  double Target = nextDouble() * Total;
  double Acc = 0;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
