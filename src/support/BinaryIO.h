//===-- support/BinaryIO.h - Checked binary file I/O ------------*- C++ -*-===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked binary readers/writers over stdio, plus an atomic-replace
/// file writer. These exist because naive fwrite-and-hope serialization
/// silently truncates on disk-full or a killed process; every write and
/// read here is checked, and whole-file writes go through a temp file +
/// rename so a crash can never leave a torn file at the target path.
///
/// Numbers are fixed-width little-endian (the only platform we target);
/// a magic word at the head of each format catches byte-order or
/// wrong-file mistakes before any payload is interpreted.
///
//===----------------------------------------------------------------------===//

#ifndef LIGER_SUPPORT_BINARYIO_H
#define LIGER_SUPPORT_BINARYIO_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace liger {

/// Error-latching binary writer over a non-owned FILE*. After the first
/// failed write every later call is a no-op and ok() stays false, so a
/// serializer can emit its whole record and check once at the end.
class BinaryWriter {
public:
  explicit BinaryWriter(FILE *F) : F(F) {}

  void writeBytes(const void *Data, size_t Size);
  void writeU8(uint8_t V) { writeBytes(&V, sizeof(V)); }
  void writeU32(uint32_t V) { writeBytes(&V, sizeof(V)); }
  void writeU64(uint64_t V) { writeBytes(&V, sizeof(V)); }
  void writeF64(double V) { writeBytes(&V, sizeof(V)); }
  void writeFloats(const float *Data, size_t Count) {
    writeBytes(Data, Count * sizeof(float));
  }
  /// u64 byte length followed by the raw bytes.
  void writeString(const std::string &S);

  /// Bytes successfully written so far.
  uint64_t bytesWritten() const { return Written; }

  bool ok() const { return !Failed; }

private:
  FILE *F = nullptr;
  uint64_t Written = 0;
  bool Failed = false;
};

/// Bounded binary reader over a non-owned FILE*. Construction fixes a
/// byte budget (normally the file size); every read is checked against
/// both the budget and the actual bytes returned, so a truncated or
/// corrupt file can never read past EOF, spin, or induce an oversized
/// allocation. After the first failure every later call fails too.
class BinaryReader {
public:
  BinaryReader(FILE *F, uint64_t TotalBytes) : F(F), Left(TotalBytes) {}

  bool readBytes(void *Out, size_t Size);
  bool readU8(uint8_t &V) { return readBytes(&V, sizeof(V)); }
  bool readU32(uint32_t &V) { return readBytes(&V, sizeof(V)); }
  bool readU64(uint64_t &V) { return readBytes(&V, sizeof(V)); }
  bool readF64(double &V) { return readBytes(&V, sizeof(V)); }
  bool readFloats(float *Out, size_t Count) {
    return readBytes(Out, Count * sizeof(float));
  }
  /// Reads a writeString()-format string; fails (without allocating)
  /// when the stored length exceeds \p MaxLen or the remaining budget.
  bool readString(std::string &Out, uint64_t MaxLen);

  /// Skips \p Count bytes (bounded like a read).
  bool skip(uint64_t Count);

  /// Bytes still available under the budget.
  uint64_t remaining() const { return Left; }

  bool ok() const { return !Failed; }

private:
  FILE *F = nullptr;
  uint64_t Left = 0;
  bool Failed = false;
};

/// Writes \p Path atomically: \p Fill streams the contents into a
/// writer positioned on "Path.tmp"; on success the temp file is
/// flushed, fsync'ed, closed and renamed over \p Path in one step, so
/// a crash at any point leaves either the old file or the new one,
/// never a torn mix. On any failure the temp file is removed, \p Path
/// is untouched, false is returned, and \p Error (if non-null) gets a
/// one-line diagnostic.
bool atomicWriteFile(const std::string &Path,
                     const std::function<void(BinaryWriter &)> &Fill,
                     std::string *Error = nullptr);

/// True when \p Path exists and is a regular file.
bool fileExists(const std::string &Path);

/// Size in bytes of the regular file at \p Path, or UINT64_MAX on error.
uint64_t fileSize(const std::string &Path);

/// Creates \p Path (and missing parents) as directories, mkdir -p
/// style. Returns false when a component exists but is not a directory
/// or creation fails.
bool ensureDirExists(const std::string &Path);

} // namespace liger

#endif // LIGER_SUPPORT_BINARYIO_H
