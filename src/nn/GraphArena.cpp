//===-- nn/GraphArena.cpp - Arena allocation for autodiff graphs -----------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "nn/GraphArena.h"

#include "nn/Graph.h"

#include <new>

using namespace liger;

namespace {

constexpr size_t NodesPerSlab = 256;
constexpr size_t ByteChunkBytes = size_t(1) << 16;

/// The thread's explicitly scoped arena, if any (see GraphArena::Scope).
thread_local GraphArena *CurrentArena = nullptr;

} // namespace

/// Uninitialized storage for NodesPerSlab nodes.
struct GraphArena::NodeSlab {
  alignas(Node) std::byte Mem[NodesPerSlab * sizeof(Node)];

  Node *at(size_t I) {
    return std::launder(reinterpret_cast<Node *>(Mem + I * sizeof(Node)));
  }
};

/// One block of the POD byte arena. Oversized requests get a dedicated
/// chunk of exactly the requested size. Backing memory is cache-line
/// aligned so a 64-byte-aligned allocBytes request (fused-cell
/// activation payloads) is satisfiable at any offset.
struct GraphArena::ByteChunk {
  explicit ByteChunk(size_t Bytes)
      : Mem(static_cast<std::byte *>(
            ::operator new(Bytes, std::align_val_t(64)))),
        Capacity(Bytes) {}

  ~ByteChunk() { ::operator delete(Mem, std::align_val_t(64)); }
  ByteChunk(const ByteChunk &) = delete;
  ByteChunk &operator=(const ByteChunk &) = delete;

  std::byte *Mem;
  size_t Capacity;
};

GraphArena::GraphArena() = default;

GraphArena::~GraphArena() { reset(); }

Node *GraphArena::newNode() {
  if (SlabUsed == NodesPerSlab) {
    ++SlabIndex;
    SlabUsed = 0;
  }
  if (SlabIndex == Slabs.size())
    Slabs.push_back(std::make_unique<NodeSlab>());
  Node *N = new (Slabs[SlabIndex]->Mem + SlabUsed * sizeof(Node)) Node();
  ++SlabUsed;
  ++Live;
  if (Live > Peak)
    Peak = Live;
  return N;
}

void *GraphArena::allocBytes(size_t Bytes, size_t Align) {
  if (Bytes == 0)
    return nullptr;
  if (Bytes > ByteChunkBytes) {
    // Dedicated chunk; insert behind the cursor so bump allocation can
    // continue in the current chunk.
    auto Dedicated = std::make_unique<ByteChunk>(Bytes);
    void *P = Dedicated->Mem;
    Chunks.insert(Chunks.begin() + static_cast<long>(ChunkIndex),
                  std::move(Dedicated));
    ++ChunkIndex;
    return P;
  }
  while (true) {
    if (ChunkIndex == Chunks.size()) {
      Chunks.push_back(std::make_unique<ByteChunk>(ByteChunkBytes));
      ChunkUsed = 0;
    }
    ByteChunk &C = *Chunks[ChunkIndex];
    size_t Offset = (ChunkUsed + Align - 1) & ~(Align - 1);
    if (Offset + Bytes <= C.Capacity) {
      ChunkUsed = Offset + Bytes;
      return C.Mem + Offset;
    }
    ++ChunkIndex;
    ChunkUsed = 0;
  }
}

void GraphArena::reset() {
  for (size_t S = 0; S <= SlabIndex && S < Slabs.size(); ++S) {
    size_t Used = S == SlabIndex ? SlabUsed : NodesPerSlab;
    for (size_t I = 0; I < Used; ++I)
      Slabs[S]->at(I)->~Node();
  }
  SlabIndex = 0;
  SlabUsed = 0;
  ChunkIndex = 0;
  ChunkUsed = 0;
  Live = 0;
}

GraphArena &GraphArena::current() {
  if (CurrentArena)
    return *CurrentArena;
  thread_local GraphArena Default;
  return Default;
}

GraphArena::Scope::Scope(GraphArena &Arena) : Prev(CurrentArena) {
  CurrentArena = &Arena;
}

GraphArena::Scope::~Scope() { CurrentArena = Prev; }
