//===-- nn/Module.cpp - Neural network building blocks --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "nn/Module.h"

#include "nn/Checkpoint.h"

#include <atomic>
#include <cstdio>
#include <cstring>

using namespace liger;

namespace {

/// Process-wide fused-cell toggle (see Module.h).
std::atomic<bool> FusedCells{true};

/// Process-wide fused-attention toggle (see Module.h).
std::atomic<bool> FusedAttention{true};

/// Process-wide batched-cell toggle (see Module.h).
std::atomic<bool> BatchedCells{true};

/// Process-wide batched-attention toggle (see Module.h).
std::atomic<bool> BatchedAttention{true};

/// Process-wide batched-loss-head toggle (see Module.h).
std::atomic<bool> BatchedLossHead{true};

/// Process-wide cross-sample state-cache toggle (see Module.h).
std::atomic<bool> CrossSampleStateCache{true};

/// Draws a Glorot-uniform [Rows x Cols] block into rows
/// [Row0, Row0 + Rows) of \p Packed, consuming exactly the Rng draws
/// the per-gate Tensor::xavier(Rows, Cols, R) call made — a fixed seed
/// yields the same initial weights as the pre-packing layout.
void xavierRows(Tensor &Packed, size_t Row0, size_t Rows, size_t Cols,
                Rng &R) {
  float Bound = std::sqrt(6.0f / static_cast<float>(Rows + Cols));
  float *D = Packed.data() + Row0 * Cols;
  for (size_t I = 0; I < Rows * Cols; ++I)
    D[I] = R.nextFloat(-Bound, Bound);
}

} // namespace

bool liger::fusedCellsEnabled() {
  return FusedCells.load(std::memory_order_relaxed);
}

void liger::setFusedCellsEnabled(bool Enabled) {
  FusedCells.store(Enabled, std::memory_order_relaxed);
}

bool liger::fusedAttentionEnabled() {
  return FusedAttention.load(std::memory_order_relaxed);
}

void liger::setFusedAttentionEnabled(bool Enabled) {
  FusedAttention.store(Enabled, std::memory_order_relaxed);
}

bool liger::batchedCellsEnabled() {
  return BatchedCells.load(std::memory_order_relaxed);
}

void liger::setBatchedCellsEnabled(bool Enabled) {
  BatchedCells.store(Enabled, std::memory_order_relaxed);
}

bool liger::batchedAttentionEnabled() {
  return BatchedAttention.load(std::memory_order_relaxed);
}

void liger::setBatchedAttentionEnabled(bool Enabled) {
  BatchedAttention.store(Enabled, std::memory_order_relaxed);
}

bool liger::batchedLossHeadEnabled() {
  return BatchedLossHead.load(std::memory_order_relaxed);
}

void liger::setBatchedLossHeadEnabled(bool Enabled) {
  BatchedLossHead.store(Enabled, std::memory_order_relaxed);
}

bool liger::crossSampleStateCacheEnabled() {
  return CrossSampleStateCache.load(std::memory_order_relaxed);
}

void liger::setCrossSampleStateCacheEnabled(bool Enabled) {
  CrossSampleStateCache.store(Enabled, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// ParamStore
//===----------------------------------------------------------------------===//

Var ParamStore::addParam(const std::string &Name, Tensor Init) {
  // Parameters are store-owned (not arena-owned): they must survive
  // arena resets between samples/epochs. Seq stays 0 so every graph
  // node (Seq >= 1) orders after its parameter parents.
  Storage.emplace_back();
  Node &N = Storage.back();
  N.Value = std::move(Init);
  N.RequiresGrad = true;
  N.ParamIndex = static_cast<int32_t>(Params.size());
  Params.push_back(&N);
  Names.push_back(Name);
  return &N;
}

void ParamStore::addLegacyView(const std::string &Name, const Var &Param,
                               size_t Offset, std::vector<size_t> Dims) {
  size_t Count = 1;
  for (size_t D : Dims)
    Count *= D;
  LIGER_CHECK(Offset + Count <= Param->Value.size(),
              "legacy view exceeds parameter bounds");
  LegacyView View;
  View.Param = Param;
  View.Offset = Offset;
  View.Dims = std::move(Dims);
  Views.emplace_back(Name, std::move(View));
}

void ParamStore::zeroGrads() {
  for (const Var &P : Params)
    if (!P->Grad.empty())
      P->Grad.zero();
}

size_t ParamStore::numScalars() const {
  size_t Total = 0;
  for (const Var &P : Params)
    Total += P->Value.size();
  return Total;
}

double ParamStore::gradNorm() const {
  double Total = 0;
  for (const Var &P : Params)
    if (!P->Grad.empty())
      Total += P->Grad.sumSquares();
  return std::sqrt(Total);
}

void ParamStore::scaleGrads(float Factor) {
  for (const Var &P : Params)
    if (!P->Grad.empty())
      P->Grad.scale(Factor);
}

void ParamStore::accumulateSink(const GradSink &Sink) {
  for (size_t I = 0; I < Sink.size(); ++I) {
    if (!Sink.touched(I))
      continue;
    Node &P = *Params[I];
    if (P.Grad.empty())
      P.Grad = Tensor::zerosLike(P.Value);
    P.Grad.accumulate(Sink.grad(I));
  }
}

bool ParamStore::save(const std::string &Path, std::string *Error) const {
  return saveCheckpoint(Path, *this, nullptr, nullptr, Error);
}

bool ParamStore::load(const std::string &Path, std::string *Error) {
  return loadCheckpoint(Path, *this, nullptr, nullptr, Error);
}

//===----------------------------------------------------------------------===//
// Linear / Mlp
//===----------------------------------------------------------------------===//

Linear::Linear(ParamStore &Store, const std::string &Name, size_t In,
               size_t Out, Rng &R) {
  W = Store.addParam(Name + ".W", Tensor::xavier(Out, In, R));
  B = Store.addParam(Name + ".b", Tensor::zeros(Out));
}

Var Linear::apply(const Var &X) const { return add(matvec(W, X), B); }

std::vector<Var>
Linear::softmaxCrossEntropyBatch(const std::vector<Var> &Xs,
                                 const std::vector<size_t> &Targets) const {
  LIGER_CHECK(Xs.size() == Targets.size(),
              "softmaxCrossEntropyBatch needs one target per lane");
  if (Xs.size() <= 1 || !batchedLossHeadEnabled()) {
    std::vector<Var> Out;
    Out.reserve(Xs.size());
    for (size_t I = 0; I < Xs.size(); ++I)
      Out.push_back(softmaxCrossEntropy(apply(Xs[I]), Targets[I]));
    return Out;
  }
  return softmaxCrossEntropyBatchOp(W, B, Xs, Targets);
}

Mlp::Mlp(ParamStore &Store, const std::string &Name, size_t In, size_t Hidden,
         size_t Out, Rng &R)
    : First(Store, Name + ".l1", In, Hidden, R),
      Second(Store, Name + ".l2", Hidden, Out, R) {}

Var Mlp::apply(const Var &X) const {
  return Second.apply(tanhV(First.apply(X)));
}

//===----------------------------------------------------------------------===//
// RecurrentCell
//===----------------------------------------------------------------------===//

RecurrentCell::RecurrentCell(ParamStore &Store, const std::string &Name,
                             CellKind Kind, size_t In, size_t Hidden, Rng &R)
    : Kind(Kind), In(In), Hidden(Hidden) {
  if (Kind == CellKind::Rnn) {
    L1 = Linear(Store, Name + ".Wx", In, Hidden, R);
    U1 = Store.addParam(Name + ".Wh", Tensor::xavier(Hidden, Hidden, R));
    return;
  }
  // Gated cells store the gate weights packed (z, r, n / i, f, g, o);
  // per-gate blocks are drawn in the pre-packing creation order (all
  // x-projections, then all h-projections) so fixed seeds reproduce.
  size_t K = Kind == CellKind::Gru ? 3 : 4;
  Tensor Wx = Tensor::zeros(K * Hidden, In);
  for (size_t G = 0; G < K; ++G)
    xavierRows(Wx, G * Hidden, Hidden, In, R);
  Tensor Wh = Tensor::zeros(K * Hidden, Hidden);
  for (size_t G = 0; G < K; ++G)
    xavierRows(Wh, G * Hidden, Hidden, Hidden, R);
  PWx = Store.addParam(Name + ".Wx", std::move(Wx));
  PBx = Store.addParam(Name + ".bx", Tensor::zeros(K * Hidden));
  PWh = Store.addParam(Name + ".Wh", std::move(Wh));

  // Checkpoints written before packing address the gates by their old
  // per-tensor names; register those as views for the loader.
  static const char *GruX[] = {".Wz", ".Wr", ".Wn"};
  static const char *GruH[] = {".Uz", ".Ur", ".Un"};
  static const char *LstmX[] = {".Wi", ".Wf", ".Wg", ".Wo"};
  static const char *LstmH[] = {".Ui", ".Uf", ".Ug", ".Uo"};
  const char **XNames = Kind == CellKind::Gru ? GruX : LstmX;
  const char **HNames = Kind == CellKind::Gru ? GruH : LstmH;
  for (size_t G = 0; G < K; ++G) {
    Store.addLegacyView(Name + XNames[G] + ".W", PWx, G * Hidden * In,
                        {Hidden, In});
    Store.addLegacyView(Name + XNames[G] + ".b", PBx, G * Hidden, {Hidden});
    Store.addLegacyView(Name + HNames[G], PWh, G * Hidden * Hidden,
                        {Hidden, Hidden});
  }
}

RecState RecurrentCell::initial() const {
  RecState S;
  S.H = constant(Tensor::zeros(Hidden));
  if (Kind == CellKind::Lstm)
    S.C = constant(Tensor::zeros(Hidden));
  return S;
}

RecState RecurrentCell::step(const Var &X, const RecState &Prev) const {
  if (Kind == CellKind::Rnn) {
    RecState S;
    S.H = tanhV(add(L1.apply(X), matvec(U1, Prev.H)));
    return S;
  }
  if (!fusedCellsEnabled())
    return stepUnfused(X, Prev);
  RecState S;
  if (Kind == CellKind::Gru) {
    S.H = gruCellOp(PWx, PBx, PWh, X, Prev.H);
  } else {
    CellOut Out = lstmCellOp(PWx, PBx, PWh, X, Prev.H, Prev.C);
    S.H = Out.H;
    S.C = Out.C;
  }
  return S;
}

std::vector<RecState>
RecurrentCell::stepBatch(const std::vector<Var> &Xs,
                         const std::vector<RecState> &Prev) const {
  LIGER_CHECK(Xs.size() == Prev.size() && !Xs.empty(),
              "stepBatch needs matching non-empty input/state sets");
  size_t B = Xs.size();
  if (Kind == CellKind::Rnn || B == 1 || !batchedCellsEnabled() ||
      !fusedCellsEnabled()) {
    std::vector<RecState> Out;
    Out.reserve(B);
    for (size_t I = 0; I < B; ++I)
      Out.push_back(step(Xs[I], Prev[I]));
    return Out;
  }
  std::vector<RecState> Out(B);
  if (Kind == CellKind::Gru) {
    std::vector<Var> HPrevs;
    HPrevs.reserve(B);
    for (const RecState &S : Prev)
      HPrevs.push_back(S.H);
    std::vector<Var> Hs = gruCellBatchOp(PWx, PBx, PWh, Xs, HPrevs);
    for (size_t I = 0; I < B; ++I)
      Out[I].H = Hs[I];
    return Out;
  }
  std::vector<Var> HPrevs, CPrevs;
  HPrevs.reserve(B);
  CPrevs.reserve(B);
  for (const RecState &S : Prev) {
    HPrevs.push_back(S.H);
    CPrevs.push_back(S.C);
  }
  std::vector<CellOut> Cells =
      lstmCellBatchOp(PWx, PBx, PWh, Xs, HPrevs, CPrevs);
  for (size_t I = 0; I < B; ++I) {
    Out[I].H = Cells[I].H;
    Out[I].C = Cells[I].C;
  }
  return Out;
}

RecState RecurrentCell::stepUnfused(const Var &X, const RecState &Prev) const {
  // Node creation order below is load-bearing: the fused cell ops'
  // backward closures replay gradient accumulation in exactly this
  // graph's descending-Seq order, which is what makes the two paths
  // bitwise-identical. Keep every op an explicitly sequenced statement
  // (nested calls would leave argument evaluation order unspecified).
  size_t H = Hidden;
  switch (Kind) {
  case CellKind::Rnn: {
    RecState S;
    S.H = tanhV(add(L1.apply(X), matvec(U1, Prev.H)));
    return S;
  }
  case CellKind::Gru: {
    Var Wz = rowsView(PWx, 0, H);
    Var Wr = rowsView(PWx, H, H);
    Var Wn = rowsView(PWx, 2 * H, H);
    Var Bz = sliceView(PBx, 0, H);
    Var Br = sliceView(PBx, H, H);
    Var Bn = sliceView(PBx, 2 * H, H);
    Var Uz = rowsView(PWh, 0, H);
    Var Ur = rowsView(PWh, H, H);
    Var Un = rowsView(PWh, 2 * H, H);
    auto Gate = [&](const Var &W, const Var &B, const Var &U,
                    const Var &HVec) {
      Var A = matvec(W, X);
      Var Ab = add(A, B);
      Var Uh = matvec(U, HVec);
      return add(Ab, Uh);
    };
    Var Z = sigmoidV(Gate(Wz, Bz, Uz, Prev.H));
    Var Rg = sigmoidV(Gate(Wr, Br, Ur, Prev.H));
    Var RH = mul(Rg, Prev.H);
    Var N = tanhV(Gate(Wn, Bn, Un, RH));
    // h = (1 - z) * n + z * h_prev  =  n + z * (h_prev - n)
    Var D = sub(Prev.H, N);
    Var ZD = mul(Z, D);
    RecState S;
    S.H = add(N, ZD);
    return S;
  }
  case CellKind::Lstm: {
    Var Wi = rowsView(PWx, 0, H);
    Var Wf = rowsView(PWx, H, H);
    Var Wg = rowsView(PWx, 2 * H, H);
    Var Wo = rowsView(PWx, 3 * H, H);
    Var Bi = sliceView(PBx, 0, H);
    Var Bf = sliceView(PBx, H, H);
    Var Bg = sliceView(PBx, 2 * H, H);
    Var Bo = sliceView(PBx, 3 * H, H);
    Var Ui = rowsView(PWh, 0, H);
    Var Uf = rowsView(PWh, H, H);
    Var Ug = rowsView(PWh, 2 * H, H);
    Var Uo = rowsView(PWh, 3 * H, H);
    auto Gate = [&](const Var &W, const Var &B, const Var &U) {
      Var A = matvec(W, X);
      Var Ab = add(A, B);
      Var Uh = matvec(U, Prev.H);
      return add(Ab, Uh);
    };
    Var I = sigmoidV(Gate(Wi, Bi, Ui));
    Var F = sigmoidV(Gate(Wf, Bf, Uf));
    Var G = tanhV(Gate(Wg, Bg, Ug));
    Var O = sigmoidV(Gate(Wo, Bo, Uo));
    Var FC = mul(F, Prev.C);
    Var IG = mul(I, G);
    RecState S;
    S.C = add(FC, IG);
    Var TC = tanhV(S.C);
    S.H = mul(O, TC);
    return S;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

std::vector<RecState>
RecurrentCell::run(const std::vector<Var> &Inputs) const {
  std::vector<RecState> States;
  States.reserve(Inputs.size());
  RecState S = initial();
  for (const Var &X : Inputs) {
    S = step(X, S);
    States.push_back(S);
  }
  return States;
}

//===----------------------------------------------------------------------===//
// ChildSumTreeLstm
//===----------------------------------------------------------------------===//

ChildSumTreeLstm::ChildSumTreeLstm(ParamStore &Store, const std::string &Name,
                                   size_t In, size_t Hidden, Rng &R)
    : In(In), Hidden(Hidden) {
  // Pack order is i, o, u, f (the i/o/u rows are the h~-side matvecN
  // block; the per-child forget block sits last), while the Rng draws
  // happen in the pre-packing creation order Wi, Wf, Wo, Wu / Ui, Uf,
  // Uo, Uu so fixed seeds reproduce the old initial weights.
  constexpr size_t RowI = 0, RowO = 1, RowU = 2, RowF = 3;
  Tensor Wx = Tensor::zeros(4 * Hidden, In);
  xavierRows(Wx, RowI * Hidden, Hidden, In, R);
  xavierRows(Wx, RowF * Hidden, Hidden, In, R);
  xavierRows(Wx, RowO * Hidden, Hidden, In, R);
  xavierRows(Wx, RowU * Hidden, Hidden, In, R);
  Tensor Wh = Tensor::zeros(4 * Hidden, Hidden);
  xavierRows(Wh, RowI * Hidden, Hidden, Hidden, R);
  xavierRows(Wh, RowF * Hidden, Hidden, Hidden, R);
  xavierRows(Wh, RowO * Hidden, Hidden, Hidden, R);
  xavierRows(Wh, RowU * Hidden, Hidden, Hidden, R);
  PWx = Store.addParam(Name + ".Wx", std::move(Wx));
  PBx = Store.addParam(Name + ".bx", Tensor::zeros(4 * Hidden));
  PWh = Store.addParam(Name + ".Wh", std::move(Wh));

  struct GateNames {
    const char *X;
    const char *U;
    size_t Row;
  };
  static const GateNames Gates[] = {{".Wi", ".Ui", RowI},
                                    {".Wf", ".Uf", RowF},
                                    {".Wo", ".Uo", RowO},
                                    {".Wu", ".Uu", RowU}};
  for (const GateNames &G : Gates) {
    Store.addLegacyView(Name + G.X + ".W", PWx, G.Row * Hidden * In,
                        {Hidden, In});
    Store.addLegacyView(Name + G.X + ".b", PBx, G.Row * Hidden, {Hidden});
    Store.addLegacyView(Name + G.U, PWh, G.Row * Hidden * Hidden,
                        {Hidden, Hidden});
  }
}

namespace {

/// h~ = Σ_k h_k (zero vector for leaves). Shared by the fused and
/// reference paths — the chain's nodes (and thus its gradient
/// roundings) are identical in both.
Var childHSum(const std::vector<Var> &ChildHs, size_t Hidden) {
  if (ChildHs.empty())
    return constant(Tensor::zeros(Hidden));
  Var HSum = ChildHs.size() == 1 ? ChildHs[0] : add(ChildHs[0], ChildHs[1]);
  for (size_t I = 2; I < ChildHs.size(); ++I)
    HSum = add(HSum, ChildHs[I]);
  return HSum;
}

} // namespace

ChildSumTreeLstm::NodeState ChildSumTreeLstm::embedNode(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  // Bottom-up: children first.
  std::vector<NodeState> Children;
  Children.reserve(Tree.Children.size());
  for (const AstTree &Child : Tree.Children)
    Children.push_back(embedNode(Child, Embed));

  Var X = Embed(Tree.Label);

  std::vector<Var> ChildHs, ChildCs;
  ChildHs.reserve(Children.size());
  ChildCs.reserve(Children.size());
  for (const NodeState &Child : Children) {
    ChildHs.push_back(Child.H);
    ChildCs.push_back(Child.C);
  }
  Var HSum = childHSum(ChildHs, Hidden);

  CellOut Out = treeLstmNodeOp(PWx, PBx, PWh, X, HSum, ChildHs, ChildCs);
  NodeState Result;
  Result.H = Out.H;
  Result.C = Out.C;
  return Result;
}

ChildSumTreeLstm::NodeState ChildSumTreeLstm::embedNodeUnfused(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  std::vector<NodeState> Children;
  Children.reserve(Tree.Children.size());
  for (const AstTree &Child : Tree.Children)
    Children.push_back(embedNodeUnfused(Child, Embed));

  Var X = Embed(Tree.Label);

  std::vector<Var> ChildHs;
  for (const NodeState &Child : Children)
    ChildHs.push_back(Child.H);
  Var HSum = childHSum(ChildHs, Hidden);

  size_t H = Hidden;
  Var WiV = rowsView(PWx, 0, H);
  Var BiV = sliceView(PBx, 0, H);
  Var UiV = rowsView(PWh, 0, H);
  Var WoV = rowsView(PWx, H, H);
  Var BoV = sliceView(PBx, H, H);
  Var UoV = rowsView(PWh, H, H);
  Var WuV = rowsView(PWx, 2 * H, H);
  Var BuV = sliceView(PBx, 2 * H, H);
  Var UuV = rowsView(PWh, 2 * H, H);
  auto Gate = [&](const Var &W, const Var &B, const Var &U,
                  const Var &HVec) {
    Var A = matvec(W, X);
    Var Ab = add(A, B);
    Var Uh = matvec(U, HVec);
    return add(Ab, Uh);
  };
  Var I = sigmoidV(Gate(WiV, BiV, UiV, HSum));
  Var O = sigmoidV(Gate(WoV, BoV, UoV, HSum));
  Var U = tanhV(Gate(WuV, BuV, UuV, HSum));

  // c = i ⊙ u + Σ_k f_k ⊙ c_k, with a per-child forget gate
  // f_k = σ(Wf x + Uf h_k). The f views are created fresh per child:
  // a shared view would pre-aggregate the children's weight gradients
  // before scattering, rounding differently from the fused op's (and
  // the pre-packing layout's) direct per-child accumulation.
  Var C = mul(I, U);
  for (const NodeState &Child : Children) {
    Var WfV = rowsView(PWx, 3 * H, H);
    Var BfV = sliceView(PBx, 3 * H, H);
    Var UfV = rowsView(PWh, 3 * H, H);
    Var Fk = sigmoidV(Gate(WfV, BfV, UfV, Child.H));
    Var FC = mul(Fk, Child.C);
    C = add(C, FC);
  }

  Var TC = tanhV(C);
  NodeState Result;
  Result.C = C;
  Result.H = mul(O, TC);
  return Result;
}

Var ChildSumTreeLstm::embed(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  if (!fusedCellsEnabled())
    return embedNodeUnfused(Tree, Embed).H;
  return embedNode(Tree, Embed).H;
}

Var ChildSumTreeLstm::embedUnfused(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  return embedNodeUnfused(Tree, Embed).H;
}

//===----------------------------------------------------------------------===//
// EmbeddingTable / AttentionScorer
//===----------------------------------------------------------------------===//

EmbeddingTable::EmbeddingTable(ParamStore &Store, const std::string &Name,
                               size_t VocabSize, size_t Dim, Rng &R) {
  Table = Store.addParam(Name, Tensor::xavier(VocabSize, Dim, R));
}

Var EmbeddingTable::lookup(int Id) const {
  LIGER_CHECK(Id >= 0 && static_cast<size_t>(Id) < Table->Value.dim(0),
              "embedding id out of range");
  return row(Table, static_cast<size_t>(Id));
}

AttentionScorer::AttentionScorer(ParamStore &Store, const std::string &Name,
                                 size_t QueryDim, size_t KeyDim,
                                 size_t Hidden, Rng &R)
    : QueryDim(QueryDim), KeyDim(KeyDim), Hidden(Hidden) {
  // Same parameter names, shapes, and Rng draw order as the
  // Mlp(Name, KeyDim + QueryDim, Hidden, 1) this class used to wrap,
  // so existing checkpoints load bit-exactly and fixed seeds reproduce:
  // the key/query split is purely how the packed first layer is
  // *computed* (column bands), never how it is stored.
  W1 = Store.addParam(Name + ".l1.W",
                      Tensor::xavier(Hidden, KeyDim + QueryDim, R));
  B1 = Store.addParam(Name + ".l1.b", Tensor::zeros(Hidden));
  W2 = Store.addParam(Name + ".l2.W", Tensor::xavier(1, Hidden, R));
  B2 = Store.addParam(Name + ".l2.b", Tensor::zeros(1));
}

Var AttentionScorer::scoreUnfused(const Var &Query, const Var &Key) const {
  // Split-first-layer reference chain for one pair; the batched paths
  // share the key-side half of this computation across steps.
  Var Wk = colsView(W1, 0, KeyDim);
  Var Mk = matvec(Wk, Key);
  Var KP = add(Mk, B1);
  Var Wq = colsView(W1, KeyDim, QueryDim);
  Var Mq = matvec(Wq, Query);
  Var Pre = add(KP, Mq);
  Var Act = tanhV(Pre);
  Var M2 = matvec(W2, Act);
  return add(M2, B2);
}

Var AttentionScorer::score(const Var &Query, const Var &Key) const {
  return scoreUnfused(Query, Key);
}

AttentionScorer::Memory
AttentionScorer::prepare(const std::vector<Var> &Keys) const {
  if (Keys.empty())
    reportFatalError("attention over an empty key set (memory size 0, "
                     "query dim " +
                     std::to_string(QueryDim) + ", key dim " +
                     std::to_string(KeyDim) + ")");
  Memory Mem;
  Mem.Keys = Keys;
  Mem.Fused = fusedAttentionEnabled();
  if (Mem.Fused) {
    Mem.KeyProj = attentionKeyProj(W1, B1, Keys);
    return Mem;
  }
  Var Wk = colsView(W1, 0, KeyDim);
  Mem.KeyProjRows.reserve(Keys.size());
  for (const Var &Key : Keys) {
    Var Mk = matvec(Wk, Key);
    Var KP = add(Mk, B1);
    Mem.KeyProjRows.push_back(KP);
  }
  return Mem;
}

Var AttentionScorer::scoreAllRows(
    const Var &Query, const std::vector<Var> &KeyProjRows) const {
  // Node creation order here is load-bearing: the fused attentionOp's
  // backward replays exactly this graph in descending creation order
  // (query-side view + matvec first, then each key's chain).
  Var Wq = colsView(W1, KeyDim, QueryDim);
  Var Mq = matvec(Wq, Query);
  std::vector<Var> Scores;
  Scores.reserve(KeyProjRows.size());
  for (const Var &KP : KeyProjRows) {
    Var Pre = add(KP, Mq);
    Var Act = tanhV(Pre);
    Var M2 = matvec(W2, Act);
    Scores.push_back(add(M2, B2));
  }
  return stackScalars(Scores);
}

Var AttentionScorer::scoreAll(const Var &Query,
                              const std::vector<Var> &Keys) const {
  if (Keys.empty())
    reportFatalError("attention over an empty key set (memory size 0, "
                     "query dim " +
                     std::to_string(QueryDim) + ", key dim " +
                     std::to_string(KeyDim) + ")");
  Var Wk = colsView(W1, 0, KeyDim);
  std::vector<Var> Rows;
  Rows.reserve(Keys.size());
  for (const Var &Key : Keys) {
    Var Mk = matvec(Wk, Key);
    Rows.push_back(add(Mk, B1));
  }
  return scoreAllRows(Query, Rows);
}

AttentionScorer::Result
AttentionScorer::contextOf(const Var &Query, const Memory &Mem) const {
  Result Out;
  if (Mem.Fused) {
    AttnOut Fused = attentionOp(W1, W2, B2, Query, Mem.KeyProj, Mem.Keys);
    Out.Context = Fused.Context;
    Out.Weights = Fused.Weights;
    return Out;
  }
  Var Scores = scoreAllRows(Query, Mem.KeyProjRows);
  Var A = softmax(Scores);
  Out.Context = weightedCombine(Mem.Keys, A);
  Out.Weights = A->Value.data();
  return Out;
}

std::vector<AttentionScorer::Result>
AttentionScorer::contextOfMulti(const std::vector<Var> &Queries,
                                const Memory &Mem) const {
  LIGER_CHECK(!Queries.empty(), "contextOfMulti needs queries");
  if (Queries.size() == 1 || !Mem.Fused || !batchedAttentionEnabled()) {
    std::vector<Result> Out;
    Out.reserve(Queries.size());
    for (const Var &Q : Queries)
      Out.push_back(contextOf(Q, Mem));
    return Out;
  }
  std::vector<AttnOut> Fused =
      attentionMultiQueryOp(W1, W2, B2, Queries, Mem.KeyProj, Mem.Keys);
  std::vector<Result> Out(Queries.size());
  for (size_t I = 0; I < Queries.size(); ++I) {
    Out[I].Context = Fused[I].Context;
    Out[I].Weights = Fused[I].Weights;
  }
  return Out;
}

std::vector<AttentionScorer::Result> AttentionScorer::contextOfMultiMemory(
    const std::vector<Var> &Queries,
    const std::vector<const Memory *> &Mems) const {
  LIGER_CHECK(!Queries.empty() && Mems.size() == Queries.size(),
              "contextOfMultiMemory needs one memory per query");
  bool AllFused = batchedAttentionEnabled() && Queries.size() > 1;
  for (const Memory *Mem : Mems)
    AllFused = AllFused && Mem->Fused;
  if (!AllFused) {
    std::vector<Result> Out;
    Out.reserve(Queries.size());
    for (size_t I = 0; I < Queries.size(); ++I)
      Out.push_back(contextOf(Queries[I], *Mems[I]));
    return Out;
  }
  std::vector<Var> KeyProjs;
  std::vector<const std::vector<Var> *> KeysPerQuery;
  KeyProjs.reserve(Mems.size());
  KeysPerQuery.reserve(Mems.size());
  for (const Memory *Mem : Mems) {
    KeyProjs.push_back(Mem->KeyProj);
    KeysPerQuery.push_back(&Mem->Keys);
  }
  std::vector<AttnOut> Fused =
      attentionMultiMemoryOp(W1, W2, B2, Queries, KeyProjs, KeysPerQuery);
  std::vector<Result> Out(Queries.size());
  for (size_t I = 0; I < Queries.size(); ++I) {
    Out[I].Context = Fused[I].Context;
    Out[I].Weights = Fused[I].Weights;
  }
  return Out;
}

Var AttentionScorer::weights(const Var &Query,
                             const std::vector<Var> &Keys) const {
  return softmax(scoreAll(Query, Keys));
}
