//===-- nn/Module.cpp - Neural network building blocks --------------------===//
//
// Part of the LIGER reproduction project.
//
//===----------------------------------------------------------------------===//

#include "nn/Module.h"

#include "nn/Checkpoint.h"

#include <cstdio>
#include <cstring>

using namespace liger;

//===----------------------------------------------------------------------===//
// ParamStore
//===----------------------------------------------------------------------===//

Var ParamStore::addParam(const std::string &Name, Tensor Init) {
  // Parameters are store-owned (not arena-owned): they must survive
  // arena resets between samples/epochs. Seq stays 0 so every graph
  // node (Seq >= 1) orders after its parameter parents.
  Storage.emplace_back();
  Node &N = Storage.back();
  N.Value = std::move(Init);
  N.RequiresGrad = true;
  N.ParamIndex = static_cast<int32_t>(Params.size());
  Params.push_back(&N);
  Names.push_back(Name);
  return &N;
}

void ParamStore::zeroGrads() {
  for (const Var &P : Params)
    if (!P->Grad.empty())
      P->Grad.zero();
}

size_t ParamStore::numScalars() const {
  size_t Total = 0;
  for (const Var &P : Params)
    Total += P->Value.size();
  return Total;
}

double ParamStore::gradNorm() const {
  double Total = 0;
  for (const Var &P : Params)
    if (!P->Grad.empty())
      Total += P->Grad.sumSquares();
  return std::sqrt(Total);
}

void ParamStore::scaleGrads(float Factor) {
  for (const Var &P : Params)
    if (!P->Grad.empty())
      P->Grad.scale(Factor);
}

void ParamStore::accumulateSink(const GradSink &Sink) {
  for (size_t I = 0; I < Sink.size(); ++I) {
    if (!Sink.touched(I))
      continue;
    Node &P = *Params[I];
    if (P.Grad.empty())
      P.Grad = Tensor::zerosLike(P.Value);
    P.Grad.accumulate(Sink.grad(I));
  }
}

bool ParamStore::save(const std::string &Path, std::string *Error) const {
  return saveCheckpoint(Path, *this, nullptr, nullptr, Error);
}

bool ParamStore::load(const std::string &Path, std::string *Error) {
  return loadCheckpoint(Path, *this, nullptr, nullptr, Error);
}

//===----------------------------------------------------------------------===//
// Linear / Mlp
//===----------------------------------------------------------------------===//

Linear::Linear(ParamStore &Store, const std::string &Name, size_t In,
               size_t Out, Rng &R) {
  W = Store.addParam(Name + ".W", Tensor::xavier(Out, In, R));
  B = Store.addParam(Name + ".b", Tensor::zeros(Out));
}

Var Linear::apply(const Var &X) const { return add(matvec(W, X), B); }

Mlp::Mlp(ParamStore &Store, const std::string &Name, size_t In, size_t Hidden,
         size_t Out, Rng &R)
    : First(Store, Name + ".l1", In, Hidden, R),
      Second(Store, Name + ".l2", Hidden, Out, R) {}

Var Mlp::apply(const Var &X) const {
  return Second.apply(tanhV(First.apply(X)));
}

//===----------------------------------------------------------------------===//
// RecurrentCell
//===----------------------------------------------------------------------===//

RecurrentCell::RecurrentCell(ParamStore &Store, const std::string &Name,
                             CellKind Kind, size_t In, size_t Hidden, Rng &R)
    : Kind(Kind), Hidden(Hidden) {
  auto HMat = [&](const char *Suffix) {
    return Store.addParam(Name + Suffix, Tensor::xavier(Hidden, Hidden, R));
  };
  switch (Kind) {
  case CellKind::Rnn:
    L1 = Linear(Store, Name + ".Wx", In, Hidden, R);
    U1 = HMat(".Wh");
    break;
  case CellKind::Gru:
    L1 = Linear(Store, Name + ".Wz", In, Hidden, R);
    L2 = Linear(Store, Name + ".Wr", In, Hidden, R);
    L3 = Linear(Store, Name + ".Wn", In, Hidden, R);
    U1 = HMat(".Uz");
    U2 = HMat(".Ur");
    U3 = HMat(".Un");
    break;
  case CellKind::Lstm:
    L1 = Linear(Store, Name + ".Wi", In, Hidden, R);
    L2 = Linear(Store, Name + ".Wf", In, Hidden, R);
    L3 = Linear(Store, Name + ".Wg", In, Hidden, R);
    L4 = Linear(Store, Name + ".Wo", In, Hidden, R);
    U1 = HMat(".Ui");
    U2 = HMat(".Uf");
    U3 = HMat(".Ug");
    U4 = HMat(".Uo");
    break;
  }
}

RecState RecurrentCell::initial() const {
  RecState S;
  S.H = constant(Tensor::zeros(Hidden));
  if (Kind == CellKind::Lstm)
    S.C = constant(Tensor::zeros(Hidden));
  return S;
}

RecState RecurrentCell::step(const Var &X, const RecState &Prev) const {
  switch (Kind) {
  case CellKind::Rnn: {
    RecState S;
    S.H = tanhV(add(L1.apply(X), matvec(U1, Prev.H)));
    return S;
  }
  case CellKind::Gru: {
    Var Z = sigmoidV(add(L1.apply(X), matvec(U1, Prev.H)));
    Var Rg = sigmoidV(add(L2.apply(X), matvec(U2, Prev.H)));
    Var N = tanhV(add(L3.apply(X), matvec(U3, mul(Rg, Prev.H))));
    // h = (1 - z) * n + z * h_prev  =  n + z * (h_prev - n)
    RecState S;
    S.H = add(N, mul(Z, sub(Prev.H, N)));
    return S;
  }
  case CellKind::Lstm: {
    Var I = sigmoidV(add(L1.apply(X), matvec(U1, Prev.H)));
    Var F = sigmoidV(add(L2.apply(X), matvec(U2, Prev.H)));
    Var G = tanhV(add(L3.apply(X), matvec(U3, Prev.H)));
    Var O = sigmoidV(add(L4.apply(X), matvec(U4, Prev.H)));
    RecState S;
    S.C = add(mul(F, Prev.C), mul(I, G));
    S.H = mul(O, tanhV(S.C));
    return S;
  }
  }
  LIGER_UNREACHABLE("covered switch");
}

std::vector<RecState>
RecurrentCell::run(const std::vector<Var> &Inputs) const {
  std::vector<RecState> States;
  States.reserve(Inputs.size());
  RecState S = initial();
  for (const Var &X : Inputs) {
    S = step(X, S);
    States.push_back(S);
  }
  return States;
}

//===----------------------------------------------------------------------===//
// ChildSumTreeLstm
//===----------------------------------------------------------------------===//

ChildSumTreeLstm::ChildSumTreeLstm(ParamStore &Store, const std::string &Name,
                                   size_t In, size_t Hidden, Rng &R)
    : Hidden(Hidden), Wi(Store, Name + ".Wi", In, Hidden, R),
      Wf(Store, Name + ".Wf", In, Hidden, R),
      Wo(Store, Name + ".Wo", In, Hidden, R),
      Wu(Store, Name + ".Wu", In, Hidden, R) {
  Ui = Store.addParam(Name + ".Ui", Tensor::xavier(Hidden, Hidden, R));
  Uf = Store.addParam(Name + ".Uf", Tensor::xavier(Hidden, Hidden, R));
  Uo = Store.addParam(Name + ".Uo", Tensor::xavier(Hidden, Hidden, R));
  Uu = Store.addParam(Name + ".Uu", Tensor::xavier(Hidden, Hidden, R));
}

ChildSumTreeLstm::NodeState ChildSumTreeLstm::embedNode(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  // Bottom-up: children first.
  std::vector<NodeState> Children;
  Children.reserve(Tree.Children.size());
  for (const AstTree &Child : Tree.Children)
    Children.push_back(embedNode(Child, Embed));

  Var X = Embed(Tree.Label);

  // h~ = Σ_k h_k  (zero vector for leaves).
  Var HSum;
  if (Children.empty()) {
    HSum = constant(Tensor::zeros(Hidden));
  } else {
    std::vector<Var> ChildHs;
    for (const NodeState &Child : Children)
      ChildHs.push_back(Child.H);
    HSum = ChildHs.size() == 1 ? ChildHs[0] : add(ChildHs[0], ChildHs[1]);
    for (size_t I = 2; I < ChildHs.size(); ++I)
      HSum = add(HSum, ChildHs[I]);
  }

  Var I = sigmoidV(add(Wi.apply(X), matvec(Ui, HSum)));
  Var O = sigmoidV(add(Wo.apply(X), matvec(Uo, HSum)));
  Var U = tanhV(add(Wu.apply(X), matvec(Uu, HSum)));

  // c = i ⊙ u + Σ_k f_k ⊙ c_k, with a per-child forget gate
  // f_k = σ(Wf x + Uf h_k).
  Var C = mul(I, U);
  for (const NodeState &Child : Children) {
    Var Fk = sigmoidV(add(Wf.apply(X), matvec(Uf, Child.H)));
    C = add(C, mul(Fk, Child.C));
  }

  NodeState Result;
  Result.C = C;
  Result.H = mul(O, tanhV(C));
  return Result;
}

Var ChildSumTreeLstm::embed(
    const AstTree &Tree,
    const std::function<Var(const std::string &)> &Embed) const {
  return embedNode(Tree, Embed).H;
}

//===----------------------------------------------------------------------===//
// EmbeddingTable / AttentionScorer
//===----------------------------------------------------------------------===//

EmbeddingTable::EmbeddingTable(ParamStore &Store, const std::string &Name,
                               size_t VocabSize, size_t Dim, Rng &R) {
  Table = Store.addParam(Name, Tensor::xavier(VocabSize, Dim, R));
}

Var EmbeddingTable::lookup(int Id) const {
  LIGER_CHECK(Id >= 0 && static_cast<size_t>(Id) < Table->Value.dim(0),
              "embedding id out of range");
  return row(Table, static_cast<size_t>(Id));
}

AttentionScorer::AttentionScorer(ParamStore &Store, const std::string &Name,
                                 size_t QueryDim, size_t KeyDim,
                                 size_t Hidden, Rng &R)
    : Net(Store, Name, QueryDim + KeyDim, Hidden, 1, R) {}

Var AttentionScorer::score(const Var &Query, const Var &Key) const {
  return Net.apply(concat(Key, Query));
}

Var AttentionScorer::weights(const Var &Query,
                             const std::vector<Var> &Keys) const {
  LIGER_CHECK(!Keys.empty(), "attention over an empty key set");
  std::vector<Var> Scores;
  Scores.reserve(Keys.size());
  for (const Var &Key : Keys)
    Scores.push_back(score(Query, Key));
  return softmax(stackScalars(Scores));
}
